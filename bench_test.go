// Benchmark suite: one benchmark per figure (F1-F9) and per claim table
// (T1-T5) of the paper, as indexed in DESIGN.md. The experiment harness
// (cmd/ringbench) reports simulated cycles for the same workloads; these
// benchmarks report host time and allocations under the Go benchmark
// harness.
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/exp"
	"repro/internal/figures"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/paging"
	"repro/internal/seg"
	"repro/internal/softring"
	"repro/internal/sup"
	"repro/internal/word"
	"repro/rings"
)

// ---- Figure 1: writable data segment access checks ----

func BenchmarkFig1AccessCheck(b *testing.B) {
	v := figures.Figure1View()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ring := core.Ring(i & 7)
		_ = core.CheckWrite(v, 10, ring)
		_ = core.CheckRead(v, 10, ring)
	}
}

// ---- Figure 2: gated procedure CALL decision ----

func BenchmarkFig2GateCheck(b *testing.B) {
	v := figures.Figure2View()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _ = core.DecideCall(v, uint32(i&1), 4, 4, false)
	}
}

// ---- Figure 3: storage format encode/decode ----

func BenchmarkFig3SDWRoundTrip(b *testing.B) {
	s := seg.SDW{
		Present: true, Addr: 0o1000, Bound: 0o2000,
		Read: true, Execute: true,
		Brackets: core.Brackets{R1: 3, R2: 3, R3: 5}, Gate: 2,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		even, odd := s.Encode()
		s = seg.Decode(even, odd)
	}
}

func BenchmarkFig3InstructionRoundTrip(b *testing.B) {
	ins := isa.Instruction{Op: isa.LDA, Ind: true, PRRel: true, PR: 6, Tag: 3, Offset: 0o1234}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ins = isa.DecodeInstruction(ins.Encode())
	}
}

// ---- machine single-instruction benches (Figures 4-7) ----

// stepBench builds a one-segment machine whose word 0 holds the probe
// instruction, then measures one full instruction cycle (fetch
// validation, effective address formation, operand validation,
// execution) per iteration.
func stepBench(b *testing.B, defs []image.SegmentDef, setup func(*image.Image)) {
	b.Helper()
	img, err := image.Build(image.Config{MemWords: 1 << 16, MaxSegments: 32}, defs)
	if err != nil {
		b.Fatal(err)
	}
	if err := img.Start(4, "probe", 0); err != nil {
		b.Fatal(err)
	}
	if setup != nil {
		setup(img)
	}
	c := img.CPU
	start := c.IPR
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.IPR = start
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func probeSeg(words ...word.Word) image.SegmentDef {
	return image.SegmentDef{
		Name: "probe", Words: words, Size: 16,
		Read: true, Write: true, Execute: true,
		Brackets: core.Brackets{R1: 4, R2: 4, R3: 4},
	}
}

// BenchmarkFig4Fetch measures the instruction-retrieval path (Figure 4):
// a NOP is fetch-validated and executed.
func BenchmarkFig4Fetch(b *testing.B) {
	stepBench(b, []image.SegmentDef{
		probeSeg(isa.Instruction{Op: isa.NOP}.Encode()),
	}, nil)
}

// BenchmarkFig5EffectiveAddress measures effective address formation
// with a two-level indirect chain (Figure 5).
func BenchmarkFig5EffectiveAddress(b *testing.B) {
	ind1 := isa.Indirect{Ring: 4, Segno: 0, Wordno: 2, Further: true}
	ind2 := isa.Indirect{Ring: 4, Segno: 0, Wordno: 3}
	stepBench(b, []image.SegmentDef{
		probeSeg(
			isa.Instruction{Op: isa.LDA, Ind: true, Offset: 1}.Encode(),
			ind1.Encode(), // patched to self segno below
			ind2.Encode(), // patched below
			word.FromInt(7),
		),
	}, func(img *image.Image) {
		segno, _ := img.Segno("probe")
		i1 := ind1
		i1.Segno = segno
		i2 := ind2
		i2.Segno = segno
		_ = img.WriteWord("probe", 1, i1.Encode())
		_ = img.WriteWord("probe", 2, i2.Encode())
	})
}

// BenchmarkFig6Read and Fig6Write measure validated operand references.
func BenchmarkFig6Read(b *testing.B) {
	stepBench(b, []image.SegmentDef{
		probeSeg(
			isa.Instruction{Op: isa.LDA, Offset: 2}.Encode(),
			0, word.FromInt(5),
		),
	}, nil)
}

func BenchmarkFig6Write(b *testing.B) {
	stepBench(b, []image.SegmentDef{
		probeSeg(isa.Instruction{Op: isa.STA, Offset: 2}.Encode()),
	}, nil)
}

// BenchmarkFig7Transfer measures the transfer advance check.
func BenchmarkFig7Transfer(b *testing.B) {
	stepBench(b, []image.SegmentDef{
		probeSeg(isa.Instruction{Op: isa.TRA, Offset: 1}.Encode(),
			isa.Instruction{Op: isa.NOP}.Encode()),
	}, nil)
}

// ---- Figures 8 and 9, and tables T1-T5: call/return kernels ----

// kernelBench builds the canonical call/return kernel once and measures
// complete round trips: each iteration resets the loop counter and runs
// `trips` call/return pairs.
func kernelBench(b *testing.B, p exp.CallKernelParams, software bool, argWords int) {
	b.Helper()
	prog, err := asm.Assemble(p.Source())
	if err != nil {
		b.Fatal(err)
	}
	countOff := prog.Segment("main").Symbols["count"]

	if software {
		m, err := p.BuildSoftware()
		if err != nil {
			b.Fatal(err)
		}
		m.ArgWords = argWords
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := m.Img.WriteWord("main", countOff, 0); err != nil {
				b.Fatal(err)
			}
			if err := m.Start(p.CallerRing, "main", 0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := m.Run(200*p.Iterations + 1000); err != nil {
				b.Fatal(err)
			}
		}
		return
	}

	img, err := p.BuildHardware(nil)
	if err != nil {
		b.Fatal(err)
	}
	sup.Attach(img, "bench")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := img.WriteWord("main", countOff, 0); err != nil {
			b.Fatal(err)
		}
		if err := img.Start(p.CallerRing, "main", 0); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := img.CPU.Run(200*p.Iterations + 1000); err != nil {
			b.Fatal(err)
		}
	}
}

const benchTrips = 16

// BenchmarkFig8Call: downward call/upward return round trips in
// hardware (each op = 16 round trips).
func BenchmarkFig8Call(b *testing.B) {
	kernelBench(b, exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}, false, 0)
}

// BenchmarkFig9Return isolates the upward-return-heavy variant: the
// same kernel measured under the DBR stack rule ablation (Figure 8
// footnote) to show the rule has no measurable cost.
func BenchmarkFig9Return(b *testing.B) {
	b.Run("stack-rule=ring-is-segno", func(b *testing.B) {
		kernelBench(b, exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}, false, 0)
	})
	b.Run("stack-rule=dbr-base", func(b *testing.B) {
		p := exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}
		prog, err := asm.Assemble(p.Source())
		if err != nil {
			b.Fatal(err)
		}
		countOff := prog.Segment("main").Symbols["count"]
		img, err := asm.BuildImage(image.Config{StackRule: cpu.StackDBRBase}, prog)
		if err != nil {
			b.Fatal(err)
		}
		sup.Attach(img, "bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := img.WriteWord("main", countOff, 0); err != nil {
				b.Fatal(err)
			}
			if err := img.Start(4, "main", 0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := img.CPU.Run(10000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkT1HardwareVsSoftwareCall: the headline comparison.
func BenchmarkT1HardwareVsSoftwareCall(b *testing.B) {
	p := exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}
	b.Run("hardware-rings", func(b *testing.B) { kernelBench(b, p, false, 0) })
	b.Run("software-rings-645", func(b *testing.B) { kernelBench(b, p, true, 0) })
}

// BenchmarkT2SameVsCrossRing: identical caller code, same cost.
func BenchmarkT2SameVsCrossRing(b *testing.B) {
	b.Run("same-ring", func(b *testing.B) {
		kernelBench(b, exp.CallKernelParams{CallerRing: 4, ServiceRing: 4, Iterations: benchTrips}, false, 0)
	})
	b.Run("cross-ring", func(b *testing.B) {
		kernelBench(b, exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}, false, 0)
	})
}

// BenchmarkT3ArgumentValidation: argument passing across the ring
// boundary, hardware vs software validation.
func BenchmarkT3ArgumentValidation(b *testing.B) {
	for _, args := range []int{1, 4} {
		p := exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips, Args: args}
		b.Run(benchName("hardware-args", args), func(b *testing.B) { kernelBench(b, p, false, 0) })
		b.Run(benchName("software-args", args), func(b *testing.B) { kernelBench(b, p, true, args) })
	}
}

func benchName(prefix string, n int) string {
	return prefix + "-" + string(rune('0'+n))
}

// BenchmarkT4UpwardCall: mediated upward call round trips.
func BenchmarkT4UpwardCall(b *testing.B) {
	kernelBench(b, exp.CallKernelParams{CallerRing: 1, ServiceRing: 4, Iterations: benchTrips}, false, 0)
}

// BenchmarkT5ValidationOverhead: the ablation — identical straight-line
// kernel with the ring validation logic on and off. The simulated
// cycle counts are equal (see ringbench -exp T5); the host-time delta
// here is the cost of the comparison logic itself.
func BenchmarkT5ValidationOverhead(b *testing.B) {
	build := func(validate bool) *image.Image {
		opt := cpu.DefaultOptions()
		opt.Validate = validate
		prog, err := asm.Assemble(`
        .seg    main
        .bracket 4,4,4
        .access rwe
loop:   lda     a
        ada     bb
        sta     a
        aos     count
        lda     count
        cma     limit
        tnz     loop
        hlt
a:      .word   1
bb:     .word   2
count:  .word   0
limit:  .word   64
`)
		if err != nil {
			b.Fatal(err)
		}
		img, err := asm.BuildImage(image.Config{CPUOptions: &opt}, prog)
		if err != nil {
			b.Fatal(err)
		}
		return img
	}
	for _, validate := range []bool{true, false} {
		name := "validation-on"
		if !validate {
			name = "validation-off"
		}
		img := build(validate)
		countOff := uint32(9) // label positions: loop..hlt = 0..7, a=8, bb=9, count=10
		countOff = 10
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := img.WriteWord("main", countOff, 0); err != nil {
					b.Fatal(err)
				}
				if err := img.Start(4, "main", 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := img.CPU.Run(10000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSoftringWrap measures baseline machine construction (the
// per-process cost of materializing eight descriptor segments — the
// storage/setup overhead the hardware scheme avoids).
func BenchmarkSoftringWrap(b *testing.B) {
	p := exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 1}
	prog, err := asm.Assemble(p.Source())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		img, err := asm.BuildImage(image.Config{MemWords: 1 << 17}, prog)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := softring.Wrap(img); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallChainDepth measures nested downward call chains (main in
// a high ring calling through 1, 2 or 3 gated layers), each with the
// full frame protocol — the layered-supervisor shape.
func BenchmarkCallChainDepth(b *testing.B) {
	cases := []struct {
		name   string
		caller core.Ring
		chain  []core.Ring
	}{
		{"depth-1", 5, []core.Ring{1}},
		{"depth-2", 5, []core.Ring{3, 1}},
		{"depth-3", 6, []core.Ring{4, 2, 0}},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			prog, err := asm.Assemble(exp.ChainKernelSource(tc.caller, tc.chain, benchTrips))
			if err != nil {
				b.Fatal(err)
			}
			countOff := prog.Segment("main").Symbols["count"]
			img, err := asm.BuildImage(image.Config{}, prog)
			if err != nil {
				b.Fatal(err)
			}
			sup.Attach(img, "bench")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := img.WriteWord("main", countOff, 0); err != nil {
					b.Fatal(err)
				}
				if err := img.Start(tc.caller, "main", 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := img.CPU.Run(100000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndirectChainDepth measures effective-address formation as
// the indirect chain deepens (each level revalidates and re-maxes the
// effective ring).
func BenchmarkIndirectChainDepth(b *testing.B) {
	for _, depth := range []int{1, 4, 8} {
		depth := depth
		b.Run(map[int]string{1: "depth-1", 4: "depth-4", 8: "depth-8"}[depth], func(b *testing.B) {
			words := []word.Word{
				isa.Instruction{Op: isa.LDA, Ind: true, Offset: 2}.Encode(),
				isa.Instruction{Op: isa.NOP}.Encode(),
			}
			for i := 0; i < depth; i++ {
				words = append(words, 0)
			}
			words = append(words, word.FromInt(5))
			img, err := image.Build(image.Config{MemWords: 1 << 16, MaxSegments: 32},
				[]image.SegmentDef{{
					Name: "probe", Words: words,
					Read: true, Execute: true,
					Brackets: core.Brackets{R1: 4, R2: 4, R3: 4},
				}})
			if err != nil {
				b.Fatal(err)
			}
			segno, _ := img.Segno("probe")
			for i := 0; i < depth; i++ {
				further := i < depth-1
				target := uint32(2 + i + 1)
				if !further {
					target = uint32(2 + depth)
				}
				ind := isa.Indirect{Ring: 4, Segno: segno, Wordno: target, Further: further}
				if err := img.WriteWord("probe", uint32(2+i), ind.Encode()); err != nil {
					b.Fatal(err)
				}
			}
			if err := img.Start(4, "probe", 0); err != nil {
				b.Fatal(err)
			}
			c := img.CPU
			start := c.IPR
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.IPR = start
				if err := c.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPagedVsFlat measures the host-time cost of the paging layer
// for the same workload (the architectural cost is zero; see T7).
func BenchmarkPagedVsFlat(b *testing.B) {
	runOnce := func(b *testing.B, backing mem.Store) {
		b.Helper()
		prog, err := asm.Assemble(exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}.Source())
		if err != nil {
			b.Fatal(err)
		}
		countOff := prog.Segment("main").Symbols["count"]
		cfg := image.Config{}
		if backing != nil {
			cfg.Backing = backing
		} else {
			cfg.MemWords = 1 << 18
		}
		img, err := asm.BuildImage(cfg, prog)
		if err != nil {
			b.Fatal(err)
		}
		sup.Attach(img, "bench")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := img.WriteWord("main", countOff, 0); err != nil {
				b.Fatal(err)
			}
			if err := img.Start(4, "main", 0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := img.CPU.Run(100000); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("flat", func(b *testing.B) { runOnce(b, nil) })
	b.Run("paged", func(b *testing.B) {
		space, err := paging.New(1<<18, 256)
		if err != nil {
			b.Fatal(err)
		}
		runOnce(b, space)
	})
}

// BenchmarkGateCheckAblation measures the CALL decision with and
// without the same-segment gate exemption (the paper's error-detection
// design choice: every inter-segment CALL must hit a gate, intra-
// segment calls are exempt).
func BenchmarkGateCheckAblation(b *testing.B) {
	v := figures.Figure2View()
	b.Run("cross-segment-gated", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = core.DecideCall(v, uint32(i&1), 4, 4, false)
		}
	})
	b.Run("same-segment-exempt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = core.DecideCall(v, uint32(100+i&63), 3, 3, true)
		}
	})
}

// BenchmarkDynamicLinking measures the one-time linkage-fault cost
// against the steady-state snapped-link call.
func BenchmarkDynamicLinking(b *testing.B) {
	const dynSrc = `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    lib$fn
        hlt

        .seg    lib
        .bracket 1,1,5
        .gate   fn
fn:     eap5    *pr0|0
        spr6    pr5|0
        eap6    *pr5|0
        return  *pr6|0
`
	b.Run("first-call-with-snap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s, _, err := sup.BootDeferred("bench", dynSrc)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Img.Start(4, "main", 0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := s.Img.CPU.Run(1000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapped-steady-state", func(b *testing.B) {
		s, _, err := sup.BootDeferred("bench", dynSrc)
		if err != nil {
			b.Fatal(err)
		}
		// Warm: snap the links.
		if err := s.Img.Start(4, "main", 0); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Img.CPU.Run(1000); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			if err := s.Img.Start(4, "main", 0); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := s.Img.CPU.Run(1000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSDWCache measures the host-time effect of the associative
// memory for SDWs (T10 reports the simulated-cycle effect).
func BenchmarkSDWCache(b *testing.B) {
	for _, cache := range []bool{false, true} {
		name := "cache-off"
		if cache {
			name = "cache-on"
		}
		opt := cpu.DefaultOptions()
		opt.SDWCache = cache
		p := exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: benchTrips}
		prog, err := asm.Assemble(p.Source())
		if err != nil {
			b.Fatal(err)
		}
		countOff := prog.Segment("main").Symbols["count"]
		img, err := asm.BuildImage(image.Config{CPUOptions: &opt}, prog)
		if err != nil {
			b.Fatal(err)
		}
		sup.Attach(img, "bench")
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				if err := img.WriteWord("main", countOff, 0); err != nil {
					b.Fatal(err)
				}
				if err := img.Start(4, "main", 0); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := img.CPU.Run(100000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Traceless access path: the zero-allocation guarantee ----

// tracelessImage builds a cross-ring call kernel that never halts, for
// steady-state stepping with the trace sink disabled.
func tracelessImage(tb testing.TB) *image.Image {
	tb.Helper()
	opt := cpu.DefaultOptions()
	opt.SDWCache = true
	p := exp.CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 1 << 30}
	img, err := p.BuildHardware(&opt)
	if err != nil {
		tb.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		tb.Fatal(err)
	}
	return img
}

// BenchmarkTracelessStep measures the per-instruction cost of the full
// MMU access path (SDW fetch, bracket validation, cross-ring CALL and
// RETURN) with no sink attached. The path is required to be
// allocation-free: 0 B/op here is an acceptance criterion, asserted by
// TestTracelessStepZeroAlloc.
func BenchmarkTracelessStep(b *testing.B) {
	img := tracelessImage(b)
	c := img.CPU
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTracelessStepZeroAlloc pins the guarantee down as a test: with
// the sink disabled, stepping through gated cross-ring calls allocates
// nothing.
func TestTracelessStepZeroAlloc(t *testing.T) {
	img := tracelessImage(t)
	c := img.CPU
	if _, err := c.Run(200); err != nil { // warm the SDW cache and stacks
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if _, err := c.Run(50); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("traceless step path allocates %v allocs per 50-step run, want 0", avg)
	}
}

// ---- Decision service: the zero-allocation submit path ----

// BenchmarkServiceCheckInto measures a complete decision round trip
// through the service (queue, worker, MMU validation, reply) using the
// pooled CheckInto path. Like the traceless step above, 0 B/op is an
// acceptance criterion — asserted by TestSubmitIntoZeroAlloc in
// internal/service.
func BenchmarkServiceCheckInto(b *testing.B) {
	chk, err := rings.NewCheckerWith(rings.CheckerConfig{Workers: 1}, []rings.Segment{
		{Name: "data", Size: 64, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 64, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer chk.Close()

	for _, size := range []int{1, 16} {
		queries := make([]rings.Query, size)
		for i := range queries {
			switch i & 3 {
			case 0, 1:
				queries[i] = rings.Query{Op: rings.OpAccess, Ring: 4, Segment: "data",
					Wordno: uint32(i), Kind: rings.AccessRead}
			case 2:
				queries[i] = rings.Query{Op: rings.OpCall, Ring: 4, Segment: "code", Wordno: 1}
			case 3:
				queries[i] = rings.Query{Op: rings.OpAccess, Ring: 7, Segment: "data",
					Kind: rings.AccessWrite} // denied
			}
		}
		dst := make([]rings.Decision, size)
		b.Run(benchSizeName("batch", size), func(b *testing.B) {
			for i := 0; i < 8; i++ { // warm the descriptor pool
				if err := chk.CheckInto(queries, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := chk.CheckInto(queries, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchSizeName(prefix string, n int) string {
	return fmt.Sprintf("%s-%d", prefix, n)
}
