// Command ringbench runs the experiment harness: for every figure of
// the paper (F1-F9) and every quantitative or structural claim (T1-T10)
// it regenerates the corresponding table, diagram or measurement and
// prints the report. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	ringbench [-exp F8|T1|...|all] [-list]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("exp", "all", "experiment id (F1-F9, T1-T10) or all")
	list := fs.Bool("list", false, "list experiment ids")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, i := range exp.IDs() {
			fmt.Fprintln(stdout, i)
		}
		return 0
	}

	if strings.EqualFold(*id, "all") {
		results, err := exp.RunAll()
		if err != nil {
			fmt.Fprintln(stderr, "ringbench:", err)
			return 1
		}
		for _, r := range results {
			fmt.Fprintln(stdout, r)
		}
		return 0
	}
	r, err := exp.Run(strings.ToUpper(*id))
	if err != nil {
		fmt.Fprintln(stderr, "ringbench:", err)
		return 1
	}
	fmt.Fprintln(stdout, r)
	return 0
}
