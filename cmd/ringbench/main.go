// Command ringbench runs the experiment harness: for every figure of
// the paper (F1-F9) and every quantitative or structural claim (T1-T12)
// it regenerates the corresponding table, diagram or measurement and
// prints the report. See DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-vs-measured notes.
//
// Usage:
//
//	ringbench [-exp F8|T1|...|all] [-list] [-json]
//
// With -json, reports are emitted as a JSON array of objects with the
// experiment id, title, host wall-clock nanoseconds, the experiment's
// machine-readable metrics (simulated cycles, SDW cache hit rate, ...)
// and the report lines — for dashboards and regression tracking.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonResult is the machine-readable form of one experiment report.
type jsonResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	HostNs  int64              `json:"host_ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Lines   []string           `json:"lines"`
}

func emitJSON(w io.Writer, results []*exp.Result) error {
	out := make([]jsonResult, 0, len(results))
	for _, r := range results {
		out = append(out, jsonResult{
			ID: r.ID, Title: r.Title, HostNs: r.HostNs,
			Metrics: r.Metrics, Lines: r.Lines,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	id := fs.String("exp", "all", "experiment id (F1-F9, T1-T12) or all")
	list := fs.Bool("list", false, "list experiment ids")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON reports")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, i := range exp.IDs() {
			fmt.Fprintln(stdout, i)
		}
		return 0
	}

	var results []*exp.Result
	if strings.EqualFold(*id, "all") {
		all, err := exp.RunAll()
		if err != nil {
			fmt.Fprintln(stderr, "ringbench:", err)
			return 1
		}
		results = all
	} else {
		r, err := exp.Run(strings.ToUpper(*id))
		if err != nil {
			fmt.Fprintln(stderr, "ringbench:", err)
			return 1
		}
		results = []*exp.Result{r}
	}

	if *asJSON {
		if err := emitJSON(stdout, results); err != nil {
			fmt.Fprintln(stderr, "ringbench:", err)
			return 1
		}
		return 0
	}
	for _, r := range results {
		fmt.Fprintln(stdout, r)
	}
	return 0
}
