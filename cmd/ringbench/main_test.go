package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"F1", "F9", "T1", "T10"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunOne(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "f1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d (%s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "F99"}, &out, &errb); code == 0 {
		t.Error("unknown experiment accepted")
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errb.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "T10", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d (%s)", code, errb.String())
	}
	var results []jsonResult
	if err := json.Unmarshal([]byte(out.String()), &results); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 || results[0].ID != "T10" {
		t.Fatalf("results = %+v", results)
	}
	r := results[0]
	if r.HostNs <= 0 {
		t.Errorf("host_ns = %d", r.HostNs)
	}
	for _, key := range []string{"cycles_cache_on", "cache_hit_rate"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("metrics missing %q: %v", key, r.Metrics)
		}
	}
}
