package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"F1", "F9", "T1", "T10"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestRunOne(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "f1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d (%s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "Figure 1") {
		t.Errorf("output: %s", out.String())
	}
}

func TestRunUnknown(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-exp", "F99"}, &out, &errb); code == 0 {
		t.Error("unknown experiment accepted")
	}
	if !strings.Contains(errb.String(), "unknown experiment") {
		t.Errorf("stderr: %s", errb.String())
	}
}
