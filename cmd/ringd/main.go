// Command ringd is the protection-decision daemon: it loads a machine
// image (descriptor segment plus segment bodies), starts a pool of
// decision workers — each an MMU reading immutable RCU descriptor
// snapshots pinned per batch, so decisions never lock against
// supervisor edits — and answers batched protection queries over
// HTTP/JSON.
//
// Usage:
//
//	ringd [-addr :8642] [-workers 4] [-queue 64]
//	      [-batch 1024] [-shards 8] [-image image.json]
//
// Endpoints:
//
//	POST /v1/check   batch of access/call/return/effring queries
//	POST /v1/mutate  supervisor edits: setbrackets, revoke, restore
//	GET  /healthz    liveness and image shape
//	GET  /metrics    decisions, faults by kind, snapshot-read and
//	                 latency counters
//
// The image file is a JSON object {"segments": [...]}, each segment
// carrying a name, size, access flags, ring brackets and gate count;
// with no -image flag a built-in demonstration image is served. On
// SIGINT/SIGTERM the daemon stops accepting, drains the decision queue
// and exits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/service"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// Test hooks: when non-nil, testHookReady receives the bound listen
// address once serving, and closing testHookShutdown triggers the same
// graceful drain a signal would.
var (
	testHookReady    chan<- string
	testHookShutdown <-chan struct{}
)

// imageSegment is the JSON form of one segment in an image file.
type imageSegment struct {
	Name    string `json:"name"`
	Size    int    `json:"size"`
	Read    bool   `json:"read"`
	Write   bool   `json:"write"`
	Execute bool   `json:"execute"`
	R1      uint8  `json:"r1"`
	R2      uint8  `json:"r2"`
	R3      uint8  `json:"r3"`
	Gates   uint32 `json:"gates"`
}

type imageFile struct {
	Segments []imageSegment `json:"segments"`
}

// demoImage is the image served when no -image flag is given: a small
// Multics-flavoured layout exercising every protection mechanism.
func demoImage() []service.Segment {
	return []service.Segment{
		{Name: "supervisor", Size: 4096, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 7}, Gates: 8},
		{Name: "sys_data", Size: 1024, Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 2, R3: 2}},
		{Name: "math_lib", Size: 2048, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 7, R3: 7}},
		{Name: "editor", Size: 2048, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 5}, Gates: 2},
		{Name: "user_code", Size: 1024, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 6, R3: 6}},
		{Name: "user_data", Size: 4096, Read: true, Write: true,
			Brackets: core.Brackets{R1: 4, R2: 6, R3: 6}},
	}
}

// loadImage reads a JSON image file, or returns the demo image for an
// empty path.
func loadImage(path string) ([]service.Segment, error) {
	if path == "" {
		return demoImage(), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f imageFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Segments) == 0 {
		return nil, fmt.Errorf("%s: image holds no segments", path)
	}
	defs := make([]service.Segment, len(f.Segments))
	for i, s := range f.Segments {
		b := core.Brackets{R1: core.Ring(s.R1), R2: core.Ring(s.R2), R3: core.Ring(s.R3)}
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("%s: segment %q: %w", path, s.Name, err)
		}
		defs[i] = service.Segment{
			Name: s.Name, Size: s.Size,
			Read: s.Read, Write: s.Write, Execute: s.Execute,
			Brackets: b, Gates: s.Gates,
		}
	}
	return defs, nil
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8642", "listen address")
	workers := fs.Int("workers", 4, "decision workers, one snapshot-reading MMU each")
	queue := fs.Int("queue", 64, "bounded batch-queue depth (full queue answers 429)")
	batchLimit := fs.Int("batch", 1024, "maximum queries per batch")
	shards := fs.Int("shards", 0, "descriptor-store shards (power of two; 0 = default 8)")
	imagePath := fs.String("image", "", "machine image JSON (built-in demo image when empty)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	defs, err := loadImage(*imagePath)
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		return 1
	}
	st, err := service.NewStore(service.StoreConfig{Shards: *shards}, defs)
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		return 1
	}
	svc, err := service.New(st, service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		BatchLimit: *batchLimit,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		return 1
	}
	srv := service.NewServer(svc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		srv.Close()
		return 1
	}
	hs := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	fmt.Fprintf(stdout, "ringd: serving %d segments on %s (%d workers, queue %d, %d shards)\n",
		len(defs), ln.Addr(), svc.Workers(), svc.QueueDepth(), st.Shards())
	if testHookReady != nil {
		testHookReady <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ringd:", err)
		srv.Close()
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "ringd: %v: draining\n", s)
	case <-testHookShutdown:
		fmt.Fprintln(stdout, "ringd: shutdown requested: draining")
	}

	// Graceful shutdown: stop accepting, finish in-flight HTTP requests,
	// then drain the decision queue.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "ringd: shutdown:", err)
	}
	srv.Close()
	fmt.Fprintln(stdout, "ringd: drained, exiting")
	return 0
}
