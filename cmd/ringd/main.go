// Command ringd is the protection-decision daemon: an image registry
// serving N independent descriptor spaces (tenants) from one process.
// Each loaded machine image becomes a tenant with its own sharded
// descriptor store, its own pool of decision workers — each an MMU
// reading immutable RCU descriptor snapshots pinned per batch, so
// decisions never lock against supervisor edits — and its own bounded
// queue, so one hot tenant sheds its own overload instead of starving
// the rest.
//
// Usage:
//
//	ringd [-addr :8642] [-listen-wire :8643] [-workers 4] [-queue 64]
//	      [-batch 1024] [-shards 8] [-image image.json]
//	      [-max-tenants 16] [-worker-budget 64] [-image-dir dir]
//
// Endpoints:
//
//	GET  /v1/images              list loaded images, states, budgets
//	POST /v1/images              load an image as a new tenant
//	GET  /v1/images/{name}       one tenant's status and metrics
//	POST /v1/images/{name}/seal  freeze the tenant's descriptor space
//	POST /v1/images/{name}/evict drain and remove the tenant
//	POST /v1/t/{name}/check      tenant-scoped decision batch
//	POST /v1/t/{name}/mutate     tenant-scoped supervisor edit
//	GET  /v1/t/{name}/healthz    tenant liveness and image shape
//	GET  /v1/t/{name}/metrics    tenant decision/fault/RCU/lease counters
//
//	POST /v1/check   \
//	POST /v1/mutate   | single-tenant compatibility surface: the
//	GET  /healthz     | tenant named "default", wire format unchanged
//	GET  /metrics    /
//
// With -listen-wire, a second TCP listener serves the binary streaming
// protocol (internal/wire): one persistent connection per client,
// pipelined length-prefixed decision batches with client-assigned
// correlation IDs, the same tenant semantics as /v1/t/{name} (a session
// binds its tenant at the Hello handshake; seal/drain races answer
// 409-equivalent error frames). A session that sends a Subscribe frame
// additionally receives the tenant's descriptor-invalidation stream:
// one Shootdown push per mutation (naming the publishing shard's new
// epoch) and a final LeaseExpire when the tenant drains — the feed a
// client-side decision-lease cache (rings.DialRemote with CacheSize)
// stays coherent by. Per-tenant subscriber/shootdown/expire counters
// appear under "leases" in /metrics. See DESIGN.md "Wire protocol" and
// "Distributed decision leases".
//
// The startup image (the -image file, or a built-in demonstration
// image) is loaded as the tenant named "default". Image files are JSON
// objects {"segments": [...]}, each segment carrying a name, size,
// access flags, ring brackets and gate count; POST /v1/images accepts
// the same segments inline, or a "file" name resolved inside -image-dir
// when that flag is set. Mutations against a sealed or draining tenant
// answer 409. On SIGINT/SIGTERM the daemon stops accepting, drains
// every tenant's decision queue and exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/wire"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// Test hooks: when non-nil, testHookReady receives the bound HTTP
// listen address (and testHookWireReady the bound wire address) once
// serving, and closing testHookShutdown triggers the same graceful
// drain a signal would.
var (
	testHookReady     chan<- string
	testHookWireReady chan<- string
	testHookShutdown  <-chan struct{}
)

// loadImage reads a JSON image file, or returns the demo image for an
// empty path.
func loadImage(path string) ([]service.Segment, error) {
	if path == "" {
		return tenant.DemoImage(), nil
	}
	return tenant.LoadImageFile(path)
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8642", "listen address")
	wireAddr := fs.String("listen-wire", "", "TCP address for the binary streaming protocol (disabled when empty)")
	workers := fs.Int("workers", 4, "default tenant's decision workers, one snapshot-reading MMU each")
	queue := fs.Int("queue", 64, "bounded batch-queue depth per tenant (full queue answers 429)")
	batchLimit := fs.Int("batch", 1024, "maximum queries per batch")
	shards := fs.Int("shards", 0, "descriptor-store shards per tenant (power of two; 0 = default 8)")
	imagePath := fs.String("image", "", "default tenant's machine image JSON (built-in demo image when empty)")
	maxTenants := fs.Int("max-tenants", 16, "maximum simultaneously loaded images")
	workerBudget := fs.Int("worker-budget", 64, "total decision workers across all tenants")
	imageDir := fs.String("image-dir", "", "directory POST /v1/images may load \"file\" images from (disabled when empty)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	defs, err := loadImage(*imagePath)
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		return 1
	}
	reg := tenant.NewRegistry(tenant.Config{
		MaxTenants:   *maxTenants,
		WorkerBudget: *workerBudget,
		Defaults: tenant.TenantConfig{
			Workers:    2,
			QueueDepth: *queue,
			BatchLimit: *batchLimit,
			Shards:     *shards,
		},
	})
	def, err := reg.Load(tenant.DefaultTenant, defs, tenant.TenantConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		BatchLimit: *batchLimit,
		Shards:     *shards,
	})
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		return 1
	}
	h := tenant.NewHandler(reg, tenant.HandlerOptions{ImageDir: *imageDir})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "ringd:", err)
		h.Close()
		return 1
	}
	hs := &http.Server{Handler: h}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	// The wire listener shares the registry, so both transports answer
	// from the same descriptor snapshots.
	var ws *wire.Server
	wireErr := make(chan error, 1)
	if *wireAddr != "" {
		wln, err := net.Listen("tcp", *wireAddr)
		if err != nil {
			fmt.Fprintln(stderr, "ringd:", err)
			h.Close()
			return 1
		}
		ws = wire.NewServer(reg, wire.Config{})
		go func() { wireErr <- ws.Serve(wln) }()
		fmt.Fprintf(stdout, "ringd: wire protocol v%d on %s\n", wire.Version, wln.Addr())
		if testHookWireReady != nil {
			testHookWireReady <- wln.Addr().String()
		}
	}

	fmt.Fprintf(stdout, "ringd: serving image %q (%d segments) on %s (%d workers, queue %d, %d shards; up to %d tenants over %d workers)\n",
		def.Name(), len(defs), ln.Addr(), def.Service().Workers(), def.Service().QueueDepth(),
		def.Store().Shards(), *maxTenants, *workerBudget)
	if testHookReady != nil {
		testHookReady <- ln.Addr().String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "ringd:", err)
		h.Close()
		return 1
	case err := <-wireErr:
		fmt.Fprintln(stderr, "ringd:", err)
		h.Close()
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "ringd: %v: draining %d tenants\n", s, reg.Len())
	case <-testHookShutdown:
		fmt.Fprintf(stdout, "ringd: shutdown requested: draining %d tenants\n", reg.Len())
	}

	// Graceful shutdown: stop accepting, finish in-flight HTTP requests
	// and drain wire sessions (accepted batches complete, each session
	// ends with a GoAway), then drain every tenant's decision queue.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(stderr, "ringd: shutdown:", err)
	}
	if ws != nil {
		if err := ws.Shutdown(ctx); err != nil {
			fmt.Fprintln(stderr, "ringd: wire shutdown:", err)
		}
	}
	h.Close()
	fmt.Fprintln(stdout, "ringd: drained, exiting")
	return 0
}
