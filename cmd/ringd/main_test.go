package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/rings"
)

func TestLoadImageDefault(t *testing.T) {
	defs, err := loadImage("")
	if err != nil {
		t.Fatalf("loadImage(\"\"): %v", err)
	}
	if len(defs) == 0 {
		t.Fatal("demo image is empty")
	}
	names := map[string]bool{}
	gated := false
	for _, d := range defs {
		if names[d.Name] {
			t.Errorf("duplicate segment %q", d.Name)
		}
		names[d.Name] = true
		if err := d.Brackets.Validate(); err != nil {
			t.Errorf("segment %q: %v", d.Name, err)
		}
		gated = gated || d.Gates > 0
	}
	if !gated {
		t.Error("demo image has no gated segment")
	}
}

func TestLoadImageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "image.json")
	img := `{"segments": [
		{"name": "a", "size": 64, "read": true, "write": true, "r1": 1, "r2": 3, "r3": 3},
		{"name": "b", "size": 32, "read": true, "execute": true, "r1": 0, "r2": 2, "r3": 5, "gates": 4}
	]}`
	if err := os.WriteFile(path, []byte(img), 0o644); err != nil {
		t.Fatal(err)
	}
	defs, err := loadImage(path)
	if err != nil {
		t.Fatalf("loadImage: %v", err)
	}
	if len(defs) != 2 || defs[0].Name != "a" || defs[1].Gates != 4 {
		t.Errorf("loaded %+v", defs)
	}
	if defs[1].Brackets.R3 != 5 {
		t.Errorf("segment b brackets %+v", defs[1].Brackets)
	}
}

func TestLoadImageErrors(t *testing.T) {
	if _, err := loadImage(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := loadImage(bad); err == nil {
		t.Error("bad JSON: want error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"segments": []}`), 0o644)
	if _, err := loadImage(empty); err == nil {
		t.Error("empty image: want error")
	}
	inverted := filepath.Join(dir, "inverted.json")
	os.WriteFile(inverted, []byte(`{"segments": [{"name": "x", "size": 8, "r1": 5, "r2": 2, "r3": 1}]}`), 0o644)
	if _, err := loadImage(inverted); err == nil {
		t.Error("inverted brackets: want error")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestRunBadImage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-image", filepath.Join(t.TempDir(), "absent.json")}, &out, &errOut); code != 1 {
		t.Errorf("bad image: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "ringd:") {
		t.Errorf("stderr %q lacks ringd: prefix", errOut.String())
	}
}

func TestRunBadShardCount(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-shards", "12"}, &out, &errOut); code != 1 {
		t.Errorf("bad shard count: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "12") {
		t.Errorf("stderr %q does not name the offending count", errOut.String())
	}
}

// TestRunServeAndShutdown boots the daemon on an ephemeral port, drives
// the API end to end, then triggers the graceful drain path.
func TestRunServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	testHookReady = ready
	testHookShutdown = shutdown
	defer func() { testHookReady = nil; testHookShutdown = nil }()

	var out, errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, &errOut)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health struct {
		OK       bool `json:"ok"`
		Workers  int  `json:"workers"`
		Segments int  `json:"segments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if !health.OK || health.Workers != 2 || health.Segments == 0 {
		t.Errorf("healthz %+v", health)
	}

	// A user-ring read of user_data must pass; a user-ring read of
	// sys_data must hit the read bracket.
	body := `{"queries": [
		{"op": "access", "ring": 5, "segment": "user_data", "kind": "read"},
		{"op": "access", "ring": 5, "segment": "sys_data", "kind": "read"},
		{"op": "call", "ring": 5, "segment": "supervisor", "wordno": 3}
	]}`
	resp, err = http.Post(base+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/check: %v", err)
	}
	var check struct {
		Decisions []struct {
			Allowed bool   `json:"allowed"`
			Outcome string `json:"outcome"`
			NewRing uint8  `json:"new_ring"`
		} `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&check); err != nil {
		t.Fatalf("decode check: %v", err)
	}
	resp.Body.Close()
	if len(check.Decisions) != 3 {
		t.Fatalf("got %d decisions", len(check.Decisions))
	}
	if !check.Decisions[0].Allowed || check.Decisions[1].Allowed {
		t.Errorf("decisions: %+v", check.Decisions)
	}
	if check.Decisions[2].Outcome != "downward call" || check.Decisions[2].NewRing != 0 {
		t.Errorf("supervisor call: %+v", check.Decisions[2])
	}

	close(shutdown)
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("stdout %q lacks drain message", out.String())
	}
}

// bootDaemon starts the daemon with the given extra flags and returns
// its base URL, a shutdown trigger, and the exit-code channel.
func bootDaemon(t *testing.T, args ...string) (base string, shutdown chan struct{}, done chan int) {
	t.Helper()
	ready := make(chan string, 1)
	shutdown = make(chan struct{})
	testHookReady = ready
	testHookShutdown = shutdown
	t.Cleanup(func() { testHookReady = nil; testHookShutdown = nil })

	done = make(chan int, 1)
	go func() {
		done <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), io.Discard, io.Discard)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, shutdown, done
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
		return "", nil, nil
	}
}

// stopDaemon triggers the graceful drain and waits for a clean exit.
func stopDaemon(t *testing.T, shutdown chan struct{}, done chan int) {
	t.Helper()
	close(shutdown)
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

// TestRunMultiTenant drives the image registry end to end over the
// wire: load a second tenant, decide against it, seal it (mutations
// 409), evict it (404 afterwards), while the default tenant keeps
// serving the single-tenant surface.
func TestRunMultiTenant(t *testing.T) {
	base, shutdown, done := bootDaemon(t, "-workers", "2", "-worker-budget", "8")
	defer stopDaemon(t, shutdown, done)

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	// Load a small second tenant.
	code, body := post("/v1/images", `{"name": "acct", "workers": 1, "segments": [
		{"name": "ledger", "size": 64, "read": true, "write": true, "r1": 1, "r2": 3, "r3": 3}
	]}`)
	if code != http.StatusCreated {
		t.Fatalf("load: status %d: %s", code, body)
	}

	// Decide against it through the tenant-scoped endpoint.
	code, body = post("/v1/t/acct/check", `{"queries": [
		{"op": "access", "ring": 2, "segment": "ledger", "kind": "read"},
		{"op": "access", "ring": 5, "segment": "ledger", "kind": "read"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("tenant check: status %d: %s", code, body)
	}
	var check struct {
		Decisions []struct {
			Allowed bool `json:"allowed"`
		} `json:"decisions"`
	}
	if err := json.Unmarshal(body, &check); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(check.Decisions) != 2 || !check.Decisions[0].Allowed || check.Decisions[1].Allowed {
		t.Errorf("tenant decisions: %+v", check.Decisions)
	}

	// The default tenant must not know the new tenant's segments.
	code, body = post("/v1/check", `{"queries": [{"op": "access", "ring": 2, "segment": "ledger", "kind": "read"}]}`)
	if code != http.StatusOK {
		t.Fatalf("default check: status %d: %s", code, body)
	}
	var defCheck struct {
		Decisions []struct {
			Err string `json:"err"`
		} `json:"decisions"`
	}
	if err := json.Unmarshal(body, &defCheck); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if defCheck.Decisions[0].Err == "" {
		t.Error("default tenant resolved another tenant's segment name")
	}

	// The listing names both tenants.
	resp, err := http.Get(base + "/v1/images")
	if err != nil {
		t.Fatalf("GET /v1/images: %v", err)
	}
	var list struct {
		Tenants []struct {
			Name  string `json:"name"`
			State string `json:"state"`
		} `json:"tenants"`
		WorkersInUse int `json:"workers_in_use"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list.Tenants) != 2 || list.Tenants[0].Name != "acct" || list.Tenants[1].Name != "default" {
		t.Errorf("listing: %+v", list)
	}
	if list.WorkersInUse != 3 {
		t.Errorf("workers in use = %d, want 3 (2 default + 1 acct)", list.WorkersInUse)
	}

	// Seal: decisions keep flowing, mutations answer 409.
	if code, body = post("/v1/images/acct/seal", ""); code != http.StatusOK {
		t.Fatalf("seal: status %d: %s", code, body)
	}
	if code, body = post("/v1/t/acct/mutate", `{"op": "revoke", "segment": "ledger"}`); code != http.StatusConflict {
		t.Errorf("mutate sealed: status %d, want 409: %s", code, body)
	}
	if code, body = post("/v1/t/acct/check", `{"queries": [{"op": "access", "ring": 2, "segment": "ledger", "kind": "read"}]}`); code != http.StatusOK {
		t.Errorf("check sealed: status %d, want 200: %s", code, body)
	}

	// Evict: the name disappears from the API.
	if code, body = post("/v1/images/acct/evict", ""); code != http.StatusOK {
		t.Fatalf("evict: status %d: %s", code, body)
	}
	if code, _ = post("/v1/t/acct/check", `{"queries": [{"op": "access", "ring": 2, "segno": 0}]}`); code != http.StatusNotFound {
		t.Errorf("check evicted: status %d, want 404", code)
	}
	if code, _ = post("/v1/images/acct/seal", ""); code != http.StatusNotFound {
		t.Errorf("seal evicted: status %d, want 404", code)
	}
}

// TestRunShutdownWithQueuedBatches is the graceful-drain regression:
// a burst of concurrent batches is in flight when the shutdown
// triggers. Every response must be a clean 200 (drained before the
// listener closed) or a connection/503 refusal — never a 500 — and
// the daemon must still exit 0.
func TestRunShutdownWithQueuedBatches(t *testing.T) {
	base, shutdown, done := bootDaemon(t, "-workers", "1", "-queue", "4")

	body := `{"queries": [
		{"op": "access", "ring": 5, "segment": "user_data", "kind": "read"},
		{"op": "call", "ring": 5, "segment": "supervisor", "wordno": 3},
		{"op": "effring", "ring": 2, "chain": [{"ring": 3, "segno": 1}, {"pr": true, "ring": 6}]}
	]}`
	const inflight = 16
	var wg sync.WaitGroup
	statuses := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/check", "application/json", strings.NewReader(body))
			if err != nil {
				return // connection refused after the listener closed
			}
			defer resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	// Trigger the drain while the burst is in flight.
	close(shutdown)
	wg.Wait()
	close(statuses)
	for code := range statuses {
		switch code {
		case http.StatusOK, http.StatusServiceUnavailable, http.StatusTooManyRequests:
		default:
			t.Errorf("in-flight batch answered %d during drain", code)
		}
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain with batches queued")
	}
}

// TestRunMutationRacingDrain pins the 409 contract at daemon level: a
// stream of mutations racing an eviction must see only 200 (applied
// before the drain), 409 (conflict during/after the state flip), or
// 404 (tenant already gone) — never a 500.
func TestRunMutationRacingDrain(t *testing.T) {
	base, shutdown, done := bootDaemon(t, "-worker-budget", "8")
	defer stopDaemon(t, shutdown, done)

	code := postStatus(t, base+"/v1/images", `{"name": "victim", "workers": 1, "segments": [
		{"name": "seg", "size": 16, "read": true, "write": true, "r1": 1, "r2": 3, "r3": 3}
	]}`)
	if code != http.StatusCreated {
		t.Fatalf("load: status %d", code)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	bad := make(chan int, 64)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			body := fmt.Sprintf(`{"op": "setbrackets", "segment": "seg", "read": true, "write": true, "r1": 1, "r2": %d, "r3": %d}`, 2+i%2, 3)
			switch s := postStatus(t, base+"/v1/t/victim/mutate", body); s {
			case http.StatusOK, http.StatusConflict, http.StatusNotFound:
			default:
				select {
				case bad <- s:
				default:
				}
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	if code := postStatus(t, base+"/v1/images/victim/evict", ""); code != http.StatusOK {
		t.Errorf("evict: status %d", code)
	}
	close(stop)
	wg.Wait()
	close(bad)
	for s := range bad {
		t.Errorf("mutation racing drain answered %d (want 200/409/404)", s)
	}
}

// postStatus posts a body and returns only the status code.
func postStatus(t *testing.T, url, body string) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var sink bytes.Buffer
	sink.ReadFrom(resp.Body)
	return resp.StatusCode
}

// TestRunWireListener boots the daemon with both listeners and drives
// the binary streaming protocol end to end through rings.DialRemote:
// health, decisions consistent with the demo image, a mutation, and a
// graceful drain with the session still open.
func TestRunWireListener(t *testing.T) {
	ready := make(chan string, 1)
	wireReady := make(chan string, 1)
	shutdown := make(chan struct{})
	testHookReady = ready
	testHookWireReady = wireReady
	testHookShutdown = shutdown
	defer func() { testHookReady = nil; testHookWireReady = nil; testHookShutdown = nil }()

	var out, errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-listen-wire", "127.0.0.1:0", "-workers", "2"}, &out, &errOut)
	}()
	var wireAddr string
	select {
	case wireAddr = <-wireReady:
	case <-time.After(10 * time.Second):
		t.Fatal("wire listener did not come up")
	}
	<-ready // let the HTTP hook drain so the daemon reaches its select

	rc, err := rings.DialRemote(wireAddr, rings.RemoteConfig{})
	if err != nil {
		t.Fatalf("DialRemote: %v", err)
	}
	defer rc.Close()

	h, err := rc.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Workers != 2 || h.Segments == 0 {
		t.Errorf("health = %+v", h)
	}

	// Same semantics TestRunServeAndShutdown checks over HTTP: a
	// user-ring read of user_data passes, sys_data hits the bracket,
	// and a supervisor call goes downward to ring 0.
	ds, err := rc.Check(
		rings.Query{Op: rings.OpAccess, Ring: 5, Segment: "user_data", Kind: rings.AccessRead},
		rings.Query{Op: rings.OpAccess, Ring: 5, Segment: "sys_data", Kind: rings.AccessRead},
		rings.Query{Op: rings.OpCall, Ring: 5, Segment: "supervisor", Wordno: 3},
	)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if !ds[0].Allowed || ds[1].Allowed {
		t.Errorf("decisions: %+v", ds[:2])
	}
	if ds[2].Outcome != "downward call" || ds[2].NewRing != 0 {
		t.Errorf("supervisor call: %+v", ds[2])
	}

	close(shutdown)
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain with a wire session open")
	}
	if !strings.Contains(out.String(), "wire protocol v") {
		t.Errorf("stdout %q lacks wire startup line", out.String())
	}

	// The drained server must refuse further work on this session.
	if _, err := rc.Check(rings.Query{Op: rings.OpAccess, Ring: 5, Segment: "user_data", Kind: rings.AccessRead}); err == nil {
		t.Error("check after drain: want error")
	}
}
