package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestLoadImageDefault(t *testing.T) {
	defs, err := loadImage("")
	if err != nil {
		t.Fatalf("loadImage(\"\"): %v", err)
	}
	if len(defs) == 0 {
		t.Fatal("demo image is empty")
	}
	names := map[string]bool{}
	gated := false
	for _, d := range defs {
		if names[d.Name] {
			t.Errorf("duplicate segment %q", d.Name)
		}
		names[d.Name] = true
		if err := d.Brackets.Validate(); err != nil {
			t.Errorf("segment %q: %v", d.Name, err)
		}
		gated = gated || d.Gates > 0
	}
	if !gated {
		t.Error("demo image has no gated segment")
	}
}

func TestLoadImageFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "image.json")
	img := `{"segments": [
		{"name": "a", "size": 64, "read": true, "write": true, "r1": 1, "r2": 3, "r3": 3},
		{"name": "b", "size": 32, "read": true, "execute": true, "r1": 0, "r2": 2, "r3": 5, "gates": 4}
	]}`
	if err := os.WriteFile(path, []byte(img), 0o644); err != nil {
		t.Fatal(err)
	}
	defs, err := loadImage(path)
	if err != nil {
		t.Fatalf("loadImage: %v", err)
	}
	if len(defs) != 2 || defs[0].Name != "a" || defs[1].Gates != 4 {
		t.Errorf("loaded %+v", defs)
	}
	if defs[1].Brackets.R3 != 5 {
		t.Errorf("segment b brackets %+v", defs[1].Brackets)
	}
}

func TestLoadImageErrors(t *testing.T) {
	if _, err := loadImage(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file: want error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{nope"), 0o644)
	if _, err := loadImage(bad); err == nil {
		t.Error("bad JSON: want error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"segments": []}`), 0o644)
	if _, err := loadImage(empty); err == nil {
		t.Error("empty image: want error")
	}
	inverted := filepath.Join(dir, "inverted.json")
	os.WriteFile(inverted, []byte(`{"segments": [{"name": "x", "size": 8, "r1": 5, "r2": 2, "r3": 1}]}`), 0o644)
	if _, err := loadImage(inverted); err == nil {
		t.Error("inverted brackets: want error")
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-nonsense"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

func TestRunBadImage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-image", filepath.Join(t.TempDir(), "absent.json")}, &out, &errOut); code != 1 {
		t.Errorf("bad image: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "ringd:") {
		t.Errorf("stderr %q lacks ringd: prefix", errOut.String())
	}
}

func TestRunBadShardCount(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-shards", "12"}, &out, &errOut); code != 1 {
		t.Errorf("bad shard count: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "12") {
		t.Errorf("stderr %q does not name the offending count", errOut.String())
	}
}

// TestRunServeAndShutdown boots the daemon on an ephemeral port, drives
// the API end to end, then triggers the graceful drain path.
func TestRunServeAndShutdown(t *testing.T) {
	ready := make(chan string, 1)
	shutdown := make(chan struct{})
	testHookReady = ready
	testHookShutdown = shutdown
	defer func() { testHookReady = nil; testHookShutdown = nil }()

	var out, errOut bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-workers", "2"}, &out, &errOut)
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not come up")
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var health struct {
		OK       bool `json:"ok"`
		Workers  int  `json:"workers"`
		Segments int  `json:"segments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if !health.OK || health.Workers != 2 || health.Segments == 0 {
		t.Errorf("healthz %+v", health)
	}

	// A user-ring read of user_data must pass; a user-ring read of
	// sys_data must hit the read bracket.
	body := `{"queries": [
		{"op": "access", "ring": 5, "segment": "user_data", "kind": "read"},
		{"op": "access", "ring": 5, "segment": "sys_data", "kind": "read"},
		{"op": "call", "ring": 5, "segment": "supervisor", "wordno": 3}
	]}`
	resp, err = http.Post(base+"/v1/check", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/check: %v", err)
	}
	var check struct {
		Decisions []struct {
			Allowed bool   `json:"allowed"`
			Outcome string `json:"outcome"`
			NewRing uint8  `json:"new_ring"`
		} `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&check); err != nil {
		t.Fatalf("decode check: %v", err)
	}
	resp.Body.Close()
	if len(check.Decisions) != 3 {
		t.Fatalf("got %d decisions", len(check.Decisions))
	}
	if !check.Decisions[0].Allowed || check.Decisions[1].Allowed {
		t.Errorf("decisions: %+v", check.Decisions)
	}
	if check.Decisions[2].Outcome != "downward call" || check.Decisions[2].NewRing != 0 {
		t.Errorf("supervisor call: %+v", check.Decisions[2])
	}

	close(shutdown)
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if !strings.Contains(out.String(), "drained, exiting") {
		t.Errorf("stdout %q lacks drain message", out.String())
	}
}
