// Command ringfig prints the paper's descriptive figures: the access
// indicator diagrams of Figures 1 and 2 and the storage formats of
// Figure 3.
//
// Usage:
//
//	ringfig [-fig 1|2|3|all]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/figures"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringfig", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "all", "figure to print: 1, 2, 3 or all")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *fig {
	case "1":
		fmt.Fprintln(stdout, figures.Figure1())
	case "2":
		fmt.Fprintln(stdout, figures.Figure2())
	case "3":
		fmt.Fprintln(stdout, figures.Figure3())
	case "all":
		fmt.Fprintln(stdout, figures.Figure1())
		fmt.Fprintln(stdout, figures.Figure2())
		fmt.Fprintln(stdout, figures.Figure3())
	default:
		fmt.Fprintf(stderr, "ringfig: unknown figure %q\n", *fig)
		return 2
	}
	return 0
}
