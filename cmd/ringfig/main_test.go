package main

import (
	"strings"
	"testing"
)

func TestRunFigures(t *testing.T) {
	for _, fig := range []string{"1", "2", "3", "all"} {
		var out, errb strings.Builder
		if code := run([]string{"-fig", fig}, &out, &errb); code != 0 {
			t.Errorf("fig %s: exit %d (%s)", fig, code, errb.String())
		}
		if out.Len() == 0 {
			t.Errorf("fig %s: empty output", fig)
		}
	}
	var out, errb strings.Builder
	if code := run([]string{"-fig", "9"}, &out, &errb); code == 0 {
		t.Error("unknown figure accepted")
	}
	if code := run([]string{"-bogus"}, &out, &errb); code == 0 {
		t.Error("bad flag accepted")
	}
}
