// Command ringload is a closed-loop load generator for the
// protection-decision service: it replays a synthetic mix of
// access/call/return/effring queries — in-process through
// rings.Checker, or over HTTP against a running ringd — at a
// configurable concurrency and duration, and reports throughput plus
// p50/p95/p99 batch latency.
//
// Usage:
//
//	ringload [-c 4] [-duration 2s] [-batch 64]
//	         [-mix access=8,call=1,return=1,effring=1]
//	         [-workers 4] [-shards 0] [-queue 0]
//	         [-mutators 1] [-seed 1] [-sweep 1,2,4,8]
//	         [-sweep-workers 1,2,4] [-tenants 1]
//	         [-target http://host:8642] [-transport http]
//	         [-compare-transports] [-client-cache] [-json]
//
// Each of the -c clients owns one pre-generated query batch pool and
// one reusable decision buffer, and loops: submit, record the batch
// latency, repeat — a closed loop, so offered load adapts to service
// capacity. In-process mode drives Checker.CheckInto (the
// zero-allocation path); -target mode replays the same batches against
// a running ringd — POSTing JSON to /v1/check by default, or (with
// -transport wire) pipelining binary frames down one persistent
// streaming session shared by every client, the correlation-ID path
// ringd serves on -listen-wire. -mutators adds supervisor goroutines streaming
// SetBrackets edits through the store's snapshot-publish path while
// decisions run (in-process only). -sweep repeats the whole run across
// several descriptor-store shard counts and -sweep-workers across
// several worker-pool sizes; given both, the cross product is swept
// (the T14 scaling grid).
//
// -tenants N (N >= 2, in-process) runs the T15 isolation experiment
// instead: N independent tenants are loaded into one tenant.Registry,
// the -c hot clients spread their load over tenants 0..N-2 with a
// Zipf-skewed pick per batch, and one extra cold client drives tenant
// N-1 alone. A baseline trial (cold client only) runs first; the
// headline metric is the cold tenant's p99 under contention relative
// to that baseline — per-tenant worker pools and bounded queues should
// hold it near 1.0 while the hot tenants saturate their quotas and
// shed.
//
// -compare-transports (in-process) runs the T16 transport experiment:
// one registry serves the demo image simultaneously over a loopback
// HTTP listener and a loopback wire listener; the same client count
// and batch pools drive first the JSON transport, then the binary
// streaming transport, and the headline metrics are the throughput
// speedup and p99 ratio of wire over HTTP at equal worker count.
//
// -client-cache (in-process) runs the T17 decision-lease experiment:
// one registry behind a loopback wire listener is driven twice per
// cell of a server-side mutation-rate grid — once through a plain
// wire session, once through a session fronted by the client-side
// decision-lease cache (rings.DialRemote with CacheSize), which stays
// coherent via the Subscribe/Shootdown stream. A paced supervisor
// goroutine edits user_data's brackets at each grid rate, so every
// cell measures cached speedup and hit rate under that invalidation
// pressure.
//
// With -json, results are emitted as a JSON array in the same shape as
// ringbench -json (id, title, host_ns, metrics, lines), so the two
// artifacts can feed the same dashboards.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tenant"
	"repro/internal/wire"
	"repro/rings"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// config is the parsed flag set.
type config struct {
	clients      int
	duration     time.Duration
	batch        int
	mix          mix
	workers      int
	shards       int
	queue        int
	mutators     int
	seed         int64
	sweep        []int
	sweepWorkers []int
	tenants      int
	target       string
	transport    string
	compare      bool
	clientCache  bool
	jsonOut      bool
}

// mix is the query mix as integer weights.
type mix struct {
	access, call, ret, effring int
}

func (m mix) total() int { return m.access + m.call + m.ret + m.effring }

func parseMix(s string) (mix, error) {
	m := mix{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return m, fmt.Errorf("mix term %q is not name=weight", part)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 0 {
			return m, fmt.Errorf("mix weight %q is not a non-negative integer", val)
		}
		switch name {
		case "access":
			m.access = w
		case "call":
			m.call = w
		case "return":
			m.ret = w
		case "effring":
			m.effring = w
		default:
			return m, fmt.Errorf("unknown mix op %q", name)
		}
	}
	if m.total() == 0 {
		return m, errors.New("mix has zero total weight")
	}
	return m, nil
}

func parseSweep(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("sweep entry %q is not a positive integer", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// loadImage is the image the in-process modes serve: the same
// Multics-flavoured layout ringd's built-in demo image uses, so
// in-process and -target runs exercise comparable descriptor shapes.
func loadImage() []rings.Segment {
	return []rings.Segment{
		{Name: "supervisor", Size: 4096, Read: true, Execute: true,
			Brackets: rings.Brackets{R1: 0, R2: 0, R3: 7}, Gates: 8},
		{Name: "sys_data", Size: 1024, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 0, R2: 2, R3: 2}},
		{Name: "math_lib", Size: 2048, Read: true, Execute: true,
			Brackets: rings.Brackets{R1: 0, R2: 7, R3: 7}},
		{Name: "editor", Size: 2048, Read: true, Execute: true,
			Brackets: rings.Brackets{R1: 4, R2: 4, R3: 5}, Gates: 2},
		{Name: "user_code", Size: 1024, Read: true, Execute: true,
			Brackets: rings.Brackets{R1: 4, R2: 6, R3: 6}},
		{Name: "user_data", Size: 4096, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 4, R2: 6, R3: 6}},
	}
}

// genQuery draws one query from the mix. Targets are numbered segments
// (segno form), so the same generator works in-process and against any
// ringd image with at least `segments` segments.
func genQuery(rng *rand.Rand, m mix, segments uint32) rings.Query {
	pick := rng.Intn(m.total())
	segno := rng.Uint32() % segments
	ring := rings.Ring(rng.Intn(8))
	wordno := rng.Uint32() % 64
	switch {
	case pick < m.access:
		kinds := [3]rings.AccessKind{rings.AccessRead, rings.AccessWrite, rings.AccessExecute}
		return rings.Query{Op: rings.OpAccess, Ring: ring, Segno: segno, Wordno: wordno, Kind: kinds[rng.Intn(3)]}
	case pick < m.access+m.call:
		return rings.Query{Op: rings.OpCall, Ring: ring, Segno: segno, Wordno: wordno % 8}
	case pick < m.access+m.call+m.ret:
		eff := rings.Ring(rng.Intn(8))
		return rings.Query{Op: rings.OpReturn, Ring: ring, Segno: segno, Wordno: wordno, EffRing: &eff}
	default:
		chain := make([]rings.ChainStep, 1+rng.Intn(3))
		for i := range chain {
			if rng.Intn(2) == 0 {
				chain[i] = rings.ChainStep{PR: true, Ring: rings.Ring(rng.Intn(8))}
			} else {
				chain[i] = rings.ChainStep{Ring: rings.Ring(rng.Intn(8)), Segno: rng.Uint32() % segments}
			}
		}
		return rings.Query{Op: rings.OpEffRing, Ring: ring, Chain: chain}
	}
}

// genBatches pre-generates the per-client batch pools so the hot loop
// only submits; client c cycles through its own pool deterministically
// (seed + client index).
func genBatches(cfg config, segments uint32) [][][]rings.Query {
	const poolSize = 16
	pools := make([][][]rings.Query, cfg.clients)
	for c := range pools {
		rng := rand.New(rand.NewSource(cfg.seed + int64(c)))
		pools[c] = make([][]rings.Query, poolSize)
		for p := range pools[c] {
			batch := make([]rings.Query, cfg.batch)
			for i := range batch {
				batch[i] = genQuery(rng, cfg.mix, segments)
			}
			pools[c][p] = batch
		}
	}
	return pools
}

// ---- Log-linear latency histogram ----

// subBits gives 2^subBits linear sub-buckets per power-of-two range:
// ~6% relative resolution, enough for p99 on a histogram that never
// needs sorting or unbounded memory.
const subBits = 4

type hist struct {
	counts [64 << subBits]uint64
	n      uint64
}

func (h *hist) add(ns int64) {
	v := uint64(max(ns, 0))
	h.n++
	if v < 1<<subBits {
		h.counts[v]++
		return
	}
	exp := bits.Len64(v) - 1
	sub := (v >> (exp - subBits)) & (1<<subBits - 1)
	h.counts[uint64(exp-subBits+1)<<subBits|sub]++
}

func (h *hist) merge(o *hist) {
	h.n += o.n
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
}

// quantile returns the lower bound of the bucket holding the q-th
// sample (0 < q <= 1).
func (h *hist) quantile(q float64) int64 {
	if h.n == 0 {
		return 0
	}
	target := uint64(q * float64(h.n))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			block := uint64(i) >> subBits
			sub := uint64(i) & (1<<subBits - 1)
			if block == 0 {
				return int64(sub)
			}
			return int64((1<<subBits | sub) << (block - 1))
		}
	}
	return 0
}

// ---- Drivers ----

// driver submits one pre-built batch and fills dst (in-process) or
// parses the response (HTTP), returning service.ErrQueueFull-equivalent
// shedding as (shed=true).
type driver interface {
	submit(client int, batch []rings.Query, dst []rings.Decision) (shed bool, err error)
	close()
}

// checkerDriver drives the decision path in-process.
type checkerDriver struct{ chk *rings.Checker }

func (d *checkerDriver) submit(_ int, batch []rings.Query, dst []rings.Decision) (bool, error) {
	err := d.chk.CheckInto(batch, dst)
	if errors.Is(err, rings.ErrQueueFull) {
		return true, nil
	}
	return false, err
}

func (d *checkerDriver) close() { d.chk.Close() }

// httpDriver replays the batches against a running ringd. Request
// bodies are marshalled once per pool batch and reused.
type httpDriver struct {
	target string
	client *http.Client
	bodies map[*rings.Query][]byte // keyed by &batch[0]
	mu     sync.Mutex
}

func newHTTPDriver(target string) *httpDriver {
	return &httpDriver{
		target: strings.TrimSuffix(target, "/"),
		client: &http.Client{Timeout: 30 * time.Second},
		bodies: make(map[*rings.Query][]byte),
	}
}

// segments asks /healthz how many segments the served image holds, so
// generated segnos stay mostly in range.
func (d *httpDriver) segments() (uint32, error) {
	resp, err := d.client.Get(d.target + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		OK       bool `json:"ok"`
		Segments int  `json:"segments"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	if !h.OK || h.Segments <= 0 {
		return 0, fmt.Errorf("target unhealthy: %+v", h)
	}
	return uint32(h.Segments), nil
}

// wireBatch mirrors the /v1/check request schema (access kinds as
// strings).
func wireBatch(batch []rings.Query) ([]byte, error) {
	type wq struct {
		Op          string            `json:"op"`
		Ring        uint8             `json:"ring"`
		Segno       uint32            `json:"segno,omitempty"`
		Wordno      uint32            `json:"wordno,omitempty"`
		Kind        string            `json:"kind,omitempty"`
		EffRing     *uint8            `json:"eff_ring,omitempty"`
		SameSegment bool              `json:"same_segment,omitempty"`
		Chain       []rings.ChainStep `json:"chain,omitempty"`
	}
	kinds := map[rings.AccessKind]string{
		rings.AccessRead: "read", rings.AccessWrite: "write", rings.AccessExecute: "execute",
	}
	out := struct {
		Queries []wq `json:"queries"`
	}{Queries: make([]wq, len(batch))}
	for i, q := range batch {
		w := wq{Op: string(q.Op), Ring: uint8(q.Ring), Segno: q.Segno,
			Wordno: q.Wordno, SameSegment: q.SameSegment, Chain: q.Chain}
		if q.Op == rings.OpAccess {
			w.Kind = kinds[q.Kind]
		}
		if q.EffRing != nil {
			r := uint8(*q.EffRing)
			w.EffRing = &r
		}
		out.Queries[i] = w
	}
	return json.Marshal(out)
}

func (d *httpDriver) body(batch []rings.Query) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if b, ok := d.bodies[&batch[0]]; ok {
		return b, nil
	}
	b, err := wireBatch(batch)
	if err == nil {
		d.bodies[&batch[0]] = b
	}
	return b, err
}

func (d *httpDriver) submit(_ int, batch []rings.Query, dst []rings.Decision) (bool, error) {
	body, err := d.body(batch)
	if err != nil {
		return false, err
	}
	resp, err := d.client.Post(d.target+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		io.Copy(io.Discard, resp.Body)
		return true, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("/v1/check: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
	}
	var cr struct {
		Decisions []rings.Decision `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		return false, err
	}
	if len(cr.Decisions) != len(batch) {
		return false, fmt.Errorf("/v1/check: %d decisions for %d queries", len(cr.Decisions), len(batch))
	}
	copy(dst, cr.Decisions)
	return false, nil
}

func (d *httpDriver) close() {}

// wireDriver replays the batches over ONE binary streaming session
// shared by every client goroutine: concurrent submits pipeline down
// the persistent connection and complete out of order by correlation
// ID — the transport shape -listen-wire exists for. (Per-client
// sessions would measure connection fan-out, not streaming.)
type wireDriver struct{ rc *rings.RemoteChecker }

func dialWireDriver(target string) (*wireDriver, uint32, error) {
	rc, err := rings.DialRemote(target, rings.RemoteConfig{Transport: "wire"})
	if err != nil {
		return nil, 0, err
	}
	h, err := rc.Health()
	if err != nil {
		rc.Close()
		return nil, 0, err
	}
	if h.Segments <= 0 {
		rc.Close()
		return nil, 0, fmt.Errorf("target unhealthy: %+v", h)
	}
	return &wireDriver{rc: rc}, uint32(h.Segments), nil
}

func (d *wireDriver) submit(_ int, batch []rings.Query, dst []rings.Decision) (bool, error) {
	err := d.rc.CheckInto(batch, dst)
	if errors.Is(err, rings.ErrQueueFull) {
		return true, nil
	}
	return false, err
}

func (d *wireDriver) close() { d.rc.Close() }

// ---- T16: transport comparison ----

// runT16 serves one registry over both transports on loopback
// listeners and measures the same closed-loop trial over each: the
// JSON-vs-binary delta at equal worker count.
func runT16(cfg config) ([]jsonResult, error) {
	reg := tenant.NewRegistry(tenant.Config{
		MaxTenants:   1,
		WorkerBudget: cfg.workers,
	})
	segs := loadImage()
	if _, err := reg.Load(tenant.DefaultTenant, segs, tenant.TenantConfig{
		Workers: cfg.workers, QueueDepth: cfg.queue, Shards: cfg.shards,
	}); err != nil {
		return nil, err
	}
	h := tenant.NewHandler(reg, tenant.HandlerOptions{})
	hln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		h.Close()
		return nil, err
	}
	hs := &http.Server{Handler: h}
	go hs.Serve(hln)
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		hs.Close()
		h.Close()
		return nil, err
	}
	ws := wire.NewServer(reg, wire.Config{})
	go ws.Serve(wln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx)
		ws.Shutdown(ctx)
		h.Close()
	}()

	cfg.mutators = 0 // both transports drive decisions only
	pools := genBatches(cfg, uint32(len(segs)))

	httpRes, err := runTrial(cfg, newHTTPDriver("http://"+hln.Addr().String()), nil, pools)
	if err != nil {
		return nil, err
	}
	wd, _, err := dialWireDriver(wln.Addr().String())
	if err != nil {
		return nil, err
	}
	wireRes, err := runTrial(cfg, wd, nil, pools)
	wd.close()
	if err != nil {
		return nil, err
	}

	httpReport := report(cfg, httpRes, "http")
	httpReport.ID = "RINGLOAD-T16-HTTP"
	httpReport.Title = "transport comparison: HTTP/JSON request-response"
	wireReport := report(cfg, wireRes, "wire")
	wireReport.ID = "RINGLOAD-T16-WIRE"
	wireReport.Title = "transport comparison: binary streaming session"

	speedup := 0.0
	if t := httpRes.throughput(); t > 0 {
		speedup = wireRes.throughput() / t
	}
	p99Ratio := 0.0
	if p := httpRes.lat.quantile(0.99); p > 0 {
		p99Ratio = float64(wireRes.lat.quantile(0.99)) / float64(p)
	}
	delta := jsonResult{
		ID:     "RINGLOAD-T16",
		Title:  "transport comparison: binary streaming vs HTTP/JSON delta",
		HostNs: httpRes.elapsed.Nanoseconds() + wireRes.elapsed.Nanoseconds(),
		Metrics: map[string]float64{
			"wire_speedup":           speedup,
			"p99_ratio":              p99Ratio,
			"http_decisions_per_sec": httpRes.throughput(),
			"wire_decisions_per_sec": wireRes.throughput(),
			"http_p99_ns":            float64(httpRes.lat.quantile(0.99)),
			"wire_p99_ns":            float64(wireRes.lat.quantile(0.99)),
			"clients":                float64(cfg.clients),
			"batch":                  float64(cfg.batch),
			"workers":                float64(cfg.workers),
		},
		Lines: []string{
			fmt.Sprintf("%d clients x batch %d, %d workers, %v per transport",
				cfg.clients, cfg.batch, cfg.workers, cfg.duration),
			fmt.Sprintf("http: %.0f decisions/s, p99 %v", httpRes.throughput(),
				time.Duration(httpRes.lat.quantile(0.99))),
			fmt.Sprintf("wire: %.0f decisions/s, p99 %v (one session, pipelined)",
				wireRes.throughput(), time.Duration(wireRes.lat.quantile(0.99))),
			fmt.Sprintf("wire/http: %.2fx throughput, %.2fx p99", speedup, p99Ratio),
		},
	}
	return []jsonResult{httpReport, wireReport, delta}, nil
}

// ---- T17: client-side decision leases ----

// t17Rates is the server-side mutation-rate grid, supervisor edits per
// second against the user_data segment: an idle store, a trickle, and
// an aggressive editor. Each rate prices the shootdown stream — every
// edit invalidates the edited shard's leases on every subscribed
// client mid-trial.
var t17Rates = []int{0, 100, 1000}

// t17Trial runs one closed-loop trial against the wire listener at
// addr — through a plain session when cacheSize is 0, through a
// decision-lease cache in front of the session otherwise — while a
// paced supervisor goroutine edits user_data's brackets rate times per
// second through the store's snapshot-publish path (the same edit
// runTrial's in-process mutators stream, but rate-limited so both
// trials in a grid cell see identical invalidation pressure).
func t17Trial(cfg config, addr string, cacheSize int, rate int, tnt *tenant.Tenant, udSegno uint32, pools [][][]rings.Query) (*result, rings.CacheStats, error) {
	rcfg := rings.RemoteConfig{Transport: "wire"}
	if cacheSize > 0 {
		rcfg.CacheSize = cacheSize
		rcfg.CacheTTL = 5 * time.Second // coherence comes from shootdowns; TTL is the lag backstop
	}
	rc, err := rings.DialRemote(addr, rcfg)
	if err != nil {
		return nil, rings.CacheStats{}, err
	}
	d := &wireDriver{rc: rc}

	stopMut := make(chan struct{})
	var mutWG sync.WaitGroup
	var mutations atomic.Uint64
	var mutErr atomic.Value
	if rate > 0 {
		mutWG.Add(1)
		go func() {
			defer mutWG.Done()
			wide := rings.Brackets{R1: 4, R2: 6, R3: 6}
			narrow := rings.Brackets{R1: 4, R2: 5, R3: 5}
			tick := time.NewTicker(time.Second / time.Duration(rate))
			defer tick.Stop()
			for i := 0; ; i++ {
				select {
				case <-stopMut:
					return
				case <-tick.C:
				}
				b := wide
				if i%2 == 0 {
					b = narrow
				}
				if err := tnt.Store().SetBrackets(udSegno, true, true, false, b, 0); err != nil {
					mutErr.Store(err)
					return
				}
				mutations.Add(1)
			}
		}()
	}

	res, err := runTrial(cfg, d, nil, pools)
	close(stopMut)
	mutWG.Wait()
	stats := rc.CacheStats()
	d.close()
	if err != nil {
		return nil, stats, err
	}
	if e, ok := mutErr.Load().(error); ok {
		return nil, stats, e
	}
	res.mutations = mutations.Load()
	return res, stats, nil
}

// runT17 serves one registry over a loopback wire listener and, for
// each mutation rate in t17Rates, measures the same batch pools twice:
// uncached (every batch a wire round trip) and cached (repeat queries
// answered from decision leases kept coherent by the shootdown
// stream). The headline is the idle-store cell: cached throughput over
// uncached, at the observed lease hit rate.
func runT17(cfg config) ([]jsonResult, error) {
	reg := tenant.NewRegistry(tenant.Config{
		MaxTenants:   1,
		WorkerBudget: cfg.workers,
	})
	segs := loadImage()
	tnt, err := reg.Load(tenant.DefaultTenant, segs, tenant.TenantConfig{
		Workers: cfg.workers, QueueDepth: cfg.queue, Shards: cfg.shards,
	})
	if err != nil {
		reg.Close()
		return nil, err
	}
	udSegno, ok := tnt.Store().Segno("user_data")
	if !ok {
		reg.Close()
		return nil, errors.New("demo image has no user_data segment")
	}
	wln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		reg.Close()
		return nil, err
	}
	ws := wire.NewServer(reg, wire.Config{})
	go ws.Serve(wln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
		reg.Close()
	}()

	cfg.mutators = 0 // T17 paces its own supervisor edits per grid cell
	// Multi-shard effring chains are stamped Shard = -1 (their epoch
	// interval is a sum over consulted shards), which makes them
	// deliberately lease-ineligible — a single shootdown can't name
	// their interval. One such query per batch forces the whole batch
	// onto the wire, so the grid measures the cacheable mix.
	cfg.mix.effring = 0
	pools := genBatches(cfg, uint32(len(segs)))
	// Each client cycles a 16-batch pool, so the whole working set is
	// clients x 16 x batch queries; size the cache past it so eviction
	// never competes with shootdowns for the hit rate.
	cacheSize := 2 * cfg.clients * 16 * cfg.batch

	addr := wln.Addr().String()
	var out []jsonResult
	var headSpeedup, headHitRate float64
	var headNs int64
	for _, rate := range t17Rates {
		un, _, err := t17Trial(cfg, addr, 0, rate, tnt, udSegno, pools)
		if err != nil {
			return nil, err
		}
		ca, stats, err := t17Trial(cfg, addr, cacheSize, rate, tnt, udSegno, pools)
		if err != nil {
			return nil, err
		}
		hitRate := 0.0
		if n := stats.Hits + stats.Misses; n > 0 {
			hitRate = float64(stats.Hits) / float64(n)
		}
		speedup := 0.0
		if t := un.throughput(); t > 0 {
			speedup = ca.throughput() / t
		}
		if rate == t17Rates[0] {
			headSpeedup, headHitRate = speedup, hitRate
		}
		headNs += un.elapsed.Nanoseconds() + ca.elapsed.Nanoseconds()
		out = append(out, jsonResult{
			ID:     fmt.Sprintf("RINGLOAD-T17-M%d", rate),
			Title:  fmt.Sprintf("decision leases: cached vs uncached wire at %d edits/s", rate),
			HostNs: un.elapsed.Nanoseconds() + ca.elapsed.Nanoseconds(),
			Metrics: map[string]float64{
				"mutation_rate":              float64(rate),
				"uncached_decisions_per_sec": un.throughput(),
				"cached_decisions_per_sec":   ca.throughput(),
				"cached_speedup":             speedup,
				"hit_rate":                   hitRate,
				"uncached_p99_ns":            float64(un.lat.quantile(0.99)),
				"cached_p99_ns":              float64(ca.lat.quantile(0.99)),
				"lease_hits":                 float64(stats.Hits),
				"lease_misses":               float64(stats.Misses),
				"lease_shootdowns":           float64(stats.Shootdowns),
				"mutations":                  float64(ca.mutations),
				"clients":                    float64(cfg.clients),
				"batch":                      float64(cfg.batch),
				"workers":                    float64(cfg.workers),
			},
			Lines: []string{
				fmt.Sprintf("%d clients x batch %d, %d workers, %v per trial, %d supervisor edits/s",
					cfg.clients, cfg.batch, cfg.workers, cfg.duration, rate),
				fmt.Sprintf("uncached wire: %.0f decisions/s, p99 %v", un.throughput(),
					time.Duration(un.lat.quantile(0.99))),
				fmt.Sprintf("cached wire: %.0f decisions/s, p99 %v (%.1f%% lease hits, %d shootdowns)",
					ca.throughput(), time.Duration(ca.lat.quantile(0.99)),
					100*hitRate, stats.Shootdowns),
				fmt.Sprintf("cached/uncached: %.2fx throughput", speedup),
			},
		})
	}
	head := jsonResult{
		ID:     "RINGLOAD-T17",
		Title:  "decision leases: client cache speedup over uncached wire",
		HostNs: headNs,
		Metrics: map[string]float64{
			"cached_speedup": headSpeedup,
			"hit_rate":       headHitRate,
			"clients":        float64(cfg.clients),
			"batch":          float64(cfg.batch),
			"workers":        float64(cfg.workers),
		},
		Lines: []string{
			fmt.Sprintf("idle store: %.2fx cached throughput at %.1f%% lease hit rate",
				headSpeedup, 100*headHitRate),
			fmt.Sprintf("grid: %v edits/s cells above, same pools both sides per cell", t17Rates),
		},
	}
	return append(out, head), nil
}

// ---- T15: multi-tenant isolation ----

// zipfS is the Zipf skew of the hot-tenant pick: s=1.2 concentrates
// most batches on the first few tenants, the realistic "one noisy
// neighbour" shape.
const zipfS = 1.2

// t15Result is one T15 trial's measurements: the cold tenant's own
// latency/throughput, the hot aggregate, and the per-tenant decision
// spread.
type t15Result struct {
	elapsed   time.Duration
	cold      hist
	coldN     uint64
	hot       hist
	hotN      uint64
	shed      uint64
	perTenant []uint64
}

// t15Trial drives one trial: a single cold client on the last tenant,
// plus (when contended) cfg.clients hot clients Zipf-spread over the
// others. pools must hold cfg.clients+1 client pools; the extra one
// feeds the cold client.
func t15Trial(cfg config, ts []*tenant.Tenant, pools [][][]rings.Query, contended bool) (*t15Result, error) {
	res := &t15Result{}
	cold := ts[len(ts)-1]
	nhot := 0
	if contended {
		nhot = cfg.clients
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, nhot+1)
	hotHists := make([]hist, nhot)
	perTenant := make([]atomic.Uint64, len(ts))
	var hotN, shed atomic.Uint64
	ctx := context.Background()

	start := time.Now()
	for c := 0; c < nhot; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + 1000 + int64(c)))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(ts)-2))
			dst := make([]rings.Decision, cfg.batch)
			pool := pools[c]
			for i := 0; !stop.Load(); i++ {
				idx := int(zipf.Uint64())
				batch := pool[i%len(pool)]
				t0 := time.Now()
				err := ts[idx].SubmitInto(ctx, batch, dst)
				switch {
				case err == nil:
					hotHists[c].add(time.Since(t0).Nanoseconds())
					perTenant[idx].Add(uint64(len(batch)))
					hotN.Add(uint64(len(batch)))
				case errors.Is(err, rings.ErrQueueFull):
					shed.Add(1)
				default:
					errc <- err
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		dst := make([]rings.Decision, cfg.batch)
		pool := pools[cfg.clients]
		for i := 0; !stop.Load(); i++ {
			batch := pool[i%len(pool)]
			t0 := time.Now()
			err := cold.SubmitInto(ctx, batch, dst)
			switch {
			case err == nil:
				res.cold.add(time.Since(t0).Nanoseconds())
				res.coldN += uint64(len(batch))
			case errors.Is(err, rings.ErrQueueFull):
				shed.Add(1)
			default:
				errc <- err
				return
			}
		}
	}()
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	res.elapsed = time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	res.hotN, res.shed = hotN.Load(), shed.Load()
	for i := range hotHists {
		res.hot.merge(&hotHists[i])
	}
	res.perTenant = make([]uint64, len(ts))
	for i := range perTenant {
		res.perTenant[i] = perTenant[i].Load()
	}
	return res, nil
}

// runT15 loads cfg.tenants independent demo-image tenants into one
// registry, measures the cold tenant alone (baseline), then again with
// Zipf-skewed hot neighbours, and reports both trials.
func runT15(cfg config) ([]jsonResult, error) {
	if cfg.tenants < 2 {
		return nil, fmt.Errorf("-tenants wants at least 2, got %d", cfg.tenants)
	}
	reg := tenant.NewRegistry(tenant.Config{
		MaxTenants:   cfg.tenants,
		WorkerBudget: cfg.tenants * cfg.workers,
	})
	defer reg.Close()
	segs := loadImage()
	ts := make([]*tenant.Tenant, cfg.tenants)
	for i := range ts {
		t, err := reg.Load(fmt.Sprintf("t%d", i), segs, tenant.TenantConfig{
			Workers: cfg.workers, QueueDepth: cfg.queue, Shards: cfg.shards,
		})
		if err != nil {
			return nil, err
		}
		ts[i] = t
	}

	gen := cfg
	gen.clients = cfg.clients + 1 // the extra pool feeds the cold client
	pools := genBatches(gen, uint32(len(segs)))

	base, err := t15Trial(cfg, ts, pools, false)
	if err != nil {
		return nil, err
	}
	cont, err := t15Trial(cfg, ts, pools, true)
	if err != nil {
		return nil, err
	}

	coldTPS := func(r *t15Result) float64 {
		if r.elapsed <= 0 {
			return 0
		}
		return float64(r.coldN) / r.elapsed.Seconds()
	}
	baseline := jsonResult{
		ID:     "RINGLOAD-T15-BASELINE",
		Title:  "tenant isolation baseline: cold tenant alone",
		HostNs: base.elapsed.Nanoseconds(),
		Metrics: map[string]float64{
			"cold_decisions_per_sec": coldTPS(base),
			"cold_p50_ns":            float64(base.cold.quantile(0.50)),
			"cold_p99_ns":            float64(base.cold.quantile(0.99)),
			"tenants":                float64(cfg.tenants),
			"workers_per_tenant":     float64(cfg.workers),
			"batch":                  float64(cfg.batch),
		},
		Lines: []string{
			fmt.Sprintf("%d tenants x %d workers, cold client only, batch %d, %v",
				cfg.tenants, cfg.workers, cfg.batch, cfg.duration),
			fmt.Sprintf("cold tenant t%d: %d decisions (%.0f/s), p50 %v p99 %v",
				cfg.tenants-1, base.coldN, coldTPS(base),
				time.Duration(base.cold.quantile(0.50)), time.Duration(base.cold.quantile(0.99))),
		},
	}

	ratio := 0.0
	if p := base.cold.quantile(0.99); p > 0 {
		ratio = float64(cont.cold.quantile(0.99)) / float64(p)
	}
	hottest := 0
	for i, n := range cont.perTenant {
		if n > cont.perTenant[hottest] {
			hottest = i
		}
	}
	hotShare := 0.0
	if cont.hotN > 0 {
		hotShare = 100 * float64(cont.perTenant[hottest]) / float64(cont.hotN)
	}
	contended := jsonResult{
		ID:     "RINGLOAD-T15",
		Title:  "tenant isolation: Zipf-hot neighbours vs cold tenant p99",
		HostNs: cont.elapsed.Nanoseconds(),
		Metrics: map[string]float64{
			"hot_decisions_per_sec":  float64(cont.hotN) / cont.elapsed.Seconds(),
			"hot_p99_ns":             float64(cont.hot.quantile(0.99)),
			"shed_batches":           float64(cont.shed),
			"cold_decisions_per_sec": coldTPS(cont),
			"cold_p99_ns":            float64(cont.cold.quantile(0.99)),
			"cold_p99_baseline_ns":   float64(base.cold.quantile(0.99)),
			"cold_p99_ratio":         ratio,
			"tenants":                float64(cfg.tenants),
			"workers_per_tenant":     float64(cfg.workers),
			"clients":                float64(cfg.clients),
			"batch":                  float64(cfg.batch),
		},
		Lines: []string{
			fmt.Sprintf("%d tenants x %d workers, %d hot clients (zipf s=%.1f over t0..t%d) + 1 cold client, batch %d, %v",
				cfg.tenants, cfg.workers, cfg.clients, zipfS, cfg.tenants-2, cfg.batch, cfg.duration),
			fmt.Sprintf("hot aggregate: %d decisions (%.0f/s), p99 %v, %d batches shed; hottest t%d took %.0f%%",
				cont.hotN, float64(cont.hotN)/cont.elapsed.Seconds(),
				time.Duration(cont.hot.quantile(0.99)), cont.shed, hottest, hotShare),
			fmt.Sprintf("cold tenant t%d: %d decisions (%.0f/s), p99 %v vs baseline %v (ratio %.2f)",
				cfg.tenants-1, cont.coldN, coldTPS(cont),
				time.Duration(cont.cold.quantile(0.99)), time.Duration(base.cold.quantile(0.99)), ratio),
		},
	}
	return []jsonResult{baseline, contended}, nil
}

// ---- Run loop ----

// result is one trial's measurements.
type result struct {
	shards    int
	elapsed   time.Duration
	decisions uint64
	batches   uint64
	shed      uint64
	mutations uint64
	lat       hist
}

func (r *result) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.decisions) / r.elapsed.Seconds()
}

// runTrial drives the closed loop: cfg.clients goroutines submitting
// from their batch pools until the duration elapses, plus cfg.mutators
// supervisor goroutines (in-process only) streaming bracket edits.
func runTrial(cfg config, d driver, chk *rings.Checker, pools [][][]rings.Query) (*result, error) {
	res := &result{shards: cfg.shards}
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, cfg.clients+cfg.mutators)
	hists := make([]hist, cfg.clients)
	var decisions, batches, shed, mutations atomic.Uint64

	start := time.Now()
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dst := make([]rings.Decision, cfg.batch)
			pool := pools[c]
			for i := 0; !stop.Load(); i++ {
				batch := pool[i%len(pool)]
				t0 := time.Now()
				wasShed, err := d.submit(c, batch, dst)
				if err != nil {
					errc <- err
					return
				}
				if wasShed {
					shed.Add(1)
					continue
				}
				hists[c].add(time.Since(t0).Nanoseconds())
				decisions.Add(uint64(len(batch)))
				batches.Add(1)
			}
		}()
	}
	wide := rings.Brackets{R1: 4, R2: 6, R3: 6}
	narrow := rings.Brackets{R1: 4, R2: 5, R3: 5}
	for m := 0; m < cfg.mutators; m++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				b := wide
				if i%2 == 0 {
					b = narrow
				}
				if err := chk.SetBrackets("user_data", true, true, false, b, 0); err != nil {
					errc <- err
					return
				}
				mutations.Add(1)
			}
		}()
	}
	time.Sleep(cfg.duration)
	stop.Store(true)
	wg.Wait()
	res.elapsed = time.Since(start)
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	res.decisions, res.batches = decisions.Load(), batches.Load()
	res.shed, res.mutations = shed.Load(), mutations.Load()
	for i := range hists {
		res.lat.merge(&hists[i])
	}
	return res, nil
}

// jsonResult matches ringbench -json's element shape so both artifacts
// feed the same tooling.
type jsonResult struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	HostNs  int64              `json:"host_ns"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Lines   []string           `json:"lines"`
}

func report(cfg config, res *result, mode string) jsonResult {
	id := "RINGLOAD"
	switch {
	case len(cfg.sweep) > 0 && len(cfg.sweepWorkers) > 0:
		id = fmt.Sprintf("RINGLOAD-S%d-W%d", res.shards, cfg.workers)
	case len(cfg.sweep) > 0:
		id = fmt.Sprintf("RINGLOAD-S%d", res.shards)
	case len(cfg.sweepWorkers) > 0:
		id = fmt.Sprintf("RINGLOAD-W%d", cfg.workers)
	}
	lines := []string{
		fmt.Sprintf("mode %s, %d clients x batch %d, %v", mode, cfg.clients, cfg.batch, cfg.duration),
		fmt.Sprintf("mix access=%d call=%d return=%d effring=%d, seed %d",
			cfg.mix.access, cfg.mix.call, cfg.mix.ret, cfg.mix.effring, cfg.seed),
		fmt.Sprintf("decisions %d in %v (%.0f decisions/s), %d batches, %d shed",
			res.decisions, res.elapsed.Round(time.Millisecond), res.throughput(), res.batches, res.shed),
		fmt.Sprintf("batch latency p50 %v p95 %v p99 %v",
			time.Duration(res.lat.quantile(0.50)), time.Duration(res.lat.quantile(0.95)), time.Duration(res.lat.quantile(0.99))),
	}
	if mode == "in-process" {
		lines = append(lines, fmt.Sprintf("shards %d, workers %d, %d concurrent supervisor edits",
			res.shards, cfg.workers, res.mutations))
	}
	return jsonResult{
		ID:     id,
		Title:  "protection-decision load: synthetic access/call/return mix",
		HostNs: res.elapsed.Nanoseconds(),
		Metrics: map[string]float64{
			"decisions_per_sec": res.throughput(),
			"decisions":         float64(res.decisions),
			"batches":           float64(res.batches),
			"shed_batches":      float64(res.shed),
			"mutations":         float64(res.mutations),
			"p50_ns":            float64(res.lat.quantile(0.50)),
			"p95_ns":            float64(res.lat.quantile(0.95)),
			"p99_ns":            float64(res.lat.quantile(0.99)),
			"clients":           float64(cfg.clients),
			"batch":             float64(cfg.batch),
			"workers":           float64(cfg.workers),
			"shards":            float64(res.shards),
		},
		Lines: lines,
	}
}

// trialInProcess builds a Checker at the given shard count and runs one
// trial over it.
func trialInProcess(cfg config, shards int) (*result, error) {
	chk, err := rings.NewCheckerWith(rings.CheckerConfig{
		Workers:    cfg.workers,
		QueueDepth: cfg.queue,
		Shards:     shards,
	}, loadImage())
	if err != nil {
		return nil, err
	}
	d := &checkerDriver{chk: chk}
	defer d.close()
	cfg.shards = chk.Shards()
	pools := genBatches(cfg, uint32(len(loadImage())))
	return runTrial(cfg, d, chk, pools)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	clients := fs.Int("c", 4, "concurrent closed-loop clients")
	duration := fs.Duration("duration", 2*time.Second, "run length per trial")
	batch := fs.Int("batch", 64, "queries per submitted batch")
	mixFlag := fs.String("mix", "access=8,call=1,return=1,effring=1", "query mix weights")
	workers := fs.Int("workers", 4, "decision workers (in-process mode)")
	shards := fs.Int("shards", 0, "descriptor-store shards (in-process; 0 = default)")
	queue := fs.Int("queue", 0, "batch-queue depth (in-process; 0 = default)")
	mutators := fs.Int("mutators", 1, "concurrent supervisor-edit goroutines (in-process)")
	seed := fs.Int64("seed", 1, "query-generation seed")
	sweepFlag := fs.String("sweep", "", "comma-separated shard counts to sweep (in-process)")
	sweepWorkersFlag := fs.String("sweep-workers", "", "comma-separated worker counts to sweep (in-process; with -sweep, the cross product)")
	tenants := fs.Int("tenants", 1, "tenants for the T15 isolation experiment (>= 2 enables it; in-process)")
	target := fs.String("target", "", "ringd base URL; empty runs in-process")
	transport := fs.String("transport", "http", "transport for -target mode: http (JSON request-response) or wire (binary streaming session)")
	compare := fs.Bool("compare-transports", false, "run the T16 transport experiment in-process: same registry over HTTP and wire loopback listeners")
	clientCache := fs.Bool("client-cache", false, "run the T17 decision-lease experiment in-process: cached wire clients vs uncached across a mutation-rate grid")
	jsonOut := fs.Bool("json", false, "emit results as a ringbench-compatible JSON array")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	m, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(stderr, "ringload:", err)
		return 1
	}
	sweep, err := parseSweep(*sweepFlag)
	if err != nil {
		fmt.Fprintln(stderr, "ringload:", err)
		return 1
	}
	sweepWorkers, err := parseSweep(*sweepWorkersFlag)
	if err != nil {
		fmt.Fprintln(stderr, "ringload:", err)
		return 1
	}
	if *clients <= 0 || *batch <= 0 || *duration <= 0 {
		fmt.Fprintln(stderr, "ringload: -c, -batch and -duration must be positive")
		return 1
	}
	if *tenants > 1 && *target != "" {
		fmt.Fprintln(stderr, "ringload: -tenants is in-process only, not with -target")
		return 1
	}
	if *transport != "http" && *transport != "wire" {
		fmt.Fprintf(stderr, "ringload: -transport must be http or wire, got %q\n", *transport)
		return 1
	}
	if *compare && *target != "" {
		fmt.Fprintln(stderr, "ringload: -compare-transports is in-process only, not with -target")
		return 1
	}
	if *compare && *tenants > 1 {
		fmt.Fprintln(stderr, "ringload: -compare-transports and -tenants are separate experiments")
		return 1
	}
	if *clientCache && *target != "" {
		fmt.Fprintln(stderr, "ringload: -client-cache is in-process only, not with -target")
		return 1
	}
	if *clientCache && *tenants > 1 {
		fmt.Fprintln(stderr, "ringload: -client-cache and -tenants are separate experiments")
		return 1
	}
	cfg := config{
		clients: *clients, duration: *duration, batch: *batch, mix: m,
		workers: *workers, shards: *shards, queue: *queue,
		mutators: *mutators, seed: *seed, sweep: sweep, sweepWorkers: sweepWorkers,
		tenants: *tenants, target: *target, transport: *transport,
		compare: *compare, clientCache: *clientCache, jsonOut: *jsonOut,
	}

	var results []jsonResult
	switch {
	case cfg.target != "":
		var d driver
		var segments uint32
		if cfg.transport == "wire" {
			d, segments, err = dialWireDriver(cfg.target)
		} else {
			hd := newHTTPDriver(cfg.target)
			segments, err = hd.segments()
			d = hd
		}
		if err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		cfg.mutators = 0 // supervisor edits are in-process only
		pools := genBatches(cfg, segments)
		res, err := runTrial(cfg, d, nil, pools)
		d.close()
		if err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		results = append(results, report(cfg, res, cfg.transport))
	default:
		// In-process sections compose: a sweep grid, the T15 tenant
		// experiment, or (when neither is asked for) one plain trial —
		// all emitted into the same results array, so CI gets one
		// artifact from one invocation.
		ran := false
		if len(cfg.sweep) > 0 || len(cfg.sweepWorkers) > 0 {
			// Sweep the worker × shard grid in ascending order; a missing
			// axis holds the flag (or default) value fixed.
			shardCounts := append([]int(nil), cfg.sweep...)
			if len(shardCounts) == 0 {
				shardCounts = []int{cfg.shards}
			}
			workerCounts := append([]int(nil), cfg.sweepWorkers...)
			if len(workerCounts) == 0 {
				workerCounts = []int{cfg.workers}
			}
			sort.Ints(shardCounts)
			sort.Ints(workerCounts)
			scfg := cfg
			for _, w := range workerCounts {
				for _, n := range shardCounts {
					scfg.workers = w
					res, err := trialInProcess(scfg, n)
					if err != nil {
						fmt.Fprintln(stderr, "ringload:", err)
						return 1
					}
					results = append(results, report(scfg, res, "in-process"))
				}
			}
			ran = true
		}
		if cfg.tenants > 1 {
			t15, err := runT15(cfg)
			if err != nil {
				fmt.Fprintln(stderr, "ringload:", err)
				return 1
			}
			results = append(results, t15...)
			ran = true
		}
		if cfg.compare {
			t16, err := runT16(cfg)
			if err != nil {
				fmt.Fprintln(stderr, "ringload:", err)
				return 1
			}
			results = append(results, t16...)
			ran = true
		}
		if cfg.clientCache {
			t17, err := runT17(cfg)
			if err != nil {
				fmt.Fprintln(stderr, "ringload:", err)
				return 1
			}
			results = append(results, t17...)
			ran = true
		}
		if !ran {
			res, err := trialInProcess(cfg, cfg.shards)
			if err != nil {
				fmt.Fprintln(stderr, "ringload:", err)
				return 1
			}
			results = append(results, report(cfg, res, "in-process"))
		}
	}

	if cfg.jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, "ringload:", err)
			return 1
		}
		return 0
	}
	for _, r := range results {
		fmt.Fprintf(stdout, "== %s: %s\n", r.ID, r.Title)
		for _, line := range r.Lines {
			fmt.Fprintln(stdout, "  ", line)
		}
	}
	return 0
}
