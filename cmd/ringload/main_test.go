package main

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/tenant"
	"repro/internal/wire"
	"repro/rings"
)

func TestParseMix(t *testing.T) {
	m, err := parseMix("access=8,call=1,return=1,effring=1")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	if m != (mix{access: 8, call: 1, ret: 1, effring: 1}) || m.total() != 11 {
		t.Errorf("mix = %+v", m)
	}
	if m, err := parseMix("access=1"); err != nil || m.total() != 1 {
		t.Errorf("access-only mix: %+v, %v", m, err)
	}
	for _, bad := range []string{"", "access", "access=-1", "frobnicate=3", "access=0,call=0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q): want error", bad)
		}
	}
}

func TestParseSweep(t *testing.T) {
	s, err := parseSweep("1, 2,4,8")
	if err != nil || len(s) != 4 || s[3] != 8 {
		t.Errorf("parseSweep: %v, %v", s, err)
	}
	if s, err := parseSweep(""); err != nil || s != nil {
		t.Errorf("empty sweep: %v, %v", s, err)
	}
	for _, bad := range []string{"0", "x", "1,,2", "-4"} {
		if _, err := parseSweep(bad); err == nil {
			t.Errorf("parseSweep(%q): want error", bad)
		}
	}
}

// TestHistQuantile feeds a known distribution and checks the log-linear
// histogram's percentiles land within its ~6% bucket resolution.
func TestHistQuantile(t *testing.T) {
	var h hist
	for i := int64(1); i <= 10000; i++ {
		h.add(i)
	}
	for _, c := range []struct {
		q    float64
		want int64
	}{{0.50, 5000}, {0.95, 9500}, {0.99, 9900}} {
		got := h.quantile(c.q)
		if got < c.want*9/10 || got > c.want*11/10 {
			t.Errorf("quantile(%.2f) = %d, want within 10%% of %d", c.q, got, c.want)
		}
	}
	var empty hist
	if got := empty.quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	var tiny hist
	tiny.add(7)
	if got := tiny.quantile(0.99); got != 7 {
		t.Errorf("single-sample quantile = %d, want 7", got)
	}
}

// TestGenQueryDeterministicAndValid checks that generation is
// reproducible for a seed and only produces well-formed queries (the
// load must measure decisions, not error handling).
func TestGenQueryDeterministicAndValid(t *testing.T) {
	m := mix{access: 8, call: 1, ret: 1, effring: 1}
	a, b := rand.New(rand.NewSource(42)), rand.New(rand.NewSource(42))
	chk, err := rings.NewChecker(loadImage())
	if err != nil {
		t.Fatalf("NewChecker: %v", err)
	}
	defer chk.Close()
	for i := 0; i < 200; i++ {
		qa, qb := genQuery(a, m, 6), genQuery(b, m, 6)
		if qa.Op != qb.Op || qa.Segno != qb.Segno || qa.Ring != qb.Ring {
			t.Fatalf("generation diverged at %d: %+v vs %+v", i, qa, qb)
		}
		ds, err := chk.Check(qa)
		if err != nil {
			t.Fatalf("Check: %v", err)
		}
		if ds[0].Err != "" {
			t.Fatalf("generated query %d is malformed: %+v -> %q", i, qa, ds[0].Err)
		}
	}
}

// runJSON runs the command and decodes its JSON output.
func runJSON(t *testing.T, args ...string) []jsonResult {
	t.Helper()
	var out, errOut bytes.Buffer
	if code := run(append(args, "-json"), &out, &errOut); code != 0 {
		t.Fatalf("run(%v) = %d, stderr: %s", args, code, errOut.String())
	}
	var results []jsonResult
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	return results
}

func TestRunInProcess(t *testing.T) {
	results := runJSON(t, "-c", "2", "-batch", "8", "-duration", "150ms", "-workers", "2")
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.ID != "RINGLOAD" || r.HostNs <= 0 {
		t.Errorf("result shape: %+v", r)
	}
	for _, key := range []string{"decisions_per_sec", "decisions", "p50_ns", "p95_ns", "p99_ns", "shards", "mutations"} {
		if _, ok := r.Metrics[key]; !ok {
			t.Errorf("metric %q missing: %v", key, r.Metrics)
		}
	}
	if r.Metrics["decisions"] <= 0 || r.Metrics["decisions_per_sec"] <= 0 {
		t.Errorf("no decisions measured: %v", r.Metrics)
	}
	if r.Metrics["shards"] != 8 {
		t.Errorf("default shards = %v, want 8", r.Metrics["shards"])
	}
	if r.Metrics["p50_ns"] <= 0 || r.Metrics["p99_ns"] < r.Metrics["p50_ns"] {
		t.Errorf("latency percentiles inconsistent: %v", r.Metrics)
	}
}

func TestRunSweep(t *testing.T) {
	results := runJSON(t, "-c", "2", "-batch", "8", "-duration", "100ms", "-sweep", "2,1")
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].ID != "RINGLOAD-S1" || results[1].ID != "RINGLOAD-S2" {
		t.Errorf("sweep ids: %s, %s (want ascending shard order)", results[0].ID, results[1].ID)
	}
	if results[0].Metrics["shards"] != 1 || results[1].Metrics["shards"] != 2 {
		t.Errorf("sweep shard metrics: %v, %v", results[0].Metrics, results[1].Metrics)
	}
}

func TestRunSweepWorkers(t *testing.T) {
	results := runJSON(t, "-c", "2", "-batch", "8", "-duration", "100ms", "-sweep-workers", "2,1")
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2", len(results))
	}
	if results[0].ID != "RINGLOAD-W1" || results[1].ID != "RINGLOAD-W2" {
		t.Errorf("worker-sweep ids: %s, %s (want ascending worker order)", results[0].ID, results[1].ID)
	}
	if results[0].Metrics["workers"] != 1 || results[1].Metrics["workers"] != 2 {
		t.Errorf("worker-sweep metrics: %v, %v", results[0].Metrics, results[1].Metrics)
	}
}

// TestRunSweepGrid checks the T14 cross product: -sweep × -sweep-workers
// runs every (workers, shards) cell, workers outermost, both ascending.
func TestRunSweepGrid(t *testing.T) {
	results := runJSON(t, "-c", "2", "-batch", "8", "-duration", "50ms",
		"-sweep", "2,1", "-sweep-workers", "2,1")
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	wantIDs := []string{"RINGLOAD-S1-W1", "RINGLOAD-S2-W1", "RINGLOAD-S1-W2", "RINGLOAD-S2-W2"}
	for i, want := range wantIDs {
		if results[i].ID != want {
			t.Errorf("grid cell %d: id %s, want %s", i, results[i].ID, want)
		}
	}
	for i, want := range []struct{ w, s float64 }{{1, 1}, {1, 2}, {2, 1}, {2, 2}} {
		if results[i].Metrics["workers"] != want.w || results[i].Metrics["shards"] != want.s {
			t.Errorf("grid cell %d: workers=%v shards=%v, want %v/%v",
				i, results[i].Metrics["workers"], results[i].Metrics["shards"], want.w, want.s)
		}
	}
}

func TestRunHTTPTarget(t *testing.T) {
	st, err := service.NewStore(service.StoreConfig{}, []service.Segment{
		{Name: "data", Size: 64, Read: true, Write: true,
			Brackets: rings.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 64, Read: true, Execute: true,
			Brackets: rings.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
	})
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := service.New(st, service.Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(service.NewServer(svc))
	defer srv.Close()
	defer svc.Close()

	results := runJSON(t, "-c", "2", "-batch", "4", "-duration", "150ms", "-target", srv.URL)
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Metrics["decisions"] <= 0 {
		t.Errorf("no decisions over HTTP: %v", r.Metrics)
	}
	if r.Metrics["mutations"] != 0 {
		t.Errorf("HTTP mode ran mutators: %v", r.Metrics)
	}
	if !strings.Contains(strings.Join(r.Lines, "\n"), "mode http") {
		t.Errorf("lines missing mode: %v", r.Lines)
	}
	if snap := svc.Snapshot(); snap.Queries == 0 {
		t.Errorf("server saw no queries")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-mix", "bogus"},
		{"-sweep", "0"},
		{"-sweep-workers", "0"},
		{"-c", "0"},
		{"-duration", "0s"},
	} {
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("run(%v): want non-zero exit", args)
		}
	}
}

// TestRunWireTarget replays batches against a wire.Server over the
// binary streaming transport and checks the closed loop measures real
// decisions, mirroring TestRunHTTPTarget.
func TestRunWireTarget(t *testing.T) {
	reg := tenant.NewRegistry(tenant.Config{MaxTenants: 1, WorkerBudget: 2})
	if _, err := reg.Load(tenant.DefaultTenant, loadImage(), tenant.TenantConfig{Workers: 2}); err != nil {
		t.Fatalf("Load: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	ws := wire.NewServer(reg, wire.Config{})
	go ws.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		ws.Shutdown(ctx)
		reg.Close()
	}()

	results := runJSON(t, "-c", "2", "-batch", "4", "-duration", "150ms",
		"-target", ln.Addr().String(), "-transport", "wire")
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	r := results[0]
	if r.Metrics["decisions"] <= 0 {
		t.Errorf("no decisions over the wire: %v", r.Metrics)
	}
	if r.Metrics["mutations"] != 0 {
		t.Errorf("wire mode ran mutators: %v", r.Metrics)
	}
	if !strings.Contains(strings.Join(r.Lines, "\n"), "mode wire") {
		t.Errorf("lines missing mode: %v", r.Lines)
	}
}

// TestRunCompareTransports smoke-tests the T16 experiment: three
// results (http, wire, delta) with the headline ratio metrics present
// and consistent.
func TestRunCompareTransports(t *testing.T) {
	results := runJSON(t, "-c", "2", "-batch", "8", "-duration", "150ms",
		"-workers", "2", "-compare-transports")
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	wantIDs := []string{"RINGLOAD-T16-HTTP", "RINGLOAD-T16-WIRE", "RINGLOAD-T16"}
	for i, want := range wantIDs {
		if results[i].ID != want {
			t.Errorf("result %d: id %s, want %s", i, results[i].ID, want)
		}
	}
	httpRes, wireRes, delta := results[0], results[1], results[2]
	if httpRes.Metrics["decisions"] <= 0 || wireRes.Metrics["decisions"] <= 0 {
		t.Fatalf("a transport measured no decisions: http %v, wire %v",
			httpRes.Metrics, wireRes.Metrics)
	}
	for _, key := range []string{"wire_speedup", "p99_ratio", "http_decisions_per_sec", "wire_decisions_per_sec"} {
		if _, ok := delta.Metrics[key]; !ok {
			t.Errorf("delta metric %q missing: %v", key, delta.Metrics)
		}
	}
	if delta.Metrics["wire_speedup"] <= 0 {
		t.Errorf("wire_speedup = %v, want > 0", delta.Metrics["wire_speedup"])
	}
	wantRatio := wireRes.Metrics["decisions_per_sec"] / httpRes.Metrics["decisions_per_sec"]
	if got := delta.Metrics["wire_speedup"]; got < wantRatio*0.99 || got > wantRatio*1.01 {
		t.Errorf("wire_speedup = %v, inconsistent with per-transport metrics (%v)", got, wantRatio)
	}
}

// TestRunRejectsBadTransportFlags pins the flag-validation edges the
// transport work added.
func TestRunRejectsBadTransportFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-transport", "telepathy"},
		{"-compare-transports", "-target", "http://localhost:1"},
		{"-compare-transports", "-tenants", "2"},
	} {
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("run(%v): want non-zero exit", args)
		}
	}
}
