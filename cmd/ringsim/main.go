// Command ringsim assembles and runs a program on the simulated
// ring-protection machine.
//
// Usage:
//
//	ringsim [flags] program.s
//
// The program is assembled together with the standard supervisor gate
// segment (sysgates) and the calling-convention macros, so it may call
// supervisor services; execution starts at word 0 of the segment named
// by -start in the ring given by -ring.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/debug"
	"repro/rings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ringsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		start    = fs.String("start", "main", "segment to start in")
		ring     = fs.Int("ring", 4, "ring of execution to start in (0-7)")
		user     = fs.String("user", "user", "user name for ACL checks")
		steps    = fs.Int("steps", 1<<20, "maximum instructions to execute")
		traceOn  = fs.Bool("trace", false, "print the execution trace")
		audit    = fs.Bool("audit", false, "print the supervisor audit log")
		baseline = fs.Bool("baseline", false, "run on the 645-style software-ring machine")
		list     = fs.Bool("list", false, "print the assembly listing instead of running")
		breakAt  = fs.String("break", "", "breakpoint as seg:label or seg:word; dumps registers at each hit")
		watchAt  = fs.String("watch", "", "watchpoint as seg:label or seg:word; dumps registers on change")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: ringsim [flags] program.s")
		fs.Usage()
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}
	if *ring < 0 || *ring >= rings.NumRings {
		fmt.Fprintf(stderr, "ringsim: ring %d out of range\n", *ring)
		return 2
	}

	if *list {
		prog, err := rings.Assemble(rings.StdMacros + string(src))
		if err != nil {
			fmt.Fprintln(stderr, "ringsim:", err)
			return 1
		}
		fmt.Fprint(stdout, prog.Listing())
		return 0
	}

	if *baseline {
		return runBaseline(string(src), *start, rings.Ring(*ring), *steps, stdout, stderr)
	}

	sys, err := rings.NewSystem(rings.SystemConfig{
		User:       *user,
		Trace:      *traceOn,
		TraceLimit: 20000, // keep -trace bounded on long programs
	}, rings.StdMacros+string(src))
	if err != nil {
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}
	if *breakAt != "" || *watchAt != "" {
		return runDebug(sys, rings.Ring(*ring), *start, *steps, *breakAt, *watchAt, stdout, stderr)
	}

	res, err := sys.RunAt(rings.Ring(*ring), *start, 0, *steps)
	if err != nil {
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}
	if res.Console != "" {
		fmt.Fprint(stdout, res.Console)
	}
	if *traceOn {
		fmt.Fprint(stderr, sys.Trace())
	}
	if *audit {
		for _, a := range sys.Audit() {
			fmt.Fprintln(stderr, "audit:", a)
		}
	}
	switch {
	case res.Trap != nil:
		fmt.Fprintf(stderr, "ringsim: %v\n", res.Trap)
		return 1
	case res.Exited:
		fmt.Fprintf(stderr, "ringsim: exit(%d) after %d instructions, %d cycles\n",
			res.ExitCode, res.Steps, res.Cycles)
		if res.ExitCode != 0 {
			return int(res.ExitCode & 0x7F)
		}
	default:
		fmt.Fprintf(stderr, "ringsim: halted in %v after %d instructions, %d cycles (A=%d)\n",
			res.FinalRing, res.Steps, res.Cycles, res.A)
	}
	return 0
}

func runBaseline(src, start string, ring rings.Ring, steps int, stdout, stderr io.Writer) int {
	m, err := rings.Baseline(rings.SystemConfig{}, rings.StdMacros+src)
	if err != nil {
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}
	if err := m.Start(ring, start, 0); err != nil {
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}
	if _, err := m.Run(steps); err != nil {
		fmt.Fprintf(stderr, "ringsim: %v\n", err)
		for _, a := range m.Audit {
			fmt.Fprintln(stderr, "audit:", a)
		}
		return 1
	}
	fmt.Fprintf(stderr, "ringsim: baseline halted in software ring %d, %d cycles, %d crossings (A=%d)\n",
		m.Ring, m.CPU.Cycles, m.Crossings, m.CPU.A.Int64())
	return 0
}

// parseAddr resolves "seg:label" or "seg:word" against the system.
func parseAddr(sys *rings.System, spec string) (debug.Addr, error) {
	var zero debug.Addr
	i := strings.IndexByte(spec, ':')
	if i <= 0 || i == len(spec)-1 {
		return zero, fmt.Errorf("bad address %q (want seg:label or seg:word)", spec)
	}
	segName, loc := spec[:i], spec[i+1:]
	segno, err := sys.Segno(segName)
	if err != nil {
		return zero, err
	}
	if off, err := sys.Symbol(segName, loc); err == nil {
		return debug.Addr{Segno: segno, Wordno: off}, nil
	}
	n, err := strconv.ParseUint(loc, 10, 18)
	if err != nil {
		return zero, fmt.Errorf("no label or word number %q in %q", loc, segName)
	}
	return debug.Addr{Segno: segno, Wordno: uint32(n)}, nil
}

// runDebug runs under the debugger, dumping registers at each stop.
func runDebug(sys *rings.System, ring rings.Ring, start string, steps int, breakAt, watchAt string, stdout, stderr io.Writer) int {
	if err := sys.Img.Start(ring, start, 0); err != nil {
		fmt.Fprintln(stderr, "ringsim:", err)
		return 1
	}
	d := debug.New(sys.CPU())
	if breakAt != "" {
		a, err := parseAddr(sys, breakAt)
		if err != nil {
			fmt.Fprintln(stderr, "ringsim:", err)
			return 2
		}
		d.AddBreak(a)
	}
	if watchAt != "" {
		a, err := parseAddr(sys, watchAt)
		if err != nil {
			fmt.Fprintln(stderr, "ringsim:", err)
			return 2
		}
		if err := d.AddWatch(a); err != nil {
			fmt.Fprintln(stderr, "ringsim:", err)
			return 2
		}
	}
	const maxStops = 50
	for stops := 0; ; {
		stop := d.Run(steps)
		switch stop.Cause {
		case debug.StopBreak:
			fmt.Fprintf(stderr, "breakpoint at %v\n%s", stop.At, d.Dump())
			stops++
			// Step over the breakpoint so Run does not re-stop here.
			if s2, err := d.Step(); err != nil || (s2 != nil && s2.Cause != debug.StopWatch) {
				if s2 != nil && s2.Cause == debug.StopHalt {
					fmt.Fprintln(stderr, "ringsim: halted")
					fmt.Fprint(stdout, sys.Sup.Console.String())
					return 0
				}
				fmt.Fprintln(stderr, "ringsim: stopped during step-over")
				return 1
			}
		case debug.StopWatch:
			fmt.Fprintf(stderr, "watchpoint %v: %v -> %v at %v\n%s",
				stop.Watched, stop.Old, stop.New, stop.At, d.Dump())
			stops++
		case debug.StopHalt:
			fmt.Fprint(stdout, sys.Sup.Console.String())
			fmt.Fprintln(stderr, "ringsim: halted")
			return 0
		case debug.StopTrap:
			fmt.Fprintln(stderr, "ringsim:", stop.Err)
			return 1
		default:
			fmt.Fprintln(stderr, "ringsim: step limit reached")
			return 1
		}
		if stops >= maxStops {
			fmt.Fprintln(stderr, "ringsim: too many stops; giving up")
			return 1
		}
	}
}
