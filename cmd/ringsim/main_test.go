package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testProg = `
        .seg    main
        .bracket 4,4,4
        lia     42
        callg   sysgates$putnum
        lia     0
        callg   sysgates$exit
`

const baselineProg = `
        .seg    main
        .bracket 4,4,4
        callg   svc$entry
        hlt

        .seg    svc
        .bracket 1,1,5
        .gate   entry
entry:  leafenter
        lia     5
        leafexit
`

func writeProg(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.s")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProgram(t *testing.T) {
	path := writeProg(t, testProg)
	var out, errb strings.Builder
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if out.String() != "42\n" {
		t.Errorf("stdout %q", out.String())
	}
	if !strings.Contains(errb.String(), "exit(0)") {
		t.Errorf("stderr %q", errb.String())
	}
}

func TestRunTraceAndAudit(t *testing.T) {
	path := writeProg(t, testProg)
	var out, errb strings.Builder
	if code := run([]string{"-trace", "-audit", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "ring-switch") {
		t.Error("trace missing")
	}
	if !strings.Contains(errb.String(), "audit:") {
		t.Error("audit missing")
	}
}

func TestRunListing(t *testing.T) {
	path := writeProg(t, testProg)
	var out, errb strings.Builder
	if code := run([]string{"-list", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "segment main") {
		t.Errorf("listing: %s", out.String())
	}
}

func TestRunBaseline(t *testing.T) {
	path := writeProg(t, baselineProg)
	var out, errb strings.Builder
	if code := run([]string{"-baseline", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "crossings") {
		t.Errorf("stderr %q", errb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{}, &out, &errb); code == 0 {
		t.Error("missing file accepted")
	}
	if code := run([]string{"/nonexistent/prog.s"}, &out, &errb); code == 0 {
		t.Error("unreadable file accepted")
	}
	path := writeProg(t, "frob\n")
	if code := run([]string{path}, &out, &errb); code == 0 {
		t.Error("bad assembly accepted")
	}
	good := writeProg(t, testProg)
	if code := run([]string{"-ring", "9", good}, &out, &errb); code == 0 {
		t.Error("bad ring accepted")
	}
	// A trapping program exits nonzero.
	trapping := writeProg(t, `
        .seg    main
        .bracket 6,6,6
        callg   sysgates$exit
`)
	if code := run([]string{"-ring", "6", trapping}, &out, &errb); code == 0 {
		t.Error("trapping program reported success")
	}
}

func TestRunWithBreakpoint(t *testing.T) {
	path := writeProg(t, baselineProg)
	var out, errb strings.Builder
	if code := run([]string{"-break", "svc:entry", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "breakpoint at") {
		t.Errorf("stderr %q", errb.String())
	}
	if !strings.Contains(errb.String(), "IPR") {
		t.Error("no register dump")
	}
}

func TestRunWithWatchpoint(t *testing.T) {
	path := writeProg(t, `
        .seg    main
        .bracket 4,4,4
        .access rwe
        lia     3
        sta     cell
        hlt
        .entry  cell
cell:   .word   0
`)
	var out, errb strings.Builder
	if code := run([]string{"-watch", "main:cell", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "watchpoint") {
		t.Errorf("stderr %q", errb.String())
	}
}

func TestRunDebugBadAddr(t *testing.T) {
	path := writeProg(t, testProg)
	var out, errb strings.Builder
	if code := run([]string{"-break", "nosuch:0", path}, &out, &errb); code == 0 {
		t.Error("bad break segment accepted")
	}
	if code := run([]string{"-break", "main", path}, &out, &errb); code == 0 {
		t.Error("malformed break accepted")
	}
	if code := run([]string{"-break", "main:nolabel", path}, &out, &errb); code == 0 {
		t.Error("unknown label accepted")
	}
}
