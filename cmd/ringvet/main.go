// Command ringvet statically enforces the repo's hot-path, RCU, and
// mutation invariants (see internal/analysis and DESIGN.md "Static
// invariants").
//
// Two ways to run it:
//
//	go build -o /tmp/ringvet ./cmd/ringvet
//	go vet -vettool=/tmp/ringvet ./...   # fact-driven, cached by cmd/go
//	/tmp/ringvet ./...                   # standalone, in-process
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:]))
}
