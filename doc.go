// Package repro reproduces Schroeder and Saltzer, "A Hardware
// Architecture for Implementing Protection Rings" (SOSP 1971 / CACM
// 15(3), 1972): a simulated segmented processor with hardware
// protection rings, its 645-style software-ring baseline, a miniature
// layered supervisor, an assembler, and an experiment harness that
// regenerates every figure and claim of the paper.
//
// The public API is the repro/rings package; see README.md for a tour,
// DESIGN.md for the system inventory and experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The root package
// hosts the repository-level benchmark suite (bench_test.go, one
// benchmark per figure and table) and the whole-system integration
// tests (integration_test.go).
package repro
