// Debugging ring: "a user may debug a program by executing it in ring
// 5, where only procedure and data segments intended to be referenced
// by the program would be made accessible. The ring protection
// mechanisms would detect many of the addressing errors that could be
// made by the program and would prevent the untested program from
// accidently damaging other segments accessible from ring 4."
//
// An untested program runs in ring 5 with a scratch segment it may
// write; its wild stores into ring-4 property are caught one by one
// by the hardware and reported by the debugger, which skips each and
// lets the program continue.
//
//	go run ./examples/debugring
package main

import (
	"fmt"
	"log"

	"repro/rings"
)

const src = `
; The untested program: intends to fill scratch[0..2], but two of its
; pointers are buggy and aim into the owner's ring-4 segments.
        .seg    untested
        .bracket 5,5,5
        .access rwe
        lia     111
        sta     *p0             ; ok: scratch
        lia     222
        sta     *p1             ; BUG: points into ring-4 notes
        lia     333
        sta     *p2             ; ok: scratch
        lia     444
        sta     *p3             ; BUG: points into ring-4 mail
        lia     0
        call    sysgates$exit
p0:     .its    5, scratch$base
p1:     .its    5, notes$base
p2:     .its    5, scratch$base
p3:     .its    5, mail$base
`

func main() {
	ring4seg := func(name string) rings.SegmentDef {
		return rings.SegmentDef{
			Name: name, Size: 8, Read: true, Write: true,
			// Writable through ring 4 only; readable from 5 so the
			// debugger's owner can inspect, but the debuggee cannot
			// damage it.
			Brackets: rings.Brackets{R1: 4, R2: 5, R3: 5},
		}
	}
	sys, err := rings.NewSystem(rings.SystemConfig{
		User: "alice",
		Extra: []rings.SegmentDef{
			{
				Name: "scratch", Size: 8, Read: true, Write: true,
				// The debuggee's sandbox: writable from ring 5.
				Brackets: rings.Brackets{R1: 5, R2: 5, R3: 5},
			},
			ring4seg("notes"),
			ring4seg("mail"),
		},
	}, src)
	if err != nil {
		log.Fatal(err)
	}

	var caught []*rings.Trap
	sys.OnViolation(func(t *rings.Trap) bool {
		caught = append(caught, t)
		return false // debugger policy: report, skip, continue
	})

	res, err := sys.Run(5, "untested")
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exited {
		log.Fatalf("debuggee did not finish: %+v", res)
	}

	fmt.Printf("untested program ran to completion in ring 5 (exit %d)\n\n", res.ExitCode)
	fmt.Printf("the hardware caught %d addressing errors:\n", len(caught))
	for i, t := range caught {
		fmt.Printf("  bug %d: %v\n", i+1, t)
	}

	fmt.Println("\ndamage report:")
	for _, name := range []string{"scratch", "notes", "mail"} {
		w, err := sys.ReadWord(name, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s word 0 = %d\n", name, w.Int64())
	}
	fmt.Println("\nscratch took the intended writes; notes and mail are untouched —")
	fmt.Println("the user protected himself while debugging his own program, the third")
	fmt.Println("problem the paper's conclusion lists.")
}
