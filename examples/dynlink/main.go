// Dynamic linking: in the Multics environment the paper assumes,
// "segment numbers are not generally known at the time a segment is
// compiled", so inter-segment references begin life as symbolic,
// unsnapped link words. The first reference through one raises a
// linkage fault; the supervisor resolves the symbol, snaps the link in
// place, and resumes. Every later reference goes straight through the
// snapped indirect word at full hardware speed — and, because the
// effective-ring rule covers indirect words, a snapped link is exactly
// as safe as a static one.
//
//	go run ./examples/dynlink
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/rings"
)

const src = `
        .seg    main
        .bracket 4,4,4
        .access rwe
        lia     5
        sta     pr6|2
loop:   stic    pr6|0,+1
        call    mathlib$square  ; iteration 1: linkage fault + snap;
        lda     pr6|2           ; iterations 2-5: plain hardware call
        aia     -1
        sta     pr6|2
        tnz     loop
        lda     greeting$text   ; another library, another lazy link
        stic    pr6|0,+1
        call    sysgates$exit

        .seg    mathlib
        .bracket 4,4,5
        .gate   square
square: eap5    *pr0|0
        spr6    pr5|0
        sta     pr5|2
        ldq     pr5|2           ; Q := x (kept for show; result via adds)
        eap6    *pr5|0
        return  *pr6|0

        .seg    greeting
        .access rw
        .entry  text
text:   .word   2026
`

func main() {
	sys, err := rings.NewDeferredSystem("alice", src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exited {
		log.Fatalf("did not finish: %+v\naudit: %v", res, sys.Audit())
	}

	fmt.Printf("program exited with %d after %d instructions\n\n",
		res.ExitCode, res.Steps)
	fmt.Println("linkage faults taken (one per DISTINCT link, not per call):")
	for _, a := range sys.Audit() {
		if strings.Contains(a, "link snapped") {
			fmt.Println("  " + a)
		}
	}
	fmt.Printf("\n%d links snapped; mathlib$square was called 5 times but faulted once.\n",
		sys.Sup.LinksSnapped())
	fmt.Println("the snapped link is an ordinary indirect word, so every later call is")
	fmt.Println("validated by the same effective-ring hardware as a statically linked one.")
}
