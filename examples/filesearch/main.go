// File search: the conclusion's second example. "In many file system
// designs ... complex file search operations are carried out entirely
// by protected supervisor routines rather than by unprotected library
// packages, primarily because a complex file search requires many
// individual file access operations, each of which would require
// transfer to a protected service routine, which transfer is presumed
// costly."
//
// With hardware rings that presumption fails: here the directory lives
// behind a tiny ring-1 gate that returns one directory word per call,
// and the whole search strategy — the loop, the comparisons, the
// not-found handling — is an unprotected ring-4 library that happily
// makes one cross-ring call per probe.
//
//	go run ./examples/filesearch
package main

import (
	"fmt"
	"log"

	"repro/rings"
)

const src = `
; ---- Ring 1: the minimal protected directory service ----
; getent(word offset in A) -> A := directory[offset]
        .seg    dirsvc
        .bracket 1,1,5
        .gate   getent
getent: eap5    *pr0|0
        spr6    pr5|0
        sta     pr5|2
        ldx1    pr5|2
        eap4    *dlink
        lda     pr4|0,x1        ; the single protected access
        eap6    *pr5|0
        return  *pr6|0
dlink:  .its    1, directory$base

; ---- Ring 4: the unprotected search library ----
; Directory layout: word 0 = entry count; entries are (key,value) pairs
; from word 1. Linear search for "target", exit with the value or -1.
        .seg    search
        .bracket 4,4,4
        .access rwe
        lia     1
        sta     pr6|2           ; off := 1
loop:   lda     pr6|2
        stic    pr6|0,+1
        call    dirsvc$getent   ; A := key at off
        cma     target
        tze     found
        lda     pr6|2
        aia     2
        sta     pr6|2           ; off += 2
        cma     end
        tnz     loop
        lia     -1              ; not found
        stic    pr6|0,+1
        call    sysgates$exit
found:  lda     pr6|2
        aia     1
        stic    pr6|0,+1
        call    dirsvc$getent   ; A := value at off+1
        stic    pr6|0,+1
        call    sysgates$exit
        .entry  target
target: .word   0               ; patched at boot
        .entry  end
end:    .word   0               ; patched at boot: 1 + 2*count
`

// nameKey is the boot-time "hash" of a file name (any deterministic
// key scheme works; the machine only compares words).
func nameKey(name string) int64 {
	var h int64 = 5381
	for _, c := range []byte(name) {
		h = (h*33 + int64(c)) % (1 << 30)
	}
	return h
}

func main() {
	// The directory: ten files, values are their "segment numbers".
	files := []string{"alpha", "beta", "gamma", "delta", "epsilon",
		"zeta", "eta", "theta", "iota", "kappa"}
	contents := []rings.Word{rings.Word(uint64(len(files)))}
	for i, f := range files {
		contents = append(contents,
			rings.Word(uint64(nameKey(f))),
			rings.Word(uint64(100+i)))
	}

	sys, err := rings.NewSystem(rings.SystemConfig{
		User: "alice",
		Extra: []rings.SegmentDef{{
			Name: "directory", Words: contents,
			Read: true, Write: true,
			Brackets: rings.Brackets{R1: 1, R2: 1, R3: 1}, // supervisor property
		}},
	}, src)
	if err != nil {
		log.Fatal(err)
	}

	lookup := func(name string) (int64, uint64) {
		tOff, err := sys.Symbol("search", "target")
		if err != nil {
			log.Fatal(err)
		}
		eOff, _ := sys.Symbol("search", "end")
		if err := sys.WriteWord("search", tOff, rings.Word(uint64(nameKey(name)))); err != nil {
			log.Fatal(err)
		}
		if err := sys.WriteWord("search", eOff, rings.Word(uint64(1+2*len(files)))); err != nil {
			log.Fatal(err)
		}
		before := sys.CPU().Cycles
		res, err := sys.Run(4, "search")
		if err != nil {
			log.Fatal(err)
		}
		if !res.Exited {
			log.Fatalf("search did not finish: %+v\naudit: %v", res, sys.Audit())
		}
		return res.ExitCode, res.Cycles - before
	}

	for _, name := range []string{"theta", "alpha", "kappa", "omega"} {
		val, cycles := lookup(name)
		if val < 0 {
			fmt.Printf("lookup %-8s -> not found        (%5d cycles, search logic in ring 4)\n",
				name, cycles)
			continue
		}
		fmt.Printf("lookup %-8s -> segment %d   (%5d cycles, one gate call per probe)\n",
			name, val, cycles)
	}

	fmt.Println("\nonly `lda pr4|0,x1` — a single word fetch — runs with ring-1 privilege;")
	fmt.Println("the comparisons, the loop and the miss handling are an ordinary ring-4")
	fmt.Println("library, the arrangement the paper says cheap ring crossings unlock.")
}
