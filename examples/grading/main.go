// Grading: "Ring 6 of a process might be used, for example, to provide
// a suitably isolated environment for student programs being evaluated
// by a grading program executing in ring 4."
//
// The grader (ring 4) invokes each student submission in ring 6 — an
// upward call, mediated by the supervisor — feeds it an input, and
// checks the answer. The student program cannot reach the supervisor
// gates ("procedures executing in rings 6 and 7 are not given access to
// supervisor gates") and cannot touch the grader's answer key.
//
//	go run ./examples/grading
package main

import (
	"fmt"
	"log"

	"repro/rings"
)

const src = `
; ---- The grader, ring 4 ----
        .seg    grader
        .bracket 4,4,4
        .access rwe
        lia     6               ; the assignment: f(6), expected 12
        stic    pr6|0,+1
        call    student$f       ; upward call into the sandbox ring
        sta     answer
        lda     answer
        cma     expected
        tze     pass
        lia     0               ; grade: fail
        call    sysgates$exit
pass:   lia     100             ; grade: full marks
        call    sysgates$exit
answer: .word   0
expected: .word 12
key:    .word   777             ; the answer key: grader property

; ---- The student submission, ring 6 ----
        .seg    student
        .bracket 6,6,6
        .access rwe
        .gate   f
; f(x) = 2*x — this submission happens to be correct
f:      sta     x
        ada     x
        return  *pr6|0
x:      .word   0
`

// A second submission that tries to cheat by calling the supervisor.
const cheaterSrc = `
        .seg    grader
        .bracket 4,4,4
        .access rwe
        lia     6
        stic    pr6|0,+1
        call    student$f
        sta     answer
        lia     100
        call    sysgates$exit
answer: .word   0

        .seg    student
        .bracket 6,6,6
        .gate   f
f:      stic    pr6|0,+1
        call    sysgates$exit   ; rings 6-7 hold no supervisor gates
        return  *pr6|0
`

func main() {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "prof"}, src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(4, "grader")
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exited {
		log.Fatalf("grader did not finish: %+v\naudit: %v", res, sys.Audit())
	}
	fmt.Printf("submission 1: grade %d/100 (ran in ring 6 under an upward call,\n", res.ExitCode)
	fmt.Println("  mediated by the supervisor's stacked return gates)")
	fmt.Println("\nmediation audit:")
	for _, a := range sys.Audit() {
		fmt.Println("  " + a)
	}

	// The cheater: its call to sysgates$exit from ring 6 violates the
	// gate extension and the submission is failed.
	sys2, err := rings.NewSystem(rings.SystemConfig{User: "prof"}, cheaterSrc)
	if err != nil {
		log.Fatal(err)
	}
	res2, err := sys2.Run(4, "grader")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if res2.Trap != nil {
		fmt.Printf("submission 2 tried to call the supervisor from ring 6 and was stopped:\n  %v\n", res2.Trap)
		fmt.Println("grade: 0/100 (disqualified)")
	} else {
		log.Fatalf("cheater was not caught: %+v", res2)
	}
}
