// Layered supervisor: "In Multics, the lowest-level supervisor
// procedures ... execute in ring 0. The remaining supervisor procedures
// execute in ring 1. Examples of ring 1 supervisor procedures are those
// performing accounting, input/output stream management, and file
// system search direction."
//
// This example builds a two-layer supervisor: the ring-0 core (the
// standard sysgates services) and a ring-1 accounting layer with its
// own gate. Ring-1 data is invisible to user rings; the ring-1 layer
// itself calls down into ring 0 through the same gate mechanism users
// use — the internal interface between the two supervisor layers the
// paper describes.
//
//	go run ./examples/layeredsup
package main

import (
	"fmt"
	"log"

	"repro/rings"
)

const src = `
; ---- Ring 1: the accounting layer of the supervisor ----
        .seg    acct
        .bracket 1,1,5          ; gates callable from rings 2-5
        .access rwe
        .gate   charge
; charge(units in A): add to the account, audit through ring 0.
; Because charge makes a further call, it uses the full frame protocol:
; allocate a frame, save the caller's stack pointer, repoint PR6 at the
; new frame, and bump the stack's next-available counter.
charge: eap5    *pr0|0          ; PR5 := new frame from the counter
        spr6    pr5|1           ; save caller's PR6 at frame+1
        spr0    pr5|2           ; save our stack base (CALL will clobber PR0)
        eap4    pr5|4
        spr4    pr0|0           ; counter := frame+4
        eap6    pr5|0           ; PR6 := my frame
        sta     units
        lda     balance
        ada     units
        sta     balance         ; ring-1 write to ring-1 data
        stic    pr6|0,+1
        call    sysgates$audit  ; ring 1 calling ring 0: same mechanism
        ; PR0, PR4 and PR5 are volatile across a call; PR6 (our frame)
        ; survives because every callee restores it.
        eap4    *pr6|2          ; PR4 := our stack base, from the frame
        spr6    pr4|0           ; pop my frame (counter := frame)
        eap6    *pr6|1          ; restore caller's PR6 (ring-safe)
        return  *pr6|0
        .entry  balance
balance: .word  0
units:  .word   0

; ---- Ring 4: a user program consuming the accounted service ----
        .seg    user
        .bracket 4,4,4
        .access rwe
        lia     30
        stic    pr6|0,+1
        call    acct$charge
        lia     12
        stic    pr6|0,+1
        call    acct$charge
        lda     *peek           ; direct read of supervisor data: denied
        hlt
peek:   .its    4, acct$balance
`

func main() {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice", Trace: true}, src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(4, "user")
	if err != nil {
		log.Fatal(err)
	}

	balOff, err := sys.Symbol("acct", "balance")
	if err != nil {
		log.Fatal(err)
	}
	bal, _ := sys.ReadWord("acct", balOff)
	fmt.Printf("account balance maintained by the ring-1 layer: %d\n", bal.Int64())

	fmt.Println("\nsupervisor audit log (ring-1 layer calling the ring-0 layer):")
	for _, a := range sys.Audit() {
		fmt.Println("  " + a)
	}

	if res.Trap == nil {
		log.Fatal("expected the user's direct read of ring-1 data to be denied")
	}
	fmt.Printf("\nuser's direct read of the balance was denied: %v\n\n", res.Trap)

	fmt.Println("NOTE how the layering is enforced, not conventional: changing the")
	fmt.Println("accounting layer cannot corrupt ring 0, so — as the paper argues —")
	fmt.Println("\"changes can be made in ring 1 without having to recertify the correct")
	fmt.Println("operation of the procedures in ring 0.\"")
}
