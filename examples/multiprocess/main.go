// Multi-process: "a process with a new virtual memory is created for
// each user when he logs in", "a single segment may be part of several
// virtual memories at the same time", and "several processes may share
// the use of the same protected subsystem simultaneously".
//
// Three users log in. All three run the same (shared, pure) program,
// which posts messages to a shared bulletin board through a shared
// ring-1 subsystem. Alice and Bob are on the board's ACL; Mallory is
// not, so the board simply does not exist in Mallory's virtual memory.
// A round-robin scheduler interleaves the processes on the single
// simulated processor by swapping the DBR — the exact mechanism the
// paper describes for giving each user a separate virtual memory.
//
//	go run ./examples/multiprocess
package main

import (
	"fmt"
	"log"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sup"
)

const src = `
; ---- the shared ring-1 posting subsystem ----
        .seg    postsvc
        .bracket 1,1,5
        .gate   post
; post(word in A): append A to the board and bump the count
post:   eap5    *pr0|0
        spr6    pr5|0
        ldx1    board$base      ; X1 := current count (board word 0)
        eap4    *blink
        sta     pr4|1,x1        ; board[1+count] := A
        aos     board$base      ; count++
        eap6    *pr5|0
        return  *pr6|0
blink:  .its    1, board$base

; ---- the shared user program (pure; working data in private stacks) ----
        .seg    user
        .bracket 4,4,4
        lia     2
        sta     pr6|2           ; post two messages per process
loop:   lda     pr6|2
        stic    pr6|0,+1
        call    postsvc$post
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        lia     0
        stic    pr6|0,+1
        call    sysgates$exit
`

func main() {
	s := proc.NewSystem(proc.Config{})
	prog, err := asm.Assemble(sup.GateSource + src)
	if err != nil {
		log.Fatal(err)
	}
	// The bulletin board: word 0 = count, the rest = entries. Only
	// alice and bob appear on its ACL (writable via ring 1 only).
	boardACL := acl.List{
		{User: "alice", Read: true, Write: true, Brackets: core.Brackets{R1: 1, R2: 5, R3: 5}},
		{User: "bob", Read: true, Write: true, Brackets: core.Brackets{R1: 1, R2: 5, R3: 5}},
	}
	if _, err := s.AddShared(proc.SharedDef{Name: "board", Size: 32, ACL: boardACL}); err != nil {
		log.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		log.Fatal(err)
	}

	var procs []*proc.Process
	for _, user := range []string{"alice", "bob", "mallory"} {
		p, err := s.Spawn(user+"-proc", user, "user", 4)
		if err != nil {
			log.Fatal(err)
		}
		procs = append(procs, p)
	}

	if err := s.Schedule(15, 10000); err != nil {
		log.Fatal(err)
	}

	fmt.Println("process outcomes (round-robin, quantum 15 instructions):")
	for _, p := range procs {
		switch {
		case p.Exited:
			fmt.Printf("  %-14s exited cleanly after %d slices, %d cycles\n",
				p.Name, p.Slices, p.Cycles)
		case p.Trap != nil:
			fmt.Printf("  %-14s stopped: %v\n", p.Name, p.Trap)
		}
	}

	count, err := s.ReadWord("board", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbulletin board holds %d posts:", count.Int64())
	for i := int64(1); i <= count.Int64(); i++ {
		w, _ := s.ReadWord("board", uint32(i))
		fmt.Printf(" %d", w.Int64())
	}
	fmt.Println()
	fmt.Println("\nalice's and bob's posts interleaved through the SAME subsystem code and")
	fmt.Println("the SAME board segment, each from its own virtual memory; mallory's")
	fmt.Println("process faulted because the board is absent from a virtual memory whose")
	fmt.Println("user fails the access control list.")
}
