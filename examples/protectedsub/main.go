// Protected subsystem: the paper's motivating example of controlled
// sharing. "User A may wish to allow user B to access a sensitive data
// segment, but only through a special program, provided by A, that
// audits references to the segment."
//
// A's auditing subsystem executes in ring 3 (one of the rings Multics
// reserves for user-constructed protected subsystems); B's program
// executes in ring 4. The sensitive segment's brackets end at ring 3,
// so B can reach it only through A's gate — which logs every access.
//
//	go run ./examples/protectedsub
package main

import (
	"fmt"
	"log"

	"repro/rings"
)

const src = `
; ---- User A's auditing subsystem, ring 3, one gate ----
        .seg    audit
        .bracket 3,3,5          ; executes in ring 3; gates callable from 4-5
        .access rwe
        .gate   fetch
; fetch(n): audited read of sensitive[n]; the index arrives in A
fetch:  eap5    *pr0|0          ; frame from the ring-3 stack counter
        spr6    pr5|0
        sta     idx             ; remember which word B asked for
        aos     nreads          ; audit: count the access
        ldx1    idx             ; X1 := requested index
        eap4    *slink          ; PR4 := base of the sensitive segment
        lda     pr4|0,x1        ; the sensitive read, from ring 3
        eap6    *pr5|0
        return  *pr6|0
        .entry  nreads
nreads: .word   0
idx:    .word   0
slink:  .its    3, sens$base

; ---- User B's program, ring 4 ----
        .seg    bprog
        .bracket 4,4,4
        .access rwe
        lia     1               ; ask for sensitive[1]
        stic    pr6|0,+1
        call    audit$fetch     ; sanctioned, audited path
        sta     got
        lda     *direct         ; unsanctioned direct read: caught here
        hlt                     ; (never reached)
got:    .word   0
direct: .its    4, sens$base
`

func main() {
	sys, err := rings.NewSystem(rings.SystemConfig{
		User: "bob",
		Extra: []rings.SegmentDef{{
			// A's sensitive data: readable and writable only through
			// ring 3 — B's ring-4 process holds no direct capability.
			Name:  "sens",
			Words: []rings.Word{rings.Word(100), rings.Word(200), rings.Word(300)},
			Read:  true, Write: true,
			Brackets: rings.Brackets{R1: 3, R2: 3, R3: 3},
		}},
	}, src)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sys.Run(4, "bprog")
	if err != nil {
		log.Fatal(err)
	}

	gotOff, err := sys.Symbol("bprog", "got")
	if err != nil {
		log.Fatal(err)
	}
	got, _ := sys.ReadWord("bprog", gotOff)
	fmt.Printf("B read sensitive[1] through A's auditing gate: %d\n", got.Int64())

	nreadsOff, err := sys.Symbol("audit", "nreads")
	if err != nil {
		log.Fatal(err)
	}
	n, _ := sys.ReadWord("audit", nreadsOff)
	fmt.Printf("A's audit counter records %d access(es)\n\n", n.Int64())

	if res.Trap == nil {
		log.Fatal("expected the direct read to be caught")
	}
	fmt.Println("B's attempt to read the segment directly was denied by the hardware:")
	fmt.Printf("  %v\n\n", res.Trap)
	fmt.Println("the subsystem needed no supervisor audit or installation: rings 2-3 let")
	fmt.Println("any user operate protected subsystems for any other, which is the first")
	fmt.Println("of the three problems the paper's conclusion says rings solve.")
}
