// Quickstart: assemble a small program, run it in ring 4, call a
// ring-0 supervisor gate, and watch the hardware switch rings without
// a single trap.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/rings"
)

// The program prints "Hi" and the answer 42 through supervisor gates.
// sysgates executes in ring 0; the CALLs below cross from ring 4 to
// ring 0 and back entirely in hardware (Figures 8 and 9).
const src = `
        .seg    main
        .bracket 4,4,4          ; this procedure executes in ring 4
        lia     72              ; 'H'
        stic    pr6|0,+1        ; save the return point in our frame
        call    sysgates$putchar
        lia     105             ; 'i'
        stic    pr6|0,+1
        call    sysgates$putchar
        lia     10              ; newline
        stic    pr6|0,+1
        call    sysgates$putchar
        lia     42
        stic    pr6|0,+1
        call    sysgates$putnum
        lia     0
        call    sysgates$exit
`

func main() {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice", Trace: true}, src)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(4, "main")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("console output:")
	fmt.Print(indent(res.Console))
	fmt.Printf("exit code: %d after %d instructions, %d simulated cycles\n\n",
		res.ExitCode, res.Steps, res.Cycles)

	// Show the ring switches the hardware performed — and that no trap
	// was involved in any of them.
	fmt.Println("ring switches recorded by the trace (no traps anywhere):")
	switches, traps := 0, 0
	for _, line := range strings.Split(sys.Trace(), "\n") {
		if strings.Contains(line, "ring-switch") {
			switches++
			fmt.Println("  " + strings.TrimSpace(line))
		}
		if strings.Contains(line, "[trap") {
			traps++
		}
	}
	fmt.Printf("\n%d ring switches, %d traps — the paper's headline result:\n", switches, traps)
	fmt.Println("a call to the supervisor is just a call.")
}

func indent(s string) string {
	var sb strings.Builder
	for _, l := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		sb.WriteString("  " + l + "\n")
	}
	return sb.String()
}
