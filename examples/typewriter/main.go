// Typewriter: the paper's conclusion example of what cheap gates make
// possible. "In the Multics typewriter I/O package, only the functions
// of copying data in and out of shared buffer areas and of executing
// the privileged instruction to initiate I/O channel operation need to
// be protected. But, since these two functions are deeply tangled with
// typewriter operation strategy and code conversion, the typewriter I/O
// control package is currently implemented as a set of procedures all
// located in the lowest numbered ring of the system, thus increasing
// the quantity of code which has maximum privilege."
//
// Here the package is split the way the paper says cheap cross-ring
// calls allow: message formatting and strategy live in ring 4; the
// ring-0 gate contains ONLY the buffer copy and the SIO instruction.
//
//	go run ./examples/typewriter
package main

import (
	"fmt"
	"log"

	"repro/rings"
)

const src = `
; ---- Ring 0: the minimal protected kernel of the typewriter package.
; Copy the caller's buffer into the channel-shared buffer and start the
; channel. Nothing else lives at maximum privilege.
        .seg    ttygate
        .bracket 0,0,5
        .access rwe
        .gate   write
; write(word count in A; PR1 -> arg list; arg0 = pointer to buffer)
write:  eap5    *pr0|0
        spr6    pr5|0
        sta     cnt
        eap4    *pr1|0          ; caller's buffer, caller's ring attached:
                                ; the copy below is validated as the caller
        lia     0
        sta     idx
copy:   lda     idx
        cma     cnt
        tze     go
        ldx2    idx
        lda     pr4|0,x2        ; read caller buffer (effective ring = caller)
        sta     buf,x2          ; copy into the ring-0 shared buffer
        aos     idx
        tra     copy
go:     lda     cnt
        ora     iocbt           ; IOCB word 0 = template | count
        sta     iocb
        sio     iocb            ; the privileged instruction
        eap6    *pr5|0
        return  *pr6|0
cnt:    .word   0
idx:    .word   0
        .entry  iocbt
iocbt:  .word   0               ; op/device template, patched at boot
iocb:   .word   0
        .its    0, buf          ; IOCB word 1: buffer pointer
buf:    .bss    16

; ---- Ring 4: typewriter strategy and code conversion ----
        .seg    writer
        .bracket 4,4,4
        .access rwe
        eap1    args
        lda     nwords
        stic    pr6|0,+1
        call    ttygate$write   ; an ordinary CALL; ring 0 is two words away
        lia     0
        call    sysgates$exit
args:   .its    4, msg
        .entry  nwords
nwords: .word   0               ; patched at boot with the message length
        .entry  msg
msg:    .bss    8               ; patched at boot with the packed message
`

func main() {
	sys, err := rings.NewSystem(rings.SystemConfig{User: "alice", Trace: true}, src)
	if err != nil {
		log.Fatal(err)
	}
	tty := sys.AttachTypewriter(1)

	// Boot-time patching: the message (ring-4 data) and the IOCB
	// template (ring-0 data).
	message := "HELLO FROM RING 4\n"
	packed := rings.PackChars(message)
	msgOff, err := sys.Symbol("writer", "msg")
	if err != nil {
		log.Fatal(err)
	}
	for i, w := range packed {
		if err := sys.WriteWord("writer", msgOff+uint32(i), w); err != nil {
			log.Fatal(err)
		}
	}
	nOff, _ := sys.Symbol("writer", "nwords")
	if err := sys.WriteWord("writer", nOff, rings.Word(len(packed))); err != nil {
		log.Fatal(err)
	}
	tplOff, _ := sys.Symbol("ttygate", "iocbt")
	tpl, _ := rings.MakeIOCB(1 /*write*/, 1 /*device*/, 0, 0, 0)
	if err := sys.WriteWord("ttygate", tplOff, tpl); err != nil {
		log.Fatal(err)
	}

	res, err := sys.Run(4, "writer")
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exited {
		log.Fatalf("writer did not finish: %+v\naudit: %v", res, sys.Audit())
	}

	fmt.Println("typewriter printed:")
	fmt.Printf("  %q\n\n", tty.Printed.String())
	fmt.Printf("ring-0 footprint of the whole typewriter package: the copy loop and one\n")
	fmt.Printf("SIO — formatting and strategy ran in ring 4 (%d instructions total,\n", res.Steps)
	fmt.Println("zero traps). With trap-based supervisor entry, the paper observes, the")
	fmt.Println("whole package would have been dragged into ring 0.")
}
