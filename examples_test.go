package repro_test

import (
	"os/exec"
	"testing"
)

// TestExamplesRun builds and runs every example program, guarding the
// narrative code against rot. Skipped under -short (each example is a
// separate `go run` build).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples skipped in -short mode")
	}
	examples := []string{
		"quickstart", "protectedsub", "debugring", "layeredsup",
		"grading", "typewriter", "multiprocess", "filesearch", "dynlink",
	}
	for _, e := range examples {
		e := e
		t.Run(e, func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", "./examples/"+e).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", e, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", e)
			}
		})
	}
}
