module repro

go 1.22

// The escape-analysis baseline (docs/escape_baseline.txt) records the
// compiler's escape decisions, which shift between compiler releases;
// pin the toolchain so the gate compares like with like.
toolchain go1.24.0
