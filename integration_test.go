// Repository-level integration tests: whole-system scenarios that
// compose the substrates the way a running computer utility would —
// multiple users' processes, shared protected subsystems, dynamic
// linking, supervisor services, I/O, and both machines (hardware and
// software rings) over the same images.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/iosim"
	"repro/internal/paging"
	"repro/internal/proc"
	"repro/internal/softring"
	"repro/internal/sup"
	"repro/internal/word"
	"repro/rings"
)

// TestUtilitySession is the kitchen-sink scenario: three users log in;
// each process runs the same pure editor-ish program which (a) posts an
// audit record through ring 0, (b) appends to a shared ring-1 journal
// through a gated subsystem, and (c) types a character on the shared
// typewriter through a ring-0 I/O gate. Mallory's process lacks the
// journal on its ACL and faults; the other two finish; the journal
// holds exactly their entries.
func TestUtilitySession(t *testing.T) {
	src := sup.GateSource + asm.StdMacros + `
; ---- ring 1: the journal subsystem ----
        .seg    journal
        .bracket 1,1,5
        .gate   append
append: leafenter
        ldx1    store$base      ; X1 := count
        eap4    *slink
        sta     pr4|1,x1        ; store[1+count] := A
        aos     store$base
        leafexit
slink:  .its    1, store$base

; ---- ring 0: one-character typewriter gate ----
        .seg    ttyg
        .bracket 0,0,5
        .access rwe
        .gate   putc
putc:   leafenter
        sta     chbuf
        sio     iocb
        leafexit
        .entry  iocb
iocb:   .word   0
        .its    0, chbuf
chbuf:  .word   0

; ---- ring 4: the user program (pure; state in private stacks) ----
        .seg    prog
        .bracket 4,4,4
        lia     7
        callg   sysgates$audit
        lia     111
        callg   journal$append
        lia     88              ; 'X'
        callg   ttyg$putc
        lia     0
        callg   sysgates$exit
`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s := proc.NewSystem(proc.Config{})
	journalACL := acl.List{
		{User: "alice", Read: true, Write: true, Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}},
		{User: "bob", Read: true, Write: true, Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}},
	}
	if _, err := s.AddShared(proc.SharedDef{Name: "store", Size: 32, ACL: journalACL}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}

	// One shared typewriter behind the channel controller; the IOCB
	// template (op=write, dev=1, count=1) is patched into the shared
	// ttyg segment.
	tty := &rings.Typewriter{}
	ctl := newController(t, s, tty)
	_ = ctl
	iocbOff := prog.Segment("ttyg").Symbols["iocb"]
	ttygSeg, err := s.Segno("ttyg")
	if err != nil {
		t.Fatal(err)
	}
	w0, _ := rings.MakeIOCB(1, 1, 1, ttygSeg, iocbOff+1)
	if err := s.WriteWord("ttyg", iocbOff, w0); err != nil {
		t.Fatal(err)
	}

	var ps []*proc.Process
	for _, user := range []string{"alice", "bob", "mallory"} {
		p, err := s.Spawn(user+"-p", user, "prog", 4)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if err := s.Schedule(11, 100000); err != nil {
		t.Fatal(err)
	}

	for _, p := range ps[:2] {
		if !p.Exited || p.ExitCode != 0 {
			t.Fatalf("%s: exited=%v trap=%v audit=%v", p.Name, p.Exited, p.Trap, p.Sup.Audit)
		}
		found := false
		for _, a := range p.Sup.Audit {
			if strings.Contains(a, "audit from ring 4: 7") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no audit record: %v", p.Name, p.Sup.Audit)
		}
	}
	if ps[2].Trap == nil {
		t.Error("mallory's process did not fault")
	}

	count, err := s.ReadWord("store", 0)
	if err != nil {
		t.Fatal(err)
	}
	if count.Int64() != 2 {
		t.Errorf("journal count = %d, want 2 (alice + bob)", count.Int64())
	}
	// Both permitted processes typed one 'X' each; mallory faulted
	// before reaching the typewriter.
	if got := tty.Printed.String(); got != "XX" {
		t.Errorf("typewriter printed %q", got)
	}
}

// newController wires a typewriter to the multi-process machine's CPU.
func newController(t *testing.T, s *proc.System, tty *rings.Typewriter) *rings.IOController {
	t.Helper()
	ctl := iosim.NewController()
	ctl.Attach(1, tty)
	s.CPU.IO = ctl
	return ctl
}

// TestSameImageBothMachines runs one nontrivial program (dynamic-link-
// free, service + data) on the hardware-ring machine, the software-ring
// machine, and the hardware machine over demand-paged storage, and
// requires all three to agree on the result.
func TestSameImageBothMachines(t *testing.T) {
	src := `
        .seg    main
        .bracket 4,4,4
        lia     6
        sta     pr6|2
        lia     0
        sta     pr6|3
loop:   lda     pr6|3
        stic    pr6|0,+1
        call    alg$next
        sta     pr6|3
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        lda     pr6|3
        hlt

        .seg    alg
        .bracket 1,1,5
        .gate   next
next:   eap5    *pr0|0
        spr6    pr5|0
        als     1
        aia     1               ; x := 2x+1
        eap6    *pr5|0
        return  *pr6|0
`
	// Hardware, flat.
	prog := asm.MustAssemble(src)
	hw, err := asm.BuildImage(image.Config{MemWords: 1 << 18}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := hw.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hw.CPU.Run(10000); err != nil {
		t.Fatal(err)
	}
	want := hw.CPU.A.Int64()
	if want != 63 { // 6 iterations of x := 2x+1 from 0
		t.Fatalf("hardware result %d, want 63", want)
	}

	// Hardware, demand paged.
	space, err := paging.New(1<<18, 128)
	if err != nil {
		t.Fatal(err)
	}
	cfg := image.Config{Backing: space}
	paged, err := asm.BuildImage(cfg, asm.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := paged.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := paged.CPU.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := paged.CPU.A.Int64(); got != want {
		t.Errorf("paged result %d, want %d", got, want)
	}

	// Software rings, same object code.
	swImg, err := asm.BuildImage(image.Config{MemWords: 1 << 18}, asm.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}
	m, err := softring.Wrap(swImg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(100000); err != nil {
		t.Fatalf("%v (audit %v)", err, m.Audit)
	}
	if got := m.CPU.A.Int64(); got != want {
		t.Errorf("software-ring result %d, want %d", got, want)
	}
	if m.Crossings != 12 { // 6 calls + 6 returns
		t.Errorf("crossings = %d, want 12", m.Crossings)
	}
}

// TestDynamicLinkingUnderLoad: many links, snapped lazily, all correct.
func TestDynamicLinkingUnderLoad(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`
        .seg    main
        .bracket 4,4,4
`)
	const n = 12
	for i := 0; i < n; i++ {
		sb.WriteString("        stic    pr6|0,+1\n")
		sb.WriteString("        call    lib" + string(rune('a'+i)) + "$f\n")
	}
	sb.WriteString(`        stic    pr6|0,+1
        call    sysgates$exit
`)
	for i := 0; i < n; i++ {
		name := "lib" + string(rune('a'+i))
		sb.WriteString(`
        .seg    ` + name + `
        .bracket 1,1,5
        .gate   f
f:      eap5    *pr0|0
        spr6    pr5|0
        aia     1
        eap6    *pr5|0
        return  *pr6|0
`)
	}
	s, _, err := sup.BootDeferred("alice", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	s.Img.CPU.A = word.FromInt(0)
	if _, err := s.Img.CPU.Run(100000); err != nil {
		t.Fatalf("%v\naudit: %v", err, s.Audit)
	}
	if !s.Exited || s.ExitCode != n {
		t.Errorf("exit %v/%d, want %d", s.Exited, s.ExitCode, n)
	}
	if s.LinksSnapped() != n+1 { // n libraries + sysgates$exit
		t.Errorf("snapped %d, want %d", s.LinksSnapped(), n+1)
	}
}
