// Package acl implements access control lists: the per-segment lists of
// (user, flags, brackets) entries from which the supervisor derives the
// SDW contents when a segment is added to a process's virtual memory.
//
// The paper: "the users that are permitted to access each segment are
// named by an access control list associated with each segment", and
// "the gate list and the numbers specifying the read, write, and
// execute brackets and gate extension in each SDW all come from the
// access control list entry which permitted the process to include the
// corresponding segment in its virtual memory."
//
// The package also enforces the sole-occupant constraint from the "Use
// of Rings" section: "a program executing in ring n cannot specify R1,
// R2, or R3 values of less than n in an access control list entry of
// any segment."
package acl

import (
	"fmt"

	"repro/internal/core"
)

// Entry grants one user (or everyone) a mode of access to a segment.
type Entry struct {
	// User is the user name this entry matches; "*" matches any user.
	User     string
	Read     bool
	Write    bool
	Execute  bool
	Brackets core.Brackets
}

// Validate checks entry well-formedness.
func (e Entry) Validate() error {
	if e.User == "" {
		return fmt.Errorf("acl: entry with empty user")
	}
	return e.Brackets.Validate()
}

// Matches reports whether the entry applies to the named user.
func (e Entry) Matches(user string) bool { return e.User == "*" || e.User == user }

// List is a segment's access control list. Order matters: the first
// matching entry decides, so specific entries should precede "*".
type List []Entry

// Resolve returns the first entry matching user.
func (l List) Resolve(user string) (Entry, bool) {
	for _, e := range l {
		if e.Matches(user) {
			return e, true
		}
	}
	return Entry{}, false
}

// Validate checks every entry.
func (l List) Validate() error {
	for i, e := range l {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("acl: entry %d: %w", i, err)
		}
	}
	return nil
}

// CheckSetter enforces the sole-occupant constraint: a caller executing
// in callerRing may not create or modify an entry granting brackets
// below its own ring.
func CheckSetter(callerRing core.Ring, e Entry) error {
	if e.Brackets.R1 < callerRing || e.Brackets.R2 < callerRing || e.Brackets.R3 < callerRing {
		return fmt.Errorf("acl: %s may not grant brackets %d,%d,%d below itself",
			callerRing, e.Brackets.R1, e.Brackets.R2, e.Brackets.R3)
	}
	return e.Validate()
}
