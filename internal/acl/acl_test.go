package acl

import (
	"testing"

	"repro/internal/core"
)

func entry(user string, r1, r2, r3 core.Ring) Entry {
	return Entry{User: user, Read: true, Brackets: core.Brackets{R1: r1, R2: r2, R3: r3}}
}

func TestResolveFirstMatch(t *testing.T) {
	l := List{
		entry("alice", 1, 1, 1),
		entry("*", 4, 5, 5),
	}
	e, ok := l.Resolve("alice")
	if !ok || e.Brackets.R1 != 1 {
		t.Errorf("alice: %+v ok=%v", e, ok)
	}
	e, ok = l.Resolve("bob")
	if !ok || e.Brackets.R1 != 4 {
		t.Errorf("bob: %+v ok=%v", e, ok)
	}
}

func TestResolveNoMatch(t *testing.T) {
	l := List{entry("alice", 1, 1, 1)}
	if _, ok := l.Resolve("mallory"); ok {
		t.Error("mallory matched")
	}
	if _, ok := (List{}).Resolve("anyone"); ok {
		t.Error("empty list matched")
	}
}

func TestValidate(t *testing.T) {
	good := List{entry("a", 0, 2, 4), entry("*", 4, 4, 4)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := List{Entry{User: "a", Brackets: core.Brackets{R1: 5, R2: 2, R3: 7}}}
	if bad.Validate() == nil {
		t.Error("inverted brackets accepted")
	}
	bad = List{Entry{User: "", Brackets: core.Brackets{}}}
	if bad.Validate() == nil {
		t.Error("empty user accepted")
	}
}

func TestCheckSetterSoleOccupant(t *testing.T) {
	// Ring-4 caller cannot grant ring-3 access.
	if err := CheckSetter(4, entry("x", 3, 4, 4)); err == nil {
		t.Error("R1 below caller accepted")
	}
	if err := CheckSetter(4, entry("x", 4, 4, 4)); err != nil {
		t.Errorf("own-ring grant rejected: %v", err)
	}
	if err := CheckSetter(4, entry("x", 5, 6, 7)); err != nil {
		t.Errorf("higher-ring grant rejected: %v", err)
	}
	// Ring 0 may grant anything well-formed.
	if err := CheckSetter(0, entry("x", 0, 0, 0)); err != nil {
		t.Errorf("ring-0 grant rejected: %v", err)
	}
	// But not malformed brackets.
	if err := CheckSetter(0, Entry{User: "x", Brackets: core.Brackets{R1: 6, R2: 2, R3: 7}}); err == nil {
		t.Error("malformed grant accepted")
	}
}

func TestMatchesWildcard(t *testing.T) {
	e := entry("*", 4, 4, 4)
	if !e.Matches("anyone") || !e.Matches("") {
		t.Error("wildcard did not match")
	}
	e = entry("carol", 4, 4, 4)
	if e.Matches("carols") || !e.Matches("carol") {
		t.Error("exact match wrong")
	}
}
