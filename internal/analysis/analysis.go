// Package analysis is ringvet's analyzer framework: a deliberately
// small, dependency-free re-implementation of the parts of
// golang.org/x/tools/go/analysis that the repo's static invariants
// need. This module carries no third-party dependencies (the decision
// service builds from the standard library alone), so the framework is
// built on go/ast, go/types and go/importer directly:
//
//   - an Analyzer is a named pass over one type-checked package;
//   - a Pass hands the analyzer the syntax trees, the type
//     information, the parsed //ring: annotations, and the facts
//     exported by the package's dependencies;
//   - facts flow between packages exactly as x/tools facts do — each
//     analyzed package exports a gob-encoded fact file, and the
//     unitchecker driver (unitchecker.go) plugs into `go vet
//     -vettool` so the `go` tool schedules packages in dependency
//     order and threads the fact files through;
//   - the in-process driver (load.go) shells out to `go list` for the
//     package graph, for standalone runs (`ringvet ./...`) and tests.
//
// The shared fact computation lives here rather than per-analyzer:
// Scan walks every function once and records the heap-allocating
// constructs it contains, its static module-internal callees, and its
// //ring: markers. Analyzers consume that one scan. This deviates from
// x/tools' per-analyzer fact modularity, but it keeps the framework a
// few hundred lines and the analyzers declarative.
//
// # Annotation grammar
//
// Annotations are line comments beginning exactly with "//ring:".
//
//	//ring:hotpath            on a function: the function and every
//	                          module-internal function it statically
//	                          calls must be free of heap-allocating
//	                          constructs (see hotpath).
//	//ring:pins               on a function: it may return with RCU
//	                          snapshot pins held (batch-scoped); its
//	                          callers inherit the release obligation
//	                          (see rcupin).
//	//ring:locked <field>     on a function: the caller is required to
//	                          hold the named mutex; guarded writes
//	                          inside are legal, and every call site is
//	                          checked (see mutguard).
//	//ring:guarded <field>    on a struct field: writes require the
//	                          named sibling mutex (see mutguard).
//	//ring:allow <reason>     on (or immediately above) a line:
//	                          suppress ringvet diagnostics for that
//	                          line. The reason is mandatory.
//
// The annot analyzer validates the grammar itself: unknown
// directives, reasonless allows, markers attached to nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named static check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path   string
	Module string // module path; "" for out-of-module packages
	Fset   *token.FileSet
	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info
	Sizes  types.Sizes
}

// A Pass carries everything one analyzer run over one package needs.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Notes    *Notes
	Local    *PackageFacts
	// Facts holds the facts of every module package analyzed so far
	// (dependencies first), keyed by package path; Local is also
	// present under the current package's path.
	Facts FactSet

	report   func(token.Pos, string)
	reportAt func(token.Position, string)
}

// Reportf records one diagnostic at pos. Diagnostics on lines covered
// by a //ring:allow annotation are dropped by the driver.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// ReportLinef records a diagnostic at a fact position ("file:line"),
// for findings derived from serialized facts rather than syntax.
func (p *Pass) ReportLinef(factPos string, format string, args ...any) {
	pos := token.Position{Filename: factPos}
	if i := strings.LastIndex(factPos, ":"); i >= 0 {
		fmt.Sscanf(factPos[i+1:], "%d", &pos.Line)
		pos.Filename = factPos[:i]
	}
	p.reportAt(pos, fmt.Sprintf(format, args...))
}

// FuncFactOf resolves the fact record of fn, looking at the current
// package first and imported facts second. Returns nil for functions
// outside the analyzed module (standard library and dynamic callees).
func (p *Pass) FuncFactOf(fn *types.Func) *FuncFact {
	if fn == nil || fn.Pkg() == nil {
		return nil
	}
	if pf, ok := p.Facts[fn.Pkg().Path()]; ok {
		return pf.Funcs[FuncKey(fn)]
	}
	return nil
}

// Run executes the analyzers over pkgs (which must be in dependency
// order: a package after every package it imports). seed carries facts
// from outside the run — the unitchecker driver passes the decoded
// vetx facts of the dependencies; in-process whole-module runs pass
// nil. It returns the diagnostics (sorted by position) and the full
// fact set, including every analyzed package.
func Run(pkgs []*Package, analyzers []*Analyzer, seed FactSet) ([]Diagnostic, FactSet, error) {
	facts := FactSet{}
	for path, pf := range seed {
		facts[path] = pf
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		notes := ParseNotes(pkg)
		local := Scan(pkg, notes, facts)
		facts[pkg.Path] = local
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				Notes:    notes,
				Local:    local,
				Facts:    facts,
			}
			pass.reportAt = func(position token.Position, msg string) {
				// ring:allow suppression — except for the annot
				// analyzer, whose whole job is grading annotations.
				if a.Name != "annot" {
					if _, ok := notes.Allowed[lineKey(position)]; ok {
						return
					}
				}
				diags = append(diags, Diagnostic{Pos: position, Analyzer: a.Name, Message: msg})
			}
			pass.report = func(pos token.Pos, msg string) {
				pass.reportAt(pkg.Fset.Position(pos), msg)
			}
			if err := a.Run(pass); err != nil {
				return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, facts, nil
}

// lineKey is the "file:line" key allow suppression and fact positions
// use.
func lineKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// ---- Annotations ----

// FuncNote is the parsed markers of one function.
type FuncNote struct {
	Hot    bool
	Pins   bool
	Locked string // mutex field name from //ring:locked
}

// Problem is a malformed annotation, reported by the annot analyzer.
type Problem struct {
	Pos token.Pos
	Msg string
}

// Notes is the parsed //ring: annotation set of one package.
type Notes struct {
	// Funcs maps annotated declarations to their markers.
	Funcs map[*ast.FuncDecl]*FuncNote
	// Allowed maps "file:line" to the allow reason. A standalone
	// allow comment covers its own line and the one after it; an
	// end-of-line allow covers its line.
	Allowed map[string]string
	// Guarded maps annotated struct fields (by their defining
	// *types.Var) to the guarding sibling mutex field name.
	Guarded map[*types.Var]string
	// Problems collects grammar violations for the annot analyzer.
	Problems []Problem
}

const directivePrefix = "//ring:"

// directive splits a "//ring:verb rest" comment; ok is false for
// ordinary comments.
func directive(c *ast.Comment) (verb, rest string, ok bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	verb, rest, _ = strings.Cut(body, " ")
	return strings.TrimSpace(verb), strings.TrimSpace(rest), true
}

// ParseNotes extracts the package's //ring: annotations. Test files
// (_test.go) are not scanned: the static invariants target production
// code; the runtime gates cover the tests themselves.
func ParseNotes(pkg *Package) *Notes {
	n := &Notes{
		Funcs:   map[*ast.FuncDecl]*FuncNote{},
		Allowed: map[string]string{},
		Guarded: map[*types.Var]string{},
	}
	for _, file := range pkg.Syntax {
		consumed := map[*ast.Comment]bool{}
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc == nil {
					continue
				}
				for _, c := range d.Doc.List {
					verb, rest, ok := directive(c)
					if !ok {
						continue
					}
					consumed[c] = true
					note := n.Funcs[d]
					if note == nil {
						note = &FuncNote{}
						n.Funcs[d] = note
					}
					switch verb {
					case "hotpath":
						note.Hot = true
					case "pins":
						note.Pins = true
					case "locked":
						if rest == "" {
							n.Problems = append(n.Problems, Problem{c.Pos(), "ring:locked requires a mutex field name"})
							continue
						}
						note.Locked = rest
					case "allow":
						// An allow inside a doc comment guards the
						// declaration line.
						n.recordAllow(pkg, c, rest)
					default:
						n.Problems = append(n.Problems, Problem{c.Pos(), fmt.Sprintf("unknown ringvet directive %q", verb)})
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					n.parseStruct(pkg, st, consumed)
				}
			}
		}
		// Sweep the remaining comments: allows anywhere; every other
		// directive must have been consumed by an attachment above.
		for _, group := range file.Comments {
			for _, c := range group.List {
				verb, rest, ok := directive(c)
				if !ok || consumed[c] {
					continue
				}
				switch verb {
				case "allow":
					n.recordAllow(pkg, c, rest)
				case "hotpath", "pins", "locked":
					// Every marker consumed by a function's doc group
					// was recorded above; anything left is attached to
					// nothing that exists.
					n.Problems = append(n.Problems, Problem{c.Pos(),
						fmt.Sprintf("ring:%s is not attached to a function declaration", verb)})
				case "guarded":
					n.Problems = append(n.Problems, Problem{c.Pos(), "ring:guarded is not attached to a struct field"})
				default:
					n.Problems = append(n.Problems, Problem{c.Pos(), fmt.Sprintf("unknown ringvet directive %q", verb)})
				}
			}
		}
	}
	return n
}

// parseStruct records //ring:guarded annotations of st's fields.
func (n *Notes) parseStruct(pkg *Package, st *ast.StructType, consumed map[*ast.Comment]bool) {
	names := map[string]bool{}
	for _, f := range st.Fields.List {
		for _, name := range f.Names {
			names[name.Name] = true
		}
	}
	for _, f := range st.Fields.List {
		for _, group := range []*ast.CommentGroup{f.Doc, f.Comment} {
			if group == nil {
				continue
			}
			for _, c := range group.List {
				verb, rest, ok := directive(c)
				if !ok {
					continue
				}
				consumed[c] = true
				switch verb {
				case "guarded":
					// Anything after the mutex name is free-form prose
					// ("//ring:guarded mu (load order)").
					mu, _, _ := strings.Cut(rest, " ")
					rest = mu
					if rest == "" {
						n.Problems = append(n.Problems, Problem{c.Pos(), "ring:guarded requires a mutex field name"})
						continue
					}
					if !names[rest] {
						n.Problems = append(n.Problems, Problem{c.Pos(),
							fmt.Sprintf("ring:guarded names %q, which is not a field of the same struct", rest)})
						continue
					}
					for _, name := range f.Names {
						if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
							n.Guarded[v] = rest
						}
					}
				case "allow":
					n.recordAllow(pkg, c, rest)
				default:
					n.Problems = append(n.Problems, Problem{c.Pos(),
						fmt.Sprintf("ring:%s is not valid on a struct field", verb)})
				}
			}
		}
	}
}

// recordAllow registers an allow annotation: its own line, and — when
// the comment stands alone on its line — the following line too.
func (n *Notes) recordAllow(pkg *Package, c *ast.Comment, reason string) {
	pos := pkg.Fset.Position(c.Pos())
	if reason == "" {
		n.Problems = append(n.Problems, Problem{c.Pos(), "ring:allow requires a reason"})
		return
	}
	n.Allowed[lineKey(pos)] = reason
	next := pos
	next.Line++
	n.Allowed[lineKey(next)] = reason
}
