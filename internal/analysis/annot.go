package analysis

// Annot validates the //ring: annotation grammar itself: unknown
// directives, reasonless //ring:allow, markers attached to nothing
// (a //ring:hotpath floating above a blank line, a //ring:guarded
// naming a field that is not a sibling). Every problem ParseNotes
// collects is reported here, so a typo in an annotation fails the
// build instead of silently disabling a check.
var Annot = &Analyzer{
	Name: "annot",
	Doc:  "validates //ring: annotation grammar and attachment",
	Run: func(pass *Pass) error {
		for _, p := range pass.Notes.Problems {
			pass.Reportf(p.Pos, "%s", p.Msg)
		}
		return nil
	},
}

// Analyzers is the full ringvet suite, in reporting order.
var Analyzers = []*Analyzer{Annot, HotPath, RCUPin, MutGuard}
