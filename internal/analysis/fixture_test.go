package analysis

// Fixture tests in the style of x/tools' analysistest: each directory
// under testdata/src/<name> is one package exercising one analyzer,
// with expectations written inline as `// want "regexp"` comments on
// the line the diagnostic should land on. A line may carry several
// expectations; backquoted strings avoid double escaping. Diagnostics
// with no matching expectation, and expectations with no matching
// diagnostic, both fail the test.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func TestHotPathFixture(t *testing.T) { runFixture(t, "hotpath", HotPath) }
func TestRCUPinFixture(t *testing.T)  { runFixture(t, "rcupin", RCUPin) }
func TestMutGuardFixture(t *testing.T) {
	runFixture(t, "mutguard", MutGuard)
}
func TestAnnotFixture(t *testing.T) { runFixture(t, "annot", Annot) }

// runFixture loads testdata/src/<name>, runs the given analyzers over
// it, and checks the diagnostics against the // want expectations.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags, _, err := Run([]*Package{pkg}, analyzers, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	checkExpectations(t, pkg, diags)
}

// loadFixture parses and type-checks one fixture directory as a
// single-package module (Path == Module, so intra-fixture calls count
// as module-internal for fact propagation).
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", name)
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, stdExportLookup(t))
	modPath := "fix/" + name
	pkg, err := typecheck(fset, modPath, modPath, files, imp, "")
	if err != nil {
		t.Fatalf("typecheck fixture %s: %v", name, err)
	}
	return pkg
}

// stdExportLookup resolves standard-library import paths to their
// compiler export data via one `go list` run, shared per test binary.
var stdExports struct {
	once  bool
	files map[string]string
}

func stdExportLookup(t *testing.T) func(string) (string, bool) {
	t.Helper()
	if !stdExports.once {
		stdExports.once = true
		stdExports.files = map[string]string{}
		cmd := exec.Command("go", "list", "-deps", "-export",
			"-json=ImportPath,Export", "std")
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("go list std: %v\n%s", err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var lp struct{ ImportPath, Export string }
			if err := dec.Decode(&lp); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("go list std output: %v", err)
			}
			if lp.Export != "" {
				stdExports.files[lp.ImportPath] = lp.Export
			}
		}
	}
	return func(path string) (string, bool) {
		f, ok := stdExports.files[path]
		return f, ok
	}
}

// expectation is one `// want` pattern, anchored to a file:line.
type expectation struct {
	pos token.Position
	re  *regexp.Regexp
	hit bool
}

// wantPatterns extracts the quoted or backquoted patterns following
// the word "want" in a comment's text.
var wantMarker = regexp.MustCompile(`// want (.*)$|/\* want (.*)\*/`)
var wantString = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func wantPatterns(text string) []string {
	m := wantMarker.FindStringSubmatch(text)
	if m == nil {
		return nil
	}
	rest := m[1]
	if rest == "" {
		rest = m[2]
	}
	var pats []string
	for _, q := range wantString.FindAllStringSubmatch(rest, -1) {
		if q[1] != "" {
			pats = append(pats, q[1])
		} else {
			pats = append(pats, q[2])
		}
	}
	return pats
}

// checkExpectations matches diagnostics against // want comments, by
// file and line, in both directions.
func checkExpectations(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	byLine := map[string][]*expectation{}
	for _, file := range pkg.Syntax {
		for _, group := range file.Comments {
			for _, c := range group.List {
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range wantPatterns(c.Text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					byLine[key] = append(byLine[key], &expectation{pos: pos, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, e := range byLine[key] {
			if e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, es := range byLine {
		for _, e := range es {
			if !e.hit {
				t.Errorf("%s: expected diagnostic matching %q, got none", e.pos, e.re)
			}
		}
	}
}
