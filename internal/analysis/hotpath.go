package analysis

import (
	"strings"
)

// HotPath proves the 0 allocs/op invariant over every function marked
// //ring:hotpath: the function itself, and every module-internal
// function it statically calls (transitively), must be free of
// heap-allocating constructs. The ban list mirrors what the runtime
// allocation gates (TestSubmitIntoZeroAlloc and friends) measure, but
// covers the whole static call graph instead of the sampled entry
// points.
//
// Limitation, by design: dynamic calls (interface methods, func
// values) are not followed — the mmu.SDWSource, mmu.Sink and mem.Store
// interfaces are dispatch points whose hot implementations carry their
// own //ring:hotpath markers, and the runtime gates backstop the
// dispatch itself.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "flags heap-allocating constructs reachable from //ring:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(pass *Pass) error {
	h := &hotWalker{pass: pass, memo: map[string]*banTrace{}}
	for key, fact := range pass.Local.Funcs {
		if !fact.Hot {
			continue
		}
		for _, b := range fact.Bans {
			pass.ReportLinef(b.Pos, "hot path: %s", b.What)
		}
		seenSite := map[string]bool{}
		for _, cs := range fact.Calls {
			callee := h.lookup(cs.Callee)
			if callee == nil || callee.Hot {
				// Unknown callees are outside the module; hot callees
				// are verified at their own definitions.
				continue
			}
			trace := h.firstBan(cs.Callee)
			if trace == nil {
				continue
			}
			sk := cs.Pos + "|" + trace.ban.Pos
			if seenSite[sk] {
				continue
			}
			seenSite[sk] = true
			pass.ReportLinef(cs.Pos,
				"hot path: %s calls %s, which reaches %s at %s (via %s)",
				shortKey(key), shortKey(cs.Callee), trace.ban.What, trace.ban.Pos,
				strings.Join(trace.chain, " -> "))
		}
	}
	return nil
}

type banTrace struct {
	ban   Ban
	chain []string // GlobalKeys from the first callee to the offender
}

type hotWalker struct {
	pass *Pass
	memo map[string]*banTrace // global key -> first reachable ban (nil entry = clean)
}

func (h *hotWalker) lookup(globalKey string) *FuncFact {
	dot := strings.LastIndex(globalKey, ".")
	for i := dot; i >= 0; i = strings.LastIndex(globalKey[:i], ".") {
		if pf, ok := h.pass.Facts[globalKey[:i]]; ok {
			if f, ok := pf.Funcs[globalKey[i+1:]]; ok {
				return f
			}
		}
	}
	return nil
}

// firstBan returns the first banned construct statically reachable
// from the function named by globalKey, or nil if its transitive
// closure is clean. Cycles are treated as clean while in progress.
func (h *hotWalker) firstBan(globalKey string) *banTrace {
	if t, done := h.memo[globalKey]; done {
		return t
	}
	h.memo[globalKey] = nil // in progress: break cycles optimistically
	fact := h.lookup(globalKey)
	if fact == nil {
		return nil
	}
	if len(fact.Bans) > 0 {
		t := &banTrace{ban: fact.Bans[0], chain: []string{shortKey(globalKey)}}
		h.memo[globalKey] = t
		return t
	}
	for _, cs := range fact.Calls {
		callee := h.lookup(cs.Callee)
		if callee == nil || callee.Hot {
			continue
		}
		if sub := h.firstBan(cs.Callee); sub != nil {
			t := &banTrace{ban: sub.ban, chain: append([]string{shortKey(globalKey)}, sub.chain...)}
			h.memo[globalKey] = t
			return t
		}
	}
	return nil
}

// shortKey trims the module prefix off a global key for readable
// diagnostics: "repro/internal/service.(*Store).SubmitInto" ->
// "service.(*Store).SubmitInto".
func shortKey(globalKey string) string {
	if i := strings.LastIndex(globalKey, "/"); i >= 0 {
		return globalKey[i+1:]
	}
	return globalKey
}
