package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Standard   bool
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load lists patterns with `go list -deps -export -json` from dir and
// returns the module's packages, type-checked from source and in
// dependency order. Out-of-module dependencies (the standard library)
// are consumed through their compiler export data, so only the code
// under analysis is parsed. This is the in-process driver used by
// `ringvet [packages]` and the tests; `go vet -vettool` runs go
// through the unitchecker driver instead.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-deps", "-export", "-json=Dir,ImportPath,Standard,Export,GoFiles,Module,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	var listed []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := &listPackage{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		listed = append(listed, lp)
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || lp.Module == nil {
			continue
		}
		var files []string
		for _, name := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, name))
		}
		pkg, err := typecheck(fset, lp.ImportPath, lp.Module.Path, files, imp, "")
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a gc-export-data importer whose file lookup
// is supplied by resolve (import path -> export file).
func exportImporter(fset *token.FileSet, resolve func(string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := resolve(path)
		if !ok || file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typecheck parses files (skipping _test.go — the static invariants
// target production code) and type-checks them into a Package.
func typecheck(fset *token.FileSet, path, module string, files []string, imp types.Importer, goVersion string) (*Package, error) {
	var syntax []*ast.File
	for _, file := range files {
		if strings.HasSuffix(filepath.Base(file), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", file, err)
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	conf := types.Config{Importer: imp, Sizes: sizes, GoVersion: goVersion}
	tpkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	return &Package{
		Path:   path,
		Module: module,
		Fset:   fset,
		Syntax: syntax,
		Types:  tpkg,
		Info:   info,
		Sizes:  sizes,
	}, nil
}
