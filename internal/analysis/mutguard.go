package analysis

import (
	"go/ast"
	"go/types"
)

// MutGuard enforces the shard mutation discipline: a write to a
// struct field marked //ring:guarded <mu> is only legal when the
// writer demonstrably holds the named sibling mutex — either the
// enclosing function is marked //ring:locked <mu> (caller holds it),
// or a lexically preceding <recv>.<mu>.Lock() call appears in the same
// function body. Calls to //ring:locked functions are checked the same
// way at every call site.
//
// The check is intentionally lexical and intra-procedural: it will
// not prove lock ownership across goroutines or through aliasing, but
// it catches the realistic regression — a new code path that touches
// sh.retired, registry bookkeeping, or shootdown lists without taking
// the mutex first — and the -race CI runs backstop what it cannot see.
var MutGuard = &Analyzer{
	Name: "mutguard",
	Doc:  "checks that writes to //ring:guarded fields happen under the named mutex",
	Run:  runMutGuard,
}

func runMutGuard(pass *Pass) error {
	for _, file := range pass.Pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			g := &guardWalker{pass: pass, decl: fd}
			if note := pass.Notes.Funcs[fd]; note != nil {
				g.locked = note.Locked
			}
			g.collectLocks(fd.Body)
			g.check(fd.Body)
		}
	}
	return nil
}

type guardWalker struct {
	pass   *Pass
	decl   *ast.FuncDecl
	locked string // //ring:locked marker of the enclosing function

	// lockPos collects the positions of <x>.<mu>.Lock()/RLock() calls
	// in the body, per mutex field name.
	lockPos map[string][]ast.Node
}

// collectLocks records every mutex acquisition in the body.
func (g *guardWalker) collectLocks(body *ast.BlockStmt) {
	g.lockPos = map[string][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		// The receiver of Lock: x.mu -> field name "mu".
		if muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
			g.lockPos[muSel.Sel.Name] = append(g.lockPos[muSel.Sel.Name], call)
		} else if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			g.lockPos[id.Name] = append(g.lockPos[id.Name], call)
		}
		return true
	})
}

// holds reports whether the mutex named mu is demonstrably held at
// pos: the function is //ring:locked mu, or some mu.Lock() precedes
// pos lexically.
func (g *guardWalker) holds(mu string, pos ast.Node) bool {
	if g.locked == mu {
		return true
	}
	for _, lock := range g.lockPos[mu] {
		if lock.Pos() < pos.Pos() {
			return true
		}
	}
	return false
}

func (g *guardWalker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				g.checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			g.checkWrite(node.X)
		case *ast.CallExpr:
			g.checkLockedCall(node)
		}
		return true
	})
}

// checkWrite flags a write to a guarded field done without the mutex.
// Index and dereference wrappers are unwrapped so sh.retired[i] = x
// counts as a write to sh.retired.
func (g *guardWalker) checkWrite(lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			lhs = e.X
			continue
		case *ast.StarExpr:
			lhs = e.X
			continue
		case *ast.ParenExpr:
			lhs = e.X
			continue
		}
		break
	}
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	v := g.fieldOf(sel)
	if v == nil {
		return
	}
	mu, guarded := g.pass.Notes.Guarded[v]
	if !guarded {
		return
	}
	if !g.holds(mu, sel) {
		g.pass.Reportf(sel.Pos(),
			"write to guarded field %s without holding %s (take %s.Lock() first, or mark the function //ring:locked %s)",
			v.Name(), mu, mu, mu)
	}
}

// checkLockedCall flags a call to a //ring:locked function made
// without the mutex the callee requires.
func (g *guardWalker) checkLockedCall(call *ast.CallExpr) {
	fn := staticCalleeOf(g.pass.Pkg, call)
	if fn == nil {
		return
	}
	fact := g.pass.FuncFactOf(fn)
	if fact == nil || fact.Locked == "" {
		return
	}
	if !g.holds(fact.Locked, call) {
		g.pass.Reportf(call.Pos(),
			"call to %s requires holding %s (//ring:locked %s)",
			fn.Name(), fact.Locked, fact.Locked)
	}
}

// fieldOf resolves a selector to the struct field it names, or nil.
func (g *guardWalker) fieldOf(sel *ast.SelectorExpr) *types.Var {
	if s, ok := g.pass.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
