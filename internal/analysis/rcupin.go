package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RCUPin enforces the snapshot pin/unpin discipline of the RCU read
// side (internal/service/rcu.go): a function that acquires a snapshot
// pin — by calling pin/pinSum directly or any //ring:pins function —
// must release it (unpin) on every path before returning, unless the
// function is itself marked //ring:pins (batch-scoped pinning: the
// obligation transfers to the caller). While a pin may be held, no
// blocking operation is allowed: mutex Lock/RLock, channel operations,
// select, sync.WaitGroup.Wait, time.Sleep, or a fmt/log call.
//
// The walk is branch-aware, not lexical: each arm of an if/switch is
// analyzed with the state it inherits, and the states are merged
// conservatively (possibly-pinned wins), so a pin in one switch case
// does not poison its siblings. A `defer ...unpin...` discharges the
// release obligation on every exit path, including panics.
var RCUPin = &Analyzer{
	Name: "rcupin",
	Doc:  "checks that RCU snapshot pins are released on all paths and never held across blocking operations",
	Run:  runRCUPin,
}

func runRCUPin(pass *Pass) error {
	for _, file := range pass.Pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			note := pass.Notes.Funcs[fd]
			w := &pinWalker{pass: pass, pins: note != nil && note.Pins}
			exit := w.stmts(fd.Body.List, pinState{})
			if exit.pinned && !w.pins && !w.deferredUnpin {
				pass.Reportf(fd.Name.Pos(),
					"%s can exit with an RCU snapshot pinned (no unpin on some path; mark //ring:pins if the caller releases)",
					fd.Name.Name)
			}
		}
	}
	return nil
}

// pinState is the abstract state at one program point.
type pinState struct {
	pinned bool // a snapshot pin may be held here
}

func merge(a, b pinState) pinState { return pinState{pinned: a.pinned || b.pinned} }

type pinWalker struct {
	pass          *Pass
	pins          bool // enclosing function is //ring:pins
	deferredUnpin bool
}

// stmts walks a statement sequence and returns the exit state.
func (w *pinWalker) stmts(list []ast.Stmt, st pinState) pinState {
	for _, s := range list {
		st = w.stmt(s, st)
	}
	return st
}

func (w *pinWalker) stmt(s ast.Stmt, st pinState) pinState {
	switch n := s.(type) {
	case *ast.ExprStmt:
		return w.expr(n.X, st)
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			st = w.expr(e, st)
		}
		for _, e := range n.Lhs {
			st = w.expr(e, st)
		}
		return st
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						st = w.expr(v, st)
					}
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			st = w.expr(e, st)
		}
		if st.pinned && !w.pins && !w.deferredUnpin {
			w.pass.Reportf(n.Pos(), "return with RCU snapshot pinned (no unpin on this path)")
		}
		return st
	case *ast.DeferStmt:
		if containsUnpin(n.Call) {
			w.deferredUnpin = true
			return st
		}
		// Evaluate the arguments (they run now); the call itself runs
		// at exit, outside this walk's scope.
		for _, a := range n.Call.Args {
			st = w.expr(a, st)
		}
		return st
	case *ast.IfStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		st = w.expr(n.Cond, st)
		thenSt := w.stmts(n.Body.List, st)
		elseSt := st
		if n.Else != nil {
			elseSt = w.stmt(n.Else, st)
		}
		return merge(thenSt, elseSt)
	case *ast.BlockStmt:
		return w.stmts(n.List, st)
	case *ast.SwitchStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		if n.Tag != nil {
			st = w.expr(n.Tag, st)
		}
		out := st // no-default fallthrough state
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			caseSt := st
			for _, e := range cc.List {
				caseSt = w.expr(e, caseSt)
			}
			out = merge(out, w.stmts(cc.Body, caseSt))
		}
		return out
	case *ast.TypeSwitchStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		st = w.stmt(n.Assign, st)
		out := st
		for _, c := range n.Body.List {
			cc := c.(*ast.CaseClause)
			out = merge(out, w.stmts(cc.Body, st))
		}
		return out
	case *ast.SelectStmt:
		if st.pinned {
			w.pass.Reportf(n.Pos(), "select while RCU snapshot pinned (blocks the grace period)")
		}
		out := st
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			commSt := st
			if cc.Comm != nil {
				commSt = w.stmt(cc.Comm, st)
			}
			out = merge(out, w.stmts(cc.Body, commSt))
		}
		return out
	case *ast.ForStmt:
		if n.Init != nil {
			st = w.stmt(n.Init, st)
		}
		if n.Cond != nil {
			st = w.expr(n.Cond, st)
		}
		body := w.stmts(n.Body.List, st)
		if n.Post != nil {
			body = w.stmt(n.Post, body)
		}
		return merge(st, body)
	case *ast.RangeStmt:
		if st.pinned {
			if t := w.pass.Pkg.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					w.pass.Reportf(n.Pos(), "range over channel while RCU snapshot pinned (blocks the grace period)")
				}
			}
		}
		st = w.expr(n.X, st)
		return merge(st, w.stmts(n.Body.List, st))
	case *ast.SendStmt:
		if st.pinned {
			w.pass.Reportf(n.Pos(), "channel send while RCU snapshot pinned (blocks the grace period)")
		}
		st = w.expr(n.Value, st)
		return st
	case *ast.GoStmt:
		for _, a := range n.Call.Args {
			st = w.expr(a, st)
		}
		return st
	case *ast.LabeledStmt:
		return w.stmt(n.Stmt, st)
	case *ast.IncDecStmt:
		return w.expr(n.X, st)
	}
	return st
}

// expr walks one expression: reports blocking operations that happen
// while pinned, then applies pin/unpin transitions caused by calls.
func (w *pinWalker) expr(e ast.Expr, st pinState) pinState {
	switch n := e.(type) {
	case *ast.CallExpr:
		st = w.expr(n.Fun, st)
		for _, a := range n.Args {
			st = w.expr(a, st)
		}
		return w.call(n, st)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && st.pinned {
			w.pass.Reportf(n.Pos(), "channel receive while RCU snapshot pinned (blocks the grace period)")
		}
		return w.expr(n.X, st)
	case *ast.BinaryExpr:
		st = w.expr(n.X, st)
		return w.expr(n.Y, st)
	case *ast.ParenExpr:
		return w.expr(n.X, st)
	case *ast.SelectorExpr:
		return w.expr(n.X, st)
	case *ast.IndexExpr:
		st = w.expr(n.X, st)
		return w.expr(n.Index, st)
	case *ast.SliceExpr:
		st = w.expr(n.X, st)
		for _, idx := range []ast.Expr{n.Low, n.High, n.Max} {
			if idx != nil {
				st = w.expr(idx, st)
			}
		}
		return st
	case *ast.StarExpr:
		return w.expr(n.X, st)
	case *ast.TypeAssertExpr:
		return w.expr(n.X, st)
	case *ast.CompositeLit:
		for _, el := range n.Elts {
			st = w.expr(el, st)
		}
		return st
	case *ast.KeyValueExpr:
		return w.expr(n.Value, st)
	}
	return st
}

// call classifies one call: blocking check first (against the state
// before the call), then the pin/unpin transition.
func (w *pinWalker) call(call *ast.CallExpr, st pinState) pinState {
	name := calleeName(call)

	if st.pinned {
		if what := w.blocking(call, name); what != "" {
			w.pass.Reportf(call.Pos(), "%s while RCU snapshot pinned (blocks the grace period)", what)
		}
	}

	switch name {
	case "pin", "Pin", "pinSum", "PinSum":
		st.pinned = true
		return st
	case "unpin", "Unpin":
		st.pinned = false
		return st
	}
	// Static call to a //ring:pins function pins on the caller's
	// behalf (batch-scoped acquisition).
	if fn := staticCalleeOf(w.pass.Pkg, call); fn != nil {
		if fact := w.pass.FuncFactOf(fn); fact != nil && fact.Pins {
			st.pinned = true
		}
	}
	return st
}

// blocking reports the kind of blocking operation call is, or "".
func (w *pinWalker) blocking(call *ast.CallExpr, name string) string {
	switch name {
	case "Lock", "RLock":
		return "mutex " + name
	case "Wait":
		return "Wait"
	case "Sleep":
		return "Sleep"
	}
	if fn := staticCalleeOf(w.pass.Pkg, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			return fn.Pkg().Path() + "." + fn.Name()
		}
	}
	return ""
}

// calleeName is the bare selector or identifier name of the call.
func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// containsUnpin reports whether the deferred call releases pins —
// either directly (defer rd.unpin()) or inside a deferred closure.
func containsUnpin(call *ast.CallExpr) bool {
	switch name := calleeName(call); name {
	case "unpin", "Unpin":
		return true
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				switch calleeName(c) {
				case "unpin", "Unpin":
					found = true
				}
			}
			return !found
		})
		return found
	}
	return false
}

// staticCalleeOf resolves a call to its static *types.Func, or nil
// for dynamic calls. Mirrors scanner.staticCallee without the
// method-value bookkeeping.
func staticCalleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
				if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
					return nil
				}
			}
			return fn
		}
		if fn, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
