package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ---- Facts ----

// A Ban is one heap-allocating construct found in a function body.
// Positions are "file:line" strings so facts serialize stably.
type Ban struct {
	Pos  string
	What string
}

// A CallSite is one static module-internal call.
type CallSite struct {
	Callee string // FuncKey of the callee
	Pos    string
}

// FuncFact is everything the suite exports about one function.
type FuncFact struct {
	Hot    bool
	Pins   bool
	Locked string
	Bans   []Ban
	Calls  []CallSite
}

// PackageFacts is one package's exported facts.
type PackageFacts struct {
	Path  string
	Funcs map[string]*FuncFact // keyed by FuncKey
}

// FactSet maps package paths to their facts. A vetx file holds the
// transitive closure — the package's own facts plus everything its
// dependencies exported — so single-level PackageVetx maps suffice.
type FactSet map[string]*PackageFacts

// FuncKey is the stable identifier of a function within its package:
// "Name" for package functions, "(Recv).Name" / "(*Recv).Name" for
// methods.
func FuncKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		ptr = "*"
		t = p.Elem()
	}
	name := "?"
	switch tt := t.(type) {
	case *types.Named:
		name = tt.Obj().Name()
	case *types.Interface:
		name = t.String()
	}
	return fmt.Sprintf("(%s%s).%s", ptr, name, fn.Name())
}

// GlobalKey qualifies a FuncKey with its package path, for
// cross-package fact lookups and diagnostics.
func GlobalKey(pkgPath, key string) string { return pkgPath + "." + key }

// ---- Scan ----

// Scan walks every function of pkg once and records its facts: the
// heap-allocating constructs it contains (after //ring:allow
// filtering), its static module-internal callees, and its annotation
// markers. The result feeds every analyzer and is what the package
// exports to its dependents.
func Scan(pkg *Package, notes *Notes, facts FactSet) *PackageFacts {
	pf := &PackageFacts{Path: pkg.Path, Funcs: map[string]*FuncFact{}}
	for _, file := range pkg.Syntax {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := &FuncFact{}
			if note := notes.Funcs[fd]; note != nil {
				fact.Hot, fact.Pins, fact.Locked = note.Hot, note.Pins, note.Locked
			}
			s := &scanner{pkg: pkg, notes: notes, fact: fact, decl: fd}
			s.scan()
			pf.Funcs[FuncKey(obj)] = fact
		}
	}
	return pf
}

// scanner walks one function body.
type scanner struct {
	pkg   *Package
	notes *Notes
	fact  *FuncFact
	decl  *ast.FuncDecl
	// calledSelectors tracks method selectors seen in call position,
	// so methodValue doesn't flag ordinary method calls. ast.Inspect is
	// pre-order, so a CallExpr is always visited before its Fun.
	calledSelectors map[*ast.SelectorExpr]bool
}

func (s *scanner) posKey(pos token.Pos) string {
	return lineKey(s.pkg.Fset.Position(pos))
}

// ban records a banned construct unless the line carries ring:allow.
func (s *scanner) ban(pos token.Pos, what string) {
	key := s.posKey(pos)
	if _, allowed := s.notes.Allowed[key]; allowed {
		return
	}
	s.fact.Bans = append(s.fact.Bans, Ban{Pos: key, What: what})
}

func (s *scanner) scan() {
	ast.Inspect(s.decl.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			s.call(node)
		case *ast.FuncLit:
			if s.captures(node) {
				s.ban(node.Pos(), "capturing closure (allocates)")
			}
		case *ast.SelectorExpr:
			s.methodValue(node)
		case *ast.CompositeLit:
			t := s.pkg.Info.TypeOf(node)
			if t == nil {
				break
			}
			switch t.Underlying().(type) {
			case *types.Map:
				s.ban(node.Pos(), "map literal (allocates)")
			case *types.Slice:
				s.ban(node.Pos(), "slice literal (allocates)")
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD {
				tv := s.pkg.Info.Types[node]
				if tv.Value == nil && tv.Type != nil && isString(tv.Type) {
					s.ban(node.Pos(), "string concatenation (allocates)")
				}
			}
		case *ast.GoStmt:
			s.ban(node.Pos(), "go statement (spawns a goroutine)")
		case *ast.AssignStmt:
			s.assign(node)
		case *ast.ValueSpec:
			if node.Type != nil {
				dst := s.pkg.Info.TypeOf(node.Type)
				for _, v := range node.Values {
					s.ifaceConv(dst, v)
				}
			}
		case *ast.ReturnStmt:
			s.returns(node)
		case *ast.SendStmt:
			if ct := s.pkg.Info.TypeOf(node.Chan); ct != nil {
				if ch, ok := ct.Underlying().(*types.Chan); ok {
					s.ifaceConv(ch.Elem(), node.Value)
				}
			}
		}
		return true
	})
}

// call classifies one call expression: conversion, builtin, banned
// package, or static module-internal callee.
func (s *scanner) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		// In call position the selector is never a method value, even
		// when the call is dynamic (interface method).
		s.markCalled(sel)
	}

	// Type conversion?
	if tv, ok := s.pkg.Info.Types[fun]; ok && tv.IsType() {
		s.conversion(tv.Type, call)
		return
	}

	// Builtin?
	if id, ok := fun.(*ast.Ident); ok {
		if _, isBuiltin := s.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				s.ban(call.Pos(), "append may grow its backing array (allocates)")
			case "make":
				s.ban(call.Pos(), "make (allocates)")
			case "new":
				s.ban(call.Pos(), "new (allocates)")
			}
			return
		}
	}

	fn := s.staticCallee(fun)
	if fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "fmt", "log":
			s.ban(call.Pos(), fmt.Sprintf("calls %s.%s (formats and allocates)", fn.Pkg().Path(), fn.Name()))
			return
		}
		if s.inModule(fn.Pkg().Path()) {
			s.fact.Calls = append(s.fact.Calls, CallSite{
				Callee: GlobalKey(fn.Pkg().Path(), FuncKey(fn)),
				Pos:    s.posKey(call.Pos()),
			})
		}
	}

	// Argument conversions into interface parameters, and the
	// argument slice of a non-spread variadic call.
	sig, ok := s.pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if sig.Variadic() && call.Ellipsis == token.NoPos {
		fixed := params.Len() - 1
		if len(call.Args) > fixed {
			// fmt/log calls were already banned above; everything else
			// materializes an argument slice.
			if fn == nil || (fn.Pkg() != nil && fn.Pkg().Path() != "fmt" && fn.Pkg().Path() != "log") {
				s.ban(call.Pos(), "variadic call materializes its argument slice (allocates)")
			}
			if elem, ok := params.At(fixed).Type().(*types.Slice); ok {
				for _, arg := range call.Args[fixed:] {
					s.ifaceConv(elem.Elem(), arg)
				}
			}
		}
		for i := 0; i < fixed && i < len(call.Args); i++ {
			s.ifaceConv(params.At(i).Type(), call.Args[i])
		}
		return
	}
	for i := 0; i < len(call.Args) && i < params.Len(); i++ {
		s.ifaceConv(params.At(i).Type(), call.Args[i])
	}
}

// conversion flags allocating type conversions: string <-> byte/rune
// slices, and conversions to interface types.
func (s *scanner) conversion(dst types.Type, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	src := s.pkg.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	du, su := dst.Underlying(), src.Underlying()
	if isString(du) && isByteOrRuneSlice(su) || isByteOrRuneSlice(du) && isString(su) {
		// Constant-folded conversions don't allocate.
		if s.pkg.Info.Types[call].Value == nil {
			s.ban(call.Pos(), fmt.Sprintf("conversion %s -> %s copies (allocates)", src, dst))
		}
		return
	}
	s.ifaceConv(dst, call.Args[0])
}

// ifaceConv flags an implicit or explicit conversion of a non-pointer
// concrete value into an interface: the boxed copy escapes to the
// heap. Pointer-shaped values (pointers, channels, maps, funcs,
// unsafe.Pointer) and zero-size values are stored directly in the
// interface word and do not allocate.
func (s *scanner) ifaceConv(dst types.Type, src ast.Expr) {
	if dst == nil {
		return
	}
	if _, isIface := dst.Underlying().(*types.Interface); !isIface {
		return
	}
	tv, ok := s.pkg.Info.Types[src]
	if !ok || tv.Type == nil {
		return
	}
	st := tv.Type
	if st == nil || isUntypedNil(st) {
		return
	}
	if _, isIface := st.Underlying().(*types.Interface); isIface {
		return // interface-to-interface carries the existing box
	}
	if isPointerShaped(st.Underlying()) {
		return
	}
	if s.pkg.Sizes != nil && s.pkg.Sizes.Sizeof(st) == 0 {
		return // zero-size values share the runtime's zero base
	}
	s.ban(src.Pos(), fmt.Sprintf("interface conversion of non-pointer %s (allocates)", st))
}

// assign checks interface conversions in plain assignments (the
// destination's declared type is only interesting for tok '=';
// ':=' gives the destination the source's own type).
func (s *scanner) assign(a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN {
		return
	}
	if len(a.Lhs) == len(a.Rhs) {
		for i := range a.Lhs {
			s.ifaceConv(s.pkg.Info.TypeOf(a.Lhs[i]), a.Rhs[i])
		}
		return
	}
	// x, y = f(): component-wise against the call's tuple.
	if len(a.Rhs) == 1 {
		if tuple, ok := s.pkg.Info.TypeOf(a.Rhs[0]).(*types.Tuple); ok {
			for i := 0; i < tuple.Len() && i < len(a.Lhs); i++ {
				dst := s.pkg.Info.TypeOf(a.Lhs[i])
				if dst == nil {
					continue
				}
				if _, isIface := dst.Underlying().(*types.Interface); !isIface {
					continue
				}
				src := tuple.At(i).Type()
				if _, isIface := src.Underlying().(*types.Interface); isIface {
					continue
				}
				if !isPointerShaped(src.Underlying()) {
					s.ban(a.Rhs[0].Pos(), fmt.Sprintf("interface conversion of non-pointer %s (allocates)", src))
				}
			}
		}
	}
}

// returns checks interface conversions against the enclosing
// function's result types.
func (s *scanner) returns(r *ast.ReturnStmt) {
	obj, ok := s.pkg.Info.Defs[s.decl.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(r.Results) != results.Len() {
		return // tuple-forwarding return; conversions impossible
	}
	for i, expr := range r.Results {
		s.ifaceConv(results.At(i).Type(), expr)
	}
}

// methodValue flags a method used as a value (x.M without a call):
// the bound-method closure allocates.
func (s *scanner) methodValue(sel *ast.SelectorExpr) {
	selection, ok := s.pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return
	}
	// A selector in call position was already marked by call() (the
	// CallExpr is visited first); what remains is a genuine bound
	// method value.
	if s.calledSelectors[sel] {
		return
	}
	s.ban(sel.Pos(), fmt.Sprintf("method value %s (allocates a closure)", sel.Sel.Name))
}

// captures reports whether lit references a variable declared outside
// itself but inside the enclosing function (a true capture; uses of
// package-level objects are static).
func (s *scanner) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := s.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() == token.NoPos {
			return true
		}
		// Declared inside the enclosing declaration but outside the literal?
		if v.Pos() >= s.decl.Pos() && v.Pos() < s.decl.End() &&
			(v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			found = true
		}
		return true
	})
	return found
}

// staticCallee resolves fun to the *types.Func it will invoke, or nil
// for dynamic calls (interface methods, func values).
func (s *scanner) staticCallee(fun ast.Expr) *types.Func {
	switch f := fun.(type) {
	case *ast.Ident:
		if fn, ok := s.pkg.Info.Uses[f].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := s.pkg.Info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				return nil
			}
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// A method reached through an interface is dynamic.
			recv := fn.Type().(*types.Signature).Recv()
			if recv != nil {
				if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
					return nil
				}
			}
			s.markCalled(f)
			return fn
		}
		// Package-qualified call: pkg.F.
		if fn, ok := s.pkg.Info.Uses[f.Sel].(*types.Func); ok {
			s.markCalled(f)
			return fn
		}
	}
	return nil
}

func (s *scanner) inModule(path string) bool {
	m := s.pkg.Module
	return m != "" && (path == m || strings.HasPrefix(path, m+"/"))
}

func (s *scanner) markCalled(sel *ast.SelectorExpr) {
	if s.calledSelectors == nil {
		s.calledSelectors = map[*ast.SelectorExpr]bool{}
	}
	s.calledSelectors[sel] = true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isPointerShaped(t types.Type) bool {
	switch b := t.(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return b.Kind() == types.UnsafePointer
	}
	return false
}
