package analysis

// Suite-level tests: the repository itself must be ringvet-clean, the
// gate must actually trip when an allocation sneaks into the decision
// hot path, every //ring:hotpath marker must attach to a real
// function, and the unitchecker driver must interoperate with
// `go vet -vettool`.

import (
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

const repoRoot = "../.."

// TestRepoClean runs the full suite over the whole module and demands
// zero diagnostics — the same gate CI applies through go vet.
func TestRepoClean(t *testing.T) {
	pkgs, err := Load(repoRoot, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, _, err := Run(pkgs, Analyzers, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestSprintfInjectionCaught copies the module aside, plants a
// fmt.Sprintf inside putBatch — squarely in SubmitInto's call graph —
// and demands that the hotpath analyzer reports it. This is the
// end-to-end proof that the gate is live, not vacuously green.
func TestSprintfInjectionCaught(t *testing.T) {
	tmp := t.TempDir()
	copyModule(t, repoRoot, tmp)

	victim := filepath.Join(tmp, "internal", "service", "service.go")
	src, err := os.ReadFile(victim)
	if err != nil {
		t.Fatalf("read victim: %v", err)
	}
	const anchor = "func (s *Service) putBatch(b *batch) {"
	if !strings.Contains(string(src), anchor) {
		t.Fatalf("anchor %q not found in service.go; update the test", anchor)
	}
	injected := strings.Replace(string(src), anchor,
		anchor+"\n\t_ = fmt.Sprintf(\"leaked allocation\")", 1)
	if err := os.WriteFile(victim, []byte(injected), 0o644); err != nil {
		t.Fatalf("write victim: %v", err)
	}

	pkgs, err := Load(tmp, "./internal/service")
	if err != nil {
		t.Fatalf("load injected module: %v", err)
	}
	diags, _, err := Run(pkgs, Analyzers, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, d := range diags {
		if d.Analyzer == "hotpath" && strings.Contains(d.Message, "fmt.Sprintf") {
			return // gate tripped, as it must
		}
	}
	t.Fatalf("injected fmt.Sprintf in putBatch was not reported; diagnostics: %v", diags)
}

// TestHotpathMarkersAttach is the meta-test: every //ring:hotpath
// comment in the production tree must be parsed as a marker on an
// actual function declaration. A marker adrift (miscounted here)
// silently unprotects a path, so the raw grep count and the parsed
// count must agree.
func TestHotpathMarkersAttach(t *testing.T) {
	grepped := 0
	err := filepath.WalkDir(repoRoot, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(src), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "//ring:hotpath") {
				grepped++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if grepped == 0 {
		t.Fatal("no //ring:hotpath markers found in the tree; the hot paths have lost their annotations")
	}

	pkgs, err := Load(repoRoot, "./...")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	parsed := 0
	for _, pkg := range pkgs {
		notes := ParseNotes(pkg)
		if len(notes.Problems) > 0 {
			for _, p := range notes.Problems {
				t.Errorf("%s: %s", pkg.Fset.Position(p.Pos), p.Msg)
			}
		}
		for _, note := range notes.Funcs {
			if note.Hot {
				parsed++
			}
		}
	}
	if parsed != grepped {
		t.Errorf("%d //ring:hotpath comments in the tree but %d parsed as function markers: some marker is not attached to a function declaration", grepped, parsed)
	}
}

// TestVettool builds cmd/ringvet and drives it through the real
// `go vet -vettool` protocol over the whole module, expecting a clean
// exit — the exact invocation CI uses.
func TestVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole module; skipped with -short")
	}
	bin := filepath.Join(t.TempDir(), "ringvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ringvet")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ringvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings: %v\n%s", err, out)
	}
}

// copyModule copies go.mod and every production .go file of the
// module into dst, preserving layout. Tests and testdata are skipped
// (the analyzers never read them), as is version control.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".github", "testdata":
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		keep := rel == "go.mod" ||
			(strings.HasSuffix(rel, ".go") && !strings.HasSuffix(rel, "_test.go"))
		if !keep {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatalf("copy module: %v", err)
	}
}
