// Package annot exercises the annot analyzer: the //ring: grammar is
// itself checked, so a typo in an annotation fails the build instead
// of silently disabling an invariant.
package annot

import "sync"

//ring:frobnicate the widget // want `unknown ringvet directive "frobnicate"`
func mystery() {}

//ring:hotpath floating above a var, not a function // want `ring:hotpath is not attached to a function declaration`

var strayTarget int

//ring:guarded mu floating free of any struct // want `ring:guarded is not attached to a struct field`

var anchor int

var n int

// The reason on an allow is mandatory.
func setup() {
	/* want `ring:allow requires a reason` */ //ring:allow
	n = 2
}

type registry struct {
	mu sync.Mutex
	n  int //ring:guarded lock // want `ring:guarded names "lock", which is not a field of the same struct`
}

type table struct {
	mu sync.Mutex
	m  int /* want `ring:guarded requires a mutex field name` */ //ring:guarded
}

type misplaced struct {
	mu sync.Mutex
	v  int //ring:hotpath // want `ring:hotpath is not valid on a struct field`
}

/* want `ring:locked requires a mutex field name` */ //ring:locked
func needsName()                                     {}

// ---- negatives: well-formed markers draw no report ----

// valid carries every function marker.
//
//ring:hotpath
//ring:pins
func valid() {}

type guardedOK struct {
	mu sync.Mutex
	v  int //ring:guarded mu
}

// lockedOK names its mutex.
//
//ring:locked mu
func lockedOK(g *guardedOK) { g.v = 1 }

// use silences unused warnings for the fixture's props.
func use() {
	mystery()
	needsName()
	valid()
	setup()
	_ = strayTarget
	_ = anchor
	_ = registry{}
	_ = table{}
	_ = misplaced{}
}
