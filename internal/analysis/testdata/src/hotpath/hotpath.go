// Package hotpath exercises the hotpath analyzer: //ring:hotpath
// functions and every module-internal function they statically call
// must be free of heap-allocating constructs.
package hotpath

import "fmt"

type buf struct{ n int }

func (b *buf) get() int { return b.n }

// sink defeats "declared and not used" without allocating.
var sink int

//ring:hotpath
func direct(x int) string {
	return fmt.Sprintf("%d", x) // want `hot path: calls fmt.Sprintf \(formats and allocates\)`
}

//ring:hotpath
func closes(x int) func() int {
	return func() int { return x } // want `hot path: capturing closure \(allocates\)`
}

//ring:hotpath
func boxes(x int) any {
	return x // want `hot path: interface conversion of non-pointer int \(allocates\)`
}

//ring:hotpath
func grows(s []int, x int) []int {
	return append(s, x) // want `hot path: append may grow its backing array \(allocates\)`
}

//ring:hotpath
func news() *buf {
	return new(buf) // want `hot path: new \(allocates\)`
}

//ring:hotpath
func concat(a, b string) string {
	return a + b // want `hot path: string concatenation \(allocates\)`
}

//ring:hotpath
func toBytes(s string) []byte {
	return []byte(s) // want `hot path: conversion string -> \[\]byte copies \(allocates\)`
}

//ring:hotpath
func sliceLit() int {
	return len([]int{1, 2}) // want `hot path: slice literal \(allocates\)`
}

//ring:hotpath
func spawns() {
	go work() // want `hot path: go statement \(spawns a goroutine\)`
}

//ring:hotpath
func methodVal(b *buf) func() int {
	return b.get // want `hot path: method value get \(allocates a closure\)`
}

func variadic(xs ...int) int { return len(xs) }

//ring:hotpath
func callsVariadic() {
	sink = variadic(1, 2, 3) // want `hot path: variadic call materializes its argument slice \(allocates\)`
}

// viaHelper is clean itself; the allocation lives one static call away
// and is charged to the hot caller at the call site.
//
//ring:hotpath
func viaHelper(x int) {
	helper(x) // want `hot path: viaHelper calls hotpath\.helper, which reaches make \(allocates\) at .*hotpath\.go:\d+ \(via hotpath\.helper\)`
}

func helper(x int) {
	sink = len(make([]int, x))
}

// deep reaches its allocation through two non-hot hops; the chain is
// spelled out in the diagnostic.
//
//ring:hotpath
func deep() {
	outer() // want `hot path: deep calls hotpath\.outer, which reaches map literal \(allocates\) at .*hotpath\.go:\d+ \(via hotpath\.outer -> hotpath\.inner\)`
}

func outer() { inner() }

func inner() {
	m := map[int]int{}
	sink = len(m)
}

// ---- negatives: none of the following may be flagged ----

// methodCall is a static method call, not a method value.
//
//ring:hotpath
func methodCall(b *buf) int {
	return b.get()
}

// pointerBox stores the pointer directly in the interface word.
//
//ring:hotpath
func pointerBox(b *buf) any {
	return b
}

type empty struct{}

// zeroSize values share the runtime's zero base; boxing them is free.
//
//ring:hotpath
func zeroSize() any {
	return empty{}
}

// spread forwards an existing slice; no argument slice materializes.
//
//ring:hotpath
func spread(xs []int) {
	sink = variadic(xs...)
}

// allowedInline documents its one exception with a mandatory reason.
//
//ring:hotpath
func allowedInline() *buf {
	return new(buf) //ring:allow fixture: documented cold fallback
}

// allowedCallee is hot and verified at its own definition, so hot
// callers trust it rather than re-walking into it.
//
//ring:hotpath
func allowedCallee() []int {
	//ring:allow fixture: cold fallback, measured separately
	return make([]int, 4)
}

//ring:hotpath
func trustsHotCallee() {
	sink = len(allowedCallee())
}

func work() {}
