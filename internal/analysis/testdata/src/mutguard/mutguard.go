// Package mutguard exercises the mutguard analyzer: writes to
// //ring:guarded fields require the named sibling mutex, proven
// either by a lexically preceding Lock or a //ring:locked contract.
package mutguard

import "sync"

type shard struct {
	mu      sync.Mutex
	count   int   //ring:guarded mu
	retired []int //ring:guarded mu
	name    string
}

// bare writes without the lock are flagged.
func bare(s *shard) {
	s.count++ // want `write to guarded field count without holding mu \(take mu\.Lock\(\) first, or mark the function //ring:locked mu\)`
}

// locked takes the mutex first; both writes are legal.
func locked(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.count++
	s.retired = append(s.retired, 1)
}

// unguarded fields need no lock.
func unguarded(s *shard) {
	s.name = "x"
}

// indexed writes unwrap to the guarded field.
func indexed(s *shard, i, v int) {
	s.retired[i] = v // want `write to guarded field retired without holding mu`
}

// incLocked documents the caller-holds-mu contract: its own write is
// legal, and every call site is checked instead.
//
//ring:locked mu
func incLocked(s *shard) {
	s.count++
}

// callsBare calls a locked function without the mutex.
func callsBare(s *shard) {
	incLocked(s) // want `call to incLocked requires holding mu \(//ring:locked mu\)`
}

// callsHeld takes the mutex before the locked call.
func callsHeld(s *shard) {
	s.mu.Lock()
	incLocked(s)
	s.mu.Unlock()
}

// allowWins documents a single-writer exception.
func allowWins(s *shard) {
	s.count++ //ring:allow fixture: single-writer setup phase, not yet published
}

type stats struct {
	mu   sync.RWMutex
	hits int //ring:guarded mu
}

// rlocked demonstrates RLock satisfying the guard (the reader-side
// publication pattern uses an RWMutex).
func rlocked(st *stats) {
	st.mu.RLock()
	st.hits++
	st.mu.RUnlock()
}
