// Package rcupin exercises the rcupin analyzer: every snapshot pin
// must be released on all paths (including panic paths, via defer),
// and no blocking operation may happen while a pin is held.
package rcupin

import (
	"fmt"
	"sync"
)

type reader struct {
	mu sync.Mutex
}

func (r *reader) pin()   {}
func (r *reader) unpin() {}

func work() {}

// good pairs the pin with an unconditional defer.
func good(r *reader) {
	r.pin()
	defer r.unpin()
	work()
}

// deferredClosure releases inside a deferred function literal — the
// panic-safe form the service worker uses.
func deferredClosure(r *reader) {
	r.pin()
	defer func() {
		r.unpin()
	}()
	work()
}

// branches pins in only one arm; the sibling arm stays clean and the
// pinned arm releases before falling out.
func branches(r *reader, c bool) {
	if c {
		r.pin()
		work()
		r.unpin()
	} else {
		work()
	}
}

// loopPaired pins and unpins within each iteration.
func loopPaired(r *reader, n int) {
	for i := 0; i < n; i++ {
		r.pin()
		work()
		r.unpin()
	}
}

func leaks(r *reader) { // want `leaks can exit with an RCU snapshot pinned \(no unpin on some path; mark //ring:pins if the caller releases\)`
	r.pin()
	work()
}

func earlyReturn(r *reader, c bool) {
	r.pin()
	if c {
		return // want `return with RCU snapshot pinned \(no unpin on this path\)`
	}
	r.unpin()
}

func blocksOnLock(r *reader) {
	r.pin()
	r.mu.Lock() // want `mutex Lock while RCU snapshot pinned \(blocks the grace period\)`
	r.mu.Unlock()
	r.unpin()
}

func sends(r *reader, ch chan int) {
	r.pin()
	ch <- 1 // want `channel send while RCU snapshot pinned \(blocks the grace period\)`
	r.unpin()
}

func receives(r *reader, ch chan int) int {
	r.pin()
	v := <-ch // want `channel receive while RCU snapshot pinned \(blocks the grace period\)`
	r.unpin()
	return v
}

func selects(r *reader) {
	r.pin()
	select { // want `select while RCU snapshot pinned \(blocks the grace period\)`
	default:
	}
	r.unpin()
}

func logsWhilePinned(r *reader) {
	r.pin()
	fmt.Println("x") // want `fmt\.Println while RCU snapshot pinned \(blocks the grace period\)`
	r.unpin()
}

// acquire pins on the caller's behalf — the batch-scoped pattern; the
// marker transfers the release obligation to every caller.
//
//ring:pins
func acquire(r *reader) {
	r.pin()
}

// caller inherits acquire's obligation and discharges it.
func caller(r *reader) {
	acquire(r)
	defer r.unpin()
	work()
}

func forgets(r *reader) { // want `forgets can exit with an RCU snapshot pinned \(no unpin on some path; mark //ring:pins if the caller releases\)`
	acquire(r)
	work()
}
