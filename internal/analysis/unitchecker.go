package analysis

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the vet.cfg JSON that cmd/go writes for each
// package when driving a -vettool. Field names must match cmd/go's
// (see src/cmd/go/internal/work/exec.go, vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	ModulePath                string
	SucceedOnTypecheckFailure bool
}

// Main is cmd/ringvet's entry point. It implements both halves of the
// tool's interface:
//
//   - the cmd/go vettool protocol: `ringvet -V=full`, `ringvet
//     -flags`, and `ringvet <dir>/vet.cfg`, which `go vet
//     -vettool=ringvet ./...` drives once per package in dependency
//     order, threading facts through .vetx files;
//   - a standalone mode: `ringvet [packages]` loads the module via
//     `go list` and analyzes it in-process (useful without the go
//     vet harness: `ringvet ./...`).
//
// It returns the process exit code: 0 clean, 2 diagnostics, 1 error.
func Main(args []string) int {
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// cmd/go hashes this line into its build cache key.
			printVersion()
			return 0
		case args[0] == "-flags":
			// No tool flags: cmd/go will pass none through.
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVettool(args[0])
		}
	}
	dir := "."
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 1
	}
	diags, _, err := Run(pkgs, Analyzers, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s\n", d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// printVersion emulates x/tools unitchecker's -V=full response: the
// name plus a content hash of the executable, so rebuilding ringvet
// invalidates go vet's cached results.
func printVersion() {
	name := "ringvet"
	if exe, err := os.Executable(); err == nil {
		name = filepath.Base(exe)
		if data, err := os.ReadFile(exe); err == nil {
			fmt.Printf("%s version devel buildID=%x\n", name, sha256.Sum256(data))
			return
		}
	}
	fmt.Printf("%s version devel\n", name)
}

// runVettool analyzes the single package described by cfgPath.
func runVettool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 1
	}
	cfg := &vetConfig{}
	if err := json.Unmarshal(data, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Out-of-module packages (standard library, any future vendored
	// code) carry no //ring: annotations and export no facts: write an
	// empty vetx and move on. This short-circuits the ~200 stdlib
	// packages go vet schedules before ours.
	if cfg.ModulePath == "" {
		if err := writeVetx(cfg.VetxOutput, FactSet{}); err != nil {
			fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
			return 1
		}
		return 0
	}

	// Seed facts with every dependency's vetx. Each file holds the
	// exporter's transitive closure, so direct deps suffice.
	seed := FactSet{}
	for _, file := range cfg.PackageVetx {
		fs, err := readVetx(file)
		if err != nil {
			// A dependency may have produced no vetx (missing outputs
			// are tolerated by cmd/go); treat it as empty.
			continue
		}
		for p, pf := range fs {
			seed[p] = pf
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	var files []string
	for _, f := range cfg.GoFiles {
		if filepath.IsAbs(f) {
			files = append(files, f)
		} else {
			files = append(files, filepath.Join(cfg.Dir, f))
		}
	}
	pkg, err := typecheck(fset, cfg.ImportPath, cfg.ModulePath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 1
	}

	diags, facts, err := Run([]*Package{pkg}, Analyzers, seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput, facts); err != nil {
		fmt.Fprintf(os.Stderr, "ringvet: %v\n", err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s: %s\n",
			d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// ---- vetx fact files ----

func writeVetx(path string, facts FactSet) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(facts); err != nil {
		f.Close()
		return fmt.Errorf("encoding %s: %v", path, err)
	}
	return f.Close()
}

func readVetx(path string) (FactSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fs := FactSet{}
	if err := gob.NewDecoder(f).Decode(&fs); err != nil && err != io.EOF {
		return nil, fmt.Errorf("decoding %s: %v", path, err)
	}
	return fs, nil
}
