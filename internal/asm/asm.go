// Package asm implements a small two-pass assembler for the simulated
// processor, sufficient to write the supervisor veneers, protected
// subsystems and benchmark kernels of this reproduction in the machine's
// own instruction set.
//
// # Source language
//
// One source file defines one or more segments. Lines have the form
//
//	[label:] [mnemonic|directive [operands]] [; comment]
//
// Directives:
//
//	.seg name            start a new segment
//	.bracket r1,r2,r3    access brackets (default 4,4,4)
//	.access rwe          access flags, any subset of "rwe" (default "re")
//	.gate label          declare a gate; gates become a transfer vector
//	                     at the start of the segment, in declaration order
//	.entry label         export a non-gate symbol
//	.word expr           assemble a data word
//	.its ring, target    assemble an indirect word; target is a local
//	                     label or seg$sym; a trailing ,* sets the
//	                     further-indirection flag
//	.string "text"       assemble packed 9-bit characters, NUL padded
//	.bss n               reserve n zeroed words
//	.equ name, expr      define an assembly-time constant
//	.macro name [p,...]  define a macro (body until .endm; \p substitutes
//	                     an argument, \@ a unique per-expansion suffix)
//
// Instruction operands:
//
//	lda 5            direct, same segment, word 5
//	lda value        direct via local symbol
//	lda value,x2     indexed by X2
//	lda pr3|7        pointer-register relative
//	lda *pr3|7       indirect through (PR3)+7
//	lda *value       indirect through a local word
//	lda other$sym    external: assembled as indirect through a link
//	                 word the assembler places at the end of the segment
//	call other$gate  external call through a link word
//	lia -3           immediates are signed 18-bit values
//	eap5 pr0|1       register-selecting mnemonics carry the register
//	                 number as a suffix: eap0-eap7, spr0-spr7,
//	                 ldx0-ldx7, stx0-stx7, lix0-lix7
//	stic pr6|0,+1    STIC's ,+n suffix is the return-point displacement
//
// Numbers are decimal; the 0o prefix gives octal. Expressions are a
// symbol or number plus an optional +n/-n offset.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/word"
)

// Segment is one assembled segment.
type Segment struct {
	Name      string
	Words     []word.Word
	Brackets  core.Brackets
	Read      bool
	Write     bool
	Execute   bool
	GateCount uint32
	// Exports maps exported symbol (gate or entry) to word number.
	Exports map[string]uint32
	// Relocs are the segment-number patches to apply once segment
	// numbers are assigned.
	Relocs []Reloc
	// Symbols maps every label to its word number (for listings and
	// tests).
	Symbols map[string]uint32
}

// Reloc is a deferred indirect-word fix-up: the word at Wordno is an
// indirect word whose segment (and possibly word) number cannot be
// known until segments are placed.
type Reloc struct {
	Wordno    uint32
	TargetSeg string // "" means this segment
	TargetSym string // "" means the word number is already encoded
}

// Program is the result of assembling a source file.
type Program struct {
	Segments []*Segment
}

// Segment returns the named segment, or nil.
func (p *Program) Segment(name string) *Segment {
	for _, s := range p.Segments {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble assembles a source text.
func Assemble(src string) (*Program, error) {
	lines, err := expandMacros(splitLines(src))
	if err != nil {
		return nil, err
	}

	// Pass 1: build segment skeletons — labels, sizes, gates, links.
	p1, err := passOne(lines)
	if err != nil {
		return nil, err
	}
	// Pass 2: encode.
	if err := passTwo(lines, p1); err != nil {
		return nil, err
	}
	prog := &Program{}
	for _, s := range p1.order {
		prog.Segments = append(prog.Segments, p1.segs[s].finish())
	}
	if len(prog.Segments) == 0 {
		return nil, fmt.Errorf("asm: no segments defined")
	}
	return prog, nil
}

// MustAssemble is Assemble for tests and examples with known-good
// source.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

// ---------------------------------------------------------------------

type sourceLine struct {
	num   int
	label string
	op    string
	rest  string // operand text, comment stripped
}

func splitLines(src string) []sourceLine {
	var out []sourceLine
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		// Strip the ';' comment, but not inside a string literal.
		inString := false
		for j := 0; j < len(line); j++ {
			switch line[j] {
			case '\\':
				if inString {
					j++ // skip the escaped character
				}
			case '"':
				inString = !inString
			case ';':
				if !inString {
					line = line[:j]
					j = len(line)
				}
			}
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		sl := sourceLine{num: i + 1}
		if idx := strings.IndexByte(line, ':'); idx >= 0 && !strings.ContainsAny(line[:idx], " \t") {
			sl.label = line[:idx]
			line = strings.TrimSpace(line[idx+1:])
		}
		if line != "" {
			fields := strings.SplitN(line, " ", 2)
			if len(fields) == 1 {
				fields = strings.SplitN(line, "\t", 2)
			}
			sl.op = strings.ToLower(strings.TrimSpace(fields[0]))
			if len(fields) > 1 {
				sl.rest = strings.TrimSpace(fields[1])
			}
		}
		if sl.label == "" && sl.op == "" {
			continue
		}
		out = append(out, sl)
	}
	return out
}

// linkKey identifies a deduplicated external link word.
type linkKey struct {
	seg, sym string
	further  bool
}

// buildSeg is a segment under construction.
type buildSeg struct {
	name        string
	brackets    core.Brackets
	read        bool
	write       bool
	execute     bool
	gates       []string          // gate labels in declaration order
	size        uint32            // words of code+data (excluding vector and links)
	labels      map[string]uint32 // label -> offset within code+data area
	equs        map[string]int64
	entries     []string
	links       map[linkKey]uint32 // link -> slot index in link area
	linkOrder   []linkKey
	words       []word.Word // pass 2 output (code+data area)
	relocs      []Reloc
	lineDefined int
}

func newBuildSeg(name string, line int) *buildSeg {
	return &buildSeg{
		name:        name,
		brackets:    core.Brackets{R1: 4, R2: 4, R3: 4},
		read:        true,
		execute:     true,
		labels:      map[string]uint32{},
		equs:        map[string]int64{},
		links:       map[linkKey]uint32{},
		lineDefined: line,
	}
}

// vectorLen returns the length of the gate transfer vector.
func (b *buildSeg) vectorLen() uint32 { return uint32(len(b.gates)) }

// addLink registers (or finds) a link word for an external reference
// and returns its slot index within the link area.
func (b *buildSeg) addLink(k linkKey) uint32 {
	if slot, ok := b.links[k]; ok {
		return slot
	}
	slot := uint32(len(b.linkOrder))
	b.links[k] = slot
	b.linkOrder = append(b.linkOrder, k)
	return slot
}

// offsets: segment layout is [gate vector][code+data][links].
func (b *buildSeg) codeBase() uint32 { return b.vectorLen() }
func (b *buildSeg) linkBase() uint32 { return b.vectorLen() + b.size }

// resolveSym returns the word number (within the whole segment) of a
// local label, or the value of an equ.
func (b *buildSeg) resolveSym(sym string) (uint32, bool) {
	if off, ok := b.labels[sym]; ok {
		return b.codeBase() + off, true
	}
	if v, ok := b.equs[sym]; ok {
		return uint32(v) & 0o777777, true
	}
	return 0, false
}

func (b *buildSeg) finish() *Segment {
	s := &Segment{
		Name:      b.name,
		Brackets:  b.brackets,
		Read:      b.read,
		Write:     b.write,
		Execute:   b.execute,
		GateCount: b.vectorLen(),
		Exports:   map[string]uint32{},
		Symbols:   map[string]uint32{},
		Relocs:    b.relocs,
		Words:     b.words,
	}
	for i, g := range b.gates {
		s.Exports[g] = uint32(i) // gate entry point is its vector slot
	}
	for _, e := range b.entries {
		off, ok := b.resolveSym(e)
		if !ok {
			// Callers were validated in passTwo; reaching here means a
			// missed validation — surface it rather than exporting junk.
			panic(fmt.Sprintf("asm: segment %q exports undefined %q", b.name, e))
		}
		s.Exports[e] = off
	}
	for l := range b.labels {
		if off, ok := b.resolveSym(l); ok {
			s.Symbols[l] = off
		}
	}
	return s
}

type passState struct {
	segs  map[string]*buildSeg
	order []string
}

func (ps *passState) current(line int) (*buildSeg, error) {
	if len(ps.order) == 0 {
		return nil, errf(line, "statement before any .seg directive")
	}
	return ps.segs[ps.order[len(ps.order)-1]], nil
}
