package asm

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/word"
)

func TestAssembleMinimal(t *testing.T) {
	prog, err := Assemble(`
        .seg    main
        lia     42
        hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Segment("main")
	if s == nil {
		t.Fatal("no main segment")
	}
	if len(s.Words) != 2 {
		t.Fatalf("words: %d", len(s.Words))
	}
	in := isa.DecodeInstruction(s.Words[0])
	if in.Op != isa.LIA || in.Offset != 42 {
		t.Errorf("first word: %v", in)
	}
}

func TestDefaultsAndDirectives(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
        .bracket 1,2,5
        .access rw
        nop
`)
	s := prog.Segment("s")
	if s.Brackets != (core.Brackets{R1: 1, R2: 2, R3: 5}) {
		t.Errorf("brackets: %+v", s.Brackets)
	}
	if !s.Read || !s.Write || s.Execute {
		t.Errorf("flags: r=%v w=%v e=%v", s.Read, s.Write, s.Execute)
	}
}

func TestLabelsAndExpressions(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
        .equ    K, 3
start:  lda     val
        lda     val+1
        lda     tbl,x2
        lia     K
        hlt
val:    .word   7
        .word   9
tbl:    .bss    4
`)
	s := prog.Segment("s")
	if s.Symbols["val"] != 5 {
		t.Errorf("val at %d", s.Symbols["val"])
	}
	in0 := isa.DecodeInstruction(s.Words[0])
	if in0.Offset != 5 {
		t.Errorf("lda val offset %d", in0.Offset)
	}
	in1 := isa.DecodeInstruction(s.Words[1])
	if in1.Offset != 6 {
		t.Errorf("lda val+1 offset %d", in1.Offset)
	}
	in2 := isa.DecodeInstruction(s.Words[2])
	if in2.Tag != 3 { // x2 -> tag 3
		t.Errorf("index tag %d", in2.Tag)
	}
	if in2.Offset != 7 {
		t.Errorf("tbl offset %d", in2.Offset)
	}
	in3 := isa.DecodeInstruction(s.Words[3])
	if in3.Offset != 3 {
		t.Errorf("equ value %d", in3.Offset)
	}
	if s.Words[5].Int64() != 7 || s.Words[6].Int64() != 9 {
		t.Error(".word values wrong")
	}
}

func TestOperandForms(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
        lda     pr3|7
        lda     *pr3|7
        lda     *loc
        sta     pr6|2
        eap5    pr0|1
        spr6    pr5|0
        stic    pr6|0,+1
        lix2    4
        svc     9
        als     2
        lia     -1
loc:    .word   0
`)
	s := prog.Segment("s")
	tests := []struct {
		i    int
		want isa.Instruction
	}{
		{0, isa.Instruction{Op: isa.LDA, PRRel: true, PR: 3, Offset: 7}},
		{1, isa.Instruction{Op: isa.LDA, Ind: true, PRRel: true, PR: 3, Offset: 7}},
		{2, isa.Instruction{Op: isa.LDA, Ind: true, Offset: 11}},
		{3, isa.Instruction{Op: isa.STA, PRRel: true, PR: 6, Offset: 2}},
		{4, isa.Instruction{Op: isa.EAP, PRRel: true, PR: 0, Tag: 5, Offset: 1}},
		{5, isa.Instruction{Op: isa.SPR, PRRel: true, PR: 5, Tag: 6, Offset: 0}},
		{6, isa.Instruction{Op: isa.STIC, PRRel: true, PR: 6, Tag: 1, Offset: 0}},
		{7, isa.Instruction{Op: isa.LIX, Tag: 2, Offset: 4}},
		{8, isa.Instruction{Op: isa.SVC, Offset: 9}},
		{9, isa.Instruction{Op: isa.ALS, Offset: 2}},
		{10, isa.Instruction{Op: isa.LIA, Offset: 0o777777}},
	}
	for _, tc := range tests {
		got := isa.DecodeInstruction(s.Words[tc.i])
		if got != tc.want {
			t.Errorf("word %d: got %+v want %+v", tc.i, got, tc.want)
		}
	}
}

func TestGatesBuildTransferVector(t *testing.T) {
	prog := MustAssemble(`
        .seg    svc
        .bracket 1,1,5
        .gate   alpha
        .gate   beta
alpha:  lia     1
        hlt
beta:   lia     2
        hlt
`)
	s := prog.Segment("svc")
	if s.GateCount != 2 {
		t.Fatalf("gates: %d", s.GateCount)
	}
	// Vector: word 0 -> tra alpha (word 2), word 1 -> tra beta (word 4).
	v0 := isa.DecodeInstruction(s.Words[0])
	v1 := isa.DecodeInstruction(s.Words[1])
	if v0.Op != isa.TRA || v0.Offset != 2 {
		t.Errorf("gate 0: %+v", v0)
	}
	if v1.Op != isa.TRA || v1.Offset != 4 {
		t.Errorf("gate 1: %+v", v1)
	}
	if s.Exports["alpha"] != 0 || s.Exports["beta"] != 1 {
		t.Errorf("exports: %v", s.Exports)
	}
}

func TestExternalLinks(t *testing.T) {
	prog := MustAssemble(`
        .seg    a
        call    b$go
        call    b$go        ; deduplicated
        lda     b$value
        hlt

        .seg    b
        .gate   go
go:     hlt
        .entry  value
value:  .word   33
`)
	a := prog.Segment("a")
	// 4 body words + 2 links (b$go and b$value).
	if len(a.Words) != 6 {
		t.Fatalf("a words: %d", len(a.Words))
	}
	c0 := isa.DecodeInstruction(a.Words[0])
	c1 := isa.DecodeInstruction(a.Words[1])
	if !c0.Ind || c0.Offset != 4 || c1.Offset != 4 {
		t.Errorf("calls not through shared link: %+v %+v", c0, c1)
	}
	l := isa.DecodeInstruction(a.Words[2])
	if !l.Ind || l.Offset != 5 {
		t.Errorf("lda link: %+v", l)
	}
	if len(a.Relocs) != 2 {
		t.Errorf("relocs: %+v", a.Relocs)
	}
}

func TestItsDirective(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
ptr:    .its    4, target
ptr2:   .its    0, other$thing, *
target: .word   5

        .seg    other
        .entry  thing
thing:  .word   9
`)
	s := prog.Segment("s")
	ind := isa.DecodeIndirect(s.Words[0])
	if ind.Ring != 4 || ind.Wordno != 2 || ind.Further {
		t.Errorf("its local: %+v", ind)
	}
	ind2 := isa.DecodeIndirect(s.Words[1])
	if !ind2.Further || ind2.Ring != 0 {
		t.Errorf("its external: %+v", ind2)
	}
	if len(s.Relocs) != 2 {
		t.Errorf("relocs: %+v", s.Relocs)
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no seg", "nop\n", "before any .seg"},
		{"dup seg", ".seg a\n.seg a\n", "duplicate segment"},
		{"dup label", ".seg a\nx: nop\nx: nop\n", "duplicate label"},
		{"bad mnemonic", ".seg a\nfrob 1\n", "unknown mnemonic"},
		{"bad bracket", ".seg a\n.bracket 5,2,1\n", "brackets"},
		{"bad access", ".seg a\n.access rq\n", "unknown flag"},
		{"undefined sym", ".seg a\nlda nowhere\n", "undefined symbol"},
		{"gate without label", ".seg a\n.gate nosuch\nnop\n", "no such label"},
		{"hlt operand", ".seg a\nhlt 3\n", "takes no operand"},
		{"missing operand", ".seg a\nlda\n", "needs an operand"},
		{"missing immediate", ".seg a\nlia\n", "needs a value"},
		{"bad ring its", ".seg a\n.its 9, x\nx: nop\n", "bad ring"},
		{"empty", "", "no segments"},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantSub)
		}
	}
}

func TestNumbers(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
        lia     0o777
        lia     255
        hlt
`)
	s := prog.Segment("s")
	if got := isa.DecodeInstruction(s.Words[0]).Offset; got != 0o777 {
		t.Errorf("octal: %o", got)
	}
	if got := isa.DecodeInstruction(s.Words[1]).Offset; got != 255 {
		t.Errorf("decimal: %d", got)
	}
}

// ---- end-to-end: assemble, link, run ----

func TestEndToEndSameRing(t *testing.T) {
	prog := MustAssemble(`
        .seg    main
        lia     5
        sta     scratch
        lda     scratch
        aia     2
        hlt
scratch: .word  0
`)
	// main needs write access to itself for the scratch word.
	prog.Segment("main").Write = true
	img, err := BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if img.CPU.A.Int64() != 7 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
}

// TestEndToEndCrossRing assembles the paper's full calling convention —
// caller in ring 4, gated service in ring 1, frame management, return
// through the restored stack pointer — and runs it without any
// supervisor involvement.
func TestEndToEndCrossRing(t *testing.T) {
	prog := MustAssemble(`
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1        ; save return point in caller frame
        call    service$serve   ; downward call through the gate
        hlt                     ; A holds the service result

        .seg    service
        .bracket 1,1,5
        .gate   serve
serve:  eap5    pr0|1           ; frame pointer = ring-1 stack base + 1
        spr6    pr5|0           ; save caller stack pointer in frame
        lia     1234            ; the service's work
        eap6    *pr5|0          ; restore caller stack pointer (with ring)
        return  *pr6|0          ; return through caller's return point
`)
	img, err := BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(200); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	if c.A.Int64() != 1234 {
		t.Errorf("A = %d", c.A.Int64())
	}
	if c.IPR.Ring != 4 {
		t.Errorf("final ring %d", c.IPR.Ring)
	}
	if c.SavedDepth() != 0 {
		t.Error("trap save stack not empty: something trapped")
	}
}

// TestEndToEndArguments passes an argument list across a downward call
// per the paper's convention (PRa = PR1 points at indirect words) and
// has the service read and write an argument with automatic validation.
func TestEndToEndArguments(t *testing.T) {
	prog := MustAssemble(`
        .seg    main
        .bracket 4,4,4
        .access rwe
        eap1    arglist         ; PRa := argument list (ring 4 via IPR)
        stic    pr6|0,+1
        call    adder$add2      ; service adds arg0+arg1, stores in arg2
        lda     result
        hlt
arglist: .its   4, x
        .its    4, y
        .its    4, result
x:      .word   30
y:      .word   12
result: .word   0

        .seg    adder
        .bracket 1,1,5
        .gate   add2
add2:   eap5    pr0|1
        spr6    pr5|0
        lda     *pr1|0          ; read arg 0 (validated in ring 4)
        ada     *pr1|1          ; add arg 1
        sta     *pr1|2          ; store into arg 2
        eap6    *pr5|0
        return  *pr6|0
`)
	img, err := BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(200); err != nil {
		t.Fatal(err)
	}
	if img.CPU.A.Int64() != 42 {
		t.Errorf("A = %d, want 42", img.CPU.A.Int64())
	}
}

// TestEndToEndArgumentValidation: the caller (ring 4) passes a pointer
// into supervisor data; the ring-1 service dereferences it and must be
// stopped by the automatic effective-ring validation even though ring 1
// itself could read the segment.
func TestEndToEndArgumentValidation(t *testing.T) {
	prog := MustAssemble(`
        .seg    main
        .bracket 4,4,4
        .access rwe
        eap1    arglist
        stic    pr6|0,+1
        call    leaky$echo
        hlt
arglist: .its   4, secrets$base

        .seg    leaky
        .bracket 1,1,5
        .gate   echo
echo:   lda     *pr1|0          ; validated in ring 4 -> violation
        return  *pr6|0
`)
	img, err := BuildImage(image.Config{}, prog,
		image.SegmentDef{
			Name: "secrets", Size: 8,
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 1, R2: 1, R3: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	_, err = img.CPU.Run(200)
	if err == nil {
		t.Fatal("leak not caught")
	}
	if !strings.Contains(err.Error(), "read bracket") {
		t.Errorf("unexpected error: %v", err)
	}
	// The violation was raised with the caller's effective ring.
	if img.CPU.TPR.Ring != 4 {
		t.Errorf("effective ring %d, want 4", img.CPU.TPR.Ring)
	}
}

func TestBuildImageUndefinedExternal(t *testing.T) {
	prog := MustAssemble(`
        .seg    a
        call    ghost$fn
        hlt
`)
	if _, err := BuildImage(image.Config{}, prog); err == nil {
		t.Fatal("undefined segment not caught at link time")
	}
}

func TestLinkPatchesItsWords(t *testing.T) {
	prog := MustAssemble(`
        .seg    a
p:      .its    4, q
q:      .word   1

        .seg    b
r:      .its    2, a$base
`)
	img, err := BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	aSeg, _ := img.Segno("a")
	w, _ := img.ReadWord("a", 0)
	ind := isa.DecodeIndirect(w)
	if ind.Segno != aSeg || ind.Wordno != 1 {
		t.Errorf("local its: %+v", ind)
	}
	w, _ = img.ReadWord("b", 0)
	ind = isa.DecodeIndirect(w)
	if ind.Segno != aSeg || ind.Wordno != 0 || ind.Ring != 2 {
		t.Errorf("external its: %+v", ind)
	}
}

func TestEntryUndefinedLabel(t *testing.T) {
	_, err := Assemble(".seg a\n.entry ghost\nnop\n")
	if err == nil || !strings.Contains(err.Error(), "no such label") {
		t.Errorf("err = %v", err)
	}
}

// TestArgumentChainDownwardCalls reproduces the paper's footnote: "The
// RING field of an argument list indirect word will specify the ring
// which originally provided the argument", so validation is correct
// when an argument is passed along a chain of downward calls. Ring 5
// builds the argument list; ring 3 passes it through to ring 1; ring 1
// dereferences it and is validated as ring 5 — reading what ring 5 may
// read, denied what ring 5 may not, even though ring 3 (the middleman)
// could have read it.
func TestArgumentChainDownwardCalls(t *testing.T) {
	const chain = `
        .seg    top
        .bracket 5,5,5
        .access rwe
        eap1    args
        stic    pr6|0,+1
        call    middle$m
        hlt
args:   .its    5, ok5$base
        .its    5, only3$base

        .seg    middle
        .bracket 3,3,5
        .gate   m
m:      eap5    *pr0|0
        spr6    pr5|1
        spr0    pr5|2
        eap4    pr5|4
        spr4    pr0|0
        eap6    pr5|0
        stic    pr6|0,+1
        call    bottom$b        ; PR1 (the argument list) passes through
        eap4    *pr6|2
        spr6    pr4|0
        eap6    *pr6|1
        return  *pr6|0

        .seg    bottom
        .bracket 1,1,5
        .gate   b
b:      eap5    *pr0|0
        spr6    pr5|0
        lda     ARGSLOT         ; placeholder word; patched to *pr1|k below
        eap6    *pr5|0
        return  *pr6|0
        .equ    ARGSLOT, 0
`
	build := func(argIndex uint32) *image.Image {
		t.Helper()
		prog := MustAssemble(chain)
		img, err := BuildImage(image.Config{}, prog,
			image.SegmentDef{
				Name: "ok5", Words: []word.Word{word.FromInt(77)},
				Read: true, Brackets: core.Brackets{R1: 1, R2: 5, R3: 5},
			},
			image.SegmentDef{
				Name: "only3", Words: []word.Word{word.FromInt(88)},
				Read: true, Brackets: core.Brackets{R1: 1, R2: 3, R3: 3},
			})
		if err != nil {
			t.Fatal(err)
		}
		// Patch bottom's load to `lda *pr1|argIndex`.
		ldaOff := prog.Segment("bottom").Symbols["b"] // vector is word 0; b is word 1
		ldaOff += 2                                   // eap5, spr6, then the lda
		ins := isa.Instruction{Op: isa.LDA, Ind: true, PRRel: true, PR: 1, Offset: argIndex}
		if err := img.WriteWord("bottom", ldaOff, ins.Encode()); err != nil {
			t.Fatal(err)
		}
		if err := img.Start(5, "top", 0); err != nil {
			t.Fatal(err)
		}
		return img
	}

	// Argument 0: readable by the originating ring 5 — the chain works.
	img := build(0)
	if _, err := img.CPU.Run(1000); err != nil {
		t.Fatalf("arg readable by ring 5: %v", err)
	}
	if img.CPU.A.Int64() != 77 {
		t.Errorf("A = %d, want 77", img.CPU.A.Int64())
	}
	if img.CPU.IPR.Ring != 5 {
		t.Errorf("final ring %d", img.CPU.IPR.Ring)
	}

	// Argument 1: readable by ring 3 (the middleman) but NOT by ring 5
	// (the originator) — ring 1's dereference must be denied in ring 5.
	img = build(1)
	_, err := img.CPU.Run(1000)
	if err == nil {
		t.Fatal("origin-ring validation did not happen")
	}
	if !strings.Contains(err.Error(), "read bracket") {
		t.Errorf("unexpected error: %v", err)
	}
	if img.CPU.TPR.Ring != 5 {
		t.Errorf("validated in ring %d, want 5 (the originating ring)", img.CPU.TPR.Ring)
	}
}

func TestStringDirective(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
msg:    .string "Hi; there\n"   ; trailing comment survives
        .word   7
`)
	seg := prog.Segment("s")
	packed := word.PackChars("Hi; there\n")
	if len(seg.Words) != len(packed)+1 {
		t.Fatalf("words: %d, want %d", len(seg.Words), len(packed)+1)
	}
	for i, w := range packed {
		if seg.Words[i] != w {
			t.Errorf("word %d = %v, want %v", i, seg.Words[i], w)
		}
	}
	if seg.Words[len(packed)].Int64() != 7 {
		t.Error("following .word misplaced")
	}
	if got := word.UnpackChars(seg.Words[:len(packed)]); got != "Hi; there\n" {
		t.Errorf("unpacked %q", got)
	}
}

func TestStringEscapes(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
        .string "a\tb\\c\"d"
`)
	got := word.UnpackChars(prog.Segment("s").Words)
	if got != "a\tb\\c\"d" {
		t.Errorf("got %q", got)
	}
}

func TestStringErrors(t *testing.T) {
	for _, src := range []string{
		".seg a\n.string unquoted\n",
		".seg a\n.string \"dangling\\\"\n",
		".seg a\n.string \"bad \\q escape\"\n",
	} {
		if _, err := Assemble(src); err == nil {
			t.Errorf("accepted: %q", src)
		}
	}
}

func TestLinkDeferredSelfRelocsSnapImmediately(t *testing.T) {
	prog := MustAssemble(`
        .seg    a
p:      .its    4, q            ; self-reloc: snapped at load
        call    b$go            ; external: deferred
q:      .word   1
        hlt

        .seg    b
        .bracket 1,1,5
        .gate   go
go:     hlt
`)
	img, err := image.Build(image.Config{}, []image.SegmentDef{
		{Name: "a", Words: prog.Segment("a").Words, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 4}},
		{Name: "b", Words: prog.Segment("b").Words, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 1, R3: 5}, Gates: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	const fault = 200
	table, err := LinkDeferred(img, prog, fault)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 1 || table[0].TargetSeg != "b" || table[0].TargetSym != "go" {
		t.Fatalf("table: %+v", table)
	}
	aSeg, _ := img.Segno("a")
	// The self-reloc is snapped.
	w, _ := img.ReadWord("a", 0)
	if got := isa.DecodeIndirect(w); got.Segno != aSeg || got.Wordno != 2 {
		t.Errorf("self reloc: %+v", got)
	}
	// The external link points at the fault segment with id 0.
	linkOff := table[0].Wordno
	w, _ = img.ReadWord("a", linkOff)
	if got := isa.DecodeIndirect(w); got.Segno != fault || got.Wordno != 0 {
		t.Errorf("deferred link: %+v", got)
	}
	// ResolveDeferred computes the real target.
	segno, wordno, err := ResolveDeferred(img, prog, table[0])
	if err != nil {
		t.Fatal(err)
	}
	bSeg, _ := img.Segno("b")
	if segno != bSeg || wordno != 0 {
		t.Errorf("resolved to (%o|%o)", segno, wordno)
	}
	// Resolution of a missing target errors.
	if _, _, err := ResolveDeferred(img, prog, DeferredLink{TargetSeg: "ghost"}); err == nil {
		t.Error("ghost target resolved")
	}
}
