package asm_test

import (
	"fmt"
	"log"

	"repro/internal/asm"
)

// Assembling a gated service shows the transfer vector: gate word 0 is
// a TRA to the real entry, and the exported gate name resolves to the
// vector slot.
func ExampleAssemble() {
	prog, err := asm.Assemble(`
        .seg    svc
        .bracket 1,1,5
        .gate   serve
serve:  lia     7
        hlt
`)
	if err != nil {
		log.Fatal(err)
	}
	s := prog.Segment("svc")
	fmt.Println("gates:", s.GateCount)
	fmt.Println("serve exported at word:", s.Exports["serve"])
	fmt.Println("words:", len(s.Words))
	// Output:
	// gates: 1
	// serve exported at word: 0
	// words: 3
}

// The listing renders every word with its offset, octal value, labels
// and disassembly.
func ExampleProgram_Listing() {
	prog := asm.MustAssemble(`
        .seg    tiny
        lia     5
        hlt
`)
	fmt.Print(prog.Listing())
	// Output:
	// segment tiny  r-e  brackets 4,4,4  gates 0
	//   000000  020000000005               lia 5
	//   000001  002000000000               hlt 0
	//
}
