package asm

import (
	"fmt"

	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/word"
)

// BuildImage assembles the program's segments into a machine image and
// resolves every inter-segment reference (link words and .its words).
// Extra non-assembled segments (pure data, ACL-derived, etc.) may be
// appended; assembled code may refer to their word 0 by `name$base`.
func BuildImage(cfg image.Config, prog *Program, extra ...image.SegmentDef) (*image.Image, error) {
	var defs []image.SegmentDef
	for _, s := range prog.Segments {
		defs = append(defs, image.SegmentDef{
			Name:     s.Name,
			Words:    s.Words,
			Read:     s.Read,
			Write:    s.Write,
			Execute:  s.Execute,
			Brackets: s.Brackets,
			Gates:    s.GateCount,
		})
	}
	defs = append(defs, extra...)
	img, err := image.Build(cfg, defs)
	if err != nil {
		return nil, err
	}
	if err := Link(img, prog); err != nil {
		return nil, err
	}
	return img, nil
}

// Space is an address space the linker can patch: anything that maps
// segment names to numbers and allows console-privilege word access.
// image.Image implements it; so does the multi-process system in
// internal/proc.
type Space interface {
	Segno(name string) (uint32, error)
	ReadWord(name string, wordno uint32) (word.Word, error)
	WriteWord(name string, wordno uint32, w word.Word) error
}

// Link patches every relocation in prog against the segment numbers
// assigned in space. Assembled segments must already be present.
func Link(space Space, prog *Program) error {
	for _, s := range prog.Segments {
		segno, err := space.Segno(s.Name)
		if err != nil {
			return fmt.Errorf("asm: link: %w", err)
		}
		for _, r := range s.Relocs {
			raw, err := space.ReadWord(s.Name, r.Wordno)
			if err != nil {
				return fmt.Errorf("asm: link %s+%o: %w", s.Name, r.Wordno, err)
			}
			ind := isa.DecodeIndirect(raw)
			if r.TargetSeg == "" {
				ind.Segno = segno
			} else {
				tseg, err := space.Segno(r.TargetSeg)
				if err != nil {
					return fmt.Errorf("asm: link %s+%o: undefined segment %q",
						s.Name, r.Wordno, r.TargetSeg)
				}
				ind.Segno = tseg
				if r.TargetSym != "" {
					off, err := exportOffset(prog, r.TargetSeg, r.TargetSym)
					if err != nil {
						return fmt.Errorf("asm: link %s+%o: %w", s.Name, r.Wordno, err)
					}
					ind.Wordno = off
				}
			}
			if err := space.WriteWord(s.Name, r.Wordno, ind.Encode()); err != nil {
				return fmt.Errorf("asm: link %s+%o: %w", s.Name, r.Wordno, err)
			}
		}
	}
	return nil
}

// exportOffset resolves seg$sym. The pseudo-symbol "base" names word 0
// of any segment, assembled or not.
func exportOffset(prog *Program, segName, sym string) (uint32, error) {
	if sym == "base" {
		return 0, nil
	}
	s := prog.Segment(segName)
	if s == nil {
		return 0, fmt.Errorf("segment %q is not assembled and %q is not \"base\"", segName, sym)
	}
	off, ok := s.Exports[sym]
	if !ok {
		return 0, fmt.Errorf("segment %q does not export %q", segName, sym)
	}
	return off, nil
}

// DeferredLink describes one unsnapped link word: where it lives and
// what it must eventually point at.
type DeferredLink struct {
	OwnerSeg  string // segment containing the link word
	Wordno    uint32 // link word's position in OwnerSeg
	TargetSeg string
	TargetSym string // "" means word 0 / already-encoded offset
}

// LinkDeferred resolves self-relocations normally but leaves every
// inter-segment link word UNSNAPPED: the word is rewritten to point
// into the (absent) fault segment, with its word number carrying the
// link's index in the returned table. The first reference through such
// a word raises a missing-segment fault that a linkage-fault handler
// (internal/sup RegisterLazyLinks) resolves by snapping the link — the
// dynamic linking discipline of Multics, reproduced on this machine's
// indirect words.
func LinkDeferred(space Space, prog *Program, faultSegno uint32) ([]DeferredLink, error) {
	var table []DeferredLink
	for _, s := range prog.Segments {
		segno, err := space.Segno(s.Name)
		if err != nil {
			return nil, fmt.Errorf("asm: deferred link: %w", err)
		}
		for _, r := range s.Relocs {
			raw, err := space.ReadWord(s.Name, r.Wordno)
			if err != nil {
				return nil, err
			}
			ind := isa.DecodeIndirect(raw)
			if r.TargetSeg == "" {
				// Self-relocation: snap now, as usual.
				ind.Segno = segno
				if err := space.WriteWord(s.Name, r.Wordno, ind.Encode()); err != nil {
					return nil, err
				}
				continue
			}
			id := uint32(len(table))
			table = append(table, DeferredLink{
				OwnerSeg:  s.Name,
				Wordno:    r.Wordno,
				TargetSeg: r.TargetSeg,
				TargetSym: r.TargetSym,
			})
			ind.Segno = faultSegno
			ind.Wordno = id
			if err := space.WriteWord(s.Name, r.Wordno, ind.Encode()); err != nil {
				return nil, err
			}
		}
	}
	return table, nil
}

// ResolveDeferred computes the final pointer a deferred link must hold.
func ResolveDeferred(space Space, prog *Program, d DeferredLink) (segno, wordno uint32, err error) {
	segno, err = space.Segno(d.TargetSeg)
	if err != nil {
		return 0, 0, err
	}
	if d.TargetSym == "" {
		return segno, 0, nil
	}
	wordno, err = exportOffset(prog, d.TargetSeg, d.TargetSym)
	return segno, wordno, err
}
