package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/word"
)

// Disassemble renders one word both as an instruction and, when its
// fields make sense as one, as an indirect word.
func Disassemble(w word.Word) string {
	ins := isa.DecodeInstruction(w)
	if _, ok := isa.Lookup(ins.Op); ok {
		return ins.String()
	}
	ind := isa.DecodeIndirect(w)
	return fmt.Sprintf(".its %d, (%o|%o)%s", ind.Ring, ind.Segno, ind.Wordno,
		map[bool]string{true: ", *", false: ""}[ind.Further])
}

// Listing renders the assembled program: per segment, the access
// attributes and every word with its offset, octal value, symbolic
// label and disassembly.
func (p *Program) Listing() string {
	var sb strings.Builder
	for _, s := range p.Segments {
		flag := func(b bool, c string) string {
			if b {
				return c
			}
			return "-"
		}
		fmt.Fprintf(&sb, "segment %s  %s%s%s  brackets %d,%d,%d  gates %d\n",
			s.Name,
			flag(s.Read, "r"), flag(s.Write, "w"), flag(s.Execute, "e"),
			s.Brackets.R1, s.Brackets.R2, s.Brackets.R3, s.GateCount)

		// Invert the symbol table: offset -> labels.
		labels := map[uint32][]string{}
		for name, off := range s.Symbols {
			labels[off] = append(labels[off], name)
		}
		for off := range labels {
			sort.Strings(labels[off])
		}
		relocAt := map[uint32]Reloc{}
		for _, r := range s.Relocs {
			relocAt[r.Wordno] = r
		}

		for i, w := range s.Words {
			off := uint32(i)
			label := ""
			if ls, ok := labels[off]; ok {
				label = strings.Join(ls, ",") + ":"
			}
			note := ""
			if r, ok := relocAt[off]; ok {
				target := r.TargetSeg
				if target == "" {
					target = s.Name
				}
				if r.TargetSym != "" {
					target += "$" + r.TargetSym
				}
				note = "  ; -> " + target
			}
			if off < s.GateCount {
				note += "  ; gate"
			}
			fmt.Fprintf(&sb, "  %06o  %012o  %-12s %s%s\n",
				off, w.Uint64(), label, Disassemble(w), note)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
