package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/word"
)

func TestDisassembleInstruction(t *testing.T) {
	w := isa.Instruction{Op: isa.LDA, PRRel: true, PR: 3, Offset: 7}.Encode()
	s := Disassemble(w)
	if !strings.Contains(s, "lda") || !strings.Contains(s, "pr3|") {
		t.Errorf("disassembly: %q", s)
	}
}

func TestDisassembleUnknownAsIndirect(t *testing.T) {
	w := isa.Indirect{Ring: 4, Segno: 0o12, Wordno: 0o34, Further: true}.Encode()
	// The indirect encoding decodes to an undefined opcode, so the
	// fallback rendering applies.
	s := Disassemble(w)
	if !strings.Contains(s, ".its 4") || !strings.Contains(s, "(12|34)") || !strings.Contains(s, "*") {
		t.Errorf("disassembly: %q", s)
	}
}

func TestListingContent(t *testing.T) {
	prog := MustAssemble(`
        .seg    svc
        .bracket 1,1,5
        .gate   go
go:     lia     3
        call    other$fn
        hlt
val:    .word   42

        .seg    other
        .gate   fn
fn:     hlt
`)
	lst := prog.Listing()
	for _, want := range []string{
		"segment svc", "brackets 1,1,5", "gates 1",
		"go:", "val:", "lia", "; gate", "; -> other$fn",
		"segment other",
	} {
		if !strings.Contains(lst, want) {
			t.Errorf("listing missing %q:\n%s", want, lst)
		}
	}
}

func TestListingRoundTripsWordValues(t *testing.T) {
	prog := MustAssemble(`
        .seg    s
        lia     5
        hlt
`)
	lst := prog.Listing()
	w := word.Word(isa.Instruction{Op: isa.LIA, Offset: 5}.Encode())
	if !strings.Contains(lst, w.String()) {
		t.Errorf("octal value %s missing from listing:\n%s", w, lst)
	}
}
