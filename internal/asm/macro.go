package asm

import (
	"fmt"
	"strings"
)

// Macro facility. Definitions:
//
//	.macro name [param[,param...]]
//	  ... body lines, which may reference \param and the unique
//	  expansion suffix \@ (for local labels) ...
//	.endm
//
// An invocation is a line whose mnemonic is the macro's name; its
// comma-separated operands bind the parameters textually. Macros may
// invoke other macros (expansion depth is bounded). Because binding is
// textual, an argument cannot itself contain a comma.
//
// StdMacros packages this codebase's calling convention (DESIGN.md,
// "Software calling convention") as macros: leafenter/leafexit for
// procedures that call nothing further, procenter/procexit for
// procedures that do, and callg for the save-return-point-and-call
// sequence.

// maxMacroDepth bounds nested expansion (a self-recursive macro would
// otherwise expand forever).
const maxMacroDepth = 8

type macroDef struct {
	name   string
	params []string
	body   []sourceLine
	line   int
}

// expandMacros collects .macro/.endm definitions and expands every
// invocation, returning the flat line stream.
func expandMacros(lines []sourceLine) ([]sourceLine, error) {
	defs := map[string]*macroDef{}
	var stripped []sourceLine
	var cur *macroDef
	for _, ln := range lines {
		switch {
		case ln.op == ".macro":
			if cur != nil {
				return nil, errf(ln.num, "nested .macro definition")
			}
			fields := strings.Fields(ln.rest)
			if len(fields) == 0 {
				return nil, errf(ln.num, ".macro needs a name")
			}
			name := strings.ToLower(fields[0])
			if _, dup := defs[name]; dup {
				return nil, errf(ln.num, "duplicate macro %q", name)
			}
			params := splitArgs(strings.Join(fields[1:], " "))
			cur = &macroDef{name: name, params: params, line: ln.num}
		case ln.op == ".endm":
			if cur == nil {
				return nil, errf(ln.num, ".endm without .macro")
			}
			defs[cur.name] = cur
			cur = nil
		case cur != nil:
			cur.body = append(cur.body, ln)
		default:
			stripped = append(stripped, ln)
		}
	}
	if cur != nil {
		return nil, errf(cur.line, "unterminated .macro %q", cur.name)
	}
	if len(defs) == 0 {
		return stripped, nil
	}

	counter := 0
	var expand func(lines []sourceLine, depth int) ([]sourceLine, error)
	expand = func(lines []sourceLine, depth int) ([]sourceLine, error) {
		var out []sourceLine
		for _, ln := range lines {
			m, ok := defs[ln.op]
			if !ok {
				out = append(out, ln)
				continue
			}
			if depth >= maxMacroDepth {
				return nil, errf(ln.num, "macro expansion deeper than %d (recursive macro %q?)",
					maxMacroDepth, m.name)
			}
			args := splitArgs(ln.rest)
			if len(args) != len(m.params) {
				return nil, errf(ln.num, "macro %q takes %d argument(s), got %d",
					m.name, len(m.params), len(args))
			}
			counter++
			suffix := fmt.Sprintf("_m%d", counter)
			sub := func(s string) string {
				for i, p := range m.params {
					s = strings.ReplaceAll(s, `\`+p, args[i])
				}
				return strings.ReplaceAll(s, `\@`, suffix)
			}
			var body []sourceLine
			for _, bl := range m.body {
				nl := sourceLine{
					num:   ln.num, // report errors at the invocation
					label: sub(bl.label),
					op:    strings.ToLower(sub(bl.op)),
					rest:  sub(bl.rest),
				}
				body = append(body, nl)
			}
			// The invocation's own label, if any, attaches to the first
			// expanded line.
			if ln.label != "" {
				if len(body) == 0 {
					body = []sourceLine{{num: ln.num, label: ln.label}}
				} else if body[0].label == "" {
					body[0].label = ln.label
				} else {
					return nil, errf(ln.num, "macro %q starts with a label; invocation label %q has nowhere to go",
						m.name, ln.label)
				}
			}
			expanded, err := expand(body, depth+1)
			if err != nil {
				return nil, err
			}
			out = append(out, expanded...)
		}
		return out, nil
	}
	return expand(stripped, 0)
}

// StdMacros is the calling convention as macros. Prepend it (or
// GateSource+StdMacros) to program source to use them.
const StdMacros = `
        .macro  leafenter
        eap5    *pr0|0
        spr6    pr5|0
        .endm

        .macro  leafexit
        eap6    *pr5|0
        return  *pr6|0
        .endm

        .macro  procenter
        eap5    *pr0|0
        spr6    pr5|1
        spr0    pr5|2
        eap4    pr5|4
        spr4    pr0|0
        eap6    pr5|0
        .endm

        .macro  procexit
        eap4    *pr6|2
        spr6    pr4|0
        eap6    *pr6|1
        return  *pr6|0
        .endm

        .macro  callg target
        stic    pr6|0,+1
        call    \target
        .endm
`
