package asm

import (
	"strings"
	"testing"

	"repro/internal/image"
	"repro/internal/isa"
)

func TestMacroBasicExpansion(t *testing.T) {
	prog := MustAssemble(`
        .macro  twice val
        lia     \val
        aia     \val
        .endm

        .seg    s
        twice   5
        hlt
`)
	ws := prog.Segment("s").Words
	if len(ws) != 3 {
		t.Fatalf("words: %d", len(ws))
	}
	if isa.DecodeInstruction(ws[0]).Op != isa.LIA || isa.DecodeInstruction(ws[1]).Op != isa.AIA {
		t.Errorf("expansion wrong: %v %v", ws[0], ws[1])
	}
	if isa.DecodeInstruction(ws[0]).Offset != 5 {
		t.Error("argument not substituted")
	}
}

func TestMacroLocalLabels(t *testing.T) {
	// A macro with an internal loop label expands twice without
	// colliding, thanks to the \@ suffix.
	prog := MustAssemble(`
        .macro  spin n
        lia     \n
loop\@: aia     -1
        tnz     loop\@
        .endm

        .seg    s
        spin    3
        spin    2
        hlt
`)
	if got := len(prog.Segment("s").Words); got != 7 {
		t.Fatalf("words: %d", got)
	}
}

func TestMacroInvocationLabel(t *testing.T) {
	prog := MustAssemble(`
        .macro  nothing
        nop
        .endm

        .seg    s
here:   nothing
        tra     here
`)
	s := prog.Segment("s")
	if s.Symbols["here"] != 0 {
		t.Errorf("here at %d", s.Symbols["here"])
	}
}

func TestMacroNested(t *testing.T) {
	prog := MustAssemble(`
        .macro  inner
        nop
        .endm
        .macro  outer
        inner
        inner
        .endm

        .seg    s
        outer
        hlt
`)
	if got := len(prog.Segment("s").Words); got != 3 {
		t.Fatalf("words: %d", got)
	}
}

func TestMacroErrors(t *testing.T) {
	cases := []struct{ name, src, sub string }{
		{"unterminated", ".macro m\nnop\n", "unterminated"},
		{"endm alone", ".seg s\n.endm\n", ".endm without"},
		{"nested def", ".macro a\n.macro b\n.endm\n.endm\n", "nested .macro"},
		{"dup", ".macro a\n.endm\n.macro a\n.endm\n.seg s\nnop\n", "duplicate macro"},
		{"argc", ".macro m x\nlia \\x\n.endm\n.seg s\nm\n", "takes 1 argument"},
		{"recursive", ".macro m\nm\n.endm\n.seg s\nm\n", "deeper than"},
		{"nameless", ".macro\n.endm\n", ".macro needs a name"},
	}
	for _, tc := range cases {
		if _, err := Assemble(tc.src); err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%s: err = %v", tc.name, err)
		}
	}
}

// TestStdMacrosConvention: a leaf service written with the standard
// macros behaves exactly like the hand-written veneer.
func TestStdMacrosConvention(t *testing.T) {
	prog := MustAssemble(StdMacros + `
        .seg    main
        .bracket 4,4,4
        callg   svc$entry
        hlt

        .seg    svc
        .bracket 1,1,5
        .gate   entry
entry:  leafenter
        lia     77
        leafexit
`)
	img, err := BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(200); err != nil {
		t.Fatal(err)
	}
	if img.CPU.A.Int64() != 77 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
	if img.CPU.IPR.Ring != 4 {
		t.Errorf("final ring %d", img.CPU.IPR.Ring)
	}
}

// TestStdMacrosNestedProc: procenter/procexit carry a further call
// safely (the full frame protocol, as macros).
func TestStdMacrosNestedProc(t *testing.T) {
	prog := MustAssemble(StdMacros + `
        .seg    main
        .bracket 5,5,5
        callg   mid$step
        hlt

        .seg    mid
        .bracket 3,3,7
        .gate   step
step:   procenter
        callg   leaf$add
        procexit

        .seg    leaf
        .bracket 1,1,7
        .gate   add
add:    leafenter
        aia     40
        leafexit
`)
	img, err := BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(5, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.A = 2
	if _, err := img.CPU.Run(500); err != nil {
		t.Fatal(err)
	}
	if img.CPU.A.Int64() != 42 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
	if img.CPU.IPR.Ring != 5 {
		t.Errorf("final ring %d", img.CPU.IPR.Ring)
	}
}
