package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/word"
)

// passOne sizes every segment, collects labels, gates, entries, equs and
// link slots.
func passOne(lines []sourceLine) (*passState, error) {
	ps := &passState{segs: map[string]*buildSeg{}}
	for _, ln := range lines {
		if ln.op == ".seg" {
			name := strings.TrimSpace(ln.rest)
			if name == "" {
				return nil, errf(ln.num, ".seg needs a name")
			}
			if _, dup := ps.segs[name]; dup {
				return nil, errf(ln.num, "duplicate segment %q", name)
			}
			if ln.label != "" {
				return nil, errf(ln.num, "label on .seg line")
			}
			ps.segs[name] = newBuildSeg(name, ln.num)
			ps.order = append(ps.order, name)
			continue
		}
		b, err := ps.current(ln.num)
		if err != nil {
			return nil, err
		}
		if ln.label != "" {
			if _, dup := b.labels[ln.label]; dup {
				return nil, errf(ln.num, "duplicate label %q", ln.label)
			}
			if _, dup := b.equs[ln.label]; dup {
				return nil, errf(ln.num, "label %q collides with equ", ln.label)
			}
			b.labels[ln.label] = b.size
		}
		if ln.op == "" {
			continue
		}
		switch ln.op {
		case ".bracket":
			r, err := parseBrackets(ln)
			if err != nil {
				return nil, err
			}
			b.brackets = r
		case ".access":
			if err := parseAccess(b, ln); err != nil {
				return nil, err
			}
		case ".gate":
			name := strings.TrimSpace(ln.rest)
			if name == "" {
				return nil, errf(ln.num, ".gate needs a label")
			}
			b.gates = append(b.gates, name)
		case ".entry":
			name := strings.TrimSpace(ln.rest)
			if name == "" {
				return nil, errf(ln.num, ".entry needs a label")
			}
			b.entries = append(b.entries, name)
		case ".equ":
			parts := splitArgs(ln.rest)
			if len(parts) != 2 {
				return nil, errf(ln.num, ".equ needs name, value")
			}
			v, err := parseNumber(parts[1], b)
			if err != nil {
				return nil, errf(ln.num, ".equ value: %v", err)
			}
			b.equs[parts[0]] = v
		case ".word", ".its":
			b.size++
		case ".string":
			lit, err := parseStringLit(ln.rest)
			if err != nil {
				return nil, errf(ln.num, "%v", err)
			}
			b.size += uint32(len(word.PackChars(lit)))
		case ".bss":
			n, err := parseNumber(strings.TrimSpace(ln.rest), b)
			if err != nil || n < 0 {
				return nil, errf(ln.num, ".bss needs a non-negative count")
			}
			b.size += uint32(n)
		default:
			// Instruction: validate the mnemonic early and register
			// links for external references (link slots are stable
			// because the link area follows all code and data).
			if _, err := parseMnemonic(ln.op, ln.num); err != nil {
				return nil, err
			}
			if ext, ok := splitExternal(ln.rest); ok {
				b.addLink(linkKey{seg: ext.seg, sym: ext.sym, further: ext.further})
			}
			b.size++
		}
	}
	return ps, nil
}

// passTwo encodes every segment.
func passTwo(lines []sourceLine, ps *passState) error {
	var b *buildSeg
	for _, ln := range lines {
		if ln.op == ".seg" {
			if b != nil {
				if err := sealSegment(b); err != nil {
					return err
				}
			}
			b = ps.segs[strings.TrimSpace(ln.rest)]
			b.words = make([]word.Word, 0, b.vectorLen()+b.size+uint32(len(b.linkOrder)))
			// Gate transfer vector: gate i is `tra label`.
			for _, g := range b.gates {
				target, ok := b.resolveSym(g)
				if !ok {
					return errf(b.lineDefined, "gate %q: no such label in %q", g, b.name)
				}
				b.words = append(b.words, isa.Instruction{Op: isa.TRA, Offset: target}.Encode())
			}
			continue
		}
		if b == nil {
			return errf(ln.num, "statement before any .seg directive")
		}
		if ln.op == "" {
			continue
		}
		switch ln.op {
		case ".bracket", ".access", ".gate", ".entry", ".equ":
			// pass 1 handled these
		case ".word":
			v, err := evalExpr(strings.TrimSpace(ln.rest), b)
			if err != nil {
				return errf(ln.num, ".word: %v", err)
			}
			b.words = append(b.words, word.FromInt(v))
		case ".its":
			w, reloc, err := parseIts(ln, b, uint32(len(b.words)))
			if err != nil {
				return err
			}
			b.words = append(b.words, w)
			if reloc != nil {
				b.relocs = append(b.relocs, *reloc)
			}
		case ".string":
			lit, err := parseStringLit(ln.rest)
			if err != nil {
				return errf(ln.num, "%v", err)
			}
			b.words = append(b.words, word.PackChars(lit)...)
		case ".bss":
			n, _ := parseNumber(strings.TrimSpace(ln.rest), b)
			for i := int64(0); i < n; i++ {
				b.words = append(b.words, 0)
			}
		default:
			w, err := encodeInstruction(ln, b)
			if err != nil {
				return err
			}
			b.words = append(b.words, w)
		}
	}
	if b != nil {
		if err := sealSegment(b); err != nil {
			return err
		}
	}
	return nil
}

// sealSegment appends the link area and verifies layout arithmetic and
// export validity.
func sealSegment(b *buildSeg) error {
	if got, want := uint32(len(b.words)), b.linkBase(); got != want {
		return errf(b.lineDefined, "segment %q: emitted %d words, sized %d (assembler bug)",
			b.name, got, want)
	}
	for _, e := range b.entries {
		if _, ok := b.resolveSym(e); !ok {
			return errf(b.lineDefined, "segment %q: .entry %q has no such label", b.name, e)
		}
	}
	for _, k := range b.linkOrder {
		wordno := uint32(len(b.words))
		ind := isa.Indirect{Ring: 0, Further: k.further}
		b.words = append(b.words, ind.Encode())
		b.relocs = append(b.relocs, Reloc{
			Wordno:    wordno,
			TargetSeg: k.seg,
			TargetSym: k.sym,
		})
	}
	return nil
}

func parseBrackets(ln sourceLine) (core.Brackets, error) {
	parts := splitArgs(ln.rest)
	if len(parts) != 3 {
		return core.Brackets{}, errf(ln.num, ".bracket needs r1,r2,r3")
	}
	var rs [3]core.Ring
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v >= core.NumRings {
			return core.Brackets{}, errf(ln.num, ".bracket: bad ring %q", p)
		}
		rs[i] = core.Ring(v)
	}
	br := core.Brackets{R1: rs[0], R2: rs[1], R3: rs[2]}
	if err := br.Validate(); err != nil {
		return core.Brackets{}, errf(ln.num, "%v", err)
	}
	return br, nil
}

func parseAccess(b *buildSeg, ln sourceLine) error {
	b.read, b.write, b.execute = false, false, false
	for _, c := range strings.TrimSpace(ln.rest) {
		switch c {
		case 'r':
			b.read = true
		case 'w':
			b.write = true
		case 'e':
			b.execute = true
		default:
			return errf(ln.num, ".access: unknown flag %q", string(c))
		}
	}
	return nil
}

// splitArgs splits a comma-separated operand list, trimming spaces.
func splitArgs(s string) []string {
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	if len(parts) == 1 && parts[0] == "" {
		return nil
	}
	return parts
}

// parseNumber parses a literal or equ-defined number (no labels).
func parseNumber(s string, b *buildSeg) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty number")
	}
	if b != nil {
		if v, ok := b.equs[s]; ok {
			return v, nil
		}
	}
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	base := 10
	if strings.HasPrefix(s, "0o") {
		base = 8
		s = s[2:]
	}
	v, err := strconv.ParseInt(s, base, 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", s)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// evalExpr evaluates sym, number, sym+num or sym-num.
func evalExpr(s string, b *buildSeg) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("empty expression")
	}
	// Try plain number first (handles leading '-').
	if v, err := parseNumber(s, b); err == nil {
		return v, nil
	}
	// sym[+|-]num
	op := ' '
	idx := -1
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			op = rune(s[i])
			idx = i
			break
		}
	}
	sym, rest := s, ""
	if idx >= 0 {
		sym, rest = strings.TrimSpace(s[:idx]), strings.TrimSpace(s[idx+1:])
	}
	base, ok := b.resolveSym(sym)
	if !ok {
		return 0, fmt.Errorf("undefined symbol %q", sym)
	}
	v := int64(base)
	if idx >= 0 {
		n, err := parseNumber(rest, b)
		if err != nil {
			return 0, err
		}
		if op == '+' {
			v += n
		} else {
			v -= n
		}
	}
	return v, nil
}

// external is a parsed seg$sym operand.
type external struct {
	seg, sym string
	further  bool
}

// splitExternal recognizes [*]seg$sym operands (with no index suffix).
func splitExternal(rest string) (external, bool) {
	s := strings.TrimSpace(rest)
	further := false
	if strings.HasPrefix(s, "*") {
		further = true
		s = strings.TrimSpace(s[1:])
	}
	if strings.Contains(s, ",") || strings.Contains(s, "|") {
		return external{}, false
	}
	idx := strings.IndexByte(s, '$')
	if idx <= 0 || idx == len(s)-1 {
		return external{}, false
	}
	return external{seg: s[:idx], sym: s[idx+1:], further: further}, true
}

// parsedMnemonic carries the opcode plus any register-suffix tag.
type parsedMnemonic struct {
	op     isa.Opcode
	tag    uint8
	hasTag bool
}

// parseMnemonic resolves base and register-suffixed mnemonics.
func parseMnemonic(s string, line int) (parsedMnemonic, error) {
	if op, ok := isa.ByName(s); ok {
		return parsedMnemonic{op: op}, nil
	}
	if s == "ret" {
		return parsedMnemonic{op: isa.RET}, nil
	}
	// Register-suffixed forms: eapN sprN ldxN stxN lixN.
	if len(s) >= 4 {
		base, digit := s[:len(s)-1], s[len(s)-1]
		if digit >= '0' && digit <= '7' {
			switch base {
			case "eap", "spr", "ldx", "stx", "lix":
				op, _ := isa.ByName(base)
				return parsedMnemonic{op: op, tag: digit - '0', hasTag: true}, nil
			}
		}
	}
	return parsedMnemonic{}, errf(line, "unknown mnemonic %q", s)
}

// encodeInstruction assembles one instruction line.
func encodeInstruction(ln sourceLine, b *buildSeg) (word.Word, error) {
	mn, err := parseMnemonic(ln.op, ln.num)
	if err != nil {
		return 0, err
	}
	info, _ := isa.Lookup(mn.op)
	ins := isa.Instruction{Op: mn.op}
	if mn.hasTag {
		ins.Tag = mn.tag
	}
	rest := strings.TrimSpace(ln.rest)

	// Immediates, shifts and SVC take a bare signed value.
	if info.Class == isa.ClassNone {
		if mn.op == isa.NOP || mn.op == isa.HLT || mn.op == isa.RETT {
			if rest != "" {
				return 0, errf(ln.num, "%s takes no operand", ln.op)
			}
			return ins.Encode(), nil
		}
		if rest == "" {
			return 0, errf(ln.num, "%s needs a value", ln.op)
		}
		v, err := evalExpr(rest, b)
		if err != nil {
			return 0, errf(ln.num, "%v", err)
		}
		ins.Offset = uint32(v) & 0o777777
		return ins.Encode(), nil
	}

	if rest == "" {
		return 0, errf(ln.num, "%s needs an operand", ln.op)
	}

	// STIC ,+n displacement suffix.
	if mn.op == isa.STIC {
		if idx := strings.LastIndex(rest, ",+"); idx >= 0 {
			n, err := parseNumber(rest[idx+2:], b)
			if err != nil || n < 0 || n > 15 {
				return 0, errf(ln.num, "stic displacement must be 0-15")
			}
			ins.Tag = uint8(n)
			rest = strings.TrimSpace(rest[:idx])
		}
	}

	// External reference: indirect through a link word.
	if ext, ok := splitExternal(rest); ok {
		slot := b.addLink(linkKey{seg: ext.seg, sym: ext.sym, further: ext.further})
		ins.Ind = true
		ins.Offset = b.linkBase() + slot
		return ins.Encode(), nil
	}

	// Index suffix ,xN (not for register-suffixed or stic mnemonics).
	if idx := strings.LastIndex(rest, ",x"); idx >= 0 && !mn.hasTag && mn.op != isa.STIC {
		d := rest[idx+2:]
		if len(d) != 1 || d[0] < '0' || d[0] > '7' {
			return 0, errf(ln.num, "bad index register %q", d)
		}
		if !usesIndexTagAsm(mn.op) {
			return 0, errf(ln.num, "%s cannot be indexed", ln.op)
		}
		ins.Tag = d[0] - '0' + 1
		rest = strings.TrimSpace(rest[:idx])
	}

	// Indirection star.
	if strings.HasPrefix(rest, "*") {
		ins.Ind = true
		rest = strings.TrimSpace(rest[1:])
	}

	// PR-relative: prN|expr.
	if strings.HasPrefix(rest, "pr") && len(rest) >= 4 && rest[3] == '|' {
		if rest[2] < '0' || rest[2] > '7' {
			return 0, errf(ln.num, "bad pointer register in %q", rest)
		}
		ins.PRRel = true
		ins.PR = rest[2] - '0'
		rest = strings.TrimSpace(rest[4:])
	}

	v, err := evalExpr(rest, b)
	if err != nil {
		return 0, errf(ln.num, "%v", err)
	}
	ins.Offset = uint32(v) & 0o777777
	return ins.Encode(), nil
}

// usesIndexTagAsm mirrors the CPU's TAG interpretation.
func usesIndexTagAsm(op isa.Opcode) bool {
	switch op {
	case isa.EAP, isa.SPR, isa.STIC, isa.LDX, isa.STX, isa.LIX:
		return false
	}
	return true
}

// parseIts assembles an .its directive: `.its ring, target[, *]`.
func parseIts(ln sourceLine, b *buildSeg, pos uint32) (word.Word, *Reloc, error) {
	parts := splitArgs(ln.rest)
	if len(parts) < 2 || len(parts) > 3 {
		return 0, nil, errf(ln.num, ".its needs ring, target[, *]")
	}
	ringVal, err := strconv.Atoi(parts[0])
	if err != nil || ringVal < 0 || ringVal >= core.NumRings {
		return 0, nil, errf(ln.num, ".its: bad ring %q", parts[0])
	}
	further := false
	if len(parts) == 3 {
		if parts[2] != "*" {
			return 0, nil, errf(ln.num, ".its: third argument must be *")
		}
		further = true
	}
	target := parts[1]
	ind := isa.Indirect{Ring: core.Ring(ringVal), Further: further}
	if idx := strings.IndexByte(target, '$'); idx > 0 {
		// External: segno and wordno patched at link time.
		return ind.Encode(), &Reloc{
			Wordno:    pos,
			TargetSeg: target[:idx],
			TargetSym: target[idx+1:],
		}, nil
	}
	// Local: wordno known now, segno patched to self at link time.
	v, err := evalExpr(target, b)
	if err != nil {
		return 0, nil, errf(ln.num, ".its: %v", err)
	}
	ind.Wordno = uint32(v) & 0o777777
	return ind.Encode(), &Reloc{Wordno: pos}, nil
}

// parseStringLit parses a double-quoted string literal with \n, \t,
// \\ and \" escapes.
func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf(".string needs a double-quoted literal")
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf(".string: dangling escape")
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return "", fmt.Errorf(".string: unknown escape \\%c", body[i])
		}
	}
	return string(out), nil
}
