package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

// renderAsm renders an instruction in the assembler's own source syntax
// (decimal offsets; register-suffixed mnemonics).
func renderAsm(ins isa.Instruction) (string, bool) {
	info, ok := isa.Lookup(ins.Op)
	if !ok {
		return "", false
	}
	name := info.Name
	var operand string
	switch ins.Op {
	case isa.NOP, isa.HLT, isa.RETT:
		if ins.Ind || ins.PRRel || ins.Tag != 0 || ins.Offset != 0 {
			return "", false
		}
		return name, true
	case isa.LIA, isa.AIA, isa.LIQ, isa.ALS, isa.ARS, isa.SVC:
		if ins.Ind || ins.PRRel || ins.Tag != 0 {
			return "", false
		}
		return fmt.Sprintf("%s %d", name, ins.Offset), true
	case isa.LIX:
		if ins.Ind || ins.PRRel {
			return "", false
		}
		return fmt.Sprintf("lix%d %d", ins.Tag&7, ins.Offset), true
	case isa.EAP, isa.SPR:
		name = fmt.Sprintf("%s%d", name, ins.Tag&7)
	case isa.LDX, isa.STX:
		name = fmt.Sprintf("%s%d", name, ins.Tag&7)
	case isa.STIC:
		// rendered with the ,+n suffix below
	default:
		// Index tag rendered as ,xN below.
	}

	star := ""
	if ins.Ind {
		star = "*"
	}
	if ins.PRRel {
		operand = fmt.Sprintf("%spr%d|%d", star, ins.PR, ins.Offset)
	} else {
		operand = fmt.Sprintf("%s%d", star, ins.Offset)
	}
	suffix := ""
	switch {
	case ins.Op == isa.STIC:
		if ins.Tag > 15 {
			return "", false
		}
		suffix = fmt.Sprintf(",+%d", ins.Tag)
	case usesIndexTagAsm(ins.Op) && ins.Tag != 0:
		if ins.Tag > 8 {
			return "", false
		}
		suffix = fmt.Sprintf(",x%d", ins.Tag-1)
	}
	return fmt.Sprintf("%s %s%s", name, operand, suffix), true
}

// TestQuickRenderAssembleRoundTrip: for random valid instructions,
// rendering them in assembler syntax and reassembling reproduces the
// exact encoding.
func TestQuickRenderAssembleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ops := isa.Opcodes()
	tried, skipped := 0, 0
	for i := 0; i < 4000; i++ {
		ins := isa.Instruction{
			Op:     ops[rng.Intn(len(ops))],
			Ind:    rng.Intn(2) == 0,
			PRRel:  rng.Intn(2) == 0,
			PR:     uint8(rng.Intn(8)),
			Tag:    uint8(rng.Intn(9)),
			Offset: uint32(rng.Intn(1 << 17)), // keep positive for decimal rendering
		}
		// Normalize fields the encoding ignores for this op so the
		// comparison is meaningful.
		if !ins.PRRel {
			ins.PR = 0
		}
		switch ins.Op {
		case isa.EAP, isa.SPR, isa.LDX, isa.STX, isa.LIX:
			ins.Tag &= 7 // register selector: only the low 3 bits render
		}
		src, ok := renderAsm(ins)
		if !ok {
			skipped++
			continue
		}
		tried++
		prog, err := Assemble(".seg t\n" + src + "\n")
		if err != nil {
			t.Fatalf("%q (from %+v): %v", src, ins, err)
		}
		got := isa.DecodeInstruction(prog.Segment("t").Words[0])
		if got != ins {
			t.Fatalf("round trip %q: got %+v want %+v", src, got, ins)
		}
	}
	if tried < 1000 {
		t.Fatalf("only %d instructions tried (%d skipped): generator too narrow", tried, skipped)
	}
}

// TestListingCoversEveryOpcode: the listing renders every defined
// opcode by its mnemonic.
func TestListingCoversEveryOpcode(t *testing.T) {
	var src strings.Builder
	src.WriteString(".seg t\n.access rwe\n")
	count := 0
	for _, op := range isa.Opcodes() {
		info, _ := isa.Lookup(op)
		ins := isa.Instruction{Op: op, Offset: 1}
		switch op {
		case isa.NOP, isa.HLT, isa.RETT:
			ins.Offset = 0
		}
		fmt.Fprintf(&src, "  .word %d\n", ins.Encode().Int64())
		_ = info
		count++
	}
	prog := MustAssemble(src.String())
	lst := prog.Listing()
	for _, op := range isa.Opcodes() {
		info, _ := isa.Lookup(op)
		base := info.Name
		// Register-suffixed mnemonics render with their digit.
		switch op {
		case isa.EAP, isa.SPR, isa.LDX, isa.STX, isa.LIX:
			base += "0"
		}
		if !strings.Contains(lst, base) {
			t.Errorf("listing missing mnemonic %q", base)
		}
	}
}
