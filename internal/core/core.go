// Package core implements the paper's primary contribution: the ring
// protection logic of Schroeder and Saltzer's "A Hardware Architecture
// for Implementing Protection Rings" (SOSP 1971 / CACM 1972).
//
// Everything here is pure: the package has no machine state and no
// dependencies beyond the standard library. It defines rings, the
// per-segment access brackets carried in segment descriptor words, the
// effective-ring computation of Figure 5, the access validation
// predicates of Figures 4, 6 and 7, and the CALL/RETURN ring-transition
// decision procedures of Figures 8 and 9. The processor simulator in
// internal/cpu drives these functions from its instruction cycle; the
// experiment harness and the property tests drive them directly.
//
// # Rings and brackets
//
// A process has NumRings concentric rings of protection, numbered 0
// (most privileged) through NumRings-1 (least privileged). The access
// capabilities of ring m are a subset of those of ring n whenever m > n —
// the "nested subset property" on which every hardware shortcut in the
// paper rests.
//
// Each segment's descriptor word carries three 3-bit ring numbers
// R1 ≤ R2 ≤ R3 and three flags R, W, E. These define, for the process:
//
//	write bracket:   rings 0  .. R1   (if W set)
//	read bracket:    rings 0  .. R2   (if R set)
//	execute bracket: rings R1 .. R2   (if E set)
//	gate extension:  rings R2+1 .. R3
//
// The top of the read bracket deliberately coincides with the top of the
// execute bracket (both R2), and the bottom of the execute bracket
// deliberately coincides with the top of the write bracket (both R1);
// the paper argues these double uses remove an unwanted degree of
// freedom rather than any useful capability.
package core

import "fmt"

// NumRings is the number of protection rings per process. The paper:
// "In Multics, eight was chosen as the appropriate number of rings."
const NumRings = 8

// Ring is a ring number, 0 (most privileged) .. NumRings-1 (least).
type Ring uint8

// Valid reports whether r names an existing ring.
func (r Ring) Valid() bool { return r < NumRings }

func (r Ring) String() string { return fmt.Sprintf("ring %d", uint8(r)) }

// MaxRing returns the higher-numbered (less privileged) of a and b.
// The effective-ring calculation of Figure 5 is built from this.
func MaxRing(a, b Ring) Ring {
	if a > b {
		return a
	}
	return b
}

// Brackets is the triple of ring numbers in a segment descriptor word.
type Brackets struct {
	R1 Ring // top of write bracket; bottom of execute bracket
	R2 Ring // top of execute bracket; top of read bracket
	R3 Ring // top of gate extension
}

// Validate enforces the well-formedness rule the paper assigns to
// supervisor code constructing SDWs: R1 ≤ R2 ≤ R3, all valid rings.
func (b Brackets) Validate() error {
	if !b.R1.Valid() || !b.R2.Valid() || !b.R3.Valid() {
		return fmt.Errorf("core: bracket ring out of range: %d,%d,%d", b.R1, b.R2, b.R3)
	}
	if !(b.R1 <= b.R2 && b.R2 <= b.R3) {
		return fmt.Errorf("core: brackets violate R1 ≤ R2 ≤ R3: %d,%d,%d", b.R1, b.R2, b.R3)
	}
	return nil
}

// InWriteBracket reports whether ring r lies in the write bracket [0,R1].
func (b Brackets) InWriteBracket(r Ring) bool { return r <= b.R1 }

// InReadBracket reports whether ring r lies in the read bracket [0,R2].
func (b Brackets) InReadBracket(r Ring) bool { return r <= b.R2 }

// InExecuteBracket reports whether ring r lies in the execute bracket
// [R1,R2].
func (b Brackets) InExecuteBracket(r Ring) bool { return b.R1 <= r && r <= b.R2 }

// InGateExtension reports whether ring r lies in the gate extension
// (R2,R3].
func (b Brackets) InGateExtension(r Ring) bool { return b.R2 < r && r <= b.R3 }

// SDWView is the access-control content of a segment descriptor word:
// everything the validation logic needs to know about a segment. The
// memory-format encoding lives in internal/seg; core sees only this
// decoded view.
type SDWView struct {
	Present bool // segment exists in the virtual memory (directed fault otherwise)
	Read    bool // SDW.R
	Write   bool // SDW.W
	Execute bool // SDW.E
	Brackets
	GateCount uint32 // SDW.GATE: gate locations are words 0 .. GateCount-1
	Bound     uint32 // segment length in words; word numbers ≥ Bound fault
}

// Validate checks the invariants supervisor code must maintain when
// constructing an SDW.
func (v SDWView) Validate() error {
	if !v.Present {
		return nil
	}
	if err := v.Brackets.Validate(); err != nil {
		return err
	}
	if v.GateCount > v.Bound {
		return fmt.Errorf("core: gate count %d exceeds segment bound %d", v.GateCount, v.Bound)
	}
	return nil
}

// ViolationKind enumerates the access-violation conditions the hardware
// detects. Each corresponds to a trap exit in Figures 4-9.
type ViolationKind int

const (
	// ViolationNone is the zero value; no violation.
	ViolationNone ViolationKind = iota
	// ViolationMissingSegment: the SDW is not present (directed fault).
	ViolationMissingSegment
	// ViolationBound: word number at or beyond the segment bound.
	ViolationBound
	// ViolationNoRead: read attempted with SDW.R off.
	ViolationNoRead
	// ViolationReadBracket: read attempted from above the read bracket.
	ViolationReadBracket
	// ViolationNoWrite: write attempted with SDW.W off.
	ViolationNoWrite
	// ViolationWriteBracket: write attempted from above the write bracket.
	ViolationWriteBracket
	// ViolationNoExecute: instruction fetch or transfer with SDW.E off.
	ViolationNoExecute
	// ViolationExecuteBracket: execution attempted outside [R1,R2].
	ViolationExecuteBracket
	// ViolationNotAGate: CALL from the gate extension not directed at a
	// gate location, or CALL from within the execute bracket of another
	// segment not directed at a gate location (the paper's error-
	// detection choice).
	ViolationNotAGate
	// ViolationGateExtension: CALL from above the top of the gate
	// extension (R3).
	ViolationGateExtension
	// ViolationRingAlarm: a transfer or CALL whose effective ring
	// (TPR.RING) exceeds the ring of execution in a way that would
	// amount to an unintended upward transfer; the paper: "the decision
	// is made to generate an access violation when it occurs".
	ViolationRingAlarm
)

var violationNames = map[ViolationKind]string{
	ViolationNone:           "no violation",
	ViolationMissingSegment: "missing segment",
	ViolationBound:          "out of segment bounds",
	ViolationNoRead:         "read flag off",
	ViolationReadBracket:    "outside read bracket",
	ViolationNoWrite:        "write flag off",
	ViolationWriteBracket:   "outside write bracket",
	ViolationNoExecute:      "execute flag off",
	ViolationExecuteBracket: "outside execute bracket",
	ViolationNotAGate:       "transfer not directed at a gate location",
	ViolationGateExtension:  "calling ring above gate extension",
	ViolationRingAlarm:      "effective ring above ring of execution on transfer",
}

func (k ViolationKind) String() string {
	if s, ok := violationNames[k]; ok {
		return s
	}
	//ring:allow unknown-kind fallback: every architectural kind is interned above
	return fmt.Sprintf("violation(%d)", int(k))
}

// ViolationKindCount is the number of distinct ViolationKind values
// (ViolationNone through ViolationRingAlarm). Callers keeping per-kind
// counters or precomputed string tables size them with this.
const ViolationKindCount = int(ViolationRingAlarm) + 1

// Violation is a failed validation: what went wrong and the ring the
// reference was validated against.
type Violation struct {
	Kind ViolationKind
	Ring Ring // the effective ring of the failed reference
}

func (v *Violation) Error() string {
	return fmt.Sprintf("access violation: %s (validated in %s)", v.Kind, v.Ring)
}

// violate is a local shorthand for constructing a violation.
func violate(k ViolationKind, r Ring) *Violation { return &Violation{Kind: k, Ring: r} }

// ---- Value-form checks ----
//
// Each Check* predicate below has a *Check twin that returns the bare
// ViolationKind instead of a heap-allocated *Violation. The pointer
// forms are retained for callers that propagate violations as errors
// (the CPU trap path); the value forms are the every-reference fast
// path — the paper's point is precisely that the common-case check is
// branch-cheap, and a reference monitor answering millions of decisions
// must not allocate per denial. The pointer forms are thin wrappers, so
// the two can never disagree.

// BoundCheck is the value form of CheckBound: it validates presence and
// the word number against the segment bound, returning the violation
// kind (ViolationNone when the reference is in bounds).
func BoundCheck(v SDWView, wordno uint32) ViolationKind {
	if !v.Present {
		return ViolationMissingSegment
	}
	if wordno >= v.Bound {
		return ViolationBound
	}
	return ViolationNone
}

// FetchCheck is the value form of CheckFetch.
func FetchCheck(v SDWView, wordno uint32, ring Ring) ViolationKind {
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return k
	}
	if !v.Execute {
		return ViolationNoExecute
	}
	if !v.InExecuteBracket(ring) {
		return ViolationExecuteBracket
	}
	return ViolationNone
}

// ReadCheck is the value form of CheckRead.
func ReadCheck(v SDWView, wordno uint32, effRing Ring) ViolationKind {
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return k
	}
	if !v.Read {
		return ViolationNoRead
	}
	if !v.InReadBracket(effRing) {
		return ViolationReadBracket
	}
	return ViolationNone
}

// WriteCheck is the value form of CheckWrite.
func WriteCheck(v SDWView, wordno uint32, effRing Ring) ViolationKind {
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return k
	}
	if !v.Write {
		return ViolationNoWrite
	}
	if !v.InWriteBracket(effRing) {
		return ViolationWriteBracket
	}
	return ViolationNone
}

// CheckBound validates the word number against the segment bound. Every
// reference, of any kind, performs this check during address translation.
func CheckBound(v SDWView, wordno uint32, ring Ring) *Violation {
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return violate(k, ring)
	}
	return nil
}

// CheckFetch is the instruction-retrieval validation of Figure 4: the
// segment must be executable and the ring of execution must lie within
// the execute bracket. The ring here is IPR.RING, the current ring of
// execution — instruction fetch is never validated against an effective
// ring, because the instruction's own location was determined by a
// previously validated transfer.
func CheckFetch(v SDWView, wordno uint32, ring Ring) *Violation {
	if k := FetchCheck(v, wordno, ring); k != ViolationNone {
		return violate(k, ring)
	}
	return nil
}

// CheckRead is the operand-read validation of Figure 6, also applied to
// each indirect-word retrieval during effective address formation
// (Figure 5). effRing is TPR.RING, the effective ring at the time of the
// reference.
func CheckRead(v SDWView, wordno uint32, effRing Ring) *Violation {
	if k := ReadCheck(v, wordno, effRing); k != ViolationNone {
		return violate(k, effRing)
	}
	return nil
}

// CheckWrite is the operand-write validation of Figure 6.
func CheckWrite(v SDWView, wordno uint32, effRing Ring) *Violation {
	if k := WriteCheck(v, wordno, effRing); k != ViolationNone {
		return violate(k, effRing)
	}
	return nil
}

// EffectiveRingPR updates the effective ring when the instruction
// specifies its operand address relative to a pointer register (Figure
// 5): TPR.RING := max(TPR.RING, PRn.RING).
func EffectiveRingPR(cur, prRing Ring) Ring { return MaxRing(cur, prRing) }

// EffectiveRingIndirect updates the effective ring when an indirect word
// is retrieved during effective address formation (Figure 5):
// TPR.RING := max(TPR.RING, IND.RING, SDW.R1 of the segment containing
// the indirect word). Including R1 — the top of the write bracket —
// accounts for the highest-numbered ring from which a procedure of the
// same process could have altered the indirect word, so the eventual
// operand reference is validated with respect to every ring that could
// have influenced the address.
func EffectiveRingIndirect(cur, indRing, containerR1 Ring) Ring {
	return MaxRing(MaxRing(cur, indRing), containerR1)
}

// CheckTransfer is the advance check of Figure 7 for transfer
// instructions other than CALL and RETURN. A transfer does not reference
// its operand, so no validation is strictly required; the hardware
// checks anyway so the violation is caught while the offending transfer
// instruction can still be identified.
//
// Transfers are constrained from changing the ring of execution: the
// check is made with the current ring iprRing, and an effective ring
// above the current ring is itself a violation (a higher-numbered ring
// influenced the target address of a transfer that will execute with
// the current ring's privilege).
func CheckTransfer(v SDWView, wordno uint32, iprRing, effRing Ring) *Violation {
	if k := TransferCheck(v, wordno, iprRing, effRing); k != ViolationNone {
		// The ring alarm is detected against the effective ring; every
		// other transfer check validates in the current ring.
		ring := iprRing
		if k == ViolationRingAlarm {
			ring = effRing
		}
		return violate(k, ring)
	}
	return nil
}

// TransferCheck is the value form of CheckTransfer.
func TransferCheck(v SDWView, wordno uint32, iprRing, effRing Ring) ViolationKind {
	if effRing > iprRing {
		return ViolationRingAlarm
	}
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return k
	}
	if !v.Execute {
		return ViolationNoExecute
	}
	if !v.InExecuteBracket(iprRing) {
		return ViolationExecuteBracket
	}
	return ViolationNone
}

// CallOutcome classifies what a CALL instruction does once validated.
type CallOutcome int

const (
	// CallSameRing: the target executes in the caller's ring; no ring
	// switch occurs.
	CallSameRing CallOutcome = iota
	// CallDownward: the ring of execution switches down to the top of
	// the target's execute bracket (R2). Performed entirely in hardware.
	CallDownward
	// CallUpwardTrap: the target's execute bracket lies above the
	// caller's ring. Hardware does not automate this case; it traps for
	// software mediation.
	CallUpwardTrap
)

func (o CallOutcome) String() string {
	switch o {
	case CallSameRing:
		return "same-ring call"
	case CallDownward:
		return "downward call"
	case CallUpwardTrap:
		return "upward call (trap)"
	default:
		//ring:allow unknown-outcome fallback: every architectural outcome is interned above
		return fmt.Sprintf("CallOutcome(%d)", int(o))
	}
}

// CallDecision is the result of validating a CALL instruction.
type CallDecision struct {
	Outcome CallOutcome
	NewRing Ring // ring of execution after the call (meaningful for SameRing/Downward)
}

// DecideCall performs the access validation of the CALL instruction
// (Figure 8).
//
//   - v, wordno: the target segment's SDW view and target word number.
//   - iprRing: the current ring of execution (IPR.RING).
//   - effRing: the effective ring of the CALL operand address (TPR.RING).
//   - sameSegment: the target lies in the segment containing the CALL
//     instruction itself; the gate list is then ignored, permitting calls
//     to internal procedures.
//
// The validation is made relative to the effective ring. Because
// effRing ≥ iprRing always (TPR.RING only ever rises during effective
// address formation), a call that appears same-ring or downward with
// respect to effRing can be upward with respect to iprRing; the paper
// deems this an error and the hardware generates an access violation
// (ViolationRingAlarm) rather than quietly calling with reduced
// privilege.
func DecideCall(v SDWView, wordno uint32, iprRing, effRing Ring, sameSegment bool) (CallDecision, *Violation) {
	decision, k := CallCheck(v, wordno, iprRing, effRing, sameSegment)
	if k != ViolationNone {
		return decision, violate(k, effRing)
	}
	return decision, nil
}

// CallCheck is the value form of DecideCall: the same Figure 8 decision
// procedure, returning the bare violation kind.
func CallCheck(v SDWView, wordno uint32, iprRing, effRing Ring, sameSegment bool) (CallDecision, ViolationKind) {
	var none CallDecision
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return none, k
	}
	if !v.Execute {
		return none, ViolationNoExecute
	}

	// Gate check: every CALL must be directed at a gate location, even
	// within the same ring — the paper's error-detection choice — except
	// when the target is in the same segment as the CALL instruction.
	if !sameSegment && wordno >= v.GateCount {
		return none, ViolationNotAGate
	}

	switch {
	case v.InExecuteBracket(effRing):
		// Call within the execute bracket: target executes in effRing.
		if effRing > iprRing {
			// Would raise the ring of execution via PR or indirection —
			// an upward call in disguise; access violation.
			return none, ViolationRingAlarm
		}
		return CallDecision{Outcome: CallSameRing, NewRing: effRing}, ViolationNone

	case v.InGateExtension(effRing):
		// Downward call through a gate: ring switches to the top of the
		// execute bracket.
		if v.R2 > iprRing {
			// The "top of execute bracket" is still above the true ring
			// of execution; treat as the same disguised-upward error.
			return none, ViolationRingAlarm
		}
		return CallDecision{Outcome: CallDownward, NewRing: v.R2}, ViolationNone

	case effRing < v.R1:
		// Upward call: execute bracket bottom above the caller. Hardware
		// traps for software mediation. The eventual ring of execution,
		// set by software, is the bottom of the execute bracket.
		return CallDecision{Outcome: CallUpwardTrap, NewRing: v.R1}, ViolationNone

	default:
		// effRing > R3: above the gate extension; the ring holds no
		// transfer-to-gate capability for this segment.
		return none, ViolationGateExtension
	}
}

// ReturnOutcome classifies what a RETURN instruction does once validated.
type ReturnOutcome int

const (
	// ReturnSameRing: return within the current ring.
	ReturnSameRing ReturnOutcome = iota
	// ReturnUpward: return to a higher-numbered ring; performed in
	// hardware, raising every PRn.RING to at least the new ring.
	ReturnUpward
	// ReturnDownwardTrap: return to a lower-numbered ring; hardware does
	// not automate this case (it would need a stacked return gate) and
	// traps for software mediation.
	ReturnDownwardTrap
)

func (o ReturnOutcome) String() string {
	switch o {
	case ReturnSameRing:
		return "same-ring return"
	case ReturnUpward:
		return "upward return"
	case ReturnDownwardTrap:
		return "downward return (trap)"
	default:
		//ring:allow unknown-outcome fallback: every architectural outcome is interned above
		return fmt.Sprintf("ReturnOutcome(%d)", int(o))
	}
}

// ReturnDecision is the result of validating a RETURN instruction.
type ReturnDecision struct {
	Outcome ReturnOutcome
	NewRing Ring
}

// DecideReturn performs the access validation of the RETURN instruction
// (Figure 9). The ring returned to is the effective ring of the RETURN
// operand address; because the caller's ring number was woven into the
// stack pointer and return-point indirect words by the hardware, effRing
// can never be below the caller's ring, which is what makes the upward
// return safe without a return gate.
//
// The access validation proper is the same as for other transfer
// instructions, but made in the NEW ring: the instruction executed
// immediately after an upward ring switch must come from a segment
// executable in the new, higher-numbered ring.
func DecideReturn(v SDWView, wordno uint32, iprRing, effRing Ring) (ReturnDecision, *Violation) {
	decision, k := ReturnCheck(v, wordno, iprRing, effRing)
	if k != ViolationNone {
		return decision, violate(k, effRing)
	}
	return decision, nil
}

// ReturnCheck is the value form of DecideReturn: the same Figure 9
// decision procedure, returning the bare violation kind.
func ReturnCheck(v SDWView, wordno uint32, iprRing, effRing Ring) (ReturnDecision, ViolationKind) {
	var none ReturnDecision
	if effRing < iprRing {
		// Downward return: software mediation required.
		return ReturnDecision{Outcome: ReturnDownwardTrap, NewRing: effRing}, ViolationNone
	}
	if k := BoundCheck(v, wordno); k != ViolationNone {
		return none, k
	}
	if !v.Execute {
		return none, ViolationNoExecute
	}
	if !v.InExecuteBracket(effRing) {
		return none, ViolationExecuteBracket
	}
	if effRing == iprRing {
		return ReturnDecision{Outcome: ReturnSameRing, NewRing: effRing}, ViolationNone
	}
	return ReturnDecision{Outcome: ReturnUpward, NewRing: effRing}, ViolationNone
}

// RaisePRRings implements the PR adjustment of Figure 9 for an upward
// return: every pointer register's ring field is replaced with the
// larger of its current value and the new ring of execution. Together
// with the fact that PRs can only be loaded by EAP-type instructions,
// this guarantees PRn.RING ≥ IPR.RING at all times.
func RaisePRRings(prRings []Ring, newRing Ring) {
	for i := range prRings {
		prRings[i] = MaxRing(prRings[i], newRing)
	}
}

// AccessKind names a kind of reference for the convenience of tables,
// traces and the experiment harness.
type AccessKind int

const (
	AccessRead AccessKind = iota
	AccessWrite
	AccessExecute
)

func (k AccessKind) String() string {
	switch k {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessExecute:
		return "execute"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Permits reports whether the view permits the given kind of access from
// ring r, ignoring bounds (the pure bracket/flag predicate). This is the
// function whose nested-subset property the property tests verify.
func (v SDWView) Permits(k AccessKind, r Ring) bool {
	if !v.Present {
		return false
	}
	switch k {
	case AccessRead:
		return v.Read && v.InReadBracket(r)
	case AccessWrite:
		return v.Write && v.InWriteBracket(r)
	case AccessExecute:
		return v.Execute && v.InExecuteBracket(r)
	default:
		return false
	}
}
