package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure1SDW is the writable data segment of the paper's Figure 1:
// readable and writable, not executable, write bracket top 4, read
// bracket top 5.
func figure1SDW() SDWView {
	return SDWView{
		Present: true,
		Read:    true, Write: true, Execute: false,
		Brackets: Brackets{R1: 4, R2: 5, R3: 5},
		Bound:    1024,
	}
}

// figure2SDW is the gated pure procedure segment of the paper's Figure 2:
// readable and executable, not writable, execute bracket [3,3], gate
// extension up to 5, two gate locations.
func figure2SDW() SDWView {
	return SDWView{
		Present: true,
		Read:    true, Write: false, Execute: true,
		Brackets:  Brackets{R1: 3, R2: 3, R3: 5},
		GateCount: 2,
		Bound:     512,
	}
}

func TestRingValid(t *testing.T) {
	for r := Ring(0); r < NumRings; r++ {
		if !r.Valid() {
			t.Errorf("ring %d should be valid", r)
		}
	}
	if Ring(8).Valid() {
		t.Error("ring 8 should be invalid")
	}
}

func TestMaxRing(t *testing.T) {
	if MaxRing(3, 5) != 5 || MaxRing(5, 3) != 5 || MaxRing(4, 4) != 4 {
		t.Error("MaxRing wrong")
	}
}

func TestBracketsValidate(t *testing.T) {
	good := []Brackets{{0, 0, 0}, {0, 7, 7}, {3, 3, 5}, {7, 7, 7}, {1, 4, 6}}
	for _, b := range good {
		if err := b.Validate(); err != nil {
			t.Errorf("%+v: %v", b, err)
		}
	}
	bad := []Brackets{{1, 0, 0}, {0, 5, 4}, {6, 3, 7}, {0, 0, 8}, {9, 9, 9}}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("%+v: expected error", b)
		}
	}
}

func TestBracketMembership(t *testing.T) {
	b := Brackets{R1: 2, R2: 4, R3: 6}
	for r := Ring(0); r < NumRings; r++ {
		if got, want := b.InWriteBracket(r), r <= 2; got != want {
			t.Errorf("write ring %d: %v", r, got)
		}
		if got, want := b.InReadBracket(r), r <= 4; got != want {
			t.Errorf("read ring %d: %v", r, got)
		}
		if got, want := b.InExecuteBracket(r), r >= 2 && r <= 4; got != want {
			t.Errorf("execute ring %d: %v", r, got)
		}
		if got, want := b.InGateExtension(r), r >= 5 && r <= 6; got != want {
			t.Errorf("gate ext ring %d: %v", r, got)
		}
	}
}

func TestSDWViewValidate(t *testing.T) {
	v := figure2SDW()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	v.GateCount = 1000 // exceeds bound
	if err := v.Validate(); err == nil {
		t.Error("gate count beyond bound accepted")
	}
	v = SDWView{Present: false}
	if err := v.Validate(); err != nil {
		t.Errorf("absent SDW should validate: %v", err)
	}
	v = figure1SDW()
	v.Brackets = Brackets{R1: 5, R2: 2, R3: 7}
	if err := v.Validate(); err == nil {
		t.Error("inverted brackets accepted")
	}
}

// ---------------------------------------------------------------------
// Figure 1: writable data segment semantics.

func TestFigure1AccessByRing(t *testing.T) {
	v := figure1SDW()
	for r := Ring(0); r < NumRings; r++ {
		wantWrite := r <= 4
		wantRead := r <= 5
		if got := CheckWrite(v, 0, r) == nil; got != wantWrite {
			t.Errorf("write from ring %d: got %v want %v", r, got, wantWrite)
		}
		if got := CheckRead(v, 0, r) == nil; got != wantRead {
			t.Errorf("read from ring %d: got %v want %v", r, got, wantRead)
		}
		// Data segment: never executable from any ring.
		if CheckFetch(v, 0, r) == nil {
			t.Errorf("fetch from ring %d allowed on data segment", r)
		}
	}
}

// ---------------------------------------------------------------------
// Figure 2: gated pure procedure semantics.

func TestFigure2AccessByRing(t *testing.T) {
	v := figure2SDW()
	for r := Ring(0); r < NumRings; r++ {
		if got, want := CheckFetch(v, 10, r) == nil, r == 3; got != want {
			t.Errorf("fetch from ring %d: got %v want %v", r, got, want)
		}
		if got, want := CheckRead(v, 10, r) == nil, r <= 3; got != want {
			t.Errorf("read from ring %d: got %v want %v", r, got, want)
		}
		// Pure procedure: never writable.
		if CheckWrite(v, 10, r) == nil {
			t.Errorf("write from ring %d allowed on pure procedure", r)
		}
	}
}

// ---------------------------------------------------------------------
// Figure 4: instruction fetch validation.

func TestCheckFetchViolationKinds(t *testing.T) {
	v := figure2SDW()
	if viol := CheckFetch(v, 600, 3); viol == nil || viol.Kind != ViolationBound {
		t.Errorf("beyond bound: %v", viol)
	}
	if viol := CheckFetch(SDWView{}, 0, 3); viol == nil || viol.Kind != ViolationMissingSegment {
		t.Errorf("missing segment: %v", viol)
	}
	noE := v
	noE.Execute = false
	if viol := CheckFetch(noE, 0, 3); viol == nil || viol.Kind != ViolationNoExecute {
		t.Errorf("execute flag off: %v", viol)
	}
	if viol := CheckFetch(v, 0, 5); viol == nil || viol.Kind != ViolationExecuteBracket {
		t.Errorf("above execute bracket: %v", viol)
	}
	if viol := CheckFetch(v, 0, 1); viol == nil || viol.Kind != ViolationExecuteBracket {
		t.Errorf("below execute bracket: %v", viol)
	}
}

// ---------------------------------------------------------------------
// Figure 5: effective ring computation.

func TestEffectiveRingPR(t *testing.T) {
	if EffectiveRingPR(4, 2) != 4 {
		t.Error("PR ring below current must not lower the effective ring")
	}
	if EffectiveRingPR(2, 6) != 6 {
		t.Error("PR ring above current must raise the effective ring")
	}
}

func TestEffectiveRingIndirect(t *testing.T) {
	// Current 1, indirect word ring 0, container writable up to ring 5:
	// a ring-5 procedure could have forged the indirect word, so the
	// effective ring must become 5.
	if got := EffectiveRingIndirect(1, 0, 5); got != 5 {
		t.Errorf("got %d, want 5", got)
	}
	// Indirect word carries an explicit high ring: honored.
	if got := EffectiveRingIndirect(1, 6, 0); got != 6 {
		t.Errorf("got %d, want 6", got)
	}
	// Nothing raises: stays at current.
	if got := EffectiveRingIndirect(4, 0, 0); got != 4 {
		t.Errorf("got %d, want 4", got)
	}
}

// ---------------------------------------------------------------------
// Figure 6: read/write validation corner cases.

func TestCheckReadWriteViolationKinds(t *testing.T) {
	v := figure1SDW()
	if viol := CheckRead(v, 2000, 0); viol == nil || viol.Kind != ViolationBound {
		t.Errorf("read beyond bound: %v", viol)
	}
	if viol := CheckRead(v, 0, 6); viol == nil || viol.Kind != ViolationReadBracket {
		t.Errorf("read above bracket: %v", viol)
	}
	noR := v
	noR.Read = false
	if viol := CheckRead(noR, 0, 0); viol == nil || viol.Kind != ViolationNoRead {
		t.Errorf("read flag off: %v", viol)
	}
	if viol := CheckWrite(v, 0, 5); viol == nil || viol.Kind != ViolationWriteBracket {
		t.Errorf("write above bracket: %v", viol)
	}
	noW := v
	noW.Write = false
	if viol := CheckWrite(noW, 0, 0); viol == nil || viol.Kind != ViolationNoWrite {
		t.Errorf("write flag off: %v", viol)
	}
}

// ---------------------------------------------------------------------
// Figure 7: transfer advance check.

func TestCheckTransfer(t *testing.T) {
	v := figure2SDW()
	if viol := CheckTransfer(v, 5, 3, 3); viol != nil {
		t.Errorf("legal same-ring transfer: %v", viol)
	}
	// Effective ring above current: ring alarm, even if the target would
	// otherwise validate.
	if viol := CheckTransfer(v, 5, 3, 4); viol == nil || viol.Kind != ViolationRingAlarm {
		t.Errorf("raised effective ring: %v", viol)
	}
	// Current ring outside execute bracket.
	if viol := CheckTransfer(v, 5, 4, 4); viol == nil || viol.Kind != ViolationExecuteBracket {
		t.Errorf("ring 4 transfer, effRing 4: %v", viol)
	}
	if viol := CheckTransfer(v, 5, 2, 2); viol == nil || viol.Kind != ViolationExecuteBracket {
		t.Errorf("ring 2 transfer below bracket: %v", viol)
	}
}

// ---------------------------------------------------------------------
// Figure 8: CALL decisions.

func TestDecideCallSameRing(t *testing.T) {
	v := figure2SDW()
	d, viol := DecideCall(v, 0, 3, 3, false)
	if viol != nil {
		t.Fatalf("same-ring gated call: %v", viol)
	}
	if d.Outcome != CallSameRing || d.NewRing != 3 {
		t.Errorf("decision: %+v", d)
	}
}

func TestDecideCallDownward(t *testing.T) {
	v := figure2SDW()
	for caller := Ring(4); caller <= 5; caller++ {
		d, viol := DecideCall(v, 1, caller, caller, false)
		if viol != nil {
			t.Fatalf("downward call from ring %d: %v", caller, viol)
		}
		if d.Outcome != CallDownward || d.NewRing != 3 {
			t.Errorf("from ring %d: %+v", caller, d)
		}
	}
}

func TestDecideCallAboveGateExtension(t *testing.T) {
	v := figure2SDW()
	_, viol := DecideCall(v, 0, 6, 6, false)
	if viol == nil || viol.Kind != ViolationGateExtension {
		t.Errorf("call from ring 6: %v", viol)
	}
}

func TestDecideCallNotAGate(t *testing.T) {
	v := figure2SDW()
	// Word 2 is not a gate (gates are 0 and 1).
	_, viol := DecideCall(v, 2, 4, 4, false)
	if viol == nil || viol.Kind != ViolationNotAGate {
		t.Errorf("non-gate call: %v", viol)
	}
	// Even a same-ring call must hit a gate when crossing segments.
	_, viol = DecideCall(v, 2, 3, 3, false)
	if viol == nil || viol.Kind != ViolationNotAGate {
		t.Errorf("same-ring non-gate call: %v", viol)
	}
}

func TestDecideCallSameSegmentBypassesGates(t *testing.T) {
	v := figure2SDW()
	d, viol := DecideCall(v, 100, 3, 3, true)
	if viol != nil {
		t.Fatalf("internal call: %v", viol)
	}
	if d.Outcome != CallSameRing || d.NewRing != 3 {
		t.Errorf("internal call decision: %+v", d)
	}
}

func TestDecideCallUpwardTrap(t *testing.T) {
	v := figure2SDW()
	d, viol := DecideCall(v, 0, 1, 1, false)
	if viol != nil {
		t.Fatalf("upward call should trap, not violate: %v", viol)
	}
	if d.Outcome != CallUpwardTrap || d.NewRing != 3 {
		t.Errorf("upward decision: %+v", d)
	}
}

func TestDecideCallRingAlarm(t *testing.T) {
	v := figure2SDW()
	// Executing in ring 1; effective ring raised to 3 by a pointer
	// register. With respect to TPR.RING this looks like a same-ring
	// call, but with respect to IPR.RING it is upward: access violation.
	_, viol := DecideCall(v, 0, 1, 3, false)
	if viol == nil || viol.Kind != ViolationRingAlarm {
		t.Errorf("disguised upward call: %v", viol)
	}
	// Executing in ring 2; effective ring raised to 4 (gate extension,
	// R2=3 > 2 = iprRing): also an alarm.
	_, viol = DecideCall(v, 0, 2, 4, false)
	if viol == nil || viol.Kind != ViolationRingAlarm {
		t.Errorf("disguised upward gated call: %v", viol)
	}
}

func TestDecideCallDownwardViaRaisedEffRing(t *testing.T) {
	// Executing in ring 5, effective ring still 5 via gate extension,
	// R2 = 3 ≤ 5: legitimate downward call even though a PR raised
	// nothing. Also check a raised effective ring that stays legal:
	// caller ring 5, effRing 5 (gate ext) → fine.
	v := figure2SDW()
	d, viol := DecideCall(v, 0, 5, 5, false)
	if viol != nil || d.Outcome != CallDownward || d.NewRing != 3 {
		t.Errorf("d=%+v viol=%v", d, viol)
	}
	// Caller ring 4, effRing raised to 5: still a downward call whose
	// new ring 3 ≤ iprRing 4 — legal, validated against ring 5.
	d, viol = DecideCall(v, 0, 4, 5, false)
	if viol != nil || d.Outcome != CallDownward || d.NewRing != 3 {
		t.Errorf("raised effRing downward: d=%+v viol=%v", d, viol)
	}
}

func TestDecideCallChecksExecuteFlagAndBounds(t *testing.T) {
	v := figure2SDW()
	v.Execute = false
	if _, viol := DecideCall(v, 0, 4, 4, false); viol == nil || viol.Kind != ViolationNoExecute {
		t.Errorf("execute off: %v", viol)
	}
	v = figure2SDW()
	if _, viol := DecideCall(v, 9999, 4, 4, false); viol == nil || viol.Kind != ViolationBound {
		t.Errorf("bound: %v", viol)
	}
	if _, viol := DecideCall(SDWView{}, 0, 4, 4, false); viol == nil || viol.Kind != ViolationMissingSegment {
		t.Errorf("missing: %v", viol)
	}
}

// ---------------------------------------------------------------------
// Figure 9: RETURN decisions.

func returnTarget() SDWView {
	// A user procedure segment executable in rings 4-5.
	return SDWView{
		Present: true, Read: true, Execute: true,
		Brackets: Brackets{R1: 4, R2: 5, R3: 5},
		Bound:    256,
	}
}

func TestDecideReturnUpward(t *testing.T) {
	v := returnTarget()
	d, viol := DecideReturn(v, 10, 1, 4)
	if viol != nil {
		t.Fatalf("upward return: %v", viol)
	}
	if d.Outcome != ReturnUpward || d.NewRing != 4 {
		t.Errorf("decision: %+v", d)
	}
}

func TestDecideReturnSameRing(t *testing.T) {
	v := returnTarget()
	d, viol := DecideReturn(v, 10, 4, 4)
	if viol != nil {
		t.Fatalf("same-ring return: %v", viol)
	}
	if d.Outcome != ReturnSameRing || d.NewRing != 4 {
		t.Errorf("decision: %+v", d)
	}
}

func TestDecideReturnDownwardTraps(t *testing.T) {
	v := returnTarget()
	d, viol := DecideReturn(v, 10, 5, 4)
	if viol != nil {
		t.Fatalf("downward return decision should not violate: %v", viol)
	}
	if d.Outcome != ReturnDownwardTrap {
		t.Errorf("decision: %+v", d)
	}
}

func TestDecideReturnValidatesInNewRing(t *testing.T) {
	v := returnTarget() // executable only in rings 4-5
	// Returning from ring 1 to ring 6: the target is not executable in
	// ring 6, so the return must be an access violation, not a quiet
	// transfer to an unexecutable segment.
	if _, viol := DecideReturn(v, 10, 1, 6); viol == nil || viol.Kind != ViolationExecuteBracket {
		t.Errorf("return into unexecutable ring: %v", viol)
	}
	noE := v
	noE.Execute = false
	if _, viol := DecideReturn(noE, 10, 1, 4); viol == nil || viol.Kind != ViolationNoExecute {
		t.Errorf("return into E=off segment: %v", viol)
	}
	if _, viol := DecideReturn(v, 9999, 1, 4); viol == nil || viol.Kind != ViolationBound {
		t.Errorf("return beyond bound: %v", viol)
	}
}

func TestRaisePRRings(t *testing.T) {
	prs := []Ring{0, 1, 4, 7}
	RaisePRRings(prs, 4)
	want := []Ring{4, 4, 4, 7}
	for i := range prs {
		if prs[i] != want[i] {
			t.Errorf("pr[%d] = %d, want %d", i, prs[i], want[i])
		}
	}
}

// ---------------------------------------------------------------------
// Property tests.

func randomView(rng *rand.Rand) SDWView {
	r1 := Ring(rng.Intn(NumRings))
	r2 := r1 + Ring(rng.Intn(int(NumRings-r1)))
	r3 := r2 + Ring(rng.Intn(int(NumRings-r2)))
	bound := uint32(rng.Intn(1024) + 1)
	return SDWView{
		Present: true,
		Read:    rng.Intn(2) == 0,
		Write:   rng.Intn(2) == 0,
		Execute: rng.Intn(2) == 0,
		Brackets: Brackets{
			R1: r1, R2: r2, R3: r3,
		},
		GateCount: uint32(rng.Intn(int(bound))),
		Bound:     bound,
	}
}

// Property (nested subset): read and write permission are downward
// closed in the ring number — if ring m may access, so may every ring
// n < m. (Execute is deliberately NOT downward closed: the paper relaxes
// the execute bracket's lower limit to catch accidental execution in a
// ring lower than intended.)
func TestQuickNestedSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := randomView(rng)
		for m := Ring(1); m < NumRings; m++ {
			for n := Ring(0); n < m; n++ {
				if v.Permits(AccessRead, m) && !v.Permits(AccessRead, n) {
					t.Fatalf("read not nested: %+v m=%d n=%d", v, m, n)
				}
				if v.Permits(AccessWrite, m) && !v.Permits(AccessWrite, n) {
					t.Fatalf("write not nested: %+v m=%d n=%d", v, m, n)
				}
			}
		}
	}
}

// Property: the write bracket is contained in the read bracket (a
// consequence of R1 ≤ R2): any ring that can write a segment with both
// flags on can also read it.
func TestQuickWriteImpliesReadBracket(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		v := randomView(rng)
		v.Read, v.Write = true, true
		for r := Ring(0); r < NumRings; r++ {
			if v.Permits(AccessWrite, r) && !v.Permits(AccessRead, r) {
				t.Fatalf("write without read: %+v ring %d", v, r)
			}
		}
	}
}

// Property: effective ring computation is monotone — it never lowers the
// ring, whatever combination of PR and indirect contributions arrives.
func TestQuickEffectiveRingMonotone(t *testing.T) {
	f := func(curSeed, prSeed, indSeed, r1Seed uint8) bool {
		cur := Ring(curSeed % NumRings)
		pr := Ring(prSeed % NumRings)
		ind := Ring(indSeed % NumRings)
		r1 := Ring(r1Seed % NumRings)
		afterPR := EffectiveRingPR(cur, pr)
		afterInd := EffectiveRingIndirect(afterPR, ind, r1)
		return afterPR >= cur && afterInd >= afterPR &&
			afterInd >= ind && afterInd >= r1 && afterPR >= pr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DecideCall never hands back a NewRing above the caller's
// ring of execution without trapping — the hardware can lower or hold
// the ring, never raise it silently.
func TestQuickCallNeverRaisesRingSilently(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		v := randomView(rng)
		ipr := Ring(rng.Intn(NumRings))
		eff := ipr + Ring(rng.Intn(int(NumRings-ipr))) // eff ≥ ipr always holds in hardware
		wordno := uint32(rng.Intn(int(v.Bound)))
		same := rng.Intn(4) == 0
		d, viol := DecideCall(v, wordno, ipr, eff, same)
		if viol != nil {
			continue
		}
		if d.Outcome != CallUpwardTrap && d.NewRing > ipr {
			t.Fatalf("silent ring raise: %+v ipr=%d eff=%d d=%+v", v, ipr, eff, d)
		}
	}
}

// Property: DecideReturn never returns control downward without a trap.
func TestQuickReturnNeverLowersRingSilently(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		v := randomView(rng)
		ipr := Ring(rng.Intn(NumRings))
		eff := Ring(rng.Intn(NumRings))
		wordno := uint32(rng.Intn(int(v.Bound)))
		d, viol := DecideReturn(v, wordno, ipr, eff)
		if viol != nil {
			continue
		}
		if d.NewRing < ipr && d.Outcome != ReturnDownwardTrap {
			t.Fatalf("silent ring lower: ipr=%d eff=%d d=%+v", ipr, eff, d)
		}
	}
}

// Property: RaisePRRings establishes PRn.RING ≥ newRing and never lowers
// any PR ring.
func TestQuickRaisePRRings(t *testing.T) {
	f := func(seeds []uint8, newSeed uint8) bool {
		newRing := Ring(newSeed % NumRings)
		prs := make([]Ring, len(seeds))
		before := make([]Ring, len(seeds))
		for i, s := range seeds {
			prs[i] = Ring(s % NumRings)
			before[i] = prs[i]
		}
		RaisePRRings(prs, newRing)
		for i := range prs {
			if prs[i] < newRing || prs[i] < before[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for a present SDW with valid brackets, CheckRead/CheckWrite/
// CheckFetch agree exactly with the Permits predicate (given an in-bound
// word number).
func TestQuickChecksAgreeWithPermits(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20000; i++ {
		v := randomView(rng)
		wordno := uint32(rng.Intn(int(v.Bound)))
		r := Ring(rng.Intn(NumRings))
		if got, want := CheckRead(v, wordno, r) == nil, v.Permits(AccessRead, r); got != want {
			t.Fatalf("read disagree: %+v ring %d", v, r)
		}
		if got, want := CheckWrite(v, wordno, r) == nil, v.Permits(AccessWrite, r); got != want {
			t.Fatalf("write disagree: %+v ring %d", v, r)
		}
		if got, want := CheckFetch(v, wordno, r) == nil, v.Permits(AccessExecute, r); got != want {
			t.Fatalf("fetch disagree: %+v ring %d", v, r)
		}
	}
}

func TestViolationStrings(t *testing.T) {
	kinds := []ViolationKind{
		ViolationNone, ViolationMissingSegment, ViolationBound,
		ViolationNoRead, ViolationReadBracket, ViolationNoWrite,
		ViolationWriteBracket, ViolationNoExecute, ViolationExecuteBracket,
		ViolationNotAGate, ViolationGateExtension, ViolationRingAlarm,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad or duplicate string %q", k, s)
		}
		seen[s] = true
	}
	v := &Violation{Kind: ViolationNoWrite, Ring: 4}
	if v.Error() == "" {
		t.Error("empty violation error")
	}
	if ViolationKind(99).String() == "" {
		t.Error("unknown kind string empty")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range []CallOutcome{CallSameRing, CallDownward, CallUpwardTrap, CallOutcome(9)} {
		if o.String() == "" {
			t.Errorf("empty string for %d", o)
		}
	}
	for _, o := range []ReturnOutcome{ReturnSameRing, ReturnUpward, ReturnDownwardTrap, ReturnOutcome(9)} {
		if o.String() == "" {
			t.Errorf("empty string for %d", o)
		}
	}
	for _, k := range []AccessKind{AccessRead, AccessWrite, AccessExecute, AccessKind(9)} {
		if k.String() == "" {
			t.Errorf("empty string for %d", k)
		}
	}
	if Ring(3).String() != "ring 3" {
		t.Error("ring string")
	}
}

// Property: DecideCall is consistent with the fetch predicate — when a
// CALL succeeds without trapping, the target segment is executable in
// the new ring of execution (the next instruction fetch cannot fault on
// the execute bracket).
func TestQuickCallConsistentWithFetch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20000; i++ {
		v := randomView(rng)
		ipr := Ring(rng.Intn(NumRings))
		eff := ipr + Ring(rng.Intn(int(NumRings-ipr)))
		wordno := uint32(rng.Intn(int(v.Bound)))
		same := rng.Intn(4) == 0
		d, viol := DecideCall(v, wordno, ipr, eff, same)
		if viol != nil || d.Outcome == CallUpwardTrap {
			continue
		}
		if f := CheckFetch(v, wordno, d.NewRing); f != nil {
			t.Fatalf("call succeeded into unfetchable ring: %+v ipr=%d eff=%d d=%+v viol=%v",
				v, ipr, eff, d, f)
		}
	}
}

// Property: DecideReturn never succeeds into a segment the new ring
// cannot fetch from.
func TestQuickReturnConsistentWithFetch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 20000; i++ {
		v := randomView(rng)
		ipr := Ring(rng.Intn(NumRings))
		eff := Ring(rng.Intn(NumRings))
		wordno := uint32(rng.Intn(int(v.Bound)))
		d, viol := DecideReturn(v, wordno, ipr, eff)
		if viol != nil || d.Outcome == ReturnDownwardTrap {
			continue
		}
		if f := CheckFetch(v, wordno, d.NewRing); f != nil {
			t.Fatalf("return succeeded into unfetchable ring: %+v ipr=%d eff=%d d=%+v viol=%v",
				v, ipr, eff, d, f)
		}
	}
}
