package core

import "testing"

// This file verifies DecideCall and DecideReturn against independent
// specification functions written directly from the paper's prose, by
// exhaustive enumeration of the whole (small) input space: every valid
// bracket triple, every flag combination, every caller/effective ring
// pair, gate and non-gate words, same- and cross-segment. Roughly half
// a million cases per decision procedure.

// specCall is an independent transcription of Figure 8's narrative.
func specCall(v SDWView, wordno uint32, ipr, eff Ring, sameSegment bool) (CallDecision, *Violation) {
	var none CallDecision
	// Address translation: presence and bound first.
	if !v.Present {
		return none, &Violation{Kind: ViolationMissingSegment, Ring: eff}
	}
	if wordno >= v.Bound {
		return none, &Violation{Kind: ViolationBound, Ring: eff}
	}
	// The target must be executable at all.
	if !v.Execute {
		return none, &Violation{Kind: ViolationNoExecute, Ring: eff}
	}
	// "a CALL must be directed at a gate location even when the called
	// procedure will execute in the same ring ... The only exception
	// ... occurs if the operand is in the same segment as the
	// instruction."
	if !sameSegment && wordno >= v.GateCount {
		return none, &Violation{Kind: ViolationNotAGate, Ring: eff}
	}
	// Validation is relative to the effective ring.
	switch {
	case eff >= v.R1 && eff <= v.R2:
		// Within the execute bracket: the call would execute in eff.
		// "what would appear to be a call within the same ring or to a
		// lower ring with respect to TPR.RING can in fact be an upward
		// call with respect to IPR.RING ... generate an access
		// violation".
		if eff > ipr {
			return none, &Violation{Kind: ViolationRingAlarm, Ring: eff}
		}
		return CallDecision{Outcome: CallSameRing, NewRing: eff}, nil
	case eff > v.R2 && eff <= v.R3:
		// Gate extension: downward call to the top of the execute
		// bracket — unless that is still above the true ring.
		if v.R2 > ipr {
			return none, &Violation{Kind: ViolationRingAlarm, Ring: eff}
		}
		return CallDecision{Outcome: CallDownward, NewRing: v.R2}, nil
	case eff < v.R1:
		// Below the execute bracket: an upward call; hardware traps.
		return CallDecision{Outcome: CallUpwardTrap, NewRing: v.R1}, nil
	default:
		// Above the gate extension.
		return none, &Violation{Kind: ViolationGateExtension, Ring: eff}
	}
}

// specReturn is an independent transcription of Figure 9's narrative.
func specReturn(v SDWView, wordno uint32, ipr, eff Ring) (ReturnDecision, *Violation) {
	var none ReturnDecision
	if eff < ipr {
		return ReturnDecision{Outcome: ReturnDownwardTrap, NewRing: eff}, nil
	}
	if !v.Present {
		return none, &Violation{Kind: ViolationMissingSegment, Ring: eff}
	}
	if wordno >= v.Bound {
		return none, &Violation{Kind: ViolationBound, Ring: eff}
	}
	if !v.Execute {
		return none, &Violation{Kind: ViolationNoExecute, Ring: eff}
	}
	if !(eff >= v.R1 && eff <= v.R2) {
		return none, &Violation{Kind: ViolationExecuteBracket, Ring: eff}
	}
	if eff == ipr {
		return ReturnDecision{Outcome: ReturnSameRing, NewRing: eff}, nil
	}
	return ReturnDecision{Outcome: ReturnUpward, NewRing: eff}, nil
}

// enumerate walks every valid SDW view shape (brackets × flags × gate
// configurations over a 2-word segment).
func enumerate(f func(v SDWView)) {
	for r1 := Ring(0); r1 < NumRings; r1++ {
		for r2 := r1; r2 < NumRings; r2++ {
			for r3 := r2; r3 < NumRings; r3++ {
				for flags := 0; flags < 8; flags++ {
					for gate := uint32(0); gate <= 2; gate++ {
						f(SDWView{
							Present:   true,
							Read:      flags&1 != 0,
							Write:     flags&2 != 0,
							Execute:   flags&4 != 0,
							Brackets:  Brackets{R1: r1, R2: r2, R3: r3},
							GateCount: gate,
							Bound:     2,
						})
					}
				}
			}
		}
	}
}

func sameViolation(a, b *Violation) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.Kind == b.Kind && a.Ring == b.Ring
}

func TestExhaustiveCallAgainstSpec(t *testing.T) {
	cases := 0
	enumerate(func(v SDWView) {
		for ipr := Ring(0); ipr < NumRings; ipr++ {
			// In hardware the effective ring never drops below the ring
			// of execution, but the decision procedure must behave
			// sanely for all inputs; enumerate everything.
			for eff := Ring(0); eff < NumRings; eff++ {
				for _, wordno := range []uint32{0, 1, 2} {
					for _, same := range []bool{false, true} {
						cases++
						got, gotV := DecideCall(v, wordno, ipr, eff, same)
						want, wantV := specCall(v, wordno, ipr, eff, same)
						if !sameViolation(gotV, wantV) {
							t.Fatalf("violation mismatch: v=%+v w=%d ipr=%d eff=%d same=%v\n got %v\nwant %v",
								v, wordno, ipr, eff, same, gotV, wantV)
						}
						if gotV == nil && got != want {
							t.Fatalf("decision mismatch: v=%+v w=%d ipr=%d eff=%d same=%v\n got %+v\nwant %+v",
								v, wordno, ipr, eff, same, got, want)
						}
					}
				}
			}
		}
	})
	if cases < 400000 {
		t.Fatalf("only %d cases enumerated", cases)
	}
}

func TestExhaustiveReturnAgainstSpec(t *testing.T) {
	cases := 0
	enumerate(func(v SDWView) {
		for ipr := Ring(0); ipr < NumRings; ipr++ {
			for eff := Ring(0); eff < NumRings; eff++ {
				for _, wordno := range []uint32{0, 2} {
					cases++
					got, gotV := DecideReturn(v, wordno, ipr, eff)
					want, wantV := specReturn(v, wordno, ipr, eff)
					if !sameViolation(gotV, wantV) {
						t.Fatalf("violation mismatch: v=%+v w=%d ipr=%d eff=%d\n got %v\nwant %v",
							v, wordno, ipr, eff, gotV, wantV)
					}
					if gotV == nil && got != want {
						t.Fatalf("decision mismatch: v=%+v w=%d ipr=%d eff=%d\n got %+v\nwant %+v",
							v, wordno, ipr, eff, got, want)
					}
				}
			}
		}
	})
	if cases < 200000 {
		t.Fatalf("only %d cases enumerated", cases)
	}
}

// TestExhaustiveAbsentSegment covers the not-present arm for both
// procedures.
func TestExhaustiveAbsentSegment(t *testing.T) {
	v := SDWView{}
	if _, viol := DecideCall(v, 0, 4, 4, false); viol == nil || viol.Kind != ViolationMissingSegment {
		t.Errorf("call into absent segment: %v", viol)
	}
	if _, viol := DecideReturn(v, 0, 1, 4); viol == nil || viol.Kind != ViolationMissingSegment {
		t.Errorf("return into absent segment: %v", viol)
	}
}
