package cpu_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/seg"
	"repro/internal/trace"
	"repro/internal/trap"
	"repro/internal/word"
)

// gatedProc builds a procedure segment with execute bracket [r,r] and a
// gate extension up to gateTop, with the given number of gates.
func gatedProc(name string, r, gateTop core.Ring, gates uint32, code []word.Word) image.SegmentDef {
	return image.SegmentDef{
		Name: name, Words: code,
		Read: true, Execute: true,
		Brackets: core.Brackets{R1: r, R2: r, R3: gateTop},
		Gates:    gates,
	}
}

// callImage builds the canonical two-segment scenario: a ring-4 caller
// and a ring-1 gated service. The caller's link word (main|2) points at
// the service gate.
func callImage(t *testing.T) *image.Image {
	t.Helper()
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.CALL, 2), // call *main|2
			ins(isa.HLT, 0),
			0, // link word
		}),
		gatedProc("service", 1, 5, 1, []word.Word{
			ins(isa.LIA, 42),
			ins(isa.HLT, 0),
		}))
	svcSeg, err := img.Segno("service")
	if err != nil {
		t.Fatal(err)
	}
	if err := img.WriteWord("main", 2, indWord(0, svcSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	return img
}

func TestDownwardCallSwitchesRing(t *testing.T) {
	img := callImage(t)
	buf := &trace.Buffer{}
	img.CPU.SetTracer(buf)
	run(t, img, 4, "main", 0)
	c := img.CPU
	if c.A.Int64() != 42 {
		t.Error("service did not run")
	}
	if c.IPR.Ring != 1 {
		t.Errorf("halted in ring %d, want 1", c.IPR.Ring)
	}
	// PR0 = stack base for ring 1: segno 1 under the default rule.
	if c.PR[cpu.StackBasePR].Segno != 1 || c.PR[cpu.StackBasePR].Ring != 1 ||
		c.PR[cpu.StackBasePR].Wordno != 0 {
		t.Errorf("PR0 = %v", c.PR[cpu.StackBasePR])
	}
	// Crucially: no trap occurred. This is the headline claim.
	if traps := buf.OfKind(trace.KindTrap); len(traps) != 0 {
		t.Errorf("downward call trapped: %v", traps)
	}
	if switches := buf.OfKind(trace.KindRingSwitch); len(switches) != 1 {
		t.Fatalf("ring switches: %v", switches)
	}
}

func TestDownwardCallStackRuleDBRBase(t *testing.T) {
	img, err := image.Build(image.Config{StackRule: cpu.StackDBRBase, StackBase: 16}, []image.SegmentDef{
		userProc("main", 4, 0, []word.Word{
			insInd(isa.CALL, 2),
			ins(isa.HLT, 0),
			0,
		}),
		gatedProc("service", 1, 5, 1, []word.Word{
			ins(isa.HLT, 0),
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	svcSeg, _ := img.Segno("service")
	if err := img.WriteWord("main", 2, indWord(0, svcSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := img.CPU.PR[cpu.StackBasePR].Segno; got != 17 {
		t.Errorf("PR0 segno = %d, want 17 (DBR.Stack 16 + ring 1)", got)
	}
}

func TestSameRingCallKeepsStackSegment(t *testing.T) {
	// A same-ring CALL takes the stack segno from the stack pointer
	// register (footnote rule), preserving nonstandard stacks.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.CALL, 2),
			ins(isa.HLT, 0),
			0,
		}),
		userProc("peer", 4, 1, []word.Word{
			ins(isa.HLT, 0),
		}),
		dataSeg("altstack", 4, 4, 64))
	peerSeg, _ := img.Segno("peer")
	altSeg, _ := img.Segno("altstack")
	if err := img.WriteWord("main", 2, indWord(0, peerSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[cpu.StackPtrPR] = cpu.Pointer{Ring: 4, Segno: altSeg, Wordno: 10}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := img.CPU.PR[cpu.StackBasePR].Segno; got != altSeg {
		t.Errorf("PR0 segno = %d, want %d (from stack pointer register)", got, altSeg)
	}
	if img.CPU.IPR.Ring != 4 {
		t.Errorf("ring changed on same-ring call: %d", img.CPU.IPR.Ring)
	}
}

func TestCallToNonGateTraps(t *testing.T) {
	img := callImage(t)
	svcSeg, _ := img.Segno("service")
	// Re-point the link at word 1, beyond the single gate.
	if err := img.WriteWord("main", 2, indWord(0, svcSeg, 1, false)); err != nil {
		t.Fatal(err)
	}
	tr := runExpectTrap(t, img, 4, "main", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationNotAGate {
		t.Errorf("violation: %v", tr.Violation)
	}
}

func TestCallAboveGateExtensionTraps(t *testing.T) {
	// The service's gate extension tops at ring 5; a ring-6 caller
	// holds no transfer-to-gate capability for it.
	img := build(t, image.Config{},
		userProc("main6", 6, 0, []word.Word{
			insInd(isa.CALL, 2),
			ins(isa.HLT, 0),
			0,
		}),
		gatedProc("service", 1, 5, 1, []word.Word{ins(isa.HLT, 0)}))
	svcSeg, _ := img.Segno("service")
	if err := img.WriteWord("main6", 2, indWord(0, svcSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	tr := runExpectTrap(t, img, 6, "main6", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationGateExtension {
		t.Errorf("violation: %v", tr.Violation)
	}
}

func TestCallWithinSegmentBypassesGate(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.CALL, 2), // direct, same segment, word 2 is not a gate (0 gates)
			ins(isa.HLT, 0),
			ins(isa.LIA, 9), // internal procedure
			ins(isa.HLT, 0),
		}))
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 9 {
		t.Error("internal call did not reach target")
	}
}

func TestUpwardCallTraps(t *testing.T) {
	// Ring-1 caller invokes a ring-4 procedure: hardware traps with
	// UpwardCall for software mediation.
	img := build(t, image.Config{},
		userProc("sup", 1, 0, []word.Word{
			insInd(isa.CALL, 2),
			ins(isa.HLT, 0),
			0,
		}),
		userProc("user", 4, 1, []word.Word{
			ins(isa.HLT, 0),
		}))
	userSeg, _ := img.Segno("user")
	if err := img.WriteWord("sup", 2, indWord(0, userSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	tr := runExpectTrap(t, img, 1, "sup", 0, trap.UpwardCall)
	if tr.OperandSeg != userSeg || tr.OperandWord != 0 {
		t.Errorf("trap operand: (%o|%o)", tr.OperandSeg, tr.OperandWord)
	}
}

func TestCallRingAlarmViaPR(t *testing.T) {
	// Ring-1 code CALLs through a PR with ring 4 at a segment whose
	// execute bracket is [3,3]: with respect to the effective ring (4,
	// in the gate extension) this looks like a downward call to ring 3,
	// but with respect to the true ring of execution (1) it is an
	// upward call — the disguised upward call of Figure 8, an access
	// violation.
	img := build(t, image.Config{},
		userProc("sup", 1, 0, []word.Word{
			insPR(isa.CALL, 3, 0),
			ins(isa.HLT, 0),
		}),
		gatedProc("peer", 3, 5, 1, []word.Word{ins(isa.HLT, 0)}))
	peerSeg, _ := img.Segno("peer")
	if err := img.Start(1, "sup", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[3] = cpu.Pointer{Ring: 4, Segno: peerSeg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation == nil ||
		tr.Violation.Kind != core.ViolationRingAlarm {
		t.Fatalf("err = %v", err)
	}
}

func TestCallStackFaultWhenStackMissing(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.CALL, 2),
			ins(isa.HLT, 0),
			0,
		}),
		gatedProc("sub", 2, 5, 1, []word.Word{ins(isa.HLT, 0)}))
	subSeg, _ := img.Segno("sub")
	if err := img.WriteWord("main", 2, indWord(0, subSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	// Remove the ring-2 stack (segment 2 under the default rule).
	if err := img.CPU.Table().Store(2, seg.SDW{}); err != nil {
		t.Fatal(err)
	}
	runExpectTrap(t, img, 4, "main", 0, trap.StackFault)
}

// ---- RETURN ----

func TestUpwardReturnRaisesPRRings(t *testing.T) {
	// Ring-1 service returns to ring 4 through a return-point indirect
	// word carrying ring 4; every PR ring must be raised to ≥ 4.
	img := build(t, image.Config{},
		gatedProc("service", 1, 5, 1, []word.Word{
			insInd(isa.RET, 1), // return *service|1
			0,                  // return point, filled below
		}),
		userProc("main", 4, 0, []word.Word{
			ins(isa.HLT, 0), // never reached directly
			ins(isa.LIA, 7), // word 1: the return point
			ins(isa.HLT, 0),
		}))
	mainSeg, _ := img.Segno("main")
	if err := img.WriteWord("service", 1, indWord(4, mainSeg, 1, false)); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(1, "service", 0); err != nil {
		t.Fatal(err)
	}
	// Simulate post-downward-call register state: PRs hold ring ≥ 1.
	for i := range img.CPU.PR {
		img.CPU.PR[i].Ring = 1
	}
	buf := &trace.Buffer{}
	img.CPU.SetTracer(buf)
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	if c.IPR.Ring != 4 {
		t.Errorf("returned to ring %d, want 4", c.IPR.Ring)
	}
	if c.A.Int64() != 7 {
		t.Error("execution did not resume at return point")
	}
	for i, pr := range c.PR {
		if pr.Ring < 4 {
			t.Errorf("PR%d ring %d < 4 after upward return", i, pr.Ring)
		}
	}
	if traps := buf.OfKind(trace.KindTrap); len(traps) != 0 {
		t.Errorf("upward return trapped: %v", traps)
	}
}

func TestReturnCannotBeLoweredByCallee(t *testing.T) {
	// Ring-4 code forges a return point whose ring field claims ring 1
	// and RETURNs through it. The effective ring computation cannot be
	// lowered — TPR.RING = max(IPR ring 4, IND ring 1, container R1 4)
	// = 4 — so the "return to ring 1" is actually validated as a ring-4
	// transfer into the supervisor segment, which is not executable in
	// ring 4: access violation. A downward ring switch simply cannot be
	// expressed through RETURN's effective address.
	img := build(t, image.Config{},
		userProc("user", 4, 0, []word.Word{
			insInd(isa.RET, 1),
			0,
		}),
		gatedProc("sup", 1, 5, 1, []word.Word{ins(isa.HLT, 0)}))
	supSeg, _ := img.Segno("sup")
	if err := img.WriteWord("user", 1, indWord(1, supSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	tr := runExpectTrap(t, img, 4, "user", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationExecuteBracket {
		t.Errorf("violation: %v", tr.Violation)
	}
	if tr.Violation.Ring != 4 {
		t.Errorf("validated in ring %d, want 4 (the forged ring 1 was overridden)", tr.Violation.Ring)
	}
}

func TestSameRingReturn(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.RET, 1),
			0,
			ins(isa.LIA, 3), // word 2: target
			ins(isa.HLT, 0),
		}))
	mainSeg, _ := img.Segno("main")
	if err := img.WriteWord("main", 1, indWord(4, mainSeg, 2, false)); err != nil {
		t.Fatal(err)
	}
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 3 {
		t.Error("same-ring return missed target")
	}
}

func TestReturnIntoUnexecutableRingTraps(t *testing.T) {
	// Return to ring 6 but the target executes only in ring 4: the
	// instruction after an upward ring switch must come from a segment
	// executable in the new ring.
	img := build(t, image.Config{},
		gatedProc("service", 1, 5, 1, []word.Word{
			insInd(isa.RET, 1),
			0,
		}),
		userProc("main", 4, 0, []word.Word{ins(isa.HLT, 0)}))
	mainSeg, _ := img.Segno("main")
	if err := img.WriteWord("service", 1, indWord(6, mainSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	tr := runExpectTrap(t, img, 1, "service", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationExecuteBracket {
		t.Errorf("violation: %v", tr.Violation)
	}
}

// ---- full round trip: the paper's calling convention ----

// TestFullCallReturnRoundTrip exercises the complete software
// convention the paper describes: the caller saves its return point at
// a standard stack position, the callee builds a frame on its own
// ring's stack, saves and restores the caller's stack pointer, and
// returns through the restored pointer — landing in the caller's ring
// with no supervisor involvement.
func TestFullCallReturnRoundTrip(t *testing.T) {
	const retSlot = 0 // frame slot for the return point
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			// save return point at (PR6)+0, skipping the CALL word
			isa.Instruction{Op: isa.STIC, PRRel: true, PR: 6, Tag: 1, Offset: retSlot}.Encode(),
			insInd(isa.CALL, 3), // call *main|3
			ins(isa.HLT, 0),     // return lands here
			0,                   // word 3: link
		}),
		gatedProc("service", 1, 5, 1, []word.Word{
			// prologue: new frame on ring-1 stack
			// PR0 = stack base (set by CALL). Frame pointer: PR5 := PR0|1.
			isa.Instruction{Op: isa.EAP, PRRel: true, PR: 0, Tag: 5, Offset: 1}.Encode(),
			// save caller's PR6 into frame: spr6 pr5|0
			isa.Instruction{Op: isa.SPR, PRRel: true, PR: 5, Tag: 6, Offset: 0}.Encode(),
			// body
			ins(isa.LIA, 42),
			// epilogue: restore caller's PR6: eap6 *pr5|0
			isa.Instruction{Op: isa.EAP, Ind: true, PRRel: true, PR: 5, Tag: 6, Offset: 0}.Encode(),
			// return through the caller's saved return point: *pr6|0
			insPRInd(isa.RET, 6, retSlot),
		}))
	svcSeg, _ := img.Segno("service")
	if err := img.WriteWord("main", 3, indWord(0, svcSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	buf := &trace.Buffer{}
	img.CPU.SetTracer(buf)
	run(t, img, 4, "main", 0)
	c := img.CPU
	if c.A.Int64() != 42 {
		t.Error("service body did not run")
	}
	if c.IPR.Ring != 4 {
		t.Errorf("final ring %d, want 4", c.IPR.Ring)
	}
	if traps := buf.OfKind(trace.KindTrap); len(traps) != 0 {
		t.Errorf("round trip trapped: %v", traps)
	}
	if switches := buf.OfKind(trace.KindRingSwitch); len(switches) != 2 {
		t.Errorf("ring switches = %d, want 2 (down, up)", len(switches))
	}
	// PR6 restored with the caller's ring (≥ 4), so the callee could
	// not have returned below ring 4.
	if c.PR[6].Ring < 4 {
		t.Errorf("restored PR6 ring %d", c.PR[6].Ring)
	}
}

// ---- traps, privileged instructions, save/restore ----

func TestPrivilegedOutsideRing0Traps(t *testing.T) {
	for _, op := range []isa.Opcode{isa.LDBR, isa.SIO, isa.RETT, isa.SVC} {
		img := build(t, image.Config{},
			userProc("main", 4, 0, []word.Word{
				ins(op, 0),
				ins(isa.HLT, 0),
			}))
		tr := runExpectTrap(t, img, 4, "main", 0, trap.PrivilegedViolation)
		if tr.Ring != 4 {
			t.Errorf("%v: trap ring %d", op, tr.Ring)
		}
	}
}

func TestLDBRInRing0(t *testing.T) {
	img := build(t, image.Config{},
		image.SegmentDef{
			Name: "sup", Words: []word.Word{
				insPR(isa.LDBR, 2, 0),
				ins(isa.HLT, 0),
			},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		dataSeg("dbrimage", 0, 0, 4))
	dseg, _ := img.Segno("dbrimage")
	newDBR := seg.DBR{Addr: 0, Bound: 100, Stack: 8}
	even, odd := newDBR.Encode()
	if err := img.WriteWord("dbrimage", 0, even); err != nil {
		t.Fatal(err)
	}
	if err := img.WriteWord("dbrimage", 1, odd); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(0, "sup", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 0, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if img.CPU.DBR() != newDBR {
		t.Errorf("DBR = %+v", img.CPU.DBR())
	}
}

func TestTrapHandlerResume(t *testing.T) {
	// A handler that fixes the problem (makes the data segment
	// readable) and resumes the disrupted instruction.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 0),
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "data", Words: []word.Word{word.FromInt(5)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}, // unreadable from ring 4
		})
	dseg, _ := img.Segno("data")
	handled := 0
	img.CPU.Handler = cpu.TrapHandlerFunc(func(c *cpu.CPU, tr *trap.Trap) cpu.TrapAction {
		handled++
		// Ring-0 supervisor: widen the read bracket, then resume the
		// disrupted instruction.
		sdw, err := c.Table().Fetch(dseg)
		if err != nil {
			return cpu.TrapHalt
		}
		sdw.Brackets.R2, sdw.Brackets.R3 = 5, 5
		if err := c.Table().Store(dseg, sdw); err != nil {
			return cpu.TrapHalt
		}
		if err := c.RestoreSaved(); err != nil {
			return cpu.TrapHalt
		}
		return cpu.TrapResume
	})
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Errorf("handler ran %d times", handled)
	}
	if img.CPU.A.Int64() != 5 {
		t.Error("disrupted instruction did not resume")
	}
	if img.CPU.SavedDepth() != 0 {
		t.Error("save stack not empty")
	}
}

func TestTrapSavesFullState(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 77),
			insPR(isa.STA, 2, 0), // will fault: no write permission
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "ro", Words: []word.Word{0},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		})
	dseg, _ := img.Segno("ro")
	var saved cpu.SavedState
	img.CPU.Handler = cpu.TrapHandlerFunc(func(c *cpu.CPU, tr *trap.Trap) cpu.TrapAction {
		saved = *c.PeekSaved()
		return cpu.TrapHalt
	})
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err == nil {
		t.Fatal("expected trap error")
	}
	if saved.A.Int64() != 77 {
		t.Errorf("saved A = %d", saved.A.Int64())
	}
	if saved.IPR.Wordno != 1 {
		t.Errorf("saved IPR wordno = %d, want 1 (the disrupted STA)", saved.IPR.Wordno)
	}
	if saved.Trap == nil || saved.Trap.Code != trap.AccessViolation {
		t.Errorf("saved trap: %v", saved.Trap)
	}
	if saved.PR[2].Segno != dseg {
		t.Errorf("saved PR2: %v", saved.PR[2])
	}
}

func TestUnhandledTrapHalts(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{word.Word(0)}))
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	_, err := img.CPU.Run(100)
	if err == nil {
		t.Fatal("no error from unhandled trap")
	}
	if !img.CPU.Halted {
		t.Error("machine not halted")
	}
	if err := img.CPU.Step(); err == nil {
		t.Error("step on halted machine succeeded")
	}
}

func TestRunStepLimit(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.TRA, 0), // infinite loop
		}))
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	reason, err := img.CPU.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if reason != cpu.StopLimit {
		t.Errorf("reason = %v", reason)
	}
	if img.CPU.Steps() != 50 {
		t.Errorf("steps = %d", img.CPU.Steps())
	}
}

func TestCyclesAccumulate(t *testing.T) {
	img := callImage(t)
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if img.CPU.Cycles == 0 {
		t.Error("no cycles charged")
	}
}

// ---- validation ablation (T5) ----

func TestValidationAblationSkipsRingChecks(t *testing.T) {
	opt := cpu.DefaultOptions()
	opt.Validate = false
	img, err := image.Build(image.Config{CPUOptions: &opt}, []image.SegmentDef{
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 0), // read above the read bracket
			ins(isa.HLT, 0),
		}),
		{
			Name: "supdata", Words: []word.Word{word.FromInt(13)},
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 1, R3: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	dseg, _ := img.Segno("supdata")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatalf("ablated machine still trapped: %v", err)
	}
	if img.CPU.A.Int64() != 13 {
		t.Error("read did not happen")
	}
}

func TestValidationAblationStillChecksBounds(t *testing.T) {
	opt := cpu.DefaultOptions()
	opt.Validate = false
	img, err := image.Build(image.Config{CPUOptions: &opt}, []image.SegmentDef{
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 100),
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err == nil {
		t.Fatal("bound violation not caught under ablation")
	}
}

// ---- properties ----

// TestPropertyPRRingInvariant: starting from a conforming state, after
// any executed instruction sequence every PRn.RING ≥ IPR.RING — the
// guarantee (Figure 9 discussion) that makes return schemes secure.
// Programs are random instruction words executed on a machine with a
// spread of segments; traps end a run early, which is fine.
func TestPropertyPRRingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	defs := []image.SegmentDef{
		userProc("p4", 4, 2, make([]word.Word, 64)),
		gatedProc("p1", 1, 5, 2, make([]word.Word, 64)),
		dataSeg("d45", 4, 5, 32),
		dataSeg("d01", 0, 1, 32),
	}
	for trial := 0; trial < 300; trial++ {
		img, err := image.Build(image.Config{MemWords: 1 << 16, MaxSegments: 32}, defs)
		if err != nil {
			t.Fatal(err)
		}
		// Fill p4 with random instruction words (random ops biased
		// toward defined opcodes).
		ops := isa.Opcodes()
		p4, _ := img.Segno("p4")
		for w := uint32(0); w < 64; w++ {
			ins := isa.Instruction{
				Op:     ops[rng.Intn(len(ops))],
				Ind:    rng.Intn(4) == 0,
				PRRel:  rng.Intn(2) == 0,
				PR:     uint8(rng.Intn(8)),
				Tag:    uint8(rng.Intn(9)),
				Offset: uint32(rng.Intn(64)),
			}
			sdw, _ := img.SDW(p4)
			_ = sdw
			if err := img.WriteWord("p4", w, ins.Encode()); err != nil {
				t.Fatal(err)
			}
		}
		if err := img.Start(4, "p4", 0); err != nil {
			t.Fatal(err)
		}
		c := img.CPU
		// Conforming start: every PR ring ≥ IPR ring.
		for i := range c.PR {
			c.PR[i].Ring = core.Ring(4 + rng.Intn(4))
			c.PR[i].Segno = uint32(rng.Intn(16))
			c.PR[i].Wordno = uint32(rng.Intn(32))
		}
		for step := 0; step < 200; step++ {
			if c.Halted {
				break
			}
			if err := c.Step(); err != nil {
				break // trap ended the run; invariant still checked below
			}
			for i := range c.PR {
				if c.PR[i].Ring < c.IPR.Ring {
					t.Fatalf("trial %d step %d: PR%d ring %d < IPR ring %d",
						trial, step, i, c.PR[i].Ring, c.IPR.Ring)
				}
			}
		}
	}
}

// TestPropertyRandomProgramsNeverPanic is a smoke fuzz: arbitrary words
// executed as code either run, trap, or halt — the simulator never
// panics and never breaches physical memory.
func TestPropertyRandomProgramsNeverPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		code := make([]word.Word, 32)
		for i := range code {
			code[i] = word.FromUint64(rng.Uint64())
		}
		img, err := image.Build(image.Config{MemWords: 1 << 16, MaxSegments: 32}, []image.SegmentDef{
			userProc("p", 4, 0, code),
			dataSeg("d", 4, 5, 32),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := img.Start(4, "p", 0); err != nil {
			t.Fatal(err)
		}
		_, _ = img.CPU.Run(500) // any outcome is acceptable; no panic
	}
}

// TestPropertyRingChangesOnlyViaCallReturn: over random programs, every
// decrease of the ring of execution coincides with a CALL instruction
// and every increase with a RETURN — no other instruction can move the
// ring (traps are excluded by running handler-less, where any trap ends
// the run).
func TestPropertyRingChangesOnlyViaCallReturn(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	ops := isa.Opcodes()
	for trial := 0; trial < 200; trial++ {
		defs := []image.SegmentDef{
			userProc("p4", 4, 2, make([]word.Word, 64)),
			gatedProc("p1", 1, 5, 4, make([]word.Word, 64)),
			gatedProc("lib", 2, 7, 4, make([]word.Word, 64)),
			dataSeg("d", 4, 5, 32),
		}
		img, err := image.Build(image.Config{MemWords: 1 << 16, MaxSegments: 32}, defs)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"p4", "p1", "lib"} {
			for w := uint32(0); w < 64; w++ {
				ins := isa.Instruction{
					Op:     ops[rng.Intn(len(ops))],
					Ind:    rng.Intn(4) == 0,
					PRRel:  rng.Intn(2) == 0,
					PR:     uint8(rng.Intn(8)),
					Tag:    uint8(rng.Intn(9)),
					Offset: uint32(rng.Intn(64)),
				}
				if err := img.WriteWord(name, w, ins.Encode()); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := img.Start(4, "p4", 0); err != nil {
			t.Fatal(err)
		}
		c := img.CPU
		for i := range c.PR {
			c.PR[i].Ring = core.Ring(4 + rng.Intn(4))
			c.PR[i].Segno = uint32(rng.Intn(12))
			c.PR[i].Wordno = uint32(rng.Intn(32))
		}
		for step := 0; step < 300 && !c.Halted; step++ {
			prev := c.IPR.Ring
			// Peek at the instruction about to execute.
			sdw, err := img.SDW(c.IPR.Segno)
			if err != nil || !sdw.Present || c.IPR.Wordno >= sdw.Bound {
				break
			}
			raw, err := img.Mem.Read(int(sdw.Addr + c.IPR.Wordno))
			if err != nil {
				t.Fatal(err)
			}
			op := isa.DecodeInstruction(raw).Op
			if err := c.Step(); err != nil {
				break // trap ended the run
			}
			switch {
			case c.IPR.Ring < prev && op != isa.CALL:
				t.Fatalf("trial %d step %d: ring lowered %d->%d by %v",
					trial, step, prev, c.IPR.Ring, op)
			case c.IPR.Ring > prev && op != isa.RET:
				t.Fatalf("trial %d step %d: ring raised %d->%d by %v",
					trial, step, prev, c.IPR.Ring, op)
			}
		}
	}
}
