// Package cpu simulates the processor described in the paper's Figures
// 3-9: a segmented-addressing machine whose every virtual memory
// reference is validated against the ring brackets in the segment
// descriptor word, and whose CALL and RETURN instructions perform
// downward calls and upward returns — gate checking, ring switching,
// stack base formation, PR ring raising — entirely "in hardware",
// without supervisor intervention.
//
// The division of labour with internal/core: core holds the pure
// validation and decision logic (what the paper's flowcharts decide);
// cpu holds the machine state and the instruction cycle that drives
// those decisions (when the flowcharts run and what happens on each
// exit arc).
package cpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/seg"
	"repro/internal/trace"
	"repro/internal/trap"
	"repro/internal/word"
)

// Pointer is a ring-qualified two-part address: the format shared by
// the instruction pointer register (IPR), the pointer registers
// (PR0-PR7) and the internal temporary pointer register (TPR).
type Pointer struct {
	Ring   core.Ring
	Segno  uint32
	Wordno uint32
}

func (p Pointer) String() string {
	return fmt.Sprintf("(%o|%o) ring %d", p.Segno, p.Wordno, p.Ring)
}

// Indirect converts the pointer to an indirect word with the same ring,
// segment and word numbers (used by SPR).
func (p Pointer) Indirect() isa.Indirect {
	return isa.Indirect{Ring: p.Ring, Segno: p.Segno, Wordno: p.Wordno}
}

// Indicators are the condition flags set by loads, arithmetic and
// compares, and tested by the conditional transfer instructions.
type Indicators struct {
	Zero  bool
	Neg   bool
	Carry bool
}

// StackRule selects how CALL forms the stack segment number for a new
// ring of execution (Figure 8 and its footnote).
type StackRule int

const (
	// StackSegnoIsRing is the body-text rule: "the segment number of
	// the appropriate stack segment is the same as the new ring
	// number". Segments 0-7 are the stacks.
	StackSegnoIsRing StackRule = iota
	// StackDBRBase is the footnote rule: the new stack segment number
	// is DBR.Stack plus the new ring number, allowing flexible stack
	// segment assignment (preserving stack history after an error,
	// forked stacks).
	StackDBRBase
)

// Pointer register conventions. The paper fixes PR0 ("chosen
// arbitrarily") as the register CALL loads with the new stack base;
// software conventions in this codebase use PR6 as the stack frame
// pointer and PR1 as the argument list pointer ("PRa").
const (
	StackBasePR = 0
	StackPtrPR  = 6
	ArgListPR   = 1
)

// TrapAction is a trap handler's verdict.
type TrapAction int

const (
	// TrapHalt stops the processor; Run returns the trap as its error.
	TrapHalt TrapAction = iota
	// TrapResume continues execution at the current IPR, which the
	// handler has arranged (typically by RestoreSaved, possibly after
	// editing the saved state).
	TrapResume
)

// TrapHandler is the software the processor transfers to on a trap. In
// this simulator the ring-0 supervisor core is implemented as a Go
// TrapHandler rather than as simulated ring-0 assembly; the substitution
// is recorded in DESIGN.md. The handler runs conceptually in ring 0: it
// has unrestricted access to machine state, exactly as ring-0 code
// would.
type TrapHandler interface {
	HandleTrap(c *CPU, t *trap.Trap) TrapAction
}

// TrapHandlerFunc adapts a function to TrapHandler.
type TrapHandlerFunc func(c *CPU, t *trap.Trap) TrapAction

// HandleTrap calls f.
func (f TrapHandlerFunc) HandleTrap(c *CPU, t *trap.Trap) TrapAction { return f(c, t) }

// SavedState is the processor state captured when a trap occurs, in the
// order the paper implies: everything needed for "the state of the
// processor at the time of the trap to be restored later if
// appropriate, resuming the disrupted instruction". IPR points AT the
// disrupted instruction.
type SavedState struct {
	IPR  Pointer
	TPR  Pointer
	PR   [8]Pointer
	A, Q word.Word
	X    [8]uint32
	Ind  Indicators
	Trap *trap.Trap
}

// Options configures a CPU.
type Options struct {
	// Validate enables ring/flag access validation. Switching it off is
	// the T5 ablation: address translation still checks presence and
	// bounds (the simulator could not function otherwise), but all
	// bracket, flag and gate checks are skipped.
	Validate bool
	// StackRule selects the CALL stack segment numbering rule.
	StackRule StackRule
	// MaxIndirections bounds chained indirect words per effective
	// address calculation.
	MaxIndirections int
	// SDWCache enables the associative memory for segment descriptor
	// words (see internal/mmu). Off by default: every reference then
	// reads the descriptor segment, and no invalidation discipline is
	// required of supervisor software.
	SDWCache bool
	// SDWCacheSize is the number of associative registers when SDWCache
	// is on; zero means DefaultSDWCacheSize. It must be a power of two
	// (the cache is direct-mapped on segno low bits); New panics
	// otherwise.
	SDWCacheSize int
	// Costs is the cycle cost model; zero value means DefaultCosts.
	Costs Costs
}

// DefaultSDWCacheSize is the number of SDW associative registers when
// Options.SDWCache is on and no explicit size is given.
const DefaultSDWCacheSize = 32

// DefaultOptions returns the standard configuration: validation on,
// body-text stack rule, indirection chain limit 8.
func DefaultOptions() Options {
	return Options{
		Validate:        true,
		StackRule:       StackSegnoIsRing,
		MaxIndirections: 8,
		Costs:           DefaultCosts(),
	}
}

// CPU is the simulated processor plus its attached core memory.
type CPU struct {
	// MMU is the processor's memory management unit: the single
	// authoritative path from two-part address to core word. It owns the
	// DBR, the SDW associative memory and all access validation; the CPU
	// proper holds only registers and the instruction cycle.
	MMU *mmu.MMU

	IPR Pointer
	TPR Pointer
	PR  [8]Pointer
	A   word.Word
	Q   word.Word
	X   [8]uint32
	Ind Indicators

	// Cycles is the running simulated cycle count. Supervisor software
	// (Go trap handlers) add their own path costs via AddCycles so the
	// hardware/software comparison benches see both sides.
	Cycles uint64

	Opt Options

	Handler TrapHandler

	// tracer is the installed trace sink (mmu.Disabled when off); the
	// same sink is installed on the MMU so validation events and
	// instruction-cycle events interleave in one stream.
	tracer mmu.Sink

	// Services dispatches SVC instructions; nil means SVC raises an
	// unhandled Supervisor trap.
	Services ServiceTable

	// IO receives SIO instructions; nil means SIO is a validated no-op.
	IO IODevice

	Halted bool

	saved []SavedState

	// Memory-mode trap handling (ConfigureTrapVector): when set and no
	// Go Handler is attached, traps dump a frame into trapSaveSeg and
	// transfer to trapVector in ring 0.
	trapVector  *Pointer
	trapSaveSeg uint32

	// interrupts is the pending asynchronous-condition queue, delivered
	// between instructions (see interrupt.go).
	interrupts []Interrupt

	// steps counts executed instructions (for RunFor limits and traces).
	steps uint64
}

// ServiceTable dispatches supervisor services invoked by the SVC
// instruction (ring 0 only). It returns a TrapAction like a handler: the
// service has full machine access.
type ServiceTable interface {
	Service(c *CPU, n uint32) TrapAction
}

// IODevice receives SIO instructions. The control-block address has
// already been validated and translated; the device may read it via the
// CPU's memory.
type IODevice interface {
	StartIO(c *CPU, iocbSeg, iocbWord uint32) error
}

// New returns a CPU attached to storage m with the given options. It
// panics if Options.SDWCacheSize is not a power of two.
func New(m mem.Store, opt Options) *CPU {
	if opt.MaxIndirections <= 0 {
		opt.MaxIndirections = 8
	}
	if opt.Costs == (Costs{}) {
		opt.Costs = DefaultCosts()
	}
	size := 0
	if opt.SDWCache {
		size = opt.SDWCacheSize
		if size == 0 {
			size = DefaultSDWCacheSize
		}
	}
	c := &CPU{Opt: opt, tracer: mmu.Disabled}
	c.MMU = mmu.New(m, mmu.Options{
		Validate:  opt.Validate,
		CacheSize: size,
		Costs:     mmu.Costs{Validate: opt.Costs.Validate, SDWMiss: opt.Costs.SDWMiss},
	})
	c.MMU.AttachCycles(&c.Cycles)
	return c
}

// Mem returns the core store beneath the MMU.
func (c *CPU) Mem() mem.Store { return c.MMU.Mem }

// DBR returns the descriptor base register.
func (c *CPU) DBR() seg.DBR { return c.MMU.DBR() }

// SetDBR loads the descriptor base register. The MMU flushes its SDW
// associative memory as part of the load — a different descriptor
// segment invalidates every cached translation.
func (c *CPU) SetDBR(d seg.DBR) { c.MMU.SetDBR(d) }

// SetTracer installs the trace sink on the processor and its MMU; nil
// disables tracing.
func (c *CPU) SetTracer(s mmu.Sink) {
	if s == nil {
		s = mmu.Disabled
	}
	c.tracer = s
	c.MMU.SetSink(s)
}

// Tracer returns the installed trace sink (mmu.Disabled when tracing is
// off, never nil for a CPU built by New).
func (c *CPU) Tracer() mmu.Sink { return c.tracer }

// tracing reports whether trace events should be constructed. Callers
// use it to skip detail-string formatting entirely when tracing is off,
// keeping the step path allocation-free.
func (c *CPU) tracing() bool { return c.tracer != nil && c.tracer.Enabled() }

// AddCycles charges simulated supervisor path length to the machine.
func (c *CPU) AddCycles(n uint64) { c.Cycles += n }

// Steps reports the number of instructions executed so far.
func (c *CPU) Steps() uint64 { return c.steps }

// SavedDepth reports the depth of the trap save stack.
func (c *CPU) SavedDepth() int { return len(c.saved) }

// PeekSaved returns the most recent saved state for inspection or
// editing by supervisor software, or nil if none.
func (c *CPU) PeekSaved() *SavedState {
	if len(c.saved) == 0 {
		return nil
	}
	return &c.saved[len(c.saved)-1]
}

// RestoreSaved pops the most recent saved state into the live registers
// — the special instruction the paper mentions for resuming a disrupted
// instruction (RETT executes this; Go supervisor code calls it
// directly).
func (c *CPU) RestoreSaved() error {
	if len(c.saved) == 0 {
		return fmt.Errorf("cpu: restore with empty save stack")
	}
	s := c.saved[len(c.saved)-1]
	c.saved = c.saved[:len(c.saved)-1]
	c.IPR = s.IPR
	c.TPR = s.TPR
	c.PR = s.PR
	c.A, c.Q = s.A, s.Q
	c.X = s.X
	c.Ind = s.Ind
	c.Cycles += c.Opt.Costs.Restore
	return nil
}

// DropSaved discards the most recent saved state (supervisor redirected
// execution rather than resuming).
func (c *CPU) DropSaved() error {
	if len(c.saved) == 0 {
		return fmt.Errorf("cpu: drop with empty save stack")
	}
	c.saved = c.saved[:len(c.saved)-1]
	return nil
}

// record emits a trace event if tracing is attached.
func (c *CPU) record(k trace.Kind, ring core.Ring, segno, wordno uint32, detail string) {
	if !c.tracing() {
		return
	}
	c.tracer.Record(trace.Event{Kind: k, Ring: ring, Segno: segno, Wordno: wordno, Detail: detail})
}

// Table returns the descriptor segment accessor for the current DBR.
func (c *CPU) Table() seg.Table { return c.MMU.Table() }

// fetchSDW retrieves the SDW for segno through the MMU's associative
// memory. The error return is a physical memory fault (simulator
// integrity problem), never an access issue — absent segments come back
// with Present false and the callers raise the architectural trap.
func (c *CPU) fetchSDW(segno uint32) (seg.SDW, error) { return c.MMU.FetchSDW(segno) }

// readVirtual reads (segno|wordno); the access must already be
// validated. Bounds were checked architecturally, so errors here are
// simulator integrity faults.
func (c *CPU) readVirtual(s seg.SDW, wordno uint32) (word.Word, error) {
	return c.MMU.Read(s, wordno)
}

// writeVirtual writes (segno|wordno); the access must already be
// validated.
func (c *CPU) writeVirtual(s seg.SDW, wordno uint32, w word.Word) error {
	return c.MMU.Write(s, wordno, w)
}

// StopReason reports why Run returned.
type StopReason int

const (
	// StopHalt: the HLT instruction executed.
	StopHalt StopReason = iota
	// StopTrap: an unhandled (or handler-halted) trap stopped the machine.
	StopTrap
	// StopLimit: the step limit was reached.
	StopLimit
)

func (r StopReason) String() string {
	switch r {
	case StopHalt:
		return "halt"
	case StopTrap:
		return "trap"
	case StopLimit:
		return "step limit"
	default:
		return fmt.Sprintf("StopReason(%d)", int(r))
	}
}

// Run executes instructions until halt, an unrecovered trap, an
// internal simulator error, or limit steps (limit <= 0 means no limit).
// The returned error is non-nil for traps (a *trap.Trap) and simulator
// faults; a clean HLT returns (StopHalt, nil).
func (c *CPU) Run(limit int) (StopReason, error) {
	executed := 0
	for !c.Halted {
		if limit > 0 && executed >= limit {
			return StopLimit, nil
		}
		if err := c.Step(); err != nil {
			return StopTrap, err
		}
		executed++
	}
	return StopHalt, nil
}

// setIndicatorsFromA updates Zero and Neg from the accumulator.
func (c *CPU) setIndicatorsFromA() {
	c.Ind.Zero = c.A.IsZero()
	c.Ind.Neg = c.A.IsNegative()
}

// setIndicatorsFrom updates Zero and Neg from an arbitrary word.
func (c *CPU) setIndicatorsFrom(w word.Word) {
	c.Ind.Zero = w.IsZero()
	c.Ind.Neg = w.IsNegative()
}
