package cpu_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/trap"
	"repro/internal/word"
)

// ---- hand-assembly helpers ----

func ins(op isa.Opcode, off uint32) word.Word {
	return isa.Instruction{Op: op, Offset: off}.Encode()
}

func insPR(op isa.Opcode, pr uint8, off uint32) word.Word {
	return isa.Instruction{Op: op, PRRel: true, PR: pr, Offset: off}.Encode()
}

func insInd(op isa.Opcode, off uint32) word.Word {
	return isa.Instruction{Op: op, Ind: true, Offset: off}.Encode()
}

func insPRInd(op isa.Opcode, pr uint8, off uint32) word.Word {
	return isa.Instruction{Op: op, Ind: true, PRRel: true, PR: pr, Offset: off}.Encode()
}

func insTag(op isa.Opcode, tag uint8, off uint32) word.Word {
	return isa.Instruction{Op: op, Tag: tag, Offset: off}.Encode()
}

func indWord(ring core.Ring, segno, wordno uint32, further bool) word.Word {
	return isa.Indirect{Ring: ring, Segno: segno, Wordno: wordno, Further: further}.Encode()
}

// userProc returns a segment definition for a procedure executing in
// exactly ring r, with its gates.
func userProc(name string, r core.Ring, gates uint32, code []word.Word) image.SegmentDef {
	return image.SegmentDef{
		Name: name, Words: code,
		Read: true, Execute: true,
		Brackets: core.Brackets{R1: r, R2: r, R3: r},
		Gates:    gates,
	}
}

// dataSeg returns a read/write data segment with the Figure 1 style
// brackets: writable through wTop, readable through rTop.
func dataSeg(name string, wTop, rTop core.Ring, size int) image.SegmentDef {
	return image.SegmentDef{
		Name: name, Size: size,
		Read: true, Write: true,
		Brackets: core.Brackets{R1: wTop, R2: rTop, R3: rTop},
	}
}

// build constructs an image or fails the test.
func build(t *testing.T, cfg image.Config, defs ...image.SegmentDef) *image.Image {
	t.Helper()
	img, err := image.Build(cfg, defs)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// run starts at ring/seg/word and runs to completion, expecting a clean
// halt.
func run(t *testing.T, img *image.Image, ring core.Ring, segName string, wordno uint32) {
	t.Helper()
	if err := img.Start(ring, segName, wordno); err != nil {
		t.Fatal(err)
	}
	reason, err := img.CPU.Run(10000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if reason != cpu.StopHalt {
		t.Fatalf("stopped for %v, want halt", reason)
	}
}

// runExpectTrap runs and expects the machine to stop on a trap with the
// given code, returning the trap.
func runExpectTrap(t *testing.T, img *image.Image, ring core.Ring, segName string, wordno uint32, code trap.Code) *trap.Trap {
	t.Helper()
	if err := img.Start(ring, segName, wordno); err != nil {
		t.Fatal(err)
	}
	_, err := img.CPU.Run(10000)
	if err == nil {
		t.Fatalf("expected %v trap, ran clean", code)
	}
	var tr *trap.Trap
	if !errors.As(err, &tr) {
		t.Fatalf("error is not a trap: %v", err)
	}
	if tr.Code != code {
		t.Fatalf("trap code %v, want %v (trap: %v)", tr.Code, code, tr)
	}
	return tr
}

// ---- data path ----

func TestImmediatesAndArithmetic(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 10),
			ins(isa.AIA, 5),
			ins(isa.ALS, 1), // A = 30
			ins(isa.HLT, 0),
		}))
	run(t, img, 4, "main", 0)
	if got := img.CPU.A.Int64(); got != 30 {
		t.Errorf("A = %d, want 30", got)
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 0o1234),
			insPR(isa.STA, 2, 3), // store via PR2 into data+3
			ins(isa.LIA, 0),
			insPR(isa.LDA, 2, 3), // load back
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 16))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := img.CPU.A.Int64(); got != 0o1234 {
		t.Errorf("A = %o, want 1234", got)
	}
	w, err := img.ReadWord("data", 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int64() != 0o1234 {
		t.Errorf("data+3 = %v", w)
	}
}

func TestArithmeticOps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 12),
			insPR(isa.SBA, 2, 0), // A = 12 - 5 = 7
			insPR(isa.ADA, 2, 0), // A = 12
			insPR(isa.ANA, 2, 1), // A = 12 & 10 = 8
			insPR(isa.ORA, 2, 0), // A = 8 | 5 = 13
			insPR(isa.ERA, 2, 1), // A = 13 ^ 10 = 7
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "data", Words: []word.Word{word.FromInt(5), word.FromInt(10)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		})
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := img.CPU.A.Int64(); got != 7 {
		t.Errorf("A = %d, want 7", got)
	}
}

func TestCompareAndConditionalTransfers(t *testing.T) {
	// Count down from 3 using X0 in memory; verify loop executes 3 times.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 3),
			// loop (word 1):
			insPR(isa.AOS, 2, 0),   // data[0]++
			ins(isa.AIA, 0o777777), // A-- (add -1)
			ins(isa.TNZ, 1),        // loop while A != 0
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 4))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	w, _ := img.ReadWord("data", 0)
	if w.Int64() != 3 {
		t.Errorf("counter = %d, want 3", w.Int64())
	}
}

func TestIndexRegisters(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insTag(isa.LIX, 3, 2), // X3 := 2
			isa.Instruction{Op: isa.LDA, PRRel: true, PR: 2, Tag: 4, Offset: 0}.Encode(), // A := data[0 + X3]
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "data", Words: []word.Word{7, 8, 9},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		})
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := img.CPU.A.Int64(); got != 9 {
		t.Errorf("A = %d, want 9", got)
	}
}

func TestLDXSTX(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insTag(isa.LDX, 1, 0).Deposit(25, 1, 1).Deposit(22, 3, 2), // ldx1 pr2|0
			insTag(isa.STX, 1, 1).Deposit(25, 1, 1).Deposit(22, 3, 2), // stx1 pr2|1
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 4))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if err := img.WriteWord("data", 0, word.FromInt(0o4321)); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := img.CPU.X[1]; got != 0o4321 {
		t.Errorf("X1 = %o", got)
	}
	w, _ := img.ReadWord("data", 1)
	if w.Lower() != 0o4321 {
		t.Errorf("stored X = %o", w.Lower())
	}
}

// ---- Figure 4: fetch validation ----

func TestExecuteDataSegmentTraps(t *testing.T) {
	img := build(t, image.Config{},
		dataSeg("data", 4, 5, 8),
		userProc("main", 4, 0, []word.Word{ins(isa.HLT, 0)}))
	tr := runExpectTrap(t, img, 4, "data", 0, trap.AccessViolation)
	if tr.Violation == nil || tr.Violation.Kind != core.ViolationNoExecute {
		t.Errorf("violation: %v", tr.Violation)
	}
}

func TestExecuteOutsideBracketTraps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{ins(isa.HLT, 0)}))
	// Procedure executes only in ring 4; running it in ring 5 faults.
	tr := runExpectTrap(t, img, 5, "main", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationExecuteBracket {
		t.Errorf("violation: %v", tr.Violation)
	}
	// And in ring 3 (below the bracket) as well: the paper's
	// accidental-low-ring-execution protection.
	tr = runExpectTrap(t, img, 3, "main", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationExecuteBracket {
		t.Errorf("violation: %v", tr.Violation)
	}
}

func TestFetchBeyondBoundTraps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{ins(isa.NOP, 0)}))
	// Fall off the end of the one-word segment.
	tr := runExpectTrap(t, img, 4, "main", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationBound {
		t.Errorf("violation: %v", tr.Violation)
	}
}

func TestMissingSegmentTraps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 0),
			ins(isa.HLT, 0),
		}))
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: 200, Wordno: 0} // no such segment
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Code != trap.MissingSegment {
		t.Fatalf("err = %v", err)
	}
}

func TestIllegalOpcodeTraps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{word.Word(0)})) // opcode 0
	runExpectTrap(t, img, 4, "main", 0, trap.IllegalOpcode)
}

// ---- Figure 6: operand validation ----

func TestWriteBracketEnforced(t *testing.T) {
	// data writable through ring 3 only; ring 4 write must fault.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPR(isa.STA, 2, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 3, 5, 8))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Code != trap.AccessViolation ||
		tr.Violation.Kind != core.ViolationWriteBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestReadBracketEnforced(t *testing.T) {
	// Supervisor data: readable only through ring 1.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("supdata", 0, 1, 8))
	dseg, _ := img.Segno("supdata")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation == nil ||
		tr.Violation.Kind != core.ViolationReadBracket {
		t.Fatalf("err = %v", err)
	}
}

func TestOperandBoundEnforced(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 100), // beyond 8-word segment
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 8))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation.Kind != core.ViolationBound {
		t.Fatalf("err = %v", err)
	}
}

// ---- Figure 5: effective ring via PR and indirect words ----

func TestPRRingRaisesEffectiveRing(t *testing.T) {
	// Ring-1 procedure reads through a PR whose ring field is 5; the
	// data segment is readable only through ring 3, so the reference is
	// validated in ring 5 and must fault — even though ring 1 itself
	// could read the segment. This is exactly how a called procedure is
	// prevented from being tricked into reading what its caller could
	// not.
	img := build(t, image.Config{},
		userProc("gatekeeper", 1, 0, []word.Word{
			insPR(isa.LDA, 1, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("protected", 1, 3, 8))
	dseg, _ := img.Segno("protected")
	if err := img.Start(1, "gatekeeper", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[1] = cpu.Pointer{Ring: 5, Segno: dseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation == nil ||
		tr.Violation.Kind != core.ViolationReadBracket {
		t.Fatalf("err = %v", err)
	}
	if tr.Violation.Ring != 5 {
		t.Errorf("validated in ring %d, want 5", tr.Violation.Ring)
	}
}

func TestPRRingPermitsWhenInBracket(t *testing.T) {
	// Same setup but data readable through ring 5: the raised effective
	// ring still validates.
	img := build(t, image.Config{},
		userProc("gatekeeper", 1, 0, []word.Word{
			insPR(isa.LDA, 1, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("shared", 1, 5, 8))
	dseg, _ := img.Segno("shared")
	if err := img.Start(1, "gatekeeper", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[1] = cpu.Pointer{Ring: 5, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
}

func TestIndirectWordRingRaisesEffectiveRing(t *testing.T) {
	// The argument-list indirect word carries ring 5; the final operand
	// reference must be validated in ring 5.
	img := build(t, image.Config{},
		userProc("callee", 1, 0, []word.Word{
			insPRInd(isa.LDA, 1, 0), // lda *pr1|0
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{ // argument list, writable by user rings
			Name: "args", Size: 4,
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 5, R2: 5, R3: 5},
		},
		dataSeg("secret", 1, 3, 8))
	argSeg, _ := img.Segno("args")
	secretSeg, _ := img.Segno("secret")
	// Argument indirect word forged to point at the secret, with a low
	// ring field (0): the container's write-bracket top (5) must
	// dominate.
	if err := img.WriteWord("args", 0, indWord(0, secretSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(1, "callee", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[1] = cpu.Pointer{Ring: 1, Segno: argSeg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation == nil ||
		tr.Violation.Kind != core.ViolationReadBracket {
		t.Fatalf("forged indirect word not caught: err = %v", err)
	}
	if tr.Violation.Ring != 5 {
		t.Errorf("validated in ring %d, want 5 (container write-bracket top)", tr.Violation.Ring)
	}
}

func TestChainedIndirection(t *testing.T) {
	// ind0 -> ind1 -> data, all in low-write-bracket segments; rings
	// accumulate correctly and the final read succeeds.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.LDA, 2), // lda *main|2 — indirect words in own (R1=4) segment
			ins(isa.HLT, 0),
			0, // word 2: filled below
			0, // word 3
		}),
		image.SegmentDef{
			Name: "data", Words: []word.Word{word.FromInt(99)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		})
	mainSeg, _ := img.Segno("main")
	dataSeg, _ := img.Segno("data")
	if err := img.WriteWord("main", 2, indWord(0, mainSeg, 3, true)); err != nil {
		t.Fatal(err)
	}
	if err := img.WriteWord("main", 3, indWord(0, dataSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	run(t, img, 4, "main", 0)
	if got := img.CPU.A.Int64(); got != 99 {
		t.Errorf("A = %d, want 99", got)
	}
}

func TestIndirectLoopTraps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.LDA, 2),
			ins(isa.HLT, 0),
			0, // word 2: points at itself, further set
		}))
	mainSeg, _ := img.Segno("main")
	if err := img.WriteWord("main", 2, indWord(0, mainSeg, 2, true)); err != nil {
		t.Fatal(err)
	}
	runExpectTrap(t, img, 4, "main", 0, trap.IndirectLimit)
}

func TestIndirectWordReadValidated(t *testing.T) {
	// The indirect word itself lives in a segment unreadable from ring
	// 4: retrieving it must fault before anything else happens.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPRInd(isa.LDA, 2, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("supargs", 0, 1, 4))
	aseg, _ := img.Segno("supargs")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: aseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation == nil ||
		tr.Violation.Kind != core.ViolationReadBracket {
		t.Fatalf("err = %v", err)
	}
}

// ---- EAP / SPR / STIC ----

func TestEAPLoadsPointerWithEffectiveRing(t *testing.T) {
	// EAP through an argument-list indirect word must deposit the
	// raised effective ring into the PR (the paper's array-argument
	// pattern).
	img := build(t, image.Config{},
		userProc("callee", 1, 0, []word.Word{
			isa.Instruction{Op: isa.EAP, Ind: true, PRRel: true, PR: 1, Tag: 3, Offset: 0}.Encode(), // eap3 *pr1|0
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "args", Size: 4, Read: true, Write: true,
			Brackets: core.Brackets{R1: 5, R2: 5, R3: 5},
		},
		dataSeg("arr", 5, 5, 16))
	argSeg, _ := img.Segno("args")
	arrSeg, _ := img.Segno("arr")
	if err := img.WriteWord("args", 0, indWord(4, arrSeg, 7, false)); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(1, "callee", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[1] = cpu.Pointer{Ring: 4, Segno: argSeg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	pr3 := img.CPU.PR[3]
	if pr3.Segno != arrSeg || pr3.Wordno != 7 {
		t.Errorf("PR3 = %v", pr3)
	}
	// max(callee ring 1, PR1 ring 4, IND ring 4, args R1=5) = 5.
	if pr3.Ring != 5 {
		t.Errorf("PR3.Ring = %d, want 5", pr3.Ring)
	}
}

func TestSPRStoresIndirectWord(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			isa.Instruction{Op: isa.SPR, PRRel: true, PR: 2, Tag: 6, Offset: 1}.Encode(), // spr6 pr2|1
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 8))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	img.CPU.PR[6] = cpu.Pointer{Ring: 5, Segno: 0o33, Wordno: 0o444}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	w, _ := img.ReadWord("data", 1)
	ind := isa.DecodeIndirect(w)
	if ind.Ring != 5 || ind.Segno != 0o33 || ind.Wordno != 0o444 || ind.Further {
		t.Errorf("stored indirect: %+v", ind)
	}
}

func TestSTICStoresReturnPoint(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			isa.Instruction{Op: isa.STIC, PRRel: true, PR: 2, Tag: 1, Offset: 0}.Encode(), // stic pr2|0,+1
			ins(isa.NOP, 0), // the "call" the return point skips
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 8))
	dseg, _ := img.Segno("data")
	mainSeg, _ := img.Segno("main")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	w, _ := img.ReadWord("data", 0)
	ind := isa.DecodeIndirect(w)
	if ind.Ring != 4 || ind.Segno != mainSeg || ind.Wordno != 2 {
		t.Errorf("return point: %+v, want ring 4 (%o|2)", ind, mainSeg)
	}
}

// ---- Figure 7: transfers ----

func TestTransferWithinSegment(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.TRA, 2),
			ins(isa.HLT, 0), // skipped
			ins(isa.LIA, 77),
			ins(isa.HLT, 0),
		}))
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 77 {
		t.Error("transfer target not executed")
	}
}

func TestTransferCrossSegmentSameRing(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.TRA, 1),
			0, // indirect word to other|0
		}),
		userProc("other", 4, 0, []word.Word{
			ins(isa.LIA, 55),
			ins(isa.HLT, 0),
		}))
	otherSeg, _ := img.Segno("other")
	if err := img.WriteWord("main", 1, indWord(0, otherSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 55 {
		t.Error("cross-segment transfer failed")
	}
}

func TestTransferToNonExecutableTraps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insInd(isa.TRA, 1),
			0,
		}),
		dataSeg("data", 4, 5, 4))
	dseg, _ := img.Segno("data")
	if err := img.WriteWord("main", 1, indWord(0, dseg, 0, false)); err != nil {
		t.Fatal(err)
	}
	tr := runExpectTrap(t, img, 4, "main", 0, trap.AccessViolation)
	if tr.Violation.Kind != core.ViolationNoExecute {
		t.Errorf("violation: %v", tr.Violation)
	}
	// The advance check catches it while the transfer instruction is
	// still identifiable: IPR in the trap is the TRA itself.
	if tr.Wordno != 0 {
		t.Errorf("trap at wordno %d, want 0 (the transfer)", tr.Wordno)
	}
}

func TestTransferRingAlarm(t *testing.T) {
	// A transfer whose effective address was influenced by a higher
	// ring (PR ring 5 > IPR ring 4) is an access violation even if the
	// target is executable in ring 4.
	img := build(t, image.Config{},
		image.SegmentDef{
			Name: "main", Words: []word.Word{
				insPR(isa.TRA, 3, 0),
				ins(isa.HLT, 0),
			},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 5, R3: 5},
		})
	mainSeg, _ := img.Segno("main")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[3] = cpu.Pointer{Ring: 5, Segno: mainSeg, Wordno: 1}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation == nil ||
		tr.Violation.Kind != core.ViolationRingAlarm {
		t.Fatalf("err = %v", err)
	}
}

func TestConditionalTransferNotTaken(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 1),  // A=1, not zero
			ins(isa.TZE, 3),  // not taken
			ins(isa.LIA, 42), // executed
			ins(isa.HLT, 0),
			ins(isa.LIA, 13), // would be the TZE target
			ins(isa.HLT, 0),
		}))
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 42 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
}

func TestTMIandTPL(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 0o777777), // -1: negative
			ins(isa.TMI, 3),
			ins(isa.HLT, 0), // skipped
			ins(isa.LIA, 5), // word 3
			ins(isa.TPL, 6),
			ins(isa.HLT, 0),  // skipped
			ins(isa.LIA, 11), // word 6
			ins(isa.HLT, 0),
		}))
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 11 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
}
