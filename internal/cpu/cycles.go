package cpu

// Costs is the simulated cycle cost model. The absolute values are
// simulator conventions loosely scaled to the Honeywell 6000-series
// era (a memory reference costs about two cycles); what the experiments
// depend on is the structure: validation is free (integrated with the
// SDW examination address translation performs anyway — the paper's
// "very small additional costs in hardware logic"), ring-crossing CALL
// and RETURN cost the same few extra cycles as their same-ring forms,
// and a trap costs an order of magnitude more than a call.
type Costs struct {
	// Fetch is charged per instruction fetch, including the SDW
	// examination and bound check of address translation.
	Fetch uint64
	// EABase is charged once per effective address calculation.
	EABase uint64
	// Indirect is charged per indirect word retrieved.
	Indirect uint64
	// Operand is charged per operand read or write.
	Operand uint64
	// Exec is charged per instruction executed (register-to-register
	// work).
	Exec uint64
	// Transfer is charged by transfer instructions on top of Exec.
	Transfer uint64
	// Call is charged by CALL on top of Transfer: the gate comparison,
	// stack segment number formation and PR0 load.
	Call uint64
	// Return is charged by RETURN on top of Transfer: the PR ring
	// raising pass.
	Return uint64
	// Validate is charged per access validation. Zero by default: the
	// comparisons happen on SDW fields the translation logic has
	// already fetched. The T5 ablation makes the claim measurable in
	// host time; this knob makes it explorable in simulated time too.
	Validate uint64
	// Trap is charged per trap: state save plus the switch to ring 0.
	Trap uint64
	// Restore is charged per state restore (RETT or supervisor resume).
	Restore uint64
	// SDWMiss is charged per descriptor-segment read: on every SDW
	// fetch when the associative memory is off, and on misses only when
	// it is on. Zero by default so the base model folds descriptor
	// examination into Fetch/Operand; the T10 ablation raises it to
	// expose the associative memory's saving.
	SDWMiss uint64
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() Costs {
	return Costs{
		Fetch:    2,
		EABase:   1,
		Indirect: 2,
		Operand:  2,
		Exec:     1,
		Transfer: 1,
		Call:     3,
		Return:   3,
		Validate: 0,
		Trap:     40,
		Restore:  30,
		SDWMiss:  0,
	}
}
