package cpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/seg"
	"repro/internal/trace"
	"repro/internal/trap"
	"repro/internal/word"
)

// formEA performs the effective address calculation of Figure 5,
// leaving the result — including the effective ring — in TPR. It
// returns the SDW of the segment finally addressed (so the operand
// reference that follows does not fetch it again), or a trap if an
// indirect word could not be legally retrieved.
//
// The steps, as in the paper:
//
//  1. TPR.RING starts as the current ring of execution.
//  2. If the instruction addresses its operand relative to a pointer
//     register, TPR.RING := max(TPR.RING, PRn.RING) — a procedure can
//     thereby voluntarily assume the access capabilities of a higher
//     numbered ring (argument referencing), and can never hide the
//     influence of a higher ring on the address.
//  3. For each indirect word: the read of the indirect word itself is
//     validated against the current TPR.RING; then
//     TPR.RING := max(TPR.RING, IND.RING, SDW.R1 of the segment holding
//     the indirect word). SDW.R1 — the top of that segment's write
//     bracket — is the highest ring that could have forged the word.
//
// The non-nil *archTrap return carries architectural traps; the error
// return carries simulator integrity faults only.
func (c *CPU) formEA(ins isa.Instruction) (seg.SDW, *archTrap, error) {
	cost := &c.Opt.Costs
	c.Cycles += cost.EABase

	c.TPR.Ring = c.IPR.Ring
	if ins.PRRel {
		pr := c.PR[ins.PR]
		c.TPR.Segno = pr.Segno
		c.TPR.Wordno = word.Add18(pr.Wordno, word.SignExtend18(ins.Offset))
		c.TPR.Ring = core.EffectiveRingPR(c.TPR.Ring, pr.Ring)
		if c.tracing() {
			c.record(trace.KindEA, c.TPR.Ring, c.TPR.Segno, c.TPR.Wordno,
				fmt.Sprintf("pr%d-relative, effective ring %d", ins.PR, c.TPR.Ring))
		}
	} else {
		c.TPR.Segno = c.IPR.Segno
		c.TPR.Wordno = ins.Offset
	}

	// Index register modification (TAG), when the instruction class
	// uses TAG for indexing.
	if usesIndexTag(ins.Op) && ins.Tag != 0 {
		x := c.X[(ins.Tag-1)&7]
		c.TPR.Wordno = word.Add18(c.TPR.Wordno, word.SignExtend18(x))
	}

	indirect := ins.Ind
	depth := 0
	for {
		sdw, err := c.fetchSDW(c.TPR.Segno)
		if err != nil {
			return seg.SDW{}, nil, err
		}
		if !indirect {
			return sdw, nil, nil
		}
		if depth >= c.Opt.MaxIndirections {
			return seg.SDW{}, &archTrap{
				code:        trap.IndirectLimit,
				operandSeg:  c.TPR.Segno,
				operandWord: c.TPR.Wordno,
			}, nil
		}
		depth++

		// The capability to read the indirect word must be validated
		// before it is retrieved, with respect to TPR.RING at the time
		// it is encountered.
		if viol := c.MMU.CheckRead(sdw.View(), c.TPR.Segno, c.TPR.Wordno, c.TPR.Ring); viol != nil {
			return seg.SDW{}, c.violationTrap(viol), nil
		}
		raw, err := c.readVirtual(sdw, c.TPR.Wordno)
		if err != nil {
			return seg.SDW{}, nil, err
		}
		c.Cycles += cost.Indirect
		ind := isa.DecodeIndirect(raw)

		c.TPR.Ring = core.EffectiveRingIndirect(c.TPR.Ring, ind.Ring, sdw.Brackets.R1)
		c.TPR.Segno = ind.Segno
		c.TPR.Wordno = ind.Wordno
		if c.tracing() {
			c.record(trace.KindEA, c.TPR.Ring, c.TPR.Segno, c.TPR.Wordno,
				fmt.Sprintf("indirect via %v, effective ring %d", ind, c.TPR.Ring))
		}
		indirect = ind.Further
	}
}

// usesIndexTag reports whether the TAG field of op means index-register
// modification (as opposed to a register selector or displacement).
func usesIndexTag(op isa.Opcode) bool {
	switch op {
	case isa.EAP, isa.SPR, isa.STIC, isa.LDX, isa.STX, isa.LIX:
		return false
	}
	return true
}
