package cpu_test

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/seg"
	"repro/internal/trace"
	"repro/internal/trap"
	"repro/internal/word"
)

func TestAOSRequiresBothReadAndWrite(t *testing.T) {
	// AOS is a read-modify-write: with read allowed but write denied it
	// must fault and leave the operand unchanged.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			insPR(isa.AOS, 2, 0),
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "ro", Words: []word.Word{word.FromInt(10)},
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 1, R2: 5, R3: 5}, // readable at 4, writable only ≤1
		})
	dseg, _ := img.Segno("ro")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation.Kind != core.ViolationWriteBracket {
		t.Fatalf("err = %v", err)
	}
	w, _ := img.ReadWord("ro", 0)
	if w.Int64() != 10 {
		t.Errorf("operand changed to %d despite the violation", w.Int64())
	}
}

func TestEAPNeverValidates(t *testing.T) {
	// EAP forms the address of a word in a segment the ring cannot even
	// read — legal, because the operand is not referenced (Figure 7).
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			isa.Instruction{Op: isa.EAP, PRRel: true, PR: 2, Tag: 3, Offset: 5}.Encode(),
			ins(isa.HLT, 0),
		}),
		dataSeg("supdata", 0, 1, 16))
	dseg, _ := img.Segno("supdata")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatalf("EAP validated its operand: %v", err)
	}
	pr3 := img.CPU.PR[3]
	if pr3.Segno != dseg || pr3.Wordno != 5 || pr3.Ring != 4 {
		t.Errorf("PR3 = %v", pr3)
	}
}

func TestQRegisterOps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIQ, 0o1234),
			insPR(isa.STQ, 2, 0),
			ins(isa.LIQ, 0),
			insPR(isa.LDQ, 2, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 4))
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if img.CPU.Q.Int64() != 0o1234 {
		t.Errorf("Q = %o", img.CPU.Q.Int64())
	}
}

func TestCarryAndBorrowIndicators(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 0o777777), // -1 (all ones in low 18; sign-extended)
			insPR(isa.ADA, 2, 0),   // -1 + 1 = 0 with carry out
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "data", Words: []word.Word{word.FromInt(1)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		})
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	if !c.A.IsZero() || !c.Ind.Zero || !c.Ind.Carry {
		t.Errorf("A=%v zero=%v carry=%v", c.A, c.Ind.Zero, c.Ind.Carry)
	}
}

func TestDeepIndirectChainAtLimit(t *testing.T) {
	// A chain of exactly MaxIndirections (8) words is legal; one more
	// traps.
	buildChain := func(depth int) *image.Image {
		words := []word.Word{
			insInd(isa.LDA, 2),
			ins(isa.HLT, 0),
		}
		for i := 0; i < depth; i++ {
			words = append(words, 0) // chain placeholders at offsets 2..
		}
		words = append(words, word.FromInt(99)) // final operand
		img := build(t, image.Config{}, userProc("main", 4, 0, words))
		mainSeg, _ := img.Segno("main")
		for i := 0; i < depth; i++ {
			further := i < depth-1
			target := uint32(2 + i + 1)
			if !further {
				target = uint32(2 + depth) // the operand
			}
			if err := img.WriteWord("main", uint32(2+i), indWord(0, mainSeg, target, further)); err != nil {
				t.Fatal(err)
			}
		}
		return img
	}

	img := buildChain(8)
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 99 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}

	img = buildChain(9)
	runExpectTrap(t, img, 4, "main", 0, trap.IndirectLimit)
}

func TestRETTWithEmptySaveStack(t *testing.T) {
	img := build(t, image.Config{},
		image.SegmentDef{
			Name: "sup", Words: []word.Word{ins(isa.RETT, 0)},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		})
	runExpectTrap(t, img, 0, "sup", 0, trap.IllegalOpcode)
}

// TestLDBRSwitchesVirtualMemories is the paper's multi-VM mechanism at
// the instruction level: ring-0 code loads a new descriptor base and
// the same two-part address suddenly names a different process's
// segment.
func TestLDBRSwitchesVirtualMemories(t *testing.T) {
	img := build(t, image.Config{MaxSegments: 64},
		image.SegmentDef{
			Name: "sup", Words: []word.Word{
				insPR(isa.LDA, 2, 0),  // A := segment 20 word 0 (old VM)
				insPR(isa.LDBR, 3, 0), // switch descriptor segments
				insPR(isa.ADA, 2, 0),  // A += segment 20 word 0 (new VM)
				ins(isa.HLT, 0),
			},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		image.SegmentDef{
			Name: "valA", Words: []word.Word{word.FromInt(100)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		},
		image.SegmentDef{
			Name: "valB", Words: []word.Word{word.FromInt(23)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		},
		dataSeg("dbrimage", 0, 0, 4))
	c := img.CPU

	// Build a second descriptor segment: identical except segment 20
	// maps to valB instead of valA.
	const probe = 20
	valA, _ := img.Segno("valA")
	valB, _ := img.Segno("valB")
	sdwA, _ := img.SDW(valA)
	sdwB, _ := img.SDW(valB)
	if err := c.Table().Store(probe, sdwA); err != nil {
		t.Fatal(err)
	}
	base2, err := img.Alloc.Alloc(2 * 64)
	if err != nil {
		t.Fatal(err)
	}
	dbr2 := seg.DBR{Addr: uint32(base2), Bound: 64}
	tbl2 := seg.Table{Mem: c.Mem(), DBR: dbr2}
	// Copy the needed SDWs into the second VM.
	supSeg, _ := img.Segno("sup")
	supSDW, _ := img.SDW(supSeg)
	dimgSeg, _ := img.Segno("dbrimage")
	dimgSDW, _ := img.SDW(dimgSeg)
	for segno, sdw := range map[uint32]seg.SDW{
		supSeg: supSDW, dimgSeg: dimgSDW, probe: sdwB,
		0: mustSDW(t, img, 0), // ring-0 stack for completeness
	} {
		if err := tbl2.Store(segno, sdw); err != nil {
			t.Fatal(err)
		}
	}
	even, odd := dbr2.Encode()
	if err := img.WriteWord("dbrimage", 0, even); err != nil {
		t.Fatal(err)
	}
	if err := img.WriteWord("dbrimage", 1, odd); err != nil {
		t.Fatal(err)
	}

	if err := img.Start(0, "sup", 0); err != nil {
		t.Fatal(err)
	}
	c.PR[2] = cpu.Pointer{Ring: 0, Segno: probe, Wordno: 0}
	c.PR[3] = cpu.Pointer{Ring: 0, Segno: dimgSeg, Wordno: 0}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := c.A.Int64(); got != 123 {
		t.Errorf("A = %d, want 123 (100 from the first VM + 23 from the second)", got)
	}
}

func mustSDW(t *testing.T, img *image.Image, segno uint32) seg.SDW {
	t.Helper()
	sdw, err := img.SDW(segno)
	if err != nil {
		t.Fatal(err)
	}
	return sdw
}

func TestShiftOps(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.LIA, 1),
			ins(isa.ALS, 10), // A = 1024
			ins(isa.ARS, 4),  // A = 64
			ins(isa.HLT, 0),
		}))
	run(t, img, 4, "main", 0)
	if img.CPU.A.Int64() != 64 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
}

func TestSTICWriteValidated(t *testing.T) {
	// STIC is a store: writing the return point into a read-only
	// segment must fault.
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			isa.Instruction{Op: isa.STIC, PRRel: true, PR: 2, Tag: 1, Offset: 0}.Encode(),
			ins(isa.HLT, 0),
		}),
		image.SegmentDef{
			Name: "ro", Size: 4, Read: true,
			Brackets: core.Brackets{R1: 4, R2: 5, R3: 5},
		})
	dseg, _ := img.Segno("ro")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	img.CPU.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	_, err := img.CPU.Run(100)
	var tr *trap.Trap
	if !errors.As(err, &tr) || tr.Violation.Kind != core.ViolationNoWrite {
		t.Fatalf("err = %v", err)
	}
}

func TestTraceBufferLimitDuringRun(t *testing.T) {
	img := callImage(t)
	buf := newLimitedBuffer(4)
	img.CPU.SetTracer(buf)
	run(t, img, 4, "main", 0)
	if len(buf.Events) != 4 || buf.Dropped == 0 {
		t.Errorf("events=%d dropped=%d", len(buf.Events), buf.Dropped)
	}
}

// newLimitedBuffer is a tiny helper for the trace-limit test.
func newLimitedBuffer(limit int) *trace.Buffer {
	return &trace.Buffer{Limit: limit}
}

func TestInterruptDelivery(t *testing.T) {
	img := build(t, image.Config{},
		userProc("main", 4, 0, []word.Word{
			ins(isa.NOP, 0),
			ins(isa.NOP, 0),
			ins(isa.NOP, 0),
			ins(isa.HLT, 0),
		}))
	c := img.CPU
	fired := false
	delivered := 0
	c.Handler = cpu.TrapHandlerFunc(func(c *cpu.CPU, tr *trap.Trap) cpu.TrapAction {
		if tr.Code != trap.TimerInterrupt || tr.Service != 42 {
			return cpu.TrapHalt
		}
		delivered++
		if err := c.RestoreSaved(); err != nil {
			return cpu.TrapHalt
		}
		return cpu.TrapResume
	})
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	c.PostInterrupt(cpu.Interrupt{
		After:  2,
		Code:   trap.TimerInterrupt,
		Detail: 42,
		Fire:   func(*cpu.CPU) error { fired = true; return nil },
	})
	if c.PendingInterrupts() != 1 {
		t.Fatal("interrupt not queued")
	}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if !fired || delivered != 1 {
		t.Errorf("fired=%v delivered=%d", fired, delivered)
	}
	if c.PendingInterrupts() != 0 {
		t.Error("queue not drained")
	}
	// A queued interrupt can also be discarded.
	c.PostInterrupt(cpu.Interrupt{After: 5, Code: trap.TimerInterrupt})
	c.ClearInterrupts()
	if c.PendingInterrupts() != 0 {
		t.Error("ClearInterrupts left entries")
	}
}

func TestSmallStringersAndDefaults(t *testing.T) {
	p := cpu.Pointer{Ring: 3, Segno: 0o12, Wordno: 0o34}
	if s := p.String(); s != "(12|34) ring 3" {
		t.Errorf("pointer string %q", s)
	}
	for _, r := range []cpu.StopReason{cpu.StopHalt, cpu.StopTrap, cpu.StopLimit, cpu.StopReason(9)} {
		if r.String() == "" {
			t.Errorf("empty string for %d", r)
		}
	}
	// New applies defaults for zero options.
	c := cpu.New(mem.New(64), cpu.Options{})
	if c.Opt.MaxIndirections != 8 {
		t.Errorf("MaxIndirections default %d", c.Opt.MaxIndirections)
	}
	if c.Opt.Costs == (cpu.Costs{}) {
		t.Error("costs not defaulted")
	}
	c.AddCycles(7)
	if c.Cycles != 7 {
		t.Error("AddCycles")
	}
	if c.PeekSaved() != nil {
		t.Error("PeekSaved on empty stack")
	}
	if err := c.DropSaved(); err == nil {
		t.Error("DropSaved on empty stack accepted")
	}
}

func TestSDWCacheHitsAndInvalidation(t *testing.T) {
	opt := cpu.DefaultOptions()
	opt.SDWCache = true
	img, err := image.Build(image.Config{CPUOptions: &opt}, []image.SegmentDef{
		userProc("main", 4, 0, []word.Word{
			insPR(isa.LDA, 2, 0),
			insPR(isa.LDA, 2, 0),
			insPR(isa.LDA, 2, 0),
			ins(isa.HLT, 0),
		}),
		dataSeg("data", 4, 5, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	dseg, _ := img.Segno("data")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	c.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	stats := c.SDWCacheStats()
	// Two segments touched (main, data): 2 cold misses; everything else
	// hits.
	if stats.Misses != 2 {
		t.Errorf("misses = %d, want 2", stats.Misses)
	}
	if stats.Hits < 5 {
		t.Errorf("hits = %d, suspiciously few", stats.Hits)
	}

	// Descriptor edits must be immediately effective: shrink the data
	// segment's read bracket through StoreSDW and re-run — the read now
	// faults even though the old SDW was cached.
	sdw, err := img.SDW(dseg)
	if err != nil {
		t.Fatal(err)
	}
	sdw.Brackets = core.Brackets{R1: 1, R2: 1, R3: 1}
	if err := c.StoreSDW(dseg, sdw); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	c.PR[2] = cpu.Pointer{Ring: 4, Segno: dseg, Wordno: 0}
	if _, err := c.Run(100); err == nil {
		t.Fatal("stale SDW honoured after StoreSDW")
	}
}

func TestSDWCacheFlushOnLDBR(t *testing.T) {
	opt := cpu.DefaultOptions()
	opt.SDWCache = true
	img, err := image.Build(image.Config{CPUOptions: &opt, MaxSegments: 64}, []image.SegmentDef{
		{
			Name: "sup", Words: []word.Word{
				insPR(isa.LDA, 2, 0),
				insPR(isa.LDBR, 3, 0),
				insPR(isa.LDA, 2, 0),
				ins(isa.HLT, 0),
			},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		{
			Name: "valA", Words: []word.Word{word.FromInt(11)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		},
		{
			Name: "valB", Words: []word.Word{word.FromInt(31)},
			Read: true, Brackets: core.Brackets{R1: 0, R2: 5, R3: 5},
		},
		dataSeg("dbrimage", 0, 0, 4),
	})
	if err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	const probe = 20
	valA, _ := img.Segno("valA")
	valB, _ := img.Segno("valB")
	sdwA := mustSDW(t, img, valA)
	sdwB := mustSDW(t, img, valB)
	if err := c.StoreSDW(probe, sdwA); err != nil {
		t.Fatal(err)
	}
	base2, err := img.Alloc.Alloc(2 * 64)
	if err != nil {
		t.Fatal(err)
	}
	dbr2 := seg.DBR{Addr: uint32(base2), Bound: 64}
	tbl2 := seg.Table{Mem: c.Mem(), DBR: dbr2}
	supSeg, _ := img.Segno("sup")
	dimgSeg, _ := img.Segno("dbrimage")
	for segno, sdw := range map[uint32]seg.SDW{
		supSeg: mustSDW(t, img, supSeg), dimgSeg: mustSDW(t, img, dimgSeg),
		probe: sdwB, 0: mustSDW(t, img, 0),
	} {
		if err := tbl2.Store(segno, sdw); err != nil {
			t.Fatal(err)
		}
	}
	even, odd := dbr2.Encode()
	_ = img.WriteWord("dbrimage", 0, even)
	_ = img.WriteWord("dbrimage", 1, odd)

	if err := img.Start(0, "sup", 0); err != nil {
		t.Fatal(err)
	}
	c.PR[2] = cpu.Pointer{Ring: 0, Segno: probe, Wordno: 0}
	c.PR[3] = cpu.Pointer{Ring: 0, Segno: dimgSeg, Wordno: 0}
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	// Without the LDBR flush the cached probe SDW (valA) would leak
	// into the second virtual memory and A would be 11 again.
	if got := c.A.Int64(); got != 31 {
		t.Errorf("A = %d, want 31 (cache flushed on LDBR)", got)
	}
}
