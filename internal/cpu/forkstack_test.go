package cpu_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/word"
)

// TestForkedStacksViaDBRStackField exercises the Figure 8 footnote: "The
// use of the additional DBR field allows more flexibility in stack
// segment assignment, facilitating the preservation of stack history
// following an error and the implementation of forked stacks."
//
// A downward call writes into the ring-1 stack chosen through
// DBR.Stack. The supervisor then rebinds DBR.Stack to a spare set of
// stack segments — as it would after an error, to preserve the faulty
// run's stacks for examination — and the same program runs again. The
// new run allocates frames in the spare stacks; the original stacks
// still hold the first run's frames, untouched.
func TestForkedStacksViaDBRStackField(t *testing.T) {
	// Spare stacks first: with StackBase 16, the standard stacks take
	// segments 16-23 and these land at 24-31.
	var defs []image.SegmentDef
	for r := core.Ring(0); r < core.NumRings; r++ {
		defs = append(defs, image.SegmentDef{
			Name: "fork_" + string(rune('0'+r)), Size: 128,
			Read: true, Write: true,
			Brackets: core.Brackets{R1: r, R2: r, R3: r},
		})
	}
	defs = append(defs,
		userProc("main", 4, 0, []word.Word{
			isa.Instruction{Op: isa.STIC, PRRel: true, PR: 6, Tag: 1, Offset: 0}.Encode(),
			insInd(isa.CALL, 3),
			ins(isa.HLT, 0),
			0, // link
		}),
		gatedProc("svc", 1, 5, 1, []word.Word{
			// Leave a recognizable frame: save the caller pointer and a
			// marker word in this ring's stack.
			isa.Instruction{Op: isa.EAP, Ind: true, PRRel: true, PR: 0, Tag: 5, Offset: 0}.Encode(), // eap5 *pr0|0
			isa.Instruction{Op: isa.SPR, PRRel: true, PR: 5, Tag: 6, Offset: 0}.Encode(),            // spr6 pr5|0
			ins(isa.LIA, 0o1234),
			isa.Instruction{Op: isa.STA, PRRel: true, PR: 5, Offset: 1}.Encode(), // marker at frame+1
			isa.Instruction{Op: isa.EAP, Ind: true, PRRel: true, PR: 5, Tag: 6, Offset: 0}.Encode(),
			insPRInd(isa.RET, 6, 0),
		}),
	)
	img, err := image.Build(image.Config{StackRule: cpu.StackDBRBase, StackBase: 16}, defs)
	if err != nil {
		t.Fatal(err)
	}
	svcSeg, _ := img.Segno("svc")
	if err := img.WriteWord("main", 3, indWord(0, svcSeg, 0, false)); err != nil {
		t.Fatal(err)
	}
	// Give the spare stacks their next-available counters.
	for r := core.Ring(0); r < core.NumRings; r++ {
		name := "fork_" + string(rune('0'+r))
		segno, _ := img.Segno(name)
		counter := isa.Indirect{Ring: r, Segno: segno, Wordno: image.StackFrameStart}
		if err := img.WriteWord(name, 0, counter.Encode()); err != nil {
			t.Fatal(err)
		}
	}

	// First run, standard stacks (ring-1 stack = segment 17).
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	marker, err := img.ReadWord("stack_1", image.StackFrameStart+1)
	if err != nil {
		t.Fatal(err)
	}
	if marker.Int64() != 0o1234 {
		t.Fatalf("first run left no frame marker: %v", marker)
	}

	// "After the error": the supervisor rebinds DBR.Stack to the spare
	// set, preserving the original stacks for examination.
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	dbr := c.DBR()
	dbr.Stack = 24
	c.SetDBR(dbr)
	forkSeg4, _ := img.Segno("fork_4")
	c.PR[cpu.StackPtrPR] = cpu.Pointer{Ring: 4, Segno: forkSeg4, Wordno: image.StackFrameStart}
	c.PR[cpu.StackBasePR] = cpu.Pointer{Ring: 4, Segno: forkSeg4, Wordno: 0}
	if _, err := c.Run(1000); err != nil {
		t.Fatal(err)
	}

	// The second run's frame went to the spare ring-1 stack...
	forkMarker, err := img.ReadWord("fork_1", image.StackFrameStart+1)
	if err != nil {
		t.Fatal(err)
	}
	if forkMarker.Int64() != 0o1234 {
		t.Fatalf("second run did not use the forked stack: %v", forkMarker)
	}
	// ...and the original run's history is intact.
	preserved, err := img.ReadWord("stack_1", image.StackFrameStart+1)
	if err != nil {
		t.Fatal(err)
	}
	if preserved.Int64() != 0o1234 {
		t.Fatal("original stack history disturbed")
	}
	// The two frames live in different segments.
	s1, _ := img.Segno("stack_1")
	f1, _ := img.Segno("fork_1")
	if s1 == f1 {
		t.Fatal("fork stack is the original stack")
	}
}
