package cpu

import (
	"repro/internal/seg"
)

// The SDW associative memory. The paper leans on the observation that
// "the processor must examine the SDW for a segment each time that
// segment is referenced by two-part address anyway"; on the real 645
// and its successor that examination was cheap because a small
// associative memory held recently used SDWs. This file models that
// store: a direct-mapped cache of decoded SDWs, opt-in via
// Options.SDWCache.
//
// Correctness hinges on invalidation — the paper expects a changed SDW
// "to be immediately effective". The cache is flushed when the DBR is
// reloaded (a different descriptor segment entirely), and supervisor
// software that edits descriptors must store through StoreSDW, which
// invalidates the cached copy. (With the cache disabled — the default —
// every fetch reads the descriptor segment and no discipline is
// needed.)

// sdwCacheSize is the number of associative registers (a power of two).
const sdwCacheSize = 32

type sdwCacheEntry struct {
	valid bool
	segno uint32
	sdw   seg.SDW
}

// SDWCacheStats reports associative memory performance.
type SDWCacheStats struct {
	Hits   uint64
	Misses uint64
}

// SDWCacheStats returns the hit/miss counters (zero when disabled).
func (c *CPU) SDWCacheStats() SDWCacheStats { return c.sdwStats }

// FlushSDWCache invalidates every associative register. The processor
// does this itself on LDBR; supervisor code editing descriptors in
// place uses StoreSDW instead, which invalidates selectively.
func (c *CPU) FlushSDWCache() {
	for i := range c.sdwCache {
		c.sdwCache[i].valid = false
	}
}

// StoreSDW writes an SDW through the current descriptor segment and
// keeps the associative memory coherent. All run-time descriptor edits
// by supervisor software go through here.
func (c *CPU) StoreSDW(segno uint32, sdw seg.SDW) error {
	if err := c.Table().Store(segno, sdw); err != nil {
		return err
	}
	if c.Opt.SDWCache {
		e := &c.sdwCache[segno%sdwCacheSize]
		if e.valid && e.segno == segno {
			e.valid = false
		}
	}
	return nil
}

// cachedFetchSDW is fetchSDW behind the associative memory.
func (c *CPU) cachedFetchSDW(segno uint32) (seg.SDW, error) {
	e := &c.sdwCache[segno%sdwCacheSize]
	if e.valid && e.segno == segno {
		c.sdwStats.Hits++
		return e.sdw, nil
	}
	c.sdwStats.Misses++
	c.Cycles += c.Opt.Costs.SDWMiss
	sdw, err := seg.Table{Mem: c.Mem, DBR: c.DBR}.Fetch(segno)
	if err != nil {
		return seg.SDW{}, err
	}
	*e = sdwCacheEntry{valid: true, segno: segno, sdw: sdw}
	return sdw, nil
}
