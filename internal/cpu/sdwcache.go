package cpu

import (
	"repro/internal/mmu"
	"repro/internal/seg"
)

// The SDW associative memory. The paper leans on the observation that
// "the processor must examine the SDW for a segment each time that
// segment is referenced by two-part address anyway"; on the real 645
// and its successor that examination was cheap because a small
// associative memory held recently used SDWs. The store itself — a
// direct-mapped cache of decoded SDWs, opt-in via Options.SDWCache,
// sized by Options.SDWCacheSize — lives in internal/mmu together with
// the rest of the reference path; these wrappers preserve the
// processor-level API.
//
// Correctness hinges on invalidation — the paper expects a changed SDW
// "to be immediately effective". The discipline is documented on
// package mmu: LDBR flushes, descriptor edits go through StoreSDW, and
// multi-processor configurations add a shootdown protocol (mmu.Group).

// SDWCacheStats reports associative memory performance.
type SDWCacheStats = mmu.CacheStats

// SDWCacheStats returns the hit/miss counters (zero when disabled).
func (c *CPU) SDWCacheStats() SDWCacheStats { return c.MMU.CacheStats() }

// FlushSDWCache invalidates every associative register. The processor
// does this itself on LDBR; supervisor code editing descriptors in
// place uses StoreSDW instead, which invalidates selectively.
func (c *CPU) FlushSDWCache() { c.MMU.Flush() }

// StoreSDW writes an SDW through the current descriptor segment and
// keeps the associative memory coherent. All run-time descriptor edits
// by supervisor software go through here.
func (c *CPU) StoreSDW(segno uint32, sdw seg.SDW) error {
	return c.MMU.StoreSDW(segno, sdw)
}
