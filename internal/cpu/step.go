package cpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/seg"
	"repro/internal/trace"
	"repro/internal/trap"
	"repro/internal/word"
)

// Step executes one instruction cycle: fetch (Figure 4), effective
// address formation (Figure 5), and execution with operand validation
// (Figures 6-9). A trap diverts to the handler inside Step; Step
// returns an error only when the machine halts (unhandled trap or
// handler-requested halt) or on a simulator integrity fault.
func (c *CPU) Step() error {
	if c.Halted {
		return fmt.Errorf("cpu: step on halted machine")
	}
	// Asynchronous conditions (I/O completions, timer) are delivered
	// between instructions.
	if len(c.interrupts) > 0 {
		if delivered, err := c.deliverDueInterrupt(); delivered {
			return err
		}
	}
	c.steps++
	cost := &c.Opt.Costs

	// ---- Instruction retrieval (Figure 4) ----
	sdw, err := c.fetchSDW(c.IPR.Segno)
	if err != nil {
		return err
	}
	if viol := c.MMU.CheckFetch(sdw.View(), c.IPR.Wordno, c.IPR.Ring); viol != nil {
		return c.raise(&archTrap{
			code: trap.FromViolation(viol), viol: viol,
			operandSeg: c.IPR.Segno, operandWord: c.IPR.Wordno,
		})
	}
	raw, err := c.readVirtual(sdw, c.IPR.Wordno)
	if err != nil {
		return err
	}
	c.Cycles += cost.Fetch
	ins := isa.DecodeInstruction(raw)
	info, ok := isa.Lookup(ins.Op)
	if !ok {
		return c.raise(&archTrap{code: trap.IllegalOpcode})
	}
	if c.tracing() {
		// ins.String() formats eagerly; keep it off the traceless path.
		c.record(trace.KindFetch, c.IPR.Ring, c.IPR.Segno, c.IPR.Wordno, ins.String())
	}

	// Privileged instructions execute only in ring 0.
	if info.Privileged && c.IPR.Ring != 0 {
		return c.raise(&archTrap{code: trap.PrivilegedViolation})
	}

	next := c.IPR
	next.Wordno = word.Add18(c.IPR.Wordno, 1)

	advance := func() {
		c.IPR = next
	}

	switch info.Class {
	case isa.ClassNone:
		before := c.IPR
		at, err := c.execNoOperand(ins)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		c.Cycles += cost.Exec
		// RETT (and a supervisor service that redirects execution)
		// installs a new instruction counter; only sequential
		// instructions advance.
		if !c.Halted && c.IPR == before {
			advance()
		}
		return nil

	case isa.ClassRead, isa.ClassWrite, isa.ClassReadWrite, isa.ClassEAOnly:
		opSDW, at, err := c.formEA(ins)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		at, err = c.execOperand(ins, info, opSDW)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		c.Cycles += cost.Exec
		advance()
		return nil

	case isa.ClassTransfer:
		opSDW, at, err := c.formEA(ins)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		if viol := c.MMU.CheckTransfer(opSDW.View(), c.TPR.Segno, c.TPR.Wordno, c.IPR.Ring, c.TPR.Ring); viol != nil {
			return c.raise(c.violationTrap(viol))
		}
		c.Cycles += cost.Exec + cost.Transfer
		if c.transferTaken(ins.Op) {
			// Transfers do not change the ring of execution: only the
			// segment and word numbers are reloaded from TPR (Figure 7).
			c.IPR.Segno = c.TPR.Segno
			c.IPR.Wordno = c.TPR.Wordno
			c.record(trace.KindExec, c.IPR.Ring, c.IPR.Segno, c.IPR.Wordno, "transfer taken")
		} else {
			advance()
		}
		return nil

	case isa.ClassCall:
		opSDW, at, err := c.formEA(ins)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		at, err = c.execCall(opSDW)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		return nil

	case isa.ClassReturn:
		opSDW, at, err := c.formEA(ins)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		at, err = c.execReturn(opSDW)
		if err != nil {
			return err
		}
		if at != nil {
			return c.raise(at)
		}
		return nil

	default:
		return fmt.Errorf("cpu: unhandled operand class %d for %s", info.Class, info.Name)
	}
}

// transferTaken evaluates the transfer condition against the
// indicators.
func (c *CPU) transferTaken(op isa.Opcode) bool {
	switch op {
	case isa.TRA:
		return true
	case isa.TZE:
		return c.Ind.Zero
	case isa.TNZ:
		return !c.Ind.Zero
	case isa.TMI:
		return c.Ind.Neg
	case isa.TPL:
		return !c.Ind.Neg
	default:
		return false
	}
}

// execNoOperand executes the instructions that form no effective
// address: immediates, shifts, halt, and the privileged RETT/SVC.
func (c *CPU) execNoOperand(ins isa.Instruction) (*archTrap, error) {
	switch ins.Op {
	case isa.NOP:
	case isa.HLT:
		c.Halted = true
		c.record(trace.KindExec, c.IPR.Ring, c.IPR.Segno, c.IPR.Wordno, "halt")
	case isa.LIA:
		c.A = word.FromInt(int64(word.SignExtend18(ins.Offset)))
		c.setIndicatorsFromA()
	case isa.AIA:
		c.A, c.Ind.Carry = word.Add(c.A, word.FromInt(int64(word.SignExtend18(ins.Offset))))
		c.setIndicatorsFromA()
	case isa.LIQ:
		c.Q = word.FromInt(int64(word.SignExtend18(ins.Offset)))
		c.setIndicatorsFrom(c.Q)
	case isa.LIX:
		c.X[ins.Tag&7] = ins.Offset
	case isa.ALS:
		c.A = word.FromUint64(c.A.Uint64() << (ins.Offset & 63))
		c.setIndicatorsFromA()
	case isa.ARS:
		c.A = word.FromUint64(c.A.Uint64() >> (ins.Offset & 63))
		c.setIndicatorsFromA()
	case isa.RETT:
		// Restore the processor state saved at the most recent trap. In
		// memory mode (ConfigureTrapVector) the frame lives in the trap
		// save segment; otherwise in the internal save stack (the Go
		// supervisor calls RestoreSaved directly).
		if c.trapVector != nil {
			if err := c.restoreTrapFrame(); err != nil {
				return &archTrap{code: trap.IllegalOpcode}, nil
			}
		} else if err := c.RestoreSaved(); err != nil {
			return &archTrap{code: trap.IllegalOpcode}, nil
		}
	case isa.SVC:
		if c.Services == nil {
			return &archTrap{code: trap.Supervisor, service: ins.Offset}, nil
		}
		if c.tracing() {
			c.record(trace.KindService, c.IPR.Ring, c.IPR.Segno, c.IPR.Wordno,
				fmt.Sprintf("service %d", ins.Offset))
		}
		if c.Services.Service(c, ins.Offset) == TrapHalt {
			c.Halted = true
		}
	default:
		return nil, fmt.Errorf("cpu: %v reached execNoOperand", ins)
	}
	return nil, nil
}

// operandRead performs a validated operand read at the effective
// address (Figure 6).
func (c *CPU) operandRead(view core.SDWView, opSDW seg.SDW) (word.Word, *archTrap, error) {
	if viol := c.MMU.CheckRead(view, c.TPR.Segno, c.TPR.Wordno, c.TPR.Ring); viol != nil {
		return 0, c.violationTrap(viol), nil
	}
	w, err := c.readVirtual(opSDW, c.TPR.Wordno)
	if err != nil {
		return 0, nil, err
	}
	c.Cycles += c.Opt.Costs.Operand
	return w, nil, nil
}

// operandWrite performs a validated operand write at the effective
// address (Figure 6).
func (c *CPU) operandWrite(view core.SDWView, opSDW seg.SDW, w word.Word) (*archTrap, error) {
	if viol := c.MMU.CheckWrite(view, c.TPR.Segno, c.TPR.Wordno, c.TPR.Ring); viol != nil {
		return c.violationTrap(viol), nil
	}
	if err := c.writeVirtual(opSDW, c.TPR.Wordno, w); err != nil {
		return nil, err
	}
	c.Cycles += c.Opt.Costs.Operand
	return nil, nil
}

// execOperand executes the instructions that reference (or, for
// EAP-type, merely address) their operands, performing the Figure 6
// validation.
func (c *CPU) execOperand(ins isa.Instruction, info isa.Info, opSDW seg.SDW) (*archTrap, error) {
	cost := &c.Opt.Costs
	view := opSDW.View()

	readOperand := func() (word.Word, *archTrap, error) { return c.operandRead(view, opSDW) }
	writeOperand := func(w word.Word) (*archTrap, error) { return c.operandWrite(view, opSDW, w) }

	switch ins.Op {
	case isa.LDA:
		w, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		c.A = w
		c.setIndicatorsFromA()
	case isa.LDQ:
		w, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		c.Q = w
		c.setIndicatorsFrom(c.Q)
	case isa.LDX:
		w, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		c.X[ins.Tag&7] = w.Lower()
	case isa.STA:
		return writeOperand(c.A)
	case isa.STQ:
		return writeOperand(c.Q)
	case isa.STX:
		return writeOperand(word.FromHalves(0, c.X[ins.Tag&7]))
	case isa.ADA, isa.SBA, isa.ANA, isa.ORA, isa.ERA, isa.CMA:
		w, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		switch ins.Op {
		case isa.ADA:
			c.A, c.Ind.Carry = word.Add(c.A, w)
		case isa.SBA:
			var borrow bool
			c.A, borrow = word.Sub(c.A, w)
			c.Ind.Carry = !borrow
		case isa.ANA:
			c.A = word.FromUint64(c.A.Uint64() & w.Uint64())
		case isa.ORA:
			c.A = word.FromUint64(c.A.Uint64() | w.Uint64())
		case isa.ERA:
			c.A = word.FromUint64(c.A.Uint64() ^ w.Uint64())
		case isa.CMA:
			diff, borrow := word.Sub(c.A, w)
			c.Ind.Zero = diff.IsZero()
			c.Ind.Neg = diff.IsNegative()
			c.Ind.Carry = !borrow
			return nil, nil // compare does not change A
		}
		c.setIndicatorsFromA()
	case isa.AOS:
		w, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		sum, _ := word.Add(w, 1)
		at, err = writeOperand(sum)
		if at != nil || err != nil {
			return at, err
		}
		c.setIndicatorsFrom(sum)
	case isa.EAP:
		// Effective Address to Pointer register: the only way PRs are
		// loaded. No access validation — the operand is not referenced
		// (Figure 7). The ring field comes from TPR, so a PR can never
		// launder away the influence of a higher ring.
		c.PR[ins.Tag&7] = c.TPR
		c.Cycles += cost.Validate // EAP charges nothing extra; keep symmetry
	case isa.SPR:
		return writeOperand(c.PR[ins.Tag&7].Indirect().Encode())
	case isa.STIC:
		ret := Pointer{
			Ring:   c.IPR.Ring,
			Segno:  c.IPR.Segno,
			Wordno: word.Add18(c.IPR.Wordno, int32(1+ins.Tag)),
		}
		return writeOperand(ret.Indirect().Encode())
	case isa.LDBR:
		// Privileged (checked in Step): load the descriptor base
		// register from the word pair at the operand.
		even, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		savedWordno := c.TPR.Wordno
		c.TPR.Wordno = word.Add18(savedWordno, 1)
		odd, at, err := readOperand()
		c.TPR.Wordno = savedWordno
		if at != nil || err != nil {
			return at, err
		}
		dbr := seg.DecodeDBR(even, odd)
		// A new descriptor segment invalidates every cached SDW; the MMU
		// flushes as part of the load.
		c.SetDBR(dbr)
		if c.tracing() {
			c.record(trace.KindExec, c.IPR.Ring, c.IPR.Segno, c.IPR.Wordno,
				fmt.Sprintf("ldbr addr=%o bound=%o stack=%o", dbr.Addr, dbr.Bound, dbr.Stack))
		}
	case isa.SIO:
		// Privileged: start I/O from the control block at the operand.
		_, at, err := readOperand()
		if at != nil || err != nil {
			return at, err
		}
		if c.IO != nil {
			if err := c.IO.StartIO(c, c.TPR.Segno, c.TPR.Wordno); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("cpu: %v reached execOperand", ins)
	}
	return nil, nil
}

// execCall performs the CALL instruction (Figure 8). The effective
// address — including the effective ring — is in TPR; opSDW describes
// the target segment.
func (c *CPU) execCall(opSDW seg.SDW) (*archTrap, error) {
	cost := &c.Opt.Costs
	c.Cycles += cost.Exec + cost.Transfer + cost.Call + cost.Validate

	sameSegment := c.TPR.Segno == c.IPR.Segno
	decision, viol := c.MMU.DecideCall(opSDW.View(), c.TPR.Wordno, c.IPR.Ring, c.TPR.Ring, sameSegment)
	if viol != nil {
		return c.violationTrap(viol), nil
	}

	if decision.Outcome == core.CallUpwardTrap {
		return &archTrap{
			code:        trap.UpwardCall,
			operandSeg:  c.TPR.Segno,
			operandWord: c.TPR.Wordno,
		}, nil
	}

	newRing := decision.NewRing

	// Form the stack base pointer in PR0. The processor supplies the
	// stack segment number, so no procedure in a higher ring can affect
	// the called procedure's stack pointer.
	stackSegno, at := c.stackSegno(newRing)
	if at != nil {
		return at, nil
	}
	c.PR[StackBasePR] = Pointer{Ring: newRing, Segno: stackSegno, Wordno: 0}

	if c.tracing() {
		if newRing != c.IPR.Ring {
			c.record(trace.KindRingSwitch, newRing, c.TPR.Segno, c.TPR.Wordno,
				fmt.Sprintf("call: ring %d -> %d", c.IPR.Ring, newRing))
		}
		c.record(trace.KindExec, newRing, c.TPR.Segno, c.TPR.Wordno, decision.Outcome.String())
	}

	c.IPR = Pointer{Ring: newRing, Segno: c.TPR.Segno, Wordno: c.TPR.Wordno}
	return nil, nil
}

// stackSegno forms the stack segment number for a ring per the
// configured rule, verifying the stack segment exists.
func (c *CPU) stackSegno(ring core.Ring) (uint32, *archTrap) {
	var segno uint32
	switch {
	case ring == c.IPR.Ring:
		// Footnote rule, both configurations: a call that does not
		// change the ring takes the stack segment number directly from
		// the stack pointer register, allowing nonstandard stacks.
		segno = c.PR[StackPtrPR].Segno
	case c.Opt.StackRule == StackDBRBase:
		segno = c.DBR().Stack + uint32(ring)
	default:
		segno = uint32(ring)
	}
	sdw, err := c.fetchSDW(segno)
	if err != nil || !sdw.Present {
		return 0, &archTrap{code: trap.StackFault, operandSeg: segno}
	}
	return segno, nil
}

// execReturn performs the RETURN instruction (Figure 9). The effective
// address — including the effective ring, which is the ring returned
// to — is in TPR.
func (c *CPU) execReturn(opSDW seg.SDW) (*archTrap, error) {
	cost := &c.Opt.Costs
	c.Cycles += cost.Exec + cost.Transfer + cost.Return + cost.Validate

	decision, viol := c.MMU.DecideReturn(opSDW.View(), c.TPR.Wordno, c.IPR.Ring, c.TPR.Ring)
	if viol != nil {
		return c.violationTrap(viol), nil
	}

	if decision.Outcome == core.ReturnDownwardTrap {
		return &archTrap{
			code:        trap.DownwardReturn,
			operandSeg:  c.TPR.Segno,
			operandWord: c.TPR.Wordno,
		}, nil
	}

	newRing := decision.NewRing
	if decision.Outcome == core.ReturnUpward {
		// Raise every PRn.RING to at least the new ring (Figure 9).
		// Together with PRs being loadable only by EAP, this maintains
		// PRn.RING ≥ IPR.RING. The scratch array lives on the stack so
		// the step path stays allocation-free.
		var rings [8]core.Ring
		for i := range c.PR {
			rings[i] = c.PR[i].Ring
		}
		core.RaisePRRings(rings[:], newRing)
		for i := range c.PR {
			c.PR[i].Ring = rings[i]
		}
		if c.tracing() {
			c.record(trace.KindRingSwitch, newRing, c.TPR.Segno, c.TPR.Wordno,
				fmt.Sprintf("return: ring %d -> %d", c.IPR.Ring, newRing))
		}
	}
	if c.tracing() {
		c.record(trace.KindExec, newRing, c.TPR.Segno, c.TPR.Wordno, decision.Outcome.String())
	}

	c.IPR = Pointer{Ring: newRing, Segno: c.TPR.Segno, Wordno: c.TPR.Wordno}
	return nil, nil
}
