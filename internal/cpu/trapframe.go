package cpu

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/trap"
	"repro/internal/word"
)

// Memory-resident trap frames: the paper's actual trap mechanism.
// "When the processor detects such a condition, it changes the ring of
// execution to zero and transfers control to a fixed location in the
// supervisor. A special instruction allows the state of the processor
// at the time of the trap to be restored later."
//
// When a trap vector is configured (and no Go handler is attached), the
// processor dumps its state into a frame in the trap-save segment,
// switches to ring 0 at the vector location, and lets simulated ring-0
// code handle the condition; the privileged RETT instruction restores
// the dumped frame. Frames stack (word 0 of the save segment is the
// next-free counter), so a trap taken inside a handler nests correctly.
//
// Frame layout (TrapFrameWords words):
//
//	 0      trap code (low 9 bits) | service number (bits 9-26)
//	 1      operand pointer (indirect-word format; ring field unused)
//	 2      IPR   (indirect-word format: ring, segno, wordno)
//	 3      TPR   (same)
//	 4-11   PR0-PR7 (same)
//	12      A
//	13      Q
//	14-21   X0-X7 (low 18 bits each)
//	22      indicators (bit 0 zero, bit 1 neg, bit 2 carry)
//	23      violation kind (low bits; 0 = none) | violation ring (bits 8-10)

// TrapFrameWords is the size of one memory trap frame.
const TrapFrameWords = 24

// ConfigureTrapVector arms memory-mode trap handling: traps transfer to
// vector (forced to ring 0) after dumping a frame into saveSeg, whose
// word 0 must hold the next-free frame offset (usually 1).
func (c *CPU) ConfigureTrapVector(vector Pointer, saveSeg uint32) {
	vector.Ring = 0
	c.trapVector = &vector
	c.trapSaveSeg = saveSeg
}

// TrapVectorConfigured reports whether memory-mode trap handling is on.
func (c *CPU) TrapVectorConfigured() bool { return c.trapVector != nil }

// pointerWord encodes a pointer in the indirect-word format.
func pointerWord(p Pointer) word.Word {
	return isa.Indirect{Ring: p.Ring, Segno: p.Segno, Wordno: p.Wordno}.Encode()
}

func wordPointer(w word.Word) Pointer {
	ind := isa.DecodeIndirect(w)
	return Pointer{Ring: ind.Ring, Segno: ind.Segno, Wordno: ind.Wordno}
}

// dumpTrapFrame writes the processor state and trap information into a
// fresh frame of the save segment and returns nil on success.
func (c *CPU) dumpTrapFrame(t *trap.Trap) error {
	sdw, err := c.fetchSDW(c.trapSaveSeg)
	if err != nil {
		return err
	}
	if !sdw.Present {
		return fmt.Errorf("cpu: trap save segment %o absent", c.trapSaveSeg)
	}
	counter, err := c.readVirtual(sdw, 0)
	if err != nil {
		return err
	}
	base := uint32(counter.Uint64()) & 0o777777
	if base+TrapFrameWords >= sdw.Bound {
		return fmt.Errorf("cpu: trap save segment overflow at %o", base)
	}
	w := func(off uint32, v word.Word) {
		if err == nil {
			err = c.writeVirtual(sdw, base+off, v)
		}
	}
	w(0, word.Word(0).Deposit(0, 9, uint64(t.Code)).Deposit(9, 18, uint64(t.Service)))
	w(1, pointerWord(Pointer{Segno: t.OperandSeg, Wordno: t.OperandWord}))
	w(2, pointerWord(c.IPR))
	w(3, pointerWord(c.TPR))
	for i := 0; i < 8; i++ {
		w(uint32(4+i), pointerWord(c.PR[i]))
	}
	w(12, c.A)
	w(13, c.Q)
	for i := 0; i < 8; i++ {
		w(uint32(14+i), word.FromHalves(0, c.X[i]))
	}
	ind := word.Word(0).
		WithBit(0, c.Ind.Zero).
		WithBit(1, c.Ind.Neg).
		WithBit(2, c.Ind.Carry)
	w(22, ind)
	var vk, vr uint64
	if t.Violation != nil {
		vk = uint64(t.Violation.Kind)
		vr = uint64(t.Violation.Ring)
	}
	w(23, word.Word(0).Deposit(0, 8, vk).Deposit(8, 3, vr))
	if err != nil {
		return err
	}
	// Bump the next-free counter last, committing the frame.
	return c.writeVirtual(sdw, 0, word.FromInt(int64(base+TrapFrameWords)))
}

// restoreTrapFrame pops the most recent memory frame into the live
// registers (the RETT instruction in memory mode).
func (c *CPU) restoreTrapFrame() error {
	sdw, err := c.fetchSDW(c.trapSaveSeg)
	if err != nil {
		return err
	}
	counter, err := c.readVirtual(sdw, 0)
	if err != nil {
		return err
	}
	top := uint32(counter.Uint64()) & 0o777777
	if top < 1+TrapFrameWords {
		return fmt.Errorf("cpu: rett with empty trap save segment")
	}
	base := top - TrapFrameWords
	r := func(off uint32) word.Word {
		if err != nil {
			return 0
		}
		var v word.Word
		v, err = c.readVirtual(sdw, base+off)
		return v
	}
	ipr := wordPointer(r(2))
	tpr := wordPointer(r(3))
	var prs [8]Pointer
	for i := 0; i < 8; i++ {
		prs[i] = wordPointer(r(uint32(4 + i)))
	}
	a, q := r(12), r(13)
	var xs [8]uint32
	for i := 0; i < 8; i++ {
		xs[i] = r(uint32(14 + i)).Lower()
	}
	indw := r(22)
	if err != nil {
		return err
	}
	c.IPR, c.TPR, c.PR = ipr, tpr, prs
	c.A, c.Q, c.X = a, q, xs
	c.Ind = Indicators{Zero: indw.Bit(0), Neg: indw.Bit(1), Carry: indw.Bit(2)}
	c.Cycles += c.Opt.Costs.Restore
	return c.writeVirtual(sdw, 0, word.FromInt(int64(base)))
}

// raiseToVector is the memory-mode trap path: dump the frame, switch to
// ring 0 at the fixed vector location, keep executing.
func (c *CPU) raiseToVector(t *trap.Trap) error {
	if err := c.dumpTrapFrame(t); err != nil {
		c.Halted = true
		return fmt.Errorf("cpu: trap dump failed (%v) while handling %w", err, t)
	}
	c.IPR = *c.trapVector
	return nil
}

// DecodeTrapFrame reads a dumped frame back into structured form (for
// tests and debuggers examining the save segment from outside).
func DecodeTrapFrame(words []word.Word) (code trap.Code, saved SavedState, violKind core.ViolationKind, err error) {
	if len(words) < TrapFrameWords {
		return 0, SavedState{}, 0, fmt.Errorf("cpu: short trap frame")
	}
	code = trap.Code(words[0].Field(0, 9))
	saved.IPR = wordPointer(words[2])
	saved.TPR = wordPointer(words[3])
	for i := 0; i < 8; i++ {
		saved.PR[i] = wordPointer(words[4+i])
	}
	saved.A, saved.Q = words[12], words[13]
	for i := 0; i < 8; i++ {
		saved.X[i] = words[14+i].Lower()
	}
	saved.Ind = Indicators{Zero: words[22].Bit(0), Neg: words[22].Bit(1), Carry: words[22].Bit(2)}
	violKind = core.ViolationKind(words[23].Field(0, 8))
	return code, saved, violKind, nil
}
