package cpu

import (
	"repro/internal/core"
	"repro/internal/trace"
	"repro/internal/trap"
)

// archTrap describes an architectural trap condition detected during
// the instruction cycle, before it is materialized into a *trap.Trap
// with the full machine context. Distinct from ordinary Go errors,
// which indicate simulator integrity faults (impossible physical
// references) and abort the run.
type archTrap struct {
	code        trap.Code
	viol        *core.Violation
	service     uint32
	operandSeg  uint32
	operandWord uint32
}

// violationTrap wraps a core violation as an architectural trap at the
// current operand location.
func (c *CPU) violationTrap(viol *core.Violation) *archTrap {
	return &archTrap{
		code:        trap.FromViolation(viol),
		viol:        viol,
		operandSeg:  c.TPR.Segno,
		operandWord: c.TPR.Wordno,
	}
}

// raise performs the trap action of the paper: capture the processor
// state, conceptually switch to ring 0, and enter the supervisor (the
// Go trap handler). If the handler resumes, raise returns nil and the
// instruction cycle continues at the (possibly rewritten) IPR. If
// there is no handler, or the handler halts, the machine stops and the
// materialized trap is returned as the error.
func (c *CPU) raise(at *archTrap) error {
	t := &trap.Trap{
		Code:        at.code,
		Violation:   at.viol,
		Ring:        c.IPR.Ring,
		Segno:       c.IPR.Segno,
		Wordno:      c.IPR.Wordno,
		OperandSeg:  at.operandSeg,
		OperandWord: at.operandWord,
		Service:     at.service,
	}
	c.Cycles += c.Opt.Costs.Trap
	c.record(trace.KindTrap, c.IPR.Ring, c.IPR.Segno, c.IPR.Wordno, t.Code.String())

	if c.Handler == nil && c.trapVector != nil {
		// Memory-mode: the supervisor is simulated ring-0 code at the
		// fixed vector location.
		return c.raiseToVector(t)
	}

	c.saved = append(c.saved, SavedState{
		IPR: c.IPR, TPR: c.TPR, PR: c.PR,
		A: c.A, Q: c.Q, X: c.X, Ind: c.Ind,
		Trap: t,
	})

	if c.Handler == nil {
		c.Halted = true
		return t
	}
	// The handler is the ring-0 supervisor: it runs with the machine
	// conceptually in ring 0 at the fixed trap location.
	prevRing := c.IPR.Ring
	c.IPR.Ring = 0
	action := c.Handler.HandleTrap(c, t)
	if action == TrapHalt {
		c.Halted = true
		return t
	}
	if c.IPR.Ring == 0 && prevRing != 0 && c.SavedDepth() > 0 && c.PeekSaved().Trap == t {
		// The handler resumed without restoring or redirecting: that is
		// a supervisor bug (it would re-run the trapped instruction in
		// ring 0). Halt loudly rather than simulate a privilege hole.
		c.Halted = true
		return t
	}
	return nil
}
