package cpu_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trap"
	"repro/internal/word"
)

// TestAssemblyTrapHandler runs the paper's trap mechanism end to end
// with NO Go supervisor at all: traps dump a memory frame and transfer
// to a fixed ring-0 location whose handler is written in the machine's
// own assembly; it counts the violation, advances the saved instruction
// counter past the faulting instruction, and resumes with RETT.
func TestAssemblyTrapHandler(t *testing.T) {
	prog, err := asm.Assemble(`
        .seg    user
        .bracket 4,4,4
        lia     1
        sta     *p0             ; violation: guarded is read-only to ring 4
        lia     2
        sta     *p1             ; violation again
        hlt
p0:     .its    4, guarded$base
p1:     .its    4, guarded$base

        .seg    handler
        .bracket 0,0,0
        .access rwe
; The fixed trap location. Frame layout: tsave word 0 is the next-free
; counter; the current frame starts at counter-24; the saved IPR is the
; frame's word 2, i.e. tsave word counter-22.
entry:  aos     nviol
        lda     *cnt            ; A := next-free counter
        aia     -22
        sta     tmp
        ldx1    tmp
        eap4    *cnt            ; PR4 := tsave|0
        lda     pr4|0,x1        ; A := saved IPR (indirect-word format)
        aia     1               ; advance the word number past the fault
        sta     pr4|0,x1
        rett                    ; restore the (edited) frame
        .entry  nviol
nviol:  .word   0
tmp:    .word   0
cnt:    .its    0, tsave$base
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.BuildImage(image.Config{}, prog,
		image.SegmentDef{
			Name: "guarded", Size: 4, Read: true, Write: true,
			Brackets: core.Brackets{R1: 1, R2: 5, R3: 5},
		},
		image.SegmentDef{
			Name: "tsave", Size: 256, Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		})
	if err != nil {
		t.Fatal(err)
	}
	handlerSeg, _ := img.Segno("handler")
	tsaveSeg, _ := img.Segno("tsave")
	if err := img.WriteWord("tsave", 0, word.FromInt(1)); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	c.Handler = nil
	c.ConfigureTrapVector(cpu.Pointer{Segno: handlerSeg, Wordno: 0}, tsaveSeg)
	if !c.TrapVectorConfigured() {
		t.Fatal("vector not configured")
	}

	if err := img.Start(4, "user", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(1000); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Both violations were handled by the assembly supervisor.
	nviolOff := prog.Segment("handler").Symbols["nviol"]
	n, _ := img.ReadWord("handler", nviolOff)
	if n.Int64() != 2 {
		t.Errorf("handled %d violations, want 2", n.Int64())
	}
	// Execution resumed correctly after each skip: A holds 2 at halt.
	if c.A.Int64() != 2 {
		t.Errorf("A = %d", c.A.Int64())
	}
	// The guarded segment was never written.
	g, _ := img.ReadWord("guarded", 0)
	if !g.IsZero() {
		t.Error("guarded word written")
	}
	// The user finished in ring 4 (RETT restored the ring).
	if c.IPR.Ring != 4 {
		t.Errorf("final ring %d", c.IPR.Ring)
	}
	// The save segment counter is back at 1: every frame was popped.
	cnt, _ := img.ReadWord("tsave", 0)
	if cnt.Int64() != 1 {
		t.Errorf("save counter %d, want 1", cnt.Int64())
	}
}

// TestTrapFrameDumpDecode verifies the frame format round trip through
// memory.
func TestTrapFrameDumpDecode(t *testing.T) {
	img := build(t, image.Config{},
		userProc("user", 4, 0, []word.Word{
			ins(isa.LIA, 77),
			word.Word(0), // illegal opcode -> trap
		}),
		image.SegmentDef{
			Name: "tsave", Size: 64, Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		userProc("handler", 0, 0, []word.Word{ins(isa.HLT, 0)}))
	tsaveSeg, _ := img.Segno("tsave")
	handlerSeg, _ := img.Segno("handler")
	if err := img.WriteWord("tsave", 0, word.FromInt(1)); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	c.ConfigureTrapVector(cpu.Pointer{Segno: handlerSeg, Wordno: 0}, tsaveSeg)
	if err := img.Start(4, "user", 0); err != nil {
		t.Fatal(err)
	}
	// Runs until the handler's HLT... but the handler executes in ring
	// 0 while its bracket is [0,0]: fine.
	if _, err := c.Run(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	frame, err := mem.ReadRange(img.Mem, frameBase(t, img, tsaveSeg), cpu.TrapFrameWords)
	if err != nil {
		t.Fatal(err)
	}
	code, saved, _, err := cpu.DecodeTrapFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if code != trap.IllegalOpcode {
		t.Errorf("code %v", code)
	}
	if saved.A.Int64() != 77 {
		t.Errorf("saved A = %d", saved.A.Int64())
	}
	if saved.IPR.Ring != 4 || saved.IPR.Wordno != 1 {
		t.Errorf("saved IPR %v", saved.IPR)
	}
}

// frameBase finds the physical base of the (single) dumped frame.
func frameBase(t *testing.T, img *image.Image, tsaveSeg uint32) int {
	t.Helper()
	sdw, err := img.SDW(tsaveSeg)
	if err != nil {
		t.Fatal(err)
	}
	return int(sdw.Addr) + 1
}

func TestTrapFrameOverflowHalts(t *testing.T) {
	// A trap-save segment too small for a frame stops the machine
	// loudly instead of corrupting memory.
	img := build(t, image.Config{},
		userProc("user", 4, 0, []word.Word{word.Word(0)}), // illegal opcode
		image.SegmentDef{
			Name: "tsave", Size: 8, Read: true, Write: true, // < TrapFrameWords
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		userProc("handler", 0, 0, []word.Word{ins(isa.HLT, 0)}))
	tsaveSeg, _ := img.Segno("tsave")
	handlerSeg, _ := img.Segno("handler")
	if err := img.WriteWord("tsave", 0, word.FromInt(1)); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	c.ConfigureTrapVector(cpu.Pointer{Segno: handlerSeg, Wordno: 0}, tsaveSeg)
	if err := img.Start(4, "user", 0); err != nil {
		t.Fatal(err)
	}
	_, err := c.Run(100)
	if err == nil || !c.Halted {
		t.Fatalf("overflow not fatal: %v", err)
	}
}
