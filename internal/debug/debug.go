// Package debug is a programmatic debugger for the simulated machine:
// breakpoints on virtual addresses, watchpoints on words, single
// stepping and register dumps. The ringsim CLI exposes it through the
// -break and -watch flags; tests drive it directly.
//
// The debugger is deliberately outside the protection model — it is
// the operator's console, reading memory physically — so it can watch
// supervisor state no ring could.
package debug

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/seg"
	"repro/internal/word"
)

// Addr is a virtual address: segment and word number.
type Addr struct {
	Segno  uint32
	Wordno uint32
}

func (a Addr) String() string { return fmt.Sprintf("(%o|%o)", a.Segno, a.Wordno) }

// StopCause reports why Run returned.
type StopCause int

const (
	// StopBreak: the instruction pointer reached a breakpoint (before
	// executing the instruction there).
	StopBreak StopCause = iota
	// StopWatch: a watched word changed value.
	StopWatch
	// StopHalt: the machine halted cleanly.
	StopHalt
	// StopTrap: an unrecovered trap stopped the machine.
	StopTrap
	// StopLimit: the step budget ran out.
	StopLimit
)

func (c StopCause) String() string {
	switch c {
	case StopBreak:
		return "breakpoint"
	case StopWatch:
		return "watchpoint"
	case StopHalt:
		return "halt"
	case StopTrap:
		return "trap"
	case StopLimit:
		return "step limit"
	default:
		return fmt.Sprintf("StopCause(%d)", int(c))
	}
}

// Stop describes a debugger stop.
type Stop struct {
	Cause StopCause
	// At is the instruction pointer at the stop.
	At Addr
	// Watched and Old/New are set for watchpoint stops.
	Watched  Addr
	Old, New word.Word
	// Err carries the trap for StopTrap.
	Err error
}

// Debugger wraps a CPU with breakpoints and watchpoints.
type Debugger struct {
	C *cpu.CPU

	breaks  map[Addr]bool
	watches map[Addr]word.Word
}

// New returns a debugger for c.
func New(c *cpu.CPU) *Debugger {
	return &Debugger{C: c, breaks: map[Addr]bool{}, watches: map[Addr]word.Word{}}
}

// AddBreak arms a breakpoint.
func (d *Debugger) AddBreak(a Addr) { d.breaks[a] = true }

// RemoveBreak disarms a breakpoint.
func (d *Debugger) RemoveBreak(a Addr) { delete(d.breaks, a) }

// AddWatch arms a watchpoint on a word, capturing its current value.
func (d *Debugger) AddWatch(a Addr) error {
	w, err := d.peek(a)
	if err != nil {
		return err
	}
	d.watches[a] = w
	return nil
}

// peek reads a word with operator privilege.
func (d *Debugger) peek(a Addr) (word.Word, error) {
	sdw, err := d.C.Table().Fetch(a.Segno)
	if err != nil {
		return 0, err
	}
	if !sdw.Present || a.Wordno >= sdw.Bound {
		return 0, fmt.Errorf("debug: %v outside its segment", a)
	}
	return d.C.Mem().Read(seg.Translate(sdw, a.Wordno))
}

// checkWatches returns the first changed watchpoint, if any, and
// refreshes the stored values.
func (d *Debugger) checkWatches() (Addr, word.Word, word.Word, bool) {
	// Deterministic order for reproducible stops.
	addrs := make([]Addr, 0, len(d.watches))
	for a := range d.watches {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool {
		if addrs[i].Segno != addrs[j].Segno {
			return addrs[i].Segno < addrs[j].Segno
		}
		return addrs[i].Wordno < addrs[j].Wordno
	})
	for _, a := range addrs {
		old := d.watches[a]
		cur, err := d.peek(a)
		if err != nil {
			continue
		}
		if cur != old {
			d.watches[a] = cur
			return a, old, cur, true
		}
	}
	return Addr{}, 0, 0, false
}

// Step executes one instruction (ignoring breakpoints) and reports any
// watchpoint change.
func (d *Debugger) Step() (*Stop, error) {
	if err := d.C.Step(); err != nil {
		return &Stop{Cause: StopTrap, At: d.here(), Err: err}, nil
	}
	if a, old, cur, hit := d.checkWatches(); hit {
		return &Stop{Cause: StopWatch, At: d.here(), Watched: a, Old: old, New: cur}, nil
	}
	if d.C.Halted {
		return &Stop{Cause: StopHalt, At: d.here()}, nil
	}
	return nil, nil
}

func (d *Debugger) here() Addr {
	return Addr{Segno: d.C.IPR.Segno, Wordno: d.C.IPR.Wordno}
}

// Run executes until a breakpoint, watchpoint change, halt, trap, or
// the step limit.
func (d *Debugger) Run(maxSteps int) *Stop {
	for i := 0; i < maxSteps; i++ {
		if d.breaks[d.here()] {
			return &Stop{Cause: StopBreak, At: d.here()}
		}
		stop, err := d.Step()
		if err != nil {
			return &Stop{Cause: StopTrap, At: d.here(), Err: err}
		}
		if stop != nil {
			return stop
		}
	}
	return &Stop{Cause: StopLimit, At: d.here()}
}

// Dump renders the register state: the instruction pointer with its
// ring, the accumulators, the pointer registers, index registers and
// indicators.
func (d *Debugger) Dump() string {
	c := d.C
	var sb strings.Builder
	fmt.Fprintf(&sb, "IPR %v   A %v   Q %v\n", c.IPR, c.A, c.Q)
	for i := 0; i < 8; i += 2 {
		fmt.Fprintf(&sb, "PR%d %-24v PR%d %-24v\n", i, c.PR[i], i+1, c.PR[i+1])
	}
	fmt.Fprintf(&sb, "X   %o %o %o %o %o %o %o %o\n",
		c.X[0], c.X[1], c.X[2], c.X[3], c.X[4], c.X[5], c.X[6], c.X[7])
	fmt.Fprintf(&sb, "IND zero=%v neg=%v carry=%v   cycles=%d\n",
		c.Ind.Zero, c.Ind.Neg, c.Ind.Carry, c.Cycles)
	return sb.String()
}
