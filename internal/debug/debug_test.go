package debug_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/debug"
	"repro/internal/image"
	"repro/internal/sup"
)

const dbgSrc = `
        .seg    main
        .bracket 4,4,4
        .access rwe
        lia     1
        sta     counter
        lia     2
        sta     counter
        stic    pr6|0,+1
        call    svc$entry
        hlt
        .entry  counter
counter: .word  0

        .seg    svc
        .bracket 1,1,5
        .gate   entry
entry:  eap5    *pr0|0
        spr6    pr5|0
        lia     9
        eap6    *pr5|0
        return  *pr6|0
`

func boot(t *testing.T) (*image.Image, *asm.Program, *debug.Debugger) {
	t.Helper()
	prog, err := asm.Assemble(dbgSrc)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	sup.Attach(img, "dbg")
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	return img, prog, debug.New(img.CPU)
}

func TestBreakpointAtGate(t *testing.T) {
	img, _, d := boot(t)
	svcSeg, _ := img.Segno("svc")
	d.AddBreak(debug.Addr{Segno: svcSeg, Wordno: 0}) // the gate's vector slot
	stop := d.Run(1000)
	if stop.Cause != debug.StopBreak {
		t.Fatalf("stop: %+v", stop)
	}
	if stop.At.Segno != svcSeg || stop.At.Wordno != 0 {
		t.Errorf("stopped at %v", stop.At)
	}
	// The machine is IN ring 1 now (the downward call happened), with
	// the breakpoint instruction not yet executed.
	if img.CPU.IPR.Ring != 1 {
		t.Errorf("ring at break: %d", img.CPU.IPR.Ring)
	}
	// Removing the break lets the run finish.
	d.RemoveBreak(debug.Addr{Segno: svcSeg, Wordno: 0})
	stop = d.Run(1000)
	if stop.Cause != debug.StopHalt {
		t.Fatalf("second stop: %+v", stop)
	}
	if img.CPU.A.Int64() != 9 {
		t.Errorf("A = %d", img.CPU.A.Int64())
	}
}

func TestWatchpoint(t *testing.T) {
	img, prog, d := boot(t)
	mainSeg, _ := img.Segno("main")
	counterOff := prog.Segment("main").Symbols["counter"]
	wa := debug.Addr{Segno: mainSeg, Wordno: counterOff}
	if err := d.AddWatch(wa); err != nil {
		t.Fatal(err)
	}
	// First stop: counter 0 -> 1.
	stop := d.Run(1000)
	if stop.Cause != debug.StopWatch || stop.Watched != wa {
		t.Fatalf("stop: %+v", stop)
	}
	if stop.Old.Int64() != 0 || stop.New.Int64() != 1 {
		t.Errorf("transition %v -> %v", stop.Old, stop.New)
	}
	// Second stop: 1 -> 2.
	stop = d.Run(1000)
	if stop.Cause != debug.StopWatch || stop.New.Int64() != 2 {
		t.Fatalf("second stop: %+v", stop)
	}
	// Then a clean halt.
	stop = d.Run(1000)
	if stop.Cause != debug.StopHalt {
		t.Fatalf("final stop: %+v", stop)
	}
}

func TestStepAndDump(t *testing.T) {
	_, _, d := boot(t)
	stop, err := d.Step()
	if err != nil || stop != nil {
		t.Fatalf("step: %v %v", stop, err)
	}
	dump := d.Dump()
	for _, want := range []string{"IPR", "PR0", "PR7", "IND", "cycles="} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %s:\n%s", want, dump)
		}
	}
}

func TestStopOnTrap(t *testing.T) {
	prog, err := asm.Assemble(`
        .seg    main
        .bracket 4,4,4
        .word   0               ; illegal opcode
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	d := debug.New(img.CPU)
	stop := d.Run(100)
	if stop.Cause != debug.StopTrap || stop.Err == nil {
		t.Fatalf("stop: %+v", stop)
	}
}

func TestStopLimit(t *testing.T) {
	prog, err := asm.Assemble(`
        .seg    main
        .bracket 4,4,4
loop:   tra     loop
`)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	d := debug.New(img.CPU)
	if stop := d.Run(25); stop.Cause != debug.StopLimit {
		t.Fatalf("stop: %+v", stop)
	}
}

func TestWatchErrors(t *testing.T) {
	_, _, d := boot(t)
	if err := d.AddWatch(debug.Addr{Segno: 9999, Wordno: 0}); err == nil {
		t.Error("watch on absent segment accepted")
	}
}

func TestStopCauseStrings(t *testing.T) {
	for _, c := range []debug.StopCause{debug.StopBreak, debug.StopWatch,
		debug.StopHalt, debug.StopTrap, debug.StopLimit, debug.StopCause(9)} {
		if c.String() == "" {
			t.Errorf("empty string for %d", c)
		}
	}
	if (debug.Addr{Segno: 0o12, Wordno: 0o7}).String() != "(12|7)" {
		t.Error("addr string")
	}
}
