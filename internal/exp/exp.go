// Package exp is the experiment harness: it regenerates, as text
// reports, every figure of the paper (F1-F9) and every quantitative or
// structural claim the paper makes in prose (T1-T12), per the index in
// DESIGN.md. The ringbench command prints the reports; EXPERIMENTS.md
// records paper-vs-measured for each; the benchmarks in bench_test.go
// time the same kernels under the Go benchmark harness.
package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is one experiment's report.
type Result struct {
	ID    string
	Title string
	Lines []string
	// HostNs is the wall-clock time the experiment took on the host, in
	// nanoseconds, stamped by Run.
	HostNs int64
	// Metrics holds the experiment's machine-readable measurements —
	// simulated cycles, cache hit rates and the like — for ringbench
	// -json. Nil when the experiment reports prose only.
	Metrics map[string]float64
}

func (r *Result) addf(format string, args ...interface{}) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Result) add(lines ...string) {
	r.Lines = append(r.Lines, lines...)
}

// metric records one machine-readable measurement.
func (r *Result) metric(name string, v float64) {
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// String renders the report.
func (r *Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// runner produces one experiment's result.
type runner struct {
	title string
	run   func() (*Result, error)
}

var registry = map[string]runner{}

func register(id, title string, run func(r *Result) error) {
	registry[id] = runner{title: title, run: func() (*Result, error) {
		r := &Result{ID: id, Title: title}
		start := time.Now()
		if err := run(r); err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		r.HostNs = time.Since(start).Nanoseconds()
		return r, nil
	}}
}

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string) (*Result, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	return r.run()
}

// RunAll executes every experiment in id order.
func RunAll() ([]*Result, error) {
	var out []*Result
	for _, id := range IDs() {
		r, err := Run(id)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
