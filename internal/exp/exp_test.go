package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
)

type coreRing = core.Ring

func TestIDsComplete(t *testing.T) {
	want := []string{"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9",
		"T1", "T10", "T11", "T12", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IDs[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("F99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// Every experiment must run successfully and produce a non-trivial
// report. The experiments contain their own shape assertions (ratios,
// identical-code checks, zero-trap checks), so this is the main
// regression gate for the reproduction.
func TestRunAllExperiments(t *testing.T) {
	results, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if strings.Count(r.String(), "\n") < 4 {
			t.Errorf("%s: report too short:\n%s", r.ID, r.String())
		}
		if !strings.Contains(r.String(), r.ID) {
			t.Errorf("%s: report missing id", r.ID)
		}
	}
}

func TestT1ShapeHolds(t *testing.T) {
	r, err := Run("T1")
	if err != nil {
		t.Fatal(err)
	}
	out := r.String()
	if !strings.Contains(out, "software/hardware cycle ratio") {
		t.Errorf("T1 report: %s", out)
	}
}

func TestCallKernelSourceIdenticalCaller(t *testing.T) {
	a := CallKernelParams{CallerRing: 4, ServiceRing: 4, Iterations: 10}
	b := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 10}
	srcA := a.Source()
	srcB := b.Source()
	mainA := srcA[:strings.Index(srcA, ".seg    svc")]
	mainB := srcB[:strings.Index(srcB, ".seg    svc")]
	if mainA != mainB {
		t.Error("caller source differs between same-ring and cross-ring variants")
	}
}

func TestKernelRunsProduceWork(t *testing.T) {
	p := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 5}
	cycles, steps, err := p.RunHardware(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cycles == 0 || steps < 5*5 {
		t.Errorf("cycles=%d steps=%d", cycles, steps)
	}
	swCycles, _, crossings, err := p.RunSoftware(0)
	if err != nil {
		t.Fatal(err)
	}
	if crossings != 10 {
		t.Errorf("crossings = %d", crossings)
	}
	if swCycles <= cycles {
		t.Errorf("software cheaper than hardware: %d vs %d", swCycles, cycles)
	}
}

func TestStraightLineKernel(t *testing.T) {
	cyclesOn, stepsOn, err := RunStraightLine(50, optValidate(true))
	if err != nil {
		t.Fatal(err)
	}
	cyclesOff, stepsOff, err := RunStraightLine(50, optValidate(false))
	if err != nil {
		t.Fatal(err)
	}
	if stepsOn != stepsOff {
		t.Errorf("step counts differ: %d vs %d", stepsOn, stepsOff)
	}
	if cyclesOn != cyclesOff {
		t.Errorf("cycle counts differ: %d vs %d", cyclesOn, cyclesOff)
	}
}

func TestChainKernelDepths(t *testing.T) {
	cases := []struct {
		caller int
		chain  []int
	}{
		{5, []int{1}},
		{5, []int{3, 1}},
		{6, []int{4, 2, 0}},
	}
	var prev uint64
	for _, tc := range cases {
		chain := make([]coreRing, len(tc.chain))
		for i, r := range tc.chain {
			chain[i] = coreRing(r)
		}
		cycles, steps, err := RunChain(coreRing(tc.caller), chain, 5)
		if err != nil {
			t.Fatalf("chain %v: %v", tc.chain, err)
		}
		if steps == 0 {
			t.Fatalf("chain %v did no work", tc.chain)
		}
		if cycles <= prev {
			t.Errorf("deeper chain %v not costlier: %d <= %d", tc.chain, cycles, prev)
		}
		prev = cycles
	}
}
