package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/figures"
)

// exampleSegments are the SDW views used by the truth-table
// experiments: the paper's two figures plus the other archetypes the
// "Use of Rings" section names.
func exampleSegments() []struct {
	name string
	view core.SDWView
} {
	return []struct {
		name string
		view core.SDWView
	}{
		{"fig1 data (w<=4, r<=5)", figures.Figure1View()},
		{"fig2 gated proc [3,3] ext 5", figures.Figure2View()},
		{"supervisor data (r/w<=0)", core.SDWView{
			Present: true, Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0}, Bound: 64,
		}},
		{"ring-0 gate seg [0,0] ext 5", core.SDWView{
			Present: true, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 5}, GateCount: 3, Bound: 64,
		}},
		{"user proc [4,4]", core.SDWView{
			Present: true, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 4}, Bound: 64,
		}},
		{"shared library [0,7]", core.SDWView{
			Present: true, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 7, R3: 7}, Bound: 64,
		}},
	}
}

func markFor(v *core.Violation) string {
	if v == nil {
		return "ok"
	}
	switch v.Kind {
	case core.ViolationBound:
		return "bound"
	case core.ViolationNoRead, core.ViolationNoWrite, core.ViolationNoExecute:
		return "flag"
	case core.ViolationReadBracket, core.ViolationWriteBracket, core.ViolationExecuteBracket:
		return "brkt"
	case core.ViolationNotAGate:
		return "gate"
	case core.ViolationGateExtension:
		return "ext"
	case core.ViolationRingAlarm:
		return "alarm"
	default:
		return "viol"
	}
}

func init() {
	register("F1", "Figure 1: access indicators, writable data segment", func(r *Result) error {
		r.add(figures.Figure1())
		// Verify the diagram against the validation predicates.
		v := figures.Figure1View()
		for ring := core.Ring(0); ring < core.NumRings; ring++ {
			w := core.CheckWrite(v, 0, ring) == nil
			rd := core.CheckRead(v, 0, ring) == nil
			if w != (ring <= 4) || rd != (ring <= 5) {
				return fmt.Errorf("figure 1 semantics wrong at ring %d", ring)
			}
		}
		r.addf("verified: write permitted exactly in rings 0-4, read in 0-5, execute never")
		return nil
	})

	register("F2", "Figure 2: access indicators, gated pure procedure", func(r *Result) error {
		r.add(figures.Figure2())
		v := figures.Figure2View()
		for ring := core.Ring(0); ring < core.NumRings; ring++ {
			x := core.CheckFetch(v, 0, ring) == nil
			if x != (ring == 3) {
				return fmt.Errorf("figure 2 execute semantics wrong at ring %d", ring)
			}
			d, viol := core.DecideCall(v, 0, ring, ring, false)
			gateOK := viol == nil && d.Outcome == core.CallDownward
			if gateOK != (ring == 4 || ring == 5) {
				return fmt.Errorf("figure 2 gate semantics wrong at ring %d", ring)
			}
		}
		r.addf("verified: execute exactly in ring 3, downward gate calls exactly from rings 4-5")
		return nil
	})

	register("F3", "Figure 3: storage formats and registers", func(r *Result) error {
		r.add(figures.Figure3())
		return nil
	})

	register("F4", "Figure 4: instruction fetch validation", func(r *Result) error {
		r.addf("fetch validation by ring of execution (ok / flag off / outside bracket):")
		r.addf("%-30s %s", "segment", "ring 0    1    2    3    4    5    6    7")
		for _, s := range exampleSegments() {
			row := fmt.Sprintf("%-30s     ", s.name)
			for ring := core.Ring(0); ring < core.NumRings; ring++ {
				row += fmt.Sprintf("%-5s", markFor(core.CheckFetch(s.view, 0, ring)))
			}
			r.add(row)
		}
		return nil
	})

	register("F5", "Figure 5: effective address and effective ring formation", func(r *Result) error {
		r.addf("TPR.RING after each step (monotone max rule):")
		r.addf("%-10s %-10s %-10s %-12s %-10s", "IPR.RING", "PRn.RING", "IND.RING", "container R1", "effective")
		cases := []struct{ ipr, pr, ind, r1 core.Ring }{
			{4, 0, 0, 0},
			{4, 5, 0, 0},
			{1, 4, 0, 0},
			{1, 1, 5, 0},
			{1, 1, 0, 5},
			{0, 3, 5, 7},
			{7, 0, 0, 0},
		}
		for _, c := range cases {
			afterPR := core.EffectiveRingPR(c.ipr, c.pr)
			eff := core.EffectiveRingIndirect(afterPR, c.ind, c.r1)
			r.addf("%-10d %-10d %-10d %-12d %-10d", c.ipr, c.pr, c.ind, c.r1, eff)
		}
		r.add("", "the effective ring records the highest numbered ring that could have",
			"influenced the address; it never decreases during the calculation")
		return nil
	})

	register("F6", "Figure 6: operand read/write validation", func(r *Result) error {
		for _, kind := range []core.AccessKind{core.AccessRead, core.AccessWrite} {
			r.addf("%s validation by effective ring:", kind)
			r.addf("%-30s %s", "segment", "ring 0    1    2    3    4    5    6    7")
			for _, s := range exampleSegments() {
				row := fmt.Sprintf("%-30s     ", s.name)
				for ring := core.Ring(0); ring < core.NumRings; ring++ {
					var viol *core.Violation
					if kind == core.AccessRead {
						viol = core.CheckRead(s.view, 0, ring)
					} else {
						viol = core.CheckWrite(s.view, 0, ring)
					}
					row += fmt.Sprintf("%-5s", markFor(viol))
				}
				r.add(row)
			}
			r.add("")
		}
		return nil
	})

	register("F7", "Figure 7: transfer and EAP validation", func(r *Result) error {
		r.addf("transfer advance check (effective ring = ring of execution):")
		r.addf("%-30s %s", "segment", "ring 0    1    2    3    4    5    6    7")
		for _, s := range exampleSegments() {
			row := fmt.Sprintf("%-30s     ", s.name)
			for ring := core.Ring(0); ring < core.NumRings; ring++ {
				row += fmt.Sprintf("%-5s", markFor(core.CheckTransfer(s.view, 0, ring, ring)))
			}
			r.add(row)
		}
		r.add("")
		r.addf("ring alarm: a transfer whose effective ring exceeds the ring of execution")
		v := exampleSegments()[5].view // shared library, executable everywhere
		viol := core.CheckTransfer(v, 0, 3, 5)
		r.addf("  transfer in ring 3 with effective ring 5 into [0,7] library: %s", markFor(viol))
		if viol == nil || viol.Kind != core.ViolationRingAlarm {
			return fmt.Errorf("ring alarm not raised")
		}
		r.add("EAP-type instructions form the address but reference nothing: never validated")
		return nil
	})

	register("F8", "Figure 8: the CALL instruction", func(r *Result) error {
		v := figures.Figure2View()
		r.addf("CALL at gate word 0 of the Figure-2 segment (execute [3,3], gates 2, ext 5):")
		r.addf("%-12s %-28s %s", "caller ring", "outcome", "new ring")
		for ring := core.Ring(0); ring < core.NumRings; ring++ {
			d, viol := core.DecideCall(v, 0, ring, ring, false)
			if viol != nil {
				r.addf("%-12d %-28s %s", ring, "violation: "+viol.Kind.String(), "-")
				continue
			}
			r.addf("%-12d %-28s %d", ring, d.Outcome.String(), d.NewRing)
		}
		r.add("")
		r.addf("CALL at non-gate word 2 from ring 4: %s",
			markFor(func() *core.Violation { _, v := core.DecideCall(v, 2, 4, 4, false); return v }()))
		d, _ := core.DecideCall(v, 100, 3, 3, true)
		r.addf("CALL within the same segment bypasses the gate list: outcome %v", d.Outcome)

		// Measured: downward call/return round trip, no traps.
		p := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 100}
		cycles, steps, err := p.RunHardware(nil)
		if err != nil {
			return err
		}
		r.addf("")
		r.addf("measured: 100 downward call/return round trips (ring 4 -> 1 -> 4):")
		r.addf("  %d instructions, %d cycles, %.1f cycles/round-trip, 0 traps",
			steps, cycles, float64(cycles)/100)

		// Depth sweep: chains of nested downward calls, the layered-
		// supervisor shape, all still trap-free.
		r.addf("")
		r.addf("nested downward call chains (full frame protocol at each layer):")
		r.addf("  %-28s %14s", "chain", "cycles/trip")
		for _, tc := range []struct {
			name   string
			caller core.Ring
			chain  []core.Ring
		}{
			{"ring 5 -> 1", 5, []core.Ring{1}},
			{"ring 5 -> 3 -> 1", 5, []core.Ring{3, 1}},
			{"ring 6 -> 4 -> 2 -> 0", 6, []core.Ring{4, 2, 0}},
		} {
			ccycles, _, err := RunChain(tc.caller, tc.chain, 50)
			if err != nil {
				return err
			}
			r.addf("  %-28s %14.1f", tc.name, float64(ccycles)/50)
		}
		return nil
	})

	register("F9", "Figure 9: the RETURN instruction", func(r *Result) error {
		target := core.SDWView{
			Present: true, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 5, R3: 5}, Bound: 64,
		}
		r.addf("RETURN into a segment executable in rings 4-5:")
		r.addf("%-14s %-14s %s", "current ring", "effective ring", "outcome")
		for _, c := range []struct{ ipr, eff core.Ring }{
			{1, 4}, {1, 5}, {4, 4}, {5, 4}, {1, 6}, {1, 2},
		} {
			d, viol := core.DecideReturn(target, 0, c.ipr, c.eff)
			out := d.Outcome.String()
			if viol != nil {
				out = "violation: " + viol.Kind.String()
			}
			r.addf("%-14d %-14d %s", c.ipr, c.eff, out)
		}
		r.add("",
			"on an upward return every PRn.RING is raised to at least the new ring;",
			"with PRs loadable only by EAP this keeps PRn.RING >= IPR.RING always,",
			"so no return can be directed below the ring of the caller")
		rings := []core.Ring{0, 1, 4, 7}
		core.RaisePRRings(rings, 4)
		r.addf("example: PR rings {0,1,4,7} after return to ring 4 -> %v", rings)
		return nil
	})
}
