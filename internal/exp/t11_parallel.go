package exp

import (
	"fmt"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sup"
)

// T11: the multi-processor configuration. The paper's machine model has
// several processors sharing one core memory, each with its own DBR and
// its own SDW associative memory. The experiment runs the same batch of
// processes on one simulated processor and on several concurrent ones,
// and checks that the architectural outcome — every process's exit code,
// the total instructions executed, the total simulated cycles — is
// identical: multiprogramming over more processors changes wall-clock
// time, never behaviour.

// t11Source is the per-process workload: five downward calls through a
// gate into a ring-1 subsystem that adds 7 to the accumulator. The
// processes share the code segments (read/execute) but write only their
// private stacks, so they are independent under concurrency.
const t11Source = `
        .seg    svc
        .bracket 1,1,5
        .access re
        .gate   bump
bump:   eap5    *pr0|0
        spr6    pr5|0
        ada     seven
        eap6    *pr5|0
        return  *pr6|0
seven:  .word   7

        .seg    user
        .bracket 4,4,4
        lia     5
        sta     pr6|2
        lia     0
        sta     pr6|3
loop:   lda     pr6|3
        stic    pr6|0,+1
        call    svc$bump
        sta     pr6|3
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        lda     pr6|3
        stic    pr6|0,+1
        call    sysgates$exit
`

func init() {
	register("T11", "multi-processor execution: concurrent processors sharing core", func(r *Result) error {
		const (
			nProcesses = 6
			nWorkers   = 3
			wantExit   = 5 * 7
		)

		// run builds a fresh system backed by nproc processors, spawns
		// the batch and runs it in parallel, returning the per-processor
		// stats and the summed steps and cycles.
		run := func(nproc int) ([]proc.ProcessorStats, uint64, uint64, error) {
			opt := cpu.DefaultOptions()
			opt.SDWCache = true
			s := proc.NewSystem(proc.Config{Processors: nproc, CPUOptions: &opt})
			prog, err := asm.Assemble(sup.GateSource + t11Source)
			if err != nil {
				return nil, 0, 0, err
			}
			if err := s.AddProgram(prog, func(string) acl.List { return nil }); err != nil {
				return nil, 0, 0, err
			}
			var ps []*proc.Process
			for i := 0; i < nProcesses; i++ {
				p, err := s.Spawn(fmt.Sprintf("P%d", i), fmt.Sprintf("user%d", i), "user", 4)
				if err != nil {
					return nil, 0, 0, err
				}
				ps = append(ps, p)
			}
			stats, err := s.RunParallel(nproc, 100000)
			if err != nil {
				return nil, 0, 0, err
			}
			for _, p := range ps {
				if !p.Exited || p.ExitCode != wantExit {
					return nil, 0, 0, fmt.Errorf("%d processors: process %s exited=%v code=%d, want %d",
						nproc, p.Name, p.Exited, p.ExitCode, wantExit)
				}
			}
			var steps, cycles uint64
			for _, st := range stats {
				steps += st.Steps
				cycles += st.Cycles
			}
			return stats, steps, cycles, nil
		}

		_, steps1, cycles1, err := run(1)
		if err != nil {
			return err
		}
		statsN, stepsN, cyclesN, err := run(nWorkers)
		if err != nil {
			return err
		}

		r.addf("%d processes, each: 5 gated downward calls (ring 4 -> 1), then exit(%d)", nProcesses, 5*7)
		r.addf("")
		r.addf("%-14s %12s %12s", "configuration", "steps", "cycles")
		r.addf("%-14s %12d %12d", "1 processor", steps1, cycles1)
		r.addf("%-14s %12d %12d", fmt.Sprintf("%d processors", nWorkers), stepsN, cyclesN)
		if steps1 != stepsN || cycles1 != cyclesN {
			return fmt.Errorf("multi-processor run changed architectural behaviour: steps %d vs %d, cycles %d vs %d",
				steps1, stepsN, cycles1, cyclesN)
		}
		r.addf("")
		r.addf("per-processor SDW associative memories (%d-processor run):", nWorkers)
		r.addf("%-10s %10s %8s %8s %8s %9s", "processor", "processes", "hits", "misses", "hit%", "flushes")
		var hits, misses uint64
		for _, st := range statsN {
			hits += st.Cache.Hits
			misses += st.Cache.Misses
			r.addf("%-10d %10d %8d %8d %7.1f%% %9d",
				st.Processor, st.Processes, st.Cache.Hits, st.Cache.Misses,
				100*st.Cache.HitRate(), st.Cache.Flushes)
		}
		r.addf("")
		r.addf("identical totals: processors multiply throughput, and each carries")
		r.addf("its own DBR and associative memory — \"a single segment may be part")
		r.addf("of several virtual memories at the same time\"")
		r.metric("processors", float64(nWorkers))
		r.metric("cycles", float64(cyclesN))
		r.metric("steps", float64(stepsN))
		if hits+misses > 0 {
			r.metric("cache_hit_rate", float64(hits)/float64(hits+misses))
		}
		return nil
	})
}
