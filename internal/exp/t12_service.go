package exp

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/service"
)

// T12: the protection-decision service under concurrent load. The
// service wraps the MMU decision procedure in a pool of workers — one
// decision worker each, reading immutable RCU descriptor snapshots
// pinned per batch — while a supervisor thread streams descriptor
// edits (SetBrackets, Revoke, Restore) through the store's publish
// path. Every decision reports the publication epoch of the snapshot
// it consulted; replaying the same edit script single-threaded gives
// an oracle, and each concurrent decision must be identical to the
// oracle's answer at that epoch's state. Under snapshot reads every
// interval is a single even epoch — a clean snapshot — so the check
// is exact, not an interval search.

// t12Segments is the image under test.
func t12Segments() []service.Segment {
	return []service.Segment{
		{Name: "data", Size: 64, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 64, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
		{Name: "secret", Size: 16, Read: true,
			Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}},
		{Name: "lib", Size: 64, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 7, R3: 7}},
	}
}

// t12Script is the supervisor's edit sequence. Every edit changes only
// the even word of its descriptor (brackets or the present bit), so a
// concurrent reader of the word-atomic core sees exactly the old or the
// new descriptor, never a torn one.
func t12Script(n int) []func(st *service.Store) error {
	wide := core.Brackets{R1: 2, R2: 4, R3: 4}
	narrow := core.Brackets{R1: 0, R2: 1, R3: 1}
	muts := make([]func(st *service.Store) error, n)
	for i := range muts {
		switch i % 4 {
		case 0:
			muts[i] = func(st *service.Store) error { return st.SetBrackets(0, true, true, false, narrow, 0) }
		case 1:
			muts[i] = func(st *service.Store) error { return st.Revoke(1) }
		case 2:
			muts[i] = func(st *service.Store) error { return st.SetBrackets(0, true, true, false, wide, 0) }
		default:
			muts[i] = func(st *service.Store) error { return st.Restore(1) }
		}
	}
	return muts
}

// t12Probes is the fixed query batch the load generator submits; the
// first eight depend on the mutated descriptors, the last two are
// static controls.
func t12Probes() []service.Query {
	eff3 := core.Ring(3)
	return []service.Query{
		{Op: service.OpAccess, Ring: 4, Segment: "data", Wordno: 3, Kind: core.AccessRead},
		{Op: service.OpAccess, Ring: 1, Segment: "data", Kind: core.AccessWrite},
		{Op: service.OpAccess, Ring: 3, Segment: "data", Kind: core.AccessWrite},
		{Op: service.OpAccess, Ring: 2, Segment: "code", Kind: core.AccessExecute},
		{Op: service.OpCall, Ring: 4, Segment: "code", Wordno: 1},
		{Op: service.OpCall, Ring: 0, Segment: "code", Wordno: 0},
		{Op: service.OpReturn, Ring: 2, Segment: "code", EffRing: &eff3},
		{Op: service.OpEffRing, Ring: 1, Chain: []service.ChainStep{{Ring: 0, Segno: 0}}},
		{Op: service.OpAccess, Ring: 5, Segment: "secret", Kind: core.AccessRead},
		{Op: service.OpAccess, Ring: 7, Segment: "lib", Kind: core.AccessExecute},
	}
}

// t12Strip clears the fields that legitimately differ between a
// concurrent decision and its oracle counterpart.
func t12Strip(d service.Decision) service.Decision {
	d.VersionLo, d.VersionHi, d.Worker, d.Shard = 0, 0, 0, 0
	return d
}

// t12Store builds the image under a single-shard store: T12's oracle
// indexes the whole edit script by epoch/2, which is only meaningful
// when one shard's epoch counts every mutation. The per-shard version
// of this property is exercised by TestShardedConcurrentOracle in
// internal/service.
func t12Store() (*service.Store, error) {
	return service.NewStore(service.StoreConfig{Shards: 1}, t12Segments())
}

func init() {
	register("T12", "decision service: concurrent workers vs. single-threaded oracle", func(r *Result) error {
		const (
			workers   = 4
			clients   = 4
			rounds    = 40
			mutations = 400
		)
		ctx := context.Background()

		st, err := t12Store()
		if err != nil {
			return err
		}
		svc, err := service.New(st, service.Config{Workers: workers, QueueDepth: 128})
		if err != nil {
			return err
		}
		defer svc.Close()

		probes := t12Probes()
		script := t12Script(mutations)

		// Load phase: in every round, the clients' batches race one slice
		// of the edit script. Within a round the interleaving is up to the
		// scheduler; the round barrier guarantees that edits land between
		// batches across the run even on a single-CPU host, so later
		// batches must observe them (each batch pins the then-current
		// snapshot, so a published edit is visible to every batch that
		// starts after it).
		type obs struct{ ds []service.Decision }
		results := make(chan obs, clients*rounds)
		errs := make(chan error, clients+1)
		var shedCount atomic.Uint64
		perRound := mutations / rounds
		for round := 0; round < rounds; round++ {
			var wg sync.WaitGroup
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					ds, err := svc.Submit(ctx, probes)
					if err == service.ErrQueueFull {
						shedCount.Add(1)
						return
					}
					if err != nil {
						errs <- err
						return
					}
					results <- obs{ds}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, m := range script[round*perRound : (round+1)*perRound] {
					if err := m(st); err != nil {
						errs <- err
						return
					}
				}
			}()
			wg.Wait()
		}
		close(results)
		select {
		case err := <-errs:
			return err
		default:
		}
		if got := st.Version(); got != 2*mutations {
			return fmt.Errorf("final store version %d, want %d", got, 2*mutations)
		}

		// Oracle phase: a fresh store stepped through the same script,
		// served by a single uncached worker, answers each probe at every
		// state k.
		ost, err := t12Store()
		if err != nil {
			return err
		}
		osvc, err := service.New(ost, service.Config{Workers: 1})
		if err != nil {
			return err
		}
		defer osvc.Close()
		oracle := make([][]service.Decision, mutations+1)
		for k := 0; k <= mutations; k++ {
			if k > 0 {
				if err := script[k-1](ost); err != nil {
					return fmt.Errorf("oracle mutation %d: %v", k, err)
				}
			}
			ds, err := osvc.Submit(ctx, probes)
			if err != nil {
				return fmt.Errorf("oracle state %d: %v", k, err)
			}
			oracle[k] = make([]service.Decision, len(ds))
			for i, d := range ds {
				oracle[k][i] = t12Strip(d)
			}
		}

		// Verdict: every concurrent decision must equal the oracle at
		// some state within its epoch interval.
		checked, clean, overlapped := 0, 0, 0
		for o := range results {
			for i, d := range o.ds {
				lo, hi := d.VersionLo, d.VersionHi
				if hi < lo {
					return fmt.Errorf("probe %d: epoch interval [%d,%d] runs backwards", i, lo, hi)
				}
				if lo == hi && lo%2 == 0 {
					clean++
				} else {
					overlapped++
				}
				got := t12Strip(d)
				matched := false
				for k := lo / 2; k <= (hi+1)/2 && !matched; k++ {
					matched = got == oracle[k][i]
				}
				if !matched {
					return fmt.Errorf("probe %d: concurrent decision %+v matches no oracle state in [%d,%d]",
						i, got, lo/2, (hi+1)/2)
				}
				checked++
			}
		}
		if checked == 0 {
			return fmt.Errorf("no decisions to check")
		}

		snap := svc.Snapshot()
		if snap.Reads.Pins == 0 || snap.Reads.Lookups == 0 {
			return fmt.Errorf("/metrics reports idle snapshot readers: %+v", snap.Reads)
		}
		if snap.RCU.Publishes != mutations {
			return fmt.Errorf("%d snapshot publishes for %d descriptor edits", snap.RCU.Publishes, mutations)
		}
		if len(snap.LatencyNs) == 0 {
			return fmt.Errorf("/metrics reports an empty latency histogram")
		}

		r.addf("%d workers (one MMU reading pinned RCU snapshots each), %d clients x %d probe batches,",
			workers, clients, rounds)
		r.addf("%d descriptor edits, each publishing a fresh shard snapshot", mutations)
		r.addf("")
		r.addf("decisions checked against oracle: %d (every one identical at the", checked)
		r.addf("oracle state of its pinned snapshot; %d clean snapshots, %d overlapping", clean, overlapped)
		r.addf("an edit, %d batches shed by backpressure)", shedCount.Load())
		r.addf("")
		r.addf("per-worker snapshot readers (pins amortize lookups, like cache hits):")
		r.addf("%-8s %10s %10s %14s", "worker", "pins", "lookups", "lookups/pin")
		for i, c := range snap.PerWorkerReads {
			perPin := float64(c.Lookups)
			if c.Pins > 0 {
				perPin /= float64(c.Pins)
			}
			r.addf("%-8d %10d %10d %14.1f", i, c.Pins, c.Lookups, perPin)
		}
		r.addf("")
		r.addf("store RCU: %d publishes, %d buffers reused, %d recycled, %d dropped",
			snap.RCU.Publishes, snap.RCU.Reused, snap.RCU.Recycled, snap.RCU.Dropped)
		r.addf("")
		r.addf("decision mix: %d allowed, %d denied, %d trapped; faults by kind:",
			snap.Allowed, snap.Denied, snap.Trapped)
		for kind, n := range snap.Faults {
			r.addf("  %-50s %8d", kind, n)
		}
		r.addf("")
		r.addf("batch latency histogram: %d non-empty power-of-two buckets", len(snap.LatencyNs))
		r.addf("")
		r.addf("snapshot publication keeps readers coherent without locks: a worker")
		r.addf("pins one immutable snapshot per batch, so every decision is")
		r.addf("bit-identical to the sequential oracle at that snapshot's epoch")

		r.metric("workers", workers)
		r.metric("decisions", float64(checked))
		r.metric("oracle_states", float64(mutations+1))
		r.metric("clean_fraction", float64(clean)/float64(checked))
		r.metric("shed_batches", float64(shedCount.Load()))
		if snap.Reads.Pins > 0 {
			r.metric("lookups_per_pin", float64(snap.Reads.Lookups)/float64(snap.Reads.Pins))
		}
		r.metric("snapshot_publishes", float64(snap.RCU.Publishes))
		r.metric("buffers_reused", float64(snap.RCU.Reused))
		r.metric("latency_buckets", float64(len(snap.LatencyNs)))
		return nil
	})
}
