package exp

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/word"
)

func init() {
	register("T9", "limitation: no mutually suspicious programs in one process", func(r *Result) error {
		// The conclusion: "The subset access property of rings of
		// protection does not provide for what may be called 'mutually
		// suspicious programs' operating under the control of a single
		// process." Two subsystems, one in ring 2 and one in ring 3,
		// cannot protect themselves from each other symmetrically: the
		// lower-numbered ring always dominates.
		r.addf("subsystem S1 occupies ring 2, subsystem S2 occupies ring 3, same process")
		r.addf("")
		s1data := core.SDWView{
			Present: true, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 2, R3: 2}, Bound: 16,
		}
		s2data := core.SDWView{
			Present: true, Read: true, Write: true,
			Brackets: core.Brackets{R1: 3, R2: 3, R3: 3}, Bound: 16,
		}
		row := func(what string, viol *core.Violation) {
			outcome := "PERMITTED"
			if viol != nil {
				outcome = "denied (" + viol.Kind.String() + ")"
			}
			r.addf("  %-44s %s", what, outcome)
		}
		row("S1 (ring 2) reading S2's private data", core.CheckRead(s2data, 0, 2))
		row("S1 (ring 2) writing S2's private data", core.CheckWrite(s2data, 0, 2))
		row("S2 (ring 3) reading S1's private data", core.CheckRead(s1data, 0, 3))
		row("S2 (ring 3) writing S1's private data", core.CheckWrite(s1data, 0, 3))

		// Confirm on the machine: ring-2 code walks straight into the
		// ring-3 subsystem's data.
		prog, err := asm.Assemble(`
        .seg    sone
        .bracket 2,2,2
        lda     *p
        hlt
p:      .its    2, stwo_data$base
`)
		if err != nil {
			return err
		}
		img, err := asm.BuildImage(image.Config{}, prog, image.SegmentDef{
			Name: "stwo_data", Words: wordsOf(555),
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 3, R2: 3, R3: 3},
		})
		if err != nil {
			return err
		}
		if err := img.Start(2, "sone", 0); err != nil {
			return err
		}
		if _, err := img.CPU.Run(100); err != nil {
			return fmt.Errorf("ring-2 read of ring-3 data unexpectedly failed: %w", err)
		}
		if img.CPU.A.Int64() != 555 {
			return fmt.Errorf("machine read wrong value")
		}
		r.addf("")
		r.addf("machine check: ring-2 code read the ring-3 subsystem's datum (555)")
		r.addf("without any gate or audit — by design. \"It is just that subset")
		r.addf("property which imposes an organization which is easy to understand\";")
		r.addf("mutual suspicion requires the general domains the paper cites as an")
		r.addf("open research problem (Dennis & Van Horn, Lampson, Fabry, ...).")
		return nil
	})
}

// wordsOf is a tiny literal helper for experiment setup.
func wordsOf(vals ...int64) []word.Word {
	out := make([]word.Word, len(vals))
	for i, v := range vals {
		out[i] = word.FromInt(v)
	}
	return out
}
