package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/sup"
	"repro/internal/trap"
	"repro/internal/word"
)

const kernelIterations = 200

func init() {
	register("T1", "downward calls and upward returns without supervisor intervention (vs 645 software rings)", func(r *Result) error {
		p := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: kernelIterations}
		hwCycles, hwSteps, err := p.RunHardware(nil)
		if err != nil {
			return err
		}
		swCycles, swSteps, crossings, err := p.RunSoftware(0)
		if err != nil {
			return err
		}
		r.addf("workload: %d downward call / upward return round trips, ring 4 -> 1 -> 4,", kernelIterations)
		r.addf("identical object code on both machines")
		r.addf("")
		r.addf("%-24s %12s %12s %14s %10s", "machine", "instructions", "cycles", "cycles/trip", "crossings")
		r.addf("%-24s %12d %12d %14.1f %10s", "hardware rings", hwSteps, hwCycles,
			float64(hwCycles)/kernelIterations, "0 traps")
		r.addf("%-24s %12d %12d %14.1f %10d", "software rings (645)", swSteps, swCycles,
			float64(swCycles)/kernelIterations, crossings)
		ratio := float64(swCycles) / float64(hwCycles)
		r.addf("")
		r.addf("software/hardware cycle ratio: %.1fx", ratio)
		if ratio < 2 {
			return fmt.Errorf("expected software rings to cost much more (got %.2fx)", ratio)
		}
		if crossings != 2*kernelIterations {
			return fmt.Errorf("expected %d software crossings, got %d", 2*kernelIterations, crossings)
		}
		return nil
	})

	register("T2", "a call to a protected subsystem is identical to a call to a companion procedure", func(r *Result) error {
		same := CallKernelParams{CallerRing: 4, ServiceRing: 4, Iterations: kernelIterations}
		down := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: kernelIterations}

		// The caller's object code is literally identical: only the
		// service segment's declared brackets differ.
		progSame, err := asm.Assemble(same.Source())
		if err != nil {
			return err
		}
		progDown, err := asm.Assemble(down.Source())
		if err != nil {
			return err
		}
		wsame := progSame.Segment("main").Words
		wdown := progDown.Segment("main").Words
		if len(wsame) != len(wdown) {
			return fmt.Errorf("caller code differs in length")
		}
		for i := range wsame {
			if wsame[i] != wdown[i] {
				return fmt.Errorf("caller code differs at word %d", i)
			}
		}
		r.addf("caller object code identical across variants: %d words verified", len(wsame))

		sameCycles, _, err := same.RunHardware(nil)
		if err != nil {
			return err
		}
		downCycles, _, err := down.RunHardware(nil)
		if err != nil {
			return err
		}
		r.addf("")
		r.addf("%-38s %12s %14s", "variant", "cycles", "cycles/trip")
		r.addf("%-38s %12d %14.1f", "same-ring call (companion procedure)", sameCycles,
			float64(sameCycles)/kernelIterations)
		r.addf("%-38s %12d %14.1f", "cross-ring call (protected subsystem)", downCycles,
			float64(downCycles)/kernelIterations)
		diff := float64(downCycles) - float64(sameCycles)
		r.addf("")
		r.addf("difference: %.2f cycles/trip (%.2f%%)", diff/kernelIterations,
			100*diff/float64(sameCycles))
		// The shape claim: crossing a ring must cost essentially the
		// same as not crossing one.
		if diff < 0 {
			diff = -diff
		}
		if diff/float64(sameCycles) > 0.05 {
			return fmt.Errorf("cross-ring call cost deviates more than 5%% from same-ring")
		}
		return nil
	})

	register("T3", "automatic argument validation across rings", func(r *Result) error {
		r.addf("hardware machine: argument words validated per reference by the effective")
		r.addf("ring mechanism; cost is part of normal address translation")
		r.addf("")
		r.addf("%-10s %18s %18s %16s", "args", "hw cycles/trip", "sw cycles/trip", "sw extra/arg")
		var prevHW, prevSW float64
		prevArgs := 0
		for _, args := range []int{0, 1, 2, 4, 8} {
			p := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: kernelIterations, Args: args}
			hwCycles, _, err := p.RunHardware(nil)
			if err != nil {
				return err
			}
			swCycles, _, _, err := p.RunSoftware(args)
			if err != nil {
				return err
			}
			hwPer := float64(hwCycles) / kernelIterations
			swPer := float64(swCycles) / kernelIterations
			extra := ""
			if args > 0 {
				perArg := ((swPer - prevSW) - (hwPer - prevHW)) / float64(args-prevArgs)
				extra = fmt.Sprintf("%.1f", perArg)
			}
			r.addf("%-10d %18.1f %18.1f %16s", args, hwPer, swPer, extra)
			prevHW, prevSW, prevArgs = hwPer, swPer, args
		}
		r.addf("")
		r.addf("the software machine pays a gatekeeper charge per argument on every")
		r.addf("crossing; the hardware machine validates arguments as a side effect of")
		r.addf("the reference itself (the lda *pr1|k the service executes anyway)")

		// The safety half of the claim: a hostile argument pointer into
		// supervisor data is caught on the hardware machine.
		prog, err := asm.Assemble(`
        .seg    main
        .bracket 4,4,4
        .access rwe
        eap1    arglist
        stic    pr6|0,+1
        call    svc$entry
        hlt
arglist: .its   4, secrets$base

        .seg    svc
        .bracket 1,1,5
        .gate   entry
entry:  lda     *pr1|0
        return  *pr6|0
`)
		if err != nil {
			return err
		}
		img, err := asm.BuildImage(image.Config{}, prog, image.SegmentDef{
			Name: "secrets", Size: 8, Read: true, Write: true,
			Brackets: core.Brackets{R1: 1, R2: 1, R3: 1},
		})
		if err != nil {
			return err
		}
		if err := img.Start(4, "main", 0); err != nil {
			return err
		}
		_, err = img.CPU.Run(1000)
		if err == nil || !strings.Contains(err.Error(), "read bracket") {
			return fmt.Errorf("hostile argument pointer not caught: %v", err)
		}
		r.addf("")
		r.addf("hostile argument check: ring-4 caller passed a pointer into ring-1 data;")
		r.addf("the ring-1 service's dereference was validated in ring 4 and denied: %v", err)
		return nil
	})

	register("T4", "upward calls and downward returns trap to software mediation", func(r *Result) error {
		down := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: kernelIterations}
		up := CallKernelParams{CallerRing: 1, ServiceRing: 4, Iterations: kernelIterations}
		downCycles, _, err := down.RunHardware(nil)
		if err != nil {
			return err
		}
		upCycles, _, err := up.RunHardware(nil)
		if err != nil {
			return err
		}
		r.addf("%-40s %12s %14s", "direction", "cycles", "cycles/trip")
		r.addf("%-40s %12d %14.1f", "downward call + upward return (hardware)", downCycles,
			float64(downCycles)/kernelIterations)
		r.addf("%-40s %12d %14.1f", "upward call + downward return (mediated)", upCycles,
			float64(upCycles)/kernelIterations)
		ratio := float64(upCycles) / float64(downCycles)
		r.addf("")
		r.addf("mediated/hardware ratio: %.1fx — the asymmetry the paper accepts:", ratio)
		r.addf("the common direction (user calling protected subsystem) is the one the")
		r.addf("hardware automates; the rare direction traps (two traps per round trip)")
		if ratio < 2 {
			return fmt.Errorf("upward calls suspiciously cheap: %.2fx", ratio)
		}
		r.addf("")
		r.addf("argument caveat reproduced: an upward call cannot pass arguments in the")
		r.addf("caller's segments (the callee's ring cannot reference them) — the paper's")
		r.addf("'first unpleasant characteristic' of general cross-domain calls")
		return nil
	})

	register("T5", "access validation adds very small cost to address translation (ablation)", func(r *Result) error {
		const iters = 2000
		on := cpu.DefaultOptions()
		off := cpu.DefaultOptions()
		off.Validate = false

		warm := func(opt cpu.Options) (uint64, uint64, time.Duration, error) {
			start := time.Now()
			cycles, steps, err := RunStraightLine(iters, opt)
			return cycles, steps, time.Since(start), err
		}
		// Warm both paths once, then measure.
		if _, _, _, err := warm(on); err != nil {
			return err
		}
		if _, _, _, err := warm(off); err != nil {
			return err
		}
		onCycles, onSteps, onTime, err := warm(on)
		if err != nil {
			return err
		}
		offCycles, offSteps, offTime, err := warm(off)
		if err != nil {
			return err
		}
		r.addf("workload: %d iterations of a straight-line kernel; every instruction", iters)
		r.addf("fetch, operand and indirect reference validated (or not)")
		r.addf("")
		r.addf("%-22s %12s %12s %14s", "configuration", "instructions", "cycles", "host time")
		r.addf("%-22s %12d %12d %14v", "validation on", onSteps, onCycles, onTime)
		r.addf("%-22s %12d %12d %14v", "validation off", offSteps, offCycles, offTime)
		r.addf("")
		if onCycles != offCycles {
			return fmt.Errorf("validation changed the simulated cycle count: %d vs %d", onCycles, offCycles)
		}
		r.addf("simulated cycle cost of validation: 0 — the comparisons happen on SDW")
		r.addf("fields address translation fetches anyway, which is the paper's argument")
		r.addf("('very small additional costs in hardware logic and processor speed');")
		r.addf("the bench suite measures the host-time delta of the comparison logic")
		return nil
	})

	register("T6", "the uses of rings: layered supervisor, protected subsystems, debugging", func(r *Result) error {
		// Layered supervisor: ring-1 accounting data invisible to ring
		// 4 but maintained through a ring-1 gate.
		if err := scenarioLayeredSupervisor(r); err != nil {
			return err
		}
		// Protected subsystem: user B reaches user A's data only
		// through A's auditing gate.
		if err := scenarioProtectedSubsystem(r); err != nil {
			return err
		}
		// Debugging ring: an untested program in ring 5 cannot damage
		// ring-4 data, and its addressing error is caught.
		if err := scenarioDebugRing(r); err != nil {
			return err
		}
		return nil
	})
}

func scenarioLayeredSupervisor(r *Result) error {
	prog, err := asm.Assemble(sup.GateSource + `
        .seg    acctgate
        .bracket 1,1,5
        .gate   charge
charge: eap5    pr0|1
        spr6    pr5|0
        aos     acct$base       ; ring-1 write, on behalf of ring 4
        eap6    *pr5|0
        return  *pr6|0

        .seg    user
        .bracket 4,4,4
        stic    pr6|0,+1
        call    acctgate$charge
        lda     *ptr            ; direct read of the accounting data: violation
        hlt
ptr:    .its    4, acct$base
`)
	if err != nil {
		return err
	}
	img, err := asm.BuildImage(image.Config{}, prog, image.SegmentDef{
		Name: "acct", Size: 4, Read: true, Write: true,
		Brackets: core.Brackets{R1: 1, R2: 1, R3: 1},
	})
	if err != nil {
		return err
	}
	sup.Attach(img, "alice")
	if err := img.Start(4, "user", 0); err != nil {
		return err
	}
	_, err = img.CPU.Run(10000)
	if err == nil || !strings.Contains(err.Error(), "read bracket") {
		return fmt.Errorf("layered supervisor: direct read not denied: %v", err)
	}
	w, err := img.ReadWord("acct", 0)
	if err != nil {
		return err
	}
	if w.Int64() != 1 {
		return fmt.Errorf("layered supervisor: accounting charge not recorded")
	}
	r.addf("layered supervisor: ring-4 user charged an account through a ring-1 gate;")
	r.addf("  the account word changed (value 1) yet a direct ring-4 read was denied")
	return nil
}

func scenarioProtectedSubsystem(r *Result) error {
	// User A's auditing subsystem in ring 3; user B's program in ring 4.
	prog, err := asm.Assemble(`
        .seg    audit
        .bracket 3,3,5
        .access rwe
        .gate   fetch
fetch:  eap5    pr0|1
        spr6    pr5|0
        aos     log             ; audit the access
        lda     sens$base       ; read the sensitive datum for the caller
        eap6    *pr5|0
        return  *pr6|0
        .entry  log
log:    .word   0

        .seg    bprog
        .bracket 4,4,4
        stic    pr6|0,+1
        call    audit$fetch     ; sanctioned path
        hlt
`)
	if err != nil {
		return err
	}
	img, err := asm.BuildImage(image.Config{}, prog, image.SegmentDef{
		Name: "sens", Words: []word.Word{word.FromInt(77)}, Read: true,
		Brackets: core.Brackets{R1: 3, R2: 3, R3: 3},
	})
	if err != nil {
		return err
	}
	if err := img.Start(4, "bprog", 0); err != nil {
		return err
	}
	if _, err := img.CPU.Run(10000); err != nil {
		return fmt.Errorf("protected subsystem: sanctioned path failed: %v", err)
	}
	if img.CPU.A.Int64() != 77 {
		return fmt.Errorf("protected subsystem: wrong datum %d", img.CPU.A.Int64())
	}
	logOff := prog.Segment("audit").Symbols["log"]
	logW, err := img.ReadWord("audit", logOff)
	if err != nil {
		return err
	}
	if logW.Int64() != 1 {
		return fmt.Errorf("protected subsystem: access not audited")
	}
	r.addf("protected subsystem: B read A's sensitive datum only through A's ring-3")
	r.addf("  auditing gate; the audit log recorded the access")
	return nil
}

func scenarioDebugRing(r *Result) error {
	prog, err := asm.Assemble(sup.GateSource + `
        .seg    untested
        .bracket 5,5,5
        lia     1
        sta     *wild           ; addressing error: ring-4 data
        lia     0
        call    sysgates$exit
wild:   .its    5, precious$base
`)
	if err != nil {
		return err
	}
	img, err := asm.BuildImage(image.Config{}, prog, image.SegmentDef{
		Name: "precious", Size: 4, Read: true, Write: true,
		Brackets: core.Brackets{R1: 4, R2: 5, R3: 5},
	})
	if err != nil {
		return err
	}
	s := sup.Attach(img, "alice")
	caught := 0
	s.OnViolation = func(*trap.Trap) bool { caught++; return false }
	if err := img.Start(5, "untested", 0); err != nil {
		return err
	}
	if _, err := img.CPU.Run(10000); err != nil {
		return fmt.Errorf("debug ring: %v", err)
	}
	if caught != 1 {
		return fmt.Errorf("debug ring: caught %d violations", caught)
	}
	w, err := img.ReadWord("precious", 0)
	if err != nil {
		return err
	}
	if !w.IsZero() {
		return fmt.Errorf("debug ring: ring-4 data damaged")
	}
	r.addf("debugging ring: an untested ring-5 program's wild store into ring-4 data")
	r.addf("  was caught and the data left intact; the program continued under the")
	r.addf("  debugger's skip policy")
	return nil
}
