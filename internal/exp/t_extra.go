package exp

import (
	"fmt"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/mem"
	"repro/internal/paging"
	"repro/internal/proc"
	"repro/internal/sup"
)

func init() {
	register("T7", "paging is transparent to access control", func(r *Result) error {
		p := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 50}
		run := func(backing mem.Store) (uint64, uint64, error) {
			prog, err := asm.Assemble(p.Source())
			if err != nil {
				return 0, 0, err
			}
			cfg := image.Config{}
			if backing != nil {
				cfg.Backing = backing
			} else {
				cfg.MemWords = 1 << 18
			}
			img, err := asm.BuildImage(cfg, prog)
			if err != nil {
				return 0, 0, err
			}
			sup.Attach(img, "bench")
			if err := img.Start(4, "main", 0); err != nil {
				return 0, 0, err
			}
			if _, err := img.CPU.Run(100000); err != nil {
				return 0, 0, err
			}
			return img.CPU.Cycles, img.CPU.Steps(), nil
		}
		flatCycles, flatSteps, err := run(nil)
		if err != nil {
			return err
		}
		space, err := paging.New(1<<18, 256)
		if err != nil {
			return err
		}
		pagedCycles, pagedSteps, err := run(space)
		if err != nil {
			return err
		}
		r.addf("workload: 50 cross-ring call/return round trips; identical image built")
		r.addf("on flat core and on a demand-paged space (256-word frames, scattered)")
		r.addf("")
		r.addf("%-16s %14s %14s", "storage", "instructions", "cycles")
		r.addf("%-16s %14d %14d", "flat core", flatSteps, flatCycles)
		r.addf("%-16s %14d %14d", "demand paged", pagedSteps, pagedCycles)
		r.addf("")
		if flatCycles != pagedCycles || flatSteps != pagedSteps {
			return fmt.Errorf("paging changed architectural behaviour")
		}
		r.addf("page faults: %d, resident pages: %d, frames scattered: %v",
			space.Faults, space.ResidentPages(), space.Scattered())
		r.addf("")
		r.addf("identical instruction and cycle counts: \"paging, if appropriately")
		r.addf("implemented, need not affect access control\"")
		return nil
	})

	register("T8", "processes share segments and protected subsystems", func(r *Result) error {
		s := proc.NewSystem(proc.Config{})
		prog, err := asm.Assemble(sup.GateSource + `
        .seg    counter
        .bracket 1,1,5
        .access rwe
        .gate   bump
bump:   eap5    *pr0|0
        spr6    pr5|0
        aos     total
        eap6    *pr5|0
        return  *pr6|0
        .entry  total
total:  .word   0

        .seg    user
        .bracket 4,4,4
        lia     5
        sta     pr6|2
loop:   stic    pr6|0,+1
        call    counter$bump
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        stic    pr6|0,+1
        call    sysgates$exit
`)
		if err != nil {
			return err
		}
		if err := s.AddProgram(prog, func(segName string) acl.List {
			if segName == "counter" {
				// Only alice and bob may use the subsystem.
				return acl.List{
					{User: "alice", Read: true, Write: true, Execute: true,
						Brackets: core.Brackets{R1: 1, R2: 1, R3: 5}},
					{User: "bob", Read: true, Write: true, Execute: true,
						Brackets: core.Brackets{R1: 1, R2: 1, R3: 5}},
				}
			}
			return nil
		}); err != nil {
			return err
		}
		pa, err := s.Spawn("A", "alice", "user", 4)
		if err != nil {
			return err
		}
		pb, err := s.Spawn("B", "bob", "user", 4)
		if err != nil {
			return err
		}
		pm, err := s.Spawn("M", "mallory", "user", 4)
		if err != nil {
			return err
		}
		if err := s.Schedule(25, 10000); err != nil {
			return err
		}
		totalOff := prog.Segment("counter").Symbols["total"]
		total, err := s.ReadWord("counter", totalOff)
		if err != nil {
			return err
		}
		r.addf("three processes, one shared gated subsystem (ring 1) counting calls")
		r.addf("")
		r.addf("%-10s %-10s %-22s %s", "process", "user", "outcome", "slices")
		for _, p := range []*proc.Process{pa, pb, pm} {
			outcome := "exited"
			if p.Trap != nil {
				outcome = p.Trap.Code.String()
			}
			r.addf("%-10s %-10s %-22s %d", p.Name, p.User, outcome, p.Slices)
		}
		r.addf("")
		r.addf("shared subsystem total: %d (both permitted processes' calls)", total.Int64())
		if total.Int64() != 10 {
			return fmt.Errorf("shared total = %d, want 10", total.Int64())
		}
		if pm.Trap == nil {
			return fmt.Errorf("mallory's process reached the subsystem")
		}
		r.addf("mallory's process faulted: the subsystem is absent from a virtual")
		r.addf("memory whose user fails its ACL — \"several processes may share the")
		r.addf("use of the same protected subsystem simultaneously\", but only with")
		r.addf("permission")
		return nil
	})
}

func init() {
	register("T10", "ablation: the SDW associative memory", func(r *Result) error {
		// The paper's validation-is-cheap argument rests on the SDW
		// being examined on every reference anyway; the associative
		// memory is what made that examination cheap on the real
		// hardware. Compare the same kernel with the cache off (every
		// reference reads the descriptor segment) and on.
		// Charge 2 cycles per descriptor-segment read in both
		// configurations, so the associative memory's saving is visible
		// in simulated time.
		p := CallKernelParams{CallerRing: 4, ServiceRing: 1, Iterations: 200}
		optOff := cpu.DefaultOptions()
		optOff.Costs.SDWMiss = 2
		offCycles, _, err := p.RunHardware(&optOff)
		if err != nil {
			return err
		}
		// For the stats, run the cached variant with direct machine
		// access.
		opt := cpu.DefaultOptions()
		opt.SDWCache = true
		opt.Costs.SDWMiss = 2
		img, err := p.BuildHardware(&opt)
		if err != nil {
			return err
		}
		sup.Attach(img, "bench")
		if err := img.Start(4, "main", 0); err != nil {
			return err
		}
		if _, err := img.CPU.Run(100000); err != nil {
			return err
		}
		onCycles := img.CPU.Cycles
		stats := img.CPU.SDWCacheStats()

		r.addf("workload: 200 cross-ring call/return round trips")
		r.addf("")
		r.addf("%-26s %12s", "configuration", "cycles")
		r.addf("%-26s %12d", "associative memory off", offCycles)
		r.addf("%-26s %12d", "associative memory on", onCycles)
		if onCycles >= offCycles {
			return fmt.Errorf("associative memory saved nothing: %d vs %d", onCycles, offCycles)
		}
		r.addf("")
		hitRate := stats.HitRate()
		r.addf("cache statistics: %d hits, %d misses (%.1f%% hit rate)",
			stats.Hits, stats.Misses, 100*hitRate)
		r.metric("cycles_cache_off", float64(offCycles))
		r.metric("cycles_cache_on", float64(onCycles))
		r.metric("cache_hit_rate", hitRate)
		if hitRate < 0.95 {
			return fmt.Errorf("hit rate %.2f suspiciously low for a loop kernel", hitRate)
		}
		r.addf("")
		r.addf("with the working set of a call loop (a handful of segments), nearly")
		r.addf("every SDW examination hits the associative registers — the hardware")
		r.addf("context in which per-reference ring validation costs almost nothing")
		return nil
	})
}
