package exp

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/softring"
	"repro/internal/sup"
)

// CallKernelParams parameterizes the canonical call/return workload:
// a caller in CallerRing invoking a gated service with an execute
// bracket at ServiceRing, Iterations times, passing Args argument words
// through the standard argument list convention. When ServiceRing ==
// CallerRing the identical caller object code performs same-ring calls;
// when ServiceRing < CallerRing, downward calls; when >, upward calls.
type CallKernelParams struct {
	CallerRing  core.Ring
	ServiceRing core.Ring
	Iterations  int
	Args        int
}

// Source generates the kernel's assembly. The caller's code is
// byte-identical across all ServiceRing choices — the paper's "a call
// by a user procedure to a protected subsystem is identical to a call
// to a companion user procedure" — only the service segment's declared
// brackets differ.
func (p CallKernelParams) Source() string {
	var sb strings.Builder
	c := p.CallerRing
	fmt.Fprintf(&sb, `
        .seg    main
        .bracket %d,%d,%d
        .access rwe
`, c, c, c)
	if p.Args > 0 {
		sb.WriteString("        eap1    arglist\n")
	}
	fmt.Fprintf(&sb, `loop:   stic    pr6|0,+1
        call    svc$entry
        aos     count
        lda     count
        cma     limit
        tnz     loop
        hlt
count:  .word   0
limit:  .word   %d
`, p.Iterations)
	if p.Args > 0 {
		sb.WriteString("arglist:\n")
		for i := 0; i < p.Args; i++ {
			fmt.Fprintf(&sb, "        .its    %d, arg%d\n", c, i)
		}
		for i := 0; i < p.Args; i++ {
			fmt.Fprintf(&sb, "arg%d:   .word   %d\n", i, i+1)
		}
	}

	s := p.ServiceRing
	gateTop := core.Ring(5)
	if s > gateTop {
		gateTop = s
	}
	// The service frame comes from the stack's next-available counter
	// (not a fixed slot) so the identical veneer is safe whether the
	// call arrived same-ring (sharing the caller's stack segment) or
	// cross-ring (on its own ring's stack).
	fmt.Fprintf(&sb, `
        .seg    svc
        .bracket %d,%d,%d
        .gate   entry
entry:  eap5    *pr0|0
        spr6    pr5|0
`, s, s, gateTop)
	for i := 0; i < p.Args; i++ {
		fmt.Fprintf(&sb, "        lda     *pr1|%d\n", i)
	}
	sb.WriteString(`        eap6    *pr5|0
        return  *pr6|0
`)
	return sb.String()
}

// BuildHardware assembles the kernel for the hardware-ring machine.
func (p CallKernelParams) BuildHardware(opt *cpu.Options) (*image.Image, error) {
	prog, err := asm.Assemble(p.Source())
	if err != nil {
		return nil, err
	}
	return asm.BuildImage(image.Config{CPUOptions: opt}, prog)
}

// BuildSoftware assembles the identical kernel and wraps it in the
// 645-style software-ring machine.
func (p CallKernelParams) BuildSoftware() (*softring.Machine, error) {
	prog, err := asm.Assemble(p.Source())
	if err != nil {
		return nil, err
	}
	img, err := asm.BuildImage(image.Config{}, prog)
	if err != nil {
		return nil, err
	}
	return softring.Wrap(img)
}

// RunHardware executes the kernel on the hardware machine and reports
// total cycles and executed instructions. A supervisor is attached so
// upward-call variants get their software mediation.
func (p CallKernelParams) RunHardware(opt *cpu.Options) (cycles, steps uint64, err error) {
	img, err := p.BuildHardware(opt)
	if err != nil {
		return 0, 0, err
	}
	sup.Attach(img, "bench")
	if err := img.Start(p.CallerRing, "main", 0); err != nil {
		return 0, 0, err
	}
	limit := 200*p.Iterations + 1000
	reason, err := img.CPU.Run(limit)
	if err != nil {
		return 0, 0, err
	}
	if reason != cpu.StopHalt {
		return 0, 0, fmt.Errorf("exp: kernel stopped for %v", reason)
	}
	return img.CPU.Cycles, img.CPU.Steps(), nil
}

// RunSoftware executes the identical kernel on the software-ring
// machine.
func (p CallKernelParams) RunSoftware(argWords int) (cycles, steps uint64, crossings int, err error) {
	m, err := p.BuildSoftware()
	if err != nil {
		return 0, 0, 0, err
	}
	m.ArgWords = argWords
	if err := m.Start(p.CallerRing, "main", 0); err != nil {
		return 0, 0, 0, err
	}
	limit := 200*p.Iterations + 1000
	reason, err := m.Run(limit)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("exp: software kernel: %w (audit %v)", err, m.Audit)
	}
	if reason != cpu.StopHalt {
		return 0, 0, 0, fmt.Errorf("exp: software kernel stopped for %v", reason)
	}
	return m.CPU.Cycles, m.CPU.Steps(), m.Crossings, nil
}

// straightLineKernel is a pure computation loop with PR-relative loads
// and stores — the T5 workload, where every operand reference is
// validated.
func straightLineKernel(iterations int) string {
	return fmt.Sprintf(`
        .seg    main
        .bracket 4,4,4
        .access rwe
loop:   lda     a
        ada     b
        sta     a
        lda     *ptr
        aos     count
        lda     count
        cma     limit
        tnz     loop
        hlt
a:      .word   1
b:      .word   2
ptr:    .its    4, b
count:  .word   0
limit:  .word   %d
`, iterations)
}

// RunStraightLine executes the straight-line kernel with the given CPU
// options and reports cycles and steps.
func RunStraightLine(iterations int, opt cpu.Options) (cycles, steps uint64, err error) {
	prog, err := asm.Assemble(straightLineKernel(iterations))
	if err != nil {
		return 0, 0, err
	}
	img, err := asm.BuildImage(image.Config{CPUOptions: &opt}, prog)
	if err != nil {
		return 0, 0, err
	}
	if err := img.Start(4, "main", 0); err != nil {
		return 0, 0, err
	}
	reason, err := img.CPU.Run(100*iterations + 1000)
	if err != nil {
		return 0, 0, err
	}
	if reason != cpu.StopHalt {
		return 0, 0, fmt.Errorf("exp: straight-line kernel stopped for %v", reason)
	}
	return img.CPU.Cycles, img.CPU.Steps(), nil
}

// optValidate returns default CPU options with the validation ablation
// switch set (test/bench convenience).
func optValidate(on bool) cpu.Options {
	o := cpu.DefaultOptions()
	o.Validate = on
	return o
}

// ChainKernelSource generates a kernel whose main loop calls down
// through a chain of gated services, one per ring in ringChain (ordered
// caller-first, strictly or loosely descending), each using the full
// frame protocol, with the leaf returning a constant. It exercises
// nested downward calls and the corresponding chain of upward returns.
func ChainKernelSource(callerRing core.Ring, ringChain []core.Ring, iterations int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `
        .seg    main
        .bracket %d,%d,%d
        .access rwe
loop:   stic    pr6|0,+1
        call    svc0$entry
        aos     count
        lda     count
        cma     limit
        tnz     loop
        hlt
count:  .word   0
limit:  .word   %d
`, callerRing, callerRing, callerRing, iterations)
	for i, r := range ringChain {
		leaf := i == len(ringChain)-1
		fmt.Fprintf(&sb, `
        .seg    svc%d
        .bracket %d,%d,7
        .gate   entry
`, i, r, r)
		if leaf {
			sb.WriteString(`entry:  eap5    *pr0|0
        spr6    pr5|0
        lia     7
        eap6    *pr5|0
        return  *pr6|0
`)
			continue
		}
		// Interior link: full frame protocol around a further call.
		fmt.Fprintf(&sb, `entry:  eap5    *pr0|0
        spr6    pr5|1
        spr0    pr5|2
        eap4    pr5|4
        spr4    pr0|0
        eap6    pr5|0
        stic    pr6|0,+1
        call    svc%d$entry
        eap4    *pr6|2
        spr6    pr4|0
        eap6    *pr6|1
        return  *pr6|0
`, i+1)
	}
	return sb.String()
}

// RunChain executes the chain kernel on the hardware machine.
func RunChain(callerRing core.Ring, ringChain []core.Ring, iterations int) (cycles, steps uint64, err error) {
	prog, err := asm.Assemble(ChainKernelSource(callerRing, ringChain, iterations))
	if err != nil {
		return 0, 0, err
	}
	img, err := asm.BuildImage(image.Config{}, prog)
	if err != nil {
		return 0, 0, err
	}
	sup.Attach(img, "bench")
	if err := img.Start(callerRing, "main", 0); err != nil {
		return 0, 0, err
	}
	reason, err := img.CPU.Run(2000*iterations + 1000)
	if err != nil {
		return 0, 0, err
	}
	if reason != cpu.StopHalt {
		return 0, 0, fmt.Errorf("exp: chain kernel stopped for %v", reason)
	}
	return img.CPU.Cycles, img.CPU.Steps(), nil
}
