// Package figures renders the paper's descriptive figures as text: the
// access-indicator diagrams of Figures 1 and 2 and the storage formats
// of Figure 3. The ringfig command prints them; the experiment harness
// embeds them in its reports.
package figures

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// Figure1View is the example SDW of the paper's Figure 1: a writable
// data segment with write bracket [0,4] and read bracket [0,5].
func Figure1View() core.SDWView {
	return core.SDWView{
		Present: true,
		Read:    true, Write: true, Execute: false,
		Brackets: core.Brackets{R1: 4, R2: 5, R3: 5},
		Bound:    1024,
	}
}

// Figure2View is the example SDW of the paper's Figure 2: a pure
// procedure segment with execute bracket [3,3], gate extension (3,5],
// and two gate locations.
func Figure2View() core.SDWView {
	return core.SDWView{
		Present: true,
		Read:    true, Write: false, Execute: true,
		Brackets:  core.Brackets{R1: 3, R2: 3, R3: 5},
		GateCount: 2,
		Bound:     512,
	}
}

// rowFor renders one access row: a # for each ring where the predicate
// holds.
func rowFor(label string, pred func(core.Ring) bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "  %-16s", label)
	for r := core.Ring(0); r < core.NumRings; r++ {
		if pred(r) {
			sb.WriteString("  # ")
		} else {
			sb.WriteString("  . ")
		}
	}
	return sb.String()
}

// AccessDiagram renders the per-ring access capabilities of an SDW view
// in the style of the paper's Figures 1 and 2.
func AccessDiagram(title string, v core.SDWView) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	sb.WriteString("  ring          ")
	for r := core.Ring(0); r < core.NumRings; r++ {
		fmt.Fprintf(&sb, "  %d ", r)
	}
	sb.WriteByte('\n')
	sb.WriteString(rowFor("write", func(r core.Ring) bool { return v.Permits(core.AccessWrite, r) }))
	sb.WriteByte('\n')
	sb.WriteString(rowFor("read", func(r core.Ring) bool { return v.Permits(core.AccessRead, r) }))
	sb.WriteByte('\n')
	sb.WriteString(rowFor("execute", func(r core.Ring) bool { return v.Permits(core.AccessExecute, r) }))
	sb.WriteByte('\n')
	sb.WriteString(rowFor("call via gate", func(r core.Ring) bool {
		return v.Execute && v.GateCount > 0 && v.Brackets.InGateExtension(r)
	}))
	sb.WriteByte('\n')
	flag := func(b bool, c string) string {
		if b {
			return c
		}
		return "-"
	}
	fmt.Fprintf(&sb, "  flags %s%s%s   R1=%d R2=%d R3=%d gates=%d\n",
		flag(v.Read, "r"), flag(v.Write, "w"), flag(v.Execute, "e"),
		v.Brackets.R1, v.Brackets.R2, v.Brackets.R3, v.GateCount)
	return sb.String()
}

// Figure1 renders the paper's Figure 1.
func Figure1() string {
	return AccessDiagram("Figure 1. Access indicators for a writable data segment.", Figure1View())
}

// Figure2 renders the paper's Figure 2.
func Figure2() string {
	return AccessDiagram("Figure 2. Access indicators for a pure procedure segment with gates.", Figure2View())
}

// field describes one storage-format field for Figure 3.
type field struct {
	name  string
	lo    uint
	width uint
	desc  string
}

func formatTable(title string, fields []field) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "  %-8s %-7s %s\n", "field", "bits", "meaning")
	for _, f := range fields {
		bits := fmt.Sprintf("%d-%d", f.lo+f.width-1, f.lo)
		if f.width == 1 {
			bits = fmt.Sprintf("%d", f.lo)
		}
		fmt.Fprintf(&sb, "  %-8s %-7s %s\n", f.name, bits, f.desc)
	}
	return sb.String()
}

// Figure3 renders the storage formats and registers of the paper's
// Figure 3, as implemented by this simulator.
func Figure3() string {
	var sb strings.Builder
	sb.WriteString("Figure 3. Storage formats and processor registers.\n\n")
	sb.WriteString(formatTable("SDW even word:", []field{
		{"F", 35, 1, "segment present"},
		{"R1", 32, 3, "top of write bracket / bottom of execute bracket"},
		{"R2", 29, 3, "top of execute and read brackets"},
		{"R3", 26, 3, "top of gate extension"},
		{"ADDR", 0, 24, "absolute core address of segment base"},
	}))
	sb.WriteByte('\n')
	sb.WriteString(formatTable("SDW odd word:", []field{
		{"R", 35, 1, "read flag"},
		{"W", 34, 1, "write flag"},
		{"E", 33, 1, "execute flag"},
		{"GATE", 18, 14, "number of gate locations (words 0..GATE-1)"},
		{"BOUND", 0, 18, "segment length in words"},
	}))
	sb.WriteByte('\n')
	sb.WriteString(formatTable("Instruction word (INS):", []field{
		{"OPCODE", 27, 9, "operation code"},
		{"I", 26, 1, "indirect flag"},
		{"P", 25, 1, "pointer-register-relative flag"},
		{"PRNUM", 22, 3, "pointer register number"},
		{"TAG", 18, 4, "index register modification / register selector"},
		{"OFFSET", 0, 18, "operand offset"},
	}))
	sb.WriteByte('\n')
	sb.WriteString(formatTable("Indirect word (IND):", []field{
		{"RING", 33, 3, "validation ring number"},
		{"I", 32, 1, "further indirection flag"},
		{"SEGNO", 18, 14, "segment number"},
		{"WORDNO", 0, 18, "word number"},
	}))
	sb.WriteByte('\n')
	sb.WriteString("Registers: DBR (descriptor base: ADDR, BOUND, STACK),\n")
	sb.WriteString("IPR (ring of execution + two-part address of next instruction),\n")
	sb.WriteString("PR0-PR7 (ring + two-part address; loadable only by EAP),\n")
	sb.WriteString("TPR (internal: effective address and effective ring).\n")
	return sb.String()
}
