package figures

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func TestFigure1Content(t *testing.T) {
	out := Figure1()
	if !strings.Contains(out, "Figure 1") {
		t.Error("missing title")
	}
	// Write bracket [0,4]: exactly five #'s on the write row.
	for _, ln := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(ln)
		if strings.HasPrefix(trimmed, "write") {
			if got := strings.Count(ln, "#"); got != 5 {
				t.Errorf("write row has %d marks, want 5: %q", got, ln)
			}
		}
		if strings.HasPrefix(trimmed, "read") {
			if got := strings.Count(ln, "#"); got != 6 {
				t.Errorf("read row has %d marks, want 6: %q", got, ln)
			}
		}
		if strings.HasPrefix(trimmed, "execute") {
			if got := strings.Count(ln, "#"); got != 0 {
				t.Errorf("execute row has %d marks, want 0: %q", got, ln)
			}
		}
	}
	if !strings.Contains(out, "R1=4 R2=5 R3=5") {
		t.Errorf("bracket summary missing: %s", out)
	}
}

func TestFigure2Content(t *testing.T) {
	out := Figure2()
	for _, ln := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(ln)
		if strings.HasPrefix(trimmed, "execute") {
			if got := strings.Count(ln, "#"); got != 1 {
				t.Errorf("execute row has %d marks, want 1 (ring 3 only): %q", got, ln)
			}
		}
		if strings.HasPrefix(trimmed, "call via gate") {
			if got := strings.Count(ln, "#"); got != 2 {
				t.Errorf("gate row has %d marks, want 2 (rings 4-5): %q", got, ln)
			}
		}
		if strings.HasPrefix(trimmed, "write") {
			if got := strings.Count(ln, "#"); got != 0 {
				t.Errorf("write row has %d marks, want 0: %q", got, ln)
			}
		}
	}
}

func TestFigure3ListsAllFormats(t *testing.T) {
	out := Figure3()
	for _, want := range []string{"SDW even", "SDW odd", "Instruction word", "Indirect word", "TPR", "OPCODE", "GATE", "BOUND", "RING"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 3 missing %q", want)
		}
	}
}

func TestViewsValidate(t *testing.T) {
	if err := Figure1View().Validate(); err != nil {
		t.Error(err)
	}
	if err := Figure2View().Validate(); err != nil {
		t.Error(err)
	}
}

func TestAccessDiagramArbitraryView(t *testing.T) {
	v := core.SDWView{
		Present: true, Read: true, Write: true, Execute: true,
		Brackets:  core.Brackets{R1: 0, R2: 0, R3: 7},
		GateCount: 1, Bound: 16,
	}
	out := AccessDiagram("gate into ring 0", v)
	if !strings.Contains(out, "gate into ring 0") {
		t.Error("title missing")
	}
	// Gate extension (0,7] with gates: 7 marks on the gate row.
	for _, ln := range strings.Split(out, "\n") {
		if strings.HasPrefix(strings.TrimSpace(ln), "call via gate") {
			if got := strings.Count(ln, "#"); got != 7 {
				t.Errorf("gate row: %q", ln)
			}
		}
	}
}
