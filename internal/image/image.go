// Package image builds runnable machine images: it places segments in
// core, constructs the descriptor segment from their access brackets,
// creates the per-ring stack segments, and hands back a configured CPU.
//
// This is the job the Multics supervisor's segment control performed
// when a process was created; here it happens at image-build time for a
// single process, and the supervisor package performs the incremental
// equivalent ("initiate segment") at run time.
package image

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/seg"
	"repro/internal/word"
)

// SegmentDef describes one segment to place in the image.
type SegmentDef struct {
	Name  string
	Words []word.Word // initial contents
	// Size is the segment length in words; if zero, len(Words) is used.
	Size                 int
	Read, Write, Execute bool
	Brackets             core.Brackets
	Gates                uint32
}

// Config controls image construction.
type Config struct {
	// MemWords is the core size; default 1<<20. Ignored when Backing
	// is set.
	MemWords int
	// Backing, if non-nil, is the physical storage to build into (e.g.
	// a demand-paged space from internal/paging); MemWords is then
	// taken from its Size.
	Backing mem.Store
	// MaxSegments bounds the descriptor segment; default 256.
	MaxSegments int
	// StackSize is the length of each per-ring stack segment; default 1024.
	StackSize int
	// StackRule selects stack segment numbering; the image builder
	// places the stacks where the rule expects them.
	StackRule cpu.StackRule
	// StackBase is the first stack segment number under StackDBRBase;
	// default 16. Ignored under StackSegnoIsRing (stacks are 0-7).
	StackBase uint32
	// CPUOptions configures the processor; zero value means
	// cpu.DefaultOptions with StackRule applied.
	CPUOptions *cpu.Options
}

// Image is a built machine: the CPU, its memory, and the name-to-segment
// mapping for the placed segments.
type Image struct {
	CPU    *cpu.CPU
	Mem    mem.Store
	Alloc  *mem.Allocator
	Segnos map[string]uint32

	nextSegno uint32
	maxSegno  uint32
}

// StackFrameStart is the word number of the first available stack area.
// Word 0 of each stack segment holds the next-available pointer — by
// the convention of this codebase, an indirect word aimed at the next
// free frame within the same stack segment, so a procedure allocates a
// frame with `eap5 *pr0|0` and pushes/pops by rewriting word 0 with
// SPR. (The paper says only "a fixed word of each stack segment can
// point to the beginning of the next available stack area"; making that
// word an indirect word lets the standard instruction set manipulate it
// without dedicated stack instructions.)
const StackFrameStart = 1

// FrameSize is the conventional stack frame size: slot 0 for the saved
// return point (stic), slot 1 for the saved caller stack pointer (spr),
// two spare words.
const FrameSize = 4

// stackName returns the conventional name of the ring-r stack segment.
func stackName(r core.Ring) string { return fmt.Sprintf("stack_%d", r) }

// StackSegmentName returns the name under which the ring-r stack
// segment is registered in the image.
func StackSegmentName(r core.Ring) string { return stackName(r) }

// Build constructs the image: descriptor segment, stacks, then the given
// segments in order.
func Build(cfg Config, defs []SegmentDef) (*Image, error) {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 20
	}
	if cfg.MaxSegments == 0 {
		cfg.MaxSegments = 256
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = 1024
	}
	if cfg.StackBase == 0 {
		cfg.StackBase = 16
	}

	var m mem.Store
	if cfg.Backing != nil {
		m = cfg.Backing
		cfg.MemWords = m.Size()
	} else {
		m = mem.New(cfg.MemWords)
	}
	// Reserve low core for the descriptor segment.
	descWords := 2 * cfg.MaxSegments
	alloc := mem.NewAllocator(cfg.MemWords, descWords)

	opt := cpu.DefaultOptions()
	if cfg.CPUOptions != nil {
		opt = *cfg.CPUOptions
	}
	opt.StackRule = cfg.StackRule

	c := cpu.New(m, opt)
	c.SetDBR(seg.DBR{Addr: 0, Bound: uint32(cfg.MaxSegments)})

	img := &Image{
		CPU:      c,
		Mem:      m,
		Alloc:    alloc,
		Segnos:   make(map[string]uint32),
		maxSegno: uint32(cfg.MaxSegments) - 1,
	}

	// Place the per-ring stacks where the stack rule will look for
	// them, and start general allocation after them.
	var stackBase uint32
	switch cfg.StackRule {
	case cpu.StackSegnoIsRing:
		stackBase = 0
		img.nextSegno = core.NumRings
	case cpu.StackDBRBase:
		stackBase = cfg.StackBase
		dbr := c.DBR()
		dbr.Stack = stackBase
		c.SetDBR(dbr)
		img.nextSegno = stackBase + core.NumRings
	default:
		return nil, fmt.Errorf("image: unknown stack rule %d", cfg.StackRule)
	}

	for r := core.Ring(0); r < core.NumRings; r++ {
		segno := stackBase + uint32(r)
		// "The stack segment for procedures executing in ring n has
		// read and write brackets that end at ring n."
		def := SegmentDef{
			Name: stackName(r),
			Size: cfg.StackSize,
			Read: true, Write: true,
			Brackets: core.Brackets{R1: r, R2: r, R3: r},
		}
		if err := img.placeAt(segno, def); err != nil {
			return nil, err
		}
		// Word 0: next available stack area, as an indirect word aimed
		// at this stack segment.
		sdw, err := img.SDW(segno)
		if err != nil {
			return nil, err
		}
		counter := isa.Indirect{Ring: r, Segno: segno, Wordno: StackFrameStart}
		if err := m.Write(seg.Translate(sdw, 0), counter.Encode()); err != nil {
			return nil, err
		}
	}

	for _, def := range defs {
		if _, err := img.Add(def); err != nil {
			return nil, err
		}
	}
	return img, nil
}

// Add places a segment at the next free segment number and returns the
// number.
func (img *Image) Add(def SegmentDef) (uint32, error) {
	segno := img.nextSegno
	if segno > img.maxSegno {
		return 0, fmt.Errorf("image: descriptor segment full adding %q", def.Name)
	}
	img.nextSegno++
	if err := img.placeAt(segno, def); err != nil {
		return 0, err
	}
	return segno, nil
}

// placeAt allocates core for def, copies its initial contents, and
// stores its SDW at segno.
func (img *Image) placeAt(segno uint32, def SegmentDef) error {
	if def.Name == "" {
		return fmt.Errorf("image: segment with empty name")
	}
	if _, dup := img.Segnos[def.Name]; dup {
		return fmt.Errorf("image: duplicate segment name %q", def.Name)
	}
	size := def.Size
	if size == 0 {
		size = len(def.Words)
	}
	if size < len(def.Words) {
		return fmt.Errorf("image: segment %q size %d smaller than contents %d", def.Name, size, len(def.Words))
	}
	if size == 0 {
		return fmt.Errorf("image: segment %q has zero size", def.Name)
	}
	base, err := img.Alloc.Alloc(size)
	if err != nil {
		return fmt.Errorf("image: placing %q: %w", def.Name, err)
	}
	if err := mem.WriteRange(img.Mem, base, def.Words); err != nil {
		return err
	}
	sdw := seg.SDW{
		Present:  true,
		Addr:     uint32(base),
		Bound:    uint32(size),
		Read:     def.Read,
		Write:    def.Write,
		Execute:  def.Execute,
		Brackets: def.Brackets,
		Gate:     def.Gates,
	}
	if err := img.CPU.Table().Store(segno, sdw); err != nil {
		return fmt.Errorf("image: segment %q: %w", def.Name, err)
	}
	img.Segnos[def.Name] = segno
	return nil
}

// Segno returns the segment number of a named segment.
func (img *Image) Segno(name string) (uint32, error) {
	n, ok := img.Segnos[name]
	if !ok {
		return 0, fmt.Errorf("image: no segment %q", name)
	}
	return n, nil
}

// SDW fetches the descriptor of segno.
func (img *Image) SDW(segno uint32) (seg.SDW, error) {
	return img.CPU.Table().Fetch(segno)
}

// ReadWord reads a word from a named segment (test/debug convenience;
// bypasses ring validation the way an operator's console would).
func (img *Image) ReadWord(name string, wordno uint32) (word.Word, error) {
	segno, err := img.Segno(name)
	if err != nil {
		return 0, err
	}
	sdw, err := img.SDW(segno)
	if err != nil {
		return 0, err
	}
	if !sdw.Present || wordno >= sdw.Bound {
		return 0, fmt.Errorf("image: read outside %q", name)
	}
	return img.Mem.Read(seg.Translate(sdw, wordno))
}

// WriteWord writes a word into a named segment (console poke).
func (img *Image) WriteWord(name string, wordno uint32, w word.Word) error {
	segno, err := img.Segno(name)
	if err != nil {
		return err
	}
	sdw, err := img.SDW(segno)
	if err != nil {
		return err
	}
	if !sdw.Present || wordno >= sdw.Bound {
		return fmt.Errorf("image: write outside %q", name)
	}
	return img.Mem.Write(seg.Translate(sdw, wordno), w)
}

// Start sets the processor's instruction pointer: ring, segment (by
// name) and word number, initializes the stack pointer register to the
// ring's stack base, and re-arms a halted machine.
func (img *Image) Start(ring core.Ring, segName string, wordno uint32) error {
	segno, err := img.Segno(segName)
	if err != nil {
		return err
	}
	img.CPU.Halted = false
	img.CPU.IPR = cpu.Pointer{Ring: ring, Segno: segno, Wordno: wordno}
	stackSeg, err := img.Segno(StackSegmentName(ring))
	if err != nil {
		return err
	}
	img.CPU.PR[cpu.StackPtrPR] = cpu.Pointer{Ring: ring, Segno: stackSeg, Wordno: StackFrameStart}
	img.CPU.PR[cpu.StackBasePR] = cpu.Pointer{Ring: ring, Segno: stackSeg, Wordno: 0}
	// Reserve the initial frame: the stack's next-available counter
	// skips past it so that same-ring callees allocating through the
	// counter cannot collide with the caller's frame.
	counter := isa.Indirect{Ring: ring, Segno: stackSeg, Wordno: StackFrameStart + FrameSize}
	sdw, err := img.SDW(stackSeg)
	if err != nil {
		return err
	}
	return img.Mem.Write(seg.Translate(sdw, 0), counter.Encode())
}
