package image_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/word"
)

func simpleDef(name string) image.SegmentDef {
	return image.SegmentDef{
		Name: name, Size: 8, Read: true, Write: true,
		Brackets: core.Brackets{R1: 4, R2: 5, R3: 5},
	}
}

func TestBuildCreatesStacks(t *testing.T) {
	img, err := image.Build(image.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := core.Ring(0); r < core.NumRings; r++ {
		segno, err := img.Segno(image.StackSegmentName(r))
		if err != nil {
			t.Fatal(err)
		}
		if segno != uint32(r) {
			t.Errorf("stack %d at segno %d", r, segno)
		}
		sdw, err := img.SDW(segno)
		if err != nil {
			t.Fatal(err)
		}
		if !sdw.Present || !sdw.Read || !sdw.Write || sdw.Execute {
			t.Errorf("stack %d flags: %v", r, sdw)
		}
		if sdw.Brackets != (core.Brackets{R1: r, R2: r, R3: r}) {
			t.Errorf("stack %d brackets: %v", r, sdw.Brackets)
		}
		// Word 0: next-available counter, an indirect word at
		// StackFrameStart within the same segment.
		w, err := img.ReadWord(image.StackSegmentName(r), 0)
		if err != nil {
			t.Fatal(err)
		}
		ind := isa.DecodeIndirect(w)
		if ind.Segno != segno || ind.Wordno != image.StackFrameStart || ind.Ring != r {
			t.Errorf("stack %d counter: %+v", r, ind)
		}
	}
}

func TestBuildStackRuleDBRBase(t *testing.T) {
	img, err := image.Build(image.Config{StackRule: cpu.StackDBRBase, StackBase: 24}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if img.CPU.DBR().Stack != 24 {
		t.Errorf("DBR.Stack = %d", img.CPU.DBR().Stack)
	}
	segno, err := img.Segno(image.StackSegmentName(3))
	if err != nil {
		t.Fatal(err)
	}
	if segno != 27 {
		t.Errorf("ring-3 stack at %d, want 27", segno)
	}
}

func TestAddAndReadWrite(t *testing.T) {
	img, err := image.Build(image.Config{}, []image.SegmentDef{simpleDef("data")})
	if err != nil {
		t.Fatal(err)
	}
	if err := img.WriteWord("data", 3, word.FromInt(99)); err != nil {
		t.Fatal(err)
	}
	w, err := img.ReadWord("data", 3)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int64() != 99 {
		t.Errorf("read back %d", w.Int64())
	}
	if _, err := img.ReadWord("data", 100); err == nil {
		t.Error("out-of-bound read accepted")
	}
	if err := img.WriteWord("data", 100, 0); err == nil {
		t.Error("out-of-bound write accepted")
	}
	if _, err := img.ReadWord("ghost", 0); err == nil {
		t.Error("ghost segment read accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		defs []image.SegmentDef
		sub  string
	}{
		{"duplicate", []image.SegmentDef{simpleDef("x"), simpleDef("x")}, "duplicate"},
		{"empty name", []image.SegmentDef{{Size: 4}}, "empty name"},
		{"zero size", []image.SegmentDef{{Name: "z"}}, "zero size"},
		{"size < contents", []image.SegmentDef{{
			Name: "w", Size: 1, Words: []word.Word{1, 2, 3},
		}}, "smaller than contents"},
		{"bad brackets", []image.SegmentDef{{
			Name: "b", Size: 4, Brackets: core.Brackets{R1: 5, R2: 2, R3: 7},
		}}, "brackets"},
	}
	for _, tc := range cases {
		_, err := image.Build(image.Config{}, tc.defs)
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("%s: error %q missing %q", tc.name, err, tc.sub)
		}
	}
}

func TestDescriptorFull(t *testing.T) {
	img, err := image.Build(image.Config{MaxSegments: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Stacks take 0-7; two more fit (8, 9), the third overflows.
	if _, err := img.Add(simpleDef("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Add(simpleDef("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := img.Add(simpleDef("c")); err == nil {
		t.Error("descriptor overflow not detected")
	}
}

func TestStartInitializesRegisters(t *testing.T) {
	img, err := image.Build(image.Config{}, []image.SegmentDef{
		{
			Name: "code", Words: []word.Word{isa.Instruction{Op: isa.HLT}.Encode()},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 3, R2: 3, R3: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	img.CPU.Halted = true // Start must re-arm
	if err := img.Start(3, "code", 0); err != nil {
		t.Fatal(err)
	}
	c := img.CPU
	if c.Halted {
		t.Error("machine still halted")
	}
	if c.IPR.Ring != 3 || c.IPR.Wordno != 0 {
		t.Errorf("IPR: %v", c.IPR)
	}
	if c.PR[cpu.StackPtrPR].Segno != 3 || c.PR[cpu.StackPtrPR].Wordno != image.StackFrameStart {
		t.Errorf("PR6: %v", c.PR[cpu.StackPtrPR])
	}
	if c.PR[cpu.StackBasePR].Wordno != 0 {
		t.Errorf("PR0: %v", c.PR[cpu.StackBasePR])
	}
	// The counter reserved the initial frame.
	w, _ := img.ReadWord(image.StackSegmentName(3), 0)
	ind := isa.DecodeIndirect(w)
	if ind.Wordno != image.StackFrameStart+image.FrameSize {
		t.Errorf("counter: %+v", ind)
	}
}

func TestStartUnknownSegment(t *testing.T) {
	img, err := image.Build(image.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "nowhere", 0); err == nil {
		t.Error("start in unknown segment accepted")
	}
}
