// Package iosim models the I/O channel hardware behind the privileged
// SIO instruction — the paper names "the instructions to ... start I/O"
// among those that must execute only in ring 0, and its conclusion uses
// the Multics typewriter I/O package as the example of code that rings
// should split: "only the functions of copying data in and out of
// shared buffer areas and of executing the privileged instruction to
// initiate I/O channel operation need to be protected."
//
// The channel reads an I/O control block (IOCB) from memory:
//
//	word 0:  bits 35-33 operation (1 = write, 2 = read)
//	         bits 31-24 device number
//	         bits 17-0  word count
//	word 1:  an indirect word addressing the buffer
//
// Transfers complete synchronously (the simulator has no concurrent
// channel controller; completion interrupts are out of scope and noted
// in DESIGN.md). Characters are packed four 9-bit characters per
// 36-bit word, high character first, NUL-padded — the Multics
// convention.
package iosim

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/seg"
	"repro/internal/trap"
	"repro/internal/word"
)

// Operation codes in IOCB word 0.
const (
	OpWrite = 1
	OpRead  = 2
)

// CycPerWord is the simulated channel cost per word transferred.
const CycPerWord = 4

// Device is one attachable I/O device.
type Device interface {
	// Name identifies the device in errors and logs.
	Name() string
	// WriteWords receives an output transfer.
	WriteWords(data []word.Word) error
	// ReadWords produces up to n words of input.
	ReadWords(n int) ([]word.Word, error)
}

// Controller is the I/O channel: it implements cpu.IODevice and routes
// IOCBs to attached devices.
type Controller struct {
	devices map[uint32]Device
	// Log records each transfer for inspection.
	Log []string
	// CompletionDelay, when positive, makes transfers asynchronous: SIO
	// returns immediately and the transfer completes (device action plus
	// an IOCompletion interrupt, Detail = device number) after that many
	// further instructions — the paper's "I/O completions" trap source.
	CompletionDelay int
}

var _ cpu.IODevice = (*Controller)(nil)

// NewController returns an empty controller.
func NewController() *Controller {
	return &Controller{devices: map[uint32]Device{}}
}

// Attach connects a device at the given device number.
func (ctl *Controller) Attach(devno uint32, d Device) {
	ctl.devices[devno] = d
}

// StartIO performs the transfer described by the IOCB at
// (iocbSeg|iocbWord). Errors are channel faults — on real hardware a
// status word; here they stop the simulation loudly, since supervisor
// code constructs every IOCB.
func (ctl *Controller) StartIO(c *cpu.CPU, iocbSeg, iocbWord uint32) error {
	read := func(wordno uint32) (word.Word, error) {
		tbl := seg.Table{Mem: c.Mem(), DBR: c.DBR()}
		sdw, err := tbl.Fetch(iocbSeg)
		if err != nil {
			return 0, err
		}
		if !sdw.Present || wordno >= sdw.Bound {
			return 0, fmt.Errorf("iosim: IOCB outside segment %o", iocbSeg)
		}
		return c.Mem().Read(seg.Translate(sdw, wordno))
	}
	w0, err := read(iocbWord)
	if err != nil {
		return err
	}
	w1, err := read(iocbWord + 1)
	if err != nil {
		return err
	}
	op := uint32(w0.Field(33, 3))
	devno := uint32(w0.Field(24, 8))
	count := uint32(w0.Field(0, 18))
	bufSeg := uint32(w1.Field(18, 14))
	bufWord := uint32(w1.Field(0, 18))

	dev, ok := ctl.devices[devno]
	if !ok {
		return fmt.Errorf("iosim: no device %d", devno)
	}
	tbl := seg.Table{Mem: c.Mem(), DBR: c.DBR()}
	sdw, err := tbl.Fetch(bufSeg)
	if err != nil {
		return err
	}
	if !sdw.Present || bufWord+count > sdw.Bound {
		return fmt.Errorf("iosim: buffer outside segment %o", bufSeg)
	}
	base := seg.Translate(sdw, bufWord)
	c.AddCycles(uint64(count) * CycPerWord)

	if ctl.CompletionDelay > 0 {
		// Asynchronous channel: perform the transfer at completion time
		// (the channel reads core while the processor runs on) and
		// deliver an I/O completion interrupt.
		ctl.Log = append(ctl.Log, fmt.Sprintf("start %s on %s (%d words, async)",
			opName(op), dev.Name(), count))
		c.PostInterrupt(cpu.Interrupt{
			After:  uint64(ctl.CompletionDelay),
			Code:   trap.IOCompletion,
			Detail: devno,
			Fire: func(c *cpu.CPU) error {
				err := ctl.transfer(c, dev, op, base, int(count))
				if err == nil {
					ctl.Log = append(ctl.Log, fmt.Sprintf("complete %s on %s",
						opName(op), dev.Name()))
				}
				return err
			},
		})
		return nil
	}

	if err := ctl.transfer(c, dev, op, base, int(count)); err != nil {
		return err
	}
	ctl.Log = append(ctl.Log, fmt.Sprintf("%s %d words %s %s", opName(op), count,
		map[uint32]string{OpWrite: "to", OpRead: "from"}[op], dev.Name()))
	return nil
}

func opName(op uint32) string {
	switch op {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// transfer moves the words for one IOCB between core and the device.
func (ctl *Controller) transfer(c *cpu.CPU, dev Device, op uint32, base, count int) error {
	switch op {
	case OpWrite:
		data, err := mem.ReadRange(c.Mem(), base, count)
		if err != nil {
			return err
		}
		return dev.WriteWords(data)
	case OpRead:
		data, err := dev.ReadWords(count)
		if err != nil {
			return err
		}
		return mem.WriteRange(c.Mem(), base, data)
	default:
		return fmt.Errorf("iosim: bad IOCB operation %d", op)
	}
}

// MakeIOCB builds the two IOCB words.
func MakeIOCB(op, devno, count uint32, bufSeg, bufWord uint32) (word.Word, word.Word) {
	w0 := word.Word(0).
		Deposit(33, 3, uint64(op)).
		Deposit(24, 8, uint64(devno)).
		Deposit(0, 18, uint64(count))
	w1 := word.Word(0).
		Deposit(18, 14, uint64(bufSeg)).
		Deposit(0, 18, uint64(bufWord))
	return w0, w1
}

// PackChars packs text into 36-bit words, four 9-bit characters per
// word, NUL padded (delegates to the word package's convention).
func PackChars(s string) []word.Word { return word.PackChars(s) }

// UnpackChars reverses PackChars, dropping NULs.
func UnpackChars(words []word.Word) string { return word.UnpackChars(words) }

// Typewriter is the console device of the paper's conclusion example.
type Typewriter struct {
	// Printed accumulates everything written to the device.
	Printed strings.Builder
	// Input supplies ReadWords; keyboard input, pre-loaded by tests.
	Input []word.Word
}

var _ Device = (*Typewriter)(nil)

// Name implements Device.
func (t *Typewriter) Name() string { return "typewriter" }

// WriteWords implements Device: unpack and print.
func (t *Typewriter) WriteWords(data []word.Word) error {
	t.Printed.WriteString(UnpackChars(data))
	return nil
}

// ReadWords implements Device: consume pre-loaded input.
func (t *Typewriter) ReadWords(n int) ([]word.Word, error) {
	if n > len(t.Input) {
		n = len(t.Input)
	}
	out := t.Input[:n]
	t.Input = t.Input[n:]
	return out, nil
}
