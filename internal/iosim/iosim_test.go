package iosim_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/iosim"
	"repro/internal/isa"
	"repro/internal/trap"
	"repro/internal/word"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "abcd", "hello, multics!", "exactly8"} {
		if got := iosim.UnpackChars(iosim.PackChars(s)); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestQuickPackUnpack(t *testing.T) {
	f := func(raw []byte) bool {
		// NULs are padding; strip them from the expectation.
		s := strings.ReplaceAll(string(raw), "\x00", "")
		// Bytes above 255 impossible; all byte values survive 9-bit
		// fields.
		return iosim.UnpackChars(iosim.PackChars(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMakeIOCBFields(t *testing.T) {
	w0, w1 := iosim.MakeIOCB(iosim.OpWrite, 3, 0o177, 0o12, 0o456)
	if w0.Field(33, 3) != iosim.OpWrite || w0.Field(24, 8) != 3 || w0.Field(0, 18) != 0o177 {
		t.Errorf("w0: %v", w0)
	}
	if w1.Field(18, 14) != 0o12 || w1.Field(0, 18) != 0o456 {
		t.Errorf("w1: %v", w1)
	}
}

// buildIOImage builds a ring-0 program that issues one SIO on a
// prepared IOCB.
func buildIOImage(t *testing.T, iocb0, iocb1 word.Word, buffer []word.Word) *image.Image {
	t.Helper()
	code := []word.Word{
		isa.Instruction{Op: isa.SIO, Offset: 3}.Encode(), // sio iocb (word 3)
		isa.Instruction{Op: isa.HLT}.Encode(),
		0,
		iocb0, // word 3
		iocb1, // word 4
	}
	img, err := image.Build(image.Config{}, []image.SegmentDef{
		{
			Name: "driver", Words: code, Size: 16,
			Read: true, Write: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		{
			Name: "buffer", Words: buffer, Size: 32,
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestTypewriterWrite(t *testing.T) {
	text := iosim.PackChars("hello")
	var img *image.Image
	// IOCB references the buffer segment; build once to learn segnos.
	img = buildIOImage(t, 0, 0, text)
	bufSeg, _ := img.Segno("buffer")
	w0, w1 := iosim.MakeIOCB(iosim.OpWrite, 1, uint32(len(text)), bufSeg, 0)
	img = buildIOImage(t, w0, w1, text)

	ctl := iosim.NewController()
	tty := &iosim.Typewriter{}
	ctl.Attach(1, tty)
	img.CPU.IO = ctl
	// The IOCB word offset moved: driver word 3 holds w0 now.
	if err := img.Start(0, "driver", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := tty.Printed.String(); got != "hello" {
		t.Errorf("printed %q", got)
	}
	if len(ctl.Log) != 1 || !strings.Contains(ctl.Log[0], "write 2 words") {
		t.Errorf("log: %v", ctl.Log)
	}
}

func TestTypewriterRead(t *testing.T) {
	input := iosim.PackChars("keys")
	img := buildIOImage(t, 0, 0, make([]word.Word, 4))
	bufSeg, _ := img.Segno("buffer")
	w0, w1 := iosim.MakeIOCB(iosim.OpRead, 1, 1, bufSeg, 0)
	img = buildIOImage(t, w0, w1, make([]word.Word, 4))

	ctl := iosim.NewController()
	tty := &iosim.Typewriter{Input: input}
	ctl.Attach(1, tty)
	img.CPU.IO = ctl
	if err := img.Start(0, "driver", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatal(err)
	}
	w, err := img.ReadWord("buffer", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := iosim.UnpackChars([]word.Word{w}); got != "keys" {
		t.Errorf("buffer: %q", got)
	}
}

func TestSIOOutsideRing0Denied(t *testing.T) {
	// The protection point: SIO from ring 4 must trap, so the only way
	// user code starts I/O is through a ring-0 gate.
	img, err := image.Build(image.Config{}, []image.SegmentDef{
		{
			Name: "user", Words: []word.Word{
				isa.Instruction{Op: isa.SIO, Offset: 1}.Encode(),
				isa.Instruction{Op: isa.HLT}.Encode(),
			},
			Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 4},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	img.CPU.IO = iosim.NewController()
	if err := img.Start(4, "user", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err == nil {
		t.Fatal("SIO executed outside ring 0")
	}
}

func TestControllerErrors(t *testing.T) {
	// Unknown device.
	text := iosim.PackChars("x")
	img := buildIOImage(t, 0, 0, text)
	bufSeg, _ := img.Segno("buffer")
	w0, w1 := iosim.MakeIOCB(iosim.OpWrite, 9, 1, bufSeg, 0)
	img = buildIOImage(t, w0, w1, text)
	img.CPU.IO = iosim.NewController()
	if err := img.Start(0, "driver", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err == nil || !strings.Contains(err.Error(), "no device") {
		t.Errorf("err = %v", err)
	}

	// Buffer past the segment bound.
	w0, w1 = iosim.MakeIOCB(iosim.OpWrite, 1, 1000, bufSeg, 0)
	img = buildIOImage(t, w0, w1, text)
	ctl := iosim.NewController()
	ctl.Attach(1, &iosim.Typewriter{})
	img.CPU.IO = ctl
	if err := img.Start(0, "driver", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err == nil || !strings.Contains(err.Error(), "buffer outside") {
		t.Errorf("err = %v", err)
	}

	// Bad operation code.
	w0, w1 = iosim.MakeIOCB(7, 1, 1, bufSeg, 0)
	img = buildIOImage(t, w0, w1, text)
	ctl = iosim.NewController()
	ctl.Attach(1, &iosim.Typewriter{})
	img.CPU.IO = ctl
	if err := img.Start(0, "driver", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err == nil || !strings.Contains(err.Error(), "bad IOCB") {
		t.Errorf("err = %v", err)
	}
}

// TestAsyncCompletionInterrupt exercises the paper's "I/O completions"
// trap source: SIO returns immediately, the program keeps computing,
// and the transfer lands with an IOCompletion interrupt some
// instructions later.
func TestAsyncCompletionInterrupt(t *testing.T) {
	text := iosim.PackChars("async")
	img := buildIOImage(t, 0, 0, text)
	bufSeg, _ := img.Segno("buffer")
	w0, w1 := iosim.MakeIOCB(iosim.OpWrite, 1, uint32(len(text)), bufSeg, 0)
	// Driver: sio, then three NOPs, then HLT; completion after 2
	// instructions lands before the halt.
	code := []word.Word{
		isa.Instruction{Op: isa.SIO, Offset: 6}.Encode(),
		isa.Instruction{Op: isa.NOP}.Encode(),
		isa.Instruction{Op: isa.NOP}.Encode(),
		isa.Instruction{Op: isa.NOP}.Encode(),
		isa.Instruction{Op: isa.HLT}.Encode(),
		0,
		w0, // word 6
		w1,
	}
	img2, err := image.Build(image.Config{}, []image.SegmentDef{
		{
			Name: "driver", Words: code, Size: 16,
			Read: true, Write: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
		{
			Name: "buffer", Words: text, Size: 32,
			Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild IOCB against img2's segnos.
	bufSeg2, _ := img2.Segno("buffer")
	w0, w1 = iosim.MakeIOCB(iosim.OpWrite, 1, uint32(len(text)), bufSeg2, 0)
	if err := img2.WriteWord("driver", 6, w0); err != nil {
		t.Fatal(err)
	}
	if err := img2.WriteWord("driver", 7, w1); err != nil {
		t.Fatal(err)
	}

	ctl := iosim.NewController()
	ctl.CompletionDelay = 2
	tty := &iosim.Typewriter{}
	ctl.Attach(1, tty)
	c := img2.CPU
	c.IO = ctl
	var completions int
	c.Handler = cpu.TrapHandlerFunc(func(c *cpu.CPU, tr *trap.Trap) cpu.TrapAction {
		if tr.Code != trap.IOCompletion || tr.Service != 1 {
			return cpu.TrapHalt
		}
		completions++
		if err := c.RestoreSaved(); err != nil {
			return cpu.TrapHalt
		}
		return cpu.TrapResume
	})
	if err := img2.Start(0, "driver", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if completions != 1 {
		t.Errorf("completions = %d", completions)
	}
	if got := tty.Printed.String(); got != "async" {
		t.Errorf("printed %q", got)
	}
	if c.PendingInterrupts() != 0 {
		t.Error("interrupt queue not drained")
	}
	foundStart, foundDone := false, false
	for _, l := range ctl.Log {
		if strings.Contains(l, "start write") {
			foundStart = true
		}
		if strings.Contains(l, "complete write") {
			foundDone = true
		}
	}
	if !foundStart || !foundDone {
		t.Errorf("log: %v", ctl.Log)
	}
	_ = img
}
