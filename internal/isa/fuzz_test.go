package isa

import (
	"testing"

	"repro/internal/word"
)

// FuzzDecodeInstruction checks that instruction decode and encode are
// exact inverses over the full 36-bit word space. The instruction
// layout (op 27-35, I 26, PRREL 25, PR 22-24, TAG 18-21, offset 0-17)
// covers every bit of the word, so Encode(Decode(w)) must reproduce w
// bit for bit — any drift means a field moved or shrank. String must
// render every word, defined opcode or not, without panicking.
func FuzzDecodeInstruction(f *testing.F) {
	f.Add(uint64(0))
	f.Add(word.Mask)
	f.Add(Instruction{Op: CALL, PRRel: true, PR: 3, Offset: 0o17}.Encode().Uint64())
	f.Add(Instruction{Op: LDA, Ind: true, Tag: 5, Offset: 0o777777}.Encode().Uint64())
	f.Add(Instruction{Op: RETT, Offset: 1}.Encode().Uint64())
	f.Fuzz(func(t *testing.T, raw uint64) {
		w := word.FromUint64(raw)
		inst := DecodeInstruction(w)
		re := inst.Encode()
		if re != w {
			t.Fatalf("Encode(Decode(%012o)) = %012o", w.Uint64(), re.Uint64())
		}
		if again := DecodeInstruction(re); again != inst {
			t.Fatalf("decode not stable: %+v vs %+v", inst, again)
		}
		if s := inst.String(); s == "" {
			t.Fatalf("empty String for %+v", inst)
		}
		if info, ok := Lookup(inst.Op); ok {
			if op, ok := ByName(info.Name); !ok || op != inst.Op {
				t.Fatalf("ByName(%q) = %v, %v; want %v", info.Name, op, ok, inst.Op)
			}
		}
	})
}

// FuzzDecodeIndirect checks the same inverse property for indirect
// words (ring 33-35, I 32, segno 18-31, wordno 0-17 — again a full
// 36-bit cover).
func FuzzDecodeIndirect(f *testing.F) {
	f.Add(uint64(0))
	f.Add(word.Mask)
	f.Add(Indirect{Ring: 5, Further: true, Segno: 0o17777, Wordno: 0o777777}.Encode().Uint64())
	f.Add(Indirect{Ring: 1, Segno: 3, Wordno: 42}.Encode().Uint64())
	f.Fuzz(func(t *testing.T, raw uint64) {
		w := word.FromUint64(raw)
		ind := DecodeIndirect(w)
		if re := ind.Encode(); re != w {
			t.Fatalf("Encode(Decode(%012o)) = %012o", w.Uint64(), re.Uint64())
		}
		if s := ind.String(); s == "" {
			t.Fatalf("empty String for %+v", ind)
		}
	})
}
