// Package isa defines the instruction set of the simulated processor:
// the instruction word format of the paper's Figure 3 (INS), the
// indirect word format (IND), and the opcode table.
//
// Instruction word layout (36 bits):
//
//	bits 35-27  OPCODE  operation code
//	bit  26     I       indirect flag (INST.I)
//	bit  25     P       pointer-register-relative flag
//	bits 24-22  PRNUM   pointer register number (INST.PRNUM)
//	bits 21-18  TAG     index-register modification (0 = none, 1-8 = X0-X7).
//	                    Reused as a register selector by EAP and SPR
//	                    (target/source pointer register 0-7) and by LDX,
//	                    STX and LIX (index register 0-7), and as the
//	                    return-point displacement by STIC; those five
//	                    instructions do not index.
//	bits 17-0   OFFSET  18-bit offset (INST.OFFSET)
//
// Indirect word layout (36 bits):
//
//	bits 35-33  RING    validation ring number (IND.RING)
//	bit  32     I       further indirection flag (IND.I)
//	bits 31-18  SEGNO   segment number
//	bits 17-0   WORDNO  word number
//
// The instruction set is deliberately small — enough to write the
// supervisor veneers, the example subsystems, and the benchmark kernels —
// but complete with respect to the paper: every addressing mode that
// participates in ring validation (direct, PR-relative, indexed,
// indirect with chained indirection) and both ring-crossing instructions
// (CALL, RETURN) are present, as are the privileged instructions the
// paper names (load DBR, start I/O, restore processor state).
package isa

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/word"
)

// Opcode is a 9-bit operation code.
type Opcode uint16

// The instruction set. Opcode 0 is deliberately unassigned so that
// execution of zeroed memory traps immediately.
const (
	ILL Opcode = 0o000 // unassigned; illegal-opcode trap

	NOP Opcode = 0o001 // no operation
	HLT Opcode = 0o002 // halt the processor

	LDA Opcode = 0o010 // A := operand
	STA Opcode = 0o011 // operand := A
	LDQ Opcode = 0o012 // Q := operand
	STQ Opcode = 0o013 // operand := Q
	LDX Opcode = 0o014 // X[PRNUM] := operand.lower
	STX Opcode = 0o015 // operand := X[PRNUM] (upper half zero)

	LIA Opcode = 0o020 // A := signext18(OFFSET)
	AIA Opcode = 0o021 // A := A + signext18(OFFSET)
	LIQ Opcode = 0o022 // Q := signext18(OFFSET)
	LIX Opcode = 0o023 // X[PRNUM] := OFFSET

	ADA Opcode = 0o030 // A := A + operand
	SBA Opcode = 0o031 // A := A - operand
	ANA Opcode = 0o032 // A := A & operand
	ORA Opcode = 0o033 // A := A | operand
	ERA Opcode = 0o034 // A := A ^ operand
	CMA Opcode = 0o035 // indicators := compare(A, operand)
	AOS Opcode = 0o036 // operand := operand + 1 (read-modify-write)

	ALS Opcode = 0o040 // A := A << OFFSET
	ARS Opcode = 0o041 // A := A >> OFFSET (logical)

	EAP  Opcode = 0o050 // PR[PRNUM] := TPR (effective address to pointer register)
	SPR  Opcode = 0o051 // operand := PR[PRNUM] as an indirect word
	STIC Opcode = 0o052 // operand := IPR+1+TAG as an indirect word (save return point)

	TRA Opcode = 0o060 // transfer
	TZE Opcode = 0o061 // transfer if zero indicator
	TNZ Opcode = 0o062 // transfer if not zero
	TMI Opcode = 0o063 // transfer if negative
	TPL Opcode = 0o064 // transfer if not negative

	CALL Opcode = 0o070 // call (may switch ring downward; Figure 8)
	RET  Opcode = 0o071 // return (may switch ring upward; Figure 9)

	LDBR Opcode = 0o100 // privileged: DBR := operand pair
	SIO  Opcode = 0o101 // privileged: start I/O from control block at operand
	RETT Opcode = 0o102 // privileged: restore processor state saved at trap
	SVC  Opcode = 0o103 // privileged: supervisor service OFFSET (simulator service stub)
)

// OperandClass describes how an instruction uses its operand, which in
// turn determines the validation performed (Figures 5-7).
type OperandClass int

const (
	// ClassNone: no effective address is formed; the offset field is an
	// immediate or shift count, or unused.
	ClassNone OperandClass = iota
	// ClassRead: effective address formed, operand read (Figure 6).
	ClassRead
	// ClassWrite: effective address formed, operand written (Figure 6).
	ClassWrite
	// ClassReadWrite: operand read then written (both checks).
	ClassReadWrite
	// ClassEAOnly: effective address formed but the operand is not
	// referenced and no validation is performed (EAP-type, Figure 7).
	ClassEAOnly
	// ClassTransfer: effective address formed; advance check of Figure 7.
	ClassTransfer
	// ClassCall: the CALL instruction (Figure 8).
	ClassCall
	// ClassReturn: the RETURN instruction (Figure 9).
	ClassReturn
)

// Info is the decoded metadata for one opcode.
type Info struct {
	Name       string
	Class      OperandClass
	Privileged bool // executes only in ring 0
}

var table = map[Opcode]Info{
	NOP:  {"nop", ClassNone, false},
	HLT:  {"hlt", ClassNone, false},
	LDA:  {"lda", ClassRead, false},
	STA:  {"sta", ClassWrite, false},
	LDQ:  {"ldq", ClassRead, false},
	STQ:  {"stq", ClassWrite, false},
	LDX:  {"ldx", ClassRead, false},
	STX:  {"stx", ClassWrite, false},
	LIA:  {"lia", ClassNone, false},
	AIA:  {"aia", ClassNone, false},
	LIQ:  {"liq", ClassNone, false},
	LIX:  {"lix", ClassNone, false},
	ADA:  {"ada", ClassRead, false},
	SBA:  {"sba", ClassRead, false},
	ANA:  {"ana", ClassRead, false},
	ORA:  {"ora", ClassRead, false},
	ERA:  {"era", ClassRead, false},
	CMA:  {"cma", ClassRead, false},
	AOS:  {"aos", ClassReadWrite, false},
	ALS:  {"als", ClassNone, false},
	ARS:  {"ars", ClassNone, false},
	EAP:  {"eap", ClassEAOnly, false},
	SPR:  {"spr", ClassWrite, false},
	STIC: {"stic", ClassWrite, false},
	TRA:  {"tra", ClassTransfer, false},
	TZE:  {"tze", ClassTransfer, false},
	TNZ:  {"tnz", ClassTransfer, false},
	TMI:  {"tmi", ClassTransfer, false},
	TPL:  {"tpl", ClassTransfer, false},
	CALL: {"call", ClassCall, false},
	RET:  {"return", ClassReturn, false},
	LDBR: {"ldbr", ClassRead, true},
	SIO:  {"sio", ClassRead, true},
	RETT: {"rett", ClassNone, true},
	SVC:  {"svc", ClassNone, true},
}

// Lookup returns the metadata for op and whether op is defined.
func Lookup(op Opcode) (Info, bool) {
	info, ok := table[op]
	return info, ok
}

// ByName returns the opcode with the given assembler mnemonic.
func ByName(name string) (Opcode, bool) {
	for op, info := range table {
		if info.Name == name {
			return op, true
		}
	}
	return ILL, false
}

// Opcodes returns every defined opcode (order unspecified).
func Opcodes() []Opcode {
	out := make([]Opcode, 0, len(table))
	for op := range table {
		out = append(out, op)
	}
	return out
}

// Instruction is a decoded instruction word.
type Instruction struct {
	Op     Opcode
	Ind    bool   // INST.I: operand address is indirect
	PRRel  bool   // operand offset is relative to PR[PR]
	PR     uint8  // pointer register number (also X selector for LDX/STX/LIX, PR selector for EAP/SPR)
	Tag    uint8  // index register modification (0 none, 1-8 = X0-X7); STIC displacement
	Offset uint32 // 18-bit offset
}

// Encode packs the instruction into a word.
func (i Instruction) Encode() word.Word {
	return word.Word(0).
		Deposit(27, 9, uint64(i.Op)).
		WithBit(26, i.Ind).
		WithBit(25, i.PRRel).
		Deposit(22, 3, uint64(i.PR)).
		Deposit(18, 4, uint64(i.Tag)).
		Deposit(0, 18, uint64(i.Offset))
}

// DecodeInstruction unpacks an instruction word.
func DecodeInstruction(w word.Word) Instruction {
	return Instruction{
		Op:     Opcode(w.Field(27, 9)),
		Ind:    w.Bit(26),
		PRRel:  w.Bit(25),
		PR:     uint8(w.Field(22, 3)),
		Tag:    uint8(w.Field(18, 4)),
		Offset: uint32(w.Field(0, 18)),
	}
}

func (i Instruction) String() string {
	info, ok := Lookup(i.Op)
	name := info.Name
	if !ok {
		name = fmt.Sprintf("op%03o", uint16(i.Op))
	}
	// Register-suffixed mnemonics carry TAG as the register number.
	suffix := ""
	switch i.Op {
	case EAP, SPR, LDX, STX, LIX:
		name = fmt.Sprintf("%s%d", name, i.Tag&7)
	case STIC:
		if i.Tag != 0 {
			suffix = fmt.Sprintf(",+%d", i.Tag)
		}
	default:
		if i.Tag != 0 {
			suffix = fmt.Sprintf(",x%d", i.Tag-1)
		}
	}
	s := name
	if i.Ind {
		s += " *"
	} else {
		s += " "
	}
	if i.PRRel {
		s += fmt.Sprintf("pr%d|", i.PR)
	}
	return s + fmt.Sprintf("%o", i.Offset) + suffix
}

// Indirect is a decoded indirect word (IND in Figure 3). The paper added
// ring numbers to indirect words (Daley's suggestion) precisely so the
// effective-ring computation can account for every ring that could have
// influenced an address.
type Indirect struct {
	Ring    core.Ring
	Further bool // IND.I: continue indirection through this word's target
	Segno   uint32
	Wordno  uint32
}

// Encode packs the indirect word.
func (d Indirect) Encode() word.Word {
	return word.Word(0).
		Deposit(33, 3, uint64(d.Ring)).
		WithBit(32, d.Further).
		Deposit(18, 14, uint64(d.Segno)).
		Deposit(0, 18, uint64(d.Wordno))
}

// DecodeIndirect unpacks an indirect word.
func DecodeIndirect(w word.Word) Indirect {
	return Indirect{
		Ring:    core.Ring(w.Field(33, 3)),
		Further: w.Bit(32),
		Segno:   uint32(w.Field(18, 14)),
		Wordno:  uint32(w.Field(0, 18)),
	}
}

func (d Indirect) String() string {
	f := ""
	if d.Further {
		f = ",*"
	}
	return fmt.Sprintf("(%o|%o ring %d%s)", d.Segno, d.Wordno, d.Ring, f)
}
