package isa

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/word"
)

func TestInstructionRoundTrip(t *testing.T) {
	ins := Instruction{Op: LDA, Ind: true, PRRel: true, PR: 6, Tag: 3, Offset: 0o1234}
	w := ins.Encode()
	if got := DecodeInstruction(w); got != ins {
		t.Errorf("round trip: %+v", got)
	}
}

func TestOpcodeZeroIsIllegal(t *testing.T) {
	if _, ok := Lookup(ILL); ok {
		t.Error("opcode 0 must be unassigned")
	}
	ins := DecodeInstruction(word.Word(0))
	if ins.Op != ILL {
		t.Errorf("zero word decodes to op %o", ins.Op)
	}
}

func TestLookupAllDefined(t *testing.T) {
	for _, op := range Opcodes() {
		info, ok := Lookup(op)
		if !ok {
			t.Fatalf("opcode %o not found", op)
		}
		if info.Name == "" {
			t.Errorf("opcode %o has empty name", op)
		}
	}
}

func TestByName(t *testing.T) {
	cases := map[string]Opcode{
		"lda": LDA, "sta": STA, "call": CALL, "return": RET,
		"eap": EAP, "ldbr": LDBR, "svc": SVC, "stic": STIC,
	}
	for name, want := range cases {
		got, ok := ByName(name)
		if !ok || got != want {
			t.Errorf("ByName(%q) = %o, %v", name, got, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("bogus mnemonic resolved")
	}
}

func TestNamesUnique(t *testing.T) {
	seen := map[string]Opcode{}
	for _, op := range Opcodes() {
		info, _ := Lookup(op)
		if prev, dup := seen[info.Name]; dup {
			t.Errorf("name %q used by %o and %o", info.Name, prev, op)
		}
		seen[info.Name] = op
	}
}

func TestPrivilegedSet(t *testing.T) {
	// Exactly the instructions the paper names as privileged (plus the
	// simulator's service stub) are privileged.
	want := map[Opcode]bool{LDBR: true, SIO: true, RETT: true, SVC: true}
	for _, op := range Opcodes() {
		info, _ := Lookup(op)
		if info.Privileged != want[op] {
			t.Errorf("opcode %s privileged=%v", info.Name, info.Privileged)
		}
	}
}

func TestClassAssignments(t *testing.T) {
	cases := map[Opcode]OperandClass{
		NOP: ClassNone, HLT: ClassNone, LIA: ClassNone, ALS: ClassNone,
		LDA: ClassRead, ADA: ClassRead, CMA: ClassRead, LDBR: ClassRead,
		STA: ClassWrite, SPR: ClassWrite, STIC: ClassWrite,
		AOS: ClassReadWrite,
		EAP: ClassEAOnly,
		TRA: ClassTransfer, TZE: ClassTransfer,
		CALL: ClassCall,
		RET:  ClassReturn,
	}
	for op, want := range cases {
		info, _ := Lookup(op)
		if info.Class != want {
			t.Errorf("%s class = %d, want %d", info.Name, info.Class, want)
		}
	}
}

func TestIndirectRoundTrip(t *testing.T) {
	d := Indirect{Ring: 5, Further: true, Segno: 0o1234, Wordno: 0o56701}
	if got := DecodeIndirect(d.Encode()); got != d {
		t.Errorf("round trip: %+v", got)
	}
}

func TestStrings(t *testing.T) {
	ins := Instruction{Op: LDA, Ind: true, PRRel: true, PR: 3, Tag: 2, Offset: 7}
	if ins.String() == "" {
		t.Error("empty instruction string")
	}
	ins.Op = Opcode(0o777)
	if ins.String() == "" {
		t.Error("empty unknown-op string")
	}
	d := Indirect{Ring: 1, Further: true, Segno: 2, Wordno: 3}
	if d.String() == "" {
		t.Error("empty indirect string")
	}
}

// Property: instruction encode/decode is the identity over the field
// space.
func TestQuickInstructionRoundTrip(t *testing.T) {
	f := func(op uint16, ind, prrel bool, pr, tag uint8, off uint32) bool {
		ins := Instruction{
			Op:     Opcode(op % (1 << 9)),
			Ind:    ind,
			PRRel:  prrel,
			PR:     pr % 8,
			Tag:    tag % 16,
			Offset: off % (1 << 18),
		}
		return DecodeInstruction(ins.Encode()) == ins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: indirect word encode/decode is the identity.
func TestQuickIndirectRoundTrip(t *testing.T) {
	f := func(ring uint8, further bool, segno, wordno uint32) bool {
		d := Indirect{
			Ring:    core.Ring(ring % 8),
			Further: further,
			Segno:   segno % (1 << 14),
			Wordno:  wordno % (1 << 18),
		}
		return DecodeIndirect(d.Encode()) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: distinct instructions encode to distinct words (injectivity
// over canonical field ranges).
func TestQuickInstructionInjective(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[word.Word]Instruction{}
	for i := 0; i < 10000; i++ {
		ins := Instruction{
			Op:     Opcode(rng.Intn(1 << 9)),
			Ind:    rng.Intn(2) == 0,
			PRRel:  rng.Intn(2) == 0,
			PR:     uint8(rng.Intn(8)),
			Tag:    uint8(rng.Intn(16)),
			Offset: uint32(rng.Intn(1 << 18)),
		}
		w := ins.Encode()
		if prev, ok := seen[w]; ok && prev != ins {
			t.Fatalf("collision: %+v and %+v both encode to %v", prev, ins, w)
		}
		seen[w] = ins
	}
}
