package mem

import (
	"sync/atomic"

	"repro/internal/word"
)

// Atomic is a word-addressed core store safe for concurrent access from
// several simulated processors. Each 36-bit word lives in its own
// atomic cell, so the read path is a single atomic load — no mutex —
// and the write path a single atomic store, matching the word-granular
// coherence a real multi-processor memory controller provides.
//
// Atomicity is per word: a read concurrently with a write observes
// either the old or the new word, never a mixture. Read-modify-write
// instructions (AOS) are NOT made atomic across processors — exactly as
// on the paper's hardware, where interlocking shared counters is
// software's job (a ring-0 subsystem, a gate, or disjoint words).
type Atomic struct {
	words []atomic.Uint64
}

var _ Store = (*Atomic)(nil)

// NewAtomic returns a zeroed shared memory of size words.
func NewAtomic(size int) *Atomic {
	if size <= 0 {
		panic("mem: non-positive memory size")
	}
	return &Atomic{words: make([]atomic.Uint64, size)}
}

// Size returns the number of words of core.
func (m *Atomic) Size() int { return len(m.words) }

// Read fetches the word at absolute address addr.
func (m *Atomic) Read(addr int) (word.Word, error) {
	if addr < 0 || addr >= len(m.words) {
		return 0, &Fault{Addr: addr, Size: len(m.words), Op: "read"}
	}
	return word.Word(m.words[addr].Load()), nil
}

// Write stores w at absolute address addr.
func (m *Atomic) Write(addr int, w word.Word) error {
	if addr < 0 || addr >= len(m.words) {
		return &Fault{Addr: addr, Size: len(m.words), Op: "write"}
	}
	m.words[addr].Store(uint64(w))
	return nil
}
