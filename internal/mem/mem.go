// Package mem implements the word-addressed core memory of the simulated
// machine, together with a simple block allocator used by the image
// builder to place segments.
//
// The paper assumes storage for segments is allocated "in scattered
// fixed-length blocks" by a paging scheme, but explicitly sets paging
// aside as transparent to access control. We follow suit: memory is a
// flat array of 36-bit words and segments are placed contiguously. The
// optional paging layer in internal/paging demonstrates the transparency
// claim.
package mem

import (
	"fmt"
	"sort"

	"repro/internal/word"
)

// Fault describes an out-of-bounds physical memory reference. A Fault
// escaping to a caller always indicates a simulator bug or a corrupted
// descriptor: virtual-level bound checks happen before translation.
type Fault struct {
	Addr int
	Size int
	Op   string // "read" or "write"
}

func (f *Fault) Error() string {
	return fmt.Sprintf("mem: %s of absolute address %o outside core of %o words", f.Op, f.Addr, f.Size)
}

// Store is word-addressed physical storage: flat core (Memory) or a
// demand-paged space (internal/paging). The processor and descriptor
// tables address storage only through this interface, which is what
// lets the paging substitution demonstrate the paper's claim that
// "paging, if appropriately implemented, need not affect access
// control".
type Store interface {
	Read(addr int) (word.Word, error)
	Write(addr int, w word.Word) error
	Size() int
}

// Memory is a flat, word-addressed core store.
type Memory struct {
	words []word.Word
}

var _ Store = (*Memory)(nil)

// New returns a zeroed memory of size words.
func New(size int) *Memory {
	if size <= 0 {
		panic("mem: non-positive memory size")
	}
	return &Memory{words: make([]word.Word, size)}
}

// Size returns the number of words of core.
func (m *Memory) Size() int { return len(m.words) }

// Read fetches the word at absolute address addr.
func (m *Memory) Read(addr int) (word.Word, error) {
	if addr < 0 || addr >= len(m.words) {
		return 0, &Fault{Addr: addr, Size: len(m.words), Op: "read"}
	}
	return m.words[addr], nil
}

// Write stores w at absolute address addr.
func (m *Memory) Write(addr int, w word.Word) error {
	if addr < 0 || addr >= len(m.words) {
		return &Fault{Addr: addr, Size: len(m.words), Op: "write"}
	}
	m.words[addr] = w
	return nil
}

// ReadRange copies n words starting at addr into a fresh slice.
func ReadRange(s Store, addr, n int) ([]word.Word, error) {
	if n < 0 || addr < 0 || addr+n > s.Size() {
		return nil, &Fault{Addr: addr, Size: s.Size(), Op: "read"}
	}
	out := make([]word.Word, n)
	for i := range out {
		w, err := s.Read(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// WriteRange stores the words of src starting at addr.
func WriteRange(s Store, addr int, src []word.Word) error {
	if addr < 0 || addr+len(src) > s.Size() {
		return &Fault{Addr: addr, Size: s.Size(), Op: "write"}
	}
	for i, w := range src {
		if err := s.Write(addr+i, w); err != nil {
			return err
		}
	}
	return nil
}

// Clear zeroes n words starting at addr.
func Clear(s Store, addr, n int) error {
	if n < 0 || addr < 0 || addr+n > s.Size() {
		return &Fault{Addr: addr, Size: s.Size(), Op: "write"}
	}
	for i := addr; i < addr+n; i++ {
		if err := s.Write(i, 0); err != nil {
			return err
		}
	}
	return nil
}

// Allocator hands out non-overlapping regions of a Store. It is a
// first-fit free-list allocator; segments in this simulator are allocated
// once at image-build time and occasionally grown by the supervisor, so
// allocation performance is irrelevant next to clarity.
type Allocator struct {
	size int
	free []span // sorted by base, coalesced
}

type span struct{ base, size int }

// NewAllocator manages size words except the first reserve, which are
// left for fixed structures (the trap vector and descriptor segment
// base, by convention of the image builder).
func NewAllocator(size, reserve int) *Allocator {
	if reserve < 0 || reserve > size {
		panic("mem: bad reserve")
	}
	return &Allocator{
		size: size,
		free: []span{{base: reserve, size: size - reserve}},
	}
}

// Alloc returns the base address of a fresh region of n words, or an
// error if core is exhausted.
func (a *Allocator) Alloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("mem: allocation of %d words", n)
	}
	for i, s := range a.free {
		if s.size >= n {
			base := s.base
			a.free[i].base += n
			a.free[i].size -= n
			if a.free[i].size == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			}
			return base, nil
		}
	}
	return 0, fmt.Errorf("mem: out of core allocating %d words", n)
}

// Free returns a region to the allocator, coalescing with neighbours.
func (a *Allocator) Free(base, n int) error {
	if n <= 0 || base < 0 || base+n > a.size {
		return fmt.Errorf("mem: bad free of [%o,%o)", base, base+n)
	}
	for _, s := range a.free {
		if base < s.base+s.size && s.base < base+n {
			return fmt.Errorf("mem: double free of [%o,%o)", base, base+n)
		}
	}
	a.free = append(a.free, span{base, n})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].base < a.free[j].base })
	// Coalesce adjacent spans.
	out := a.free[:1]
	for _, s := range a.free[1:] {
		last := &out[len(out)-1]
		if last.base+last.size == s.base {
			last.size += s.size
		} else {
			out = append(out, s)
		}
	}
	a.free = out
	return nil
}

// FreeWords reports the total unallocated core.
func (a *Allocator) FreeWords() int {
	total := 0
	for _, s := range a.free {
		total += s.size
	}
	return total
}
