package mem

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/word"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(128)
	if err := m.Write(5, word.FromInt(42)); err != nil {
		t.Fatal(err)
	}
	w, err := m.Read(5)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int64() != 42 {
		t.Errorf("read back %d", w.Int64())
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New(16)
	for i := 0; i < 16; i++ {
		w, err := m.Read(i)
		if err != nil {
			t.Fatal(err)
		}
		if !w.IsZero() {
			t.Fatalf("word %d not zero", i)
		}
	}
}

func TestBoundsFaults(t *testing.T) {
	m := New(8)
	if _, err := m.Read(8); err == nil {
		t.Error("read at size did not fault")
	}
	if _, err := m.Read(-1); err == nil {
		t.Error("negative read did not fault")
	}
	if err := m.Write(100, 0); err == nil {
		t.Error("write past end did not fault")
	}
	var f *Fault
	err := m.Write(100, 0)
	if !errors.As(err, &f) {
		t.Fatalf("error is not *Fault: %v", err)
	}
	if f.Addr != 100 || f.Op != "write" {
		t.Errorf("fault fields: %+v", f)
	}
}

func TestRangeOps(t *testing.T) {
	m := New(32)
	src := []word.Word{1, 2, 3, 4}
	if err := WriteRange(m, 10, src); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRange(m, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Errorf("word %d = %v", i, got[i])
		}
	}
	if err := Clear(m, 11, 2); err != nil {
		t.Fatal(err)
	}
	got, _ = ReadRange(m, 10, 4)
	if got[0] != 1 || got[1] != 0 || got[2] != 0 || got[3] != 4 {
		t.Errorf("after clear: %v", got)
	}
}

func TestRangeBounds(t *testing.T) {
	m := New(8)
	if _, err := ReadRange(m, 6, 4); err == nil {
		t.Error("ReadRange past end did not fault")
	}
	if err := WriteRange(m, 7, []word.Word{1, 2}); err == nil {
		t.Error("WriteRange past end did not fault")
	}
	if err := Clear(m, 0, -1); err == nil {
		t.Error("negative clear did not fault")
	}
}

func TestAllocatorBasic(t *testing.T) {
	m := New(100)
	a := NewAllocator(m.Size(), 10)
	b1, err := a.Alloc(30)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != 10 {
		t.Errorf("first alloc at %d, want 10", b1)
	}
	b2, err := a.Alloc(60)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != 40 {
		t.Errorf("second alloc at %d, want 40", b2)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("over-allocation did not fail")
	}
}

func TestAllocatorFreeCoalesce(t *testing.T) {
	m := New(100)
	a := NewAllocator(m.Size(), 0)
	b1, _ := a.Alloc(50)
	b2, _ := a.Alloc(50)
	if err := a.Free(b1, 50); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b2, 50); err != nil {
		t.Fatal(err)
	}
	if a.FreeWords() != 100 {
		t.Errorf("FreeWords = %d", a.FreeWords())
	}
	// After coalescing, one big allocation must succeed.
	if _, err := a.Alloc(100); err != nil {
		t.Errorf("coalesced alloc failed: %v", err)
	}
}

func TestAllocatorDoubleFree(t *testing.T) {
	m := New(100)
	a := NewAllocator(m.Size(), 0)
	b, _ := a.Alloc(10)
	if err := a.Free(b, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(b, 10); err == nil {
		t.Error("double free not detected")
	}
}

func TestAllocatorBadFree(t *testing.T) {
	m := New(100)
	a := NewAllocator(m.Size(), 0)
	if err := a.Free(90, 20); err == nil {
		t.Error("free past end not rejected")
	}
	if err := a.Free(0, 0); err == nil {
		t.Error("zero-size free not rejected")
	}
}

// Property: a write followed by a read at any in-bounds address returns
// the written word and disturbs no other word.
func TestQuickWriteIsolated(t *testing.T) {
	const size = 64
	f := func(addrSeed uint8, v uint64) bool {
		m := New(size)
		sentinel := word.FromUint64(0o525252525252)
		for i := 0; i < size; i++ {
			_ = m.Write(i, sentinel)
		}
		addr := int(addrSeed) % size
		if err := m.Write(addr, word.FromUint64(v)); err != nil {
			return false
		}
		for i := 0; i < size; i++ {
			got, err := m.Read(i)
			if err != nil {
				return false
			}
			want := sentinel
			if i == addr {
				want = word.FromUint64(v)
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: allocations never overlap and stay in bounds.
func TestQuickAllocDisjoint(t *testing.T) {
	f := func(sizes []uint8) bool {
		m := New(4096)
		a := NewAllocator(m.Size(), 16)
		type region struct{ base, size int }
		var regions []region
		for _, s := range sizes {
			n := int(s)%64 + 1
			base, err := a.Alloc(n)
			if err != nil {
				break // out of core is fine
			}
			if base < 16 || base+n > 4096 {
				return false
			}
			for _, r := range regions {
				if base < r.base+r.size && r.base < base+n {
					return false // overlap
				}
			}
			regions = append(regions, region{base, n})
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
