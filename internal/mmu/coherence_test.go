package mmu_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/seg"
)

// newBenchUnits is newUnits without the testing.T plumbing: n MMUs over
// one shared word-atomic core, one coherence group.
func newBenchUnits(n, cacheSize int) []*mmu.MMU {
	m := mem.NewAtomic(1 << 14)
	g := mmu.NewGroup()
	units := make([]*mmu.MMU, n)
	for i := range units {
		u := mmu.New(m, mmu.Options{Validate: true, CacheSize: cacheSize})
		u.SetDBR(seg.DBR{Addr: 0, Bound: 32})
		g.Join(u)
		units[i] = u
	}
	return units
}

// BenchmarkGroupShootdown measures cross-processor invalidation
// latency: one member edits a descriptor through StoreSDW (posting the
// shootdown to every other member) and every other member then fetches
// the same descriptor, paying the generation check, the drain, and the
// refill miss. This is the full propagation cost of one descriptor edit
// across the machine.
func BenchmarkGroupShootdown(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("members=%d", n), func(b *testing.B) {
			units := newBenchUnits(n, 8)
			editor := units[0]
			if err := editor.StoreSDW(1, sdwA); err != nil {
				b.Fatal(err)
			}
			// Warm every cache so each iteration's fetch after the edit
			// is a genuine shootdown-induced miss, not a cold one.
			for _, u := range units {
				if _, err := u.FetchSDW(1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				next := sdwA
				next.Bound = 16 + uint32(i%16)
				if err := editor.StoreSDW(1, next); err != nil {
					b.Fatal(err)
				}
				for _, u := range units[1:] {
					if _, err := u.FetchSDW(1); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkGroupFetchQuiescent is the control: the same fetch with no
// edit pending, i.e. the mutex-free fast path (one atomic generation
// load plus the cache hit).
func BenchmarkGroupFetchQuiescent(b *testing.B) {
	units := newBenchUnits(2, 8)
	if err := units[0].StoreSDW(1, sdwA); err != nil {
		b.Fatal(err)
	}
	if _, err := units[1].FetchSDW(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := units[1].FetchSDW(1); err != nil {
			b.Fatal(err)
		}
	}
}

// TestConcurrentStoreSDWAndLookup drives the service-mutation pattern
// under the race detector: one supervisor goroutine editing a
// descriptor through StoreSDW while reader goroutines, each owning its
// own MMU in the same group, fetch and validate against it. The two
// states the mutator alternates between differ only in their bracket
// fields — a single core word — so every fetch must decode to exactly
// one of them; anything else is a torn read or a stale cache.
func TestConcurrentStoreSDWAndLookup(t *testing.T) {
	const (
		readers  = 4
		edits    = 2000
		perentry = 64 // reader fetches per observed generation
	)
	units := newUnits(t, readers+1)
	editor := units[0]

	wide := seg.SDW{
		Present: true, Addr: 0o1000, Bound: 16, Read: true,
		Brackets: core.Brackets{R1: 5, R2: 5, R3: 7},
	}
	narrow := wide
	narrow.Brackets = core.Brackets{R1: 1, R2: 1, R3: 7}

	if err := editor.StoreSDW(2, wide); err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int, u *mmu.MMU) {
			defer wg.Done()
			for !stop.Load() {
				for j := 0; j < perentry; j++ {
					sdw, err := u.FetchSDW(2)
					if err != nil {
						errs[i] = err
						return
					}
					if sdw != wide && sdw != narrow {
						errs[i] = fmt.Errorf("reader %d: torn or stale SDW %v", i, sdw)
						return
					}
					// Validation must agree with whichever state was
					// observed: ring 4 reads inside the wide read
					// bracket, outside the narrow one.
					viol := u.CheckRead(sdw.View(), 2, 3, 4)
					if inWide := sdw == wide; inWide != (viol == nil) {
						errs[i] = fmt.Errorf("reader %d: state/validation mismatch: %v vs %v", i, sdw, viol)
						return
					}
				}
			}
		}(i, units[i+1])
	}

	for e := 0; e < edits; e++ {
		next := narrow
		if e%2 == 0 {
			next = wide
		}
		if err := editor.StoreSDW(2, next); err != nil {
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
