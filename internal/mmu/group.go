package mmu

import "sync"

// Multi-processor SDW coherence.
//
// The paper's machine keeps one associative memory per processor; when
// several processors share core, a descriptor edit on one must be
// "immediately effective" on all. Real hardware does this with a
// shootdown: the editing processor broadcasts the affected segment
// number and every other processor drops its cached copy before the
// next translation. This file models that protocol.
//
// The discipline, stated once and relied on everywhere:
//
//   - Every MMU that shares core with others joins one Group.
//   - Descriptor edits go through StoreSDW (never raw Table().Store);
//     StoreSDW posts the segment number to every other member.
//   - A DBR swap (SetDBR) flushes only the local associative memory —
//     a descriptor *segment* switch is private to its processor.
//   - Members apply pending shootdowns at their next SDW fetch. The
//     fast path is mutex-free: a single atomic generation comparison;
//     the pending list's lock is taken only when the generation moved.
//
// The broadcast is conservative: a member invalidates segno regardless
// of whose descriptor segment was edited (members may run different
// DBRs). A spurious invalidation costs one refill; a missed one would
// cost correctness.

// pendingShootdowns is the cross-processor invalidation mailbox of one
// MMU. Remote members post under the lock; the owner drains it.
type pendingShootdowns struct {
	mu     sync.Mutex
	segnos []uint32 //ring:guarded mu
}

// Group is a set of MMUs sharing core memory and therefore obliged to
// keep their associative memories coherent.
type Group struct {
	mu      sync.Mutex
	members []*MMU //ring:guarded mu
}

// NewGroup returns an empty coherence group.
func NewGroup() *Group { return &Group{} }

// Join adds u to the group. Join must happen before the member's
// processor starts executing.
func (g *Group) Join(u *MMU) {
	g.mu.Lock()
	defer g.mu.Unlock()
	u.group = g
	g.members = append(g.members, u)
}

// Members reports the group size.
func (g *Group) Members() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// shootdown posts an invalidation of segno to every member except the
// editor. Called by StoreSDW with the descriptor already written to
// core, so a member that drains the post and refetches sees the new
// contents.
func (g *Group) shootdown(from *MMU, segno uint32) {
	g.mu.Lock()
	members := g.members
	g.mu.Unlock()
	for _, m := range members {
		if m == from {
			continue
		}
		m.postInvalidate(segno)
	}
}

// postInvalidate enqueues a remote invalidation: list under the lock,
// then the generation bump that makes the owner look.
func (u *MMU) postInvalidate(segno uint32) {
	if len(u.cache) == 0 {
		return
	}
	u.pending.mu.Lock()
	u.pending.segnos = append(u.pending.segnos, segno)
	u.pending.mu.Unlock()
	u.shootGen.Add(1)
}

// applyShootdowns drains the mailbox on the owner's side. gen is the
// generation observed by the caller; recording it before draining means
// a post that races with the drain re-triggers on the next fetch — at
// worst one spurious (empty) drain, never a missed invalidation.
func (u *MMU) applyShootdowns(gen uint64) {
	u.seenGen = gen
	u.pending.mu.Lock()
	segnos := u.pending.segnos
	u.pending.segnos = nil
	u.pending.mu.Unlock()
	for _, segno := range segnos {
		u.invalidate(segno)
		u.stats.Shootdowns++
	}
}
