// Package mmu implements the memory management unit of the simulated
// processor: the single authoritative path every memory reference takes
// from two-part address to core word.
//
// The paper's central claim is that access validation is "integrated
// with address translation" and performed "on every reference". This
// package is that integration point, extracted so that every agent in
// the system — the hardware-ring CPU, the software-ring baseline, the
// multi-process scheduler — goes through the same translate-and-check
// layer. It owns:
//
//   - DBR-relative SDW retrieval from the descriptor segment;
//   - the direct-mapped SDW associative memory, with its invalidation
//     discipline (see below);
//   - bracket validation (read, write, fetch, transfer) and the
//     CALL/RETURN decisions, on top of the pure predicates in
//     internal/core, including the T5 validation-ablation switch;
//   - virtual-to-physical translation and the core access itself;
//   - cycle accounting for descriptor reads and validations;
//   - a pluggable, allocation-free Sink for trace events.
//
// # Invalidation discipline
//
// The paper expects a changed SDW "to be immediately effective". The
// associative memory therefore obeys three rules:
//
//  1. SetDBR flushes every associative register: a new descriptor
//     segment invalidates all cached translations (the processor does
//     this itself on LDBR).
//  2. Supervisor software that edits a descriptor in place must store
//     through StoreSDW, which writes through to core and invalidates
//     the cached copy.
//  3. In a multi-processor configuration, MMUs sharing core join a
//     Group; StoreSDW then also posts a shootdown to every other member
//     (see group.go), which each processor applies before its next SDW
//     fetch. The fetch fast path stays mutex-free: one atomic
//     generation load per reference, the lock taken only when a
//     shootdown is actually pending.
//
// With the cache disabled (the default), every fetch reads the
// descriptor segment and no discipline is required of supervisor
// software.
//
// # Read-only descriptor sources
//
// An MMU can instead be pointed at an SDWSource (SetSDWSource): an
// immutable, concurrency-safe descriptor view such as an RCU snapshot
// published by the decision service's store. In source mode FetchSDW
// never touches core, the associative memory, or the shootdown queue —
// the source is coherent by construction (a new snapshot is a new
// source state, not an in-place edit), so no invalidation discipline
// applies. This is the software analogue of the paper's observation
// that validation is a pure function of descriptor state: the unit
// evaluates against a fixed configuration, and configuration changes
// arrive as whole new configurations.
package mmu

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/seg"
	"repro/internal/trace"
	"repro/internal/word"
)

// Costs is the cycle cost model for the reference path. The fields
// mirror the corresponding entries of the CPU cost model; validation is
// free by default because the comparisons happen on SDW fields the
// translation logic has already fetched.
type Costs struct {
	// Validate is charged per access validation.
	Validate uint64
	// SDWMiss is charged per descriptor-segment read: on every SDW
	// fetch when the associative memory is off, and on misses only when
	// it is on.
	SDWMiss uint64
}

// Options configures an MMU.
type Options struct {
	// Validate enables ring/flag access validation. Switching it off is
	// the T5 ablation: presence and bounds are still checked (the
	// simulator could not function otherwise), but all bracket, flag and
	// gate checks are skipped.
	Validate bool
	// CacheSize is the number of SDW associative registers; it must be
	// a power of two. Zero disables the associative memory entirely.
	CacheSize int
	// Costs is the cycle cost model for the reference path.
	Costs Costs
	// Sink receives trace events; nil means tracing disabled.
	Sink Sink
}

// Check reports whether the options are well-formed. The only
// constraint is the associative memory geometry: CacheSize must be zero
// (disabled) or a power of two, because the direct-mapped index is a
// mask. The error names the offending value so callers wiring sizes
// from configuration can report it.
func (o Options) Check() error {
	if o.CacheSize < 0 {
		return fmt.Errorf("mmu: SDW cache size %d is negative; want 0 (disabled) or a power of two", o.CacheSize)
	}
	if o.CacheSize&(o.CacheSize-1) != 0 {
		return fmt.Errorf("mmu: SDW cache size %d is not a power of two (0 disables the associative memory)", o.CacheSize)
	}
	return nil
}

// CacheStats reports associative memory performance and coherence
// traffic.
type CacheStats struct {
	Hits   uint64
	Misses uint64
	// Invalidations counts single-entry invalidations (StoreSDW on this
	// MMU plus applied remote shootdowns).
	Invalidations uint64
	// Flushes counts whole-cache flushes (DBR loads).
	Flushes uint64
	// Shootdowns counts remote invalidation requests applied.
	Shootdowns uint64
}

// HitRate returns the fraction of SDW fetches served by the associative
// memory (0 when nothing was fetched).
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

type cacheEntry struct {
	valid bool
	segno uint32
	sdw   seg.SDW
}

// SDWSource is a read-only descriptor provider: an immutable (or
// immutable-per-published-state) view of the descriptor segment that
// the fetch path consults instead of core. Implementations must be
// safe for use by the owning goroutine without locks and must mirror
// the architectural absence rule of seg.Table.Fetch — segment numbers
// at or beyond the descriptor bound return a zero (Present == false)
// SDW and a nil error; errors are reserved for simulator integrity
// faults.
type SDWSource interface {
	LookupSDW(segno uint32) (seg.SDW, error)
}

// SetSDWSource redirects descriptor retrieval to src, a read-only
// descriptor view; nil restores descriptor-segment fetches through
// core. While a source is installed the associative memory and the
// shootdown queue are bypassed entirely: an immutable source cannot go
// stale, so there is nothing to cache coherently or invalidate. The
// MMU must be quiescent (owned, between references) when the source
// changes.
func (u *MMU) SetSDWSource(src SDWSource) {
	u.source = src
}

// MMU is one processor's memory management unit. It is owned by a
// single goroutine (its processor); the only cross-goroutine traffic is
// the shootdown queue, which remote members post under its own lock.
type MMU struct {
	// Mem is the physical storage beneath the unit: flat core, the
	// race-safe shared store (mem.Atomic), or a demand-paged space
	// (internal/paging) — anything satisfying mem.Store slots beneath
	// the translation layer unchanged.
	Mem mem.Store

	dbr    seg.DBR
	opt    Options
	sink   Sink
	cycles *uint64

	cache  []cacheEntry
	mask   uint32
	stats  CacheStats
	source SDWSource

	// Shootdown plumbing (see group.go). shootGen is bumped by remote
	// members after posting to pending; the owner compares it against
	// seenGen on each cached fetch — an atomic load, no lock — and
	// drains pending only on mismatch.
	group    *Group
	shootGen atomic.Uint64
	seenGen  uint64
	pending  pendingShootdowns

	ownCycles uint64 // charge target when no external counter is attached
}

// New returns an MMU over storage m. It panics if Options.Check
// rejects opt (a construction-time programming error, like a
// non-positive memory size); callers wiring options from run-time
// configuration should call Options.Check themselves and report the
// error.
func New(m mem.Store, opt Options) *MMU {
	if err := opt.Check(); err != nil {
		panic(err.Error())
	}
	u := &MMU{Mem: m, opt: opt, sink: opt.Sink}
	if u.sink == nil {
		u.sink = Disabled
	}
	if opt.CacheSize > 0 {
		u.cache = make([]cacheEntry, opt.CacheSize)
		u.mask = uint32(opt.CacheSize - 1)
	}
	u.cycles = &u.ownCycles
	return u
}

// AttachCycles redirects cycle charges into the given counter (the
// processor's running total). The MMU must be quiescent.
func (u *MMU) AttachCycles(c *uint64) {
	if c == nil {
		c = &u.ownCycles
	}
	u.cycles = c
}

// Cycles returns the privately accumulated cycle count (zero when the
// unit charges an attached external counter).
func (u *MMU) Cycles() uint64 { return u.ownCycles }

// SetSink installs the trace sink; nil disables tracing.
func (u *MMU) SetSink(s Sink) {
	if s == nil {
		s = Disabled
	}
	u.sink = s
}

// Sink returns the installed trace sink (never nil).
func (u *MMU) Sink() Sink { return u.sink }

// Validating reports whether ring/flag validation is enabled (false
// under the T5 ablation).
func (u *MMU) Validating() bool { return u.opt.Validate }

// CacheSize returns the number of associative registers (0 = disabled).
func (u *MMU) CacheSize() int { return len(u.cache) }

// DBR returns the current descriptor base register.
func (u *MMU) DBR() seg.DBR { return u.dbr }

// SetDBR loads the descriptor base register and flushes the associative
// memory: a different descriptor segment invalidates every cached SDW.
func (u *MMU) SetDBR(d seg.DBR) {
	u.dbr = d
	u.Flush()
}

// Table returns the descriptor segment accessor for the current DBR.
func (u *MMU) Table() seg.Table { return seg.Table{Mem: u.Mem, DBR: u.dbr} }

// Flush invalidates every associative register.
func (u *MMU) Flush() {
	if len(u.cache) == 0 {
		return
	}
	for i := range u.cache {
		u.cache[i].valid = false
	}
	u.stats.Flushes++
}

// CacheStats returns the hit/miss/invalidation counters (zero when the
// associative memory is disabled).
func (u *MMU) CacheStats() CacheStats { return u.stats }

// FetchSDW retrieves the SDW for segno: from the installed SDWSource
// when one is set (see SetSDWSource), otherwise through the
// associative memory and the descriptor segment in core. The error
// return is a physical memory fault (simulator integrity problem),
// never an access issue — absent segments come back with Present false
// and the caller raises the architectural trap.
//
//ring:hotpath
func (u *MMU) FetchSDW(segno uint32) (seg.SDW, error) {
	if u.source != nil {
		// A snapshot lookup is as cheap as an associative hit: no
		// descriptor-segment read, so no SDWMiss charge.
		return u.source.LookupSDW(segno)
	}
	if len(u.cache) == 0 {
		*u.cycles += u.opt.Costs.SDWMiss // every reference reads the descriptor segment
		return u.Table().Fetch(segno)
	}
	if g := u.shootGen.Load(); g != u.seenGen {
		u.applyShootdowns(g)
	}
	e := &u.cache[segno&u.mask]
	if e.valid && e.segno == segno {
		u.stats.Hits++
		return e.sdw, nil
	}
	u.stats.Misses++
	*u.cycles += u.opt.Costs.SDWMiss
	sdw, err := u.Table().Fetch(segno)
	if err != nil {
		return seg.SDW{}, err
	}
	*e = cacheEntry{valid: true, segno: segno, sdw: sdw}
	return sdw, nil
}

// StoreSDW writes an SDW through the current descriptor segment and
// keeps every associative memory coherent: the local cached copy is
// invalidated directly, and when the MMU belongs to a Group the edit is
// shot down to every other member. All run-time descriptor edits by
// supervisor software go through here.
func (u *MMU) StoreSDW(segno uint32, sdw seg.SDW) error {
	if err := u.Table().Store(segno, sdw); err != nil {
		return err
	}
	u.invalidate(segno)
	if u.group != nil {
		u.group.shootdown(u, segno)
	}
	return nil
}

// invalidate drops the cached copy of segno, if any.
func (u *MMU) invalidate(segno uint32) {
	if len(u.cache) == 0 {
		return
	}
	e := &u.cache[segno&u.mask]
	if e.valid && e.segno == segno {
		e.valid = false
		u.stats.Invalidations++
	}
}

// ---- Access validation (Figures 4, 5, 6 and 7) ----
//
// Each check charges the validation cost and honours the ablation
// switch: with validation off, presence and bounds are still enforced
// (via core.CheckBound) but brackets, flags and gates are not.

// CheckRead validates a read at (segno|wordno) with respect to the
// effective ring.
func (u *MMU) CheckRead(v core.SDWView, segno, wordno uint32, ring core.Ring) *core.Violation {
	*u.cycles += u.opt.Costs.Validate
	if !u.opt.Validate {
		return core.CheckBound(v, wordno, ring)
	}
	viol := core.CheckRead(v, wordno, ring)
	if u.sink.Enabled() {
		u.traceValidate(traceRead, ring, segno, wordno, viol)
	}
	return viol
}

// CheckWrite validates a write at (segno|wordno) with respect to the
// effective ring.
func (u *MMU) CheckWrite(v core.SDWView, segno, wordno uint32, ring core.Ring) *core.Violation {
	*u.cycles += u.opt.Costs.Validate
	if !u.opt.Validate {
		return core.CheckBound(v, wordno, ring)
	}
	viol := core.CheckWrite(v, wordno, ring)
	if u.sink.Enabled() {
		u.traceValidate(traceWrite, ring, segno, wordno, viol)
	}
	return viol
}

// CheckFetch validates the instruction fetch (Figure 4) against the
// ring of execution.
func (u *MMU) CheckFetch(v core.SDWView, wordno uint32, ring core.Ring) *core.Violation {
	*u.cycles += u.opt.Costs.Validate
	if !u.opt.Validate {
		return core.CheckBound(v, wordno, ring)
	}
	return core.CheckFetch(v, wordno, ring)
}

// CheckTransfer performs the advance check of Figure 7 for a transfer
// to (segno|wordno): execRing is the ring of execution, effRing the
// effective ring of the target address.
func (u *MMU) CheckTransfer(v core.SDWView, segno, wordno uint32, execRing, effRing core.Ring) *core.Violation {
	*u.cycles += u.opt.Costs.Validate
	if !u.opt.Validate {
		return core.CheckBound(v, wordno, execRing)
	}
	viol := core.CheckTransfer(v, wordno, execRing, effRing)
	if u.sink.Enabled() {
		u.traceValidate(traceTransfer, effRing, segno, wordno, viol)
	}
	return viol
}

// DecideCall evaluates the CALL decision of Figure 8, honouring the
// ablation switch: with validation off, a violation degrades to a
// bounds-checked same-ring transfer, exactly as if the ring hardware
// were absent.
func (u *MMU) DecideCall(v core.SDWView, wordno uint32, execRing, effRing core.Ring, sameSegment bool) (core.CallDecision, *core.Violation) {
	decision, viol := core.DecideCall(v, wordno, execRing, effRing, sameSegment)
	if viol == nil || u.opt.Validate {
		return decision, viol
	}
	if bviol := core.CheckBound(v, wordno, execRing); bviol != nil {
		return core.CallDecision{}, bviol
	}
	return core.CallDecision{Outcome: core.CallSameRing, NewRing: execRing}, nil
}

// DecideReturn evaluates the RETURN decision of Figure 9 under the same
// ablation rule as DecideCall.
func (u *MMU) DecideReturn(v core.SDWView, wordno uint32, execRing, effRing core.Ring) (core.ReturnDecision, *core.Violation) {
	decision, viol := core.DecideReturn(v, wordno, execRing, effRing)
	if viol == nil || u.opt.Validate {
		return decision, viol
	}
	if bviol := core.CheckBound(v, wordno, execRing); bviol != nil {
		return core.ReturnDecision{}, bviol
	}
	return core.ReturnDecision{Outcome: core.ReturnSameRing, NewRing: effRing}, nil
}

// Trace detail strings are precomputed so that recording a validation
// event never concatenates (and therefore never allocates): the sink
// contract is "cheap when enabled", and the decision service leaves an
// AtomicCounters sink enabled on its hot path.
const (
	traceRead = iota
	traceWrite
	traceTransfer
)

var traceOK [3]string
var traceViol [3][core.ViolationKindCount]string

func init() {
	for i, what := range [3]string{"read", "write", "transfer"} {
		traceOK[i] = what + " ok"
		for k := range traceViol[i] {
			traceViol[i][k] = what + " violation: " + core.ViolationKind(k).String()
		}
	}
}

// traceValidateKind records one validation outcome using the
// precomputed detail tables; what is one of traceRead/Write/Transfer.
//
//ring:hotpath
func (u *MMU) traceValidateKind(what int, ring core.Ring, segno, wordno uint32, kind core.ViolationKind) {
	detail := traceOK[what]
	if kind != core.ViolationNone && int(kind) < len(traceViol[what]) {
		detail = traceViol[what][kind]
	}
	u.sink.Record(trace.Event{Kind: trace.KindValidate, Ring: ring, Segno: segno, Wordno: wordno, Detail: detail})
}

func (u *MMU) traceValidate(what int, ring core.Ring, segno, wordno uint32, viol *core.Violation) {
	kind := core.ViolationNone
	if viol != nil {
		kind = viol.Kind
	}
	u.traceValidateKind(what, ring, segno, wordno, kind)
}

// ---- Allocation-free query variants ----
//
// Access, Call and Return are the decision-service fast path: one SDW
// fetch through the associative memory plus the bracket check, with the
// outcome returned as a bare core.ViolationKind instead of an allocated
// *core.Violation. They honour the same cost model, tracing and T5
// ablation rules as the Check*/Decide* forms; the error return is a
// physical memory fault only, never an access outcome.

// AccessView validates one reference of the given kind against an
// already-fetched view, allocation-free. Callers that do not hold the
// view use Access, which performs the SDW fetch too.
//
//ring:hotpath
func (u *MMU) AccessView(v core.SDWView, segno, wordno uint32, ring core.Ring, kind core.AccessKind) core.ViolationKind {
	*u.cycles += u.opt.Costs.Validate
	if !u.opt.Validate {
		return core.BoundCheck(v, wordno)
	}
	var k core.ViolationKind
	switch kind {
	case core.AccessRead:
		k = core.ReadCheck(v, wordno, ring)
		if u.sink.Enabled() {
			u.traceValidateKind(traceRead, ring, segno, wordno, k)
		}
	case core.AccessWrite:
		k = core.WriteCheck(v, wordno, ring)
		if u.sink.Enabled() {
			u.traceValidateKind(traceWrite, ring, segno, wordno, k)
		}
	default: // core.AccessExecute; the fetch check is untraced, as in CheckFetch
		k = core.FetchCheck(v, wordno, ring)
	}
	return k
}

// Access validates one reference end to end — SDW retrieval through the
// associative memory, then the kind's bracket check — without
// allocating. ring is the effective ring for read/write and the ring of
// execution for execute.
//
//ring:hotpath
func (u *MMU) Access(segno, wordno uint32, ring core.Ring, kind core.AccessKind) (core.ViolationKind, error) {
	sdw, err := u.FetchSDW(segno)
	if err != nil {
		return core.ViolationNone, err
	}
	return u.AccessView(sdw.View(), segno, wordno, ring, kind), nil
}

// Call evaluates the CALL decision of Figure 8 end to end, allocation-
// free: SDW retrieval, then core.CallCheck under the same ablation rule
// as DecideCall.
//
//ring:hotpath
func (u *MMU) Call(segno, wordno uint32, execRing, effRing core.Ring, sameSegment bool) (core.CallDecision, core.ViolationKind, error) {
	sdw, err := u.FetchSDW(segno)
	if err != nil {
		return core.CallDecision{}, core.ViolationNone, err
	}
	v := sdw.View()
	decision, k := core.CallCheck(v, wordno, execRing, effRing, sameSegment)
	if k == core.ViolationNone || u.opt.Validate {
		return decision, k, nil
	}
	if bk := core.BoundCheck(v, wordno); bk != core.ViolationNone {
		return core.CallDecision{}, bk, nil
	}
	return core.CallDecision{Outcome: core.CallSameRing, NewRing: execRing}, core.ViolationNone, nil
}

// Return evaluates the RETURN decision of Figure 9 end to end,
// allocation-free, under the same ablation rule as DecideReturn.
//
//ring:hotpath
func (u *MMU) Return(segno, wordno uint32, execRing, effRing core.Ring) (core.ReturnDecision, core.ViolationKind, error) {
	sdw, err := u.FetchSDW(segno)
	if err != nil {
		return core.ReturnDecision{}, core.ViolationNone, err
	}
	v := sdw.View()
	decision, k := core.ReturnCheck(v, wordno, execRing, effRing)
	if k == core.ViolationNone || u.opt.Validate {
		return decision, k, nil
	}
	if bk := core.BoundCheck(v, wordno); bk != core.ViolationNone {
		return core.ReturnDecision{}, bk, nil
	}
	return core.ReturnDecision{Outcome: core.ReturnSameRing, NewRing: effRing}, core.ViolationNone, nil
}

// ---- Translation and core access ----

// Read fetches the word at wordno of the segment described by s. The
// access must already be validated: bounds were checked
// architecturally, so errors here are simulator integrity faults.
func (u *MMU) Read(s seg.SDW, wordno uint32) (word.Word, error) {
	return u.Mem.Read(seg.Translate(s, wordno))
}

// Write stores w at wordno of the segment described by s. The access
// must already be validated.
func (u *MMU) Write(s seg.SDW, wordno uint32, w word.Word) error {
	return u.Mem.Write(seg.Translate(s, wordno), w)
}
