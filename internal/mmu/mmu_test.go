package mmu_test

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/seg"
	"repro/internal/trace"
)

var (
	sdwA = seg.SDW{
		Present: true, Addr: 0o1000, Bound: 16, Read: true,
		Brackets: core.Brackets{R1: 1, R2: 1, R3: 5},
	}
	sdwB = seg.SDW{
		Present: true, Addr: 0o1000, Bound: 32, Read: true, Write: true,
		Brackets: core.Brackets{R1: 1, R2: 1, R3: 5},
	}
)

// newUnits builds n MMUs over one shared word-atomic core, all running
// the same descriptor segment and joined to one coherence group.
func newUnits(t *testing.T, n int) []*mmu.MMU {
	t.Helper()
	m := mem.NewAtomic(1 << 14)
	g := mmu.NewGroup()
	units := make([]*mmu.MMU, n)
	for i := range units {
		u := mmu.New(m, mmu.Options{Validate: true, CacheSize: 8})
		u.SetDBR(seg.DBR{Addr: 0, Bound: 32})
		g.Join(u)
		units[i] = u
	}
	if g.Members() != n {
		t.Fatalf("group members = %d, want %d", g.Members(), n)
	}
	return units
}

func fetch(t *testing.T, u *mmu.MMU, segno uint32) seg.SDW {
	t.Helper()
	sdw, err := u.FetchSDW(segno)
	if err != nil {
		t.Fatal(err)
	}
	return sdw
}

// TestInvalidationDiscipline is the table test for the three rules the
// associative memory lives by: StoreSDW edits are immediately effective
// (locally and, via shootdown, on every other processor), a DBR reload
// flushes stale entries, and — the negative control — a raw descriptor
// store that bypasses StoreSDW is NOT seen until a flush.
func TestInvalidationDiscipline(t *testing.T) {
	cases := []struct {
		name  string
		procs int
	}{
		{"single-processor", 1},
		{"multi-processor", 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			units := newUnits(t, tc.procs)
			editor := units[0]
			const segno = 5

			if err := editor.StoreSDW(segno, sdwA); err != nil {
				t.Fatal(err)
			}
			// Every processor caches the original descriptor.
			for i, u := range units {
				if got := fetch(t, u, segno); got != sdwA {
					t.Fatalf("unit %d initial fetch = %+v, want %+v", i, got, sdwA)
				}
			}

			// Rule: a StoreSDW edit is immediately effective everywhere.
			if err := editor.StoreSDW(segno, sdwB); err != nil {
				t.Fatal(err)
			}
			for i, u := range units {
				if got := fetch(t, u, segno); got != sdwB {
					t.Errorf("unit %d sees %+v after StoreSDW, want %+v", i, got, sdwB)
				}
			}
			if inv := editor.CacheStats().Invalidations; inv == 0 {
				t.Error("editor recorded no invalidations")
			}
			for i, u := range units[1:] {
				if sd := u.CacheStats().Shootdowns; sd == 0 {
					t.Errorf("unit %d applied no shootdowns", i+1)
				}
			}

			// Negative control: a raw Table().Store bypasses the
			// discipline, so cached copies go stale...
			if err := editor.Table().Store(segno, sdwA); err != nil {
				t.Fatal(err)
			}
			for i, u := range units {
				if got := fetch(t, u, segno); got != sdwB {
					t.Errorf("unit %d = %+v; raw store should have left the stale %+v cached", i, got, sdwB)
				}
			}
			// ...until a DBR reload flushes the associative memory.
			for i, u := range units {
				u.SetDBR(u.DBR())
				if got := fetch(t, u, segno); got != sdwA {
					t.Errorf("unit %d sees %+v after DBR reload, want fresh %+v", i, got, sdwA)
				}
				if fl := u.CacheStats().Flushes; fl == 0 {
					t.Errorf("unit %d recorded no flushes", i)
				}
			}
		})
	}
}

// TestShootdownConcurrent races descriptor edits on one processor
// against fetches on the others (run under -race). After the editing
// stops, every processor must observe the final descriptor.
func TestShootdownConcurrent(t *testing.T) {
	units := newUnits(t, 4)
	editor, readers := units[0], units[1:]
	const segno = 3
	if err := editor.StoreSDW(segno, sdwA); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			s := sdwA
			s.Bound = uint32(16 + i%16)
			if err := editor.StoreSDW(segno, s); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for _, u := range readers {
		wg.Add(1)
		go func(u *mmu.MMU) {
			defer wg.Done()
			for {
				sdw, err := u.FetchSDW(segno)
				if err != nil {
					t.Error(err)
					return
				}
				if !sdw.Present || sdw.Addr != sdwA.Addr {
					t.Errorf("fetched corrupt SDW %+v", sdw)
					return
				}
				select {
				case <-done:
					return
				default:
				}
			}
		}(u)
	}
	wg.Wait()

	if err := editor.StoreSDW(segno, sdwB); err != nil {
		t.Fatal(err)
	}
	for i, u := range units {
		if got := fetch(t, u, segno); got != sdwB {
			t.Errorf("unit %d final fetch = %+v, want %+v", i, got, sdwB)
		}
	}
}

func TestCacheSizeValidation(t *testing.T) {
	m := mem.New(1024)
	for _, size := range []int{-1, 3, 12, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CacheSize %d accepted", size)
				}
			}()
			mmu.New(m, mmu.Options{CacheSize: size})
		}()
	}
	for _, size := range []int{0, 1, 8, 64} {
		u := mmu.New(m, mmu.Options{CacheSize: size})
		if u.CacheSize() != size {
			t.Errorf("CacheSize() = %d, want %d", u.CacheSize(), size)
		}
	}
}

// TestCycleAccounting checks the SDWMiss charging rule: every fetch
// with the cache off, misses only with it on.
func TestCycleAccounting(t *testing.T) {
	m := mem.New(1 << 12)
	costs := mmu.Costs{SDWMiss: 2}

	off := mmu.New(m, mmu.Options{Costs: costs})
	off.SetDBR(seg.DBR{Addr: 0, Bound: 8})
	if err := off.StoreSDW(1, sdwA); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fetch(t, off, 1)
	}
	if got := off.Cycles(); got != 10 {
		t.Errorf("cache-off cycles = %d, want 10", got)
	}

	on := mmu.New(m, mmu.Options{CacheSize: 8, Costs: costs})
	on.SetDBR(seg.DBR{Addr: 0, Bound: 8})
	for i := 0; i < 5; i++ {
		fetch(t, on, 1)
	}
	if got := on.Cycles(); got != 2 {
		t.Errorf("cache-on cycles = %d, want 2 (one miss)", got)
	}
	st := on.CacheStats()
	if st.Hits != 4 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 4 hits 1 miss", st)
	}
	if r := st.HitRate(); r != 0.8 {
		t.Errorf("hit rate = %v, want 0.8", r)
	}
}

// TestSinkReceivesValidationEvents checks that a counting sink sees the
// validation stream and that the disabled sink reports disabled.
func TestSinkReceivesValidationEvents(t *testing.T) {
	m := mem.New(1 << 12)
	u := mmu.New(m, mmu.Options{Validate: true})
	u.SetDBR(seg.DBR{Addr: 0, Bound: 8})
	if err := u.StoreSDW(1, sdwA); err != nil {
		t.Fatal(err)
	}

	if mmu.Disabled.Enabled() {
		t.Error("Disabled sink claims enabled")
	}
	var counts trace.Counters
	u.SetSink(&counts)

	sdw, err := u.FetchSDW(1)
	if err != nil {
		t.Fatal(err)
	}
	if viol := u.CheckRead(sdw.View(), 1, 0, 1); viol != nil {
		t.Fatalf("read violation: %v", viol)
	}
	if viol := u.CheckWrite(sdw.View(), 1, 0, 4); viol == nil {
		t.Fatal("write on read-only segment validated")
	}
	if got := counts.Of(trace.KindValidate); got != 2 {
		t.Errorf("validate events = %d, want 2", got)
	}

	u.SetSink(nil) // nil means disabled, not a crash
	if viol := u.CheckRead(sdw.View(), 1, 0, 1); viol != nil {
		t.Fatalf("read violation with sink off: %v", viol)
	}
	if got := counts.Of(trace.KindValidate); got != 2 {
		t.Errorf("disabled sink still recorded: %d events", got)
	}
}
