package mmu_test

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/mmu"
)

// TestOptionsCheck is the table test for the associative-memory
// geometry rule: sizes must be 0 or a power of two, and a rejected size
// must be named in the error so configuration mistakes are diagnosable.
func TestOptionsCheck(t *testing.T) {
	cases := []struct {
		size int
		ok   bool
	}{
		{size: 0, ok: true},
		{size: 1, ok: true},
		{size: 2, ok: true},
		{size: 64, ok: true},
		{size: 1 << 16, ok: true},
		{size: -1, ok: false},
		{size: -64, ok: false},
		{size: 3, ok: false},
		{size: 12, ok: false},
		{size: 33, ok: false},
		{size: 1<<16 + 1, ok: false},
	}
	for _, tc := range cases {
		err := mmu.Options{CacheSize: tc.size}.Check()
		if tc.ok {
			if err != nil {
				t.Errorf("Check(CacheSize=%d) = %v, want nil", tc.size, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Check(CacheSize=%d) accepted", tc.size)
			continue
		}
		if !strings.Contains(err.Error(), strconv.Itoa(tc.size)) {
			t.Errorf("Check(CacheSize=%d) error %q does not name the offending size", tc.size, err)
		}
	}
}

// TestNewPanicMessageNamesSize pins the construction-time panic to the
// same diagnostic: it must carry the offending value.
func TestNewPanicMessageNamesSize(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New(CacheSize: 12) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "12") {
			t.Errorf("panic %v does not name the offending size", r)
		}
	}()
	mmu.New(nil, mmu.Options{CacheSize: 12})
}
