package mmu

import "repro/internal/trace"

// Sink receives trace events from the reference path. It replaces the
// bare recorder-or-nil convention: tracing, per-kind event counting and
// disabled tracing are interchangeable implementations, and the hot
// path asks Enabled() — one devirtualized call, no nil branch, no
// allocation — before building an event's detail string.
//
// Implementations must be cheap when disabled: Enabled is consulted on
// every traced operation, and a Sink that returns false is never handed
// an event, so the Disabled sink makes the whole reference path
// allocation-free.
type Sink interface {
	// Enabled reports whether events should be constructed at all.
	// Callers skip event (and detail string) construction entirely when
	// it returns false.
	Enabled() bool
	// Record consumes one event. Called only when Enabled returned
	// true.
	Record(trace.Event)
}

// disabledSink is the nil object: tracing off, zero cost.
type disabledSink struct{}

func (disabledSink) Enabled() bool      { return false }
func (disabledSink) Record(trace.Event) {}

// Disabled is the no-op Sink. A zero-size value in an interface does
// not allocate, so installing it (the default) keeps the step path at
// zero allocations.
var Disabled Sink = disabledSink{}
