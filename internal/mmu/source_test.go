package mmu_test

import (
	"testing"

	"repro/internal/seg"
)

// fixedSource is a trivial SDWSource: a fixed descriptor table with the
// architectural absence rule (unknown segnos are zero SDWs, nil error).
type fixedSource map[uint32]seg.SDW

func (f fixedSource) LookupSDW(segno uint32) (seg.SDW, error) {
	return f[segno], nil
}

// TestSDWSourceBypassesCore checks the SetSDWSource contract: with a
// source installed every descriptor fetch resolves from the source —
// not the descriptor segment in core, not the associative memory, no
// miss-cycle charges — and a nil source restores core reads exactly
// where they left off.
func TestSDWSourceBypassesCore(t *testing.T) {
	u := newUnits(t, 1)[0]
	const segno = 5
	if err := u.StoreSDW(segno, sdwA); err != nil {
		t.Fatal(err)
	}
	if got := fetch(t, u, segno); got != sdwA {
		t.Fatalf("core fetch = %+v, want %+v", got, sdwA)
	}

	u.SetSDWSource(fixedSource{segno: sdwB})
	if got := fetch(t, u, segno); got != sdwB {
		t.Errorf("source fetch = %+v, want source's %+v", got, sdwB)
	}
	if got := fetch(t, u, 7); got != (seg.SDW{}) {
		t.Errorf("absent segno through source = %+v, want zero SDW", got)
	}
	// Source fetches bypass the associative memory and charge no
	// descriptor-read cycles.
	stats, cycles := u.CacheStats(), u.Cycles()
	for i := 0; i < 4; i++ {
		fetch(t, u, segno)
	}
	if got := u.CacheStats(); got != stats {
		t.Errorf("source fetches touched the associative memory: %+v -> %+v", stats, got)
	}
	if got := u.Cycles(); got != cycles {
		t.Errorf("source fetches charged %d cycles", got-cycles)
	}

	// nil restores descriptor reads through core: the edit made beneath
	// the source is visible again.
	u.SetSDWSource(nil)
	if got := fetch(t, u, segno); got != sdwA {
		t.Errorf("core fetch after source removal = %+v, want %+v", got, sdwA)
	}
}
