// Package paging implements a demand-paged physical storage layer
// beneath the segmented machine.
//
// The paper: "Storage for segments is usually allocated with a paging
// scheme in scattered fixed-length blocks. If used, paging is also
// taken into account by the address translation logic, but is totally
// transparent to an executing machine language program. Paging, if
// appropriately implemented, need not affect access control; it will be
// ignored in the remainder of this paper."
//
// This package is the proof of that sentence for this reproduction: a
// Space presents the flat word-addressed storage the machine expects,
// but backs it with fixed-length frames allocated on demand from a
// frame pool in deliberately scattered order. Because every access
// control decision in the simulator happens at the segment level,
// before translation to physical addresses, an entire machine image can
// be built on a Space instead of flat core and every test, example and
// experiment behaves identically — only the frame map and fault counter
// reveal the difference.
package paging

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/word"
)

// Space is a demand-paged word-addressed storage of fixed virtual size.
type Space struct {
	backing  *mem.Memory
	pageSize int
	pages    []int // virtual page -> frame base in backing; -1 = not yet allocated
	freeList []int // scattered pool of frame bases

	// Faults counts demand allocations (first touch of a page).
	Faults int
	// Reads and Writes count word accesses through the space.
	Reads, Writes uint64
}

var _ mem.Store = (*Space)(nil)

// New creates a space of virtualWords words backed by frames of
// pageSize words carved from a fresh backing memory. The frame pool is
// deliberately shuffled (deterministically) so that consecutive virtual
// pages land in scattered physical frames — the paper's "scattered
// fixed-length blocks".
func New(virtualWords, pageSize int) (*Space, error) {
	if pageSize <= 0 || virtualWords <= 0 {
		return nil, fmt.Errorf("paging: bad geometry %d/%d", virtualWords, pageSize)
	}
	if virtualWords%pageSize != 0 {
		return nil, fmt.Errorf("paging: virtual size %d not a multiple of page size %d", virtualWords, pageSize)
	}
	npages := virtualWords / pageSize
	backing := mem.New(virtualWords)
	s := &Space{
		backing:  backing,
		pageSize: pageSize,
		pages:    make([]int, npages),
	}
	for i := range s.pages {
		s.pages[i] = -1
	}
	// Scatter the frame pool with a multiplicative permutation: frame i
	// of the pool is physical frame (i*stride+phase) mod npages, with a
	// stride coprime to npages.
	stride := 7
	for gcd(stride, npages) != 1 {
		stride += 2
	}
	phase := npages / 3
	s.freeList = make([]int, npages)
	for i := 0; i < npages; i++ {
		frame := ((i*stride + phase) % npages) * pageSize
		s.freeList[i] = frame
	}
	return s, nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Size returns the virtual size in words.
func (s *Space) Size() int { return len(s.pages) * s.pageSize }

// PageSize returns the frame length in words.
func (s *Space) PageSize() int { return s.pageSize }

// translate maps a virtual address to its backing address, allocating
// the page's frame on first touch.
func (s *Space) translate(addr int, op string) (int, error) {
	if addr < 0 || addr >= s.Size() {
		return 0, &mem.Fault{Addr: addr, Size: s.Size(), Op: op}
	}
	page := addr / s.pageSize
	if s.pages[page] < 0 {
		if len(s.freeList) == 0 {
			return 0, fmt.Errorf("paging: out of frames at address %o", addr)
		}
		s.pages[page] = s.freeList[0]
		s.freeList = s.freeList[1:]
		s.Faults++
	}
	return s.pages[page] + addr%s.pageSize, nil
}

// Read implements mem.Store.
func (s *Space) Read(addr int) (word.Word, error) {
	p, err := s.translate(addr, "read")
	if err != nil {
		return 0, err
	}
	s.Reads++
	return s.backing.Read(p)
}

// Write implements mem.Store.
func (s *Space) Write(addr int, w word.Word) error {
	p, err := s.translate(addr, "write")
	if err != nil {
		return err
	}
	s.Writes++
	return s.backing.Write(p, w)
}

// FrameOf reports the physical frame base currently holding the page of
// virtual address addr, or -1 if the page has never been touched.
func (s *Space) FrameOf(addr int) int {
	if addr < 0 || addr >= s.Size() {
		return -1
	}
	return s.pages[addr/s.pageSize]
}

// ResidentPages reports how many pages have frames.
func (s *Space) ResidentPages() int {
	n := 0
	for _, f := range s.pages {
		if f >= 0 {
			n++
		}
	}
	return n
}

// Scattered reports whether the currently resident pages occupy
// non-contiguous frames (true demonstrates the "scattered fixed-length
// blocks" arrangement).
func (s *Space) Scattered() bool {
	prev := -1
	for _, f := range s.pages {
		if f < 0 {
			continue
		}
		if prev >= 0 && f != prev+s.pageSize {
			return true
		}
		prev = f
	}
	return false
}
