package paging_test

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/image"
	"repro/internal/mem"
	"repro/internal/paging"
	"repro/internal/sup"
	"repro/internal/word"
)

func TestBasicReadWrite(t *testing.T) {
	s, err := paging.New(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(100, word.FromInt(42)); err != nil {
		t.Fatal(err)
	}
	w, err := s.Read(100)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int64() != 42 {
		t.Errorf("read back %d", w.Int64())
	}
	if s.Faults != 1 {
		t.Errorf("faults = %d", s.Faults)
	}
	// Untouched page reads as zero and faults in a frame.
	w, err = s.Read(900)
	if err != nil {
		t.Fatal(err)
	}
	if !w.IsZero() || s.Faults != 2 {
		t.Errorf("w=%v faults=%d", w, s.Faults)
	}
}

func TestBounds(t *testing.T) {
	s, err := paging.New(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(256); err == nil {
		t.Error("read past end accepted")
	}
	if err := s.Write(-1, 0); err == nil {
		t.Error("negative write accepted")
	}
	if s.FrameOf(-5) != -1 || s.FrameOf(99999) != -1 {
		t.Error("FrameOf out of range")
	}
}

func TestGeometryErrors(t *testing.T) {
	if _, err := paging.New(100, 64); err == nil {
		t.Error("non-multiple size accepted")
	}
	if _, err := paging.New(0, 64); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := paging.New(64, 0); err == nil {
		t.Error("zero page accepted")
	}
}

func TestFramesAreScattered(t *testing.T) {
	s, err := paging.New(64*16, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Touch several consecutive pages.
	for p := 0; p < 6; p++ {
		if err := s.Write(p*64, word.FromInt(int64(p))); err != nil {
			t.Fatal(err)
		}
	}
	if !s.Scattered() {
		t.Error("consecutive pages landed in contiguous frames")
	}
	if s.ResidentPages() != 6 {
		t.Errorf("resident = %d", s.ResidentPages())
	}
	// Distinct pages must have distinct frames.
	seen := map[int]bool{}
	for p := 0; p < 6; p++ {
		f := s.FrameOf(p * 64)
		if f < 0 || seen[f] {
			t.Errorf("page %d frame %d duplicated or absent", p, f)
		}
		seen[f] = true
	}
}

// Property: the paged space is observationally equal to flat memory for
// arbitrary write/read sequences.
func TestQuickEquivalentToFlat(t *testing.T) {
	f := func(ops []uint16, vals []uint64) bool {
		const size = 512
		paged, err := paging.New(size, 32)
		if err != nil {
			return false
		}
		flat := mem.New(size)
		for i, op := range ops {
			addr := int(op) % size
			if i < len(vals) {
				w := word.FromUint64(vals[i])
				if paged.Write(addr, w) != nil || flat.Write(addr, w) != nil {
					return false
				}
			}
			pw, err1 := paged.Read(addr)
			fw, err2 := flat.Read(addr)
			if err1 != nil || err2 != nil || pw != fw {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPagingTransparentToAccessControl is the paper's claim: the entire
// cross-ring machine image built on demand-paged storage behaves
// identically to the same image on flat core — every protection
// decision happens above the page layer.
func TestPagingTransparentToAccessControl(t *testing.T) {
	src := sup.GateSource + `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    service$serve
        call    sysgates$exit

        .seg    service
        .bracket 1,1,5
        .gate   serve
serve:  eap5    *pr0|0
        spr6    pr5|0
        lia     1234
        eap6    *pr5|0
        return  *pr6|0
`
	run := func(backing mem.Store) (int64, uint64) {
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		cfg := image.Config{}
		if backing != nil {
			cfg.Backing = backing
		} else {
			cfg.MemWords = 1 << 18
		}
		img, err := asm.BuildImage(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		s := sup.Attach(img, "alice")
		if err := img.Start(4, "main", 0); err != nil {
			t.Fatal(err)
		}
		if _, err := img.CPU.Run(10000); err != nil {
			t.Fatalf("%v (audit %v)", err, s.Audit)
		}
		if !s.Exited {
			t.Fatal("no clean exit")
		}
		return s.ExitCode, img.CPU.Cycles
	}

	flatExit, flatCycles := run(nil)
	space, err := paging.New(1<<18, 256)
	if err != nil {
		t.Fatal(err)
	}
	pagedExit, pagedCycles := run(space)

	if flatExit != pagedExit {
		t.Errorf("exit codes differ: flat %d, paged %d", flatExit, pagedExit)
	}
	if flatCycles != pagedCycles {
		t.Errorf("simulated cycles differ: flat %d, paged %d (paging leaked into the architecture)",
			flatCycles, pagedCycles)
	}
	if space.Faults == 0 {
		t.Error("no page faults: the paged run did not actually page")
	}
	if !space.Scattered() {
		t.Error("paged image not scattered")
	}
}
