package proc

import (
	"fmt"
	"sync"

	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/trap"
)

// Multi-processor execution. The paper's configuration is several
// processors sharing one core memory, each with its own descriptor base
// register and its own SDW associative memory: "Changing the absolute
// address in the DBR of a processor will cause the address translation
// logic to interpret two-part addresses relative to a different
// descriptor segment." RunParallel models that directly: N simulated
// processors, each a goroutine with a private cpu.CPU (private MMU,
// private SDW cache, private DBR), executing distinct processes against
// the shared word-atomic core.
//
// Coherence follows the discipline documented on package mmu: every
// processor's MMU joins one mmu.Group, so a descriptor edit through
// StoreSDW on one processor shoots the segment number down to all
// others, and a DBR swap at dispatch flushes only the dispatching
// processor's associative memory. The shared core itself (mem.Atomic)
// gives the mutex-free word-granular read path.

// ProcessorStats reports one simulated processor's work after
// RunParallel.
type ProcessorStats struct {
	// Processor is the processor's index, 0-based.
	Processor int
	// Processes is the number of processes the processor ran to
	// completion.
	Processes int
	// Steps and Cycles total the instructions executed and simulated
	// cycles charged on this processor.
	Steps  uint64
	Cycles uint64
	// Cache is the processor's own SDW associative memory counters,
	// including shootdowns applied from other processors.
	Cache mmu.CacheStats
}

// RunParallel executes every spawned process to completion on nproc
// concurrent simulated processors (nproc <= 1 means one). Each process
// runs on exactly one processor — the paper's model multiplexes
// processes over processors, it never splits one process across two —
// with at most limit instructions (limit <= 0 means no limit). Process
// fates are recorded on the Process structs exactly as Schedule records
// them; the returned slice reports per-processor statistics.
//
// The system must have been created with Config.Processors >= nproc so
// core is the word-atomic store; RunParallel refuses to race several
// processors over a plain memory.
func (s *System) RunParallel(nproc, limit int) ([]ProcessorStats, error) {
	if nproc <= 0 {
		nproc = 1
	}
	if _, atomic := s.Mem.(*mem.Atomic); nproc > 1 && !atomic {
		return nil, fmt.Errorf("proc: %d processors over non-atomic core; set Config.Processors", nproc)
	}

	// Feed processes to whichever processor is free.
	work := make(chan *Process, len(s.procs))
	for _, p := range s.procs {
		if !p.Done {
			work <- p
		}
	}
	close(work)

	group := mmu.NewGroup()
	stats := make([]ProcessorStats, nproc)
	errs := make([]error, nproc)
	var wg sync.WaitGroup
	for i := 0; i < nproc; i++ {
		c := cpu.New(s.Mem, s.cfg.cpuOptions())
		group.Join(c.MMU)
		wg.Add(1)
		go func(i int, c *cpu.CPU) {
			defer wg.Done()
			st := &stats[i]
			st.Processor = i
			for p := range work {
				if err := s.runOn(c, p, limit); err != nil {
					errs[i] = err
					break
				}
				st.Processes++
			}
			st.Steps = c.Steps()
			st.Cycles = c.Cycles
			st.Cache = c.SDWCacheStats()
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// runOn runs one process to completion on processor c, recording its
// fate. The error return is a simulator integrity fault; architectural
// traps are recorded on the process. A process that exhausts the step
// limit is parked with Done still false — the caller's backstop fired.
func (s *System) runOn(c *cpu.CPU, p *Process, limit int) error {
	s.dispatch(c, p)
	before := c.Cycles
	reason, err := c.Run(limit)
	p.Slices++
	p.Cycles += c.Cycles - before
	if err != nil {
		if t, ok := err.(*trap.Trap); ok {
			p.Done = true
			p.Trap = t
			return nil
		}
		return err
	}
	switch reason {
	case cpu.StopHalt:
		p.Done = true
		p.Exited = p.Sup.Exited
		p.ExitCode = p.Sup.ExitCode
	case cpu.StopLimit:
		s.park(c, p) // unfinished; Done stays false
	}
	return nil
}
