package proc_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/proc"
	"repro/internal/sup"
)

// parallelSrc is a workload safe under true concurrency: the processes
// share the gated subsystem's code and its read-only constant, but all
// working storage lives in each process's private stack.
const parallelSrc = `
        .seg    svc
        .bracket 1,1,5
        .access re
        .gate   addten
addten: eap5    *pr0|0
        spr6    pr5|0
        ada     ten
        eap6    *pr5|0
        return  *pr6|0
ten:    .word   10

        .seg    user
        .bracket 4,4,4
        lia     4
        sta     pr6|2
        lia     0
        sta     pr6|3
loop:   lda     pr6|3
        stic    pr6|0,+1
        call    svc$addten
        sta     pr6|3
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        lda     pr6|3
        stic    pr6|0,+1
        call    sysgates$exit
`

func newParallelSystem(t *testing.T, nproc, nProcesses int) (*proc.System, []*proc.Process) {
	t.Helper()
	opt := cpu.DefaultOptions()
	opt.SDWCache = true
	s := proc.NewSystem(proc.Config{Processors: nproc, CPUOptions: &opt})
	prog, err := asm.Assemble(sup.GateSource + parallelSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}
	var ps []*proc.Process
	for i := 0; i < nProcesses; i++ {
		p, err := s.Spawn(fmt.Sprintf("P%d", i), fmt.Sprintf("user%d", i), "user", 4)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	return s, ps
}

// TestRunParallel runs a batch of processes on 1 and on 3 concurrent
// processors (the 3-processor case exercises the coherence discipline
// under -race) and checks that every process exits identically and the
// per-processor statistics account for the whole batch.
func TestRunParallel(t *testing.T) {
	const wantExit = 4 * 10
	for _, nproc := range []int{1, 3} {
		t.Run(fmt.Sprintf("%d-processors", nproc), func(t *testing.T) {
			s, ps := newParallelSystem(t, nproc, 6)
			stats, err := s.RunParallel(nproc, 100000)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range ps {
				if !p.Done || !p.Exited || p.ExitCode != wantExit {
					t.Errorf("%s: done=%v exited=%v code=%d, want exit %d",
						p.Name, p.Done, p.Exited, p.ExitCode, wantExit)
				}
				if p.Cycles == 0 {
					t.Errorf("%s: cycles=%d, want work accounted", p.Name, p.Cycles)
				}
			}
			if len(stats) != nproc {
				t.Fatalf("got %d processor stats, want %d", len(stats), nproc)
			}
			var procs int
			var cycles uint64
			for _, st := range stats {
				procs += st.Processes
				cycles += st.Cycles
				if st.Steps > 0 && st.Cache.Hits+st.Cache.Misses == 0 {
					t.Errorf("processor %d ran %d steps with no SDW cache traffic", st.Processor, st.Steps)
				}
			}
			if procs != 6 {
				t.Errorf("processors ran %d processes in total, want 6", procs)
			}
			var want uint64
			for _, p := range ps {
				want += p.Cycles
			}
			if cycles != want {
				t.Errorf("per-processor cycles sum to %d, per-process to %d", cycles, want)
			}
		})
	}
}

// TestRunParallelNeedsAtomicCore: multiple processors over a plain
// (non-atomic) core must be refused, not raced.
func TestRunParallelNeedsAtomicCore(t *testing.T) {
	s, _ := newParallelSystem(t, 1, 1) // Processors: 1 -> plain core
	if _, err := s.RunParallel(2, 1000); err == nil {
		t.Fatal("2 processors over non-atomic core accepted")
	} else if !strings.Contains(err.Error(), "non-atomic core") {
		t.Errorf("error = %v", err)
	}
}

// TestRunParallelClampsWorkers: nproc <= 0 degrades to a single worker.
func TestRunParallelClampsWorkers(t *testing.T) {
	s, ps := newParallelSystem(t, 1, 2)
	stats, err := s.RunParallel(0, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("got %d processor stats, want 1", len(stats))
	}
	for _, p := range ps {
		if !p.Exited {
			t.Errorf("%s did not exit", p.Name)
		}
	}
}
