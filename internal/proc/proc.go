// Package proc implements the multi-process side of the paper's
// machine model: "a process with a new virtual memory is created for
// each user when he logs in to the system, and the name of the user is
// associated with the process", and "Changing the absolute address in
// the DBR of a processor will cause the address translation logic to
// interpret two-part addresses relative to a different descriptor
// segment. This facility can be used to provide each user of the
// system with a separate virtual memory. A single segment may be part
// of several virtual memories at the same time, allowing
// straightforward sharing of segments among users."
//
// Each process gets its own descriptor segment — with SDW brackets and
// flags derived from its user's entry on each shared segment's access
// control list — and its own eight stack segments at segment numbers
// 0-7. Shared segments occupy the same segment numbers in every
// process's virtual memory and the same words of core. A round-robin
// scheduler multiplexes the single simulated processor by swapping the
// register state and the DBR, exactly the mechanism the paper
// describes.
package proc

import (
	"fmt"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/seg"
	"repro/internal/sup"
	"repro/internal/trap"
	"repro/internal/word"
)

// Config sizes the multi-process machine.
type Config struct {
	MemWords    int // default 1<<21
	MaxSegments int // per-process descriptor bound; default 128
	StackSize   int // per-ring stack words; default 512

	// Processors is the number of simulated processors RunParallel may
	// drive concurrently (see parallel.go). Any value above 1 backs the
	// system with the word-atomic shared core (mem.Atomic) instead of
	// the plain store, so several processors can reference core
	// concurrently. Zero or 1 means a single-processor system.
	Processors int

	// CPUOptions configures every processor (the scheduler's and each
	// of RunParallel's); nil means cpu.DefaultOptions.
	CPUOptions *cpu.Options
}

// SharedDef describes one on-line segment shared among processes. Its
// ACL decides, per user, the flags and brackets that appear in each
// process's SDW — or that the segment is absent from that process's
// virtual memory entirely.
type SharedDef struct {
	Name  string
	Words []word.Word
	Size  int // ≥ len(Words); 0 means len(Words)
	Gates uint32
	ACL   acl.List
}

// sharedSeg is a placed shared segment.
type sharedSeg struct {
	def   SharedDef
	segno uint32
	addr  uint32
	bound uint32
}

// Process is one process: a user, a virtual memory (descriptor
// segment + private stacks), a register context, and its supervisor.
type Process struct {
	Name string
	User string
	Sup  *sup.Supervisor

	dbr   seg.DBR
	state cpu.SavedState // registers while not running
	valid bool           // state holds a resumable context

	// Done, Exited, ExitCode and Trap report the process's fate.
	Done     bool
	Exited   bool
	ExitCode int64
	Trap     *trap.Trap
	// Slices counts scheduler quanta consumed.
	Slices int
	// Cycles attributes simulated cycles to this process.
	Cycles uint64
}

// System is the multi-process machine.
type System struct {
	// Mem is the shared core: a plain store for a single-processor
	// system, the word-atomic store when Config.Processors > 1.
	Mem   mem.Store
	Alloc *mem.Allocator
	CPU   *cpu.CPU

	cfg       Config
	shared    map[string]*sharedSeg
	nextSegno uint32
	procs     []*Process
}

// NewSystem creates an empty multi-process machine.
func NewSystem(cfg Config) *System {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 21
	}
	if cfg.MaxSegments == 0 {
		cfg.MaxSegments = 128
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = 512
	}
	var m mem.Store
	if cfg.Processors > 1 {
		m = mem.NewAtomic(cfg.MemWords)
	} else {
		m = mem.New(cfg.MemWords)
	}
	alloc := mem.NewAllocator(cfg.MemWords, 64) // low core reserved (fault vector convention)
	return &System{
		Mem:       m,
		Alloc:     alloc,
		CPU:       cpu.New(m, cfg.cpuOptions()),
		cfg:       cfg,
		shared:    map[string]*sharedSeg{},
		nextSegno: core.NumRings, // 0-7 are the per-process stacks
	}
}

// cpuOptions resolves the processor configuration.
func (cfg Config) cpuOptions() cpu.Options {
	if cfg.CPUOptions != nil {
		return *cfg.CPUOptions
	}
	return cpu.DefaultOptions()
}

// AddShared places a shared segment in core and assigns its (global)
// segment number.
func (s *System) AddShared(def SharedDef) (uint32, error) {
	if def.Name == "" {
		return 0, fmt.Errorf("proc: shared segment with empty name")
	}
	if _, dup := s.shared[def.Name]; dup {
		return 0, fmt.Errorf("proc: duplicate shared segment %q", def.Name)
	}
	if err := def.ACL.Validate(); err != nil {
		return 0, err
	}
	size := def.Size
	if size == 0 {
		size = len(def.Words)
	}
	if size == 0 {
		return 0, fmt.Errorf("proc: shared segment %q has zero size", def.Name)
	}
	if uint32(s.nextSegno) >= uint32(s.cfg.MaxSegments) {
		return 0, fmt.Errorf("proc: out of segment numbers for %q", def.Name)
	}
	base, err := s.Alloc.Alloc(size)
	if err != nil {
		return 0, err
	}
	if err := mem.WriteRange(s.Mem, base, def.Words); err != nil {
		return 0, err
	}
	sh := &sharedSeg{def: def, segno: s.nextSegno, addr: uint32(base), bound: uint32(size)}
	s.nextSegno++
	s.shared[def.Name] = sh
	return sh.segno, nil
}

// AddProgram places every segment of an assembled program as a shared
// segment, with ACLs chosen by aclFor (nil means: every user gets the
// segment's assembled flags and brackets), then links the program.
func (s *System) AddProgram(prog *asm.Program, aclFor func(segName string) acl.List) error {
	for _, ps := range prog.Segments {
		list := acl.List{{
			User: "*",
			Read: ps.Read, Write: ps.Write, Execute: ps.Execute,
			Brackets: ps.Brackets,
		}}
		if aclFor != nil {
			if custom := aclFor(ps.Name); custom != nil {
				list = custom
			}
		}
		if _, err := s.AddShared(SharedDef{
			Name:  ps.Name,
			Words: ps.Words,
			Gates: ps.GateCount,
			ACL:   list,
		}); err != nil {
			return err
		}
	}
	return asm.Link(s, prog)
}

// Segno implements asm.Space for shared segments.
func (s *System) Segno(name string) (uint32, error) {
	sh, ok := s.shared[name]
	if !ok {
		return 0, fmt.Errorf("proc: no shared segment %q", name)
	}
	return sh.segno, nil
}

// ReadWord implements asm.Space (console privilege).
func (s *System) ReadWord(name string, wordno uint32) (word.Word, error) {
	sh, ok := s.shared[name]
	if !ok || wordno >= sh.bound {
		return 0, fmt.Errorf("proc: read outside %q", name)
	}
	return s.Mem.Read(int(sh.addr + wordno))
}

// WriteWord implements asm.Space (console privilege).
func (s *System) WriteWord(name string, wordno uint32, w word.Word) error {
	sh, ok := s.shared[name]
	if !ok || wordno >= sh.bound {
		return fmt.Errorf("proc: write outside %q", name)
	}
	return s.Mem.Write(int(sh.addr+wordno), w)
}

// Spawn creates a process for user: a fresh descriptor segment whose
// SDWs are derived from each shared segment's ACL (absent when the ACL
// denies the user), private stacks, and a register context starting at
// word 0 of startSeg in the given ring.
func (s *System) Spawn(name, user, startSeg string, ring core.Ring) (*Process, error) {
	descWords := 2 * s.cfg.MaxSegments
	descBase, err := s.Alloc.Alloc(descWords)
	if err != nil {
		return nil, err
	}
	if err := mem.Clear(s.Mem, descBase, descWords); err != nil {
		return nil, err
	}
	dbr := seg.DBR{Addr: uint32(descBase), Bound: uint32(s.cfg.MaxSegments)}
	tbl := seg.Table{Mem: s.Mem, DBR: dbr}

	// Private stacks at segment numbers 0-7.
	for r := core.Ring(0); r < core.NumRings; r++ {
		base, err := s.Alloc.Alloc(s.cfg.StackSize)
		if err != nil {
			return nil, err
		}
		if err := mem.Clear(s.Mem, base, s.cfg.StackSize); err != nil {
			return nil, err
		}
		sdw := seg.SDW{
			Present: true, Addr: uint32(base), Bound: uint32(s.cfg.StackSize),
			Read: true, Write: true,
			Brackets: core.Brackets{R1: r, R2: r, R3: r},
		}
		if err := tbl.Store(uint32(r), sdw); err != nil {
			return nil, err
		}
		counter := isa.Indirect{Ring: r, Segno: uint32(r), Wordno: image.StackFrameStart}
		if err := s.Mem.Write(base, counter.Encode()); err != nil {
			return nil, err
		}
	}

	// Shared segments, bracketed per the user's ACL entries.
	for _, sh := range s.shared {
		entry, ok := sh.def.ACL.Resolve(user)
		if !ok {
			continue // not in this process's virtual memory
		}
		sdw := seg.SDW{
			Present: true, Addr: sh.addr, Bound: sh.bound,
			Read: entry.Read, Write: entry.Write, Execute: entry.Execute,
			Brackets: entry.Brackets,
			Gate:     sh.def.Gates,
		}
		if err := tbl.Store(sh.segno, sdw); err != nil {
			return nil, fmt.Errorf("proc: %q for %q: %w", sh.def.Name, user, err)
		}
	}

	startSegno, err := s.Segno(startSeg)
	if err != nil {
		return nil, err
	}
	p := &Process{
		Name: name,
		User: user,
		Sup:  sup.New(user),
		dbr:  dbr,
	}
	// Initial register context.
	p.state.IPR = cpu.Pointer{Ring: ring, Segno: startSegno, Wordno: 0}
	p.state.PR[cpu.StackPtrPR] = cpu.Pointer{Ring: ring, Segno: uint32(ring), Wordno: image.StackFrameStart}
	p.state.PR[cpu.StackBasePR] = cpu.Pointer{Ring: ring, Segno: uint32(ring), Wordno: 0}
	p.valid = true
	// Reserve the initial frame in the start ring's stack.
	stackSDW, err := tbl.Fetch(uint32(ring))
	if err != nil {
		return nil, err
	}
	counter := isa.Indirect{Ring: ring, Segno: uint32(ring), Wordno: image.StackFrameStart + image.FrameSize}
	if err := s.Mem.Write(seg.Translate(stackSDW, 0), counter.Encode()); err != nil {
		return nil, err
	}

	s.procs = append(s.procs, p)
	return p, nil
}

// Processes returns the spawned processes.
func (s *System) Processes() []*Process { return s.procs }

// dispatch loads p's context onto processor c.
func (s *System) dispatch(c *cpu.CPU, p *Process) {
	c.SetDBR(p.dbr) // new descriptor segment; the MMU flushes its SDW cache
	c.IPR = p.state.IPR
	c.TPR = p.state.TPR
	c.PR = p.state.PR
	c.A, c.Q = p.state.A, p.state.Q
	c.X = p.state.X
	c.Ind = p.state.Ind
	c.Halted = false
	c.Handler = p.Sup
	c.Services = p.Sup
}

// park saves processor c's context back into p.
func (s *System) park(c *cpu.CPU, p *Process) {
	p.state.IPR = c.IPR
	p.state.TPR = c.TPR
	p.state.PR = c.PR
	p.state.A, p.state.Q = c.A, c.Q
	p.state.X = c.X
	p.state.Ind = c.Ind
}

// Schedule runs the processes round-robin with the given quantum
// (instructions per slice) until all are done or maxSlices slices have
// been consumed. It returns an error only for simulator faults; process
// traps are recorded on the process.
func (s *System) Schedule(quantum, maxSlices int) error {
	if quantum <= 0 {
		quantum = 100
	}
	slices := 0
	for slices < maxSlices {
		live := false
		for _, p := range s.procs {
			if p.Done {
				continue
			}
			live = true
			slices++
			p.Slices++
			s.dispatch(s.CPU, p)
			before := s.CPU.Cycles
			reason, err := s.CPU.Run(quantum)
			p.Cycles += s.CPU.Cycles - before
			if err != nil {
				if t, ok := err.(*trap.Trap); ok {
					p.Done = true
					p.Trap = t
					continue
				}
				return err
			}
			switch reason {
			case cpu.StopHalt:
				p.Done = true
				p.Exited = p.Sup.Exited
				p.ExitCode = p.Sup.ExitCode
			case cpu.StopLimit:
				s.park(s.CPU, p) // quantum expired; context switch
			}
		}
		if !live {
			return nil
		}
	}
	return fmt.Errorf("proc: schedule exceeded %d slices", maxSlices)
}

// preemptHandler wraps a process's supervisor so timer interrupts stop
// the Run loop and hand control back to the scheduler, while every
// other trap goes to the real supervisor.
type preemptHandler struct {
	inner     cpu.TrapHandler
	preempted *bool
}

func (h preemptHandler) HandleTrap(c *cpu.CPU, t *trap.Trap) cpu.TrapAction {
	if t.Code == trap.TimerInterrupt {
		*h.preempted = true
		return cpu.TrapHalt
	}
	return h.inner.HandleTrap(c, t)
}

// ScheduleInterrupts runs the processes round-robin like Schedule, but
// preemption is interrupt-driven: before dispatching a process the
// scheduler arms an interval-timer interrupt (one of the paper's trap
// sources), and the process runs until the timer trap returns control —
// "processor multiplexing" by the machine's own trap machinery rather
// than by the simulator counting steps.
func (s *System) ScheduleInterrupts(quantum, maxSlices int) error {
	if quantum <= 0 {
		quantum = 100
	}
	slices := 0
	for slices < maxSlices {
		live := false
		for _, p := range s.procs {
			if p.Done {
				continue
			}
			live = true
			slices++
			p.Slices++
			s.dispatch(s.CPU, p)
			preempted := false
			s.CPU.Handler = preemptHandler{inner: p.Sup, preempted: &preempted}
			s.CPU.PostInterrupt(cpu.Interrupt{After: uint64(quantum), Code: trap.TimerInterrupt})
			before := s.CPU.Cycles
			_, err := s.CPU.Run(100 * quantum) // generous backstop
			p.Cycles += s.CPU.Cycles - before
			s.CPU.ClearInterrupts()
			switch {
			case err != nil && preempted:
				// The timer trap stopped the machine; the interrupted
				// state sits on the save stack. Pop it into the live
				// registers and park.
				if rerr := s.CPU.RestoreSaved(); rerr != nil {
					return rerr
				}
				s.CPU.Halted = false
				s.park(s.CPU, p)
			case err != nil:
				if t, ok := err.(*trap.Trap); ok {
					p.Done = true
					p.Trap = t
					continue
				}
				return err
			default:
				p.Done = true
				p.Exited = p.Sup.Exited
				p.ExitCode = p.Sup.ExitCode
			}
		}
		if !live {
			return nil
		}
	}
	return fmt.Errorf("proc: interrupt schedule exceeded %d slices", maxSlices)
}
