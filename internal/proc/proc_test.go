package proc_test

import (
	"strings"
	"testing"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sup"
	"repro/internal/word"
)

// sharedCounterSrc is a shared, gated ring-1 subsystem that counts its
// invocations in a shared ring-1 data word, plus a user program that
// calls it n times.
const sharedCounterSrc = `
        .seg    counter
        .bracket 1,1,5
        .access rwe
        .gate   bump
bump:   eap5    *pr0|0
        spr6    pr5|0
        aos     total
        lda     total
        eap6    *pr5|0
        return  *pr6|0
        .entry  total
total:  .word   0

        .seg    user
        .bracket 4,4,4
        lia     3
        sta     pr6|2           ; loop counter in the PRIVATE stack frame:
                                ; the code segment is shared between the
                                ; processes, working storage must not be
loop:   stic    pr6|0,+1
        call    counter$bump
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        stic    pr6|0,+1
        call    sysgates$exit
`

func TestTwoProcessesShareSubsystem(t *testing.T) {
	s := proc.NewSystem(proc.Config{})
	prog, err := asm.Assemble(sup.GateSource + sharedCounterSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}
	pa, err := s.Spawn("procA", "alice", "user", 4)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.Spawn("procB", "bob", "user", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(20, 10000); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*proc.Process{pa, pb} {
		if !p.Done || !p.Exited {
			t.Fatalf("%s: done=%v exited=%v trap=%v audit=%v",
				p.Name, p.Done, p.Exited, p.Trap, p.Sup.Audit)
		}
		if p.Slices < 2 {
			t.Errorf("%s ran in %d slice(s); quantum too generous for the test", p.Name, p.Slices)
		}
	}
	// The shared subsystem's data segment accumulated BOTH processes'
	// calls: 3 + 3.
	totalOff := prog.Segment("counter").Symbols["total"]
	w, err := s.ReadWord("counter", totalOff)
	if err != nil {
		t.Fatal(err)
	}
	if w.Int64() != 6 {
		t.Errorf("shared total = %d, want 6", w.Int64())
	}
}

func TestPerProcessACLBrackets(t *testing.T) {
	// The same shared segment appears writable in alice's virtual
	// memory but read-only in bob's — the ACL decides per process.
	s := proc.NewSystem(proc.Config{})
	prog, err := asm.Assemble(`
        .seg    writer
        .bracket 4,4,4
        lia     7
        sta     *ptr
        hlt
ptr:    .its    4, board$base
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddShared(proc.SharedDef{
		Name: "board", Size: 8,
		ACL: acl.List{
			{User: "alice", Read: true, Write: true, Brackets: core.Brackets{R1: 4, R2: 5, R3: 5}},
			{User: "*", Read: true, Brackets: core.Brackets{R1: 4, R2: 5, R3: 5}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}
	pa, err := s.Spawn("alice-p", "alice", "writer", 4)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := s.Spawn("bob-p", "bob", "writer", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(50, 1000); err != nil {
		t.Fatal(err)
	}
	if pa.Trap != nil {
		t.Errorf("alice's write trapped: %v", pa.Trap)
	}
	if pb.Trap == nil {
		t.Error("bob's write did not trap")
	} else if !strings.Contains(pb.Trap.Error(), "write flag off") {
		t.Errorf("bob's trap: %v", pb.Trap)
	}
	w, _ := s.ReadWord("board", 0)
	if w.Int64() != 7 {
		t.Errorf("board word = %d (alice's write lost?)", w.Int64())
	}
}

func TestACLDenialMeansAbsent(t *testing.T) {
	// A segment whose ACL has no entry for the user is simply not in
	// that process's virtual memory: a reference raises a missing-
	// segment fault.
	s := proc.NewSystem(proc.Config{})
	prog, err := asm.Assemble(`
        .seg    prog
        .bracket 4,4,4
        lda     *ptr
        hlt
ptr:    .its    4, secret$base
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddShared(proc.SharedDef{
		Name: "secret", Words: []word.Word{word.FromInt(5)},
		ACL: acl.List{
			{User: "alice", Read: true, Brackets: core.Brackets{R1: 4, R2: 5, R3: 5}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}
	pm, err := s.Spawn("mallory-p", "mallory", "prog", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(50, 100); err != nil {
		t.Fatal(err)
	}
	if pm.Trap == nil || !strings.Contains(pm.Trap.Error(), "missing segment") {
		t.Errorf("mallory's trap: %v", pm.Trap)
	}
}

func TestContextSwitchPreservesState(t *testing.T) {
	// Two compute loops with tiny quanta: each must finish with its own
	// correct result despite interleaving.
	s := proc.NewSystem(proc.Config{})
	// The loop keeps its accumulator and counter in the process's
	// PRIVATE ring-4 stack frame (pr6|2, pr6|3): the code segment is
	// shared among the processes, the working storage is not — the
	// pure-procedure-plus-per-process-stack discipline of the paper.
	prog, err := asm.Assemble(sup.GateSource + `
        .seg    adder
        .bracket 4,4,4
        lia     0
        sta     pr6|2           ; acc, in the private stack frame
        lia     200
        sta     pr6|3           ; n
loop:   lda     pr6|2
        aia     1
        sta     pr6|2
        lda     pr6|3
        aia     -1
        sta     pr6|3
        tnz     loop
        lda     pr6|2
        stic    pr6|0,+1
        call    sysgates$exit   ; exit code = 200
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}
	var ps []*proc.Process
	for _, name := range []string{"p1", "p2", "p3"} {
		p, err := s.Spawn(name, "u-"+name, "adder", 4)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if err := s.Schedule(7, 100000); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if !p.Exited {
			t.Fatalf("%s: %+v trap=%v", p.Name, p, p.Trap)
		}
		if p.ExitCode != 200 {
			t.Errorf("%s exit = %d, want 200 (state corrupted by context switches?)",
				p.Name, p.ExitCode)
		}
		if p.Slices < 10 {
			t.Errorf("%s finished in %d slices; no real interleaving", p.Name, p.Slices)
		}
	}
}

func TestSpawnErrors(t *testing.T) {
	s := proc.NewSystem(proc.Config{})
	if _, err := s.Spawn("p", "u", "ghost", 4); err == nil {
		t.Error("spawn into unknown segment accepted")
	}
	if _, err := s.AddShared(proc.SharedDef{Name: "", Size: 4}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.AddShared(proc.SharedDef{Name: "z"}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := s.AddShared(proc.SharedDef{Name: "a", Size: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddShared(proc.SharedDef{Name: "a", Size: 4}); err == nil {
		t.Error("duplicate accepted")
	}
}

// TestInterruptDrivenScheduling runs the same isolation workload under
// the timer-interrupt scheduler: preemption arrives through the trap
// machinery instead of a step limit, and every process still computes
// its own correct result.
func TestInterruptDrivenScheduling(t *testing.T) {
	s := proc.NewSystem(proc.Config{})
	prog, err := asm.Assemble(sup.GateSource + `
        .seg    adder
        .bracket 4,4,4
        lia     0
        sta     pr6|2
        lia     150
        sta     pr6|3
loop:   lda     pr6|2
        aia     1
        sta     pr6|2
        lda     pr6|3
        aia     -1
        sta     pr6|3
        tnz     loop
        lda     pr6|2
        stic    pr6|0,+1
        call    sysgates$exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, nil); err != nil {
		t.Fatal(err)
	}
	var ps []*proc.Process
	for _, name := range []string{"a", "b"} {
		p, err := s.Spawn(name, "u-"+name, "adder", 4)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	if err := s.ScheduleInterrupts(9, 100000); err != nil {
		t.Fatal(err)
	}
	for _, p := range ps {
		if !p.Exited || p.ExitCode != 150 {
			t.Fatalf("%s: exited=%v code=%d trap=%v", p.Name, p.Exited, p.ExitCode, p.Trap)
		}
		if p.Slices < 10 {
			t.Errorf("%s ran in %d slices; no preemption happened", p.Name, p.Slices)
		}
	}
}

// TestPerUserGateExtension reproduces the paper's administrator-gate
// example: "Some gates into ring 1 are accessible to procedures
// executing in rings 2-5 in the processes of selected users, but are
// not accessible at all from the processes of other users" — the gate
// extension comes from each user's ACL entry, so the same gate segment
// is callable from ring 4 in the admin's process and closed in the
// clerk's.
func TestPerUserGateExtension(t *testing.T) {
	s := proc.NewSystem(proc.Config{})
	prog, err := asm.Assemble(`
        .seg    regusers
        .bracket 1,1,1          ; overridden per user by the ACL below
        .gate   register
register: eap5  *pr0|0
        spr6    pr5|0
        lia     1
        eap6    *pr5|0
        return  *pr6|0

        .seg    tryit
        .bracket 4,4,4
        stic    pr6|0,+1
        call    regusers$register
        hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddProgram(prog, func(segName string) acl.List {
		if segName == "regusers" {
			return acl.List{
				// The administrator may call the gate from rings 2-5.
				{User: "admin", Read: true, Execute: true,
					Brackets: core.Brackets{R1: 1, R2: 1, R3: 5}},
				// Everyone else holds the segment with NO gate
				// extension: callable from ring 1 only, i.e. never from
				// user rings.
				{User: "*", Read: true, Execute: true,
					Brackets: core.Brackets{R1: 1, R2: 1, R3: 1}},
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	admin, err := s.Spawn("admin-p", "admin", "tryit", 4)
	if err != nil {
		t.Fatal(err)
	}
	clerk, err := s.Spawn("clerk-p", "clerk", "tryit", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Schedule(50, 1000); err != nil {
		t.Fatal(err)
	}
	if admin.Trap != nil {
		t.Errorf("admin's call failed: %v", admin.Trap)
	}
	if clerk.Trap == nil {
		t.Error("clerk reached the registration gate")
	} else if !strings.Contains(clerk.Trap.Error(), "gate extension") {
		t.Errorf("clerk's trap: %v", clerk.Trap)
	}
}
