package seg

import (
	"testing"

	"repro/internal/word"
)

// FuzzSDWRoundTrip checks SDW codec stability over arbitrary
// even/odd word pairs. Encode zeroes the reserved bits (25-24 of the
// even word, 32 of the odd word), so Encode(Decode(w)) need not equal
// w — the invariant is that decoding is a retraction:
// Decode(Encode(Decode(pair))) == Decode(pair), and re-encoding a
// decoded SDW is a fixed point. The access-control projection View and
// the String rendering must hold up for any bit pattern, since a
// descriptor segment is plain memory the supervisor could scribble on.
func FuzzSDWRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(word.Mask, word.Mask)
	seed := SDW{Present: true, Addr: 0o1000, Bound: 0o777, Read: true, Execute: true, Gate: 8}
	seed.Brackets.R1, seed.Brackets.R2, seed.Brackets.R3 = 1, 3, 5
	se, so := seed.Encode()
	f.Add(se.Uint64(), so.Uint64())
	f.Add(uint64(1)<<35, uint64(1)<<35) // present, read, everything else zero
	f.Fuzz(func(t *testing.T, evenRaw, oddRaw uint64) {
		even, odd := word.FromUint64(evenRaw), word.FromUint64(oddRaw)
		s := Decode(even, odd)
		e2, o2 := s.Encode()
		if s2 := Decode(e2, o2); s2 != s {
			t.Fatalf("decode not a retraction: %+v vs %+v", s, s2)
		}
		if e3, o3 := Decode(e2, o2).Encode(); e3 != e2 || o3 != o2 {
			t.Fatalf("encode not a fixed point: (%012o,%012o) vs (%012o,%012o)",
				e2.Uint64(), o2.Uint64(), e3.Uint64(), o3.Uint64())
		}
		v := s.View()
		if v.Present != s.Present || v.Bound != s.Bound || v.GateCount != s.Gate ||
			v.Brackets != s.Brackets || v.Read != s.Read || v.Write != s.Write || v.Execute != s.Execute {
			t.Fatalf("View dropped fields: %+v from %+v", v, s)
		}
		if str := s.String(); str == "" {
			t.Fatalf("empty String for %+v", s)
		}
		_ = s.Validate() // must not panic on any pattern
	})
}

// FuzzDBRRoundTrip checks the DBR codec the same way: decode is a
// retraction over arbitrary word pairs and encode is a fixed point on
// decoded values (the DBR ignores bits 24-35 even, 32-35 odd).
func FuzzDBRRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(word.Mask, word.Mask)
	de, do := DBR{Addr: 0o4000, Bound: 64, Stack: 0o100}.Encode()
	f.Add(de.Uint64(), do.Uint64())
	f.Fuzz(func(t *testing.T, evenRaw, oddRaw uint64) {
		even, odd := word.FromUint64(evenRaw), word.FromUint64(oddRaw)
		d := DecodeDBR(even, odd)
		e2, o2 := d.Encode()
		if d2 := DecodeDBR(e2, o2); d2 != d {
			t.Fatalf("decode not a retraction: %+v vs %+v", d, d2)
		}
		if e3, o3 := DecodeDBR(e2, o2).Encode(); e3 != e2 || o3 != o2 {
			t.Fatalf("encode not a fixed point")
		}
	})
}
