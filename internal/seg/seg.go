// Package seg implements the segmentation structures of the paper's
// Figure 3: segment descriptor words (SDWs), descriptor segments, and
// the descriptor base register (DBR).
//
// An SDW occupies an even/odd pair of 36-bit words in the descriptor
// segment; the segment number is the index of the pair. The fields and
// their packing:
//
//	word 0 (even):
//	  bit  35     F     present flag
//	  bits 34-32  R1    top of write bracket / bottom of execute bracket
//	  bits 31-29  R2    top of execute and read brackets
//	  bits 28-26  R3    top of gate extension
//	  bits 25-24  (zero)
//	  bits 23-0   ADDR  absolute core address of the segment base
//
//	word 1 (odd):
//	  bit  35     R     read flag
//	  bit  34     W     write flag
//	  bit  33     E     execute flag
//	  bit  32     (zero)
//	  bits 31-18  GATE  number of gate locations (gates are words 0..GATE-1)
//	  bits 17-0   BOUND segment length in words
//
// The packing itself is a simulator convention (the paper gives the
// field list, not bit positions), but the field set and widths — three
// 3-bit ring numbers, three flags, a gate length, base and bound — are
// exactly the paper's.
package seg

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/word"
)

// SegnoBits is the width of a segment number: 14 bits, allowing 16384
// segments per descriptor segment.
const SegnoBits = 14

// MaxSegno is the largest valid segment number.
const MaxSegno = (1 << SegnoBits) - 1

// WordnoBits is the width of a word number within a segment.
const WordnoBits = 18

// MaxBound is the largest expressible segment length.
const MaxBound = (1 << WordnoBits) - 1

// AddrBits is the width of an absolute core address in an SDW.
const AddrBits = 24

// SDW is a decoded segment descriptor word pair.
type SDW struct {
	Present  bool
	Addr     uint32 // absolute core address of word 0 of the segment
	Bound    uint32 // number of words in the segment
	Read     bool
	Write    bool
	Execute  bool
	Brackets core.Brackets
	Gate     uint32 // number of gate locations
}

// View projects the SDW into the access-control view consumed by the
// ring validation logic in internal/core.
func (s SDW) View() core.SDWView {
	return core.SDWView{
		Present:   s.Present,
		Read:      s.Read,
		Write:     s.Write,
		Execute:   s.Execute,
		Brackets:  s.Brackets,
		GateCount: s.Gate,
		Bound:     s.Bound,
	}
}

// Validate checks the SDW invariants supervisor code must maintain.
func (s SDW) Validate() error {
	if !s.Present {
		return nil
	}
	if err := s.Brackets.Validate(); err != nil {
		return err
	}
	if s.Bound > MaxBound {
		return fmt.Errorf("seg: bound %d exceeds %d", s.Bound, MaxBound)
	}
	if s.Gate > s.Bound {
		return fmt.Errorf("seg: gate count %d exceeds bound %d", s.Gate, s.Bound)
	}
	if s.Addr >= 1<<AddrBits {
		return fmt.Errorf("seg: address %o exceeds %d bits", s.Addr, AddrBits)
	}
	return nil
}

// Encode packs the SDW into its even/odd word pair.
func (s SDW) Encode() (even, odd word.Word) {
	even = word.Word(0).
		WithBit(35, s.Present).
		Deposit(32, 3, uint64(s.Brackets.R1)).
		Deposit(29, 3, uint64(s.Brackets.R2)).
		Deposit(26, 3, uint64(s.Brackets.R3)).
		Deposit(0, 24, uint64(s.Addr))
	odd = word.Word(0).
		WithBit(35, s.Read).
		WithBit(34, s.Write).
		WithBit(33, s.Execute).
		Deposit(18, 14, uint64(s.Gate)).
		Deposit(0, 18, uint64(s.Bound))
	return even, odd
}

// Decode unpacks an SDW from its even/odd word pair.
func Decode(even, odd word.Word) SDW {
	return SDW{
		Present: even.Bit(35),
		Brackets: core.Brackets{
			R1: core.Ring(even.Field(32, 3)),
			R2: core.Ring(even.Field(29, 3)),
			R3: core.Ring(even.Field(26, 3)),
		},
		Addr:    uint32(even.Field(0, 24)),
		Read:    odd.Bit(35),
		Write:   odd.Bit(34),
		Execute: odd.Bit(33),
		Gate:    uint32(odd.Field(18, 14)),
		Bound:   uint32(odd.Field(0, 18)),
	}
}

func (s SDW) String() string {
	if !s.Present {
		return "SDW{absent}"
	}
	flag := func(b bool, c string) string {
		if b {
			return c
		}
		return "-"
	}
	return fmt.Sprintf("SDW{addr=%o bound=%o %s%s%s R1=%d R2=%d R3=%d gates=%d}",
		s.Addr, s.Bound,
		flag(s.Read, "r"), flag(s.Write, "w"), flag(s.Execute, "e"),
		s.Brackets.R1, s.Brackets.R2, s.Brackets.R3, s.Gate)
}

// DBR is the descriptor base register: the absolute address and length
// of the descriptor segment, plus the stack base field of the paper's
// Figure 8 footnote ("an additional DBR field that specifies the eight
// consecutively numbered segments that are the standard stack segments
// of the process").
type DBR struct {
	Addr  uint32 // absolute core address of the descriptor segment
	Bound uint32 // number of SDWs describable (pairs)
	Stack uint32 // first of the eight consecutive stack segment numbers
}

// Encode packs the DBR into a word pair so it can be stored in memory
// and loaded by the privileged LDBR instruction.
func (d DBR) Encode() (even, odd word.Word) {
	even = word.Word(0).Deposit(0, 24, uint64(d.Addr))
	odd = word.Word(0).
		Deposit(18, 14, uint64(d.Stack)).
		Deposit(0, 18, uint64(d.Bound))
	return even, odd
}

// DecodeDBR unpacks a DBR from its word pair.
func DecodeDBR(even, odd word.Word) DBR {
	return DBR{
		Addr:  uint32(even.Field(0, 24)),
		Bound: uint32(odd.Field(0, 18)),
		Stack: uint32(odd.Field(18, 14)),
	}
}

// Table provides SDW access on top of core memory for a given DBR —
// the indexed retrieval the address translation logic performs.
type Table struct {
	Mem mem.Store
	DBR DBR
}

// Fetch retrieves and decodes the SDW for segno. A segment number at or
// beyond the DBR bound decodes as an absent SDW (the reference will then
// raise a missing-segment fault), matching the behaviour of running off
// the end of a descriptor segment.
func (t Table) Fetch(segno uint32) (SDW, error) {
	if segno > MaxSegno || segno >= t.DBR.Bound {
		return SDW{}, nil
	}
	base := int(t.DBR.Addr) + 2*int(segno)
	even, err := t.Mem.Read(base)
	if err != nil {
		return SDW{}, err
	}
	odd, err := t.Mem.Read(base + 1)
	if err != nil {
		return SDW{}, err
	}
	return Decode(even, odd), nil
}

// Store encodes and writes the SDW for segno into the descriptor
// segment. Store is supervisor functionality: the simulator's image
// builder and ring-0 services use it; no unprivileged path reaches it.
func (t Table) Store(segno uint32, s SDW) error {
	if segno > MaxSegno || segno >= t.DBR.Bound {
		return fmt.Errorf("seg: segment number %o beyond descriptor bound %o", segno, t.DBR.Bound)
	}
	if err := s.Validate(); err != nil {
		return err
	}
	even, odd := s.Encode()
	base := int(t.DBR.Addr) + 2*int(segno)
	if err := t.Mem.Write(base, even); err != nil {
		return err
	}
	return t.Mem.Write(base+1, odd)
}

// Translate converts a two-part (segno, wordno) address to an absolute
// core address using the given SDW. It assumes bound validation has
// already been performed by the access checks.
func Translate(s SDW, wordno uint32) int {
	return int(s.Addr) + int(wordno)
}
