package seg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/mem"
)

func sampleSDW() SDW {
	return SDW{
		Present:  true,
		Addr:     0o1000,
		Bound:    0o2000,
		Read:     true,
		Write:    false,
		Execute:  true,
		Brackets: core.Brackets{R1: 3, R2: 3, R3: 5},
		Gate:     2,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSDW()
	even, odd := s.Encode()
	got := Decode(even, odd)
	if got != s {
		t.Errorf("round trip: got %+v want %+v", got, s)
	}
}

func TestAbsentSDW(t *testing.T) {
	s := SDW{}
	even, odd := s.Encode()
	got := Decode(even, odd)
	if got.Present {
		t.Error("absent SDW decoded as present")
	}
	if !got.View().Present {
		// consistent view
	} else {
		t.Error("view present for absent SDW")
	}
}

func TestViewProjection(t *testing.T) {
	s := sampleSDW()
	v := s.View()
	if !v.Present || !v.Read || v.Write || !v.Execute {
		t.Errorf("flags: %+v", v)
	}
	if v.Brackets != s.Brackets || v.GateCount != s.Gate || v.Bound != s.Bound {
		t.Errorf("fields: %+v", v)
	}
}

func TestSDWValidate(t *testing.T) {
	s := sampleSDW()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.Gate = s.Bound + 1
	if bad.Validate() == nil {
		t.Error("gate > bound accepted")
	}
	bad = s
	bad.Brackets = core.Brackets{R1: 5, R2: 3, R3: 7}
	if bad.Validate() == nil {
		t.Error("inverted brackets accepted")
	}
	bad = s
	bad.Addr = 1 << AddrBits
	if bad.Validate() == nil {
		t.Error("oversized address accepted")
	}
	bad = s
	bad.Bound = MaxBound + 1
	if bad.Validate() == nil {
		t.Error("oversized bound accepted")
	}
	if (SDW{}).Validate() != nil {
		t.Error("absent SDW should validate")
	}
}

func TestDBRRoundTrip(t *testing.T) {
	d := DBR{Addr: 0o100, Bound: 64, Stack: 0}
	even, odd := d.Encode()
	if got := DecodeDBR(even, odd); got != d {
		t.Errorf("round trip: %+v", got)
	}
	d = DBR{Addr: (1 << 24) - 1, Bound: 0o777777, Stack: MaxSegno}
	even, odd = d.Encode()
	if got := DecodeDBR(even, odd); got != d {
		t.Errorf("extremes: %+v", got)
	}
}

func TestTableStoreFetch(t *testing.T) {
	m := mem.New(4096)
	tbl := &Table{Mem: m, DBR: DBR{Addr: 0o100, Bound: 64}}
	s := sampleSDW()
	if err := tbl.Store(7, s); err != nil {
		t.Fatal(err)
	}
	got, err := tbl.Fetch(7)
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Errorf("fetch: %+v", got)
	}
	// Unstored segments come back absent.
	got, err = tbl.Fetch(9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Present {
		t.Error("unstored segment present")
	}
}

func TestTableBeyondBoundIsAbsent(t *testing.T) {
	m := mem.New(4096)
	tbl := &Table{Mem: m, DBR: DBR{Addr: 0o100, Bound: 8}}
	got, err := tbl.Fetch(8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Present {
		t.Error("segment beyond DBR bound present")
	}
	got, err = tbl.Fetch(MaxSegno + 5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Present {
		t.Error("huge segno present")
	}
	if err := tbl.Store(8, sampleSDW()); err == nil {
		t.Error("store beyond bound accepted")
	}
}

func TestTableStoreRejectsInvalid(t *testing.T) {
	m := mem.New(4096)
	tbl := &Table{Mem: m, DBR: DBR{Addr: 0o100, Bound: 8}}
	bad := sampleSDW()
	bad.Brackets = core.Brackets{R1: 6, R2: 2, R3: 1}
	if err := tbl.Store(0, bad); err == nil {
		t.Error("invalid SDW stored")
	}
}

func TestTranslate(t *testing.T) {
	s := sampleSDW()
	if got := Translate(s, 5); got != 0o1005 {
		t.Errorf("Translate = %o", got)
	}
	if got := Translate(s, 0); got != 0o1000 {
		t.Errorf("Translate(0) = %o", got)
	}
}

func TestStrings(t *testing.T) {
	if (SDW{}).String() != "SDW{absent}" {
		t.Error("absent string")
	}
	s := sampleSDW().String()
	if s == "" {
		t.Error("empty string")
	}
}

// Property: SDW encode/decode is the identity over the full field space.
func TestQuickSDWRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		r1 := core.Ring(rng.Intn(8))
		r2 := r1 + core.Ring(rng.Intn(int(8-r1)))
		r3 := r2 + core.Ring(rng.Intn(int(8-r2)))
		s := SDW{
			Present:  rng.Intn(2) == 0,
			Addr:     uint32(rng.Intn(1 << 24)),
			Bound:    uint32(rng.Intn(1 << 18)),
			Read:     rng.Intn(2) == 0,
			Write:    rng.Intn(2) == 0,
			Execute:  rng.Intn(2) == 0,
			Brackets: core.Brackets{R1: r1, R2: r2, R3: r3},
			Gate:     uint32(rng.Intn(1 << 14)),
		}
		even, odd := s.Encode()
		if got := Decode(even, odd); got != s {
			t.Fatalf("round trip: got %+v want %+v", got, s)
		}
	}
}

// Property: DBR encode/decode is the identity.
func TestQuickDBRRoundTrip(t *testing.T) {
	f := func(addr, bound, stack uint32) bool {
		d := DBR{Addr: addr % (1 << 24), Bound: bound % (1 << 18), Stack: stack % (1 << 14)}
		even, odd := d.Encode()
		return DecodeDBR(even, odd) == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Table.Store then Fetch returns the stored SDW for every
// in-bound segment number and disturbs no neighbouring SDW.
func TestQuickTableIsolation(t *testing.T) {
	m := mem.New(8192)
	tbl := &Table{Mem: m, DBR: DBR{Addr: 0, Bound: 32}}
	base := sampleSDW()
	for i := uint32(0); i < 32; i++ {
		s := base
		s.Addr = 0o1000 + i
		if err := tbl.Store(i, s); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 32; i++ {
		got, err := tbl.Fetch(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.Addr != 0o1000+i {
			t.Fatalf("segment %d has addr %o", i, got.Addr)
		}
	}
}
