package service

import (
	"bytes"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// Golden HTTP fixtures pin the daemon's wire format byte for byte:
// every field name, the indentation writeJSON emits, the shard/version
// interval on each decision, and the error bodies of the 4xx paths.
// A change that drifts the format fails here before any client does.
// Regenerate deliberately with:
//
//	go test ./internal/service -run TestHTTPGolden -update
var update = flag.Bool("update", false, "rewrite golden HTTP fixtures")

// checkGolden compares got against testdata/golden/<name>, rewriting
// the fixture under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("write fixture: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing fixture (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// goldenPost posts a raw body and returns the response with its body,
// asserting the expected status.
func goldenPost(t *testing.T, url, body string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, out.String())
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	return out.Bytes()
}

// TestHTTPGolden runs an ordered request sequence against one
// single-worker server (so worker indices and store versions are
// deterministic) and pins every response body against its fixture.
func TestHTTPGolden(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Pre-mutation health: version 0, the default shard count.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d: %s", resp.StatusCode, buf.String())
	}
	checkGolden(t, "healthz.json", buf.Bytes())

	// One batch exercising every op: allowed and denied access, a gate
	// call with a ring switch, a return, and an effective-ring chain.
	// All shard intervals are [0,0] — nothing has mutated yet.
	checkBody := `{"queries": [
  {"op": "access", "ring": 4, "segment": "data", "wordno": 3, "kind": "read"},
  {"op": "access", "ring": 5, "segment": "data", "kind": "read"},
  {"op": "access", "ring": 7, "segment": "secret", "kind": "read"},
  {"op": "call", "ring": 4, "segment": "code", "wordno": 1},
  {"op": "return", "ring": 2, "segment": "code", "eff_ring": 3},
  {"op": "effring", "ring": 2, "chain": [{"pr": true, "ring": 3}]}
]}`
	checkGolden(t, "check_ok.json", goldenPost(t, ts.URL+"/v1/check", checkBody, http.StatusOK))

	// Error paths: malformed body, empty batch, unknown access kind.
	checkGolden(t, "check_malformed.json",
		goldenPost(t, ts.URL+"/v1/check", "{not json", http.StatusBadRequest))
	checkGolden(t, "check_empty.json",
		goldenPost(t, ts.URL+"/v1/check", `{"queries": []}`, http.StatusBadRequest))
	checkGolden(t, "check_bad_kind.json",
		goldenPost(t, ts.URL+"/v1/check",
			`{"queries": [{"op": "access", "ring": 1, "segment": "data", "kind": "sniff"}]}`,
			http.StatusBadRequest))

	// First mutation: the store's epoch sum moves to 2 (one completed
	// edit on one shard).
	checkGolden(t, "mutate_ok.json",
		goldenPost(t, ts.URL+"/v1/mutate",
			`{"op": "setbrackets", "segment": "data", "read": true, "write": true, "r1": 1, "r2": 1, "r3": 1}`,
			http.StatusOK))

	// The same access that fixture check_ok.json allowed now reports the
	// post-mutation shard interval and denies.
	checkGolden(t, "check_after_mutate.json",
		goldenPost(t, ts.URL+"/v1/check",
			`{"queries": [{"op": "access", "ring": 4, "segment": "data", "wordno": 3, "kind": "read"}]}`,
			http.StatusOK))

	checkGolden(t, "mutate_unknown_segment.json",
		goldenPost(t, ts.URL+"/v1/mutate",
			`{"op": "revoke", "segment": "nonesuch"}`, http.StatusNotFound))
}

// TestHTTPGoldenQueueFull pins the 429 body and Retry-After header:
// a parked worker plus a depth-1 queue makes the third batch shed.
func TestHTTPGoldenQueueFull(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	svc := srv.Service()
	hold := make(chan struct{})
	ack := make(chan struct{}, 4)
	svc.hold, svc.holdAck = hold, ack
	var once sync.Once
	release := func() { once.Do(func() { close(hold) }) }
	defer release()

	body := `{"queries": [{"op": "access", "ring": 3, "segment": "data"}]}`
	done := make(chan struct{}, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader([]byte(body)))
		if err == nil {
			resp.Body.Close()
		}
		done <- struct{}{}
	}
	go post()
	<-ack // worker parked on the first batch
	go post()
	waitFor(t, "second batch to queue", func() bool { return svc.QueueLen() == 1 })

	resp, err := http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, out.String())
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
	checkGolden(t, "check_queue_full.json", out.Bytes())

	release()
	for i := 0; i < 2; i++ {
		<-done
	}
}
