package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// Server is the HTTP/JSON face of a Service: the ringd daemon's
// handler. Endpoints:
//
//	POST /v1/check   — a batch of protection queries; 429 when the
//	                   decision queue is full, 503 once closed
//	POST /v1/mutate  — supervisor mutations (setbrackets, revoke,
//	                   restore) through the coherent StoreSDW path
//	GET  /healthz    — liveness and image shape
//	GET  /metrics    — decision counts, faults by kind, cache and
//	                   latency counters (JSON)
type Server struct {
	svc *Service
	mux *http.ServeMux
}

// NewServer wraps svc in the HTTP API.
func NewServer(svc *Service) *Server {
	s := &Server{svc: svc, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/check", s.handleCheck)
	s.mux.HandleFunc("/v1/mutate", s.handleMutate)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Service returns the underlying decision engine.
func (s *Server) Service() *Service { return s.svc }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close drains and stops the decision engine. Call after the HTTP
// listener has stopped accepting (http.Server.Shutdown) so in-flight
// requests complete first.
func (s *Server) Close() { s.svc.Close() }

// wireQuery is the JSON form of a Query: access kinds travel as
// strings.
type wireQuery struct {
	Op          string      `json:"op"`
	Ring        uint8       `json:"ring"`
	Segment     string      `json:"segment,omitempty"`
	Segno       uint32      `json:"segno,omitempty"`
	Wordno      uint32      `json:"wordno,omitempty"`
	Kind        string      `json:"kind,omitempty"`
	EffRing     *uint8      `json:"eff_ring,omitempty"`
	SameSegment bool        `json:"same_segment,omitempty"`
	Chain       []ChainStep `json:"chain,omitempty"`
}

// toQuery converts the wire form, rejecting unknown access kinds.
func (wq wireQuery) toQuery() (Query, error) {
	q := Query{
		Op:          Op(wq.Op),
		Ring:        core.Ring(wq.Ring),
		Segment:     wq.Segment,
		Segno:       wq.Segno,
		Wordno:      wq.Wordno,
		SameSegment: wq.SameSegment,
		Chain:       wq.Chain,
	}
	if wq.EffRing != nil {
		r := core.Ring(*wq.EffRing)
		q.EffRing = &r
	}
	switch wq.Kind {
	case "", "read":
		q.Kind = core.AccessRead
	case "write":
		q.Kind = core.AccessWrite
	case "execute", "fetch":
		q.Kind = core.AccessExecute
	default:
		return q, fmt.Errorf("unknown access kind %q", wq.Kind)
	}
	return q, nil
}

type checkRequest struct {
	Queries []wireQuery `json:"queries"`
}

type checkResponse struct {
	Decisions []Decision `json:"decisions"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req checkRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	queries := make([]Query, len(req.Queries))
	for i, wq := range req.Queries {
		q, err := wq.toQuery()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("query %d: %v", i, err)})
			return
		}
		queries[i] = q
	}
	ds, err := s.svc.Submit(r.Context(), queries)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrBatchTooLarge):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	case err != nil:
		// Context cancellation: the client went away.
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, checkResponse{Decisions: ds})
}

// mutateRequest is the JSON form of a supervisor mutation.
type mutateRequest struct {
	// Op is "setbrackets", "revoke" or "restore".
	Op      string `json:"op"`
	Segment string `json:"segment,omitempty"`
	Segno   uint32 `json:"segno,omitempty"`

	// setbrackets fields.
	Read    bool   `json:"read,omitempty"`
	Write   bool   `json:"write,omitempty"`
	Execute bool   `json:"execute,omitempty"`
	R1      uint8  `json:"r1,omitempty"`
	R2      uint8  `json:"r2,omitempty"`
	R3      uint8  `json:"r3,omitempty"`
	Gates   uint32 `json:"gates,omitempty"`
}

type mutateResponse struct {
	OK      bool   `json:"ok"`
	Version uint64 `json:"version"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	st := s.svc.Store()
	segno := req.Segno
	if req.Segment != "" {
		n, ok := st.Segno(req.Segment)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown segment %q", req.Segment)})
			return
		}
		segno = n
	}
	var err error
	switch req.Op {
	case "setbrackets":
		b := core.Brackets{R1: core.Ring(req.R1), R2: core.Ring(req.R2), R3: core.Ring(req.R3)}
		if verr := b.Validate(); verr != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: verr.Error()})
			return
		}
		err = st.SetBrackets(segno, req.Read, req.Write, req.Execute, b, req.Gates)
	case "revoke":
		err = st.Revoke(segno)
	case "restore":
		err = st.Restore(segno)
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown mutation op %q", req.Op)})
		return
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, mutateResponse{OK: true, Version: st.Version()})
}

type healthResponse struct {
	OK       bool   `json:"ok"`
	Workers  int    `json:"workers"`
	Segments int    `json:"segments"`
	Shards   int    `json:"shards"`
	Version  uint64 `json:"version"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		OK:       true,
		Workers:  s.svc.Workers(),
		Segments: len(s.svc.Store().Segments()),
		Shards:   s.svc.Store().Shards(),
		Version:  s.svc.Store().Version(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Snapshot())
}
