package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := NewServer(svc)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out.Bytes()
}

func decode(t *testing.T, data []byte, v interface{}) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("decode %s: %v", data, err)
	}
}

// TestHTTPCheck drives a mixed batch through POST /v1/check.
func TestHTTPCheck(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	req := checkRequest{Queries: []wireQuery{
		{Op: "access", Ring: 4, Segment: "data", Wordno: 3, Kind: "read"},
		{Op: "access", Ring: 5, Segment: "data", Kind: "read"},
		{Op: "access", Ring: 2, Segment: "data", Kind: "write"},
		{Op: "call", Ring: 4, Segment: "code", Wordno: 1},
		{Op: "return", Ring: 2, Segment: "code", EffRing: func() *uint8 { r := uint8(3); return &r }()},
		{Op: "effring", Ring: 2, Chain: []ChainStep{{PR: true, Ring: 3}}},
	}}
	resp, body := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out checkResponse
	decode(t, body, &out)
	if len(out.Decisions) != len(req.Queries) {
		t.Fatalf("got %d decisions, want %d", len(out.Decisions), len(req.Queries))
	}
	wantAllowed := []bool{true, false, true, true, true, true}
	for i, d := range out.Decisions {
		if d.Err != "" {
			t.Errorf("decision %d: err %q", i, d.Err)
		}
		if d.Allowed != wantAllowed[i] {
			t.Errorf("decision %d: allowed=%v, want %v (%+v)", i, d.Allowed, wantAllowed[i], d)
		}
	}
	if out.Decisions[1].Violation != "outside read bracket" {
		t.Errorf("decision 1 violation = %q", out.Decisions[1].Violation)
	}
	if out.Decisions[3].Outcome != "downward call" || out.Decisions[3].NewRing != 3 {
		t.Errorf("decision 3: %+v", out.Decisions[3])
	}
}

// TestHTTPCheckErrors covers the 4xx paths of /v1/check.
func TestHTTPCheckErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, BatchLimit: 2})

	resp, err := http.Get(ts.URL + "/v1/check")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/check: status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/check", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d, want 400", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/check", checkRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", resp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/v1/check", checkRequest{Queries: []wireQuery{
		{Op: "access", Ring: 1, Segment: "data", Kind: "sniff"},
	}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400: %s", resp.StatusCode, body)
	}

	over := checkRequest{Queries: make([]wireQuery, 3)}
	for i := range over.Queries {
		over.Queries[i] = wireQuery{Op: "access", Ring: 1, Segment: "data"}
	}
	resp, _ = postJSON(t, ts.URL+"/v1/check", over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPBackpressure fills the queue behind a held worker and checks
// the 429 + Retry-After contract.
func TestHTTPBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	svc := srv.Service()
	hold := make(chan struct{})
	ack := make(chan struct{}, 4)
	svc.hold, svc.holdAck = hold, ack
	var once sync.Once
	release := func() { once.Do(func() { close(hold) }) }
	defer release() // a Fatal below must not leave the server's Close waiting on a parked worker

	req := checkRequest{Queries: []wireQuery{{Op: "access", Ring: 3, Segment: "data"}}}
	results := make(chan int, 2)
	post := func() {
		resp, _ := postJSON(t, ts.URL+"/v1/check", req)
		results <- resp.StatusCode
	}

	go post()
	<-ack // worker parked on the first batch; it cannot race the next one
	go post()
	waitFor(t, "second batch to queue", func() bool { return svc.QueueLen() == 1 })

	resp, body := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	release()
	for i := 0; i < 2; i++ {
		select {
		case code := <-results:
			if code != http.StatusOK {
				t.Errorf("held request %d: status %d", i, code)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("held requests did not complete after release")
		}
	}
}

// TestHTTPMutate exercises /v1/mutate and observes the effect through
// /v1/check.
func TestHTTPMutate(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	check := func(wantAllowed bool) {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/v1/check", checkRequest{Queries: []wireQuery{
			{Op: "access", Ring: 4, Segment: "data", Kind: "read"},
		}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("check: status %d: %s", resp.StatusCode, body)
		}
		var out checkResponse
		decode(t, body, &out)
		if out.Decisions[0].Allowed != wantAllowed {
			t.Fatalf("allowed=%v, want %v: %+v", out.Decisions[0].Allowed, wantAllowed, out.Decisions[0])
		}
	}

	check(true) // ring 4 is inside data's read bracket (R2=4)

	// Narrow the read bracket to ring 1: same flags, new brackets.
	resp, body := postJSON(t, ts.URL+"/v1/mutate", mutateRequest{
		Op: "setbrackets", Segment: "data", Read: true, Write: true, R1: 1, R2: 1, R3: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: status %d: %s", resp.StatusCode, body)
	}
	var mr mutateResponse
	decode(t, body, &mr)
	if !mr.OK || mr.Version != 2 {
		t.Fatalf("mutate response %+v, want OK at version 2", mr)
	}
	check(false) // every batch after the publish pins the new snapshot

	// Revoke, observe, restore, observe.
	if resp, body = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "revoke", Segment: "data"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("revoke: status %d: %s", resp.StatusCode, body)
	}
	check(false)
	if resp, body = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "restore", Segment: "data"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("restore: status %d: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "setbrackets", Segment: "data", Read: true, Write: true, R1: 2, R2: 4, R3: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("widen: status %d: %s", resp.StatusCode, body)
	}
	check(true)

	// Error paths: unknown segment (404), bad brackets, unknown op.
	resp, _ = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "revoke", Segment: "nonesuch"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown segment: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "setbrackets", Segment: "data", R1: 4, R2: 2, R3: 1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad brackets: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/mutate", mutateRequest{Op: "transmogrify", Segment: "data"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown op: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPHealthzAndMetrics checks the observability endpoints.
func TestHTTPHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if !hr.OK || hr.Workers != 3 || hr.Segments != 3 {
		t.Errorf("healthz %+v", hr)
	}

	// Some traffic, then metrics.
	req := checkRequest{Queries: []wireQuery{
		{Op: "access", Ring: 4, Segment: "data", Kind: "read"},
		{Op: "access", Ring: 7, Segment: "secret", Kind: "read"},
	}}
	for i := 0; i < 4; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/check", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("check: status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	resp.Body.Close()
	if snap.Batches != 4 || snap.Queries != 8 || snap.Allowed != 4 || snap.Denied != 4 {
		t.Errorf("metrics counts: %+v", snap)
	}
	if snap.Reads.Pins == 0 || snap.Reads.Lookups == 0 {
		t.Error("metrics report no snapshot-read activity")
	}
	if len(snap.LatencyNs) == 0 {
		t.Error("metrics report no latency buckets")
	}
	if snap.Faults["outside_read_bracket"] != 4 {
		t.Errorf("faults: %v", snap.Faults)
	}
}

// TestHTTPGracefulShutdown checks that a closed service answers 503.
func TestHTTPGracefulShutdown(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	req := checkRequest{Queries: []wireQuery{{Op: "access", Ring: 3, Segment: "data"}}}
	if resp, body := postJSON(t, ts.URL+"/v1/check", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-close check: status %d: %s", resp.StatusCode, body)
	}
	srv.Close()
	resp, body := postJSON(t, ts.URL+"/v1/check", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-close check: status %d, want 503: %s", resp.StatusCode, body)
	}
	var er errorResponse
	decode(t, body, &er)
	if er.Error == "" {
		t.Error("503 without error body")
	}
}

// TestWireQueryRoundTrip pins the JSON field names of the wire format.
func TestWireQueryRoundTrip(t *testing.T) {
	eff := uint8(3)
	wq := wireQuery{Op: "call", Ring: 4, Segment: "code", Wordno: 1, Kind: "execute",
		EffRing: &eff, SameSegment: true, Chain: []ChainStep{{PR: true, Ring: 2}}}
	buf, err := json.Marshal(wq)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"op"`, `"ring"`, `"segment"`, `"wordno"`, `"kind"`, `"eff_ring"`, `"same_segment"`, `"chain"`} {
		if !bytes.Contains(buf, []byte(field)) {
			t.Errorf("wire JSON %s missing field %s", buf, field)
		}
	}
	var back wireQuery
	decode(t, buf, &back)
	q, err := back.toQuery()
	if err != nil {
		t.Fatal(err)
	}
	if q.Op != OpCall || q.Ring != 4 || *q.EffRing != 3 || !q.SameSegment {
		t.Errorf("round trip lost fields: %+v", q)
	}
}
