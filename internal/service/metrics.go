package service

import (
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/trace"
)

// violationKinds is the number of distinct ViolationKind values.
const violationKinds = core.ViolationKindCount

// latencyBuckets is the number of power-of-two latency histogram
// buckets; bucket i counts batches whose queue-to-completion latency
// lay in [2^i, 2^(i+1)) nanoseconds.
const latencyBuckets = 32

// Metrics is the service's always-on instrumentation: decision counts,
// faults by kind, backpressure rejections, and a power-of-two latency
// histogram. All counters are atomic; readers see a monitoring-grade
// (not transactionally consistent) view.
type Metrics struct {
	batches  atomic.Uint64
	queries  atomic.Uint64
	rejected atomic.Uint64
	allowed  atomic.Uint64
	denied   atomic.Uint64
	errors   atomic.Uint64
	trapped  atomic.Uint64

	opAccess  atomic.Uint64
	opCall    atomic.Uint64
	opReturn  atomic.Uint64
	opEffRing atomic.Uint64
	opOther   atomic.Uint64

	faults  [violationKinds]atomic.Uint64
	latency [latencyBuckets]atomic.Uint64
}

func newMetrics() *Metrics { return &Metrics{} }

// count tallies one decision.
func (m *Metrics) count(op Op, d *Decision) {
	m.queries.Add(1)
	switch op {
	case OpAccess:
		m.opAccess.Add(1)
	case OpCall:
		m.opCall.Add(1)
	case OpReturn:
		m.opReturn.Add(1)
	case OpEffRing:
		m.opEffRing.Add(1)
	default:
		m.opOther.Add(1)
	}
	switch {
	case d.Err != "":
		m.errors.Add(1)
	case d.Allowed:
		m.allowed.Add(1)
		if d.Trapped {
			m.trapped.Add(1)
		}
	default:
		m.denied.Add(1)
		if k := int(d.ViolationKind); k >= 0 && k < violationKinds {
			m.faults[k].Add(1)
		}
	}
}

// observe tallies one completed batch and its queue-to-completion
// latency.
func (m *Metrics) observe(b *batch) {
	m.batches.Add(1)
	ns := time.Since(b.enqueued).Nanoseconds()
	bucket := 0
	for v := ns; v > 1 && bucket < latencyBuckets-1; v >>= 1 {
		bucket++
	}
	m.latency[bucket].Add(1)
}

// LatencyBucket is one non-empty histogram bucket.
type LatencyBucket struct {
	// LoNs and HiNs bound the bucket: [LoNs, HiNs) nanoseconds.
	LoNs  int64  `json:"lo_ns"`
	HiNs  int64  `json:"hi_ns"`
	Count uint64 `json:"count"`
}

// ReaderSnapshot reports one worker's snapshot-read counters: how
// many times it pinned a shard snapshot (once per consulted shard per
// batch) and how many descriptor lookups those pins served. A high
// Lookups/Pins ratio is the snapshot-era analogue of a high cache hit
// rate — many decisions amortized over one atomic pointer load.
type ReaderSnapshot struct {
	Pins    uint64 `json:"pins"`
	Lookups uint64 `json:"lookups"`
}

// Snapshot is one /metrics observation.
type Snapshot struct {
	Workers  int    `json:"workers"`
	QueueLen int    `json:"queue_len"`
	QueueCap int    `json:"queue_cap"`
	Version  uint64 `json:"version"`
	Batches  uint64 `json:"batches"`
	Queries  uint64 `json:"queries"`
	Rejected uint64 `json:"rejected"`
	Allowed  uint64 `json:"allowed"`
	Denied   uint64 `json:"denied"`
	Errors   uint64 `json:"errors"`
	Trapped  uint64 `json:"trapped"`
	// Ops counts queries per operation.
	Ops map[string]uint64 `json:"ops"`
	// Faults counts denials per architectural violation kind.
	Faults map[string]uint64 `json:"faults"`
	// RCU reports the descriptor store's snapshot-publication
	// machinery: publishes, buffer reuse, reclamation, and current
	// retired/free list sizes (see rcu.go).
	RCU RCUSnapshot `json:"rcu"`
	// Reads sums the per-worker snapshot-read counters.
	Reads ReaderSnapshot `json:"reads"`
	// PerWorkerReads lists each worker's own counters (one decision
	// worker each).
	PerWorkerReads []ReaderSnapshot `json:"per_worker_reads"`
	// Events tallies trace events by kind across all workers, fed from
	// the zero-alloc mmu.Sink each worker's unit records into.
	Events map[string]uint64 `json:"events"`
	// LatencyNs is the non-empty part of the batch latency histogram.
	LatencyNs []LatencyBucket `json:"latency_ns"`
}

// metricKey normalizes a human-readable name into the snake_case key
// space the rest of /metrics uses: core.ViolationKind strings carry
// spaces ("outside read bracket") and trace.Kind strings hyphens
// ("ring-switch"), while every struct field marshals as snake_case.
// The map keys in Faults and Events go through this so one /metrics
// document never mixes naming styles. Decision.Violation on the
// /v1/check wire keeps the human-readable form.
func metricKey(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '-':
			return '_'
		}
		return r
	}, s)
}

// Metrics returns the service's counters (live; reads are atomic).
func (s *Service) Metrics() *Metrics { return s.metrics }

// Events returns the shared trace-event counters every worker's MMU
// records into.
func (s *Service) Events() *trace.AtomicCounters { return s.events }

// ReadStats sums the workers' published snapshot-read counters.
func (s *Service) ReadStats() ReaderSnapshot {
	var sum ReaderSnapshot
	for _, w := range s.workers {
		w.statsMu.Lock()
		st := w.published
		w.statsMu.Unlock()
		sum.Pins += st.Pins
		sum.Lookups += st.Lookups
	}
	return sum
}

// Snapshot assembles the full /metrics view.
func (s *Service) Snapshot() Snapshot {
	m := s.metrics
	snap := Snapshot{
		Workers:  len(s.workers),
		QueueLen: len(s.queue),
		QueueCap: cap(s.queue),
		Version:  s.store.Version(),
		Batches:  m.batches.Load(),
		Queries:  m.queries.Load(),
		Rejected: m.rejected.Load(),
		Allowed:  m.allowed.Load(),
		Denied:   m.denied.Load(),
		Errors:   m.errors.Load(),
		Trapped:  m.trapped.Load(),
		Ops: map[string]uint64{
			string(OpAccess):  m.opAccess.Load(),
			string(OpCall):    m.opCall.Load(),
			string(OpReturn):  m.opReturn.Load(),
			string(OpEffRing): m.opEffRing.Load(),
		},
		Faults: map[string]uint64{},
		Events: map[string]uint64{},
	}
	if n := m.opOther.Load(); n > 0 {
		snap.Ops["other"] = n
	}
	for k := 0; k < violationKinds; k++ {
		if n := m.faults[k].Load(); n > 0 {
			snap.Faults[metricKey(core.ViolationKind(k).String())] = n
		}
	}
	for k := 0; k < trace.KindCount; k++ {
		if n := s.events.Of(trace.Kind(k)); n > 0 {
			snap.Events[metricKey(trace.Kind(k).String())] = n
		}
	}
	snap.RCU = s.store.RCUStats()
	for _, w := range s.workers {
		w.statsMu.Lock()
		st := w.published
		w.statsMu.Unlock()
		snap.Reads.Pins += st.Pins
		snap.Reads.Lookups += st.Lookups
		snap.PerWorkerReads = append(snap.PerWorkerReads, st)
	}
	for i := 0; i < latencyBuckets; i++ {
		if n := m.latency[i].Load(); n > 0 {
			lo := int64(1) << i
			if i == 0 {
				lo = 0
			}
			snap.LatencyNs = append(snap.LatencyNs, LatencyBucket{
				LoNs: lo, HiNs: int64(1) << (i + 1), Count: n,
			})
		}
	}
	return snap
}
