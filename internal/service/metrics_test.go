package service

import (
	"context"
	"encoding/json"
	"regexp"
	"testing"

	"repro/internal/core"
)

// snakeKey is the one naming style /metrics speaks: lower-case words
// joined by underscores.
var snakeKey = regexp.MustCompile(`^[a-z0-9]+(_[a-z0-9]+)*$`)

// collectKeys walks a decoded JSON document and gathers every object
// key.
func collectKeys(v interface{}, out map[string]bool) {
	switch x := v.(type) {
	case map[string]interface{}:
		for k, sub := range x {
			out[k] = true
			collectKeys(sub, out)
		}
	case []interface{}:
		for _, sub := range x {
			collectKeys(sub, out)
		}
	}
}

// TestMetricsKeysAreSnakeCase pins the /metrics key space: every key,
// including the dynamic fault and event map keys that once leaked
// their human-readable spellings ("outside read bracket",
// "ring-switch"), is snake_case.
func TestMetricsKeysAreSnakeCase(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	// Traffic that populates faults (a read-bracket denial) and trace
	// events (validations, a ring switch via CALL).
	qs := []Query{
		{Op: OpAccess, Ring: 7, Segment: "secret", Kind: core.AccessRead},
		{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},
	}
	if _, err := svc.Submit(context.Background(), qs); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := svc.Snapshot()
	if len(snap.Faults) == 0 || len(snap.Events) == 0 {
		t.Fatalf("traffic did not populate faults (%v) or events (%v)", snap.Faults, snap.Events)
	}

	buf, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	var doc interface{}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("unmarshal snapshot: %v", err)
	}
	keys := map[string]bool{}
	collectKeys(doc, keys)
	if len(keys) == 0 {
		t.Fatal("no keys collected")
	}
	for k := range keys {
		if !snakeKey.MatchString(k) {
			t.Errorf("metrics key %q is not snake_case", k)
		}
	}
	if snap.Faults[metricKey(core.ViolationReadBracket.String())] != 1 {
		t.Errorf("normalized fault key missing: %v", snap.Faults)
	}
}

// TestMetricKey covers the normalization itself.
func TestMetricKey(t *testing.T) {
	cases := map[string]string{
		"outside read bracket": "outside_read_bracket",
		"ring-switch":          "ring_switch",
		"validate":             "validate",
	}
	for in, want := range cases {
		if got := metricKey(in); got != want {
			t.Errorf("metricKey(%q) = %q, want %q", in, got, want)
		}
	}
}
