package service

import (
	"math/bits"
	"sync/atomic"

	"repro/internal/seg"
)

// RCU snapshot publication.
//
// The paper's validation hardware never locks the descriptor segment:
// a reference is checked against whatever descriptor words the
// processor observes. This file takes the software consequence
// seriously — access validation is a pure function of descriptor
// state, so the store publishes that state as immutable per-shard
// snapshots and decision workers evaluate against a snapshot without
// ever acquiring a lock.
//
// Lifecycle of a shard snapshot:
//
//  1. Build. A mutator, holding the shard mutex with the shard epoch
//     odd, applies its edit to the descriptor segment in core through
//     StoreSDW (core stays authoritative for the CPU-simulator path),
//     then copies the current snapshot's SDW table into a buffer —
//     reused from the shard free list when one is available — and
//     folds in the edited descriptor.
//  2. Publish. One atomic pointer store makes the new table, stamped
//     with the closing (even) epoch, the shard's current snapshot.
//     The predecessor is retired, recording its successor's
//     publication epoch as its retireEpoch.
//  3. Grace period. A retired snapshot may still be pinned by a
//     reader whose announced epoch predates the retirement; its
//     buffer must not be written until every such reader has moved
//     on. The rule: a retired snapshot has passed its grace period
//     once every registered reader is either quiescent (slot 0) or
//     announced an epoch ≥ its retireEpoch. (The garbage collector
//     backstops correctness either way — the grace period gates
//     buffer reuse, not memory safety.)
//  4. Reclaim. Mutators scan the reader slots after each publish
//     (still under the shard mutex); buffers of snapshots past their
//     grace period return to the shard free list and are reused by a
//     later publish. Both the retired list and the free list are
//     bounded; overflow is dropped to the garbage collector and
//     counted.
//
// Readers follow the classical epoch-RCU announcement protocol,
// per shard: announce slot[sh] = shardEpoch + 1 (0 means quiescent),
// then load the snapshot pointer. Because the announcement precedes
// the pointer load and the epoch never decreases, a reader observed
// holding snapshot S with announcement a satisfies a-1 < S.retireEpoch
// whenever S is still retired-but-unreclaimed; conversely any
// announcement made at or after the successor's publication has
// a-1 ≥ S.retireEpoch and can only have loaded the successor (or
// newer). All the atomics involved are Go sync/atomic operations, so
// the race detector sees the synchronization edges: a buffer reused
// before its grace period would be a reported data race, which is what
// the -race reclamation tests lean on.
//
// Decision.VersionLo/VersionHi under snapshots: a pinned decision
// reports the (even) publication epoch of the snapshot it consulted,
// as a degenerate interval Lo == Hi. Every concurrent decision is
// therefore a clean snapshot in the T12/T13 sense — explainable at
// exactly one state of the consulted shard.

// snapshot is one immutable published view of a shard's descriptors:
// sdws[k] is the descriptor of segment number shardIndex + k*Shards
// (zero value, Present false, for segments never defined). Once
// published a snapshot is never written again until its buffer has
// been reclaimed through a grace period.
type snapshot struct {
	// epoch is the owning shard's (even) mutation epoch at
	// publication.
	epoch uint64
	sdws  []seg.SDW
	// retireEpoch is the publication epoch of the successor snapshot,
	// set under the shard mutex when this snapshot is retired. Zero
	// while the snapshot is current.
	retireEpoch uint64
}

// Retired- and free-list bounds per shard. Sized for the steady state
// — a mutation burst against a stalled reader overflows retiredCap
// and the overflow is dropped to the garbage collector (counted in
// RCUSnapshot.Dropped) rather than accumulating without bound.
const (
	retiredCap  = 8
	freeListCap = 4
)

// reader is one registered read-side of the store: a decision
// worker's epoch-counted announcement slots plus its per-batch pinned
// snapshots. It implements mmu.SDWSource, so a worker MMU pointed at
// its reader resolves every descriptor fetch from the pinned
// snapshots. All fields except slots are owned by the reader's
// goroutine; slots are written by the owner and scanned by mutators
// during reclamation.
type reader struct {
	st *Store
	// slots[i] is this reader's announcement for shard i: 0 when
	// quiescent, e+1 after observing shard epoch e and before
	// loading the snapshot pointer. Mutators compare announcements
	// against retireEpochs to decide reclamation.
	slots []atomic.Uint64
	// views[i] is the snapshot pinned for shard i in the current
	// batch; nil when not yet pinned this batch.
	views []*snapshot
	// pins and lookups count snapshot pins and descriptor lookups —
	// owner-private hot-path counters, copied out under the worker's
	// statsMu for /metrics.
	pins, lookups uint64
}

// pin returns the snapshot this reader uses for shard sh, announcing
// and loading it on first use in the current batch. The announcement
// (slot = observed epoch + 1) strictly precedes the pointer load;
// see the file comment for why that ordering makes reclamation safe.
// No locks, no allocations: two atomic operations on first use per
// shard per batch, a plain slice read afterwards.
//
//ring:hotpath
//ring:pins
func (r *reader) pin(sh int) *snapshot {
	if s := r.views[sh]; s != nil {
		return s
	}
	shd := &r.st.shards[sh]
	r.slots[sh].Store(shd.epoch.Load() + 1)
	s := shd.snap.Load()
	r.views[sh] = s
	r.pins++
	return s
}

// unpin ends the batch: drop every pinned view and zero the
// announcement slots so mutators can reclaim past snapshots.
//
//ring:hotpath
func (r *reader) unpin() {
	for i := range r.views {
		if r.views[i] == nil {
			continue
		}
		r.views[i] = nil
		r.slots[i].Store(0)
	}
}

// pinSum pins every shard in mask (a bit per shard index) and returns
// the sum of the pinned epochs — the store-wide version analogue for
// effring chains spanning several shards.
//
//ring:hotpath
//ring:pins
func (r *reader) pinSum(mask uint64) uint64 {
	var sum uint64
	for mask != 0 {
		i := bits.TrailingZeros64(mask)
		mask &^= 1 << i
		sum += r.pin(i).epoch
	}
	return sum
}

// LookupSDW implements mmu.SDWSource over the pinned snapshots:
// shard-route the segment number, pin that shard's snapshot if this
// batch has not yet, and index the immutable SDW table. Segment
// numbers beyond the table (or the architectural maximum) are absent,
// matching seg.Table.Fetch.
//
//ring:hotpath
//ring:pins
func (r *reader) LookupSDW(segno uint32) (seg.SDW, error) {
	r.lookups++
	if segno > seg.MaxSegno {
		return seg.SDW{}, nil
	}
	s := r.pin(int(segno & r.st.shardMask))
	idx := int(segno >> r.st.shardBits)
	if idx >= len(s.sdws) {
		return seg.SDW{}, nil
	}
	return s.sdws[idx], nil
}

// newReader registers a new read-side with the store. Readers are
// expected to be long-lived (one per decision worker); registration
// copies the reader list so reclamation scans traverse an immutable
// slice without locking.
func (st *Store) newReader() *reader {
	r := &reader{
		st:    st,
		slots: make([]atomic.Uint64, len(st.shards)),
		views: make([]*snapshot, len(st.shards)),
	}
	st.readersMu.Lock()
	defer st.readersMu.Unlock()
	old := *st.readers.Load()
	next := make([]*reader, len(old)+1)
	copy(next, old)
	next[len(old)] = r
	st.readers.Store(&next)
	return r
}

// releaseReader unregisters r (idempotent). A released reader no
// longer delays reclamation.
func (st *Store) releaseReader(r *reader) {
	st.readersMu.Lock()
	defer st.readersMu.Unlock()
	old := *st.readers.Load()
	next := make([]*reader, 0, len(old))
	for _, o := range old {
		if o != r {
			next = append(next, o)
		}
	}
	st.readers.Store(&next)
}

// publishLocked builds and publishes the successor snapshot of shard
// index shi after a successful descriptor edit of segno, then retires
// the predecessor and attempts reclamation. Caller holds sh.mu with
// the shard epoch odd; epoch is the closing (even) epoch the new
// snapshot is stamped with.
//
//ring:locked mu
func (st *Store) publishLocked(shi int, segno uint32, epoch uint64) error {
	sh := &st.shards[shi]
	old := sh.snap.Load()
	buf := sh.takeBufLocked(len(old.sdws))
	copy(buf, old.sdws)
	sdw, err := sh.sup.FetchSDW(segno) // re-read the edited descriptor from core
	if err != nil {
		// Core is unreadable — a simulator integrity fault. Return the
		// buffer and leave the old snapshot current.
		sh.putBufLocked(buf)
		return err
	}
	if idx := int(segno >> st.shardBits); idx < len(buf) {
		buf[idx] = sdw
	}
	next := &snapshot{epoch: epoch, sdws: buf}
	old.retireEpoch = epoch
	sh.snap.Store(next)
	sh.retired = append(sh.retired, old)
	sh.stats.publishes.Add(1)
	if len(sh.retired) > retiredCap {
		// Drop the oldest to the garbage collector rather than growing
		// without bound under a stalled reader.
		n := copy(sh.retired, sh.retired[1:])
		sh.retired[n] = nil
		sh.retired = sh.retired[:n]
		sh.stats.dropped.Add(1)
	}
	st.reclaimLocked(shi)
	sh.stats.retired.Store(int64(len(sh.retired)))
	sh.stats.free.Store(int64(len(sh.free)))
	if hook := st.publishHook.Load(); hook != nil {
		// Still under sh.mu: hook calls for one shard arrive in strictly
		// increasing epoch order, so a shootdown always names the epoch
		// whose publication it follows.
		(*hook)(shi, segno, epoch)
	}
	return nil
}

// reclaimLocked scans the registered readers and recycles the buffers
// of retired snapshots of shard index shi whose grace period has
// passed: every reader is quiescent in this shard or has announced an
// epoch at or beyond the snapshot's retirement. Caller holds sh.mu.
//
//ring:locked mu
func (st *Store) reclaimLocked(shi int) {
	sh := &st.shards[shi]
	if len(sh.retired) == 0 {
		return
	}
	readers := *st.readers.Load()
	// Retirements are ordered by retireEpoch, so the minimum live
	// announcement bounds how far the scan can reclaim.
	floor := uint64(1<<64 - 1)
	for _, r := range readers {
		if a := r.slots[shi].Load(); a != 0 && a-1 < floor {
			floor = a - 1
		}
	}
	keep := sh.retired[:0]
	for _, s := range sh.retired {
		if s.retireEpoch <= floor {
			sh.putBufLocked(s.sdws)
			continue
		}
		keep = append(keep, s)
	}
	for i := len(keep); i < len(sh.retired); i++ {
		sh.retired[i] = nil
	}
	sh.retired = keep
}

// takeBufLocked returns an SDW buffer of length n, reusing the shard
// free list when possible. Caller holds sh.mu.
//
//ring:locked mu
func (sh *shard) takeBufLocked(n int) []seg.SDW {
	if len(sh.free) > 0 {
		buf := sh.free[len(sh.free)-1]
		sh.free[len(sh.free)-1] = nil
		sh.free = sh.free[:len(sh.free)-1]
		sh.stats.reused.Add(1)
		return buf[:n]
	}
	return make([]seg.SDW, n)
}

// putBufLocked returns a reclaimed buffer to the shard free list, or
// drops it to the garbage collector when the list is full. Caller
// holds sh.mu.
//
//ring:locked mu
func (sh *shard) putBufLocked(buf []seg.SDW) {
	if len(sh.free) < freeListCap {
		sh.free = append(sh.free, buf)
		sh.stats.recycled.Add(1)
		return
	}
	sh.stats.dropped.Add(1)
}

// RCUSnapshot reports the snapshot-publication machinery of the
// descriptor store, summed over shards. All counters are monotonic
// except Retired, Free and Readers, which are current sizes.
type RCUSnapshot struct {
	// Publishes counts snapshots published (one per completed
	// mutation).
	Publishes uint64 `json:"publishes"`
	// Reused counts publishes that reused a reclaimed SDW buffer
	// instead of allocating.
	Reused uint64 `json:"reused"`
	// Recycled counts buffers returned to a free list after their
	// grace period.
	Recycled uint64 `json:"recycled"`
	// Dropped counts retired snapshots or buffers handed to the
	// garbage collector because a bounded list was full.
	Dropped uint64 `json:"dropped"`
	// Retired is the current number of retired-but-unreclaimed
	// snapshots.
	Retired int `json:"retired"`
	// Free is the current number of reusable buffers.
	Free int `json:"free"`
	// Readers is the number of registered epoch-counted readers.
	Readers int `json:"readers"`
}

// RCUStats sums the per-shard snapshot counters. Lock-free: safe to
// call while a mutation is blocked mid-critical-section.
func (st *Store) RCUStats() RCUSnapshot {
	var out RCUSnapshot
	for i := range st.shards {
		s := &st.shards[i].stats
		out.Publishes += s.publishes.Load()
		out.Reused += s.reused.Load()
		out.Recycled += s.recycled.Load()
		out.Dropped += s.dropped.Load()
		out.Retired += int(s.retired.Load())
		out.Free += int(s.free.Load())
	}
	out.Readers = len(*st.readers.Load())
	return out
}
