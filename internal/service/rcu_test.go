package service

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/mmu"
)

// TestReaderPinsSnapshotAcrossMutationBurst is the grace-period test:
// a reader pins a shard snapshot and keeps it pinned while a mutation
// burst republishes the shard many times over. The pinned reader's
// decisions must stay bit-identical to its snapshot's (epoch-0) state
// throughout — and the store must not recycle a single buffer while
// the announcement is live, overflowing its bounded retired list to
// the garbage collector instead. Run under -race this is also the
// reclamation-safety test: a buffer reused before the reader moved on
// would be a write to memory the reader goroutine is still reading.
func TestReaderPinsSnapshotAcrossMutationBurst(t *testing.T) {
	const perScript = 20 // mutations per segment script; 3 scripts
	st, err := NewStore(StoreConfig{Shards: 1}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	rd := st.newReader()
	defer st.releaseReader(rd)
	u := st.newSnapshotMMU(mmu.Options{Validate: true}, rd)

	probes, _ := shardProbes()
	pre := make([]Decision, len(probes))
	for i := range probes {
		evalQuery(st, rd, u, &probes[i], &pre[i])
		if pre[i].VersionLo != 0 || pre[i].VersionHi != 0 {
			t.Fatalf("probe %d: pinned epoch interval [%d,%d], want [0,0]",
				i, pre[i].VersionLo, pre[i].VersionHi)
		}
	}

	// Burst phase: the reader goroutine re-decides continuously from its
	// pinned snapshot while this goroutine streams every script's edits
	// through the publish path.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range probes {
				var d Decision
				evalQuery(st, rd, u, &probes[i], &d)
				if d.VersionLo != 0 || d.VersionHi != 0 || stripDecision(d) != stripDecision(pre[i]) {
					t.Errorf("probe %d: pinned decision drifted mid-burst: %+v (interval [%d,%d])",
						i, stripDecision(d), d.VersionLo, d.VersionHi)
					return
				}
			}
		}
	}()
	for g := 0; g < 3; g++ {
		for _, m := range shardScript(uint32(g), perScript) {
			if err := m(st); err != nil {
				t.Errorf("mutation: %v", err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// With the announcement live at epoch 0, no retired snapshot ever
	// passes its grace period: nothing recycled, nothing reused, the
	// bounded retired list full and the overflow dropped.
	const burst = 3 * perScript
	s := st.RCUStats()
	if s.Publishes != burst {
		t.Fatalf("publishes = %d, want %d", s.Publishes, burst)
	}
	if s.Recycled != 0 || s.Reused != 0 || s.Free != 0 {
		t.Errorf("buffers recycled under a live pin: %+v", s)
	}
	if s.Retired != retiredCap || s.Dropped != burst-retiredCap {
		t.Errorf("retired list %d / dropped %d, want %d / %d: %+v",
			s.Retired, s.Dropped, retiredCap, burst-retiredCap, s)
	}

	// Unpin and mutate once more: every surviving retired snapshot is
	// past its grace period, so the free list fills (and its overflow is
	// dropped).
	rd.unpin()
	if err := st.SetBrackets(0, true, true, false, testSegments()[0].Brackets, 0); err != nil {
		t.Fatalf("post-unpin mutation: %v", err)
	}
	s = st.RCUStats()
	if s.Retired != 0 || s.Recycled != freeListCap || s.Free != freeListCap {
		t.Errorf("reclamation after unpin: retired=%d recycled=%d free=%d, want 0/%d/%d",
			s.Retired, s.Recycled, s.Free, freeListCap, freeListCap)
	}

	// The next publish reuses a reclaimed buffer instead of allocating.
	if err := st.Revoke(1); err != nil {
		t.Fatalf("reuse mutation: %v", err)
	}
	if s = st.RCUStats(); s.Reused == 0 {
		t.Errorf("no buffer reuse after reclamation: %+v", s)
	}

	// The reader now pins the latest snapshot and sees every edit: the
	// "code" probe hits the revoked descriptor.
	var d Decision
	evalQuery(st, rd, u, &probes[4], &d)
	if want := st.ShardVersion(0); d.VersionLo != want || d.VersionHi != want {
		t.Errorf("fresh pin interval [%d,%d], want [%d,%d]", d.VersionLo, d.VersionHi, want, want)
	}
	if d.Allowed || d.ViolationKind != core.ViolationMissingSegment {
		t.Errorf("revoked segment still decides %+v through fresh snapshot", d)
	}
}

// TestReaderRegistration checks reader bookkeeping: registration is
// copy-on-write, release is idempotent, and a released reader no
// longer holds up reclamation.
func TestReaderRegistration(t *testing.T) {
	st, err := NewStore(StoreConfig{Shards: 1}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	a, b := st.newReader(), st.newReader()
	if got := st.RCUStats().Readers; got != 2 {
		t.Fatalf("registered readers = %d, want 2", got)
	}

	// Pin through a, retire a snapshot, and check a's announcement
	// blocks reclamation while b's idle slots do not.
	if _, err := a.LookupSDW(0); err != nil {
		t.Fatal(err)
	}
	if err := st.Revoke(0); err != nil {
		t.Fatal(err)
	}
	if s := st.RCUStats(); s.Retired != 1 || s.Recycled != 0 {
		t.Errorf("live pin did not hold the retired snapshot: %+v", s)
	}

	// Releasing a (even without unpinning) unblocks the next reclaim.
	st.releaseReader(a)
	st.releaseReader(a) // idempotent
	if got := st.RCUStats().Readers; got != 1 {
		t.Fatalf("registered readers after release = %d, want 1", got)
	}
	if err := st.Restore(0); err != nil {
		t.Fatal(err)
	}
	if s := st.RCUStats(); s.Recycled == 0 {
		t.Errorf("released reader still holds up reclamation: %+v", s)
	}
	st.releaseReader(b)
	if got := st.RCUStats().Readers; got != 0 {
		t.Fatalf("registered readers after both releases = %d, want 0", got)
	}
}
