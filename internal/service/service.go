package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/trace"
)

// Op names a protection query kind.
type Op string

const (
	// OpAccess validates a read, write or instruction-fetch reference.
	OpAccess Op = "access"
	// OpCall evaluates the CALL decision of Figure 8: gate list, bracket
	// placement, and the resulting ring switch.
	OpCall Op = "call"
	// OpReturn evaluates the RETURN decision of Figure 9.
	OpReturn Op = "return"
	// OpEffRing computes the effective ring of an address chain per
	// Figure 5: the running max over pointer-register and indirect-word
	// contributions.
	OpEffRing Op = "effring"
)

// ChainStep is one contribution to effective-ring formation.
type ChainStep struct {
	// PR marks a pointer-register contribution (TPR.RING :=
	// max(TPR.RING, PRn.RING)); otherwise the step is an indirect-word
	// retrieval from the segment Segno, contributing both the indirect
	// word's ring field and the container's R1.
	PR    bool   `json:"pr,omitempty"`
	Ring  Ring   `json:"ring"`
	Segno uint32 `json:"segno,omitempty"`
}

// Ring aliases core.Ring for the wire types.
type Ring = core.Ring

// Query is one protection question.
type Query struct {
	Op Op `json:"op"`
	// Ring is the ring of execution (IPR.RING) for access/call/return,
	// the starting effective ring for effring.
	Ring Ring `json:"ring"`
	// Segment names the target segment; when empty, Segno is used
	// directly (numbers at or beyond the descriptor bound decide as
	// missing segments, exactly as the hardware would).
	Segment string `json:"segment,omitempty"`
	Segno   uint32 `json:"segno,omitempty"`
	// Wordno is the target word number.
	Wordno uint32 `json:"wordno,omitempty"`
	// Kind selects the access kind for OpAccess.
	Kind core.AccessKind `json:"kind,omitempty"`
	// EffRing is the effective ring of the operand address (TPR.RING)
	// for call/return; nil means equal to Ring.
	EffRing *Ring `json:"eff_ring,omitempty"`
	// SameSegment marks a call whose target lies in the segment
	// containing the CALL itself (the gate list is then ignored).
	SameSegment bool `json:"same_segment,omitempty"`
	// Chain is the address chain for OpEffRing.
	Chain []ChainStep `json:"chain,omitempty"`
}

// Decision is the service's answer to one Query.
type Decision struct {
	// Allowed reports that the reference (or transfer) is permitted.
	Allowed bool `json:"allowed"`
	// Violation is the architectural violation kind when not allowed
	// (empty otherwise).
	Violation string `json:"violation,omitempty"`
	// ViolationKind is the machine-readable violation code.
	ViolationKind core.ViolationKind `json:"violation_kind,omitempty"`
	// Outcome reports the call/return classification ("same-ring call",
	// "downward call", ...) for OpCall/OpReturn.
	Outcome string `json:"outcome,omitempty"`
	// NewRing is the resulting ring: the ring of execution after a
	// call/return, or the final effective ring for OpEffRing.
	NewRing Ring `json:"new_ring,omitempty"`
	// Trapped reports an outcome the hardware does not automate (upward
	// call, downward return): allowed, but mediated by software.
	Trapped bool `json:"trapped,omitempty"`
	// Err reports a malformed query (unknown op, unknown segment name).
	Err string `json:"err,omitempty"`
	// VersionLo and VersionHi bracket the store mutation epoch the
	// decision was evaluated under: equal and even means a clean
	// snapshot at that version (see the package comment).
	VersionLo uint64 `json:"version_lo"`
	VersionHi uint64 `json:"version_hi"`
	// Worker is the index of the worker (simulated processor) that
	// evaluated the decision.
	Worker int `json:"worker"`
}

// Config sizes a Service.
type Config struct {
	// Workers is the number of decision workers, each with its own MMU
	// and SDW associative memory; default 4.
	Workers int
	// QueueDepth bounds the batch queue; a full queue rejects Submit
	// with ErrQueueFull (backpressure). Default 64.
	QueueDepth int
	// CacheSize is each worker's SDW associative memory size (power of
	// two; 0 disables). Default 64.
	CacheSize int
	// CacheSet forces CacheSize to be honoured even when zero.
	CacheSet bool
	// Validate disables ring validation when false and ValidateSet is
	// true (the T5 ablation, exposed for comparison runs).
	Validate    bool
	ValidateSet bool
	// BatchLimit caps the number of queries per submitted batch;
	// default 1024.
	BatchLimit int
}

// Service errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity: the caller should shed or retry (HTTP maps it to 429).
	ErrQueueFull = errors.New("service: decision queue full")
	// ErrClosed is returned by Submit after Close (HTTP maps it to 503).
	ErrClosed = errors.New("service: closed")
	// ErrBatchTooLarge is returned when one batch exceeds BatchLimit.
	ErrBatchTooLarge = errors.New("service: batch exceeds limit")
)

// batch is one queued unit of work.
type batch struct {
	queries  []Query
	resp     chan []Decision
	enqueued time.Time
}

// worker is one decision worker: a goroutine owning an MMU (and so an
// SDW associative memory) joined to the store's coherence group.
type worker struct {
	index int
	u     *mmu.MMU

	// statsMu guards published, the worker's cache counters copied out
	// after every batch so /metrics can read them without racing the
	// owner goroutine.
	statsMu   sync.Mutex
	published mmu.CacheStats
}

// Service is the concurrent protection-decision engine: a worker pool
// over one Store, fed by a bounded batch queue.
type Service struct {
	store   *Store
	cfg     Config
	queue   chan *batch
	workers []*worker
	events  *trace.AtomicCounters
	metrics *Metrics

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool
	wg     sync.WaitGroup

	// hold, when non-nil (tests), blocks each worker before every batch
	// until the channel is closed — a deterministic way to fill the
	// queue and exercise backpressure. A worker about to park first
	// sends on holdAck (if set), so a test can wait for the park itself
	// rather than inferring it from queue length.
	hold    chan struct{}
	holdAck chan struct{}
}

// New starts a Service over st: Config.Workers goroutines, each with
// its own MMU joined to the store's coherence group.
func New(st *Store, cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.CacheSize == 0 && !cfg.CacheSet {
		cfg.CacheSize = 64
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = 1024
	}
	opt := mmu.Options{Validate: true, CacheSize: cfg.CacheSize}
	if cfg.ValidateSet {
		opt.Validate = cfg.Validate
	}
	if err := opt.Check(); err != nil {
		return nil, err
	}
	s := &Service{
		store:   st,
		cfg:     cfg,
		queue:   make(chan *batch, cfg.QueueDepth),
		events:  &trace.AtomicCounters{},
		metrics: newMetrics(),
	}
	opt.Sink = s.events
	for i := 0; i < cfg.Workers; i++ {
		u, err := st.NewWorkerMMU(opt)
		if err != nil {
			return nil, err
		}
		w := &worker{index: i, u: u}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go s.run(w)
	}
	return s, nil
}

// Store returns the descriptor store the service decides against.
func (s *Service) Store() *Store { return s.store }

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return len(s.workers) }

// QueueDepth returns the queue capacity.
func (s *Service) QueueDepth() int { return cap(s.queue) }

// QueueLen returns the current number of queued batches.
func (s *Service) QueueLen() int { return len(s.queue) }

// Submit enqueues one batch of queries and waits for its decisions.
// When the bounded queue is full it fails fast with ErrQueueFull
// rather than blocking — the backpressure contract. A cancelled
// context abandons the wait (the batch still completes; its reply
// channel is buffered, so no worker blocks).
func (s *Service) Submit(ctx context.Context, queries []Query) ([]Decision, error) {
	if len(queries) > s.cfg.BatchLimit {
		return nil, fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(queries), s.cfg.BatchLimit)
	}
	b := &batch{queries: queries, resp: make(chan []Decision, 1), enqueued: time.Now()}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.queue <- b:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.metrics.rejected.Add(1)
		return nil, ErrQueueFull
	}

	select {
	case ds := <-b.resp:
		return ds, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops accepting work, lets the workers drain every queued
// batch, and waits for them to exit. Safe to call more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// run is one worker's loop: drain batches until the queue closes.
func (s *Service) run(w *worker) {
	defer s.wg.Done()
	for b := range s.queue {
		if s.hold != nil {
			if s.holdAck != nil {
				s.holdAck <- struct{}{}
			}
			<-s.hold
		}
		ds := make([]Decision, len(b.queries))
		for i := range b.queries {
			ds[i] = s.decide(w, &b.queries[i])
		}
		s.metrics.observe(b, ds)
		w.statsMu.Lock()
		w.published = w.u.CacheStats()
		w.statsMu.Unlock()
		b.resp <- ds
	}
}

// decide evaluates one query on worker w, bracketing it with the
// store's mutation epoch.
func (s *Service) decide(w *worker, q *Query) Decision {
	d := Decision{Worker: w.index}
	d.VersionLo = s.store.Version()
	s.eval(w, q, &d)
	d.VersionHi = s.store.Version()
	s.metrics.count(q.Op, &d)
	return d
}

// eval answers q into d using w's MMU.
func (s *Service) eval(w *worker, q *Query, d *Decision) {
	evalQuery(s.store, w.u, q, d)
}

// evalQuery answers q into d using unit u over store st — the whole
// decision procedure, shared by the concurrent workers and by
// single-threaded oracle replays (T12). Malformed queries set d.Err;
// architectural outcomes (violations, traps) are regular decisions.
func evalQuery(st *Store, u *mmu.MMU, q *Query, d *Decision) {
	segno := q.Segno
	if q.Segment != "" {
		n, ok := st.Segno(q.Segment)
		if !ok {
			d.Err = fmt.Sprintf("unknown segment %q", q.Segment)
			return
		}
		segno = n
	}
	if !q.Ring.Valid() {
		d.Err = fmt.Sprintf("invalid ring %d", q.Ring)
		return
	}

	switch q.Op {
	case OpAccess:
		sdw, err := u.FetchSDW(segno)
		if err != nil {
			d.Err = err.Error()
			return
		}
		v := sdw.View()
		var viol *core.Violation
		switch q.Kind {
		case core.AccessRead:
			viol = u.CheckRead(v, segno, q.Wordno, q.Ring)
		case core.AccessWrite:
			viol = u.CheckWrite(v, segno, q.Wordno, q.Ring)
		case core.AccessExecute:
			viol = u.CheckFetch(v, q.Wordno, q.Ring)
		default:
			d.Err = fmt.Sprintf("invalid access kind %d", q.Kind)
			return
		}
		d.setViolation(viol)

	case OpCall:
		effRing := q.Ring
		if q.EffRing != nil {
			effRing = *q.EffRing
		}
		if !effRing.Valid() {
			d.Err = fmt.Sprintf("invalid effective ring %d", effRing)
			return
		}
		sdw, err := u.FetchSDW(segno)
		if err != nil {
			d.Err = err.Error()
			return
		}
		dec, viol := u.DecideCall(sdw.View(), q.Wordno, q.Ring, effRing, q.SameSegment)
		if viol != nil {
			d.setViolation(viol)
			return
		}
		d.Allowed = true
		d.Outcome = dec.Outcome.String()
		d.NewRing = dec.NewRing
		d.Trapped = dec.Outcome == core.CallUpwardTrap

	case OpReturn:
		effRing := q.Ring
		if q.EffRing != nil {
			effRing = *q.EffRing
		}
		if !effRing.Valid() {
			d.Err = fmt.Sprintf("invalid effective ring %d", effRing)
			return
		}
		sdw, err := u.FetchSDW(segno)
		if err != nil {
			d.Err = err.Error()
			return
		}
		dec, viol := u.DecideReturn(sdw.View(), q.Wordno, q.Ring, effRing)
		if viol != nil {
			d.setViolation(viol)
			return
		}
		d.Allowed = true
		d.Outcome = dec.Outcome.String()
		d.NewRing = dec.NewRing
		d.Trapped = dec.Outcome == core.ReturnDownwardTrap

	case OpEffRing:
		eff := q.Ring
		for _, step := range q.Chain {
			if !step.Ring.Valid() {
				d.Err = fmt.Sprintf("invalid ring %d in chain", step.Ring)
				return
			}
			if step.PR {
				eff = core.EffectiveRingPR(eff, step.Ring)
				continue
			}
			sdw, err := u.FetchSDW(step.Segno)
			if err != nil {
				d.Err = err.Error()
				return
			}
			v := sdw.View()
			// The indirect word itself is read during effective address
			// formation, validated like any operand read (Figure 5).
			if viol := u.CheckRead(v, step.Segno, 0, eff); viol != nil {
				d.setViolation(viol)
				return
			}
			eff = core.EffectiveRingIndirect(eff, step.Ring, v.R1)
		}
		d.Allowed = true
		d.NewRing = eff

	default:
		d.Err = fmt.Sprintf("unknown op %q", q.Op)
	}
}

// setViolation fills the violation fields (allowed when viol is nil).
func (d *Decision) setViolation(viol *core.Violation) {
	if viol == nil {
		d.Allowed = true
		return
	}
	d.Allowed = false
	d.Violation = viol.Kind.String()
	d.ViolationKind = viol.Kind
}
