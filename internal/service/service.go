package service

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/mmu"
	"repro/internal/trace"
)

// Op names a protection query kind.
type Op string

const (
	// OpAccess validates a read, write or instruction-fetch reference.
	OpAccess Op = "access"
	// OpCall evaluates the CALL decision of Figure 8: gate list, bracket
	// placement, and the resulting ring switch.
	OpCall Op = "call"
	// OpReturn evaluates the RETURN decision of Figure 9.
	OpReturn Op = "return"
	// OpEffRing computes the effective ring of an address chain per
	// Figure 5: the running max over pointer-register and indirect-word
	// contributions.
	OpEffRing Op = "effring"
)

// ChainStep is one contribution to effective-ring formation.
type ChainStep struct {
	// PR marks a pointer-register contribution (TPR.RING :=
	// max(TPR.RING, PRn.RING)); otherwise the step is an indirect-word
	// retrieval from the segment Segno, contributing both the indirect
	// word's ring field and the container's R1.
	PR    bool   `json:"pr,omitempty"`
	Ring  Ring   `json:"ring"`
	Segno uint32 `json:"segno,omitempty"`
}

// Ring aliases core.Ring for the wire types.
type Ring = core.Ring

// Query is one protection question.
type Query struct {
	Op Op `json:"op"`
	// Ring is the ring of execution (IPR.RING) for access/call/return,
	// the starting effective ring for effring.
	Ring Ring `json:"ring"`
	// Segment names the target segment; when empty, Segno is used
	// directly (numbers at or beyond the descriptor bound decide as
	// missing segments, exactly as the hardware would).
	Segment string `json:"segment,omitempty"`
	Segno   uint32 `json:"segno,omitempty"`
	// Wordno is the target word number.
	Wordno uint32 `json:"wordno,omitempty"`
	// Kind selects the access kind for OpAccess.
	Kind core.AccessKind `json:"kind,omitempty"`
	// EffRing is the effective ring of the operand address (TPR.RING)
	// for call/return; nil means equal to Ring.
	EffRing *Ring `json:"eff_ring,omitempty"`
	// SameSegment marks a call whose target lies in the segment
	// containing the CALL itself (the gate list is then ignored).
	SameSegment bool `json:"same_segment,omitempty"`
	// Chain is the address chain for OpEffRing.
	Chain []ChainStep `json:"chain,omitempty"`
}

// Decision is the service's answer to one Query.
type Decision struct {
	// Allowed reports that the reference (or transfer) is permitted.
	Allowed bool `json:"allowed"`
	// Violation is the architectural violation kind when not allowed
	// (empty otherwise).
	Violation string `json:"violation,omitempty"`
	// ViolationKind is the machine-readable violation code.
	ViolationKind core.ViolationKind `json:"violation_kind,omitempty"`
	// Outcome reports the call/return classification ("same-ring call",
	// "downward call", ...) for OpCall/OpReturn.
	Outcome string `json:"outcome,omitempty"`
	// NewRing is the resulting ring: the ring of execution after a
	// call/return, or the final effective ring for OpEffRing.
	NewRing Ring `json:"new_ring,omitempty"`
	// Trapped reports an outcome the hardware does not automate (upward
	// call, downward return): allowed, but mediated by software.
	Trapped bool `json:"trapped,omitempty"`
	// Err reports a malformed query (unknown op, unknown segment name).
	Err string `json:"err,omitempty"`
	// VersionLo and VersionHi report the mutation epoch of the
	// descriptor-store shard the decision consulted. Decision workers
	// read RCU snapshots, so both fields carry the (even) publication
	// epoch of the pinned snapshot — a degenerate interval meaning a
	// clean snapshot of that shard at that version (see the package
	// comment). Single-threaded oracle replays against live core may
	// still report a widened (or odd) interval.
	VersionLo uint64 `json:"version_lo"`
	VersionHi uint64 `json:"version_hi"`
	// Shard is the shard whose epoch VersionLo/VersionHi refer to.
	// It is -1 when no single shard was consulted: a malformed query
	// (no versions reported) or an effring chain touching segments in
	// several shards — the interval then reports the sum of the
	// consulted shards' pinned snapshot epochs (the store-wide Version
	// analogue) instead.
	Shard int `json:"shard"`
	// Worker is the index of the worker (simulated processor) that
	// evaluated the decision.
	Worker int `json:"worker"`
}

// Config sizes a Service.
type Config struct {
	// Workers is the number of decision workers, each with its own MMU
	// reading the store's RCU descriptor snapshots; default 4.
	Workers int
	// QueueDepth bounds the batch queue; a full queue rejects Submit
	// with ErrQueueFull (backpressure). Default 64.
	QueueDepth int
	// Validate disables ring validation when false and ValidateSet is
	// true (the T5 ablation, exposed for comparison runs).
	Validate    bool
	ValidateSet bool
	// BatchLimit caps the number of queries per submitted batch;
	// default 1024.
	BatchLimit int
}

// Service errors.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity: the caller should shed or retry (HTTP maps it to 429).
	ErrQueueFull = errors.New("service: decision queue full")
	// ErrClosed is returned by Submit after Close (HTTP maps it to 503).
	ErrClosed = errors.New("service: closed")
	// ErrBatchTooLarge is returned when one batch exceeds BatchLimit.
	ErrBatchTooLarge = errors.New("service: batch exceeds limit")
)

// batch is one queued unit of work. Batch descriptors are pooled and
// their reply channels reused, so a steady submit/decide cycle runs
// without allocating; decisions are written into the caller-supplied
// dst slice in place.
type batch struct {
	queries  []Query
	dst      []Decision
	resp     chan struct{}
	enqueued time.Time
}

// worker is one decision worker: a goroutine owning an MMU whose
// descriptor fetches resolve from rd, its registered epoch-counted
// snapshot reader. The read path takes no locks: rd pins each
// consulted shard's snapshot once per batch (rcu.go).
type worker struct {
	index int
	u     *mmu.MMU
	rd    *reader

	// statsMu guards published, the worker's reader counters copied
	// out after every batch so /metrics can read them without racing
	// the owner goroutine.
	statsMu   sync.Mutex
	published ReaderSnapshot //ring:guarded statsMu
}

// Service is the concurrent protection-decision engine: a worker pool
// over one Store, fed by a bounded batch queue.
type Service struct {
	store     *Store
	cfg       Config
	queue     chan *batch
	workers   []*worker
	events    *trace.AtomicCounters
	metrics   *Metrics
	batchPool sync.Pool

	mu     sync.RWMutex // guards closed vs. queue sends
	closed bool         //ring:guarded mu
	wg     sync.WaitGroup

	// hold, when non-nil (tests), blocks each worker before every batch
	// until the channel is closed — a deterministic way to fill the
	// queue and exercise backpressure. A worker about to park first
	// sends on holdAck (if set), so a test can wait for the park itself
	// rather than inferring it from queue length.
	hold    chan struct{}
	holdAck chan struct{}
}

// New starts a Service over st: Config.Workers goroutines, each with
// its own MMU reading the store's RCU descriptor snapshots through a
// registered epoch-counted reader.
func New(st *Store, cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.BatchLimit <= 0 {
		cfg.BatchLimit = 1024
	}
	opt := mmu.Options{Validate: true}
	if cfg.ValidateSet {
		opt.Validate = cfg.Validate
	}
	s := &Service{
		store:   st,
		cfg:     cfg,
		queue:   make(chan *batch, cfg.QueueDepth),
		events:  &trace.AtomicCounters{},
		metrics: newMetrics(),
	}
	s.batchPool.New = func() any { return &batch{resp: make(chan struct{}, 1)} }
	opt.Sink = s.events
	for i := 0; i < cfg.Workers; i++ {
		rd := st.newReader()
		w := &worker{index: i, u: st.newSnapshotMMU(opt, rd), rd: rd}
		s.workers = append(s.workers, w)
		s.wg.Add(1)
		go s.run(w)
	}
	return s, nil
}

// Store returns the descriptor store the service decides against.
func (s *Service) Store() *Store { return s.store }

// Workers returns the worker-pool size.
func (s *Service) Workers() int { return len(s.workers) }

// QueueDepth returns the queue capacity.
func (s *Service) QueueDepth() int { return cap(s.queue) }

// QueueLen returns the current number of queued batches.
func (s *Service) QueueLen() int { return len(s.queue) }

// Submit enqueues one batch of queries and waits for its decisions.
// When the bounded queue is full it fails fast with ErrQueueFull
// rather than blocking — the backpressure contract. A cancelled
// context abandons the wait (the batch still completes; its reply
// channel is buffered, so no worker blocks).
func (s *Service) Submit(ctx context.Context, queries []Query) ([]Decision, error) {
	ds := make([]Decision, len(queries))
	if err := s.SubmitInto(ctx, queries, ds); err != nil {
		return nil, err
	}
	return ds, nil
}

// SubmitInto is the allocation-free form of Submit: decision i for
// queries[i] is written into dst[i], which must hold at least
// len(queries) elements. With the batch-descriptor pool warm, a
// SubmitInto round trip performs no heap allocation (guarded by
// TestSubmitIntoZeroAlloc).
//
// After a cancelled context the batch keeps running: the worker still
// writes into dst and signals the (buffered) reply channel, so nothing
// blocks, but the caller must treat dst as poisoned — discard it
// rather than passing it to another in-flight call.
//
//ring:hotpath
func (s *Service) SubmitInto(ctx context.Context, queries []Query, dst []Decision) error {
	if len(queries) > s.cfg.BatchLimit {
		//ring:allow rejected-batch path: the error itself is the allocation
		return fmt.Errorf("%w: %d > %d", ErrBatchTooLarge, len(queries), s.cfg.BatchLimit)
	}
	if len(dst) < len(queries) {
		//ring:allow caller-bug path: the error itself is the allocation
		return fmt.Errorf("service: destination holds %d decisions for %d queries", len(dst), len(queries))
	}
	b := s.batchPool.Get().(*batch)
	b.queries, b.dst, b.enqueued = queries, dst[:len(queries)], time.Now()

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.putBatch(b)
		return ErrClosed
	}
	select {
	case s.queue <- b:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.putBatch(b)
		s.metrics.rejected.Add(1)
		return ErrQueueFull
	}

	select {
	case <-b.resp:
		s.putBatch(b)
		return nil
	case <-ctx.Done():
		// Abandon the descriptor to the garbage collector: the worker
		// may still be writing through it.
		return ctx.Err()
	}
}

// putBatch drops a descriptor's references and returns it to the pool.
//
//ring:hotpath
func (s *Service) putBatch(b *batch) {
	b.queries, b.dst = nil, nil
	s.batchPool.Put(b)
}

// Close stops accepting work, lets the workers drain every queued
// batch, waits for them to exit, and unregisters their snapshot
// readers so they no longer delay store reclamation. Safe to call
// more than once.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
	for _, w := range s.workers {
		s.store.releaseReader(w.rd)
	}
}

// run is one worker's loop: drain batches until the queue closes.
// The loop body between taking a batch and signalling its reply is the
// decision hot path.
//
//ring:hotpath
func (s *Service) run(w *worker) {
	defer s.wg.Done()
	for b := range s.queue {
		if s.hold != nil {
			if s.holdAck != nil {
				s.holdAck <- struct{}{}
			}
			<-s.hold
		}
		for i := range b.queries {
			s.decide(w, &b.queries[i], &b.dst[i])
		}
		w.rd.unpin() // end of batch: quiesce so mutators can reclaim
		s.metrics.observe(b)
		w.statsMu.Lock()
		w.published = ReaderSnapshot{Pins: w.rd.pins, Lookups: w.rd.lookups}
		w.statsMu.Unlock()
		b.resp <- struct{}{}
	}
}

// decide evaluates one query on worker w into d, in place and without
// allocating (for well-formed queries).
//
//ring:hotpath
//ring:pins
func (s *Service) decide(w *worker, q *Query, d *Decision) {
	*d = Decision{Worker: w.index}
	evalQuery(s.store, w.rd, w.u, q, d)
	s.metrics.count(q.Op, d)
}

// intervalLo opens the epoch interval for a decision consulting shard
// sh: the pinned snapshot's publication epoch when reading through a
// reader (always even — a clean snapshot), the live shard epoch for
// oracle replays with rd == nil.
//
//ring:hotpath
//ring:pins
func intervalLo(st *Store, rd *reader, sh int) uint64 {
	if rd != nil {
		return rd.pin(sh).epoch
	}
	return st.ShardVersion(sh)
}

// intervalHi closes the interval opened by intervalLo: the pinned
// snapshot cannot change within a batch, so the reader form is
// degenerate (Hi == Lo); oracle replays re-read the live epoch.
//
//ring:hotpath
func intervalHi(st *Store, rd *reader, sh int, lo uint64) uint64 {
	if rd != nil {
		return lo
	}
	return st.ShardVersion(sh)
}

// evalQuery answers q into d using unit u over store st — the whole
// decision procedure, shared by the concurrent workers (rd non-nil:
// every descriptor fetch and epoch report resolves from rd's pinned
// RCU snapshots) and by single-threaded oracle replays (rd nil: live
// core reads bracketed by live epoch loads; T12 and the sharded
// differential test). Malformed queries set d.Err and report no epoch
// interval; architectural outcomes (violations, traps) are regular
// decisions stamped with the consulted shard's snapshot epoch.
//
//ring:hotpath
//ring:pins
func evalQuery(st *Store, rd *reader, u *mmu.MMU, q *Query, d *Decision) {
	d.Shard = -1
	segno := q.Segno
	if q.Segment != "" {
		n, ok := st.Segno(q.Segment)
		if !ok {
			//ring:allow malformed query: Err formatting is the cold path
			d.Err = fmt.Sprintf("unknown segment %q", q.Segment)
			return
		}
		segno = n
	}
	if !q.Ring.Valid() {
		//ring:allow malformed query: Err formatting is the cold path
		d.Err = fmt.Sprintf("invalid ring %d", q.Ring)
		return
	}

	switch q.Op {
	case OpAccess:
		switch q.Kind {
		case core.AccessRead, core.AccessWrite, core.AccessExecute:
		default:
			//ring:allow malformed query: Err formatting is the cold path
			d.Err = fmt.Sprintf("invalid access kind %d", q.Kind)
			return
		}
		sh := st.ShardOf(segno)
		d.Shard = sh
		d.VersionLo = intervalLo(st, rd, sh)
		kind, err := u.Access(segno, q.Wordno, q.Ring, q.Kind)
		d.VersionHi = intervalHi(st, rd, sh, d.VersionLo)
		if err != nil {
			d.Err = err.Error()
			return
		}
		d.setViolationKind(kind)

	case OpCall:
		effRing := q.Ring
		if q.EffRing != nil {
			effRing = *q.EffRing
		}
		if !effRing.Valid() {
			//ring:allow malformed query: Err formatting is the cold path
			d.Err = fmt.Sprintf("invalid effective ring %d", effRing)
			return
		}
		sh := st.ShardOf(segno)
		d.Shard = sh
		d.VersionLo = intervalLo(st, rd, sh)
		dec, kind, err := u.Call(segno, q.Wordno, q.Ring, effRing, q.SameSegment)
		d.VersionHi = intervalHi(st, rd, sh, d.VersionLo)
		if err != nil {
			d.Err = err.Error()
			return
		}
		if kind != core.ViolationNone {
			d.setViolationKind(kind)
			return
		}
		d.Allowed = true
		d.Outcome = dec.Outcome.String()
		d.NewRing = dec.NewRing
		d.Trapped = dec.Outcome == core.CallUpwardTrap

	case OpReturn:
		effRing := q.Ring
		if q.EffRing != nil {
			effRing = *q.EffRing
		}
		if !effRing.Valid() {
			//ring:allow malformed query: Err formatting is the cold path
			d.Err = fmt.Sprintf("invalid effective ring %d", effRing)
			return
		}
		sh := st.ShardOf(segno)
		d.Shard = sh
		d.VersionLo = intervalLo(st, rd, sh)
		dec, kind, err := u.Return(segno, q.Wordno, q.Ring, effRing)
		d.VersionHi = intervalHi(st, rd, sh, d.VersionLo)
		if err != nil {
			d.Err = err.Error()
			return
		}
		if kind != core.ViolationNone {
			d.setViolationKind(kind)
			return
		}
		d.Allowed = true
		d.Outcome = dec.Outcome.String()
		d.NewRing = dec.NewRing
		d.Trapped = dec.Outcome == core.ReturnDownwardTrap

	case OpEffRing:
		// Pre-scan the chain: validate the ring fields and find which
		// shards the indirect steps will consult, so the epoch interval
		// can name a single shard when only one is involved. A chain
		// spanning shards is stamped with the sum of the consulted
		// shards' pinned snapshot epochs (reader) or bracketed by the
		// store-wide Version sum (oracle replay), with Shard = -1.
		sh := -1
		single := true
		var mask uint64 // consulted shard set (MaxShards ≤ 64)
		for i := range q.Chain {
			step := &q.Chain[i]
			if !step.Ring.Valid() {
				//ring:allow malformed query: Err formatting is the cold path
				d.Err = fmt.Sprintf("invalid ring %d in chain", step.Ring)
				return
			}
			if step.PR {
				continue
			}
			s := st.ShardOf(step.Segno)
			mask |= 1 << s
			if sh == -1 {
				sh = s
			} else if sh != s {
				single = false
			}
		}
		if single && sh >= 0 {
			d.Shard = sh
			d.VersionLo = intervalLo(st, rd, sh)
		} else {
			sh = -1
			d.VersionLo = chainLo(st, rd, mask)
		}
		eff := q.Ring
		for _, step := range q.Chain {
			if step.PR {
				eff = core.EffectiveRingPR(eff, step.Ring)
				continue
			}
			sdw, err := u.FetchSDW(step.Segno)
			if err != nil {
				d.Err = err.Error()
				return
			}
			v := sdw.View()
			// The indirect word itself is read during effective address
			// formation, validated like any operand read (Figure 5).
			if kind := u.AccessView(v, step.Segno, 0, eff, core.AccessRead); kind != core.ViolationNone {
				d.VersionHi = chainHi(st, rd, sh, mask, d.VersionLo)
				d.setViolationKind(kind)
				return
			}
			eff = core.EffectiveRingIndirect(eff, step.Ring, v.R1)
		}
		d.VersionHi = chainHi(st, rd, sh, mask, d.VersionLo)
		d.Allowed = true
		d.NewRing = eff

	default:
		//ring:allow malformed query: Err formatting is the cold path
		d.Err = fmt.Sprintf("unknown op %q", q.Op)
	}
}

// chainLo opens the epoch interval for an effring chain with no
// single shard: through a reader, the sum of the pinned snapshot
// epochs of the consulted shards; for oracle replays or chains with no
// indirect steps, the live store-wide Version sum.
//
//ring:hotpath
//ring:pins
func chainLo(st *Store, rd *reader, mask uint64) uint64 {
	if rd != nil && mask != 0 {
		return rd.pinSum(mask)
	}
	return st.Version()
}

// chainHi closes an effring chain's interval: degenerate for pinned
// snapshot reads, a live re-read for oracle replays.
//
//ring:hotpath
func chainHi(st *Store, rd *reader, sh int, mask uint64, lo uint64) uint64 {
	if sh >= 0 {
		return intervalHi(st, rd, sh, lo)
	}
	if rd != nil && mask != 0 {
		return lo
	}
	return st.Version()
}

// setViolationKind fills the violation fields (allowed when kind is
// ViolationNone). ViolationKind.String returns an interned constant,
// so denial decisions allocate nothing either.
//
//ring:hotpath
func (d *Decision) setViolationKind(kind core.ViolationKind) {
	if kind == core.ViolationNone {
		d.Allowed = true
		return
	}
	d.Allowed = false
	d.Violation = kind.String()
	d.ViolationKind = kind
}
