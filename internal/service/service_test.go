package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mmu"
)

// testSegments is the image most service tests run against:
//
//	0 "data"   R W -  brackets (2,4,4)          — a writable data segment
//	1 "code"   R - E  brackets (1,3,5) gates 2  — a gated procedure segment
//	2 "secret" R - -  brackets (0,1,1)          — readable only near ring 0
func testSegments() []Segment {
	return []Segment{
		{Name: "data", Size: 16, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 32, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
		{Name: "secret", Size: 8, Read: true,
			Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}},
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func ring(r core.Ring) *Ring { return &r }

// TestDecisions checks the decision procedure for every op against the
// paper's figures, through the full Submit path.
func TestDecisions(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})

	cases := []struct {
		name string
		q    Query
		want Decision
	}{
		{"read data in bracket",
			Query{Op: OpAccess, Ring: 4, Segment: "data", Wordno: 5, Kind: core.AccessRead},
			Decision{Allowed: true}},
		{"read data above bracket",
			Query{Op: OpAccess, Ring: 5, Segment: "data", Kind: core.AccessRead},
			Decision{ViolationKind: core.ViolationReadBracket}},
		{"write data in bracket",
			Query{Op: OpAccess, Ring: 2, Segment: "data", Kind: core.AccessWrite},
			Decision{Allowed: true}},
		{"write data above bracket",
			Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessWrite},
			Decision{ViolationKind: core.ViolationWriteBracket}},
		{"write read-only segment",
			Query{Op: OpAccess, Ring: 0, Segment: "secret", Kind: core.AccessWrite},
			Decision{ViolationKind: core.ViolationNoWrite}},
		{"fetch code in bracket",
			Query{Op: OpAccess, Ring: 2, Segment: "code", Kind: core.AccessExecute},
			Decision{Allowed: true}},
		{"fetch code below bracket",
			Query{Op: OpAccess, Ring: 0, Segment: "code", Kind: core.AccessExecute},
			Decision{ViolationKind: core.ViolationExecuteBracket}},
		{"fetch non-executable segment",
			Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessExecute},
			Decision{ViolationKind: core.ViolationNoExecute}},
		{"read beyond bound",
			Query{Op: OpAccess, Ring: 3, Segment: "data", Wordno: 16, Kind: core.AccessRead},
			Decision{ViolationKind: core.ViolationBound}},
		{"read unknown segno",
			Query{Op: OpAccess, Ring: 3, Segno: 99, Kind: core.AccessRead},
			Decision{ViolationKind: core.ViolationMissingSegment}},

		{"downward call through gate",
			Query{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},
			Decision{Allowed: true, Outcome: "downward call", NewRing: 3}},
		{"same-ring call to gate",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 1},
			Decision{Allowed: true, Outcome: "same-ring call", NewRing: 2}},
		{"call to non-gate word",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 5},
			Decision{ViolationKind: core.ViolationNotAGate}},
		{"same-segment call ignores gate list",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 5, SameSegment: true},
			Decision{Allowed: true, Outcome: "same-ring call", NewRing: 2}},
		{"upward call traps",
			Query{Op: OpCall, Ring: 0, Segment: "code", Wordno: 0},
			Decision{Allowed: true, Outcome: "upward call (trap)", NewRing: 1, Trapped: true}},
		{"call from above gate extension",
			Query{Op: OpCall, Ring: 6, Segment: "code", Wordno: 0},
			Decision{ViolationKind: core.ViolationGateExtension}},
		{"disguised upward call",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 0, EffRing: ring(4)},
			Decision{ViolationKind: core.ViolationRingAlarm}},

		{"same-ring return",
			Query{Op: OpReturn, Ring: 3, Segment: "code"},
			Decision{Allowed: true, Outcome: "same-ring return", NewRing: 3}},
		{"upward return",
			Query{Op: OpReturn, Ring: 2, Segment: "code", EffRing: ring(3)},
			Decision{Allowed: true, Outcome: "upward return", NewRing: 3}},
		{"downward return traps",
			Query{Op: OpReturn, Ring: 3, Segment: "code", EffRing: ring(1)},
			Decision{Allowed: true, Outcome: "downward return (trap)", NewRing: 1, Trapped: true}},

		{"effective ring over chain",
			Query{Op: OpEffRing, Ring: 2, Chain: []ChainStep{
				{PR: true, Ring: 3},
				{Ring: 1, Segno: 0}, // indirect word in "data": R1=2
			}},
			Decision{Allowed: true, NewRing: 3}},
		{"chain read violation",
			Query{Op: OpEffRing, Ring: 4, Chain: []ChainStep{{Ring: 0, Segno: 2}}},
			Decision{ViolationKind: core.ViolationReadBracket}},
	}

	queries := make([]Query, len(cases))
	for i, c := range cases {
		queries[i] = c.q
	}
	ds, err := svc.Submit(context.Background(), queries)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i, c := range cases {
		got := ds[i]
		if got.Err != "" {
			t.Errorf("%s: unexpected query error %q", c.name, got.Err)
			continue
		}
		if got.VersionLo != 0 || got.VersionHi != 0 {
			t.Errorf("%s: version interval [%d,%d] on an unmutated store", c.name, got.VersionLo, got.VersionHi)
		}
		if want := wantShard(svc.Store(), c.q); got.Shard != want {
			t.Errorf("%s: shard = %d, want %d", c.name, got.Shard, want)
		}
		want := c.want
		want.Violation = want.ViolationKind.String()
		if want.ViolationKind == core.ViolationNone {
			want.Violation = ""
		}
		got.VersionLo, got.VersionHi, got.Worker, got.Shard = 0, 0, 0, 0
		if got != want {
			t.Errorf("%s: got %+v, want %+v", c.name, got, want)
		}
	}
}

// wantShard computes, independently of evalQuery, the shard a
// well-formed query's decision must report: the target segment's shard,
// or for effring the single shard its indirect steps consult (-1 when
// none or several).
func wantShard(st *Store, q Query) int {
	segno := q.Segno
	if q.Segment != "" {
		if n, ok := st.Segno(q.Segment); ok {
			segno = n
		}
	}
	if q.Op != OpEffRing {
		return st.ShardOf(segno)
	}
	sh := -1
	for _, step := range q.Chain {
		if step.PR {
			continue
		}
		s := st.ShardOf(step.Segno)
		if sh == -1 {
			sh = s
		} else if sh != s {
			return -1
		}
	}
	return sh
}

// TestQueryErrors checks that malformed queries come back as Err, not
// violations.
func TestQueryErrors(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	bad := []Query{
		{Op: OpAccess, Ring: 3, Segment: "nonesuch", Kind: core.AccessRead},
		{Op: "frobnicate", Ring: 3, Segment: "data"},
		{Op: OpAccess, Ring: 8, Segment: "data", Kind: core.AccessRead},
		{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessKind(9)},
		{Op: OpCall, Ring: 3, Segment: "code", EffRing: ring(12)},
		{Op: OpEffRing, Ring: 3, Chain: []ChainStep{{PR: true, Ring: 9}}},
	}
	ds, err := svc.Submit(context.Background(), bad)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i, d := range ds {
		if d.Err == "" {
			t.Errorf("query %d: want Err, got %+v", i, d)
		}
		if d.Allowed {
			t.Errorf("query %d: malformed query allowed", i)
		}
		if d.Shard != -1 || d.VersionLo != 0 || d.VersionHi != 0 {
			t.Errorf("query %d: malformed query reports shard %d interval [%d,%d]; want no interval",
				i, d.Shard, d.VersionLo, d.VersionHi)
		}
	}
	if got := svc.Metrics().errors.Load(); got != uint64(len(bad)) {
		t.Errorf("errors counter = %d, want %d", got, len(bad))
	}
}

// TestBatchLimit checks the per-batch cap.
func TestBatchLimit(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, BatchLimit: 2})
	qs := make([]Query, 3)
	for i := range qs {
		qs[i] = Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}
	}
	if _, err := svc.Submit(context.Background(), qs); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("Submit(3) with BatchLimit 2: err = %v, want ErrBatchTooLarge", err)
	}
	if _, err := svc.Submit(context.Background(), qs[:2]); err != nil {
		t.Fatalf("Submit(2): %v", err)
	}
}

// TestBackpressure fills the bounded queue behind a held worker and
// checks that Submit sheds with ErrQueueFull, then that held work
// completes once released.
func TestBackpressure(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	hold := make(chan struct{})
	ack := make(chan struct{}, 4)
	svc.hold, svc.holdAck = hold, ack
	var once sync.Once
	release := func() { once.Do(func() { close(hold) }) }
	defer release() // a Fatal below must not leave Close waiting on a parked worker

	qs := []Query{{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}}
	results := make(chan error, 2)
	submit := func() {
		_, err := svc.Submit(context.Background(), qs)
		results <- err
	}

	// First batch: the worker pulls it and parks on hold (the ack tells
	// us the park has happened, so this cannot race the next submit).
	go submit()
	<-ack

	// Second batch: sits in the queue; the worker cannot pull it.
	go submit()
	waitFor(t, "second batch to queue", func() bool { return svc.QueueLen() == 1 })

	// Third batch: queue full — backpressure.
	if _, err := svc.Submit(context.Background(), qs); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue: err = %v, want ErrQueueFull", err)
	}
	if got := svc.Snapshot().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	// Release the worker: both held batches complete without error.
	release()
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Errorf("held batch %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("held batches did not complete after release")
		}
	}
}

// TestSubmitContextCancelled checks that an abandoned wait returns the
// context error while the batch still completes (buffered reply).
func TestSubmitContextCancelled(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hold := make(chan struct{})
	svc.hold = hold

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := []Query{{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}}
	if _, err := svc.Submit(ctx, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The worker must still be able to drain the abandoned batch and
	// exit: Close would hang otherwise.
	close(hold)
	svc.Close()
}

// TestGracefulShutdown checks that Close drains queued work and that
// Submit afterwards reports ErrClosed.
func TestGracefulShutdown(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	qs := []Query{{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Submit(context.Background(), qs)
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}()
	}
	wg.Wait() // all in-flight work done before Close
	svc.Close()
	svc.Close() // idempotent

	for _, err := range errs {
		if err != nil {
			t.Errorf("pre-close Submit: %v", err)
		}
	}
	if _, err := svc.Submit(context.Background(), qs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// shardScript is segment segno's mutation sequence for the sharded
// oracle test: each mutation changes only the even word of its
// descriptor (brackets or the present bit), so a concurrent word-atomic
// reader sees exactly the before or the after state, never a torn
// descriptor. Each segment of testSegments lives in its own shard (of
// 4), so shard segno's epoch counts exactly these mutations.
func shardScript(segno uint32, n int) []func(st *Store) error {
	muts := make([]func(st *Store) error, n)
	for i := range muts {
		alt := i%2 == 0
		switch segno {
		case 0: // data: brackets swing between wide and narrow
			b := core.Brackets{R1: 2, R2: 4, R3: 4}
			if alt {
				b = core.Brackets{R1: 0, R2: 1, R3: 1}
			}
			muts[i] = func(st *Store) error { return st.SetBrackets(0, true, true, false, b, 0) }
		case 1: // code: presence toggles
			if alt {
				muts[i] = func(st *Store) error { return st.Revoke(1) }
			} else {
				muts[i] = func(st *Store) error { return st.Restore(1) }
			}
		default: // secret: read bracket widens and narrows
			b := core.Brackets{R1: 0, R2: 1, R3: 1}
			if alt {
				b = core.Brackets{R1: 0, R2: 3, R3: 3}
			}
			muts[i] = func(st *Store) error { return st.SetBrackets(2, true, false, false, b, 0) }
		}
	}
	return muts
}

// shardProbes is the fixed probe batch for the sharded oracle test,
// every probe consulting exactly one segment; probeSegno gives the
// segment (= shard, with 4 shards) each probe targets.
func shardProbes() (probes []Query, probeSegno []uint32) {
	probes = []Query{
		{Op: OpAccess, Ring: 4, Segment: "data", Wordno: 3, Kind: core.AccessRead},
		{Op: OpAccess, Ring: 1, Segment: "data", Kind: core.AccessWrite},
		{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessWrite},
		{Op: OpEffRing, Ring: 1, Chain: []ChainStep{{Ring: 0, Segno: 0}}},
		{Op: OpAccess, Ring: 2, Segment: "code", Kind: core.AccessExecute},
		{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},
		{Op: OpCall, Ring: 0, Segment: "code", Wordno: 0},
		{Op: OpReturn, Ring: 2, Segment: "code", EffRing: ring(3)},
		{Op: OpAccess, Ring: 1, Segment: "secret", Kind: core.AccessRead},
		{Op: OpAccess, Ring: 3, Segment: "secret", Kind: core.AccessRead},
	}
	probeSegno = []uint32{0, 0, 0, 0, 1, 1, 1, 1, 2, 2}
	return probes, probeSegno
}

// stripDecision clears the fields that legitimately differ between a
// concurrent decision and its oracle counterpart. Shard is kept: the
// oracle store is built with the same shard count, so the reported
// shard must agree too.
func stripDecision(d Decision) Decision {
	d.VersionLo, d.VersionHi, d.Worker = 0, 0, 0
	return d
}

// TestShardedConcurrentOracle extends the T12 differential property to
// the sharded store: one mutator goroutine per shard streams descriptor
// edits while four workers answer single-segment probes. Every decision
// reports the epoch interval of the shard it consulted; replaying that
// shard's script single-threaded, the decision must be identical to the
// oracle's answer at some state within the interval — regardless of
// what the other shards' mutators were doing at the time. Run with
// -race to also exercise the coherence protocol and the per-shard locks
// under the race detector.
func TestShardedConcurrentOracle(t *testing.T) {
	const (
		shards    = 4
		mutations = 600 // per shard
		rounds    = 30
		clients   = 4
	)
	st, err := NewStore(StoreConfig{Shards: shards}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 4, QueueDepth: 64})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	probes, probeSegno := shardProbes()
	scripts := [3][]func(st *Store) error{}
	for g := range scripts {
		scripts[g] = shardScript(uint32(g), mutations)
	}

	// Concurrent phase: in every round the clients' batches race one
	// slice of each shard's script, with the three mutators themselves
	// racing one another. The round barrier guarantees edits interleave
	// with decisions across the run even on a single-CPU host.
	type obs struct{ ds []Decision }
	results := make(chan obs, clients*rounds)
	perRound := mutations / rounds
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ds, err := svc.Submit(context.Background(), probes)
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						return // backpressure is a legal answer
					}
					t.Errorf("Submit: %v", err)
					return
				}
				results <- obs{ds}
			}()
		}
		for g := range scripts {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, m := range scripts[g][round*perRound : (round+1)*perRound] {
					if err := m(st); err != nil {
						t.Errorf("shard %d mutation: %v", g, err)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	close(results)

	for g := range scripts {
		if got := st.ShardVersion(g); got != 2*mutations {
			t.Fatalf("shard %d final epoch = %d, want %d", g, got, 2*mutations)
		}
	}
	if got := st.ShardVersion(3); got != 0 {
		t.Fatalf("empty shard 3 epoch = %d, want 0", got)
	}
	if got := st.Version(); got != uint64(len(scripts))*2*mutations {
		t.Fatalf("store version = %d, want %d", got, len(scripts)*2*mutations)
	}

	// Oracle replay, one shard at a time: a fresh store stepped through
	// only shard g's script. Probes are single-segment, so the other
	// shards' states cannot influence a shard-g decision — which is
	// exactly the independence the oracle match below certifies.
	oracle := [3][][]Decision{} // oracle[g][k][j]: shard-g probe j at state k
	for g := range scripts {
		ost, err := NewStore(StoreConfig{Shards: shards}, testSegments())
		if err != nil {
			t.Fatalf("oracle NewStore: %v", err)
		}
		u, err := ost.NewWorkerMMU(mmu.Options{Validate: true})
		if err != nil {
			t.Fatalf("oracle MMU: %v", err)
		}
		oracle[g] = make([][]Decision, mutations+1)
		for k := 0; k <= mutations; k++ {
			if k > 0 {
				if err := scripts[g][k-1](ost); err != nil {
					t.Fatalf("oracle shard %d mutation %d: %v", g, k, err)
				}
			}
			for i := range probes {
				if probeSegno[i] != uint32(g) {
					continue
				}
				var d Decision
				evalQuery(ost, nil, u, &probes[i], &d)
				oracle[g][k] = append(oracle[g][k], stripDecision(d))
			}
		}
	}
	// probeIdx[i] is probe i's index within its shard's oracle rows.
	probeIdx := make([]int, len(probes))
	seen := map[uint32]int{}
	for i, g := range probeSegno {
		probeIdx[i] = seen[g]
		seen[g]++
	}

	checked, clean := 0, 0
	for o := range results {
		for i, d := range o.ds {
			g := int(probeSegno[i])
			if d.Shard != g {
				t.Fatalf("probe %d: decision reports shard %d, want %d", i, d.Shard, g)
			}
			lo, hi := d.VersionLo, d.VersionHi
			if hi < lo {
				t.Fatalf("probe %d: epoch interval [%d,%d] runs backwards", i, lo, hi)
			}
			loState, hiState := lo/2, (hi+1)/2
			if lo == hi && lo%2 == 0 {
				clean++
			}
			got := stripDecision(d)
			matched := false
			for k := loState; k <= hiState && !matched; k++ {
				matched = got == oracle[g][k][probeIdx[i]]
			}
			if !matched {
				t.Fatalf("probe %d (shard %d): decision %+v matches no oracle state in [%d,%d]",
					i, g, got, loState, hiState)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no decisions checked")
	}
	if clean == 0 {
		t.Error("no clean-snapshot decisions observed")
	}
	t.Logf("checked %d decisions (%d clean snapshots, %d overlapping an edit) against %d oracle states per shard",
		checked, clean, checked-clean, mutations+1)

	snap := svc.Snapshot()
	if snap.Reads.Pins == 0 || snap.Reads.Lookups == 0 {
		t.Errorf("snapshot readers not exercised: %+v", snap.Reads)
	}
	if got := snap.RCU.Publishes; got != uint64(len(scripts))*mutations {
		t.Errorf("snapshot publishes = %d, want %d (one per descriptor edit)",
			got, len(scripts)*mutations)
	}
	// Every publish retires exactly one predecessor, which must end up
	// recycled, dropped, or still awaiting its grace period.
	if snap.RCU.Recycled+snap.RCU.Dropped+uint64(snap.RCU.Retired) != snap.RCU.Publishes {
		t.Errorf("retired snapshots unaccounted for: %+v", snap.RCU)
	}
	if len(snap.LatencyNs) == 0 {
		t.Error("latency histogram empty")
	}
}

// TestBlockedMutationDoesNotBlockReaders parks a mutation inside its
// critical section — shard mutex held, shard epoch odd — and checks
// the RCU guarantee: decisions proceed without blocking, every one a
// clean snapshot of the state before the stalled edit, in the mutating
// shard and the others alike. After the mutation completes, a new
// batch pins the published successor and observes the edit.
func TestBlockedMutationDoesNotBlockReaders(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	codeShard := st.ShardOf(1)

	// Hold one mutation open: revoke "code" (segno 1), then park inside
	// the epoch-odd window of its shard with the shard mutex held.
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- st.mutate(1, func(sup *mmu.MMU) error {
			sdw, err := sup.FetchSDW(1)
			if err != nil {
				return err
			}
			sdw.Present = false
			if err := sup.StoreSDW(1, sdw); err != nil {
				return err
			}
			<-release
			return nil
		})
	}()
	waitFor(t, "mutation to open", func() bool { return st.ShardVersion(codeShard) == 1 })

	// Oracle states 0 (image as built) and 1 (code revoked).
	states := make([][]Decision, 2)
	probes, probeSegno := shardProbes()
	for k := range states {
		ost, err := NewStore(StoreConfig{}, testSegments())
		if err != nil {
			t.Fatalf("oracle NewStore: %v", err)
		}
		if k == 1 {
			if err := ost.Revoke(1); err != nil {
				t.Fatalf("oracle Revoke: %v", err)
			}
		}
		u, err := ost.NewWorkerMMU(mmu.Options{Validate: true})
		if err != nil {
			t.Fatalf("oracle MMU: %v", err)
		}
		states[k] = make([]Decision, len(probes))
		for i := range probes {
			evalQuery(ost, nil, u, &probes[i], &states[k][i])
		}
	}
	// The probe set must discriminate the two states, or the checks
	// below are vacuous.
	differs := false
	for i := range probes {
		differs = differs || stripDecision(states[0][i]) != stripDecision(states[1][i])
	}
	if !differs {
		t.Fatal("probe set cannot distinguish the bracketed states")
	}

	// With the mutation parked mid-critical-section, a whole batch must
	// complete — lock-free readers never contend with the held shard
	// mutex — and every decision is the pre-edit snapshot at epoch 0.
	ds, err := svc.Submit(context.Background(), probes)
	if err != nil {
		t.Fatalf("Submit during blocked mutation: %v", err)
	}
	for i, d := range ds {
		if d.VersionLo != 0 || d.VersionHi != 0 {
			t.Errorf("probe %d (shard %d): version interval [%d,%d] during blocked mutation, want clean [0,0]",
				i, d.Shard, d.VersionLo, d.VersionHi)
		}
		if got, want := stripDecision(d), stripDecision(states[0][i]); got != want {
			t.Errorf("probe %d: decision %+v, want pre-edit state %+v", i, got, want)
		}
	}
	// The stalled edit also must not block /metrics.
	if got := svc.Snapshot().RCU.Publishes; got != 0 {
		t.Errorf("publishes = %d during blocked mutation, want 0", got)
	}

	// Complete the mutation; the next batch pins the successor snapshot
	// (epoch 2 in the mutated shard) and observes the revocation.
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("held mutation: %v", err)
	}
	ds, err = svc.Submit(context.Background(), probes)
	if err != nil {
		t.Fatalf("Submit after mutation: %v", err)
	}
	for i, d := range ds {
		wantEpoch := uint64(0)
		if probeSegno[i] == 1 {
			wantEpoch = 2
		}
		if d.VersionLo != wantEpoch || d.VersionHi != wantEpoch {
			t.Errorf("probe %d (shard %d): version interval [%d,%d] after mutation, want [%d,%d]",
				i, d.Shard, d.VersionLo, d.VersionHi, wantEpoch, wantEpoch)
		}
		if got, want := stripDecision(d), stripDecision(states[1][i]); got != want {
			t.Errorf("probe %d: decision %+v, want post-edit state %+v", i, got, want)
		}
	}
}

// TestSubmitIntoZeroAlloc is the hot-path allocation budget: one
// warm-pool SubmitInto round trip — queue, decide, reply — performs
// zero heap allocations, on the submitter and worker side combined.
// CI runs this as its allocation-regression gate.
func TestSubmitIntoZeroAlloc(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	ctx := context.Background()
	queries := []Query{{Op: OpAccess, Ring: 4, Segment: "data", Wordno: 5, Kind: core.AccessRead}}
	dst := make([]Decision, len(queries))
	for i := 0; i < 8; i++ { // warm the descriptor pool and the SDW cache
		if err := svc.SubmitInto(ctx, queries, dst); err != nil {
			t.Fatalf("warm-up SubmitInto: %v", err)
		}
	}
	if !dst[0].Allowed || dst[0].Shard != 0 {
		t.Fatalf("warm-up decision wrong: %+v", dst[0])
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := svc.SubmitInto(ctx, queries, dst); err != nil {
			t.Fatalf("SubmitInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("SubmitInto allocates %.2f objects per batch; the decision hot path budget is 0", allocs)
	}
	// A denial must stay allocation-free too (the violation string is
	// interned, not formatted).
	denied := []Query{{Op: OpAccess, Ring: 7, Segment: "secret", Kind: core.AccessRead}}
	for i := 0; i < 8; i++ {
		if err := svc.SubmitInto(ctx, denied, dst); err != nil {
			t.Fatalf("warm-up SubmitInto: %v", err)
		}
	}
	if dst[0].Allowed || dst[0].ViolationKind != core.ViolationReadBracket {
		t.Fatalf("warm-up denial wrong: %+v", dst[0])
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := svc.SubmitInto(ctx, denied, dst); err != nil {
			t.Fatalf("SubmitInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Errorf("denied SubmitInto allocates %.2f objects per batch; budget is 0", allocs)
	}
}

// TestSubmitIntoShortDst checks the destination-length guard.
func TestSubmitIntoShortDst(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	queries := make([]Query, 2)
	for i := range queries {
		queries[i] = Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}
	}
	if err := svc.SubmitInto(context.Background(), queries, make([]Decision, 1)); err == nil {
		t.Fatal("SubmitInto with short dst: want error, got nil")
	}
}

// TestStoreShardConfig checks shard-count validation and defaulting.
func TestStoreShardConfig(t *testing.T) {
	for _, bad := range []StoreConfig{
		{Shards: 3},
		{Shards: -1},
		{Shards: MaxShards * 2},
		{ShardsSet: true},
	} {
		if _, err := NewStore(bad, testSegments()); err == nil {
			t.Errorf("NewStore(Shards=%d, set=%v): want error, got nil", bad.Shards, bad.ShardsSet)
		}
	}
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if st.Shards() != 8 {
		t.Errorf("default Shards() = %d, want 8", st.Shards())
	}
	if got := st.ShardOf(11); got != 3 {
		t.Errorf("ShardOf(11) = %d, want 3", got)
	}
	one, err := NewStore(StoreConfig{Shards: 1}, testSegments())
	if err != nil {
		t.Fatalf("NewStore(Shards=1): %v", err)
	}
	if one.Shards() != 1 || one.ShardOf(11) != 0 {
		t.Errorf("single-shard store: Shards()=%d ShardOf(11)=%d", one.Shards(), one.ShardOf(11))
	}
}

// TestMetricsSnapshot checks the /metrics counters after known traffic.
func TestMetricsSnapshot(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	qs := []Query{
		{Op: OpAccess, Ring: 4, Segment: "data", Kind: core.AccessRead},   // allowed
		{Op: OpAccess, Ring: 5, Segment: "data", Kind: core.AccessRead},   // read bracket fault
		{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},                 // allowed
		{Op: OpReturn, Ring: 3, Segment: "code", EffRing: ring(1)},        // trap
		{Op: OpEffRing, Ring: 1, Chain: []ChainStep{{Ring: 0, Segno: 0}}}, // allowed
		{Op: OpAccess, Ring: 3, Segment: "nonesuch"},                      // error
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(context.Background(), qs); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	snap := svc.Snapshot()
	if snap.Workers != 2 || snap.QueueCap != 64 {
		t.Errorf("shape: workers=%d cap=%d", snap.Workers, snap.QueueCap)
	}
	if snap.Batches != 3 || snap.Queries != 18 {
		t.Errorf("batches=%d queries=%d, want 3/18", snap.Batches, snap.Queries)
	}
	if snap.Allowed != 12 || snap.Denied != 3 || snap.Errors != 3 || snap.Trapped != 3 {
		t.Errorf("allowed=%d denied=%d errors=%d trapped=%d, want 12/3/3/3",
			snap.Allowed, snap.Denied, snap.Errors, snap.Trapped)
	}
	if snap.Ops[string(OpAccess)] != 9 || snap.Ops[string(OpCall)] != 3 ||
		snap.Ops[string(OpReturn)] != 3 || snap.Ops[string(OpEffRing)] != 3 {
		t.Errorf("per-op counts wrong: %v", snap.Ops)
	}
	if snap.Faults[metricKey(core.ViolationReadBracket.String())] != 3 {
		t.Errorf("faults: %v", snap.Faults)
	}
	if snap.Reads.Pins == 0 || snap.Reads.Lookups == 0 {
		t.Errorf("snapshot-read counters not exercised: %+v", snap.Reads)
	}
	if snap.Reads.Lookups < snap.Reads.Pins {
		t.Errorf("lookups %d < pins %d; every pin serves at least one lookup",
			snap.Reads.Lookups, snap.Reads.Pins)
	}
	if len(snap.PerWorkerReads) != 2 {
		t.Errorf("per-worker read entries = %d, want 2", len(snap.PerWorkerReads))
	}
	if snap.RCU.Readers != 2 {
		t.Errorf("registered readers = %d, want 2 (one per worker)", snap.RCU.Readers)
	}
	if len(snap.LatencyNs) == 0 {
		t.Error("latency histogram empty")
	}
	var latTotal uint64
	for _, b := range snap.LatencyNs {
		latTotal += b.Count
	}
	if latTotal != snap.Batches {
		t.Errorf("latency histogram sums to %d, want %d batches", latTotal, snap.Batches)
	}
	if len(snap.Events) == 0 {
		t.Error("no trace events recorded")
	}
}
