package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mmu"
)

// testSegments is the image most service tests run against:
//
//	0 "data"   R W -  brackets (2,4,4)          — a writable data segment
//	1 "code"   R - E  brackets (1,3,5) gates 2  — a gated procedure segment
//	2 "secret" R - -  brackets (0,1,1)          — readable only near ring 0
func testSegments() []Segment {
	return []Segment{
		{Name: "data", Size: 16, Read: true, Write: true,
			Brackets: core.Brackets{R1: 2, R2: 4, R3: 4}},
		{Name: "code", Size: 32, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 1, R2: 3, R3: 5}, Gates: 2},
		{Name: "secret", Size: 8, Read: true,
			Brackets: core.Brackets{R1: 0, R2: 1, R3: 1}},
	}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc
}

func ring(r core.Ring) *Ring { return &r }

// TestDecisions checks the decision procedure for every op against the
// paper's figures, through the full Submit path.
func TestDecisions(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})

	cases := []struct {
		name string
		q    Query
		want Decision
	}{
		{"read data in bracket",
			Query{Op: OpAccess, Ring: 4, Segment: "data", Wordno: 5, Kind: core.AccessRead},
			Decision{Allowed: true}},
		{"read data above bracket",
			Query{Op: OpAccess, Ring: 5, Segment: "data", Kind: core.AccessRead},
			Decision{ViolationKind: core.ViolationReadBracket}},
		{"write data in bracket",
			Query{Op: OpAccess, Ring: 2, Segment: "data", Kind: core.AccessWrite},
			Decision{Allowed: true}},
		{"write data above bracket",
			Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessWrite},
			Decision{ViolationKind: core.ViolationWriteBracket}},
		{"write read-only segment",
			Query{Op: OpAccess, Ring: 0, Segment: "secret", Kind: core.AccessWrite},
			Decision{ViolationKind: core.ViolationNoWrite}},
		{"fetch code in bracket",
			Query{Op: OpAccess, Ring: 2, Segment: "code", Kind: core.AccessExecute},
			Decision{Allowed: true}},
		{"fetch code below bracket",
			Query{Op: OpAccess, Ring: 0, Segment: "code", Kind: core.AccessExecute},
			Decision{ViolationKind: core.ViolationExecuteBracket}},
		{"fetch non-executable segment",
			Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessExecute},
			Decision{ViolationKind: core.ViolationNoExecute}},
		{"read beyond bound",
			Query{Op: OpAccess, Ring: 3, Segment: "data", Wordno: 16, Kind: core.AccessRead},
			Decision{ViolationKind: core.ViolationBound}},
		{"read unknown segno",
			Query{Op: OpAccess, Ring: 3, Segno: 99, Kind: core.AccessRead},
			Decision{ViolationKind: core.ViolationMissingSegment}},

		{"downward call through gate",
			Query{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},
			Decision{Allowed: true, Outcome: "downward call", NewRing: 3}},
		{"same-ring call to gate",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 1},
			Decision{Allowed: true, Outcome: "same-ring call", NewRing: 2}},
		{"call to non-gate word",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 5},
			Decision{ViolationKind: core.ViolationNotAGate}},
		{"same-segment call ignores gate list",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 5, SameSegment: true},
			Decision{Allowed: true, Outcome: "same-ring call", NewRing: 2}},
		{"upward call traps",
			Query{Op: OpCall, Ring: 0, Segment: "code", Wordno: 0},
			Decision{Allowed: true, Outcome: "upward call (trap)", NewRing: 1, Trapped: true}},
		{"call from above gate extension",
			Query{Op: OpCall, Ring: 6, Segment: "code", Wordno: 0},
			Decision{ViolationKind: core.ViolationGateExtension}},
		{"disguised upward call",
			Query{Op: OpCall, Ring: 2, Segment: "code", Wordno: 0, EffRing: ring(4)},
			Decision{ViolationKind: core.ViolationRingAlarm}},

		{"same-ring return",
			Query{Op: OpReturn, Ring: 3, Segment: "code"},
			Decision{Allowed: true, Outcome: "same-ring return", NewRing: 3}},
		{"upward return",
			Query{Op: OpReturn, Ring: 2, Segment: "code", EffRing: ring(3)},
			Decision{Allowed: true, Outcome: "upward return", NewRing: 3}},
		{"downward return traps",
			Query{Op: OpReturn, Ring: 3, Segment: "code", EffRing: ring(1)},
			Decision{Allowed: true, Outcome: "downward return (trap)", NewRing: 1, Trapped: true}},

		{"effective ring over chain",
			Query{Op: OpEffRing, Ring: 2, Chain: []ChainStep{
				{PR: true, Ring: 3},
				{Ring: 1, Segno: 0}, // indirect word in "data": R1=2
			}},
			Decision{Allowed: true, NewRing: 3}},
		{"chain read violation",
			Query{Op: OpEffRing, Ring: 4, Chain: []ChainStep{{Ring: 0, Segno: 2}}},
			Decision{ViolationKind: core.ViolationReadBracket}},
	}

	queries := make([]Query, len(cases))
	for i, c := range cases {
		queries[i] = c.q
	}
	ds, err := svc.Submit(context.Background(), queries)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i, c := range cases {
		got := ds[i]
		if got.Err != "" {
			t.Errorf("%s: unexpected query error %q", c.name, got.Err)
			continue
		}
		if got.VersionLo != 0 || got.VersionHi != 0 {
			t.Errorf("%s: version interval [%d,%d] on an unmutated store", c.name, got.VersionLo, got.VersionHi)
		}
		want := c.want
		want.Violation = want.ViolationKind.String()
		if want.ViolationKind == core.ViolationNone {
			want.Violation = ""
		}
		got.VersionLo, got.VersionHi, got.Worker = 0, 0, 0
		if got != want {
			t.Errorf("%s: got %+v, want %+v", c.name, got, want)
		}
	}
}

// TestQueryErrors checks that malformed queries come back as Err, not
// violations.
func TestQueryErrors(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1})
	bad := []Query{
		{Op: OpAccess, Ring: 3, Segment: "nonesuch", Kind: core.AccessRead},
		{Op: "frobnicate", Ring: 3, Segment: "data"},
		{Op: OpAccess, Ring: 8, Segment: "data", Kind: core.AccessRead},
		{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessKind(9)},
		{Op: OpCall, Ring: 3, Segment: "code", EffRing: ring(12)},
		{Op: OpEffRing, Ring: 3, Chain: []ChainStep{{PR: true, Ring: 9}}},
	}
	ds, err := svc.Submit(context.Background(), bad)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	for i, d := range ds {
		if d.Err == "" {
			t.Errorf("query %d: want Err, got %+v", i, d)
		}
		if d.Allowed {
			t.Errorf("query %d: malformed query allowed", i)
		}
	}
	if got := svc.Metrics().errors.Load(); got != uint64(len(bad)) {
		t.Errorf("errors counter = %d, want %d", got, len(bad))
	}
}

// TestBatchLimit checks the per-batch cap.
func TestBatchLimit(t *testing.T) {
	svc := newTestService(t, Config{Workers: 1, BatchLimit: 2})
	qs := make([]Query, 3)
	for i := range qs {
		qs[i] = Query{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}
	}
	if _, err := svc.Submit(context.Background(), qs); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("Submit(3) with BatchLimit 2: err = %v, want ErrBatchTooLarge", err)
	}
	if _, err := svc.Submit(context.Background(), qs[:2]); err != nil {
		t.Fatalf("Submit(2): %v", err)
	}
}

// TestBackpressure fills the bounded queue behind a held worker and
// checks that Submit sheds with ErrQueueFull, then that held work
// completes once released.
func TestBackpressure(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	hold := make(chan struct{})
	ack := make(chan struct{}, 4)
	svc.hold, svc.holdAck = hold, ack
	var once sync.Once
	release := func() { once.Do(func() { close(hold) }) }
	defer release() // a Fatal below must not leave Close waiting on a parked worker

	qs := []Query{{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}}
	results := make(chan error, 2)
	submit := func() {
		_, err := svc.Submit(context.Background(), qs)
		results <- err
	}

	// First batch: the worker pulls it and parks on hold (the ack tells
	// us the park has happened, so this cannot race the next submit).
	go submit()
	<-ack

	// Second batch: sits in the queue; the worker cannot pull it.
	go submit()
	waitFor(t, "second batch to queue", func() bool { return svc.QueueLen() == 1 })

	// Third batch: queue full — backpressure.
	if _, err := svc.Submit(context.Background(), qs); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on full queue: err = %v, want ErrQueueFull", err)
	}
	if got := svc.Snapshot().Rejected; got != 1 {
		t.Errorf("Rejected = %d, want 1", got)
	}

	// Release the worker: both held batches complete without error.
	release()
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Errorf("held batch %d: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("held batches did not complete after release")
		}
	}
}

// TestSubmitContextCancelled checks that an abandoned wait returns the
// context error while the batch still completes (buffered reply).
func TestSubmitContextCancelled(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 1, QueueDepth: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hold := make(chan struct{})
	svc.hold = hold

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := []Query{{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}}
	if _, err := svc.Submit(ctx, qs); !errors.Is(err, context.Canceled) {
		t.Fatalf("Submit with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// The worker must still be able to drain the abandoned batch and
	// exit: Close would hang otherwise.
	close(hold)
	svc.Close()
}

// TestGracefulShutdown checks that Close drains queued work and that
// Submit afterwards reports ErrClosed.
func TestGracefulShutdown(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 2, QueueDepth: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	qs := []Query{{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessRead}}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Submit(context.Background(), qs)
			mu.Lock()
			errs = append(errs, err)
			mu.Unlock()
		}()
	}
	wg.Wait() // all in-flight work done before Close
	svc.Close()
	svc.Close() // idempotent

	for _, err := range errs {
		if err != nil {
			t.Errorf("pre-close Submit: %v", err)
		}
	}
	if _, err := svc.Submit(context.Background(), qs); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// oracleScript is the fixed mutation sequence the concurrent oracle test
// replays: each mutation changes only the even word of its descriptor
// (brackets or the present bit), so a concurrent word-atomic reader sees
// exactly the before or the after state, never a torn descriptor.
func oracleScript(n int) []func(st *Store) error {
	wide := core.Brackets{R1: 2, R2: 4, R3: 4}
	narrow := core.Brackets{R1: 0, R2: 1, R3: 1}
	muts := make([]func(st *Store) error, n)
	for i := range muts {
		switch i % 4 {
		case 0:
			muts[i] = func(st *Store) error { return st.SetBrackets(0, true, true, false, narrow, 0) }
		case 1:
			muts[i] = func(st *Store) error { return st.Revoke(1) }
		case 2:
			muts[i] = func(st *Store) error { return st.SetBrackets(0, true, true, false, wide, 0) }
		default:
			muts[i] = func(st *Store) error { return st.Restore(1) }
		}
	}
	return muts
}

// oracleQueries is the fixed probe batch whose decisions depend on the
// mutated descriptors (data brackets, code presence).
func oracleQueries() []Query {
	return []Query{
		{Op: OpAccess, Ring: 4, Segment: "data", Wordno: 3, Kind: core.AccessRead},
		{Op: OpAccess, Ring: 1, Segment: "data", Kind: core.AccessWrite},
		{Op: OpAccess, Ring: 3, Segment: "data", Kind: core.AccessWrite},
		{Op: OpAccess, Ring: 2, Segment: "code", Kind: core.AccessExecute},
		{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},
		{Op: OpCall, Ring: 0, Segment: "code", Wordno: 0},
		{Op: OpReturn, Ring: 2, Segment: "code", EffRing: ring(3)},
		{Op: OpEffRing, Ring: 1, Chain: []ChainStep{{Ring: 0, Segno: 0}}},
	}
}

// stripDecision clears the fields that legitimately differ between a
// concurrent decision and its oracle counterpart.
func stripDecision(d Decision) Decision {
	d.VersionLo, d.VersionHi, d.Worker = 0, 0, 0
	return d
}

// TestConcurrentOracle is the T12 acceptance property at test scale:
// four workers answer a fixed probe batch while a supervisor goroutine
// streams SetBrackets/Revoke mutations through StoreSDW. Every decision
// reports the mutation-epoch interval it was evaluated under; replaying
// the mutation script single-threaded, each concurrent decision must be
// identical to the oracle's decision at some state within its interval.
// Run with -race to also exercise the coherence protocol under the race
// detector.
func TestConcurrentOracle(t *testing.T) {
	const (
		mutations = 2000
		rounds    = 50
		clients   = 4
	)
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 4, QueueDepth: 64, CacheSize: 16})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	script := oracleScript(mutations)
	probes := oracleQueries()

	// Concurrent phase: in every round the clients' batches race one
	// slice of the mutation script. The round barrier guarantees edits
	// interleave with decisions across the run even on a single-CPU
	// host (within a round the scheduler decides).
	type obs struct{ ds []Decision }
	results := make(chan obs, clients*rounds)
	perRound := mutations / rounds
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ds, err := svc.Submit(context.Background(), probes)
				if err != nil {
					if errors.Is(err, ErrQueueFull) {
						return // backpressure is a legal answer
					}
					t.Errorf("Submit: %v", err)
					return
				}
				results <- obs{ds}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, m := range script[round*perRound : (round+1)*perRound] {
				if err := m(st); err != nil {
					t.Errorf("mutation: %v", err)
					return
				}
			}
		}()
		wg.Wait()
	}
	close(results)

	if got := st.Version(); got != 2*mutations {
		t.Fatalf("final version = %d, want %d", got, 2*mutations)
	}

	// Oracle replay: a fresh store stepped through the same script, with
	// one uncached MMU, gives the reference decision at every state.
	oracleStore, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("oracle NewStore: %v", err)
	}
	oracleMMU, err := oracleStore.NewWorkerMMU(mmu.Options{Validate: true})
	if err != nil {
		t.Fatalf("oracle MMU: %v", err)
	}
	oracle := make([][]Decision, mutations+1) // oracle[k][i]: probe i at state k
	for k := 0; k <= mutations; k++ {
		if k > 0 {
			if err := script[k-1](oracleStore); err != nil {
				t.Fatalf("oracle mutation %d: %v", k, err)
			}
		}
		oracle[k] = make([]Decision, len(probes))
		for i := range probes {
			evalQuery(oracleStore, oracleMMU, &probes[i], &oracle[k][i])
		}
	}

	checked, clean := 0, 0
	for o := range results {
		for i, d := range o.ds {
			lo, hi := d.VersionLo, d.VersionHi
			if hi < lo {
				t.Fatalf("probe %d: version interval [%d,%d] runs backwards", i, lo, hi)
			}
			loState, hiState := lo/2, (hi+1)/2
			if lo == hi && lo%2 == 0 {
				clean++
			}
			got := stripDecision(d)
			matched := false
			for k := loState; k <= hiState && !matched; k++ {
				matched = got == oracle[k][i]
			}
			if !matched {
				t.Fatalf("probe %d: decision %+v matches no oracle state in [%d,%d]",
					i, got, loState, hiState)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no decisions checked")
	}
	if clean == 0 {
		t.Error("no clean-snapshot decisions observed")
	}
	t.Logf("checked %d decisions (%d clean snapshots, %d overlapping a mutation) against %d oracle states",
		checked, clean, checked-clean, mutations+1)

	snap := svc.Snapshot()
	if snap.Cache.Hits == 0 || snap.Cache.Misses == 0 {
		t.Errorf("cache counters not exercised: %+v", snap.Cache)
	}
	if snap.Cache.Shootdowns == 0 {
		t.Errorf("no shootdowns recorded despite %d mutations", mutations)
	}
	if len(snap.LatencyNs) == 0 {
		t.Error("latency histogram empty")
	}
}

// TestOverlappedDecisionInterval pins a mutation open mid-flight and
// checks that decisions evaluated during it report an odd epoch and
// match one of the two states the mutation brackets — the non-singleton
// half of the oracle property that TestConcurrentOracle rarely samples.
func TestOverlappedDecisionInterval(t *testing.T) {
	st, err := NewStore(StoreConfig{}, testSegments())
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	svc, err := New(st, Config{Workers: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	// Hold one mutation open: revoke "code" (segno 1), then park inside
	// the epoch-odd window.
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- st.mutate(func() error {
			sdw, err := st.sup.FetchSDW(1)
			if err != nil {
				return err
			}
			sdw.Present = false
			if err := st.sup.StoreSDW(1, sdw); err != nil {
				return err
			}
			<-release
			return nil
		})
	}()
	waitFor(t, "mutation to open", func() bool { return st.Version() == 1 })

	probes := oracleQueries()
	ds, err := svc.Submit(context.Background(), probes)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("held mutation: %v", err)
	}

	// Oracle states 0 (image as built) and 1 (code revoked).
	states := make([][]Decision, 2)
	for k := range states {
		ost, err := NewStore(StoreConfig{}, testSegments())
		if err != nil {
			t.Fatalf("oracle NewStore: %v", err)
		}
		if k == 1 {
			if err := ost.Revoke(1); err != nil {
				t.Fatalf("oracle Revoke: %v", err)
			}
		}
		u, err := ost.NewWorkerMMU(mmu.Options{Validate: true})
		if err != nil {
			t.Fatalf("oracle MMU: %v", err)
		}
		states[k] = make([]Decision, len(probes))
		for i := range probes {
			evalQuery(ost, u, &probes[i], &states[k][i])
		}
	}

	for i, d := range ds {
		if d.VersionLo != 1 || d.VersionHi != 1 {
			t.Errorf("probe %d: version interval [%d,%d], want [1,1] (mid-mutation)",
				i, d.VersionLo, d.VersionHi)
		}
		got := stripDecision(d)
		if got != states[0][i] && got != states[1][i] {
			t.Errorf("probe %d: decision %+v matches neither bracketing state\n before: %+v\n after:  %+v",
				i, got, states[0][i], states[1][i])
		}
	}
	// The probe set must discriminate the two states, or the check above
	// is vacuous.
	differs := false
	for i := range probes {
		differs = differs || states[0][i] != states[1][i]
	}
	if !differs {
		t.Error("probe set cannot distinguish the bracketed states")
	}
}

// TestMetricsSnapshot checks the /metrics counters after known traffic.
func TestMetricsSnapshot(t *testing.T) {
	svc := newTestService(t, Config{Workers: 2})
	qs := []Query{
		{Op: OpAccess, Ring: 4, Segment: "data", Kind: core.AccessRead},   // allowed
		{Op: OpAccess, Ring: 5, Segment: "data", Kind: core.AccessRead},   // read bracket fault
		{Op: OpCall, Ring: 4, Segment: "code", Wordno: 1},                 // allowed
		{Op: OpReturn, Ring: 3, Segment: "code", EffRing: ring(1)},        // trap
		{Op: OpEffRing, Ring: 1, Chain: []ChainStep{{Ring: 0, Segno: 0}}}, // allowed
		{Op: OpAccess, Ring: 3, Segment: "nonesuch"},                      // error
	}
	for i := 0; i < 3; i++ {
		if _, err := svc.Submit(context.Background(), qs); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	snap := svc.Snapshot()
	if snap.Workers != 2 || snap.QueueCap != 64 {
		t.Errorf("shape: workers=%d cap=%d", snap.Workers, snap.QueueCap)
	}
	if snap.Batches != 3 || snap.Queries != 18 {
		t.Errorf("batches=%d queries=%d, want 3/18", snap.Batches, snap.Queries)
	}
	if snap.Allowed != 12 || snap.Denied != 3 || snap.Errors != 3 || snap.Trapped != 3 {
		t.Errorf("allowed=%d denied=%d errors=%d trapped=%d, want 12/3/3/3",
			snap.Allowed, snap.Denied, snap.Errors, snap.Trapped)
	}
	if snap.Ops[string(OpAccess)] != 9 || snap.Ops[string(OpCall)] != 3 ||
		snap.Ops[string(OpReturn)] != 3 || snap.Ops[string(OpEffRing)] != 3 {
		t.Errorf("per-op counts wrong: %v", snap.Ops)
	}
	if snap.Faults[core.ViolationReadBracket.String()] != 3 {
		t.Errorf("faults: %v", snap.Faults)
	}
	if snap.Cache.Hits+snap.Cache.Misses == 0 {
		t.Error("cache counters all zero")
	}
	if len(snap.PerWorkerCache) != 2 {
		t.Errorf("per-worker cache entries = %d, want 2", len(snap.PerWorkerCache))
	}
	if len(snap.LatencyNs) == 0 {
		t.Error("latency histogram empty")
	}
	var latTotal uint64
	for _, b := range snap.LatencyNs {
		latTotal += b.Count
	}
	if latTotal != snap.Batches {
		t.Errorf("latency histogram sums to %d, want %d batches", latTotal, snap.Batches)
	}
	if len(snap.Events) == 0 {
		t.Error("no trace events recorded")
	}
}
