// Package service exposes the MMU decision procedure as a concurrent
// protection-decision server: the reference monitor the paper's
// hardware implements, offered as a policy-decision point for many
// clients at once.
//
// The paper's validation logic — bracket checks, gate lists, the
// CALL/RETURN decision tables — is a mechanical procedure evaluated on
// every reference. internal/mmu already packages that procedure as the
// single access path of the simulated machine; this package puts a
// server around it:
//
//   - a Store holds one machine image: word-atomic shared core, the
//     descriptor segment, and a set of supervisor MMUs through which
//     every run-time descriptor edit flows. Each shard additionally
//     publishes its descriptors as an immutable RCU snapshot behind an
//     atomic pointer (see rcu.go);
//   - a Service runs a pool of workers, each a goroutine owning its own
//     MMU pointed at an epoch-counted snapshot reader — the paper's
//     several-processors-sharing-core configuration, with the
//     descriptor state distributed as published configurations instead
//     of coherently-cached mutable core — consuming batches of queries
//     from a bounded queue with backpressure;
//   - a Server speaks HTTP/JSON on top (see http.go) with /healthz and
//     /metrics endpoints.
//
// # Consistency model
//
// The descriptor store is sharded by segment number: shard i owns the
// descriptors whose segno & (Shards-1) == i, with its own mutation
// mutex, its own supervisor MMU, its own epoch counter — odd while an
// edit of one of its descriptors is in flight, even when quiescent —
// and its own published snapshot. Mutations of descriptors in
// different shards proceed concurrently; an operation that ever needs
// to quiesce the whole store must take the shard locks in ascending
// index order.
//
// Decision workers never lock: each worker pins, per batch, the
// current snapshot of every shard it consults (one atomic pointer load
// per shard per batch) and decides against that immutable table. A
// blocked or slow mutation therefore never delays a decision — readers
// keep answering from the last published snapshot. Mutators serialize
// per shard, write core (still authoritative for the CPU-simulator
// path), publish the successor snapshot, and reclaim old snapshot
// buffers only after a grace period; rcu.go documents the lifecycle
// and the reclamation rule.
//
// Each Decision reports the publication epoch of the snapshot it
// consulted as a degenerate interval (VersionLo == VersionHi, even):
// under snapshot reads every decision is a clean snapshot of the
// consulted shard, which the T12 experiment and the sharded
// differential test cross-check against a single-threaded oracle
// replay.
package service

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/seg"
	"repro/internal/word"
)

// Segment describes one segment of the protection image the store
// serves decisions about.
type Segment struct {
	Name string
	// Size is the segment length in words; zero means len(Words), and
	// at least one word is always allocated.
	Size  int
	Words []word.Word

	Read, Write, Execute bool
	Brackets             core.Brackets
	// Gates is the number of gate locations (words 0..Gates-1).
	Gates uint32
}

// StoreConfig sizes the store.
type StoreConfig struct {
	// MemWords is the shared core size; default 1<<21.
	MemWords int
	// MaxSegments bounds the descriptor segment; default 256.
	MaxSegments int
	// Shards is the number of descriptor-store shards (a power of two,
	// at most 64); default 8. Each shard serializes mutations of its own
	// descriptors under its own lock and epoch, so decision workers and
	// supervisor edits touching different shards never contend.
	Shards int
	// ShardsSet forces Shards to be honoured even when zero (invalid —
	// used by tests exercising the config check).
	ShardsSet bool
}

// MaxShards bounds StoreConfig.Shards. Shard sets consulted by one
// decision are tracked in a 64-bit mask, and more shards than cores buy
// nothing: the lock an edit takes protects one segment's descriptor,
// not a hot global structure.
const MaxShards = 64

// shard is one slice of the descriptor store: the descriptors with
// segno ≡ index (mod Shards), their mutation lock, their supervisor MMU
// (cache off — ring-0 software reads descriptors through core, and an
// uncached unit can never itself go stale), their epoch, and their
// published RCU snapshot with its retired/free buffer lists (rcu.go).
type shard struct {
	// epoch is odd while a mutation of this shard's descriptors is in
	// flight, even when quiescent; epoch/2 counts completed mutations.
	// It sits first, padded to a cache line, because readers load it
	// once per pin while mutators write it.
	epoch atomic.Uint64
	_     [56]byte // keep the shards' epochs on distinct cache lines

	// snap is the current published snapshot; readers load it with a
	// single atomic operation per pin and never lock. Padded so
	// publishes do not bounce the neighbouring shard's reader lines.
	snap atomic.Pointer[snapshot]
	_    [56]byte

	mu  sync.Mutex
	sup *mmu.MMU

	// retired holds predecessors awaiting their grace period; free
	// holds reclaimed SDW buffers for reuse. Both under mu, both
	// bounded (rcu.go).
	retired []*snapshot //ring:guarded mu
	free    [][]seg.SDW //ring:guarded mu
	stats   shardRCUStats
}

// shardRCUStats mirrors the shard's snapshot bookkeeping in atomics so
// RCUStats never takes a shard mutex (a blocked mutation must not
// block /metrics).
type shardRCUStats struct {
	publishes, reused, recycled, dropped atomic.Uint64
	retired, free                        atomic.Int64
}

// Store is the shared descriptor state of a decision service: the
// word-atomic core holding the descriptor segment and segment bodies,
// the coherence group every worker MMU joins, and the sharded
// supervisor units through which all mutations flow.
type Store struct {
	mem   *mem.Atomic
	alloc *mem.Allocator
	dbr   seg.DBR
	group *mmu.Group

	shards    []shard
	shardMask uint32
	shardBits uint32 // log2(Shards): segno >> shardBits indexes a shard's SDW table

	// readers is the copy-on-write list of registered epoch-counted
	// readers (rcu.go); readersMu serializes registration only —
	// reclamation scans load the pointer without locking.
	readersMu sync.Mutex
	readers   atomic.Pointer[[]*reader]

	// publishHook, when set, is called after every snapshot publication
	// with the shard index, the edited segment number and the new (even)
	// publication epoch — still under the shard's mutation lock, so for
	// a given shard the calls arrive in strictly increasing epoch order.
	// This is the network analogue of the coherence Group's shootdown
	// broadcast: the tenant layer fans the event out to subscribed wire
	// sessions. The hook must not block and must not call back into the
	// store's mutation path.
	publishHook atomic.Pointer[func(shard int, segno uint32, epoch uint64)]

	names  map[string]uint32
	segnos []string
}

// NewStore builds a store holding the given segments, numbered in
// order from 0.
func NewStore(cfg StoreConfig, defs []Segment) (*Store, error) {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 21
	}
	if cfg.MaxSegments == 0 {
		cfg.MaxSegments = 256
	}
	if cfg.Shards == 0 && !cfg.ShardsSet {
		cfg.Shards = 8
	}
	if cfg.Shards <= 0 || cfg.Shards > MaxShards || cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("service: shard count %d is not a power of two in [1,%d]", cfg.Shards, MaxShards)
	}
	if len(defs) > cfg.MaxSegments {
		return nil, fmt.Errorf("service: %d segments exceed MaxSegments %d", len(defs), cfg.MaxSegments)
	}
	m := mem.NewAtomic(cfg.MemWords)
	st := &Store{
		mem:       m,
		alloc:     mem.NewAllocator(cfg.MemWords, 2*cfg.MaxSegments),
		dbr:       seg.DBR{Addr: 0, Bound: uint32(cfg.MaxSegments)},
		group:     mmu.NewGroup(),
		shards:    make([]shard, cfg.Shards),
		shardMask: uint32(cfg.Shards - 1),
		shardBits: uint32(bits.TrailingZeros32(uint32(cfg.Shards))),
		names:     make(map[string]uint32, len(defs)),
	}
	st.readers.Store(&[]*reader{})
	for i := range st.shards {
		sup := mmu.New(m, mmu.Options{Validate: true})
		sup.SetDBR(st.dbr)
		st.group.Join(sup)
		st.shards[i].sup = sup
	}

	for i, def := range defs {
		if def.Name == "" {
			return nil, fmt.Errorf("service: segment %d has no name", i)
		}
		if _, dup := st.names[def.Name]; dup {
			return nil, fmt.Errorf("service: duplicate segment %q", def.Name)
		}
		size := def.Size
		if size == 0 {
			size = len(def.Words)
		}
		if size < len(def.Words) {
			return nil, fmt.Errorf("service: segment %q size %d below contents %d", def.Name, size, len(def.Words))
		}
		if size == 0 {
			size = 1 // a zero-length segment would make every reference a bound fault
		}
		base, err := st.alloc.Alloc(size)
		if err != nil {
			return nil, fmt.Errorf("service: placing %q: %w", def.Name, err)
		}
		if err := mem.WriteRange(m, base, def.Words); err != nil {
			return nil, err
		}
		sdw := seg.SDW{
			Present: true, Addr: uint32(base), Bound: uint32(size),
			Read: def.Read, Write: def.Write, Execute: def.Execute,
			Brackets: def.Brackets, Gate: def.Gates,
		}
		if err := st.shardFor(uint32(i)).sup.StoreSDW(uint32(i), sdw); err != nil {
			return nil, fmt.Errorf("service: segment %q: %w", def.Name, err)
		}
		st.names[def.Name] = uint32(i)
		st.segnos = append(st.segnos, def.Name)
	}
	// Publish each shard's initial snapshot (epoch 0). Shard i's table
	// covers segment numbers i, i+Shards, i+2*Shards, ... below the
	// descriptor bound.
	for i := range st.shards {
		sh := &st.shards[i]
		n := (int(st.dbr.Bound) + cfg.Shards - 1 - i) / cfg.Shards
		if n < 0 {
			n = 0
		}
		sdws := make([]seg.SDW, n)
		for k := range sdws {
			segno := uint32(i + k*cfg.Shards)
			sdw, err := sh.sup.FetchSDW(segno)
			if err != nil {
				return nil, fmt.Errorf("service: snapshot of segment %d: %w", segno, err)
			}
			sdws[k] = sdw
		}
		sh.snap.Store(&snapshot{epoch: 0, sdws: sdws})
	}
	return st, nil
}

// NewWorkerMMU creates one worker's MMU over the shared core, running
// the store's descriptor segment and joined to its coherence group. The
// returned unit must be owned by a single goroutine.
func (st *Store) NewWorkerMMU(opt mmu.Options) (*mmu.MMU, error) {
	if err := opt.Check(); err != nil {
		return nil, err
	}
	u := mmu.New(st.mem, opt)
	u.SetDBR(st.dbr)
	st.group.Join(u)
	return u, nil
}

// newSnapshotMMU builds one decision worker's MMU: no associative
// memory, no coherence-group membership — every descriptor fetch
// resolves from rd's pinned RCU snapshots instead of core. The
// returned unit (and rd) must be owned by a single goroutine.
func (st *Store) newSnapshotMMU(opt mmu.Options, rd *reader) *mmu.MMU {
	opt.CacheSize = 0
	u := mmu.New(st.mem, opt)
	u.SetDBR(st.dbr)
	u.SetSDWSource(rd)
	return u
}

// Segno resolves a segment name.
//
//ring:hotpath
func (st *Store) Segno(name string) (uint32, bool) {
	n, ok := st.names[name]
	return n, ok
}

// Segments returns the segment names in segment-number order.
func (st *Store) Segments() []string { return st.segnos }

// MaxSegments returns the descriptor-segment bound.
func (st *Store) MaxSegments() uint32 { return st.dbr.Bound }

// Shards returns the shard count.
func (st *Store) Shards() int { return len(st.shards) }

// ShardOf returns the index of the shard owning segno's descriptor.
//
//ring:hotpath
func (st *Store) ShardOf(segno uint32) int { return int(segno & st.shardMask) }

// shardFor returns the shard owning segno's descriptor.
func (st *Store) shardFor(segno uint32) *shard { return &st.shards[segno&st.shardMask] }

// ShardVersion returns shard i's mutation epoch: odd while an edit of
// one of its descriptors is in flight, even when quiescent.
// ShardVersion(i)/2 is the number of completed mutations in shard i.
//
//ring:hotpath
func (st *Store) ShardVersion(i int) uint64 { return st.shards[i].epoch.Load() }

// Version returns the store-wide mutation activity counter: the sum of
// the shard epochs. It is monotonic, equals twice the number of
// completed mutations when the store is quiescent, and is odd exactly
// when an odd number of edits are in flight. Per-shard clean-snapshot
// reasoning uses ShardVersion instead.
//
//ring:hotpath
func (st *Store) Version() uint64 {
	var sum uint64
	for i := range st.shards {
		sum += st.shards[i].epoch.Load()
	}
	return sum
}

// mutate brackets a descriptor edit with the owning shard's epoch
// counter and publishes the successor snapshot. The edit writes core
// through the supervisor MMU (StoreSDW — core stays authoritative for
// the CPU-simulator path and its shootdown protocol); on success the
// shard's RCU snapshot is rebuilt copy-on-write and published with the
// closing (even) epoch, so decision workers pick up the edit on their
// next batch without ever locking. A failed edit publishes nothing and
// leaves the old snapshot current.
func (st *Store) mutate(segno uint32, f func(sup *mmu.MMU) error) error {
	shi := st.ShardOf(segno)
	sh := &st.shards[shi]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	epoch := sh.epoch.Add(1) // odd: edit in flight
	err := f(sh.sup)
	if err == nil {
		err = st.publishLocked(shi, segno, epoch+1)
	}
	sh.epoch.Add(1)
	return err
}

// SetPublishHook installs f to be called after every snapshot
// publication (shard index, edited segno, new even epoch), under the
// publishing shard's mutation lock — per-shard calls are serialized in
// strictly increasing epoch order. A nil f removes the hook. Intended
// to be set once, before mutations begin, by the layer distributing
// invalidations (internal/tenant's lease hub).
func (st *Store) SetPublishHook(f func(shard int, segno uint32, epoch uint64)) {
	if f == nil {
		st.publishHook.Store(nil)
		return
	}
	st.publishHook.Store(&f)
}

// SDW fetches the current descriptor of segno through its shard's
// (uncached) supervisor unit, serialized against that shard's edits.
func (st *Store) SDW(segno uint32) (seg.SDW, error) {
	sh := st.shardFor(segno)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sup.FetchSDW(segno)
}

// SetBrackets replaces the flags, brackets and gate count of segno,
// keeping its placement. Supervisor functionality: the edit goes
// through StoreSDW, so every worker's associative memory sees it before
// its next fetch of that descriptor.
func (st *Store) SetBrackets(segno uint32, read, write, execute bool, b core.Brackets, gates uint32) error {
	return st.mutate(segno, func(sup *mmu.MMU) error {
		sdw, err := sup.FetchSDW(segno)
		if err != nil {
			return err
		}
		if !sdw.Present {
			return fmt.Errorf("service: setbrackets on absent segment %d", segno)
		}
		sdw.Read, sdw.Write, sdw.Execute = read, write, execute
		sdw.Brackets = b
		sdw.Gate = gates
		return sup.StoreSDW(segno, sdw)
	})
}

// Revoke clears the present flag of segno, leaving the rest of the
// descriptor intact: every subsequent reference takes a missing-segment
// fault. Because only the present bit changes, the edit is a single
// atomic core write and concurrent readers see exactly the old or the
// new descriptor.
func (st *Store) Revoke(segno uint32) error {
	return st.mutate(segno, func(sup *mmu.MMU) error {
		sdw, err := sup.FetchSDW(segno)
		if err != nil {
			return err
		}
		sdw.Present = false
		return sup.StoreSDW(segno, sdw)
	})
}

// Restore re-sets the present flag of a revoked segment.
func (st *Store) Restore(segno uint32) error {
	return st.mutate(segno, func(sup *mmu.MMU) error {
		sdw, err := sup.FetchSDW(segno)
		if err != nil {
			return err
		}
		sdw.Present = true
		return sup.StoreSDW(segno, sdw)
	})
}
