// Package service exposes the MMU decision procedure as a concurrent
// protection-decision server: the reference monitor the paper's
// hardware implements, offered as a policy-decision point for many
// clients at once.
//
// The paper's validation logic — bracket checks, gate lists, the
// CALL/RETURN decision tables — is a mechanical procedure evaluated on
// every reference. internal/mmu already packages that procedure as the
// single access path of the simulated machine; this package puts a
// server around it:
//
//   - a Store holds one machine image: word-atomic shared core, the
//     descriptor segment, and a supervisor MMU through which every
//     run-time descriptor edit flows (StoreSDW, so the coherence Group
//     keeps every worker's associative memory honest);
//   - a Service runs a pool of workers, each a goroutine owning its own
//     MMU and SDW associative memory — exactly the paper's
//     several-processors-sharing-core configuration — consuming batches
//     of queries from a bounded queue with backpressure;
//   - a Server speaks HTTP/JSON on top (see http.go) with /healthz and
//     /metrics endpoints.
//
// # Consistency model
//
// Queries and mutations race by design, as they do on the real machine:
// a processor referencing a segment while ring-0 software edits its
// descriptor sees either the old or the new word of the descriptor
// segment (core is word-atomic; SDWs are word pairs). The Store
// brackets every mutation with an epoch counter — odd while an edit is
// in flight, even when quiescent — and each Decision reports the epoch
// interval it was evaluated under. A decision whose interval is a
// single even epoch is a clean snapshot of the descriptor state at that
// version; the T12 experiment uses this to cross-check every concurrent
// decision against a single-threaded oracle replay.
package service

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/mmu"
	"repro/internal/seg"
	"repro/internal/word"
)

// Segment describes one segment of the protection image the store
// serves decisions about.
type Segment struct {
	Name string
	// Size is the segment length in words; zero means len(Words), and
	// at least one word is always allocated.
	Size  int
	Words []word.Word

	Read, Write, Execute bool
	Brackets             core.Brackets
	// Gates is the number of gate locations (words 0..Gates-1).
	Gates uint32
}

// StoreConfig sizes the store.
type StoreConfig struct {
	// MemWords is the shared core size; default 1<<21.
	MemWords int
	// MaxSegments bounds the descriptor segment; default 256.
	MaxSegments int
}

// Store is the shared descriptor state of a decision service: the
// word-atomic core holding the descriptor segment and segment bodies,
// the coherence group every worker MMU joins, and the supervisor MMU
// through which all mutations flow.
type Store struct {
	mem   *mem.Atomic
	alloc *mem.Allocator
	dbr   seg.DBR
	group *mmu.Group

	// mu serializes mutations; sup is the supervisor's MMU (cache off —
	// ring-0 software reads descriptors through core, and an uncached
	// unit can never itself go stale).
	mu  sync.Mutex
	sup *mmu.MMU

	// epoch is odd while a mutation is in flight, even when quiescent;
	// epoch/2 counts completed mutations.
	epoch atomic.Uint64

	names  map[string]uint32
	segnos []string
}

// NewStore builds a store holding the given segments, numbered in
// order from 0.
func NewStore(cfg StoreConfig, defs []Segment) (*Store, error) {
	if cfg.MemWords == 0 {
		cfg.MemWords = 1 << 21
	}
	if cfg.MaxSegments == 0 {
		cfg.MaxSegments = 256
	}
	if len(defs) > cfg.MaxSegments {
		return nil, fmt.Errorf("service: %d segments exceed MaxSegments %d", len(defs), cfg.MaxSegments)
	}
	m := mem.NewAtomic(cfg.MemWords)
	st := &Store{
		mem:   m,
		alloc: mem.NewAllocator(cfg.MemWords, 2*cfg.MaxSegments),
		dbr:   seg.DBR{Addr: 0, Bound: uint32(cfg.MaxSegments)},
		group: mmu.NewGroup(),
		names: make(map[string]uint32, len(defs)),
	}
	st.sup = mmu.New(m, mmu.Options{Validate: true})
	st.sup.SetDBR(st.dbr)
	st.group.Join(st.sup)

	for i, def := range defs {
		if def.Name == "" {
			return nil, fmt.Errorf("service: segment %d has no name", i)
		}
		if _, dup := st.names[def.Name]; dup {
			return nil, fmt.Errorf("service: duplicate segment %q", def.Name)
		}
		size := def.Size
		if size == 0 {
			size = len(def.Words)
		}
		if size < len(def.Words) {
			return nil, fmt.Errorf("service: segment %q size %d below contents %d", def.Name, size, len(def.Words))
		}
		if size == 0 {
			size = 1 // a zero-length segment would make every reference a bound fault
		}
		base, err := st.alloc.Alloc(size)
		if err != nil {
			return nil, fmt.Errorf("service: placing %q: %w", def.Name, err)
		}
		if err := mem.WriteRange(m, base, def.Words); err != nil {
			return nil, err
		}
		sdw := seg.SDW{
			Present: true, Addr: uint32(base), Bound: uint32(size),
			Read: def.Read, Write: def.Write, Execute: def.Execute,
			Brackets: def.Brackets, Gate: def.Gates,
		}
		if err := st.sup.StoreSDW(uint32(i), sdw); err != nil {
			return nil, fmt.Errorf("service: segment %q: %w", def.Name, err)
		}
		st.names[def.Name] = uint32(i)
		st.segnos = append(st.segnos, def.Name)
	}
	return st, nil
}

// NewWorkerMMU creates one worker's MMU over the shared core, running
// the store's descriptor segment and joined to its coherence group. The
// returned unit must be owned by a single goroutine.
func (st *Store) NewWorkerMMU(opt mmu.Options) (*mmu.MMU, error) {
	if err := opt.Check(); err != nil {
		return nil, err
	}
	u := mmu.New(st.mem, opt)
	u.SetDBR(st.dbr)
	st.group.Join(u)
	return u, nil
}

// Segno resolves a segment name.
func (st *Store) Segno(name string) (uint32, bool) {
	n, ok := st.names[name]
	return n, ok
}

// Segments returns the segment names in segment-number order.
func (st *Store) Segments() []string { return st.segnos }

// MaxSegments returns the descriptor-segment bound.
func (st *Store) MaxSegments() uint32 { return st.dbr.Bound }

// Version returns the mutation epoch: odd while a descriptor edit is in
// flight, even when quiescent. Version/2 is the number of completed
// mutations.
func (st *Store) Version() uint64 { return st.epoch.Load() }

// mutate brackets a descriptor edit with the epoch counter. Posting the
// shootdown (inside StoreSDW) happens before the closing bump, so a
// worker that observes the even epoch also observes the pending
// invalidation on its next SDW fetch.
func (st *Store) mutate(f func() error) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.epoch.Add(1)
	err := f()
	st.epoch.Add(1)
	return err
}

// SDW fetches the current descriptor of segno through the supervisor's
// (uncached) unit.
func (st *Store) SDW(segno uint32) (seg.SDW, error) {
	return st.sup.FetchSDW(segno)
}

// SetBrackets replaces the flags, brackets and gate count of segno,
// keeping its placement. Supervisor functionality: the edit goes
// through StoreSDW, so every worker's associative memory sees it before
// its next fetch of that descriptor.
func (st *Store) SetBrackets(segno uint32, read, write, execute bool, b core.Brackets, gates uint32) error {
	return st.mutate(func() error {
		sdw, err := st.sup.FetchSDW(segno)
		if err != nil {
			return err
		}
		if !sdw.Present {
			return fmt.Errorf("service: setbrackets on absent segment %d", segno)
		}
		sdw.Read, sdw.Write, sdw.Execute = read, write, execute
		sdw.Brackets = b
		sdw.Gate = gates
		return st.sup.StoreSDW(segno, sdw)
	})
}

// Revoke clears the present flag of segno, leaving the rest of the
// descriptor intact: every subsequent reference takes a missing-segment
// fault. Because only the present bit changes, the edit is a single
// atomic core write and concurrent readers see exactly the old or the
// new descriptor.
func (st *Store) Revoke(segno uint32) error {
	return st.mutate(func() error {
		sdw, err := st.sup.FetchSDW(segno)
		if err != nil {
			return err
		}
		sdw.Present = false
		return st.sup.StoreSDW(segno, sdw)
	})
}

// Restore re-sets the present flag of a revoked segment.
func (st *Store) Restore(segno uint32) error {
	return st.mutate(func() error {
		sdw, err := st.sup.FetchSDW(segno)
		if err != nil {
			return err
		}
		sdw.Present = true
		return st.sup.StoreSDW(segno, sdw)
	})
}
