// Package softring implements the paper's baseline: rings in software
// on a processor without ring hardware, the way the initial Multics ran
// on the Honeywell 645.
//
// The 645 provided segmentation with per-segment read/write/execute
// flags but no ring numbers, no effective-ring computation and no
// ring-crossing CALL/RETURN. Multics therefore kept a separate
// descriptor segment per ring: the descriptor segment for ring r grants
// exactly the access ring r should have, with plain flags. Crossing
// rings meant faulting into the supervisor, which validated the gate
// against its own tables, swapped the descriptor base register to the
// target ring's descriptor segment, performed software argument
// validation, and transferred — and did it all again on the way back.
//
// This package reproduces that arrangement on the same simulated
// processor and — crucially — against the same machine images: a
// program assembled for the hardware-ring machine runs unmodified on
// the software-ring machine. The hardware ring checks are neutralized
// by running every descriptor segment wide open (all brackets 7, gate
// count = bound) at a fixed hardware ring of 7, so the per-ring flags
// are the only protection, exactly as on the 645. The experiment
// harness (T1/T2/T3) then compares crossing costs between the two
// machines.
package softring

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/seg"
	"repro/internal/trap"
	"repro/internal/word"
)

// Software path lengths, in simulated cycles, charged on top of the
// hardware trap cost. They model the 645-era supervisor's ring-crossing
// code: gate lookup and validation, descriptor base swap, stack setup,
// and bookkeeping for the eventual return.
const (
	// CycGatekeeper is charged for every software ring crossing (call
	// or return leg).
	CycGatekeeper = 250
	// CycArgValidate is charged per argument word the gatekeeper
	// validates on a crossing (the software equivalent of the effective
	// ring mechanism, which validates arguments for free).
	CycArgValidate = 30
)

// hardwareRing is the fixed ring the processor executes in: with all
// brackets at 7, every flag-permitted access validates at ring 7, so
// the hardware ring machinery is inert.
const hardwareRing = core.Ring(7)

// policy is the supervisor's own record of a segment's ring brackets —
// the information the hardware machine keeps in SDWs, kept in software
// tables here (as the initial Multics did).
type policy struct {
	brackets core.Brackets
	gates    uint32
	execute  bool
	read     bool
	write    bool
	bound    uint32
}

// softReturn is a pending cross-ring return the gatekeeper must honour.
type softReturn struct {
	callerRing core.Ring
	retSeg     uint32
	retWord    uint32
}

// Machine is a software-ring machine wrapped around a standard image.
type Machine struct {
	Img *image.Image
	CPU *cpu.CPU

	// Ring is the current software ring of execution.
	Ring core.Ring

	// ArgWords, when positive, makes the gatekeeper validate that many
	// argument words through PR1 on every downward crossing, charging
	// CycArgValidate each — the software argument validation the
	// hardware scheme eliminates.
	ArgWords int

	// Crossings counts software ring crossings (each call or return
	// leg).
	Crossings int
	// Audit records gatekeeper decisions.
	Audit []string

	policies map[uint32]policy
	dsAddr   [core.NumRings]uint32 // descriptor segment base per ring
	dsBound  uint32
	retStack []softReturn
	// Exited/ExitCode mirror the hardware supervisor's clean exit so
	// benches can use the same program shapes.
	Exited   bool
	ExitCode int64
}

var _ cpu.TrapHandler = (*Machine)(nil)

// Wrap converts a standard hardware-ring image into a software-ring
// machine. The image's master descriptor segment supplies the policy
// tables; eight per-ring descriptor segments are materialized in spare
// core; the CPU is re-pointed at them and its trap handler replaced by
// the gatekeeper.
func Wrap(img *image.Image) (*Machine, error) {
	m := &Machine{
		Img:      img,
		CPU:      img.CPU,
		policies: map[uint32]policy{},
	}
	c := img.CPU
	master := c.Table()
	m.dsBound = c.DBR().Bound

	// Read every master SDW into the software policy table.
	sdws := make([]seg.SDW, m.dsBound)
	for segno := uint32(0); segno < m.dsBound; segno++ {
		sdw, err := master.Fetch(segno)
		if err != nil {
			return nil, err
		}
		sdws[segno] = sdw
		if sdw.Present {
			m.policies[segno] = policy{
				brackets: sdw.Brackets,
				gates:    sdw.Gate,
				execute:  sdw.Execute,
				read:     sdw.Read,
				write:    sdw.Write,
				bound:    sdw.Bound,
			}
		}
	}

	// Materialize the eight per-ring descriptor segments.
	for r := core.Ring(0); r < core.NumRings; r++ {
		base, err := img.Alloc.Alloc(int(m.dsBound) * 2)
		if err != nil {
			return nil, fmt.Errorf("softring: allocating ring-%d descriptor segment: %w", r, err)
		}
		m.dsAddr[r] = uint32(base)
		tbl := seg.Table{Mem: c.Mem(), DBR: seg.DBR{Addr: uint32(base), Bound: m.dsBound}}
		for segno := uint32(0); segno < m.dsBound; segno++ {
			sdw := sdws[segno]
			if !sdw.Present {
				continue
			}
			flat := flatten(sdw, r)
			if err := tbl.Store(segno, flat); err != nil {
				return nil, err
			}
		}
	}

	c.Handler = m
	c.Services = nil
	return m, nil
}

// flatten projects a bracketed SDW onto the plain-flag descriptor for
// ring r: the flags encode exactly what ring r may do, the brackets are
// fully open, and the gate list covers the whole segment (the 645 had
// no hardware gate check; gates are the gatekeeper's business).
func flatten(sdw seg.SDW, r core.Ring) seg.SDW {
	v := sdw.View()
	return seg.SDW{
		Present:  true,
		Addr:     sdw.Addr,
		Bound:    sdw.Bound,
		Read:     v.Permits(core.AccessRead, r),
		Write:    v.Permits(core.AccessWrite, r),
		Execute:  v.Permits(core.AccessExecute, r),
		Brackets: core.Brackets{R1: 7, R2: 7, R3: 7},
		Gate:     sdw.Bound,
	}
}

// Start begins execution in the given software ring at segName|wordno.
func (m *Machine) Start(ring core.Ring, segName string, wordno uint32) error {
	// image.Start establishes the standard register and stack-frame
	// conventions (including reserving the initial frame in the stack
	// counter); the ring fields are then flattened to the fixed
	// hardware ring, since on this machine the software variable is
	// the ring of record.
	if err := m.Img.Start(ring, segName, wordno); err != nil {
		return err
	}
	m.Ring = ring
	m.switchDS(ring)
	c := m.CPU
	c.IPR.Ring = hardwareRing
	c.PR[cpu.StackPtrPR].Ring = hardwareRing
	c.PR[cpu.StackBasePR].Ring = hardwareRing
	return nil
}

// Run executes until halt, unrecovered trap, or the step limit.
func (m *Machine) Run(limit int) (cpu.StopReason, error) {
	return m.CPU.Run(limit)
}

// switchDS points the DBR at ring r's descriptor segment — the software
// ring switch's central (and costly) act. The MMU flushes its SDW
// associative memory as part of the load: the software ring switch's
// hidden cost.
func (m *Machine) switchDS(r core.Ring) {
	m.CPU.SetDBR(seg.DBR{Addr: m.dsAddr[r], Bound: m.dsBound})
}

func (m *Machine) auditf(format string, args ...interface{}) {
	m.Audit = append(m.Audit, fmt.Sprintf(format, args...))
}

// HandleTrap is the 645-style supervisor: every cross-ring transfer
// arrives here as an access violation.
func (m *Machine) HandleTrap(c *cpu.CPU, t *trap.Trap) cpu.TrapAction {
	if t.Code != trap.AccessViolation || t.Violation == nil {
		m.auditf("fatal trap: %v", t)
		return cpu.TrapHalt
	}
	saved := c.PeekSaved()
	if saved == nil || saved.Trap != t {
		return cpu.TrapHalt
	}
	insWord, err := m.readWordAt(saved.IPR.Segno, saved.IPR.Wordno)
	if err != nil {
		return cpu.TrapHalt
	}
	ins := isa.DecodeInstruction(insWord)
	switch {
	case t.Violation.Kind == core.ViolationNoExecute && ins.Op == isa.CALL:
		return m.gatekeeperCall(c, t)
	case t.Violation.Kind == core.ViolationNoExecute && ins.Op == isa.RET:
		return m.gatekeeperReturn(c, t, true)
	case t.Violation.Kind == core.ViolationNoRead && ins.Op == isa.RET:
		// An upward-called procedure returning: its RETURN cannot even
		// read the lower-ring caller's frame, so the effective address
		// never completes. The gatekeeper honours the recorded return
		// gate, provided the faulting read was indeed aimed at the
		// caller's stack.
		if len(m.retStack) > 0 &&
			t.OperandSeg == uint32(m.retStack[len(m.retStack)-1].callerRing) {
			return m.gatekeeperReturn(c, t, false)
		}
		m.auditf("unreadable-operand violation outside return protocol: %v", t)
		return cpu.TrapHalt
	default:
		m.auditf("violation outside call/return: %v", t)
		return cpu.TrapHalt
	}
}

// gatekeeperCall performs the software ring-crossing call.
func (m *Machine) gatekeeperCall(c *cpu.CPU, t *trap.Trap) cpu.TrapAction {
	c.AddCycles(CycGatekeeper)
	m.Crossings++
	target := t.OperandSeg
	pol, ok := m.policies[target]
	if !ok || !pol.execute {
		m.auditf("call into non-executable segment %o", target)
		return cpu.TrapHalt
	}
	caller := m.Ring
	var newRing core.Ring
	switch {
	case caller > pol.brackets.R2:
		// Downward call: gate extension and gate list checks, in
		// software.
		if caller > pol.brackets.R3 {
			m.auditf("ring %d above gate extension of segment %o", caller, target)
			return cpu.TrapHalt
		}
		if t.OperandWord >= pol.gates {
			m.auditf("call to non-gate word %o of segment %o", t.OperandWord, target)
			return cpu.TrapHalt
		}
		newRing = pol.brackets.R2
	case caller < pol.brackets.R1:
		// Upward call.
		newRing = pol.brackets.R1
	default:
		// The target is executable in the caller's ring, yet the
		// per-ring descriptor faulted: inconsistent tables.
		m.auditf("descriptor/policy mismatch for segment %o", target)
		return cpu.TrapHalt
	}

	saved := c.PeekSaved()

	// Software argument validation: check read access to each argument
	// word through PR1 against the CALLER's descriptor segment.
	if m.ArgWords > 0 {
		pr1 := saved.PR[cpu.ArgListPR]
		for i := 0; i < m.ArgWords; i++ {
			c.AddCycles(CycArgValidate)
			argPol, ok := m.policies[pr1.Segno]
			if !ok || !argPol.read || !argPol.brackets.InReadBracket(caller) {
				m.auditf("argument list not readable by ring %d", caller)
				return cpu.TrapHalt
			}
		}
	}

	// Record the return gate: the caller's return point, saved by its
	// stic at frame word 0.
	pr6 := saved.PR[cpu.StackPtrPR]
	retInd, err := m.readWordAt(pr6.Segno, pr6.Wordno)
	if err != nil {
		m.auditf("cannot read caller frame: %v", err)
		return cpu.TrapHalt
	}
	ret := isa.DecodeIndirect(retInd)
	m.retStack = append(m.retStack, softReturn{
		callerRing: caller,
		retSeg:     ret.Segno,
		retWord:    ret.Wordno,
	})

	// Perform the switch: descriptor base swap, ring variable, stack
	// base, transfer.
	if err := c.DropSaved(); err != nil {
		return cpu.TrapHalt
	}
	m.Ring = newRing
	m.switchDS(newRing)
	c.PR[cpu.StackBasePR] = cpu.Pointer{Ring: hardwareRing, Segno: uint32(newRing), Wordno: 0}
	c.IPR = cpu.Pointer{Ring: hardwareRing, Segno: target, Wordno: t.OperandWord}
	m.auditf("software crossing: call ring %d -> %d, target (%o|%o)",
		caller, newRing, target, t.OperandWord)
	return cpu.TrapResume
}

// gatekeeperReturn performs the software cross-ring return. verify is
// false only for the upward-call return leg, where the effective
// address never completed and the recorded gate is authoritative.
func (m *Machine) gatekeeperReturn(c *cpu.CPU, t *trap.Trap, verify bool) cpu.TrapAction {
	c.AddCycles(CycGatekeeper)
	m.Crossings++
	if len(m.retStack) == 0 {
		m.auditf("cross-ring return with empty return stack")
		return cpu.TrapHalt
	}
	top := m.retStack[len(m.retStack)-1]
	if verify && (t.OperandSeg != top.retSeg || t.OperandWord != top.retWord) {
		m.auditf("return target (%o|%o) does not match recorded gate (%o|%o)",
			t.OperandSeg, t.OperandWord, top.retSeg, top.retWord)
		return cpu.TrapHalt
	}
	m.retStack = m.retStack[:len(m.retStack)-1]
	if err := c.DropSaved(); err != nil {
		return cpu.TrapHalt
	}
	from := m.Ring
	m.Ring = top.callerRing
	m.switchDS(top.callerRing)
	c.PR[cpu.StackBasePR] = cpu.Pointer{Ring: hardwareRing, Segno: uint32(top.callerRing), Wordno: 0}
	c.IPR = cpu.Pointer{Ring: hardwareRing, Segno: top.retSeg, Wordno: top.retWord}
	m.auditf("software crossing: return ring %d -> %d", from, top.callerRing)
	return cpu.TrapResume
}

// readWordAt performs a supervisor-privilege read through the CURRENT
// descriptor segment's addressing (addresses are ring-independent). It
// goes through the processor's MMU so descriptor fetches hit the same
// associative memory as the hardware path.
func (m *Machine) readWordAt(segno, wordno uint32) (word.Word, error) {
	pol, ok := m.policies[segno]
	if !ok || wordno >= pol.bound {
		return 0, fmt.Errorf("softring: read outside segment %o", segno)
	}
	sdw, err := m.CPU.MMU.FetchSDW(segno)
	if err != nil {
		return 0, err
	}
	return m.CPU.MMU.Read(sdw, wordno)
}
