package softring_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/softring"
)

// The canonical cross-ring program: ring-4 caller, ring-1 gated
// service, the paper's full calling convention. It runs unmodified on
// both the hardware machine (asm tests prove that) and the software
// machine (these tests).
const crossRingSrc = `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    service$serve
        hlt

        .seg    service
        .bracket 1,1,5
        .gate   serve
serve:  eap5    pr0|1
        spr6    pr5|0
        lia     1234
        eap6    *pr5|0
        return  *pr6|0
`

func wrap(t *testing.T, src string, extra ...image.SegmentDef) *softring.Machine {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.BuildImage(image.Config{}, prog, extra...)
	if err != nil {
		t.Fatal(err)
	}
	m, err := softring.Wrap(img)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSoftwareCrossRingCall(t *testing.T) {
	m := wrap(t, crossRingSrc)
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, m.Audit)
	}
	if m.CPU.A.Int64() != 1234 {
		t.Errorf("A = %d", m.CPU.A.Int64())
	}
	if m.Ring != 4 {
		t.Errorf("final software ring %d, want 4", m.Ring)
	}
	// The whole point of the baseline: the crossing took TWO software
	// interventions (call leg, return leg).
	if m.Crossings != 2 {
		t.Errorf("crossings = %d, want 2; audit: %v", m.Crossings, m.Audit)
	}
}

func TestSoftwareSameRingCallNoCrossing(t *testing.T) {
	m := wrap(t, `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    peer$go
        hlt

        .seg    peer
        .bracket 4,4,5
        .gate   go
go:     eap5    *pr0|0          ; same-ring call: frame from the counter,
        spr6    pr5|0           ; not the fixed slot, which would collide
        lia     7               ; with the caller's own frame
        eap6    *pr5|0
        return  *pr6|0
`)
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, m.Audit)
	}
	if m.CPU.A.Int64() != 7 {
		t.Errorf("A = %d", m.CPU.A.Int64())
	}
	// Same-ring calls do not enter the gatekeeper at all.
	if m.Crossings != 0 {
		t.Errorf("crossings = %d, want 0; audit: %v", m.Crossings, m.Audit)
	}
}

func TestSoftwareGateEnforcement(t *testing.T) {
	// Call aimed past the gate list: the software gatekeeper denies it.
	m := wrap(t, `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    *badlink
        hlt
badlink: .its   0, service$serve

        .seg    service
        .bracket 1,1,5
        .gate   serve
serve:  hlt
`)
	// Re-point badlink (word 3: stic, call, hlt, badlink) one word past
	// the gate.
	raw, err := m.Img.ReadWord("main", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Img.WriteWord("main", 3, raw.Deposit(0, 18, uint64(raw.Field(0, 18)+1))); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err == nil {
		t.Fatal("non-gate call allowed")
	}
	found := false
	for _, a := range m.Audit {
		if strings.Contains(a, "non-gate") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit: %v", m.Audit)
	}
}

func TestSoftwareGateExtensionEnforcement(t *testing.T) {
	m := wrap(t, `
        .seg    main
        .bracket 6,6,6
        stic    pr6|0,+1
        call    service$serve
        hlt

        .seg    service
        .bracket 1,1,5
        .gate   serve
serve:  hlt
`)
	if err := m.Start(6, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err == nil {
		t.Fatal("ring 6 crossed a gate with extension to 5")
	}
}

func TestSoftwareArgumentValidationCharges(t *testing.T) {
	m := wrap(t, crossRingSrc)
	m.ArgWords = 3
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	// PR1 must point at a readable argument list; use main itself.
	mainSeg, _ := m.Img.Segno("main")
	m.CPU.PR[1].Segno = mainSeg
	before := m.CPU.Cycles
	if _, err := m.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, m.Audit)
	}
	withArgs := m.CPU.Cycles - before

	m2 := wrap(t, crossRingSrc)
	if err := m2.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	before = m2.CPU.Cycles
	if _, err := m2.Run(10000); err != nil {
		t.Fatal(err)
	}
	withoutArgs := m2.CPU.Cycles - before
	if withArgs <= withoutArgs {
		t.Errorf("argument validation free: %d vs %d cycles", withArgs, withoutArgs)
	}
	if withArgs-withoutArgs != 3*softring.CycArgValidate {
		t.Errorf("arg validation delta %d, want %d", withArgs-withoutArgs, 3*softring.CycArgValidate)
	}
}

func TestSoftwareUpwardCallAndReturn(t *testing.T) {
	m := wrap(t, `
        .seg    low
        .bracket 1,1,1
        lia     41
        stic    pr6|0,+1
        call    high$bump
        hlt

        .seg    high
        .bracket 4,4,4
        .gate   bump
bump:   aia     1
        return  *pr6|0
`)
	if err := m.Start(1, "low", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, m.Audit)
	}
	if m.CPU.A.Int64() != 42 {
		t.Errorf("A = %d; audit: %v", m.CPU.A.Int64(), m.Audit)
	}
	if m.Ring != 1 {
		t.Errorf("final ring %d", m.Ring)
	}
	if m.Crossings != 2 {
		t.Errorf("crossings = %d", m.Crossings)
	}
}

func TestSoftwarePerRingFlagsProtectData(t *testing.T) {
	// Even without ring hardware, the per-ring descriptor segments
	// enforce the bracket policy: ring-4 code cannot write a segment
	// writable only through ring 3.
	m := wrap(t, `
        .seg    main
        .bracket 4,4,4
        lia     1
        sta     *ptr
        hlt
ptr:    .its    4, guarded$base
`,
		image.SegmentDef{
			Name: "guarded", Size: 4, Read: true, Write: true,
			Brackets: core.Brackets{R1: 3, R2: 5, R3: 5},
		})
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err == nil {
		t.Fatal("write permitted despite per-ring flags")
	}
	w, _ := m.Img.ReadWord("guarded", 0)
	if !w.IsZero() {
		t.Error("guarded word written")
	}
}

func TestSoftwareCrossingCostsMoreThanHardware(t *testing.T) {
	// The T1 claim, in miniature: the identical program crosses rings
	// more cheaply on the hardware machine.
	prog := asm.MustAssemble(crossRingSrc)
	hwImg, err := asm.BuildImage(image.Config{}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if err := hwImg.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := hwImg.CPU.Run(10000); err != nil {
		t.Fatal(err)
	}
	hwCycles := hwImg.CPU.Cycles

	m := wrap(t, crossRingSrc)
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	swCycles := m.CPU.Cycles

	if swCycles <= 2*hwCycles {
		t.Errorf("software rings suspiciously cheap: hw=%d sw=%d", hwCycles, swCycles)
	}
	if hwImg.CPU.A != m.CPU.A {
		t.Error("machines disagree on the program result")
	}
}

func TestSoftwareReturnTargetMismatch(t *testing.T) {
	// A callee that forges a different return target than the recorded
	// gate is refused.
	m := wrap(t, `
        .seg    main
        .bracket 4,4,4
        stic    pr6|0,+1
        call    service$serve
        hlt
        .entry  decoy
decoy:  nop
        hlt

        .seg    service
        .bracket 1,1,5
        .gate   serve
serve:  return  *forged         ; aims at decoy, not the recorded gate
forged: .its    0, main$decoy
`)
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err == nil {
		t.Fatal("forged return target accepted")
	}
	found := false
	for _, a := range m.Audit {
		if strings.Contains(a, "does not match recorded gate") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit: %v", m.Audit)
	}
}

func TestSoftwareReturnWithEmptyStack(t *testing.T) {
	// A cross-ring RETURN with no recorded crossing (the program never
	// crossed) is refused.
	m := wrap(t, `
        .seg    rogue
        .bracket 4,4,4
        return  *target
target: .its    0, sup$base

        .seg    sup
        .bracket 1,1,5
        .gate   entry
entry:  hlt
`)
	if err := m.Start(4, "rogue", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err == nil {
		t.Fatal("unmatched cross-ring return accepted")
	}
	found := false
	for _, a := range m.Audit {
		if strings.Contains(a, "empty return stack") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit: %v", m.Audit)
	}
}

func TestSoftwareViolationOutsideCallReturn(t *testing.T) {
	// A plain TRA into another ring's code is not a sanctioned crossing:
	// the gatekeeper refuses it.
	m := wrap(t, `
        .seg    main
        .bracket 4,4,4
        tra     *target
target: .its    0, sup$base

        .seg    sup
        .bracket 1,1,5
        .gate   entry
entry:  hlt
`)
	if err := m.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(1000); err == nil {
		t.Fatal("TRA crossing accepted")
	}
	found := false
	for _, a := range m.Audit {
		if strings.Contains(a, "outside call/return") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit: %v", m.Audit)
	}
}

func TestSoftwareExitedFieldsUnused(t *testing.T) {
	// The baseline machine has no SVC services: documented behaviour.
	m := wrap(t, crossRingSrc)
	if m.Exited || m.ExitCode != 0 {
		t.Error("fresh machine claims exit state")
	}
	if m.CPU.Services != nil {
		t.Error("baseline machine has services")
	}
}
