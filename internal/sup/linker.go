package sup

import (
	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/trap"
)

// Dynamic linking. In Multics, inter-segment references begin life as
// unsnapped link words; the first reference through one raises a
// linkage fault, and the supervisor's linker resolves the symbolic
// target, snaps the link in place, and resumes the faulting
// instruction. Later references go straight through the snapped word at
// full hardware speed. This file is that linker: asm.LinkDeferred
// aims every inter-segment link word at an absent "fault segment" whose
// word number carries the link's identity, and the missing-segment
// handler below recognizes those faults and snaps.

// CycLinkSnap is the simulated supervisor path length per link snap
// (symbol lookup and patch).
const CycLinkSnap = 180

// lazyLinks is the per-process linkage table.
type lazyLinks struct {
	faultSegno uint32
	table      []asm.DeferredLink
	prog       *asm.Program
	// Snapped counts resolved links.
	snapped int
}

// RegisterLazyLinks installs a linkage-fault table: references through
// link words aimed at faultSegno will be snapped on first use. The
// image must be attached (Attach), since snapping patches link words by
// segment name.
func (s *Supervisor) RegisterLazyLinks(faultSegno uint32, prog *asm.Program, table []asm.DeferredLink) {
	s.links = &lazyLinks{faultSegno: faultSegno, table: table, prog: prog}
}

// LinksSnapped reports how many links have been snapped so far.
func (s *Supervisor) LinksSnapped() int {
	if s.links == nil {
		return 0
	}
	return s.links.snapped
}

// linkageFault recognizes and services a linkage fault. Returns
// (action, true) when the trap was a linkage fault.
func (s *Supervisor) linkageFault(c *cpu.CPU, t *trap.Trap) (cpu.TrapAction, bool) {
	if s.links == nil || t.OperandSeg != s.links.faultSegno || s.Img == nil {
		return cpu.TrapHalt, false
	}
	id := t.OperandWord
	if int(id) >= len(s.links.table) {
		s.auditf("linkage fault with bad link id %d", id)
		return cpu.TrapHalt, true
	}
	d := s.links.table[id]
	segno, wordno, err := asm.ResolveDeferred(s.Img, s.links.prog, d)
	if err != nil {
		s.auditf("linkage fault: %v", err)
		return cpu.TrapHalt, true
	}
	raw, err := s.Img.ReadWord(d.OwnerSeg, d.Wordno)
	if err != nil {
		s.auditf("linkage fault: %v", err)
		return cpu.TrapHalt, true
	}
	ind := isa.DecodeIndirect(raw)
	ind.Segno = segno
	ind.Wordno = wordno
	if err := s.Img.WriteWord(d.OwnerSeg, d.Wordno, ind.Encode()); err != nil {
		s.auditf("linkage fault: %v", err)
		return cpu.TrapHalt, true
	}
	s.links.snapped++
	c.AddCycles(CycLinkSnap)
	s.auditf("link snapped: %s+%o -> %s$%s (%o|%o)",
		d.OwnerSeg, d.Wordno, d.TargetSeg, symOrBase(d.TargetSym), segno, wordno)
	if err := c.RestoreSaved(); err != nil {
		return cpu.TrapHalt, true
	}
	return cpu.TrapResume, true
}

func symOrBase(sym string) string {
	if sym == "" {
		return "base"
	}
	return sym
}

// BootDeferred assembles source with the system gates, builds the
// image, defers all inter-segment links, attaches a supervisor and
// registers the linkage table — a dynamic-linking boot in one call.
func BootDeferred(user, source string) (*Supervisor, *asm.Program, error) {
	prog, err := asm.Assemble(GateSource + source)
	if err != nil {
		return nil, nil, err
	}
	// Build WITHOUT the standard link step, then defer.
	img, err := buildUnlinked(prog)
	if err != nil {
		return nil, nil, err
	}
	// The fault segment: the last descriptor slot, never allocated.
	faultSegno := img.CPU.DBR().Bound - 1
	table, err := asm.LinkDeferred(img, prog, faultSegno)
	if err != nil {
		return nil, nil, err
	}
	s := Attach(img, user)
	s.RegisterLazyLinks(faultSegno, prog, table)
	return s, prog, nil
}

// buildUnlinked places the program's segments without resolving links.
func buildUnlinked(prog *asm.Program) (*image.Image, error) {
	var defs []image.SegmentDef
	for _, ps := range prog.Segments {
		defs = append(defs, image.SegmentDef{
			Name:     ps.Name,
			Words:    ps.Words,
			Read:     ps.Read,
			Write:    ps.Write,
			Execute:  ps.Execute,
			Brackets: ps.Brackets,
			Gates:    ps.GateCount,
		})
	}
	return image.Build(image.Config{}, defs)
}
