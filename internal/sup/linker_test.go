package sup_test

import (
	"strings"
	"testing"

	"repro/internal/sup"
)

// TestDynamicLinking boots with every inter-segment link unsnapped and
// verifies: the first reference through each link takes a linkage
// fault and gets snapped; repeated references do not fault again; and
// execution is correct throughout.
func TestDynamicLinking(t *testing.T) {
	s, prog, err := sup.BootDeferred("alice", `
        .seg    main
        .bracket 4,4,4
        .access rwe
        lia     3
        sta     pr6|2
loop:   stic    pr6|0,+1
        call    adder$bump      ; unsnapped on the first iteration
        lda     pr6|2
        aia     -1
        sta     pr6|2
        tnz     loop
        lda     data$value      ; a second distinct link
        stic    pr6|0,+1
        call    sysgates$exit

        .seg    adder
        .bracket 1,1,5
        .gate   bump
bump:   eap5    *pr0|0
        spr6    pr5|0
        eap6    *pr5|0
        return  *pr6|0

        .seg    data
        .access rw
        .entry  value
value:  .word   321
`)
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	if err := s.Img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Img.CPU.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, s.Audit)
	}
	if !s.Exited || s.ExitCode != 321 {
		t.Fatalf("exit: %v %d; audit %v", s.Exited, s.ExitCode, s.Audit)
	}
	// Three calls through adder$bump, one exit link, one data link, and
	// the sysgates links used by the exit path: each distinct link
	// snapped exactly ONCE despite repeated use.
	snaps := 0
	for _, a := range s.Audit {
		if strings.Contains(a, "link snapped") {
			snaps++
		}
	}
	if snaps != s.LinksSnapped() {
		t.Errorf("audit snaps %d != counter %d", snaps, s.LinksSnapped())
	}
	// main uses exactly 3 links: adder$bump, data$value, sysgates$exit.
	if s.LinksSnapped() != 3 {
		t.Errorf("snapped %d links, want 3 (each snapped once)", s.LinksSnapped())
	}
}

func TestDeferredLinksUnusedStayUnsnapped(t *testing.T) {
	s, _, err := sup.BootDeferred("alice", `
        .seg    main
        .bracket 4,4,4
        lia     0
        stic    pr6|0,+1
        call    sysgates$exit
        call    ghostlib$never  ; present but never executed

        .seg    ghostlib
        .bracket 4,4,5
        .gate   never
never:  hlt
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Img.CPU.Run(1000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, s.Audit)
	}
	if !s.Exited {
		t.Fatal("no exit")
	}
	if s.LinksSnapped() != 1 { // only sysgates$exit
		t.Errorf("snapped %d, want 1", s.LinksSnapped())
	}
}

func TestLinkageFaultErrorPaths(t *testing.T) {
	// A missing-segment fault aimed at the fault segment with a bad
	// link id halts with an audit record.
	s, _, err := sup.BootDeferred("alice", `
        .seg    main
        .bracket 4,4,4
        lda     *bogus
        hlt
bogus:  .its    4, 0            ; patched to the fault segment, bad id
`)
	if err != nil {
		t.Fatal(err)
	}
	faultSegno := s.Img.CPU.DBR().Bound - 1
	raw, _ := s.Img.ReadWord("main", 2)
	patched := raw.Deposit(18, 14, uint64(faultSegno)).Deposit(0, 18, 9999)
	if err := s.Img.WriteWord("main", 2, patched); err != nil {
		t.Fatal(err)
	}
	if err := s.Img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Img.CPU.Run(100); err == nil {
		t.Fatal("bad link id accepted")
	}
	found := false
	for _, a := range s.Audit {
		if strings.Contains(a, "bad link id") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit: %v", s.Audit)
	}
}

func TestBootDeferredBadSource(t *testing.T) {
	if _, _, err := sup.BootDeferred("alice", "frob\n"); err == nil {
		t.Error("bad source accepted")
	}
}

func TestLinksSnappedWithoutTable(t *testing.T) {
	s := sup.New("x")
	if s.LinksSnapped() != 0 {
		t.Error("phantom snaps")
	}
}
