package sup

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/word"
)

// Supervisor service numbers (the SVC instruction's offset field).
// User rings never execute SVC directly — it is privileged — they CALL
// the corresponding gates of the "sysgates" segment, whose ring-0
// veneers execute it on their behalf. The calling ring is recovered
// from PR6, the caller's stack pointer, whose ring field the hardware
// guarantees is at least the caller's ring.
const (
	// SvcExit terminates the process cleanly; A is the exit code.
	SvcExit = 1
	// SvcPutChar appends the low 8 bits of A to the console.
	SvcPutChar = 2
	// SvcPutNum prints A as a signed decimal and a newline.
	SvcPutNum = 3
	// SvcGetCycles loads the cycle counter into A.
	SvcGetCycles = 4
	// SvcAudit appends an audit record carrying A.
	SvcAudit = 5
	// SvcSetBrackets changes the SDW of segment X0 to the flags and
	// brackets packed in A, subject to the sole-occupant rule for the
	// calling ring. A := 0 on success, -1 on denial.
	SvcSetBrackets = 6
	// SvcInitiate initiates reserved segment X0 for the process's user
	// per its ACL. A := 0 on success, -1 on denial.
	SvcInitiate = 7
	// SvcGetRing loads the calling ring into A.
	SvcGetRing = 8
)

// PackBrackets encodes flags and brackets for SvcSetBrackets:
// bits 0-2 R1, 3-5 R2, 6-8 R3, 9 read, 10 write, 11 execute.
func PackBrackets(read, write, execute bool, b core.Brackets) word.Word {
	w := word.Word(0).
		Deposit(0, 3, uint64(b.R1)).
		Deposit(3, 3, uint64(b.R2)).
		Deposit(6, 3, uint64(b.R3)).
		WithBit(9, read).
		WithBit(10, write).
		WithBit(11, execute)
	return w
}

// UnpackBrackets decodes a PackBrackets word.
func UnpackBrackets(w word.Word) (read, write, execute bool, b core.Brackets) {
	return w.Bit(9), w.Bit(10), w.Bit(11), core.Brackets{
		R1: core.Ring(w.Field(0, 3)),
		R2: core.Ring(w.Field(3, 3)),
		R3: core.Ring(w.Field(6, 3)),
	}
}

// callingRing recovers the ring the supervisor gate was called from.
func callingRing(c *cpu.CPU) core.Ring {
	return c.PR[cpu.StackPtrPR].Ring
}

// Service dispatches an SVC executed by ring-0 veneer code.
func (s *Supervisor) Service(c *cpu.CPU, n uint32) cpu.TrapAction {
	c.AddCycles(CycService)
	switch n {
	case SvcExit:
		s.Exited = true
		s.ExitCode = c.A.Int64()
		s.auditf("exit(%d) from ring %d", s.ExitCode, callingRing(c))
		return cpu.TrapHalt
	case SvcPutChar:
		s.Console.WriteByte(byte(c.A.Uint64() & 0xFF))
	case SvcPutNum:
		fmt.Fprintf(&s.Console, "%d\n", c.A.Int64())
	case SvcGetCycles:
		c.A = word.FromUint64(c.Cycles)
	case SvcAudit:
		s.auditf("audit from ring %d: %d", callingRing(c), c.A.Int64())
	case SvcSetBrackets:
		s.serviceSetBrackets(c)
	case SvcInitiate:
		if err := s.Initiate(c.X[0]); err != nil {
			s.auditf("initiate denied: %v", err)
			c.A = word.FromInt(-1)
		} else {
			c.A = 0
		}
	case SvcGetRing:
		c.A = word.FromUint64(uint64(callingRing(c)))
	default:
		s.auditf("unknown service %d", n)
		return cpu.TrapHalt
	}
	return cpu.TrapResume
}

// serviceSetBrackets implements the access-changing service with the
// sole-occupant check.
func (s *Supervisor) serviceSetBrackets(c *cpu.CPU) {
	segno := c.X[0]
	read, write, execute, br := UnpackBrackets(c.A)
	caller := callingRing(c)
	if br.R1 < caller || br.R2 < caller || br.R3 < caller {
		s.auditf("set-brackets denied: ring %d asked for %d,%d,%d",
			caller, br.R1, br.R2, br.R3)
		c.A = word.FromInt(-1)
		return
	}
	if err := br.Validate(); err != nil {
		s.auditf("set-brackets denied: %v", err)
		c.A = word.FromInt(-1)
		return
	}
	sdw, err := c.Table().Fetch(segno)
	if err != nil || !sdw.Present {
		s.auditf("set-brackets: no segment %o", segno)
		c.A = word.FromInt(-1)
		return
	}
	sdw.Read, sdw.Write, sdw.Execute = read, write, execute
	sdw.Brackets = br
	if err := c.StoreSDW(segno, sdw); err != nil {
		s.auditf("set-brackets: %v", err)
		c.A = word.FromInt(-1)
		return
	}
	s.auditf("set-brackets: segment %o now %v (by ring %d)", segno, sdw, caller)
	c.A = 0
}

// GateSource is the assembly source of the "sysgates" segment: the
// ring-0 gates through which rings 2-5 reach the supervisor services.
// Its execute bracket is [0,0] with a gate extension to ring 5 —
// exactly the paper's arrangement in which "procedures executing in
// rings 6 and 7 are not given access to supervisor gates". Each veneer
// follows the standard frame protocol so a gated supervisor call is
// object-code-identical to any other call.
const GateSource = `
        .seg    sysgates
        .bracket 0,0,5
        .gate   exit
        .gate   putchar
        .gate   putnum
        .gate   getcycles
        .gate   audit
        .gate   setbrackets
        .gate   initiate
        .gate   getring

exit:   svc     1               ; never returns

putchar: eap5   pr0|1
        spr6    pr5|0
        svc     2
        eap6    *pr5|0
        return  *pr6|0

putnum: eap5    pr0|1
        spr6    pr5|0
        svc     3
        eap6    *pr5|0
        return  *pr6|0

getcycles: eap5 pr0|1
        spr6    pr5|0
        svc     4
        eap6    *pr5|0
        return  *pr6|0

audit:  eap5    pr0|1
        spr6    pr5|0
        svc     5
        eap6    *pr5|0
        return  *pr6|0

setbrackets: eap5 pr0|1
        spr6    pr5|0
        svc     6
        eap6    *pr5|0
        return  *pr6|0

initiate: eap5  pr0|1
        spr6    pr5|0
        svc     7
        eap6    *pr5|0
        return  *pr6|0

getring: eap5   pr0|1
        spr6    pr5|0
        svc     8
        eap6    *pr5|0
        return  *pr6|0
`
