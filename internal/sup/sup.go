// Package sup implements the miniature layered supervisor of this
// reproduction: the ring-0 software the processor transfers to on a
// trap, plus the ring-0 services user rings reach through ordinary
// gated CALLs.
//
// The paper's supervisor occupies rings 0 and 1 of every process. Here
// the ring-0 core (trap dispatch, upward-call mediation, segment
// initiation, access-control setting) is implemented as Go code attached
// to the CPU's trap handler and SVC service table — the substitution
// DESIGN.md records — while the gate veneers user code actually CALLs
// are real simulated segments with real brackets and gate lists, so
// every protection decision on the way into and out of the supervisor
// is made by the simulated hardware, not by Go.
//
// # Upward calls and downward returns
//
// The hardware traps on an upward call (Figure 8). The supervisor
// mediates per the paper's discussion: it records a stacked return
// gate, builds a frame on the callee ring's stack holding the caller's
// return point, and redirects execution to the callee in its ring.
// The callee's eventual RETURN through that return point raises an
// access violation (the return point is not executable in the callee's
// ring — a downward return cannot be expressed through the effective
// ring, which never decreases), and the supervisor recognizes the
// violation against the top of the return-gate stack, verifies the
// restored environment, and completes the downward return.
package sup

import (
	"fmt"
	"strings"

	"repro/internal/acl"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/image"
	"repro/internal/isa"
	"repro/internal/seg"
	"repro/internal/trap"
	"repro/internal/word"
)

// Cycle charges for supervisor software paths, on top of the hardware
// trap cost. These stand in for the instruction path lengths of the
// 645-era software the paper contrasts with; the T1/T4 experiments
// report both simulated cycles and host time.
const (
	CycUpwardCallMediation = 120
	CycDownwardReturn      = 100
	CycSegmentFault        = 150
	CycService             = 20
)

// returnGate is one entry of the per-process stacked return gates the
// paper calls for ("this gate must behave as though it were stored in a
// push-down stack").
type returnGate struct {
	caller     cpu.SavedState // full caller state at the upward CALL
	calleeRing core.Ring
	retSeg     uint32 // the caller return point the callee will aim at
	retWord    uint32
	frame      uint32 // callee-stack frame the supervisor allocated
}

// OnlineSegment is a segment known to the storage system but not
// necessarily present in the process's virtual memory: the supervisor
// initiates it on demand (segment fault) or via the initiate service,
// after checking its ACL.
type OnlineSegment struct {
	Name     string
	Contents []word.Word
	Size     int // ≥ len(Contents); 0 means len(Contents)
	Gates    uint32
	ACL      acl.List
}

// Supervisor is the ring-0 (and ring-1) software of one process.
type Supervisor struct {
	Img  *image.Image
	User string // the user this process acts for

	// Console collects SVC console output (the typewriter of the
	// paper's I/O example).
	Console strings.Builder
	// Audit collects supervisor audit records.
	Audit []string
	// ExitCode is the A register at the exit service.
	ExitCode int64
	// Exited reports a clean exit-service termination.
	Exited bool

	// OnViolation, if set, is consulted for access violations that are
	// not downward returns; return true to halt (default) or false to
	// have the supervisor skip the faulting instruction (used by the
	// debugging-ring example to continue after a caught addressing
	// error).
	OnViolation func(*trap.Trap) bool

	gates  []returnGate
	online map[uint32]*OnlineSegment // reserved segno -> segment
	links  *lazyLinks
}

var _ cpu.TrapHandler = (*Supervisor)(nil)
var _ cpu.ServiceTable = (*Supervisor)(nil)

// New returns a supervisor for the given user, not yet wired to any
// machine. Img may remain nil when the supervisor serves a process
// whose segments are managed elsewhere (internal/proc); only Reserve
// and Initiate require an image.
func New(user string) *Supervisor {
	return &Supervisor{User: user, online: map[uint32]*OnlineSegment{}}
}

// Attach wires a supervisor to an image for the given user and returns
// it. The CPU's trap handler and service table are replaced.
func Attach(img *image.Image, user string) *Supervisor {
	s := New(user)
	s.Img = img
	img.CPU.Handler = s
	img.CPU.Services = s
	return s
}

// auditf appends a formatted audit record.
func (s *Supervisor) auditf(format string, args ...interface{}) {
	s.Audit = append(s.Audit, fmt.Sprintf(format, args...))
}

// HandleTrap is the fixed supervisor location the processor transfers
// to on a trap.
func (s *Supervisor) HandleTrap(c *cpu.CPU, t *trap.Trap) cpu.TrapAction {
	switch t.Code {
	case trap.UpwardCall:
		return s.mediateUpwardCall(c, t)
	case trap.AccessViolation:
		if act, ok := s.tryDownwardReturn(c, t); ok {
			return act
		}
		return s.violation(c, t)
	case trap.MissingSegment:
		if act, ok := s.linkageFault(c, t); ok {
			return act
		}
		if act, ok := s.segmentFault(c, t); ok {
			return act
		}
		return s.violation(c, t)
	case trap.IOCompletion, trap.TimerInterrupt:
		// Asynchronous conditions: record and resume the interrupted
		// computation (richer policies — wakeups, scheduling — belong
		// to internal/proc).
		s.auditf("%v (device %d)", t.Code, t.Service)
		if err := c.RestoreSaved(); err != nil {
			return cpu.TrapHalt
		}
		return cpu.TrapResume
	default:
		s.auditf("fatal trap: %v", t)
		return cpu.TrapHalt
	}
}

// violation applies the default (or example-installed) policy for a
// protection violation.
func (s *Supervisor) violation(c *cpu.CPU, t *trap.Trap) cpu.TrapAction {
	s.auditf("access violation: %v", t)
	if s.OnViolation != nil && !s.OnViolation(t) {
		// Skip the faulting instruction and continue: restore the
		// saved state with the instruction counter advanced.
		saved := c.PeekSaved()
		if saved == nil {
			return cpu.TrapHalt
		}
		saved.IPR.Wordno = word.Add18(saved.IPR.Wordno, 1)
		if err := c.RestoreSaved(); err != nil {
			return cpu.TrapHalt
		}
		return cpu.TrapResume
	}
	return cpu.TrapHalt
}

// stackSegnoFor mirrors the hardware's stack segment numbering rule.
func (s *Supervisor) stackSegnoFor(c *cpu.CPU, r core.Ring) uint32 {
	if c.Opt.StackRule == cpu.StackDBRBase {
		return c.DBR().Stack + uint32(r)
	}
	return uint32(r)
}

// mediateUpwardCall performs the software side of an upward call.
func (s *Supervisor) mediateUpwardCall(c *cpu.CPU, t *trap.Trap) cpu.TrapAction {
	c.AddCycles(CycUpwardCallMediation)
	saved := c.PeekSaved()
	if saved == nil || saved.Trap != t {
		s.auditf("upward call with corrupt save stack")
		return cpu.TrapHalt
	}
	// Target and new ring: the bottom of the target's execute bracket.
	tsdw, err := c.Table().Fetch(t.OperandSeg)
	if err != nil || !tsdw.Present || !tsdw.Execute {
		s.auditf("upward call to bad segment %o", t.OperandSeg)
		return cpu.TrapHalt
	}
	newRing := tsdw.Brackets.R1

	// The caller's return point: by convention the caller executed
	// `stic pr6|0,+1` immediately before the CALL, so its frame word 0
	// holds the return indirect word.
	callerPR6 := saved.PR[cpu.StackPtrPR]
	retInd, err := s.readWordAt(c, callerPR6.Segno, callerPR6.Wordno)
	if err != nil {
		s.auditf("upward call: cannot read caller frame: %v", err)
		return cpu.TrapHalt
	}
	ret := isa.DecodeIndirect(retInd)

	// Build a frame on the callee ring's stack holding the return
	// point, so the callee's standard epilogue works unchanged.
	stackSegno := s.stackSegnoFor(c, newRing)
	stackSDW, err := c.Table().Fetch(stackSegno)
	if err != nil || !stackSDW.Present {
		s.auditf("upward call: no stack for ring %d", newRing)
		return cpu.TrapHalt
	}
	counterWord, err := s.readWordAt(c, stackSegno, 0)
	if err != nil {
		return cpu.TrapHalt
	}
	counter := isa.DecodeIndirect(counterWord)
	frame := counter.Wordno
	// Leave the first conventional frame free: gate veneers build their
	// frame at the fixed slot past the counter word, and the mediation
	// pseudo-frame must not collide with it.
	if frame < image.StackFrameStart+image.FrameSize {
		frame = image.StackFrameStart + image.FrameSize
	}
	const frameSize = 2
	counter.Wordno = frame + frameSize
	if err := s.writeWordAt(c, stackSegno, 0, counter.Encode()); err != nil {
		return cpu.TrapHalt
	}
	// Frame word 0: the caller's return point (ring field preserved —
	// it names the caller's ring, below the callee's, so any RETURN
	// through it will trap back to us).
	if err := s.writeWordAt(c, stackSegno, frame, retInd); err != nil {
		return cpu.TrapHalt
	}

	// Record the stacked return gate, remove the trap frame, and
	// redirect into the callee.
	s.gates = append(s.gates, returnGate{
		caller:     *saved,
		calleeRing: newRing,
		retSeg:     ret.Segno,
		retWord:    ret.Wordno,
		frame:      frame,
	})
	if err := c.DropSaved(); err != nil {
		return cpu.TrapHalt
	}
	for i := range c.PR {
		c.PR[i].Ring = core.MaxRing(c.PR[i].Ring, newRing)
	}
	c.PR[cpu.StackBasePR] = cpu.Pointer{Ring: newRing, Segno: stackSegno, Wordno: 0}
	c.PR[cpu.StackPtrPR] = cpu.Pointer{Ring: newRing, Segno: stackSegno, Wordno: frame}
	c.IPR = cpu.Pointer{Ring: newRing, Segno: t.OperandSeg, Wordno: t.OperandWord}
	s.auditf("upward call mediated: ring %d -> %d, target (%o|%o)",
		saved.IPR.Ring, newRing, t.OperandSeg, t.OperandWord)
	return cpu.TrapResume
}

// tryDownwardReturn recognizes the access violation produced when an
// upward-called procedure RETURNs to its (lower-ring) caller, and
// completes the downward return against the stacked return gate.
func (s *Supervisor) tryDownwardReturn(c *cpu.CPU, t *trap.Trap) (cpu.TrapAction, bool) {
	if len(s.gates) == 0 {
		return cpu.TrapHalt, false
	}
	g := s.gates[len(s.gates)-1]
	// The violation must be the callee's RETURN aimed exactly at the
	// recorded return point, from the callee's ring.
	if t.Ring != g.calleeRing || t.OperandSeg != g.retSeg || t.OperandWord != g.retWord {
		return cpu.TrapHalt, false
	}
	saved := c.PeekSaved()
	if saved == nil || saved.Trap != t {
		return cpu.TrapHalt, false
	}
	insWord, err := s.readWordAt(c, saved.IPR.Segno, saved.IPR.Wordno)
	if err != nil {
		return cpu.TrapHalt, false
	}
	if isa.DecodeInstruction(insWord).Op != isa.RET {
		return cpu.TrapHalt, false
	}

	c.AddCycles(CycDownwardReturn)
	// Pass the callee's accumulators through as return values.
	retA, retQ := c.A, c.Q

	// Pop the violation frame and the gate; release the callee frame.
	if err := c.DropSaved(); err != nil {
		return cpu.TrapHalt, false
	}
	s.gates = s.gates[:len(s.gates)-1]
	stackSegno := s.stackSegnoFor(c, g.calleeRing)
	released := isa.Indirect{Ring: g.calleeRing, Segno: stackSegno, Wordno: g.frame}
	_ = s.writeWordAt(c, stackSegno, 0, released.Encode())

	// Restore the caller's environment — this is the "intervening
	// software verifies the restored stack pointer register value"
	// step: the supervisor restores the very state it recorded, so the
	// callee had no opportunity to forge it.
	st := g.caller
	c.IPR = st.IPR
	c.IPR.Wordno = word.Add18(st.IPR.Wordno, 1) // resume after the CALL
	c.PR = st.PR
	c.X = st.X
	c.Ind = st.Ind
	c.A, c.Q = retA, retQ
	s.auditf("downward return completed: ring %d -> %d", g.calleeRing, st.IPR.Ring)
	return cpu.TrapResume, true
}

// readWordAt and writeWordAt are ring-0 accesses to arbitrary virtual
// addresses (the supervisor holds all capabilities).
func (s *Supervisor) readWordAt(c *cpu.CPU, segno, wordno uint32) (word.Word, error) {
	sdw, err := c.Table().Fetch(segno)
	if err != nil {
		return 0, err
	}
	if !sdw.Present || wordno >= sdw.Bound {
		return 0, fmt.Errorf("sup: read outside segment %o", segno)
	}
	return c.Mem().Read(seg.Translate(sdw, wordno))
}

func (s *Supervisor) writeWordAt(c *cpu.CPU, segno, wordno uint32, w word.Word) error {
	sdw, err := c.Table().Fetch(segno)
	if err != nil {
		return err
	}
	if !sdw.Present || wordno >= sdw.Bound {
		return fmt.Errorf("sup: write outside segment %o", segno)
	}
	return c.Mem().Write(seg.Translate(sdw, wordno), w)
}

// ---------------------------------------------------------------------
// Demand segment initiation.

// Reserve registers an on-line segment without making it present: the
// descriptor slot is allocated, the SDW left absent. A later reference
// raises a segment fault, and the supervisor initiates the segment if
// the process's user passes its ACL — the paper's "adding a segment to
// a virtual memory" flow.
func (s *Supervisor) Reserve(os *OnlineSegment) (uint32, error) {
	if s.Img == nil {
		return 0, fmt.Errorf("sup: no image attached; Reserve unavailable")
	}
	if err := os.ACL.Validate(); err != nil {
		return 0, err
	}
	size := os.Size
	if size == 0 {
		size = len(os.Contents)
	}
	if size == 0 {
		return 0, fmt.Errorf("sup: reserving empty segment %q", os.Name)
	}
	os.Size = size
	segno, err := s.Img.Add(image.SegmentDef{
		Name: os.Name, Size: size, Words: os.Contents,
		// Placed but absent: flags and brackets come from the ACL at
		// initiation time.
		Read: true, Brackets: core.Brackets{R1: 7, R2: 7, R3: 7},
	})
	if err != nil {
		return 0, err
	}
	// Mark absent until initiated.
	sdw, err := s.Img.SDW(segno)
	if err != nil {
		return 0, err
	}
	sdw.Present = false
	if err := s.Img.CPU.StoreSDW(segno, sdw); err != nil {
		return 0, err
	}
	s.online[segno] = os
	return segno, nil
}

// Initiate makes a reserved segment present with the SDW contents the
// user's ACL entry dictates.
func (s *Supervisor) Initiate(segno uint32) error {
	os, ok := s.online[segno]
	if !ok {
		return fmt.Errorf("sup: segment %o not in on-line storage", segno)
	}
	entry, ok := os.ACL.Resolve(s.User)
	if !ok {
		return fmt.Errorf("sup: user %q denied by ACL of %q", s.User, os.Name)
	}
	sdw, err := s.Img.SDW(segno)
	if err != nil {
		return err
	}
	sdw.Present = true
	sdw.Read = entry.Read
	sdw.Write = entry.Write
	sdw.Execute = entry.Execute
	sdw.Brackets = entry.Brackets
	sdw.Gate = os.Gates
	if err := s.Img.CPU.StoreSDW(segno, sdw); err != nil {
		return err
	}
	s.auditf("initiated %q (segno %o) for %q: %v", os.Name, segno, s.User, sdw)
	return nil
}

// segmentFault handles a missing-segment trap by initiating the segment
// if it is reserved and the ACL permits, then resuming the disrupted
// instruction.
func (s *Supervisor) segmentFault(c *cpu.CPU, t *trap.Trap) (cpu.TrapAction, bool) {
	segno := t.OperandSeg
	if _, ok := s.online[segno]; !ok {
		return cpu.TrapHalt, false
	}
	c.AddCycles(CycSegmentFault)
	if err := s.Initiate(segno); err != nil {
		s.auditf("segment fault denied: %v", err)
		return cpu.TrapHalt, true
	}
	if err := c.RestoreSaved(); err != nil {
		return cpu.TrapHalt, true
	}
	return cpu.TrapResume, true
}
