package sup_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/acl"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/image"
	"repro/internal/sup"
	"repro/internal/trap"
	"repro/internal/word"
)

// boot assembles the system gates plus the given user source, links,
// and attaches a supervisor. The assembled program is returned so tests
// can consult symbol tables.
func boot(t *testing.T, user, src string, extra ...image.SegmentDef) (*image.Image, *sup.Supervisor, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(sup.GateSource + src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := asm.BuildImage(image.Config{}, prog, extra...)
	if err != nil {
		t.Fatal(err)
	}
	return img, sup.Attach(img, user), prog
}

// runToExit starts the program and expects a clean exit through the
// exit service.
func runToExit(t *testing.T, img *image.Image, s *sup.Supervisor, ring core.Ring, segName string) {
	t.Helper()
	if err := img.Start(ring, segName, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, s.Audit)
	}
	if !s.Exited {
		t.Fatalf("program did not exit cleanly; audit: %v", s.Audit)
	}
}

func TestSupervisorGateServices(t *testing.T) {
	img, s, _ := boot(t, "alice", `
        .seg    main
        .bracket 4,4,4
        lia     72              ; 'H'
        stic    pr6|0,+1
        call    sysgates$putchar
        lia     105             ; 'i'
        stic    pr6|0,+1
        call    sysgates$putchar
        lia     7
        stic    pr6|0,+1
        call    sysgates$putnum
        lia     0
        call    sysgates$exit
`)
	runToExit(t, img, s, 4, "main")
	if got := s.Console.String(); got != "Hi7\n" {
		t.Errorf("console: %q", got)
	}
	if s.ExitCode != 0 {
		t.Errorf("exit code %d", s.ExitCode)
	}
}

func TestGetRingReportsCallerRing(t *testing.T) {
	img, s, _ := boot(t, "alice", `
        .seg    main
        .bracket 3,3,3
        stic    pr6|0,+1
        call    sysgates$getring
        call    sysgates$exit   ; exit code = ring
`)
	runToExit(t, img, s, 3, "main")
	if s.ExitCode != 3 {
		t.Errorf("reported ring %d, want 3", s.ExitCode)
	}
}

func TestGatesClosedToRing6(t *testing.T) {
	img, s, _ := boot(t, "alice", `
        .seg    main
        .bracket 6,6,6
        lia     0
        stic    pr6|0,+1
        call    sysgates$exit
`)
	if err := img.Start(6, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(1000); err == nil {
		t.Fatal("ring 6 reached a supervisor gate")
	}
	if s.Exited {
		t.Fatal("exit service ran for ring 6")
	}
	found := false
	for _, a := range s.Audit {
		if strings.Contains(a, "access violation") {
			found = true
		}
	}
	if !found {
		t.Errorf("no violation audited: %v", s.Audit)
	}
}

func TestSetBracketsSoleOccupant(t *testing.T) {
	// A ring-4 program asks the supervisor to open a segment down to
	// ring 2 (denied by the sole-occupant rule), then up to ring 5
	// (permitted).
	img, s, prog := boot(t, "alice", `
        .seg    main
        .bracket 4,4,4
        .access rwe
        lix0    0               ; victim segno, patched by the test
        lda     grantlow
        stic    pr6|0,+1
        call    sysgates$setbrackets
        sta     firstres
        lix0    0               ; patched again
        lda     grantok
        stic    pr6|0,+1
        call    sysgates$setbrackets
        lda     firstres        ; exit with the FIRST (denied) result
        call    sysgates$exit
grantlow: .word 0
grantok:  .word 0
firstres: .word 99
`,
		image.SegmentDef{
			Name: "victim", Size: 8, Read: true, Write: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 4},
		})
	victim, err := img.Segno("victim")
	if err != nil {
		t.Fatal(err)
	}
	syms := prog.Segment("main").Symbols
	patch := func(name string, w word.Word) {
		t.Helper()
		if err := img.WriteWord("main", syms[name], w); err != nil {
			t.Fatal(err)
		}
	}
	patch("grantlow", sup.PackBrackets(true, true, false, core.Brackets{R1: 2, R2: 4, R3: 4}))
	patch("grantok", sup.PackBrackets(true, true, false, core.Brackets{R1: 4, R2: 5, R3: 5}))
	// Both lix0 instructions need the victim segno as their operand.
	for w := uint32(0); w < uint32(len(prog.Segment("main").Words)); w++ {
		raw, err := img.ReadWord("main", w)
		if err != nil {
			t.Fatal(err)
		}
		if raw.Field(27, 9) == 0o023 { // LIX
			if err := img.WriteWord("main", w, raw.Deposit(0, 18, uint64(victim))); err != nil {
				t.Fatal(err)
			}
		}
	}
	runToExit(t, img, s, 4, "main")
	if s.ExitCode != -1 {
		t.Errorf("low grant not denied: exit %d; audit %v", s.ExitCode, s.Audit)
	}
	sdw, err := img.SDW(victim)
	if err != nil {
		t.Fatal(err)
	}
	if sdw.Brackets.R2 != 5 || sdw.Brackets.R1 != 4 {
		t.Errorf("permitted change did not take effect: %v", sdw)
	}
}

func TestUpwardCallAndDownwardReturn(t *testing.T) {
	// Ring-1 code calls a ring-4 procedure (upward), which computes
	// A+1 and returns (downward). Both crossings are software-mediated.
	img, s, _ := boot(t, "alice", `
        .seg    low
        .bracket 1,1,1
        lia     41
        stic    pr6|0,+1
        call    high$bump       ; upward call: trap + mediation
        hlt                     ; back in ring 1 with A = 42

        .seg    high
        .bracket 4,4,4
        .gate   bump
bump:   aia     1
        return  *pr6|0          ; downward return: trap + mediation
`)
	if err := img.Start(1, "low", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, s.Audit)
	}
	if img.CPU.A.Int64() != 42 {
		t.Errorf("A = %d, want 42; audit: %v", img.CPU.A.Int64(), s.Audit)
	}
	if img.CPU.IPR.Ring != 1 {
		t.Errorf("final ring %d, want 1", img.CPU.IPR.Ring)
	}
	var up, down int
	for _, a := range s.Audit {
		if strings.Contains(a, "upward call mediated") {
			up++
		}
		if strings.Contains(a, "downward return completed") {
			down++
		}
	}
	if up != 1 || down != 1 {
		t.Errorf("mediations: up=%d down=%d; audit: %v", up, down, s.Audit)
	}
}

func TestRecursiveUpwardCalls(t *testing.T) {
	// Nested upward calls exercise the push-down behaviour of the
	// return gate stack: ring 1 -> ring 3 -> ring 5, returning through
	// both gates in LIFO order.
	img, s, _ := boot(t, "alice", `
        .seg    low
        .bracket 1,1,1
        lia     1
        stic    pr6|0,+1
        call    mid$step        ; up to ring 3
        hlt                     ; A should be 111

        .seg    mid
        .bracket 3,3,3
        .gate   step
step:   aia     10
        ; full frame protocol: mid makes a further call, so it must
        ; allocate its own frame and repoint PR6 before its stic.
        eap5    *pr0|0          ; PR5 := new frame from the counter
        spr6    pr5|1           ; save incoming PR6 at frame+1
        eap4    pr5|4
        spr4    pr0|0           ; bump counter to frame+4
        eap6    pr5|0           ; PR6 := my frame
        stic    pr6|0,+1
        call    upper$step      ; up again to ring 5
        spr5    pr0|0           ; pop my frame
        eap6    *pr5|1          ; restore incoming PR6 (ring-safe)
        return  *pr6|0          ; down to ring 1

        .seg    upper
        .bracket 5,5,5
        .gate   step
step:   aia     100
        return  *pr6|0          ; down to ring 3
`)
	if err := img.Start(1, "low", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, s.Audit)
	}
	if img.CPU.A.Int64() != 111 {
		t.Errorf("A = %d, want 111; audit: %v", img.CPU.A.Int64(), s.Audit)
	}
	if img.CPU.IPR.Ring != 1 {
		t.Errorf("final ring %d", img.CPU.IPR.Ring)
	}
}

func TestDemandSegmentInitiation(t *testing.T) {
	img, s, prog := boot(t, "alice", `
        .seg    main
        .bracket 4,4,4
        lda     *ptr            ; segment fault -> initiate -> resume
        call    sysgates$exit
ptr:    .its    4, 0            ; patched below
`)
	segno, err := s.Reserve(&sup.OnlineSegment{
		Name:     "shared",
		Contents: []word.Word{word.FromInt(1234)},
		ACL: acl.List{
			{User: "alice", Read: true, Brackets: core.Brackets{R1: 4, R2: 5, R3: 5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ptrOff := prog.Segment("main").Symbols["ptr"]
	raw, _ := img.ReadWord("main", ptrOff)
	if err := img.WriteWord("main", ptrOff, raw.Deposit(18, 14, uint64(segno))); err != nil {
		t.Fatal(err)
	}
	runToExit(t, img, s, 4, "main")
	if s.ExitCode != 1234 {
		t.Errorf("exit code %d, want 1234 (the demand-loaded word)", s.ExitCode)
	}
}

func TestDemandSegmentDeniedByACL(t *testing.T) {
	img, s, prog := boot(t, "mallory", `
        .seg    main
        .bracket 4,4,4
        lda     *ptr
        call    sysgates$exit
ptr:    .its    4, 0
`)
	segno, err := s.Reserve(&sup.OnlineSegment{
		Name:     "private",
		Contents: []word.Word{word.FromInt(5)},
		ACL: acl.List{
			{User: "alice", Read: true, Brackets: core.Brackets{R1: 4, R2: 5, R3: 5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ptrOff := prog.Segment("main").Symbols["ptr"]
	raw, _ := img.ReadWord("main", ptrOff)
	if err := img.WriteWord("main", ptrOff, raw.Deposit(18, 14, uint64(segno))); err != nil {
		t.Fatal(err)
	}
	if err := img.Start(4, "main", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(1000); err == nil {
		t.Fatal("mallory's reference succeeded")
	}
	if s.Exited {
		t.Error("program exited cleanly")
	}
}

func TestViolationSkipPolicy(t *testing.T) {
	// The debugging-ring policy: report the violation and continue with
	// the next instruction.
	img, s, _ := boot(t, "alice", `
        .seg    main
        .bracket 5,5,5
        lia     1
        sta     *ptr            ; violation: writable only through ring 4
        lia     7               ; still executed under the skip policy
        call    sysgates$exit
ptr:    .its    5, guarded$base
`,
		image.SegmentDef{
			Name: "guarded", Size: 4, Read: true, Write: true,
			Brackets: core.Brackets{R1: 4, R2: 5, R3: 5},
		})
	var caught []*trap.Trap
	s.OnViolation = func(tr *trap.Trap) bool {
		caught = append(caught, tr)
		return false // skip and continue
	}
	runToExit(t, img, s, 5, "main")
	if len(caught) != 1 {
		t.Fatalf("caught %d violations", len(caught))
	}
	if caught[0].Violation.Kind != core.ViolationWriteBracket {
		t.Errorf("violation: %v", caught[0].Violation)
	}
	if s.ExitCode != 7 {
		t.Errorf("exit code %d, want 7 (execution continued)", s.ExitCode)
	}
	// The guarded word was never written.
	w, _ := img.ReadWord("guarded", 0)
	if !w.IsZero() {
		t.Error("guarded word was written despite the violation")
	}
}

func TestUpwardCallPassesReturnValueInA(t *testing.T) {
	img, s, _ := boot(t, "alice", `
        .seg    low
        .bracket 2,2,2
        lia     5
        stic    pr6|0,+1
        call    calc$double
        hlt

        .seg    calc
        .bracket 6,6,6
        .gate   double
double: ada     self            ; A = A + A via scratch
        return  *pr6|0
        .access rwe
self:   .word   5
`)
	if err := img.Start(2, "low", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(10000); err != nil {
		t.Fatalf("run: %v\naudit: %v", err, s.Audit)
	}
	if img.CPU.A.Int64() != 10 {
		t.Errorf("A = %d, want 10", img.CPU.A.Int64())
	}
	if img.CPU.IPR.Ring != 2 {
		t.Errorf("final ring %d", img.CPU.IPR.Ring)
	}
}

func TestPackBracketsRoundTrip(t *testing.T) {
	f := func(r1s, r2s, r3s uint8, rd, wr, ex bool) bool {
		r1 := core.Ring(r1s % 8)
		r2 := r1 + core.Ring(r2s%uint8(8-r1))
		r3 := r2 + core.Ring(r3s%uint8(8-r2))
		b := core.Brackets{R1: r1, R2: r2, R3: r3}
		gr, gw, ge, gb := sup.UnpackBrackets(sup.PackBrackets(rd, wr, ex, b))
		return gr == rd && gw == wr && ge == ex && gb == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGateSourceShape(t *testing.T) {
	prog, err := asm.Assemble(sup.GateSource)
	if err != nil {
		t.Fatal(err)
	}
	g := prog.Segment("sysgates")
	if g == nil {
		t.Fatal("no sysgates segment")
	}
	if g.GateCount != 8 {
		t.Errorf("gate count %d, want 8", g.GateCount)
	}
	if g.Brackets != (core.Brackets{R1: 0, R2: 0, R3: 5}) {
		t.Errorf("brackets %+v", g.Brackets)
	}
	for _, gate := range []string{"exit", "putchar", "putnum", "getcycles",
		"audit", "setbrackets", "initiate", "getring"} {
		if off, ok := g.Exports[gate]; !ok || off >= g.GateCount {
			t.Errorf("gate %q: off=%d ok=%v", gate, off, ok)
		}
	}
}

func TestRemainingServices(t *testing.T) {
	img, s, prog := boot(t, "alice", `
        .seg    main
        .bracket 4,4,4
        .access rwe
        stic    pr6|0,+1
        call    sysgates$getcycles
        sta     cyc             ; nonzero cycle count
        lia     55
        stic    pr6|0,+1
        call    sysgates$audit
        lix0    9999            ; setbrackets on a nonexistent segment
        lda     grant
        stic    pr6|0,+1
        call    sysgates$setbrackets
        sta     res1            ; -1 expected
        lix0    9999            ; initiate on an unreserved segment
        stic    pr6|0,+1
        call    sysgates$initiate
        sta     res2            ; -1 expected
        lda     cyc
        call    sysgates$exit
        .entry  cyc
cyc:    .word   0
        .entry  grant
grant:  .word   0
        .entry  res1
res1:   .word   99
        .entry  res2
res2:   .word   99
`)
	grantOff := prog.Segment("main").Symbols["grant"]
	if err := img.WriteWord("main", grantOff,
		sup.PackBrackets(true, false, false, core.Brackets{R1: 4, R2: 5, R3: 5})); err != nil {
		t.Fatal(err)
	}
	runToExit(t, img, s, 4, "main")
	if s.ExitCode <= 0 {
		t.Errorf("getcycles returned %d", s.ExitCode)
	}
	read := func(name string) int64 {
		off := prog.Segment("main").Symbols[name]
		w, err := img.ReadWord("main", off)
		if err != nil {
			t.Fatal(err)
		}
		return w.Int64()
	}
	if read("res1") != -1 {
		t.Errorf("setbrackets on missing segment: %d", read("res1"))
	}
	if read("res2") != -1 {
		t.Errorf("initiate on unreserved segment: %d", read("res2"))
	}
	found := false
	for _, a := range s.Audit {
		if strings.Contains(a, "audit from ring 4: 55") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit record missing: %v", s.Audit)
	}
}

func TestSetBracketsRejectsMalformed(t *testing.T) {
	img, s, prog := boot(t, "alice", `
        .seg    main
        .bracket 4,4,4
        .access rwe
        lix0    0               ; patched
        lda     grant
        stic    pr6|0,+1
        call    sysgates$setbrackets
        call    sysgates$exit   ; exit = result
        .entry  grant
grant:  .word   0
`,
		image.SegmentDef{
			Name: "victim", Size: 8, Read: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 4},
		})
	victim, _ := img.Segno("victim")
	// Malformed: R1 > R2 (but all >= caller ring, so sole-occupant
	// passes and well-formedness must catch it).
	grantOff := prog.Segment("main").Symbols["grant"]
	bad := sup.PackBrackets(true, false, false, core.Brackets{R1: 6, R2: 5, R3: 7})
	if err := img.WriteWord("main", grantOff, bad); err != nil {
		t.Fatal(err)
	}
	raw, _ := img.ReadWord("main", 0)
	if err := img.WriteWord("main", 0, raw.Deposit(0, 18, uint64(victim))); err != nil {
		t.Fatal(err)
	}
	runToExit(t, img, s, 4, "main")
	if s.ExitCode != -1 {
		t.Errorf("malformed grant accepted: exit %d", s.ExitCode)
	}
}

func TestUnknownServiceHalts(t *testing.T) {
	img, s, _ := boot(t, "alice", `
        .seg    zero
        .bracket 0,0,0
        svc     99
        hlt
`)
	if err := img.Start(0, "zero", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := img.CPU.Run(100); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if !img.CPU.Halted {
		t.Error("machine not halted")
	}
	found := false
	for _, a := range s.Audit {
		if strings.Contains(a, "unknown service") {
			found = true
		}
	}
	if !found {
		t.Errorf("audit: %v", s.Audit)
	}
}

func TestReserveRequiresImage(t *testing.T) {
	s := sup.New("alice")
	if _, err := s.Reserve(&sup.OnlineSegment{Name: "x", Size: 4}); err == nil {
		t.Error("Reserve without image accepted")
	}
}

func TestReserveValidation(t *testing.T) {
	img, s, _ := boot(t, "alice", `
        .seg    main
        .bracket 4,4,4
        hlt
`)
	_ = img
	if _, err := s.Reserve(&sup.OnlineSegment{Name: "empty"}); err == nil {
		t.Error("empty reserve accepted")
	}
	if _, err := s.Reserve(&sup.OnlineSegment{
		Name: "badacl", Size: 4,
		ACL: acl.List{{User: "", Brackets: core.Brackets{}}},
	}); err == nil {
		t.Error("bad ACL accepted")
	}
	if err := s.Initiate(12345); err == nil {
		t.Error("initiate of unknown segno accepted")
	}
}
