package tenant

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenReplayAgainstDefaultTenant replays the service package's
// golden HTTP fixture sequence against the multi-tenant handler's
// compatibility surface. The fixtures are read from the service
// package's testdata (never rewritten here): a single-tenant client
// pointed at a multi-tenant ringd must see byte-identical responses
// from the default tenant.
func TestGoldenReplayAgainstDefaultTenant(t *testing.T) {
	fixture := func(name string) []byte {
		t.Helper()
		path := filepath.Join("..", "service", "testdata", "golden", name)
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read fixture: %v", err)
		}
		return want
	}
	// Workers: 1 and the default shard count, exactly like the service
	// golden test, so worker indices and store versions match.
	r := NewRegistry(Config{})
	if _, err := r.Load(DefaultTenant, testImage(), TenantConfig{Workers: 1}); err != nil {
		t.Fatalf("load default: %v", err)
	}
	h := NewHandler(r, HandlerOptions{})
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); h.Close() })

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}
	post := func(path, body string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s: status %d, want %d: %s", path, resp.StatusCode, wantStatus, buf.String())
		}
		return buf.Bytes()
	}
	replay := func(name, got string) {
		t.Helper()
		want := fixture(name)
		if !bytes.Equal([]byte(got), want) {
			t.Errorf("default tenant drifted from fixture %s\n--- got ---\n%s--- want ---\n%s", name, got, want)
		}
	}

	// The same ordered sequence TestHTTPGolden pins, through the
	// compatibility endpoints.
	replay("healthz.json", string(get("/healthz")))

	replay("check_ok.json", string(post("/v1/check", `{"queries": [
  {"op": "access", "ring": 4, "segment": "data", "wordno": 3, "kind": "read"},
  {"op": "access", "ring": 5, "segment": "data", "kind": "read"},
  {"op": "access", "ring": 7, "segment": "secret", "kind": "read"},
  {"op": "call", "ring": 4, "segment": "code", "wordno": 1},
  {"op": "return", "ring": 2, "segment": "code", "eff_ring": 3},
  {"op": "effring", "ring": 2, "chain": [{"pr": true, "ring": 3}]}
]}`, http.StatusOK)))

	replay("check_malformed.json", string(post("/v1/check", "{not json", http.StatusBadRequest)))
	replay("check_empty.json", string(post("/v1/check", `{"queries": []}`, http.StatusBadRequest)))
	replay("check_bad_kind.json", string(post("/v1/check",
		`{"queries": [{"op": "access", "ring": 1, "segment": "data", "kind": "sniff"}]}`,
		http.StatusBadRequest)))

	replay("mutate_ok.json", string(post("/v1/mutate",
		`{"op": "setbrackets", "segment": "data", "read": true, "write": true, "r1": 1, "r2": 1, "r3": 1}`,
		http.StatusOK)))

	replay("check_after_mutate.json", string(post("/v1/check",
		`{"queries": [{"op": "access", "ring": 4, "segment": "data", "wordno": 3, "kind": "read"}]}`,
		http.StatusOK)))

	replay("mutate_unknown_segment.json", string(post("/v1/mutate",
		`{"op": "revoke", "segment": "nonesuch"}`, http.StatusNotFound)))

	// The same bytes are also served under the tenant-scoped route.
	replay("check_after_mutate.json", string(post("/v1/t/default/check",
		`{"queries": [{"op": "access", "ring": 4, "segment": "data", "wordno": 3, "kind": "read"}]}`,
		http.StatusOK)))
}
