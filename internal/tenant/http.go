package tenant

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/service"
)

// Handler is the multi-tenant HTTP face of a Registry — the ringd
// daemon's handler. Endpoints:
//
//	GET    /v1/images               — list loaded images and budgets
//	POST   /v1/images               — load an image (inline segments or
//	                                  a file under the image directory)
//	GET    /v1/images/{name}        — one tenant's status and metrics
//	POST   /v1/images/{name}/seal   — freeze the descriptor space
//	POST   /v1/images/{name}/evict  — drain and remove (DELETE works too)
//	ANY    /v1/t/{name}/check       — tenant-scoped decision batch
//	ANY    /v1/t/{name}/mutate      — tenant-scoped supervisor edit
//	GET    /v1/t/{name}/healthz     — tenant liveness and image shape
//	GET    /v1/t/{name}/metrics     — tenant decision/fault/RCU counters
//
// plus the single-tenant compatibility surface — /v1/check, /v1/mutate,
// /healthz, /metrics — which routes to the tenant named "default" with
// an unchanged wire format (the golden HTTP fixtures pass against it
// byte for byte).
//
// Lifecycle conflicts map to HTTP as follows: a mutation against a
// sealed or draining tenant answers 409 (conflict — the descriptor
// space is frozen or going away), a decision against a draining tenant
// answers 503 with Retry-After (the drain is transient from the
// fleet's point of view: retry another replica), and anything against
// an evicted tenant answers 404.
type Handler struct {
	reg *Registry
	mux *http.ServeMux
	// imageDir, when non-empty, permits POST /v1/images to read image
	// files from inside this directory ("file" loads are rejected
	// otherwise — the management API must not become a file oracle).
	imageDir string
}

// HandlerOptions configures a Handler.
type HandlerOptions struct {
	// ImageDir permits "file" loads from inside this directory; empty
	// disables file loads.
	ImageDir string
}

// NewHandler wraps reg in the multi-tenant HTTP API.
func NewHandler(reg *Registry, opt HandlerOptions) *Handler {
	h := &Handler{reg: reg, mux: http.NewServeMux(), imageDir: opt.ImageDir}
	h.mux.HandleFunc("GET /v1/images", h.handleList)
	h.mux.HandleFunc("POST /v1/images", h.handleLoad)
	h.mux.HandleFunc("GET /v1/images/{name}", h.handleDetail)
	h.mux.HandleFunc("DELETE /v1/images/{name}", h.handleEvict)
	h.mux.HandleFunc("POST /v1/images/{name}/seal", h.handleSeal)
	h.mux.HandleFunc("POST /v1/images/{name}/evict", h.handleEvict)
	h.mux.HandleFunc("/v1/t/{name}/{endpoint}", h.handleTenant)
	// Single-tenant compatibility surface: the default tenant's wire
	// format, unchanged.
	h.mux.HandleFunc("/v1/check", h.forwardDefault("check"))
	h.mux.HandleFunc("/v1/mutate", h.forwardDefault("mutate"))
	h.mux.HandleFunc("/healthz", h.handleHealthz)
	h.mux.HandleFunc("/metrics", h.forwardDefault("metrics"))
	return h
}

// Registry returns the underlying registry.
func (h *Handler) Registry() *Registry { return h.reg }

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// Close evicts every tenant (daemon shutdown). Call after the HTTP
// listener has stopped accepting so in-flight requests complete first.
func (h *Handler) Close() { h.reg.Close() }

type errorResponse struct {
	Error string `json:"error"`
}

// writeJSON mirrors the service package's encoder (two-space indent)
// so every endpoint of the daemon shares one wire style.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// lifecycleError maps a lifecycle rejection to its HTTP status:
// 409 for mutations against a sealed or draining tenant, 503 with
// Retry-After for decisions against a draining or loading one.
func lifecycleError(w http.ResponseWriter, err error, mutation bool) {
	switch {
	case errors.Is(err, ErrSealed):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		if mutation {
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrLoading):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrTenantNotFound):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

func (h *Handler) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.reg.Status())
}

// loadRequest is the JSON body of POST /v1/images.
type loadRequest struct {
	Name string `json:"name"`
	// Segments carries the image inline; File names an image JSON file
	// inside the daemon's image directory. Exactly one must be set.
	Segments []ImageSegment `json:"segments,omitempty"`
	File     string         `json:"file,omitempty"`
	// Sizing overrides; zero fields take the registry defaults.
	Workers int `json:"workers,omitempty"`
	Queue   int `json:"queue,omitempty"`
	Batch   int `json:"batch,omitempty"`
	Shards  int `json:"shards,omitempty"`
}

type loadResponse struct {
	OK       bool   `json:"ok"`
	Name     string `json:"name"`
	State    string `json:"state"`
	Segments int    `json:"segments"`
	Workers  int    `json:"workers"`
}

// imageFilePath resolves a "file" load against the configured image
// directory, rejecting escapes.
func (h *Handler) imageFilePath(name string) (string, error) {
	if h.imageDir == "" {
		return "", fmt.Errorf("file loads are disabled (no image directory configured)")
	}
	path := filepath.Join(h.imageDir, filepath.Clean("/"+name))
	rel, err := filepath.Rel(h.imageDir, path)
	if err != nil || rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator) {
		return "", fmt.Errorf("image file %q escapes the image directory", name)
	}
	return path, nil
}

func (h *Handler) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request: " + err.Error()})
		return
	}
	if !ValidName(req.Name) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("bad tenant name %q", req.Name)})
		return
	}
	if (len(req.Segments) == 0) == (req.File == "") {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "exactly one of segments or file must be given"})
		return
	}
	var defs []service.Segment
	var err error
	if req.File != "" {
		path, perr := h.imageFilePath(req.File)
		if perr != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: perr.Error()})
			return
		}
		defs, err = LoadImageFile(path)
		if err != nil {
			status := http.StatusBadRequest
			if os.IsNotExist(err) {
				status = http.StatusNotFound
			}
			writeJSON(w, status, errorResponse{Error: err.Error()})
			return
		}
	} else {
		defs, err = Segments(req.Segments)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
	}
	t, err := h.reg.Load(req.Name, defs, TenantConfig{
		Workers: req.Workers, QueueDepth: req.Queue, BatchLimit: req.Batch, Shards: req.Shards,
	})
	switch {
	case errors.Is(err, ErrTenantExists), errors.Is(err, ErrTooManyTenants), errors.Is(err, ErrWorkerBudget):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, loadResponse{
		OK: true, Name: t.Name(), State: t.State().String(),
		Segments: len(t.Store().Segments()), Workers: t.Config().Workers,
	})
}

// detailResponse is GET /v1/images/{name}: the listing row plus the
// tenant's full metrics snapshot.
type detailResponse struct {
	Status  TenantStatus     `json:"status"`
	Metrics service.Snapshot `json:"metrics"`
}

func (h *Handler) handleDetail(w http.ResponseWriter, r *http.Request) {
	t, ok := h.reg.Get(r.PathValue("name"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("%v: %q", ErrTenantNotFound, r.PathValue("name"))})
		return
	}
	writeJSON(w, http.StatusOK, detailResponse{Status: t.Status(), Metrics: t.Service().Snapshot()})
}

type lifecycleResponse struct {
	OK    bool   `json:"ok"`
	Name  string `json:"name"`
	State string `json:"state"`
}

func (h *Handler) handleSeal(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.reg.Seal(name); err != nil {
		if errors.Is(err, ErrTenantNotFound) {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, lifecycleResponse{OK: true, Name: name, State: StateSealed.String()})
}

func (h *Handler) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := h.reg.Evict(name); err != nil {
		switch {
		case errors.Is(err, ErrTenantNotFound):
			writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		default:
			writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, lifecycleResponse{OK: true, Name: name, State: StateEvicted.String()})
}

// forward rewrites a tenant-scoped request onto the tenant's
// single-tenant server, gating it on the lifecycle state first so a
// frozen or draining tenant answers its conflict status instead of a
// surprising 500/503 from deeper layers.
func (h *Handler) forward(w http.ResponseWriter, r *http.Request, t *Tenant, endpoint string) {
	var target string
	switch endpoint {
	case "check":
		if err := t.checkable(); err != nil {
			lifecycleError(w, err, false)
			return
		}
		target = "/v1/check"
	case "mutate":
		if err := t.mutable(); err != nil {
			lifecycleError(w, err, true)
			return
		}
		target = "/v1/mutate"
	case "healthz":
		target = "/healthz"
	case "metrics":
		if r.Method == http.MethodGet {
			// Merge the tenant's lease-hub counters into the service
			// snapshot. Embedding inlines the snapshot's existing keys,
			// so the single-tenant wire shape is extended with a
			// "leases" object, never changed.
			writeJSON(w, http.StatusOK, struct {
				service.Snapshot
				Leases LeaseStats `json:"leases"`
			}{t.Service().Snapshot(), t.LeaseStats()})
			return
		}
		target = "/metrics"
	default:
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("unknown tenant endpoint %q", endpoint)})
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = target
	r2.URL.RawPath = ""
	t.Server().ServeHTTP(w, r2)
}

func (h *Handler) handleTenant(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	t, ok := h.reg.Get(name)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("%v: %q", ErrTenantNotFound, name)})
		return
	}
	h.forward(w, r, t, r.PathValue("endpoint"))
}

// forwardDefault routes a single-tenant endpoint to the default
// tenant.
func (h *Handler) forwardDefault(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, ok := h.reg.Get(DefaultTenant)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("%v: %q", ErrTenantNotFound, DefaultTenant)})
			return
		}
		h.forward(w, r, t, endpoint)
	}
}

// handleHealthz forwards to the default tenant (unchanged single-
// tenant wire shape) when one is loaded, and degrades to a registry-
// level liveness answer when there is none — a fleet daemon with no
// default image is still alive.
func (h *Handler) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if t, ok := h.reg.Get(DefaultTenant); ok {
		h.forward(w, r, t, "healthz")
		return
	}
	writeJSON(w, http.StatusOK, struct {
		OK      bool `json:"ok"`
		Tenants int  `json:"tenants"`
	}{OK: true, Tenants: h.reg.Len()})
}
