package tenant

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newTestHandler boots a registry with a default tenant behind the
// multi-tenant handler.
func newTestHandler(t *testing.T, opt HandlerOptions) (*Handler, *httptest.Server) {
	t.Helper()
	r := NewRegistry(Config{WorkerBudget: 16})
	if _, err := r.Load(DefaultTenant, testImage(), TenantConfig{Workers: 1}); err != nil {
		t.Fatalf("load default: %v", err)
	}
	h := NewHandler(r, opt)
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return h, ts
}

// do issues a request and decodes the JSON body into a generic map.
func do(t *testing.T, method, url, body string) (int, map[string]interface{}) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	out := map[string]interface{}{}
	if buf.Len() > 0 {
		if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, buf.String(), err)
		}
	}
	return resp.StatusCode, out
}

func TestHandlerImagesLifecycle(t *testing.T) {
	_, ts := newTestHandler(t, HandlerOptions{})

	// Load a tenant inline.
	code, body := do(t, "POST", ts.URL+"/v1/images", `{"name": "beta", "workers": 1, "segments": [
		{"name": "seg", "size": 16, "read": true, "write": true, "r1": 1, "r2": 3, "r3": 3}
	]}`)
	if code != http.StatusCreated || body["ok"] != true || body["state"] != "active" {
		t.Fatalf("load: %d %v", code, body)
	}

	// Listing shows both tenants, sorted.
	code, body = do(t, "GET", ts.URL+"/v1/images", "")
	if code != http.StatusOK {
		t.Fatalf("list: %d %v", code, body)
	}
	tenants := body["tenants"].([]interface{})
	if len(tenants) != 2 ||
		tenants[0].(map[string]interface{})["name"] != "beta" ||
		tenants[1].(map[string]interface{})["name"] != DefaultTenant {
		t.Errorf("listing: %v", tenants)
	}

	// Detail carries the status row and the metrics snapshot.
	code, body = do(t, "GET", ts.URL+"/v1/images/beta", "")
	if code != http.StatusOK || body["status"] == nil || body["metrics"] == nil {
		t.Errorf("detail: %d %v", code, body)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/images/ghost", ""); code != http.StatusNotFound {
		t.Errorf("detail of unknown tenant: %d, want 404", code)
	}

	// Tenant-scoped check and mutate work while active.
	code, _ = do(t, "POST", ts.URL+"/v1/t/beta/check",
		`{"queries": [{"op": "access", "ring": 2, "segment": "seg", "kind": "read"}]}`)
	if code != http.StatusOK {
		t.Errorf("tenant check: %d", code)
	}
	code, _ = do(t, "POST", ts.URL+"/v1/t/beta/mutate",
		`{"op": "setbrackets", "segment": "seg", "read": true, "r1": 1, "r2": 2, "r3": 2}`)
	if code != http.StatusOK {
		t.Errorf("tenant mutate: %d", code)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/t/beta/healthz", ""); code != http.StatusOK {
		t.Errorf("tenant healthz: %d", code)
	}
	if code, _ = do(t, "GET", ts.URL+"/v1/t/beta/metrics", ""); code != http.StatusOK {
		t.Errorf("tenant metrics: %d", code)
	}
	if code, _ = do(t, "POST", ts.URL+"/v1/t/beta/sniff", ""); code != http.StatusNotFound {
		t.Errorf("unknown tenant endpoint: %d, want 404", code)
	}
	if code, _ = do(t, "POST", ts.URL+"/v1/t/ghost/check", "{}"); code != http.StatusNotFound {
		t.Errorf("check of unknown tenant: %d, want 404", code)
	}

	// Seal: mutations 409, decisions still 200.
	if code, _ = do(t, "POST", ts.URL+"/v1/images/beta/seal", ""); code != http.StatusOK {
		t.Fatalf("seal: %d", code)
	}
	code, body = do(t, "POST", ts.URL+"/v1/t/beta/mutate", `{"op": "revoke", "segment": "seg"}`)
	if code != http.StatusConflict {
		t.Errorf("mutate sealed: %d %v, want 409", code, body)
	}
	code, _ = do(t, "POST", ts.URL+"/v1/t/beta/check",
		`{"queries": [{"op": "access", "ring": 2, "segment": "seg", "kind": "read"}]}`)
	if code != http.StatusOK {
		t.Errorf("check sealed: %d, want 200", code)
	}
	if code, _ = do(t, "POST", ts.URL+"/v1/images/beta/seal", ""); code != http.StatusConflict {
		t.Errorf("double seal: %d, want 409", code)
	}

	// Evict via DELETE; the tenant is gone afterwards.
	if code, _ = do(t, "DELETE", ts.URL+"/v1/images/beta", ""); code != http.StatusOK {
		t.Fatalf("evict: %d", code)
	}
	if code, _ = do(t, "POST", ts.URL+"/v1/t/beta/check", "{}"); code != http.StatusNotFound {
		t.Errorf("check evicted: %d, want 404", code)
	}
	if code, _ = do(t, "POST", ts.URL+"/v1/images/beta/evict", ""); code != http.StatusNotFound {
		t.Errorf("double evict: %d, want 404", code)
	}
}

func TestHandlerLoadRejections(t *testing.T) {
	_, ts := newTestHandler(t, HandlerOptions{})

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed", `{nope`, http.StatusBadRequest},
		{"bad name", `{"name": "a/b", "segments": [{"name": "s", "size": 1, "read": true}]}`, http.StatusBadRequest},
		{"neither source", `{"name": "x"}`, http.StatusBadRequest},
		{"both sources", `{"name": "x", "file": "f.json", "segments": [{"name": "s", "size": 1, "read": true}]}`, http.StatusBadRequest},
		{"empty image", `{"name": "x", "segments": []}`, http.StatusBadRequest},
		{"invalid brackets", `{"name": "x", "segments": [{"name": "s", "size": 1, "read": true, "r1": 5, "r2": 2, "r3": 1}]}`, http.StatusBadRequest},
		{"duplicate", `{"name": "default", "segments": [{"name": "s", "size": 1, "read": true}]}`, http.StatusConflict},
		{"file loads disabled", `{"name": "x", "file": "f.json"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if code, body := do(t, "POST", ts.URL+"/v1/images", c.body); code != c.want {
			t.Errorf("%s: %d %v, want %d", c.name, code, body, c.want)
		}
	}

	// The worker budget answers 409.
	code, body := do(t, "POST", ts.URL+"/v1/images",
		`{"name": "greedy", "workers": 99, "segments": [{"name": "s", "size": 1, "read": true}]}`)
	if code != http.StatusConflict {
		t.Errorf("over budget: %d %v, want 409", code, body)
	}
}

func TestHandlerFileLoads(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"segments": [{"name": "s", "size": 4, "read": true, "r1": 1, "r2": 2, "r3": 3}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "corrupt.json"), []byte(`{nope`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestHandler(t, HandlerOptions{ImageDir: dir})

	if code, body := do(t, "POST", ts.URL+"/v1/images", `{"name": "filed", "workers": 1, "file": "good.json"}`); code != http.StatusCreated {
		t.Errorf("file load: %d %v, want 201", code, body)
	}
	// A corrupt image file is a 400, a missing one a 404, and a path
	// escaping the image directory is rejected before any read.
	if code, _ := do(t, "POST", ts.URL+"/v1/images", `{"name": "c1", "file": "corrupt.json"}`); code != http.StatusBadRequest {
		t.Errorf("corrupt file load: %d, want 400", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/images", `{"name": "c2", "file": "absent.json"}`); code != http.StatusNotFound {
		t.Errorf("missing file load: %d, want 404", code)
	}
	if code, _ := do(t, "POST", ts.URL+"/v1/images", `{"name": "c3", "file": "../../../etc/passwd"}`); code == http.StatusCreated {
		t.Error("path escape load unexpectedly succeeded")
	}
}

// TestHandlerHealthzWithoutDefault pins the degraded registry-level
// liveness answer of a daemon with no default image.
func TestHandlerHealthzWithoutDefault(t *testing.T) {
	r := NewRegistry(Config{})
	h := NewHandler(r, HandlerOptions{})
	ts := httptest.NewServer(h)
	t.Cleanup(func() { ts.Close(); h.Close() })

	code, body := do(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK || body["ok"] != true {
		t.Errorf("healthz without default: %d %v", code, body)
	}
	// The single-tenant decision surface has nothing to route to.
	if code, _ := do(t, "POST", ts.URL+"/v1/check", "{}"); code != http.StatusNotFound {
		t.Errorf("check without default: %d, want 404", code)
	}
}
