package tenant

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/service"
)

// ImageSegment is the JSON form of one segment in an image file or a
// /v1/images load request: name, size, access flags, ring brackets and
// gate count.
type ImageSegment struct {
	Name    string `json:"name"`
	Size    int    `json:"size"`
	Read    bool   `json:"read"`
	Write   bool   `json:"write"`
	Execute bool   `json:"execute"`
	R1      uint8  `json:"r1"`
	R2      uint8  `json:"r2"`
	R3      uint8  `json:"r3"`
	Gates   uint32 `json:"gates"`
}

// ImageFile is the JSON shape of a machine image: {"segments": [...]}.
type ImageFile struct {
	Segments []ImageSegment `json:"segments"`
}

// Segments converts the wire segments into store segments, validating
// each bracket triple.
func Segments(segs []ImageSegment) ([]service.Segment, error) {
	if len(segs) == 0 {
		return nil, fmt.Errorf("image holds no segments")
	}
	defs := make([]service.Segment, len(segs))
	for i, s := range segs {
		b := core.Brackets{R1: core.Ring(s.R1), R2: core.Ring(s.R2), R3: core.Ring(s.R3)}
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("segment %q: %w", s.Name, err)
		}
		defs[i] = service.Segment{
			Name: s.Name, Size: s.Size,
			Read: s.Read, Write: s.Write, Execute: s.Execute,
			Brackets: b, Gates: s.Gates,
		}
	}
	return defs, nil
}

// ParseImage decodes an image file body and validates its segments.
func ParseImage(data []byte) ([]service.Segment, error) {
	var f ImageFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return Segments(f.Segments)
}

// LoadImageFile reads and parses a machine image JSON file.
func LoadImageFile(path string) ([]service.Segment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	defs, err := ParseImage(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return defs, nil
}

// DemoImage is the image served when no file is given: a small
// Multics-flavoured layout exercising every protection mechanism.
func DemoImage() []service.Segment {
	return []service.Segment{
		{Name: "supervisor", Size: 4096, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 0, R3: 7}, Gates: 8},
		{Name: "sys_data", Size: 1024, Read: true, Write: true,
			Brackets: core.Brackets{R1: 0, R2: 2, R3: 2}},
		{Name: "math_lib", Size: 2048, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 0, R2: 7, R3: 7}},
		{Name: "editor", Size: 2048, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 4, R3: 5}, Gates: 2},
		{Name: "user_code", Size: 1024, Read: true, Execute: true,
			Brackets: core.Brackets{R1: 4, R2: 6, R3: 6}},
		{Name: "user_data", Size: 4096, Read: true, Write: true,
			Brackets: core.Brackets{R1: 4, R2: 6, R3: 6}},
	}
}
