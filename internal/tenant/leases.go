package tenant

import (
	"sync"
	"sync/atomic"
)

// This file is the server half of the distributed decision-lease
// protocol: a per-tenant subscriber hub fanning every descriptor
// mutation out to the wire sessions that asked for invalidations.
//
// The paper's processors keep per-processor SDW associative memories
// coherent through an explicit shootdown group — the supervisor edits
// core, then broadcasts "drop your copy of this descriptor" to every
// member. Remote clients caching decisions are the network's
// associative memories, and the hub is their group: the store's RCU
// publish step (which already serializes per shard and stamps each
// publication with an even epoch) calls the hub once per mutation,
// still under the shard's mutation lock, and the hub records the event
// in every subscriber's per-shard mailbox.
//
// # Coalescing
//
// A mailbox is one atomic epoch slot per shard, not a queue. A
// shootdown for shard i at epoch E invalidates every lease on shard i
// tagged with an epoch < E; since per-shard epochs are monotonic, the
// latest epoch subsumes every earlier one and overwriting the slot
// loses nothing. A slow session therefore costs two atomic stores per
// mutation — never memory, never blocking the mutator. The edited
// segment number rides in a parallel advisory slot: under coalescing a
// reader may observe a segno newer than the epoch it swapped out, so
// consumers must treat the epoch as the authority and the segno as a
// hint.
type Subscriber struct {
	// epochs[i] holds the latest invalidation epoch for shard i not yet
	// drained by the session pusher; 0 means none pending (publication
	// epochs are even and start at 2, so 0 is free as a sentinel).
	epochs []atomic.Uint64
	// segnos[i] is the advisory last-edited segment number of shard i.
	segnos []atomic.Uint32
	// notify wakes the session pusher; capacity 1, send never blocks.
	notify chan struct{}
	// expired flips once when the tenant drains or the hub closes: the
	// subscription is revoked, no further shootdowns will arrive, and
	// the client must drop every cached decision.
	expired atomic.Bool
}

// Notify returns the wake channel the session pusher selects on; a
// receive means at least one mailbox slot (or the expired flag) was
// set since the last drain.
func (s *Subscriber) Notify() <-chan struct{} { return s.notify }

// Expired reports whether the subscription has been revoked.
func (s *Subscriber) Expired() bool { return s.expired.Load() }

// wake nudges the pusher without ever blocking the caller (which may
// hold a store shard's mutation lock).
func (s *Subscriber) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Drain consumes every pending invalidation, calling f once per shard
// with a nonzero slot: the shard index, the advisory segno, and the
// (even) epoch whose publication the event followed. Slots are swapped
// to zero, so concurrent mutations during the drain are kept for the
// next round. Single consumer: the session's pusher goroutine.
func (s *Subscriber) Drain(f func(shard int, segno uint32, epoch uint64)) {
	for i := range s.epochs {
		if e := s.epochs[i].Swap(0); e != 0 {
			f(i, s.segnos[i].Load(), e)
		}
	}
}

// leaseHub is one tenant's subscriber set: a copy-on-write list read
// lock-free by the broadcast path (the same idiom as the store's RCU
// reader list — registration is rare, broadcast is per-mutation).
type leaseHub struct {
	shards int

	mu     sync.Mutex // subscribe/unsubscribe/close only
	closed bool       //ring:guarded mu
	subs   atomic.Pointer[[]*Subscriber]

	shootdowns atomic.Uint64 // events delivered (subscribers × mutations)
	expires    atomic.Uint64 // subscriptions revoked
}

func newLeaseHub(shards int) *leaseHub {
	h := &leaseHub{shards: shards}
	h.subs.Store(&[]*Subscriber{})
	return h
}

// broadcast is the store's publish hook: called once per descriptor
// mutation, under the publishing shard's mutation lock, with per-shard
// calls in strictly increasing epoch order. It must not block and must
// not allocate on the steady path.
func (h *leaseHub) broadcast(shard int, segno uint32, epoch uint64) {
	subs := *h.subs.Load()
	for _, s := range subs {
		// Segno before epoch: once a drain observes epoch E, the segno
		// slot holds a value at least as fresh as E's edit.
		s.segnos[shard].Store(segno)
		s.epochs[shard].Store(epoch)
		s.wake()
	}
	if len(subs) > 0 {
		h.shootdowns.Add(uint64(len(subs)))
	}
}

// subscribe registers a new subscriber. On a hub already closed the
// subscriber is born expired, so the session pusher immediately sends
// the revocation instead of a silent never-notified stream.
func (h *leaseHub) subscribe() *Subscriber {
	s := &Subscriber{
		epochs: make([]atomic.Uint64, h.shards),
		segnos: make([]atomic.Uint32, h.shards),
		notify: make(chan struct{}, 1),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		s.expired.Store(true)
		s.wake()
		return s
	}
	old := *h.subs.Load()
	next := make([]*Subscriber, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	h.subs.Store(&next)
	h.mu.Unlock()
	return s
}

// unsubscribe removes s (idempotent); called when its session closes.
func (h *leaseHub) unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	old := *h.subs.Load()
	next := make([]*Subscriber, 0, len(old))
	for _, o := range old {
		if o != s {
			next = append(next, o)
		}
	}
	h.subs.Store(&next)
}

// close revokes every subscription and refuses new ones: the tenant is
// draining, no further mutations will publish, and every outstanding
// lease must be dropped rather than ride its TTL out against a store
// that is about to disappear.
func (h *leaseHub) close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	old := *h.subs.Load()
	h.subs.Store(&[]*Subscriber{})
	h.mu.Unlock()
	for _, s := range old {
		s.expired.Store(true)
		s.wake()
	}
	h.expires.Add(uint64(len(old)))
}

// LeaseStats is a tenant's lease-hub counters, surfaced by /metrics.
type LeaseStats struct {
	// Subscribers is the current subscription count.
	Subscribers int `json:"subscribers"`
	// Shootdowns counts invalidation events delivered (one per
	// subscriber per mutation).
	Shootdowns uint64 `json:"shootdowns"`
	// Expires counts subscriptions revoked by seal-free lifecycle
	// transitions (drain/evict) or daemon shutdown.
	Expires uint64 `json:"expires"`
}

// Subscribe registers a lease subscription with the tenant: every
// subsequent descriptor mutation is recorded in the returned
// subscriber's mailbox. The caller owns the drain loop and must
// Unsubscribe when its session ends. A tenant without a live hub
// (still loading, draining or evicted) returns an already-expired
// subscriber.
func (t *Tenant) Subscribe() *Subscriber {
	if h := t.hub; h != nil {
		return h.subscribe()
	}
	s := &Subscriber{notify: make(chan struct{}, 1)}
	s.expired.Store(true)
	s.wake()
	return s
}

// Unsubscribe removes a subscription (idempotent).
func (t *Tenant) Unsubscribe(s *Subscriber) {
	if h := t.hub; h != nil {
		h.unsubscribe(s)
	}
}

// LeaseStats returns the tenant's lease-hub counters.
func (t *Tenant) LeaseStats() LeaseStats {
	h := t.hub
	if h == nil {
		return LeaseStats{}
	}
	return LeaseStats{
		Subscribers: len(*h.subs.Load()),
		Shootdowns:  h.shootdowns.Load(),
		Expires:     h.expires.Load(),
	}
}
